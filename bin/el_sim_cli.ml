(* el-sim: command-line front end to the ephemeral-logging simulator.

   Exposes every §3 simulator input: the transaction mix (pdf), the
   arrival rate, the flush rate (drives x transfer time), the number
   and sizes of generations, the recirculation flag and the runtime.

   The subcommand list lives in [subcommands] at the bottom of this
   file; the group's synopsis is generated from it, so adding a
   command there is the only step needed to advertise it. *)

open El_model
open Cmdliner
module Experiment = El_harness.Experiment
module Policy = El_core.Policy

(* ---- shared options ---- *)

let mix_term =
  let doc =
    "Transaction mix as NAME:PROB:DURATION_S:NRECORDS:SIZE_B, repeatable. \
     Default: the paper's two types (short:0.95:1:2:100 long:0.05:10:4:100)."
  in
  let parse s =
    match String.split_on_char ':' s with
    | [ name; prob; dur; n; size ] -> (
      try
        Ok
          (El_workload.Tx_type.make ~name ~probability:(float_of_string prob)
             ~duration:(Time.of_sec_f (float_of_string dur))
             ~num_records:(int_of_string n) ~record_size:(int_of_string size))
      with _ -> Error (`Msg ("bad transaction type: " ^ s)))
    | _ -> Error (`Msg ("bad transaction type: " ^ s))
  in
  let print ppf ty = El_workload.Tx_type.pp ppf ty in
  let tx_conv = Arg.conv (parse, print) in
  Arg.(value & opt_all tx_conv [] & info [ "t"; "tx-type" ] ~doc)

let long_pct =
  let doc = "Shorthand for the paper's mix with $(docv)% 10s transactions." in
  Arg.(value & opt (some int) None & info [ "long-pct" ] ~doc ~docv:"PCT")

let rate =
  let doc = "Transaction arrival rate per second." in
  Arg.(value & opt float 100.0 & info [ "rate" ] ~doc)

let runtime =
  let doc = "Simulated runtime in seconds." in
  Arg.(value & opt float 500.0 & info [ "runtime" ] ~doc)

let drives =
  let doc = "Number of database drives for flushing." in
  Arg.(value & opt int 10 & info [ "drives" ] ~doc)

let transfer_ms =
  let doc = "Per-flush transfer time (ms)." in
  Arg.(value & opt int 25 & info [ "transfer-ms" ] ~doc)

let objects =
  let doc = "Number of objects in the database." in
  Arg.(value & opt int Params.num_objects & info [ "objects" ] ~doc)

let seed =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let generations =
  let doc = "Generation sizes in blocks, e.g. 18,16 (EL only)." in
  Arg.(value & opt (list int) [ 18; 16 ] & info [ "g"; "generations" ] ~doc)

let recirculate =
  let doc = "Disable recirculation in the last generation." in
  Arg.(value & flag & info [ "no-recirculation" ] ~doc)

let firewall =
  let doc = "Use the firewall baseline with $(docv) blocks instead of EL." in
  Arg.(value & opt (some int) None & info [ "fw"; "firewall" ] ~doc ~docv:"BLOCKS")

let abort_fraction =
  let doc = "Fraction of transactions that abort instead of committing." in
  Arg.(value & opt float 0.0 & info [ "abort-fraction" ] ~doc)

let poisson =
  let doc = "Use Poisson arrivals instead of the paper's regular spacing." in
  Arg.(value & flag & info [ "poisson" ] ~doc)

let shards_term =
  let doc =
    "Partition the object space into $(docv) contiguous oid ranges, each \
     owned by its own log-manager plant; transactions spanning shards commit \
     by two-phase commit (PREPARE markers plus a coordinator decision \
     record).  $(docv)=1 (default) is the solo path, byte-identical to a \
     world without sharding."
  in
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg ("bad shard count: " ^ s))
  in
  let shards_conv = Arg.conv (parse, Format.pp_print_int) in
  Arg.(value & opt shards_conv 1 & info [ "shards" ] ~doc ~docv:"N")

(* --backend sim|mem|file[:DIR].  [file] without a directory puts the
   image in a fresh temp directory removed at exit; with one, images
   land (and stay) there. *)
let backend_term =
  let doc =
    "Durable store backend: $(b,sim) (default; durability is simulated, no \
     bytes written), $(b,mem) (blocks serialized with checksums into an \
     in-memory image), or $(b,file)[:DIR] (a real disk image written with \
     pwrite+fsync, in DIR or in a temporary directory removed at exit)."
  in
  let parse s =
    match s with
    | "sim" -> Ok `Sim
    | "mem" -> Ok `Mem
    | "file" -> Ok (`File None)
    | _ when String.length s > 5 && String.sub s 0 5 = "file:" ->
      Ok (`File (Some (String.sub s 5 (String.length s - 5))))
    | _ -> Error (`Msg ("bad backend (want sim|mem|file[:DIR]): " ^ s))
  in
  let print ppf = function
    | `Sim -> Format.pp_print_string ppf "sim"
    | `Mem -> Format.pp_print_string ppf "mem"
    | `File None -> Format.pp_print_string ppf "file"
    | `File (Some d) -> Format.fprintf ppf "file:%s" d
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Sim
    & info [ "backend" ] ~doc ~docv:"BACKEND")

let resolve_backend = function
  | `Sim -> Experiment.Sim
  | `Mem -> Experiment.Mem_store
  | `File (Some dir) -> Experiment.File_store dir
  | `File None ->
    let dir = Filename.temp_file "el-sim-images" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    at_exit (fun () ->
        try
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Unix.rmdir dir
        with Sys_error _ | Unix.Unix_error _ -> ());
    Experiment.File_store dir

(* --scenario NAME: a named adversarial workload preset.  Applied
   after the rest of the config is assembled, it replaces the traffic
   half (mix, arrival process, oid draw, lifetime, retry budget) while
   leaving the plant options (--rate, --runtime, --drives, sizing,
   --seed, --backend) in the caller's hands. *)
let scenario_conv =
  let parse s =
    match El_workload.Workload_preset.find s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scenario %S (want %s)" s
              (String.concat "|" El_workload.Workload_preset.names)))
  in
  Arg.conv (parse, El_workload.Workload_preset.pp)

let scenario_term =
  let doc =
    Printf.sprintf
      "Workload scenario preset: %s.  Overrides the mix and arrival options \
       with the preset's traffic (skewed drawing, bursts, long-tail \
       lifetimes, contention retries) but keeps --rate, --runtime and the \
       plant options."
      (String.concat "|" El_workload.Workload_preset.names)
  in
  Arg.(
    value
    & opt (some scenario_conv) None
    & info [ "scenario" ] ~doc ~docv:"NAME")

let apply_scenario cfg = function
  | None -> cfg
  | Some p -> Experiment.apply_preset cfg p

(* Shared by every sweeping subcommand (min-space, paper, check): the
   independent simulations fan out across $(docv) domains; outputs
   are identical to --jobs 1 (see lib/par). *)
let jobs_term =
  let doc =
    "Run the independent simulations of a sweep on $(docv) domains \
     (default 1 = serial; results are identical either way)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")

let with_pool jobs f =
  if jobs < 1 then begin
    prerr_endline "el-sim: --jobs must be at least 1";
    exit 2
  end;
  El_par.Pool.with_pool ~jobs f

let mix_of opts long_pct =
  match (opts, long_pct) with
  | [], None -> El_workload.Mix.short_long ~long_fraction:0.05
  | [], Some pct ->
    El_workload.Mix.short_long ~long_fraction:(float_of_int pct /. 100.0)
  | types, None -> El_workload.Mix.create types
  | _ :: _, Some _ ->
    failwith "--tx-type and --long-pct are mutually exclusive"

let config_of types long_pct rate runtime drives transfer_ms objects seed
    generations no_recirc firewall abort_fraction poisson backend shards =
  let mix = mix_of types long_pct in
  let kind =
    match firewall with
    | Some blocks -> Experiment.Firewall blocks
    | None ->
      let policy =
        {
          (Policy.default ~generation_sizes:(Array.of_list generations)) with
          Policy.recirculate = not no_recirc;
        }
      in
      Experiment.Ephemeral policy
  in
  {
    (Experiment.default_config ~kind ~mix) with
    Experiment.arrival_rate = rate;
    arrival_process =
      (if poisson then El_workload.Generator.Poisson
       else El_workload.Generator.Deterministic);
    runtime = Time.of_sec_f runtime;
    flush_drives = drives;
    flush_transfer = Time.of_ms transfer_ms;
    num_objects = objects;
    seed;
    abort_fraction;
    backend = resolve_backend backend;
    shards;
  }

let config_term =
  Term.(
    const config_of $ mix_term $ long_pct $ rate $ runtime $ drives
    $ transfer_ms $ objects $ seed $ generations $ recirculate $ firewall
    $ abort_fraction $ poisson $ backend_term $ shards_term)

(* ---- report rendering ---- *)

let print_result (r : Experiment.result) =
  let t =
    El_metrics.Table.create
      ~columns:[ ("metric", El_metrics.Table.Left); ("value", El_metrics.Table.Right) ]
  in
  let add k v = El_metrics.Table.add_row t [ k; v ] in
  add "log blocks configured" (string_of_int r.total_blocks);
  add "log writes"
    (Printf.sprintf "%d (%s)" r.log_writes_total
       (String.concat "+"
          (Array.to_list (Array.map string_of_int r.log_writes_per_gen))));
  add "log bandwidth (w/s)" (Printf.sprintf "%.2f" r.log_write_rate);
  add "peak LM memory (bytes)" (string_of_int r.peak_memory_bytes);
  add "transactions started" (string_of_int r.started);
  add "committed (acked)" (string_of_int r.committed);
  add "aborted" (string_of_int r.aborted);
  if r.contention_aborts > 0 || r.contention_retries > 0 then begin
    add "contention aborts" (string_of_int r.contention_aborts);
    add "contention retries" (string_of_int r.contention_retries)
  end;
  add "killed" (string_of_int r.killed);
  add "evictions" (string_of_int r.evictions);
  add "updates/s" (Printf.sprintf "%.1f" r.updates_per_sec);
  add "flushes" (string_of_int r.flushes_completed);
  add "forced flushes" (string_of_int r.forced_flushes);
  add "mean flush oid distance" (Printf.sprintf "%.0f" r.flush_mean_distance);
  add "peak flush backlog" (string_of_int r.flush_backlog_peak);
  add "mean commit latency (ms)"
    (Printf.sprintf "%.1f" (r.commit_latency_mean *. 1000.0));
  add "forwarded records" (string_of_int r.forwarded_records);
  add "recirculated records" (string_of_int r.recirculated_records);
  if r.backend_name <> "sim" then begin
    add "store backend" r.backend_name;
    add "store pwrites" (string_of_int r.store_pwrites);
    add "store fsync barriers" (string_of_int r.store_barriers);
    add "store bytes written" (string_of_int r.store_bytes_written)
  end;
  add "feasible (no kills/evictions)" (if r.feasible then "yes" else "NO");
  El_metrics.Table.print t

(* ---- subcommands ---- *)

let print_shard_table (rr : El_shard.Shard_group.run_result) =
  let t =
    El_metrics.Table.create
      ~columns:
        [
          ("shard", El_metrics.Table.Left);
          ("oid range", El_metrics.Table.Left);
          ("committed", El_metrics.Table.Right);
          ("branch acks", El_metrics.Table.Right);
          ("decisions", El_metrics.Table.Right);
          ("mailbox ops", El_metrics.Table.Right);
          ("log writes", El_metrics.Table.Right);
        ]
  in
  Array.iter
    (fun (s : El_shard.Shard_group.shard_stat) ->
      El_metrics.Table.add_row t
        [
          string_of_int s.ss_shard;
          Printf.sprintf "[%d,%d)" s.ss_lo s.ss_hi;
          string_of_int s.ss_committed;
          string_of_int s.ss_branch_acks;
          string_of_int s.ss_decisions;
          string_of_int s.ss_mailbox_ops;
          string_of_int s.ss_result.Experiment.log_writes_total;
        ])
    rr.El_shard.Shard_group.r_shards;
  El_metrics.Table.print t;
  Printf.printf
    "single-shard commits: %d  cross-shard (2PC) commits: %d  prepares: %d  \
     blocked: %d\n"
    rr.El_shard.Shard_group.r_single_committed
    rr.El_shard.Shard_group.r_cross_committed rr.El_shard.Shard_group.r_prepares
    rr.El_shard.Shard_group.r_blocked

let run_cmd =
  let action cfg scenario =
    let cfg = apply_scenario cfg scenario in
    if cfg.Experiment.shards > 1 then begin
      let rr = El_shard.Shard_group.run cfg in
      print_result rr.El_shard.Shard_group.r_global;
      print_newline ();
      print_shard_table rr
    end
    else print_result (Experiment.run cfg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one simulation and print the report.")
    Term.(const action $ config_term $ scenario_term)

let min_space_cmd =
  let action cfg scenario jobs =
    with_pool jobs @@ fun pool ->
    let cfg = apply_scenario cfg scenario in
    (* The min-space library can't depend on the shard layer (it lives
       below it), so the sharded probe runner is injected here. *)
    let run =
      if cfg.Experiment.shards > 1 then El_shard.Shard_group.run_global
      else Experiment.run
    in
    match cfg.Experiment.kind with
    | Experiment.Hybrid _ ->
      prerr_endline "min-space: hybrid search is not supported; use run"
    | Experiment.Firewall _ ->
      let blocks, result = El_harness.Min_space.min_fw ~pool ~run cfg in
      Printf.printf "minimum FW log: %d blocks\n\n" blocks;
      print_result result
    | Experiment.Ephemeral policy ->
      let make_policy sizes =
        { policy with Policy.generation_sizes = sizes }
      in
      let sizes0 = policy.Policy.generation_sizes in
      (match Array.length sizes0 with
      | 2 ->
        let candidates = List.init 14 (fun i -> 4 + (2 * i)) in
        (match
           El_harness.Min_space.min_el_two_gen ~pool ~run cfg ~make_policy
             ~g0_candidates:candidates ~hi:256
         with
        | Some (sizes, result) ->
          Printf.printf "minimum EL log: %d blocks (%s)\n\n"
            (Array.fold_left ( + ) 0 sizes)
            (String.concat "+"
               (Array.to_list (Array.map string_of_int sizes)));
          print_result result
        | None -> prerr_endline "no feasible configuration found")
      | _ ->
        let leading = Array.sub sizes0 0 (Array.length sizes0 - 1) in
        (match
           El_harness.Min_space.min_el_last_gen ~pool ~run cfg ~make_policy
             ~leading ~hi:256
         with
        | Some (last, result) ->
          Printf.printf
            "minimum last generation: %d blocks (leading sizes fixed at %s)\n\n"
            last
            (String.concat "+"
               (Array.to_list (Array.map string_of_int leading)));
          print_result result
        | None -> prerr_endline "no feasible configuration found"))
  in
  Cmd.v
    (Cmd.info "min-space"
       ~doc:
         "Search for the minimum disk space that kills no transaction (the \
          paper's methodology). With --fw searches the firewall baseline; \
          with two generations optimises both sizes; with more generations \
          fixes all but the last.  --jobs N probes several candidate sizes \
          per round on N domains (same minimum, fewer rounds).")
    Term.(const action $ config_term $ scenario_term $ jobs_term)

let recover_cmd =
  let crash_at =
    let doc = "Crash time in seconds (default: runtime * 3/4)." in
    Arg.(value & opt (some float) None & info [ "crash-at" ] ~doc)
  in
  let action cfg scenario crash_at =
    let cfg = apply_scenario cfg scenario in
    let crash_at =
      match crash_at with
      | Some s -> Time.of_sec_f s
      | None -> Time.mul_int (Time.div_int cfg.Experiment.runtime 4) 3
    in
    let result, recovery, audit, store_recovery =
      Experiment.run_with_crash_store cfg ~crash_at
    in
    Format.printf "crash at %a into a %a run@." Time.pp crash_at Time.pp
      cfg.Experiment.runtime;
    Printf.printf "records scanned: %d\n"
      recovery.El_recovery.Recovery.records_scanned;
    Printf.printf "redo applied: %d, skipped: %d\n"
      recovery.El_recovery.Recovery.redo_applied
      recovery.El_recovery.Recovery.redo_skipped;
    Printf.printf "committed transactions in durable log: %d\n"
      (List.length recovery.El_recovery.Recovery.committed_tids);
    Format.printf "%a@." El_recovery.Recovery.pp_audit audit;
    (match store_recovery with
    | None -> ()
    | Some sr ->
      let state (r : El_recovery.Recovery.result) =
        ( List.sort compare (El_disk.Stable_db.snapshot r.recovered),
          List.sort compare r.committed_tids )
      in
      Printf.printf
        "store replay: %d records scanned, %d committed — %s\n"
        sr.El_recovery.Recovery.records_scanned
        (List.length sr.El_recovery.Recovery.committed_tids)
        (if state sr = state recovery then "agrees with simulated recovery"
         else "DIVERGES from simulated recovery"));
    print_newline ();
    print_result result
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash an EL run midway, run single-pass recovery and audit it.  \
          With --backend mem|file, also replay the durable image frozen at \
          the crash instant and compare the two recovered states.")
    Term.(const action $ config_term $ scenario_term $ crash_at)

let paper_cmd =
  let what =
    let doc = "Which experiment: fig4|fig5|fig6|fig7|headline|scarce|rates." in
    Arg.(value & pos 0 string "headline" & info [] ~doc ~docv:"EXPERIMENT")
  in
  let quick =
    let doc = "Quick mode (120s simulated runs instead of 500s)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let action what quick jobs =
    with_pool jobs @@ fun pool ->
    let speed : El_harness.Paper.speed = if quick then `Quick else `Full in
    let exe = Sys.executable_name in
    ignore exe;
    match what with
    | "headline" ->
      let h = El_harness.Paper.headline ~pool ~speed () in
      Printf.printf
        "FW %d blocks @ %.2f w/s; EL %d blocks @ %.2f w/s => %.1fx space, \
         +%.1f%% bandwidth (paper: 4.4x, +12%%)\n"
        h.fw_blocks h.fw_bandwidth h.el_blocks h.el_bandwidth h.space_ratio
        h.bandwidth_increase_pct
    | "scarce" ->
      let s = El_harness.Paper.scarce_flush ~pool ~speed () in
      Printf.printf
        "EL %d blocks @ %.2f w/s; mean flush distance %.0f (25ms baseline \
         %.0f); paper: 31 blocks, 13.96 w/s, 109k vs 235k\n"
        s.total_blocks s.bandwidth s.mean_flush_distance
        s.baseline_mean_flush_distance
    | "fig7" ->
      let f = El_harness.Paper.fig7 ~pool ~speed () in
      Printf.printf "gen0 fixed at %d\n" f.g0;
      List.iter
        (fun (r : El_harness.Paper.fig7_row) ->
          Printf.printf "g1=%2d total=%2d bw_last=%.2f bw_total=%.2f %s\n" r.g1
            r.total_blocks r.bw_last r.bw_total
            (if r.feasible then "" else "(kills)"))
        f.rows
    | "fig4" | "fig5" | "fig6" | "rates" ->
      let rows = El_harness.Paper.figs_4_5_6 ~pool ~speed () in
      List.iter
        (fun (r : El_harness.Paper.mix_row) ->
          Printf.printf
            "mix=%2d%%: FW %3d blk %.2f w/s %5dB | EL %3d blk (%s) %.2f w/s \
             %5dB | %3.0f upd/s\n"
            r.long_pct r.fw_blocks r.fw_bandwidth r.fw_memory r.el_blocks
            (String.concat "+"
               (Array.to_list (Array.map string_of_int r.el_sizes)))
            r.el_bandwidth r.el_memory r.updates_per_sec)
        rows
    | other -> Printf.eprintf "unknown experiment %S\n" other
  in
  Cmd.v
    (Cmd.info "paper" ~doc:"Reproduce a published experiment.")
    Term.(const action $ what $ quick $ jobs_term)

let adaptive_cmd =
  let initial =
    let doc = "Starting (generous) generation sizes for the controller." in
    Arg.(value & opt (list int) [ 30; 60 ] & info [ "initial" ] ~doc)
  in
  let action cfg initial =
    let outcome =
      El_harness.Adaptive.tune cfg ~initial:(Array.of_list initial) ()
    in
    List.iter
      (fun (s : El_harness.Adaptive.step) ->
        Printf.printf "epoch %2d: %-12s %s (%.2f w/s)\n" s.epoch
          (String.concat "+" (Array.to_list (Array.map string_of_int s.sizes)))
          (if s.feasible then "healthy"
           else Printf.sprintf "UNHEALTHY (%d kills, %d evictions)" s.killed
              s.evictions)
          s.bandwidth)
      outcome.El_harness.Adaptive.trajectory;
    Printf.printf "final: %s blocks (%s)\n"
      (String.concat "+"
         (Array.to_list
            (Array.map string_of_int outcome.El_harness.Adaptive.final_sizes)))
      (if outcome.El_harness.Adaptive.converged then "converged"
       else "epoch budget exhausted")
  in
  Cmd.v
    (Cmd.info "adaptive"
       ~doc:
         "Run the adaptive generation-sizing controller (Sec. 6's wished-for \
          capability): shrink generations epoch by epoch until the workload \
          pushes back.")
    Term.(const action $ config_term $ initial)

let trace_cmd =
  let scenario =
    let doc =
      "Preset overriding the other options: $(b,scarce) is the paper's \
       scarce-flush-capacity setup (45 ms flushes against a 20+11 EL log, \
       120 s) whose flush backlog climbs and then stabilises under the \
       negative-feedback effect of Sec. 4."
    in
    Arg.(
      value
      & opt (some (enum [ ("scarce", `Scarce) ])) None
      & info [ "scenario" ] ~doc ~docv:"NAME")
  in
  let out =
    let doc =
      "Output path prefix: writes $(docv).trace.json (Chrome trace_event, \
       loadable in Perfetto or chrome://tracing), $(docv).timeseries.csv and \
       $(docv).summary.json."
    in
    Arg.(value & opt string "el-sim-trace" & info [ "o"; "out" ] ~doc ~docv:"PREFIX")
  in
  let ring_capacity =
    let doc = "Trace ring capacity: retained events (newest win)." in
    Arg.(value & opt int 65536 & info [ "ring-capacity" ] ~doc)
  in
  let sample_ms =
    let doc = "Time-series sampling period in simulated milliseconds." in
    Arg.(value & opt int 100 & info [ "sample-ms" ] ~doc)
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let action cfg scenario out ring_capacity sample_ms =
    let cfg =
      match scenario with
      | None -> cfg
      | Some `Scarce ->
        let mix = El_workload.Mix.short_long ~long_fraction:0.05 in
        let policy = Policy.default ~generation_sizes:[| 20; 11 |] in
        {
          (Experiment.default_config ~kind:(Experiment.Ephemeral policy) ~mix) with
          Experiment.flush_transfer = Time.of_ms 45;
          runtime = Time.of_sec 120;
        }
    in
    let observer =
      Some
        {
          El_obs.Obs.ring_capacity;
          sample_period = Time.of_ms sample_ms;
        }
    in
    let cfg = { cfg with Experiment.observer } in
    let live = Experiment.prepare cfg in
    let result = live.Experiment.finish () in
    let o = Option.get live.Experiment.obs in
    let trace_path = out ^ ".trace.json" in
    let csv_path = out ^ ".timeseries.csv" in
    let summary_path = out ^ ".summary.json" in
    write_file trace_path (El_obs.Export.chrome_trace o);
    write_file csv_path (El_obs.Export.timeseries_csv o);
    write_file summary_path
      (El_obs.Export.summary_json
         ~extra:
           [
             ( "result",
               El_obs.Jsonx.Obj
                 [
                   ("committed", El_obs.Jsonx.Int result.Experiment.committed);
                   ("killed", El_obs.Jsonx.Int result.Experiment.killed);
                   ( "log_write_rate",
                     El_obs.Jsonx.Float result.Experiment.log_write_rate );
                   ( "flush_backlog_peak",
                     El_obs.Jsonx.Int result.Experiment.flush_backlog_peak );
                   ( "feasible",
                     El_obs.Jsonx.Bool result.Experiment.feasible );
                 ] );
           ]
         o);
    Printf.printf "trace:   %s (%d events recorded, %d dropped)\n" trace_path
      (El_obs.Obs.recorded o) (El_obs.Obs.dropped o);
    Printf.printf "series:  %s (%d samples x %d columns)\n" csv_path
      (El_obs.Sampler.length (El_obs.Obs.sampler o))
      (List.length (El_obs.Sampler.columns (El_obs.Obs.sampler o)));
    Printf.printf "summary: %s\n\n" summary_path;
    print_result result
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one simulation with the observability layer enabled and export \
          a Chrome trace_event JSON (Perfetto-loadable), a time-series CSV \
          and a machine-readable JSON summary.")
    Term.(
      const action $ config_term $ scenario $ out $ ring_capacity $ sample_ms)

let check_cmd =
  let seeds =
    let doc = "Number of seeds to sweep per manager kind." in
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc)
  in
  let stride =
    let doc =
      "Events between audit pauses: an integer, or small|medium|large \
       (50/200/1000).  Smaller strides crash more often and run longer."
    in
    let parse = function
      | "small" -> Ok 50
      | "medium" -> Ok 200
      | "large" -> Ok 1000
      | s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | _ -> Error (`Msg ("bad stride: " ^ s)))
    in
    let stride_conv = Arg.conv (parse, Format.pp_print_int) in
    Arg.(value & opt stride_conv 200 & info [ "stride" ] ~doc)
  in
  let check_runtime =
    let doc = "Simulated runtime of each swept run, in seconds." in
    Arg.(value & opt float 20.0 & info [ "runtime" ] ~doc)
  in
  let check_rate =
    let doc = "Transaction arrival rate of each swept run, per second." in
    Arg.(value & opt float 40.0 & info [ "rate" ] ~doc)
  in
  let spec =
    let doc =
      "Also replay each sweep against the durable-log state-machine spec: \
       every sink event, kill and flush completion must be a legal step, the \
       persistent-never-exceeds-ephemeral invariant must hold at every \
       pause, and each recovered crash image must honour every acked commit."
    in
    Arg.(value & flag & info [ "spec" ] ~doc)
  in
  let quick =
    let doc =
      "CI preset: 1 seed, stride 40, 15 s runs; requires at least 50 crash \
       points per manager kind."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let action seeds stride runtime rate spec quick backend scenario shards jobs
      =
    with_pool jobs @@ fun pool ->
    let seeds, stride, runtime =
      if quick then (1, 40, 15.0) else (seeds, stride, runtime)
    in
    let runtime = Time.of_sec_f runtime in
    let backend = resolve_backend backend in
    if shards > 1 && backend <> Experiment.Sim then begin
      prerr_endline "el-sim check: --shards needs --backend sim";
      exit 2
    end;
    let module Sweep = El_check.Sweep in
    let t =
      El_metrics.Table.create
        ~columns:
          ([
             ("manager", El_metrics.Table.Left);
             ("seed", El_metrics.Table.Right);
             ("events", El_metrics.Table.Right);
             ("pauses", El_metrics.Table.Right);
             ("recoveries", El_metrics.Table.Right);
             ("committed", El_metrics.Table.Right);
             ("killed", El_metrics.Table.Right);
             ("max scan", El_metrics.Table.Right);
           ]
          @ (if spec then [ ("spec checks", El_metrics.Table.Right) ] else [])
          @ [ ("failures", El_metrics.Table.Right) ])
    in
    let failures = ref [] in
    List.iter
      (fun (name, kind) ->
        for seed = 1 to seeds do
          let cfg =
            Sweep.standard_config ~kind ~runtime ~rate ~seed ~backend
              ?preset:scenario ()
          in
          let cfg = { cfg with Experiment.shards } in
          let o = Sweep.run ~pool ~stride ~spec cfg in
          El_metrics.Table.add_row t
            ([
               name;
               string_of_int seed;
               string_of_int o.Sweep.events;
               string_of_int o.Sweep.points;
               string_of_int o.Sweep.recoveries;
               string_of_int o.Sweep.committed;
               string_of_int o.Sweep.killed;
               string_of_int o.Sweep.max_records_scanned;
             ]
            @ (if spec then [ string_of_int o.Sweep.spec_checks ] else [])
            @ [
                (if o.Sweep.overloaded then "overloaded"
                 else string_of_int (List.length o.Sweep.failures));
              ]);
          if quick && o.Sweep.points < 50 then
            failures :=
              Printf.sprintf
                "%s seed %d: only %d crash points (quick mode requires 50)"
                name seed o.Sweep.points
              :: !failures;
          List.iter
            (fun (at, msg) ->
              failures :=
                Printf.sprintf "%s seed %d [event %d]: %s" name seed at msg
                :: !failures)
            o.Sweep.failures
        done)
      (Sweep.standard_kinds ());
    El_metrics.Table.print t;
    match List.rev !failures with
    | [] -> print_endline "all sweeps clean"
    | fs ->
      Printf.eprintf "%d audit failure(s):\n" (List.length fs);
      List.iter prerr_endline fs;
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check the simulator: sweep seeded runs of all three log \
          managers, auditing invariants and (for EL) crash-recovering at \
          every stride-th event boundary, then compare each manager against \
          an in-memory reference model.  With --spec, additionally replay \
          every run against the pure durable-log state machine (a \
          machine-checked 'ack implies recoverable' contract).  With \
          --backend mem|file, every swept run also serializes its blocks \
          through the durable store.  Exits non-zero on any divergence.  \
          --jobs N fans each sweep's crash points out across N domains \
          (identical findings, shorter wall-clock).  --shards N sweeps the \
          multi-shard plant instead: per-shard differential models plus the \
          global atomic-commit invariant over every crash point.")
    Term.(
      const action $ seeds $ stride $ check_runtime $ check_rate $ spec
      $ quick $ backend_term $ scenario_term $ shards_term $ jobs_term)

let fault_cmd =
  let module FP = El_fault.Fault_plan in
  let seeds =
    let doc = "Number of fault-plan seeds to sweep per manager kind." in
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc)
  in
  let stride =
    let doc =
      "Events between fault points: an integer, or small|medium|large \
       (50/200/1000)."
    in
    let parse = function
      | "small" -> Ok 50
      | "medium" -> Ok 200
      | "large" -> Ok 1000
      | s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | _ -> Error (`Msg ("bad stride: " ^ s)))
    in
    let stride_conv = Arg.conv (parse, Format.pp_print_int) in
    Arg.(value & opt stride_conv 200 & info [ "stride" ] ~doc)
  in
  let fault_runtime =
    let doc = "Simulated runtime of each swept run, in seconds." in
    Arg.(value & opt float 20.0 & info [ "runtime" ] ~doc)
  in
  let fault_rate =
    let doc = "Transaction arrival rate of each swept run, per second." in
    Arg.(value & opt float 40.0 & info [ "rate" ] ~doc)
  in
  let transient =
    let doc = "Per-op transient I/O failure probability on every device." in
    Arg.(value & opt float 0.0 & info [ "transient" ] ~doc)
  in
  let burst =
    let doc = "Maximum consecutive transient failures per affected op." in
    Arg.(value & opt int 2 & info [ "burst" ] ~doc)
  in
  let sticky =
    let doc = "Per-op sticky (bad-sector) probability on every device." in
    Arg.(value & opt float 0.0 & info [ "sticky" ] ~doc)
  in
  let torn =
    let doc = "Per-write torn-write probability on the log channels." in
    Arg.(value & opt float 0.0 & info [ "torn" ] ~doc)
  in
  let retry_budget =
    let doc = "Transient failures absorbed per op before remapping." in
    Arg.(value & opt int 3 & info [ "retry-budget" ] ~doc)
  in
  let penalty_ms =
    let doc =
      "Extra service time per absorbed retry (ms).  Non-zero penalties \
       perturb timing; the default 0 keeps retries timing-neutral."
    in
    Arg.(value & opt int 0 & info [ "penalty-ms" ] ~doc)
  in
  let spares =
    let doc = "Spare sectors per device (remap capacity; fatal at 0 left)." in
    Arg.(value & opt int 1024 & info [ "spares" ] ~doc)
  in
  let latency =
    let doc =
      "Latency window FACTOR:FROM_S:UNTIL_S on the flush drives, repeatable. \
       Service times are multiplied by FACTOR while simulated time lies in \
       [FROM, UNTIL)."
    in
    let parse s =
      match String.split_on_char ':' s with
      | [ f; a; b ] -> (
        try
          Ok
            {
              FP.w_factor = float_of_string f;
              w_from = Time.of_sec_f (float_of_string a);
              w_until = Time.of_sec_f (float_of_string b);
            }
        with _ -> Error (`Msg ("bad latency window: " ^ s)))
      | _ -> Error (`Msg ("bad latency window: " ^ s))
    in
    let print ppf (w : FP.window) =
      Format.fprintf ppf "%g:%g:%g" w.FP.w_factor
        (Time.to_sec_f w.FP.w_from)
        (Time.to_sec_f w.FP.w_until)
    in
    Arg.(value & opt_all (conv (parse, print)) [] & info [ "latency" ] ~doc)
  in
  let shed_backlog =
    let doc =
      "Arm degraded mode: shed arriving transactions while the flush backlog \
       is at least $(docv)."
    in
    Arg.(value & opt (some int) None & info [ "shed-backlog" ] ~doc ~docv:"N")
  in
  let quick =
    let doc =
      "CI preset: 3 seeds, stride 40 (at least 50 fault points per sweep), \
       20 s runs under a fault storm (transient 0.05 burst 2, sticky 0.002, \
       torn 0.2 on the log channels)."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let identity =
    let doc =
      "Instead of injecting faults, pin the determinism contract: sweep each \
       configuration under the empty plan and under an armed-but-inert plan \
       (all rates zero) and require byte-identical outcomes."
    in
    Arg.(value & flag & info [ "identity" ] ~doc)
  in
  let action seeds stride runtime rate transient burst sticky torn retry_budget
      penalty_ms spares latency shed_backlog quick identity scenario jobs =
    (* Fault_plan.make validates rates/windows with Invalid_argument;
       surface those as flag errors, not a backtrace. *)
    (fun body ->
      try body () with Invalid_argument msg ->
        Printf.eprintf "el-sim: fault: %s\n" msg;
        exit 124)
    @@ fun () ->
    with_pool jobs @@ fun pool ->
    let module Sweep = El_check.Sweep in
    let seeds, stride, runtime, transient, burst, sticky, torn =
      if quick then (seeds, 40, 20.0, 0.05, 2, 0.002, 0.2)
      else (seeds, stride, runtime, transient, burst, sticky, torn)
    in
    let runtime = Time.of_sec_f runtime in
    let plan_for seed =
      let log_spec =
        {
          FP.clean_spec with
          FP.transient_rate = transient;
          transient_burst = burst;
          sticky_rate = sticky;
          torn_rate = torn;
        }
      in
      (* Latency windows go on the flush drives only: delaying a log
         channel can defer a survivor's forward write past the reuse of
         its origin slot, which genuinely loses data at a crash (a real
         hazard of the design, documented in DESIGN.md Sec. 10) — the
         audited sweep exercises timing faults where they are safe. *)
      let flush_spec =
        {
          FP.clean_spec with
          FP.transient_rate = transient;
          transient_burst = burst;
          sticky_rate = sticky;
          latency;
        }
      in
      FP.make ~seed
        ~retry:{ FP.budget = retry_budget; penalty = Time.of_ms penalty_ms }
        ~spares
        ?degraded:
          (Option.map (fun n -> { FP.shed_backlog = n }) shed_backlog)
        ~log_spec ~flush_spec ~log_gens:2 ~flush_drives:2 ()
    in
    if identity then begin
      let mismatches = ref [] in
      List.iter
        (fun (name, kind) ->
          for seed = 1 to seeds do
            let cfg =
              Sweep.standard_config ~kind ~runtime ~rate ~seed
                ?preset:scenario ()
            in
            let inert =
              {
                cfg with
                Experiment.fault =
                  FP.make ~seed ~log_gens:2 ~flush_drives:2 ();
              }
            in
            let o_empty = Sweep.run ~pool ~stride cfg in
            let o_inert = Sweep.run ~pool ~stride inert in
            if
              Marshal.to_string o_empty [] <> Marshal.to_string o_inert []
            then
              mismatches :=
                Printf.sprintf "%s seed %d: armed-but-inert plan diverged"
                  name seed
                :: !mismatches
          done)
        (Sweep.standard_kinds ());
      match List.rev !mismatches with
      | [] -> print_endline "empty-plan identity holds: all outcomes byte-identical"
      | ms ->
        Printf.eprintf "%d identity violation(s):\n" (List.length ms);
        List.iter prerr_endline ms;
        exit 1
    end
    else begin
      let t =
        El_metrics.Table.create
          ~columns:
            [
              ("manager", El_metrics.Table.Left);
              ("seed", El_metrics.Table.Right);
              ("events", El_metrics.Table.Right);
              ("points", El_metrics.Table.Right);
              ("recoveries", El_metrics.Table.Right);
              ("committed", El_metrics.Table.Right);
              ("killed", El_metrics.Table.Right);
              ("torn blk", El_metrics.Table.Right);
              ("torn rec", El_metrics.Table.Right);
              ("retries", El_metrics.Table.Right);
              ("remaps", El_metrics.Table.Right);
              ("sheds", El_metrics.Table.Right);
              ("failures", El_metrics.Table.Right);
            ]
      in
      let failures = ref [] in
      List.iter
        (fun (name, kind) ->
          for seed = 1 to seeds do
            let cfg =
              {
                (Sweep.standard_config ~kind ~runtime ~rate ~seed
                   ?preset:scenario ())
                with
                Experiment.fault = plan_for seed;
              }
            in
            let o = Sweep.run ~pool ~stride cfg in
            El_metrics.Table.add_row t
              [
                name;
                string_of_int seed;
                string_of_int o.Sweep.events;
                string_of_int o.Sweep.points;
                string_of_int o.Sweep.recoveries;
                string_of_int o.Sweep.committed;
                string_of_int o.Sweep.killed;
                string_of_int o.Sweep.torn_blocks;
                string_of_int o.Sweep.torn_records;
                string_of_int o.Sweep.io_retries;
                string_of_int o.Sweep.io_remaps;
                string_of_int o.Sweep.sheds;
                (if o.Sweep.overloaded then "overloaded"
                 else if o.Sweep.faulted then "io-fatal"
                 else string_of_int (List.length o.Sweep.failures));
              ];
            if quick && o.Sweep.points < 50 then
              failures :=
                Printf.sprintf
                  "%s seed %d: only %d fault points (quick mode requires 50)"
                  name seed o.Sweep.points
                :: !failures;
            List.iter
              (fun (at, msg) ->
                failures :=
                  Printf.sprintf "%s seed %d [event %d]: %s" name seed at msg
                  :: !failures)
              o.Sweep.failures
          done)
        (Sweep.standard_kinds ());
      El_metrics.Table.print t;
      match List.rev !failures with
      | [] -> print_endline "all fault sweeps clean"
      | fs ->
        Printf.eprintf "%d fault-sweep failure(s):\n" (List.length fs);
        List.iter prerr_endline fs;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Model-check the simulator under injected disk faults: sweep seeded \
          runs of all three log managers with a deterministic fault plan \
          (transient/sticky/torn errors, latency windows, optional degraded \
          load shedding), crash-recovering at every stride-th event and \
          auditing the recovered database.  With --identity, instead pins \
          the contract that an armed-but-inert plan is byte-identical to no \
          plan.  Exits non-zero on any divergence.")
    Term.(
      const action $ seeds $ stride $ fault_runtime $ fault_rate $ transient
      $ burst $ sticky $ torn $ retry_budget $ penalty_ms $ spares $ latency
      $ shed_backlog $ quick $ identity $ scenario_term $ jobs_term)

let conform_cmd =
  let module Conform = El_check.Conform in
  let stride =
    let doc = "Events between audit pauses of each sweep." in
    Arg.(value & opt int 100 & info [ "stride" ] ~doc)
  in
  let conform_runtime =
    let doc = "Simulated runtime of each swept cell, in seconds." in
    Arg.(value & opt float 20.0 & info [ "runtime" ] ~doc)
  in
  let conform_rate =
    let doc = "Transaction arrival rate of each swept cell, per second." in
    Arg.(value & opt float 40.0 & info [ "rate" ] ~doc)
  in
  let conform_seed =
    let doc = "Random seed shared by every cell." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc)
  in
  let quick =
    let doc =
      "CI preset: 15 s runs, stride 40 capped at 80 audit points, 4 s \
       store legs; requires at least 50 crash points per cell."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let action scenario stride runtime rate seed quick shards jobs =
    with_pool jobs @@ fun pool ->
    let runtime, stride, max_points, min_points, store_runtime =
      if quick then (Time.of_sec 15, 40, 80, 50, Time.of_sec 4)
      else (Time.of_sec_f runtime, stride, max_int, 0, Time.of_sec 6)
    in
    let presets =
      match scenario with
      | None -> El_workload.Workload_preset.all
      | Some p -> [ p ]
    in
    (* Store images land in a private temp directory removed at exit,
       so a conform run never litters the working tree. *)
    let store_dir = Filename.temp_file "el-sim-conform" "" in
    Sys.remove store_dir;
    Unix.mkdir store_dir 0o700;
    at_exit (fun () ->
        try
          Array.iter
            (fun f -> Sys.remove (Filename.concat store_dir f))
            (Sys.readdir store_dir);
          Unix.rmdir store_dir
        with Sys_error _ | Unix.Unix_error _ -> ());
    let report =
      Conform.run ~pool ~shards ~presets ~runtime ~rate ~seed ~stride
        ~max_points ~min_points ~store_dir ~store_runtime ()
    in
    let t =
      El_metrics.Table.create
        ~columns:
          [
            ("scenario", El_metrics.Table.Left);
            ("manager", El_metrics.Table.Left);
            ("events", El_metrics.Table.Right);
            ("points", El_metrics.Table.Right);
            ("recoveries", El_metrics.Table.Right);
            ("committed", El_metrics.Table.Right);
            ("killed", El_metrics.Table.Right);
            ("c-aborts", El_metrics.Table.Right);
            ("retries", El_metrics.Table.Right);
            ("spec checks", El_metrics.Table.Right);
            ("torn rec", El_metrics.Table.Right);
            ("failures", El_metrics.Table.Right);
          ]
    in
    List.iter
      (fun (c : Conform.cell) ->
        El_metrics.Table.add_row t
          [
            c.Conform.preset;
            c.Conform.kind;
            string_of_int c.Conform.events;
            string_of_int c.Conform.points;
            string_of_int c.Conform.recoveries;
            string_of_int c.Conform.committed;
            string_of_int c.Conform.killed;
            string_of_int c.Conform.contention_aborts;
            string_of_int c.Conform.contention_retries;
            string_of_int c.Conform.spec_checks;
            string_of_int c.Conform.torn_records;
            string_of_int (List.length c.Conform.failures);
          ])
      report.Conform.cells;
    El_metrics.Table.print t;
    if Conform.ok report then
      Printf.printf "all %d cells conform\n" (List.length report.Conform.cells)
    else begin
      Printf.eprintf "%d conformance failure(s):\n" report.Conform.failure_count;
      List.iter
        (fun (c : Conform.cell) ->
          List.iter
            (fun msg ->
              Printf.eprintf "%s/%s: %s\n" c.Conform.preset c.Conform.kind msg)
            c.Conform.failures)
        report.Conform.cells;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Run the workload-matrix conformance harness: every scenario preset \
          x every log manager (EL, FW, hybrid), each cell swept under the \
          full oracle battery — live audits, crash/recover/audit at every \
          stride-th event, the differential reference model, the durable-log \
          state-machine spec, a torn-write fault sweep, and mem-vs-file \
          durable-store replay identity.  Exits non-zero on any divergence.  \
          --scenario restricts the matrix to one preset; --jobs N fans each \
          sweep's crash points out across N domains; --shards N runs every \
          cell through the sharded composite oracle (the store battery is \
          solo-only and is skipped).")
    Term.(
      const action $ scenario_term $ stride $ conform_runtime $ conform_rate
      $ conform_seed $ quick $ shards_term $ jobs_term)

let serve_cmd =
  let image =
    let doc = "Disk image to serve (created if absent)." in
    Arg.(value & opt string "disk.img" & info [ "image" ] ~doc ~docv:"PATH")
  in
  let socket =
    let doc =
      "Listen on a Unix-domain socket at $(docv) instead of serving one \
       session over stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")
  in
  let fresh =
    let doc = "Truncate the image instead of recovering its contents." in
    Arg.(value & flag & info [ "fresh" ] ~doc)
  in
  let serve_objects =
    let doc = "Number of objects in the served database." in
    Arg.(value & opt int 100_000 & info [ "objects" ] ~doc)
  in
  let serve_generations =
    let doc = "EL generation sizes in blocks." in
    Arg.(value & opt (list int) [ 32; 32 ] & info [ "g"; "generations" ] ~doc)
  in
  let hybrid =
    let doc = "Use the hybrid manager with $(docv) queue sizes." in
    Arg.(
      value & opt (some (list int)) None & info [ "hybrid" ] ~doc ~docv:"BLOCKS")
  in
  let group_fsync =
    let doc =
      "Batch fsyncs per commit: segments appended by one COMMIT share a \
       single barrier issued before its ack, instead of one fsync per \
       segment.  Acked commits keep the same crash guarantee."
    in
    Arg.(value & flag & info [ "group-fsync" ] ~doc)
  in
  let action image socket fresh objects generations firewall hybrid group_fsync
      =
    let kind =
      match (firewall, hybrid) with
      | Some _, Some _ -> failwith "--fw and --hybrid are mutually exclusive"
      | Some blocks, None -> Experiment.Firewall blocks
      | None, Some qs -> Experiment.Hybrid (Array.of_list qs)
      | None, None ->
        Experiment.Ephemeral
          (Policy.default ~generation_sizes:(Array.of_list generations))
    in
    let t =
      El_serve.Serve.start
        { El_serve.Serve.image; fresh; kind; num_objects = objects;
          group_fsync }
    in
    let r = El_serve.Serve.recovered t in
    (* Status goes to stderr: in stdio mode stdout carries the
       protocol. *)
    Printf.eprintf "el-sim serve: image %s, %d committed transaction(s) recovered\n%!"
      image
      (List.length r.El_recovery.Recovery.committed_tids);
    (match socket with
    | None -> El_serve.Serve.serve_channel t stdin stdout
    | Some path ->
      Printf.eprintf "el-sim serve: listening on %s\n%!" path;
      El_serve.Serve.serve_socket t ~socket_path:path);
    El_serve.Serve.close t
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a durable log over a real disk image: transactions arrive as \
          BEGIN/WRITE/COMMIT/ABORT lines (stdin or --socket), every \
          [ok committed] ack is written only after the COMMIT record has \
          been fsynced, and a restart recovers all acked state from the \
          image.")
    Term.(
      const action $ image $ socket $ fresh $ serve_objects
      $ serve_generations $ firewall $ hybrid $ group_fsync)

let () =
  let subcommands =
    [ run_cmd; min_space_cmd; recover_cmd; paper_cmd; adaptive_cmd; check_cmd;
      fault_cmd; conform_cmd; trace_cmd; serve_cmd ]
  in
  (* One list, one synopsis: the summary is generated from the
     commands themselves so it cannot drift as subcommands come and
     go. *)
  let doc =
    Printf.sprintf
      "Ephemeral logging simulator (Keen & Dally, SIGMOD 1993). Subcommands: \
       %s."
      (String.concat ", " (List.map Cmd.name subcommands))
  in
  let info = Cmd.info "el-sim" ~version:"1.0.0" ~doc in
  let code =
    try Cmd.eval ~catch:false (Cmd.group info subcommands)
    with
    | Failure msg | Sys_error msg ->
      Printf.eprintf "el-sim: %s\n" msg;
      2
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "el-sim: %s: %s (%s)\n" fn (Unix.error_message e) arg;
      2
  in
  exit code
