open El_model
module Cell = El_core.Cell
module L = El_core.Cell.Cell_list

let dummy_entry tid =
  {
    Cell.e_tid = Ids.Tid.of_int tid;
    expected_duration = Time.of_sec 1;
    begun_at = Time.zero;
    tx_cell = None;
    write_set = Ids.Oid.Table.create 4;
    tx_state = `Active;
    act_prev = None;
    act_next = None;
    act_linked = false;
    e_free = false;
  }

let make_cell ?(tid = 0) ?(gen = 0) ?(slot = 0) () =
  let record =
    Log_record.begin_ ~tid:(Ids.Tid.of_int tid) ~size:8 ~timestamp:Time.zero
  in
  let tracked = Cell.track record in
  Cell.attach tracked ~gen ~slot ~owner:(Cell.Tx_of (dummy_entry tid))

let ids l = List.map (fun c -> Ids.Tid.to_int c.Cell.tracked.Cell.record.Log_record.tid) (L.to_list l)

let test_attach () =
  let record =
    Log_record.begin_ ~tid:(Ids.Tid.of_int 1) ~size:8 ~timestamp:Time.zero
  in
  let tracked = Cell.track record in
  Alcotest.(check bool) "born garbage" true (Cell.is_garbage tracked);
  let cell = Cell.attach tracked ~gen:0 ~slot:3 ~owner:(Cell.Tx_of (dummy_entry 1)) in
  Alcotest.(check bool) "now non-garbage" false (Cell.is_garbage tracked);
  Alcotest.(check bool) "self-linked" true (Cell.detached cell);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Cell.attach: already has a cell") (fun () ->
      ignore (Cell.attach tracked ~gen:0 ~slot:3 ~owner:(Cell.Tx_of (dummy_entry 1))))

let test_insert_order () =
  let l = L.create () in
  let c0 = make_cell ~tid:0 () and c1 = make_cell ~tid:1 () and c2 = make_cell ~tid:2 () in
  L.insert_tail l c0;
  L.insert_tail l c1;
  L.insert_tail l c2;
  Alcotest.(check (list int)) "head-to-tail order" [ 0; 1; 2 ] (ids l);
  (match L.head l with
  | Some h -> Alcotest.(check int) "h_i is oldest" 0
      (Ids.Tid.to_int h.Cell.tracked.Cell.record.Log_record.tid)
  | None -> Alcotest.fail "head");
  L.check_invariants l

let test_remove_head_middle_tail () =
  let l = L.create () in
  let cells = List.init 5 (fun i -> make_cell ~tid:i ()) in
  List.iter (L.insert_tail l) cells;
  L.remove l (List.nth cells 2);
  Alcotest.(check (list int)) "middle gone" [ 0; 1; 3; 4 ] (ids l);
  L.remove l (List.nth cells 0);
  Alcotest.(check (list int)) "head advances" [ 1; 3; 4 ] (ids l);
  L.remove l (List.nth cells 4);
  Alcotest.(check (list int)) "tail gone" [ 1; 3 ] (ids l);
  L.check_invariants l;
  L.remove l (List.nth cells 1);
  L.remove l (List.nth cells 3);
  Alcotest.(check bool) "empty" true (L.is_empty l);
  L.check_invariants l

let test_remove_errors () =
  let l = L.create () in
  let c = make_cell () in
  Alcotest.check_raises "remove from empty"
    (Invalid_argument "Cell_list.remove: cell not linked") (fun () ->
      L.remove l c);
  L.insert_tail l c;
  let stranger = make_cell ~tid:99 () in
  Alcotest.check_raises "remove unlinked cell"
    (Invalid_argument "Cell_list.remove: cell not linked") (fun () ->
      L.remove l stranger);
  Alcotest.check_raises "double insert"
    (Invalid_argument "Cell_list.insert_tail: cell linked") (fun () ->
      L.insert_tail l c)

let test_reinsert_after_remove () =
  let l = L.create () in
  let c0 = make_cell ~tid:0 () and c1 = make_cell ~tid:1 () in
  L.insert_tail l c0;
  L.insert_tail l c1;
  (* Recirculation moves the head cell to the tail. *)
  L.remove l c0;
  L.insert_tail l c0;
  Alcotest.(check (list int)) "rotated" [ 1; 0 ] (ids l);
  L.check_invariants l

(* Model-based property test: a random sequence of inserts/removes
   behaves like a reference list. *)
let prop_model =
  QCheck.Test.make ~name:"cell list behaves like a queue with removal"
    ~count:200
    QCheck.(list (pair bool (int_bound 19)))
    (fun ops ->
      let l = L.create () in
      let cells = Array.init 20 (fun i -> make_cell ~tid:i ()) in
      let model = ref [] in
      List.iter
        (fun (insert, i) ->
          let c = cells.(i) in
          if insert then begin
            if not (List.mem i !model) then begin
              L.insert_tail l c;
              model := !model @ [ i ]
            end
          end
          else if List.mem i !model then begin
            L.remove l c;
            model := List.filter (fun j -> j <> i) !model
          end)
        ops;
      L.check_invariants l;
      ids l = !model && L.length l = List.length !model)

let suite =
  [
    Alcotest.test_case "attach and garbage flag" `Quick test_attach;
    Alcotest.test_case "tail insertion keeps head order" `Quick
      test_insert_order;
    Alcotest.test_case "removal everywhere" `Quick test_remove_head_middle_tail;
    Alcotest.test_case "removal errors" `Quick test_remove_errors;
    Alcotest.test_case "rotation (recirculation move)" `Quick
      test_reinsert_after_remove;
    QCheck_alcotest.to_alcotest prop_model;
  ]
