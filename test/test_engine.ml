open El_model
module Engine = El_sim.Engine

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule_at e (Time.of_ms 10) (fun () ->
      seen := Time.to_us (Engine.now e) :: !seen);
  Engine.schedule_at e (Time.of_ms 5) (fun () ->
      seen := Time.to_us (Engine.now e) :: !seen);
  Engine.run_all e;
  Alcotest.(check (list int)) "dispatch times" [ 10_000; 5_000 ] !seen

let test_schedule_after () =
  let e = Engine.create () in
  let fired = ref Time.zero in
  Engine.schedule_at e (Time.of_ms 3) (fun () ->
      Engine.schedule_after e (Time.of_ms 4) (fun () -> fired := Engine.now e));
  Engine.run_all e;
  Alcotest.(check int) "relative delay" 7_000 (Time.to_us !fired)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun ms -> Engine.schedule_at e (Time.of_ms ms) (fun () -> incr count))
    [ 1; 2; 3; 10; 20 ];
  Engine.run e ~until:(Time.of_ms 5);
  Alcotest.(check int) "only early events" 3 !count;
  Alcotest.(check int) "clock at limit" 5_000 (Time.to_us (Engine.now e));
  Alcotest.(check int) "pending remain" 2 (Engine.pending_events e);
  Engine.run_all e;
  Alcotest.(check int) "all dispatched" 5 !count

let test_no_past_scheduling () =
  let e = Engine.create () in
  Engine.schedule_at e (Time.of_ms 10) (fun () -> ());
  Engine.run_all e;
  Alcotest.check_raises "past rejected"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      Engine.schedule_at e (Time.of_ms 5) (fun () -> ()))

let test_cascading_events () =
  (* An event scheduling another event at the same instant runs it in
     the same run_all, after all previously queued work. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e (Time.of_ms 1) (fun () ->
      log := "first" :: !log;
      Engine.schedule_after e Time.zero (fun () -> log := "chained" :: !log));
  Engine.schedule_at e (Time.of_ms 1) (fun () -> log := "second" :: !log);
  Engine.run_all e;
  Alcotest.(check (list string))
    "stable cascade order"
    [ "first"; "second"; "chained" ]
    (List.rev !log)

let test_determinism () =
  let trace seed =
    let e = Engine.create ~seed () in
    let out = ref [] in
    for _ = 1 to 5 do
      out := Random.State.int (Engine.rng e) 1000 :: !out
    done;
    !out
  in
  Alcotest.(check (list int)) "same seed, same draws" (trace 7) (trace 7);
  Alcotest.(check bool) "different seeds differ" true (trace 7 <> trace 8)

let test_events_dispatched () =
  let e = Engine.create () in
  for i = 1 to 4 do
    Engine.schedule_at e (Time.of_ms i) (fun () -> ())
  done;
  Engine.run_all e;
  Alcotest.(check int) "counter" 4 (Engine.events_dispatched e)

(* Regression pins for the documented [run ~until] clock semantics:
   the clock finishes exactly at [until] whether or not any event was
   dispatched, and a call with [until] in the past dispatches nothing
   and never rewinds the clock. *)
let test_run_until_clock_semantics () =
  let e = Engine.create () in
  Engine.run e ~until:(Time.of_ms 8);
  Alcotest.(check int) "empty queue still advances the clock" 8_000
    (Time.to_us (Engine.now e));
  Engine.schedule_at e (Time.of_ms 20) (fun () -> ());
  Engine.run e ~until:(Time.of_ms 3);
  Alcotest.(check int) "until in the past never rewinds" 8_000
    (Time.to_us (Engine.now e));
  Alcotest.(check int) "and dispatches nothing" 1 (Engine.pending_events e);
  Engine.run e ~until:(Time.of_ms 25);
  Alcotest.(check int) "clock lands on until, not the last event" 25_000
    (Time.to_us (Engine.now e));
  Alcotest.(check int) "event dispatched" 0 (Engine.pending_events e)

let test_run_steps_pauses () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun ms -> Engine.schedule_at e (Time.of_ms ms) (fun () -> incr count))
    [ 1; 2; 3; 4; 5 ];
  let n = Engine.run_steps e ~until:(Time.of_ms 10) ~max_steps:2 in
  Alcotest.(check int) "stride honoured" 2 n;
  Alcotest.(check int) "clock rests at the last dispatched event" 2_000
    (Time.to_us (Engine.now e));
  Alcotest.(check int) "remaining events untouched" 3 (Engine.pending_events e);
  let n = Engine.run_steps e ~until:(Time.of_ms 10) ~max_steps:50 in
  Alcotest.(check int) "exhausts eligible events" 3 n;
  Alcotest.(check int) "then advances the clock to until" 10_000
    (Time.to_us (Engine.now e));
  Alcotest.(check int) "all dispatched" 5 !count

let test_on_dispatch_observer () =
  let e = Engine.create () in
  let boundaries = ref [] in
  Engine.on_dispatch e (fun () ->
      boundaries := Time.to_us (Engine.now e) :: !boundaries);
  List.iter
    (fun ms -> Engine.schedule_at e (Time.of_ms ms) (fun () -> ()))
    [ 2; 1; 3 ];
  Engine.run_all e;
  Alcotest.(check (list int)) "observer sees every boundary in order"
    [ 1_000; 2_000; 3_000 ] (List.rev !boundaries);
  Alcotest.(check int) "observer does not count as dispatch" 3
    (Engine.events_dispatched e)

let test_observer_registration_fifo () =
  (* Regression for the quadratic `observers @ [f]` registration: many
     observers registered one by one (including mid-run) must still
     fire in FIFO registration order at every subsequent dispatch. *)
  let e = Engine.create () in
  let order = ref [] in
  let register i = Engine.on_dispatch e (fun () -> order := i :: !order) in
  List.iter register [ 0; 1; 2 ];
  Engine.schedule_at e (Time.of_ms 1) (fun () -> ());
  Engine.run_all e;
  Alcotest.(check (list int)) "initial batch is FIFO" [ 0; 1; 2 ]
    (List.rev !order);
  (* a second batch, registered after a dispatch has already built the
     internal FIFO cache, must append after the first *)
  List.iter register [ 3; 4 ];
  order := [];
  Engine.schedule_at e (Time.of_ms 2) (fun () -> ());
  Engine.run_all e;
  Alcotest.(check (list int)) "later registrations keep FIFO order"
    [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_observer_registered_mid_dispatch () =
  (* An observer registered from inside an event (or another observer)
     first runs at the following dispatch, never the current one. *)
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e (Time.of_ms 1) (fun () ->
      Engine.on_dispatch e (fun () -> incr hits));
  Engine.schedule_at e (Time.of_ms 2) (fun () -> ());
  Engine.run_all e;
  Alcotest.(check int) "fires only at later boundaries" 1 !hits

let suite =
  [
    Alcotest.test_case "clock advances with dispatch" `Quick test_clock_advances;
    Alcotest.test_case "run ~until clock semantics pinned" `Quick
      test_run_until_clock_semantics;
    Alcotest.test_case "run_steps pauses at event boundaries" `Quick
      test_run_steps_pauses;
    Alcotest.test_case "on_dispatch observers fire at boundaries" `Quick
      test_on_dispatch_observer;
    Alcotest.test_case "observer registration is FIFO at dispatch" `Quick
      test_observer_registration_fifo;
    Alcotest.test_case "mid-dispatch registration fires next boundary" `Quick
      test_observer_registered_mid_dispatch;
    Alcotest.test_case "schedule_after is relative" `Quick test_schedule_after;
    Alcotest.test_case "run ~until stops and sets clock" `Quick test_run_until;
    Alcotest.test_case "scheduling in the past is rejected" `Quick
      test_no_past_scheduling;
    Alcotest.test_case "same-instant cascades are FIFO" `Quick
      test_cascading_events;
    Alcotest.test_case "seeded determinism" `Quick test_determinism;
    Alcotest.test_case "dispatch counter" `Quick test_events_dispatched;
  ]
