(* The durable block store: backend units, the checksummed segment
   codec, log-store scan semantics, and the headline equivalence the
   subsystem exists for — the same seeded run recovers byte-identical
   committed state whether its blocks went through the in-memory
   backend, a real disk image, or (modulo store counters) no store at
   all. *)

open El_model
module Backend = El_store.Backend
module Codec = El_store.Codec
module Log_store = El_store.Log_store
module Experiment = El_harness.Experiment
module Recovery = El_recovery.Recovery
module Sweep = El_check.Sweep

let with_temp_dir f =
  let dir = Filename.temp_file "el_store_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let with_file_backend f =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "disk.img" in
      let b = Backend.file ~path in
      Fun.protect ~finally:(fun () -> Backend.close b) (fun () -> f b path))

(* ---- backends ---- *)

let test_mem_roundtrip () =
  let b = Backend.mem () in
  Backend.pwrite b ~off:0 (Bytes.of_string "hello");
  Backend.pwrite b ~off:10_000 (Bytes.of_string "world");
  Alcotest.(check string)
    "read back" "hello"
    (Bytes.to_string (Backend.pread b ~off:0 ~len:5));
  Alcotest.(check string)
    "read past growth" "world"
    (Bytes.to_string (Backend.pread b ~off:10_000 ~len:5));
  (* the gap is zero-filled, not garbage *)
  Alcotest.(check string)
    "gap zeroed"
    (String.make 8 '\000')
    (Bytes.to_string (Backend.pread b ~off:100 ~len:8));
  Alcotest.(check int) "size" 10_005 (Backend.size b);
  Backend.barrier b;
  let c = Backend.counters b in
  Alcotest.(check int) "pwrites" 2 c.Backend.pwrites;
  Alcotest.(check int) "barriers" 1 c.Backend.barriers;
  Alcotest.(check int) "bytes" 10 c.Backend.bytes_written

let test_file_persists () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "disk.img" in
      let b = Backend.file ~path in
      Backend.pwrite b ~off:0 (Bytes.of_string "durable");
      Backend.barrier b;
      Backend.close b;
      let b2 = Backend.file ~path in
      Alcotest.(check string)
        "reopened read" "durable"
        (Bytes.to_string (Backend.pread b2 ~off:0 ~len:7));
      Backend.close b2)

let test_mem_file_byte_equal () =
  with_file_backend (fun fb _path ->
      let mb = Backend.mem () in
      let writes = [ (0, "aaaa"); (100, "bb"); (37, "cccc"); (90, "dd") ] in
      List.iter
        (fun (off, s) ->
          Backend.pwrite mb ~off (Bytes.of_string s);
          Backend.pwrite fb ~off (Bytes.of_string s))
        writes;
      Alcotest.(check int) "sizes agree" (Backend.size mb) (Backend.size fb);
      let len = Backend.size mb in
      Alcotest.(check string)
        "images byte-identical"
        (Bytes.to_string (Backend.pread mb ~off:0 ~len))
        (Bytes.to_string (Backend.pread fb ~off:0 ~len)))

let test_use_after_close () =
  let b = Backend.mem () in
  Backend.close b;
  Alcotest.check_raises "pwrite after close"
    (Invalid_argument "El_store.Backend: use after close") (fun () ->
      Backend.pwrite b ~off:0 (Bytes.of_string "x"))

(* ---- codec ---- *)

let sample_records =
  [
    Log_record.begin_ ~tid:(Ids.Tid.of_int 7) ~size:8
      ~timestamp:(Time.of_us 123);
    Log_record.data ~tid:(Ids.Tid.of_int 7) ~oid:(Ids.Oid.of_int 42)
      ~version:3 ~size:100 ~timestamp:(Time.of_us 456);
    Log_record.commit ~tid:(Ids.Tid.of_int 7) ~size:8
      ~timestamp:(Time.of_us 789);
    Log_record.abort ~tid:(Ids.Tid.of_int 9) ~size:8
      ~timestamp:(Time.of_us 1000);
  ]

let test_codec_roundtrip () =
  List.iter
    (fun r ->
      let b = Codec.encode_entry (Codec.Record r) in
      Alcotest.(check int) "entry size" Codec.entry_bytes (Bytes.length b);
      match Codec.decode_entry b ~pos:0 with
      | Some (Codec.Record r') ->
        Alcotest.(check bool) "roundtrip" true (r = r')
      | Some (Codec.Stable _) | None -> Alcotest.fail "decode failed")
    sample_records;
  let st = Codec.Stable { oid = Ids.Oid.of_int 99; version = 12 } in
  match Codec.decode_entry (Codec.encode_entry st) ~pos:0 with
  | Some (Codec.Stable { oid; version }) ->
    Alcotest.(check int) "stable oid" 99 (Ids.Oid.to_int oid);
    Alcotest.(check int) "stable version" 12 version
  | Some (Codec.Record _) | None -> Alcotest.fail "stable decode failed"

let test_codec_corruption () =
  let r = List.hd sample_records in
  let b = Codec.encode_entry ~corrupt:true (Codec.Record r) in
  Alcotest.(check bool)
    "corrupt entry rejected" true
    (Codec.decode_entry b ~pos:0 = None);
  let good = Codec.encode_entry (Codec.Record r) in
  (* flipping any payload byte must invalidate the checksum *)
  Bytes.set good 9 (Char.chr (Char.code (Bytes.get good 9) lxor 0x40));
  Alcotest.(check bool)
    "bit flip rejected" true
    (Codec.decode_entry good ~pos:0 = None)

let test_header_roundtrip () =
  let h =
    { Codec.h_epoch = 2; h_gen = 1; h_slot = 5; h_seq = 17; h_count = 3 }
  in
  let b = Codec.encode_header h in
  Alcotest.(check int) "header size" Codec.header_bytes (Bytes.length b);
  (match Codec.decode_header b ~pos:0 with
  | Some h' -> Alcotest.(check bool) "roundtrip" true (h = h')
  | None -> Alcotest.fail "header decode failed");
  Bytes.set b 0 'X';
  Alcotest.(check bool)
    "bad magic rejected" true
    (Codec.decode_header b ~pos:0 = None)

(* ---- log store ---- *)

let records_of n base =
  List.init n (fun i ->
      Log_record.data
        ~tid:(Ids.Tid.of_int (base + i))
        ~oid:(Ids.Oid.of_int (base + i))
        ~version:(i + 1) ~size:10
        ~timestamp:(Time.of_us (base + i)))

let test_store_scan_dedup () =
  let b = Backend.mem () in
  let t = Log_store.create b in
  Log_store.append_block t ~gen:0 ~slot:0 (records_of 3 100);
  Log_store.append_block t ~gen:0 ~slot:1 (records_of 2 200);
  (* slot 0 is reused: only the newer segment may survive the scan *)
  Log_store.append_block t ~gen:0 ~slot:0 (records_of 4 300);
  Log_store.append_stable t ~oid:(Ids.Oid.of_int 5) ~version:2;
  Log_store.append_stable t ~oid:(Ids.Oid.of_int 5) ~version:7;
  let s = Log_store.scan b in
  Alcotest.(check int) "segments written" 5 s.Log_store.s_segments;
  Alcotest.(check int) "stale blocks" 1 s.Log_store.s_stale_blocks;
  Alcotest.(check bool) "no torn tail" false s.Log_store.s_torn_tail;
  let live =
    List.filter (fun bl -> bl.Log_store.sb_gen >= 0) s.Log_store.s_blocks
  in
  Alcotest.(check int) "live blocks" 2 (List.length live);
  let slot0 =
    List.find (fun bl -> bl.Log_store.sb_slot = 0) live
  in
  Alcotest.(check int)
    "newest wins slot 0" 4
    (List.length slot0.Log_store.sb_records);
  Alcotest.(check bool)
    "stable folds max version" true
    (s.Log_store.s_stable = [ (Ids.Oid.of_int 5), 7 ])

let test_store_torn_suffix () =
  let b = Backend.mem () in
  let t = Log_store.create b in
  Log_store.append_block t ~gen:0 ~slot:0 ~torn_suffix:2 (records_of 5 0);
  let s = Log_store.scan b in
  let bl = List.hd s.Log_store.s_blocks in
  Alcotest.(check int) "valid prefix" 3 (List.length bl.Log_store.sb_records);
  Alcotest.(check int) "discarded" 2 bl.Log_store.sb_discarded

let test_store_upto () =
  let b = Backend.mem () in
  let t = Log_store.create b in
  Log_store.append_block t ~gen:0 ~slot:0 (records_of 2 0);
  let mark = Log_store.position t in
  Log_store.append_block t ~gen:0 ~slot:1 (records_of 3 50);
  Log_store.append_stable t ~oid:(Ids.Oid.of_int 1) ~version:9;
  let s = Log_store.scan ~upto:mark b in
  Alcotest.(check int) "blocks before mark" 1 (List.length s.Log_store.s_blocks);
  Alcotest.(check bool) "stable after mark excluded" true
    (s.Log_store.s_stable = []);
  let full = Log_store.scan b in
  Alcotest.(check int) "full scan sees all" 2 (List.length full.Log_store.s_blocks)

let test_attach_epochs () =
  with_file_backend (fun b _path ->
      let t0 = Log_store.create b in
      Log_store.append_block t0 ~gen:0 ~slot:0 (records_of 2 0);
      let t1 = Log_store.attach b in
      (* the new epoch's reuse of slot 0 must NOT shadow epoch 0's block *)
      Log_store.append_block t1 ~gen:0 ~slot:0 (records_of 3 10);
      let s = Log_store.scan b in
      Alcotest.(check int) "both epochs' blocks survive" 2
        (List.length s.Log_store.s_blocks);
      Alcotest.(check int) "epoch advanced" 1 s.Log_store.s_max_epoch)

(* The torn-tail negative of the issue: truncate a real image
   mid-record and recovery must discard exactly the torn suffix. *)
let test_truncated_image () =
  with_file_backend (fun b _path ->
      let t = Log_store.create b in
      Log_store.append_block t ~gen:0 ~slot:0 (records_of 5 0);
      let whole = Backend.size b in
      (* keep the header, 3 complete entries and half of the 4th *)
      let keep =
        Codec.header_bytes + (3 * Codec.entry_bytes) + (Codec.entry_bytes / 2)
      in
      Alcotest.(check bool) "truncation is proper" true (keep < whole);
      Backend.truncate b ~len:keep;
      let s = Log_store.scan b in
      Alcotest.(check bool) "torn tail detected" true s.Log_store.s_torn_tail;
      let bl = List.hd s.Log_store.s_blocks in
      Alcotest.(check int)
        "exactly the complete prefix survives" 3
        (List.length bl.Log_store.sb_records);
      Alcotest.(check int) "exactly the suffix discarded" 2
        bl.Log_store.sb_discarded;
      let r = Recovery.recover_store ~num_objects:100 b in
      Alcotest.(check int) "torn records counted" 2
        r.Recovery.torn_records;
      (* attach truncates the torn tail away; a rescan is clean *)
      let t2 = Log_store.attach b in
      ignore t2;
      let s2 = Log_store.scan b in
      Alcotest.(check bool) "attach cleaned the tail" false
        s2.Log_store.s_torn_tail)

(* ---- backend equivalence ---- *)

let recovered_state (cfg : Experiment.config) =
  let live = Experiment.prepare cfg in
  let result = live.Experiment.finish () in
  let store = Option.get live.Experiment.store in
  let r =
    Recovery.recover_store ~num_objects:cfg.Experiment.num_objects
      (Log_store.backend store)
  in
  let state =
    ( List.sort compare (El_disk.Stable_db.snapshot r.Recovery.recovered),
      List.sort compare r.Recovery.committed_tids,
      r.Recovery.records_scanned,
      r.Recovery.torn_blocks,
      r.Recovery.torn_records )
  in
  Experiment.dispose live;
  (result, state)

let neutral_result (r : Experiment.result) =
  {
    r with
    Experiment.backend_name = "";
    store_pwrites = 0;
    store_barriers = 0;
    store_bytes_written = 0;
  }

let test_mem_file_equivalence () =
  with_temp_dir (fun dir ->
      List.iter
        (fun (name, kind) ->
          List.iter
            (fun seed ->
              let cfg backend =
                {
                  (Sweep.standard_config ~kind ~runtime:(Time.of_sec 6)
                     ~rate:30.0 ~seed ())
                  with
                  Experiment.backend;
                }
              in
              let rm, sm = recovered_state (cfg Experiment.Mem_store) in
              let rf, sf =
                recovered_state (cfg (Experiment.File_store dir))
              in
              Alcotest.(check string)
                (Printf.sprintf "%s seed %d: recovered state identical" name
                   seed)
                (Marshal.to_string sm [])
                (Marshal.to_string sf []);
              Alcotest.(check string)
                (Printf.sprintf
                   "%s seed %d: run results identical modulo backend name"
                   name seed)
                (Marshal.to_string
                   { (neutral_result rm) with Experiment.backend_name = "" }
                   [])
                (Marshal.to_string
                   { (neutral_result rf) with Experiment.backend_name = "" }
                   []))
            [ 1; 2; 3 ])
        (Sweep.standard_kinds ()))

let test_sim_mem_result_identity () =
  List.iter
    (fun (name, kind) ->
      let cfg backend =
        {
          (Sweep.standard_config ~kind ~runtime:(Time.of_sec 6) ~rate:30.0
             ~seed:5 ())
          with
          Experiment.backend;
        }
      in
      let r_sim = Experiment.run (cfg Experiment.Sim) in
      let r_mem = Experiment.run (cfg Experiment.Mem_store) in
      Alcotest.(check string)
        (name ^ ": store side effects never perturb the simulation")
        (Marshal.to_string (neutral_result r_sim) [])
        (Marshal.to_string (neutral_result r_mem) []))
    (Sweep.standard_kinds ())

(* ---- crash-mark fidelity ---- *)

(* A mid-run crash with torn log writes: the simulated crash image and
   the frozen store image must recover the same committed state and
   the same torn damage.  (redo_applied/skipped are scan-order
   dependent and deliberately not compared.) *)
let test_crash_mark_fidelity () =
  let module FP = El_fault.Fault_plan in
  List.iter
    (fun seed ->
      let kind =
        Experiment.Ephemeral
          (El_core.Policy.default ~generation_sizes:[| 8; 8 |])
      in
      let cfg =
        {
          (Sweep.standard_config ~kind ~runtime:(Time.of_sec 8) ~rate:40.0
             ~seed ())
          with
          Experiment.backend = Experiment.Mem_store;
          fault =
            FP.make ~seed
              ~log_spec:{ FP.clean_spec with FP.torn_rate = 0.3 }
              ~log_gens:2 ~flush_drives:2 ();
        }
      in
      let _result, sim, audit, store =
        Experiment.run_with_crash_store cfg ~crash_at:(Time.of_sec 6)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: simulated recovery audits clean" seed)
        true audit.Recovery.ok;
      match store with
      | None -> Alcotest.fail "store recovery missing"
      | Some st ->
        let view (r : Recovery.result) =
          ( List.sort compare (El_disk.Stable_db.snapshot r.Recovery.recovered),
            List.sort compare r.Recovery.committed_tids,
            r.Recovery.torn_blocks,
            r.Recovery.torn_records,
            r.Recovery.records_scanned )
        in
        Alcotest.(check string)
          (Printf.sprintf "seed %d: store replay matches simulated crash" seed)
          (Marshal.to_string (view sim) [])
          (Marshal.to_string (view st) []))
    [ 1; 2; 3 ]

(* Grouped sync must change barrier counts only: the same appends end
   in a byte-identical image once the final [sync] lands, with one
   barrier for the batch instead of one per segment. *)
let test_grouped_sync_bytes_identical () =
  let run sync_mode =
    let b = Backend.mem () in
    let t = Log_store.create ~sync_mode b in
    Log_store.append_block t ~gen:0 ~slot:0 (records_of 3 0);
    Log_store.append_block t ~gen:1 ~slot:0 (records_of 2 50);
    Log_store.append_stable t ~oid:(Ids.Oid.of_int 7) ~version:3;
    Log_store.sync t;
    let size = Backend.size b in
    ( Bytes.to_string (Backend.pread b ~off:0 ~len:size),
      (Backend.counters b).Backend.barriers,
      Log_store.group_syncs t )
  in
  let bytes_i, barriers_i, gs_i = run Log_store.Immediate in
  let bytes_g, barriers_g, gs_g = run Log_store.Grouped in
  Alcotest.(check string) "images byte-identical" bytes_i bytes_g;
  Alcotest.(check int) "immediate: a barrier per segment" 3 barriers_i;
  Alcotest.(check int) "grouped: one barrier for the batch" 1 barriers_g;
  Alcotest.(check int) "immediate: sync finds nothing dirty" 0 gs_i;
  Alcotest.(check int) "grouped: one sync wave" 1 gs_g

(* request_group_sync coalesces: many requests in one settle wave
   schedule one callback, and a clean store schedules nothing. *)
let test_group_sync_coalesces () =
  let b = Backend.mem () in
  let t = Log_store.create ~sync_mode:Log_store.Grouped b in
  let pending = ref [] in
  let schedule k = pending := k :: !pending in
  Log_store.append_block t ~gen:0 ~slot:0 (records_of 1 0);
  Log_store.request_group_sync t ~schedule;
  Log_store.append_block t ~gen:0 ~slot:1 (records_of 1 10);
  Log_store.request_group_sync t ~schedule;
  Alcotest.(check int) "second request coalesced" 1 (List.length !pending);
  List.iter (fun k -> k ()) !pending;
  Alcotest.(check int) "one barrier covers both segments" 1
    (Backend.counters b).Backend.barriers;
  Alcotest.(check bool) "store clean after the wave" false (Log_store.dirty t);
  pending := [];
  Log_store.request_group_sync t ~schedule;
  Alcotest.(check int) "clean store schedules nothing" 0
    (List.length !pending);
  (* leaving Grouped mode flushes rather than stranding dirty bytes *)
  Log_store.append_block t ~gen:0 ~slot:2 (records_of 1 20);
  Log_store.set_sync_mode t Log_store.Immediate;
  Alcotest.(check bool) "mode switch drains dirtiness" false
    (Log_store.dirty t);
  Alcotest.(check int) "mode switch issued the barrier" 2
    (Backend.counters b).Backend.barriers

(* ---- crash injection inside the write path ---- *)

(* A pwrite that tears mid-flight: the device keeps a byte prefix of
   the segment and dies.  The scan must trust exactly the valid
   record prefix, post-mortem writes must be lost, and [attach] must
   cut the image back to a clean state. *)
let test_write_fault_torn_segment () =
  let b = Backend.mem () in
  let t = Log_store.create b in
  Log_store.append_block t ~gen:0 ~slot:0 (records_of 3 0);
  Log_store.append_block t ~gen:0 ~slot:1 (records_of 4 100);
  (* arm: the next pwrite lands whole, the one after keeps the header,
     two entries and half of the third, then the device dies *)
  let tears = ref 0 in
  let keep =
    Codec.header_bytes + (2 * Codec.entry_bytes) + (Codec.entry_bytes / 2)
  in
  Backend.set_write_fault
    ~on_tear:(fun () -> incr tears)
    b ~after_pwrites:1 ~keep_bytes:keep;
  Log_store.append_block t ~gen:1 ~slot:0 (records_of 2 200);
  Alcotest.(check bool) "unfaulted write landed" false (Backend.dead b);
  Log_store.append_block t ~gen:1 ~slot:1 (records_of 4 300);
  Alcotest.(check int) "tear fired once" 1 !tears;
  Alcotest.(check bool) "device dead" true (Backend.dead b);
  let size_at_death = Backend.size b in
  (* writes into a dead device are silently lost *)
  Log_store.append_block t ~gen:2 ~slot:0 (records_of 2 400);
  Alcotest.(check int) "post-mortem write lost" size_at_death (Backend.size b);
  Backend.revive b;
  let s = Log_store.scan b in
  Alcotest.(check bool) "torn tail detected" true s.Log_store.s_torn_tail;
  let torn =
    List.find
      (fun bl -> bl.Log_store.sb_gen = 1 && bl.Log_store.sb_slot = 1)
      s.Log_store.s_blocks
  in
  Alcotest.(check int) "valid prefix survives the scan" 2
    (List.length torn.Log_store.sb_records);
  Alcotest.(check int) "torn suffix discarded" 2 torn.Log_store.sb_discarded;
  Alcotest.(check int) "every segment visible pre-attach" 4
    (List.length s.Log_store.s_blocks);
  (* replay trusts exactly the record-level valid prefix *)
  let r = Recovery.recover_store ~num_objects:1_000 b in
  Alcotest.(check int) "replay counts the torn records" 2
    r.Recovery.torn_records;
  (* attach cuts the image back to the last complete segment; the
     rescan is clean and the new epoch appends after the cut *)
  let t2 = Log_store.attach b in
  Log_store.append_block t2 ~gen:2 ~slot:0 (records_of 1 500);
  let s2 = Log_store.scan b in
  Alcotest.(check bool) "attach cleaned the tail" false
    s2.Log_store.s_torn_tail;
  Alcotest.(check int) "full segments + new epoch's block survive" 4
    (List.length s2.Log_store.s_blocks)

let el_small_kind () =
  Experiment.Ephemeral (El_core.Policy.default ~generation_sizes:[| 8; 8 |])

let write_fault_cfg ~seed =
  {
    (Sweep.standard_config ~kind:(el_small_kind ()) ~runtime:(Time.of_sec 8)
       ~rate:40.0 ~seed ())
    with
    Experiment.backend = Experiment.Mem_store;
  }

let recovery_view (r : Recovery.result) =
  ( List.sort compare (El_disk.Stable_db.snapshot r.Recovery.recovered),
    List.sort compare r.Recovery.committed_tids,
    r.Recovery.records_scanned,
    r.Recovery.torn_blocks,
    r.Recovery.torn_records )

(* Counts the store pwrites of a pristine run of [cfg], so the fault
   tests can arm the device to die in the middle of the same run. *)
let pristine_pwrites cfg =
  let live = Experiment.prepare cfg in
  ignore (live.Experiment.finish ());
  let store = Option.get live.Experiment.store in
  let n = (Backend.counters (Log_store.backend store)).Backend.pwrites in
  Experiment.dispose live;
  n

(* Device dies mid-run with the fatal pwrite landing whole: the sim
   crash image captured at the tear instant and the surviving store
   image describe the same crash, so replay must agree exactly with
   simulated recovery. *)
let test_write_fault_replay_agrees () =
  List.iter
    (fun seed ->
      let cfg = write_fault_cfg ~seed in
      let total = pristine_pwrites cfg in
      Alcotest.(check bool) "run writes enough segments" true (total > 4);
      let live = Experiment.prepare cfg in
      let store = Option.get live.Experiment.store in
      let b = Log_store.backend store in
      let image = ref None in
      Backend.set_write_fault
        ~on_tear:(fun () ->
          image :=
            Some
              (Recovery.crash live.Experiment.engine
                 (Option.get live.Experiment.el)))
        b
        ~after_pwrites:(total / 2)
        ~keep_bytes:max_int;
      ignore (live.Experiment.finish ());
      let sim =
        match !image with
        | Some i -> Recovery.recover i
        | None -> Alcotest.fail "fault never fired"
      in
      let st =
        Recovery.recover_store ~num_objects:cfg.Experiment.num_objects b
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: store replay = simulated recovery" seed)
        (Marshal.to_string (recovery_view sim) [])
        (Marshal.to_string (recovery_view st) []);
      Experiment.dispose live)
    [ 1; 2; 3 ]

(* Device dies tearing the fatal segment mid-entry: the store image is
   a strict prefix of the simulated crash state.  Everything the
   truncated image recovers must be durable in the simulated image,
   the torn tail must be counted, and [attach] must cut back to the
   valid prefix. *)
let test_write_fault_torn_prefix () =
  List.iter
    (fun seed ->
      let cfg = write_fault_cfg ~seed in
      let total = pristine_pwrites cfg in
      (* most pwrites are one-entry stable installs, which tear
         without discarding log records; probe forward from the
         midpoint until the fatal pwrite is a log segment *)
      let rec tear_log_segment k =
        if k > 40 then
          Alcotest.fail
            (Printf.sprintf "seed %d: no log segment near the midpoint" seed)
        else begin
          let live = Experiment.prepare cfg in
          let store = Option.get live.Experiment.store in
          let b = Log_store.backend store in
          let image = ref None in
          Backend.set_write_fault
            ~on_tear:(fun () ->
              image :=
                Some
                  (Recovery.crash live.Experiment.engine
                     (Option.get live.Experiment.el)))
            b
            ~after_pwrites:((total / 2) + k)
            ~keep_bytes:(Codec.header_bytes + (Codec.entry_bytes / 2));
          ignore (live.Experiment.finish ());
          let s = Log_store.scan b in
          let torn_log =
            List.exists
              (fun bl -> bl.Log_store.sb_discarded > 0)
              s.Log_store.s_blocks
          in
          if torn_log then (live, b, !image, s)
          else begin
            Experiment.dispose live;
            tear_log_segment (k + 1)
          end
        end
      in
      let live, b, image, s = tear_log_segment 0 in
      let sim =
        match image with
        | Some i -> Recovery.recover i
        | None -> Alcotest.fail "fault never fired"
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: torn tail detected" seed)
        true s.Log_store.s_torn_tail;
      let st =
        Recovery.recover_store ~num_objects:cfg.Experiment.num_objects b
      in
      (* the torn segment's entries are all discarded: keep ends
         mid-first-entry *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: torn records counted" seed)
        true
        (st.Recovery.torn_records > 0);
      (* prefix property: nothing the truncated image recovers can
         exceed what the simulated crash knows *)
      List.iter
        (fun tid ->
          if not (List.mem tid sim.Recovery.committed_tids) then
            Alcotest.fail
              (Printf.sprintf
                 "seed %d: store recovered tid %d unknown to the sim image"
                 seed (Ids.Tid.to_int tid)))
        st.Recovery.committed_tids;
      List.iter
        (fun (oid, v) ->
          match El_disk.Stable_db.version sim.Recovery.recovered oid with
          | Some sv when sv >= v -> ()
          | _ ->
            Alcotest.fail
              (Printf.sprintf
                 "seed %d: store recovered o%d v%d ahead of the sim image"
                 seed (Ids.Oid.to_int oid) v))
        (El_disk.Stable_db.snapshot st.Recovery.recovered);
      (* the reboot: revive the device, then attach cuts the image at
         the valid prefix *)
      Backend.revive b;
      ignore (Log_store.attach b);
      let s2 = Log_store.scan b in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: attach cleaned the tail" seed)
        false s2.Log_store.s_torn_tail;
      Experiment.dispose live)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "mem backend roundtrip" `Quick test_mem_roundtrip;
    Alcotest.test_case "file backend persists" `Quick test_file_persists;
    Alcotest.test_case "mem/file images byte-equal" `Quick
      test_mem_file_byte_equal;
    Alcotest.test_case "use after close raises" `Quick test_use_after_close;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects corruption" `Quick test_codec_corruption;
    Alcotest.test_case "header roundtrip" `Quick test_header_roundtrip;
    Alcotest.test_case "scan dedups reused slots" `Quick test_store_scan_dedup;
    Alcotest.test_case "torn suffix discarded" `Quick test_store_torn_suffix;
    Alcotest.test_case "scan honours crash mark" `Quick test_store_upto;
    Alcotest.test_case "attach bumps the epoch" `Quick test_attach_epochs;
    Alcotest.test_case "truncated image loses only the tail" `Quick
      test_truncated_image;
    Alcotest.test_case "mem = file recovered state (3 seeds x 3 kinds)" `Slow
      test_mem_file_equivalence;
    Alcotest.test_case "sim = mem run results" `Quick
      test_sim_mem_result_identity;
    Alcotest.test_case "crash mark freezes the sim image" `Quick
      test_crash_mark_fidelity;
    Alcotest.test_case "grouped sync: same bytes, fewer barriers" `Quick
      test_grouped_sync_bytes_identical;
    Alcotest.test_case "group sync requests coalesce" `Quick
      test_group_sync_coalesces;
    Alcotest.test_case "write fault tears a segment" `Quick
      test_write_fault_torn_segment;
    Alcotest.test_case "mid-run device death: replay = simulated recovery"
      `Quick test_write_fault_replay_agrees;
    Alcotest.test_case "mid-run torn death: store is a strict prefix" `Quick
      test_write_fault_torn_prefix;
  ]
