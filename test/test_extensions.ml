(* Tests for the extensions beyond the paper's base system: Poisson
   arrivals, FW checkpointing, recovery timing, adaptive sizing. *)

open El_model
module Experiment = El_harness.Experiment
module Policy = El_core.Policy
module Mix = El_workload.Mix
module G = El_workload.Generator

(* ---- Poisson arrivals ---- *)

let count_arrivals ~process ~seed =
  let engine = El_sim.Engine.create ~seed () in
  let begins = ref [] in
  let sink =
    {
      G.begin_tx =
        (fun ~tid:_ ~expected_duration:_ ->
          begins := Time.to_us (El_sim.Engine.now engine) :: !begins);
      write_data = (fun ~tid:_ ~oid:_ ~version:_ ~size:_ -> ());
      request_commit = (fun ~tid:_ ~on_ack:_ -> ());
      request_abort = (fun ~tid:_ -> ());
    }
  in
  let _gen =
    G.create engine ~sink
      ~mix:(Mix.short_long ~long_fraction:0.0)
      ~arrival_rate:100.0 ~runtime:(Time.of_sec 20) ~arrival_process:process
      ~num_objects:1000 ()
  in
  El_sim.Engine.run engine ~until:(Time.of_sec 20);
  List.rev !begins

let test_poisson_rate () =
  let arrivals = count_arrivals ~process:G.Poisson ~seed:5 in
  let n = List.length arrivals in
  (* 100/s over 20 s: expect 2000 +- ~4.5 sigma *)
  Alcotest.(check bool) (Printf.sprintf "count ~2000 (got %d)" n) true
    (n > 1800 && n < 2200)

let test_poisson_is_irregular () =
  let arrivals = count_arrivals ~process:G.Poisson ~seed:5 in
  let gaps =
    List.map2
      (fun a b -> b - a)
      (List.filteri (fun i _ -> i < List.length arrivals - 1) arrivals)
      (List.tl arrivals)
  in
  let distinct = List.sort_uniq compare gaps in
  Alcotest.(check bool) "inter-arrival times vary" true
    (List.length distinct > 100);
  (* coefficient of variation of an exponential is 1 *)
  let n = float_of_int (List.length gaps) in
  let mean = List.fold_left ( + ) 0 gaps |> float_of_int |> fun s -> s /. n in
  let var =
    List.fold_left (fun acc g -> acc +. ((float_of_int g -. mean) ** 2.0)) 0.0 gaps
    /. n
  in
  let cv = sqrt var /. mean in
  Alcotest.(check bool) (Printf.sprintf "CV ~1 (got %.2f)" cv) true
    (cv > 0.85 && cv < 1.15)

let test_deterministic_is_regular () =
  let arrivals = count_arrivals ~process:G.Deterministic ~seed:5 in
  let gaps =
    List.map2
      (fun a b -> b - a)
      (List.filteri (fun i _ -> i < List.length arrivals - 1) arrivals)
      (List.tl arrivals)
  in
  Alcotest.(check (list int)) "single gap value" [ 10_000 ]
    (List.sort_uniq compare gaps)

let test_poisson_seeded_determinism () =
  Alcotest.(check (list int)) "same seed, same process"
    (count_arrivals ~process:G.Poisson ~seed:9)
    (count_arrivals ~process:G.Poisson ~seed:9)

let test_poisson_needs_more_space () =
  (* Burstiness raises the instantaneous span the FW log must cover. *)
  let cfg process =
    {
      (Experiment.default_config ~kind:(Experiment.Firewall 512)
         ~mix:(Mix.short_long ~long_fraction:0.05)) with
      Experiment.runtime = Time.of_sec 120;
      arrival_process = process;
    }
  in
  let peak process =
    match (Experiment.run (cfg process)).Experiment.fw_stats with
    | Some s -> s.El_core.Fw_manager.peak_occupancy
    | None -> Alcotest.fail "fw stats"
  in
  let det = peak G.Deterministic and poisson = peak G.Poisson in
  Alcotest.(check bool)
    (Printf.sprintf "poisson peak >= deterministic (%d vs %d)" poisson det)
    true (poisson >= det)

(* ---- FW checkpointing ---- *)

let fw_cfg ?checkpointing () =
  let engine = El_sim.Engine.create () in
  let fw =
    El_core.Fw_manager.create engine ~size_blocks:64 ~block_payload:100
      ?checkpointing ()
  in
  (engine, fw)

let test_checkpoint_retains_committed () =
  (* Without checkpoints a committed tx releases its space at once;
     with them, release waits for the next checkpoint tick. *)
  let engine, fw =
    fw_cfg
      ~checkpointing:
        { El_core.Fw_manager.interval = Time.of_ms 500; cost_blocks = 2 }
      ()
  in
  let acks = ref 0 in
  for n = 1 to 10 do
    El_core.Fw_manager.begin_tx fw ~tid:(Ids.Tid.of_int n)
      ~expected_duration:(Time.of_sec 1);
    El_core.Fw_manager.write_data fw ~tid:(Ids.Tid.of_int n)
      ~oid:(Ids.Oid.of_int n) ~version:1 ~size:80;
    El_core.Fw_manager.request_commit fw ~tid:(Ids.Tid.of_int n)
      ~on_ack:(fun _ -> incr acks)
  done;
  El_sim.Engine.run engine ~until:(Time.of_ms 400);
  let before = (El_core.Fw_manager.stats fw).El_core.Fw_manager.peak_occupancy in
  Alcotest.(check bool) "space held before the checkpoint" true (before >= 9);
  El_sim.Engine.run engine ~until:(Time.of_sec 2);
  let stats = El_core.Fw_manager.stats fw in
  Alcotest.(check bool) "checkpoints ticked" true
    (stats.El_core.Fw_manager.checkpoints >= 3);
  Alcotest.(check int) "each cost 2 writes"
    (stats.El_core.Fw_manager.checkpoints * 2)
    stats.El_core.Fw_manager.checkpoint_writes

let test_checkpoint_bandwidth_overhead () =
  let mix = Mix.short_long ~long_fraction:0.05 in
  let base =
    {
      (Experiment.default_config ~kind:(Experiment.Firewall 512) ~mix) with
      Experiment.runtime = Time.of_sec 60;
    }
  in
  let ideal = Experiment.run base in
  (* checkpointed FW is not in Experiment's kind; drive it directly *)
  let engine = El_sim.Engine.create () in
  let fw =
    El_core.Fw_manager.create engine ~size_blocks:512
      ~checkpointing:
        { El_core.Fw_manager.interval = Time.of_sec 5; cost_blocks = 4 }
      ()
  in
  let sink =
    {
      G.begin_tx =
        (fun ~tid ~expected_duration ->
          El_core.Fw_manager.begin_tx fw ~tid ~expected_duration);
      write_data =
        (fun ~tid ~oid ~version ~size ->
          El_core.Fw_manager.write_data fw ~tid ~oid ~version ~size);
      request_commit =
        (fun ~tid ~on_ack -> El_core.Fw_manager.request_commit fw ~tid ~on_ack);
      request_abort = (fun ~tid -> El_core.Fw_manager.request_abort fw ~tid);
    }
  in
  let generator =
    G.create engine ~sink ~mix ~arrival_rate:100.0 ~runtime:(Time.of_sec 60)
      ~num_objects:Params.num_objects ()
  in
  El_core.Fw_manager.set_on_kill fw (fun tid -> G.kill generator tid);
  El_sim.Engine.run engine ~until:(Time.of_sec 60);
  let stats = El_core.Fw_manager.stats fw in
  Alcotest.(check int) "12 checkpoints in 60 s" 12
    stats.El_core.Fw_manager.checkpoints;
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth exceeds the ideal FW's (%d vs %d writes)"
       stats.El_core.Fw_manager.log_writes ideal.Experiment.log_writes_total)
    true
    (stats.El_core.Fw_manager.log_writes
    > ideal.Experiment.log_writes_total + 40);
  Alcotest.(check bool)
    (Printf.sprintf "space exceeds the ideal FW's (%d vs ~121)"
       stats.El_core.Fw_manager.peak_occupancy)
    true
    (stats.El_core.Fw_manager.peak_occupancy > 121)

(* ---- recovery timing ---- *)

let test_timing_model () =
  let open El_recovery.Timing in
  let t = single_pass ~regions:2 ~blocks:28 ~records:500 () in
  (* 2*15ms + 28*1ms + 500*20us = 68 ms: well under a second, the
     paper's claim for a 28-block log *)
  Alcotest.(check int) "EL estimate" 68_000 (Time.to_us t);
  let fw = fw_two_pass ~blocks:123 ~records:2400 () in
  Alcotest.(check int) "FW two-pass estimate" 372_000 (Time.to_us fw);
  Alcotest.(check bool) "EL recovers much faster" true Time.(t < fw)

let test_timing_estimate_from_image () =
  let policy = Policy.default ~generation_sizes:[| 8; 8 |] in
  let cfg =
    {
      (Experiment.default_config ~kind:(Experiment.Ephemeral policy)
         ~mix:(Mix.short_long ~long_fraction:0.05)) with
      Experiment.runtime = Time.of_sec 30;
    }
  in
  let live = Experiment.prepare cfg in
  El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec 20);
  let image =
    El_recovery.Recovery.crash live.Experiment.engine
      (Option.get live.Experiment.el)
  in
  let result = El_recovery.Recovery.recover image in
  let t = El_recovery.Timing.estimate image result in
  Alcotest.(check bool)
    (Format.asprintf "sub-second recovery (%a)" El_recovery.Timing.pp t)
    true
    Time.(t < Time.of_sec 1)

let test_timing_validation () =
  Alcotest.check_raises "negative inputs"
    (Invalid_argument "Timing.single_pass: negative inputs") (fun () ->
      ignore (El_recovery.Timing.single_pass ~regions:(-1) ~blocks:0 ~records:0 ()))

(* ---- adaptive sizing ---- *)

let adaptive_cfg () =
  {
    (Experiment.default_config ~kind:(Experiment.Firewall 1)
       ~mix:(Mix.short_long ~long_fraction:0.05)) with
    Experiment.runtime = Time.of_sec 60;
  }

let test_adaptive_shrinks () =
  let outcome =
    El_harness.Adaptive.tune (adaptive_cfg ()) ~initial:[| 30; 60 |] ()
  in
  let total = Array.fold_left ( + ) 0 outcome.El_harness.Adaptive.final_sizes in
  Alcotest.(check bool) "converged" true outcome.El_harness.Adaptive.converged;
  Alcotest.(check bool) (Printf.sprintf "shrank 90 -> %d" total) true
    (total < 60);
  Alcotest.(check bool) "final configuration healthy" true
    outcome.El_harness.Adaptive.final_result.Experiment.feasible;
  (* the trajectory must never report an infeasible *final*: the best
     recorded configuration is feasible by construction *)
  Alcotest.(check bool) "trajectory non-empty" true
    (List.length outcome.El_harness.Adaptive.trajectory > 2)

let test_adaptive_near_optimal () =
  let outcome =
    El_harness.Adaptive.tune (adaptive_cfg ()) ~initial:[| 24; 40 |]
      ~shrink_step:2 ()
  in
  let total = Array.fold_left ( + ) 0 outcome.El_harness.Adaptive.final_sizes in
  (* the paper's minimum at this mix is 28 with recirculation; the
     greedy controller should land within a handful of blocks *)
  Alcotest.(check bool) (Printf.sprintf "close to minimal (%d)" total) true
    (total <= 40)

let test_adaptive_rejects_bad_start () =
  Alcotest.check_raises "unhealthy start"
    (Invalid_argument "Adaptive.tune: initial configuration is already unhealthy")
    (fun () ->
      ignore
        (El_harness.Adaptive.tune
           { (adaptive_cfg ()) with Experiment.runtime = Time.of_sec 30 }
           ~make_policy:(fun sizes ->
             {
               (Policy.default ~generation_sizes:sizes) with
               Policy.recirculate = false;
             })
           ~initial:[| 4; 4 |] ()))

(* Statistical pin on the Poisson process: at 100 TPS the mean
   inter-arrival time must sit within 5 % of 1/rate = 10 ms (for
   ~2000 samples the standard error is ~224 us, so 500 us is a
   comfortable bound for a fixed seed), and the whole arrival sequence
   must be reproducible from the seed. *)
let test_poisson_mean_interarrival () =
  let arrivals = count_arrivals ~process:G.Poisson ~seed:11 in
  Alcotest.(check (list int)) "same seed, identical arrival times" arrivals
    (count_arrivals ~process:G.Poisson ~seed:11);
  let gaps =
    List.map2
      (fun a b -> b - a)
      (List.filteri (fun i _ -> i < List.length arrivals - 1) arrivals)
      (List.tl arrivals)
  in
  let n = float_of_int (List.length gaps) in
  let mean = float_of_int (List.fold_left ( + ) 0 gaps) /. n in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-arrival within 5%% of 10ms (got %.0f us)" mean)
    true
    (abs_float (mean -. 10_000.0) < 500.0)

let suite =
  [
    Alcotest.test_case "poisson arrival rate" `Quick test_poisson_rate;
    Alcotest.test_case "poisson mean inter-arrival ~ 1/rate" `Quick
      test_poisson_mean_interarrival;
    Alcotest.test_case "poisson irregularity (CV~1)" `Quick
      test_poisson_is_irregular;
    Alcotest.test_case "deterministic regularity" `Quick
      test_deterministic_is_regular;
    Alcotest.test_case "poisson is seeded-deterministic" `Quick
      test_poisson_seeded_determinism;
    Alcotest.test_case "burstiness costs FW space" `Quick
      test_poisson_needs_more_space;
    Alcotest.test_case "checkpoints retain committed records" `Quick
      test_checkpoint_retains_committed;
    Alcotest.test_case "checkpointing costs bandwidth and space" `Quick
      test_checkpoint_bandwidth_overhead;
    Alcotest.test_case "recovery timing model" `Quick test_timing_model;
    Alcotest.test_case "sub-second recovery from a real image" `Quick
      test_timing_estimate_from_image;
    Alcotest.test_case "timing validation" `Quick test_timing_validation;
    Alcotest.test_case "adaptive controller shrinks to health" `Slow
      test_adaptive_shrinks;
    Alcotest.test_case "adaptive controller lands near minimal" `Slow
      test_adaptive_near_optimal;
    Alcotest.test_case "adaptive controller rejects unhealthy starts" `Quick
      test_adaptive_rejects_bad_start;
  ]
