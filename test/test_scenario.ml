(* Adversarial scenario presets: determinism, accounting conservation,
   contention counters, and regressions for the two latent bugs the
   workload matrix exposed (the hybrid self-supersede double count and
   the EL forward-origin durability race). *)

open El_model
module Experiment = El_harness.Experiment
module Sweep = El_check.Sweep
module Preset = El_workload.Workload_preset

let el_kind () = List.assoc "el" (Sweep.standard_kinds ())
let hybrid_kind () = List.assoc "hybrid" (Sweep.standard_kinds ())

let preset_config ?(runtime = Time.of_sec 8) ?(seed = 42) ?kind p =
  let kind = match kind with Some k -> k | None -> el_kind () in
  Sweep.standard_config ~kind ~runtime ~rate:40.0 ~seed ~preset:p ()

(* ---- determinism ---- *)

(* Same preset + same seed => Marshal-byte-identical results.  Every
   sampler consumes a fixed draw sequence from the seeded RNG, so this
   pins the whole pipeline: arrivals, Zipf draws, backoff jitter,
   Pareto scaling. *)
let test_preset_runs_identical () =
  List.iter
    (fun (p : Preset.t) ->
      let bytes () =
        Marshal.to_string (Experiment.run (preset_config p)) []
      in
      Alcotest.(check bool)
        (p.Preset.name ^ " reruns byte-identical")
        true
        (String.equal (bytes ()) (bytes ())))
    Preset.all

(* The observer must be a pure read-only tap: storm results with the
   trace ring on are byte-identical to results with it off. *)
let test_observer_identity () =
  let cfg = preset_config Preset.storm in
  let plain = Experiment.run cfg in
  let observed =
    Experiment.run
      { cfg with Experiment.observer = Some El_obs.Obs.default_config }
  in
  Alcotest.(check bool)
    "storm run identical with observer" true
    (String.equal
       (Marshal.to_string plain [])
       (Marshal.to_string observed []))

(* A parallel sweep fans the same seeded run across workers; the merged
   outcome must equal the serial sweep's bit for bit, presets
   included. *)
let test_sweep_jobs_identical () =
  let cfg = preset_config ~runtime:(Time.of_sec 6) Preset.storm in
  let serial = Sweep.run ~stride:80 ~max_points:20 ~spec:true cfg in
  let pool = El_par.Pool.create ~jobs:2 in
  let parallel =
    Fun.protect
      ~finally:(fun () -> El_par.Pool.shutdown pool)
      (fun () -> Sweep.run ~pool ~stride:80 ~max_points:20 ~spec:true cfg)
  in
  Alcotest.(check bool)
    "storm sweep identical under --jobs 2" true
    (String.equal
       (Marshal.to_string serial [])
       (Marshal.to_string parallel []))

(* ---- contention accounting ---- *)

(* The contention preset must actually produce contention, and the
   counters must satisfy the conservation laws: every retry follows an
   abort, every contention abort is an abort, every start is accounted
   for (transactions still in flight at the horizon explain the
   slack). *)
let accounting_holds (r : Experiment.result) =
  r.Experiment.contention_aborts <= r.Experiment.aborted
  && r.Experiment.contention_retries <= r.Experiment.contention_aborts
  && r.Experiment.contention_retries <= r.Experiment.started
  && r.Experiment.committed + r.Experiment.aborted + r.Experiment.killed
     <= r.Experiment.started

let test_contention_counters () =
  let r = Experiment.run (preset_config Preset.contention) in
  Alcotest.(check bool) "aborts seen" true (r.Experiment.contention_aborts > 0);
  Alcotest.(check bool)
    "retries seen" true
    (r.Experiment.contention_retries > 0);
  Alcotest.(check bool) "accounting holds" true (accounting_holds r);
  (* uniform drawing cannot contend *)
  let u = Experiment.run (preset_config Preset.uniform) in
  Alcotest.(check int) "uniform aborts" 0 u.Experiment.contention_aborts;
  Alcotest.(check int) "uniform retries" 0 u.Experiment.contention_retries

let prop_conservation =
  QCheck.Test.make ~name:"start/commit/abort/kill conservation" ~count:9
    QCheck.(pair (oneofl [ 7; 11; 13 ]) (oneofl [ "el"; "fw"; "hybrid" ]))
    (fun (seed, kind_name) ->
      let kind = List.assoc kind_name (Sweep.standard_kinds ()) in
      let r =
        Experiment.run
          (preset_config ~runtime:(Time.of_sec 6) ~seed ~kind
             Preset.contention)
      in
      accounting_holds r && r.Experiment.contention_aborts > 0)

(* ---- regressions for the bugs the matrix exposed ---- *)

(* Zipfian self-held re-draws make a transaction update the same oid
   twice; the hybrid manager's commit hook used to double-count the
   superseded stub and trip its structural invariant.  A clean spec
   sweep pins the fix. *)
let test_zipf_hybrid_sweep_clean () =
  let cfg =
    preset_config ~runtime:(Time.of_sec 8) ~kind:(hybrid_kind ()) Preset.zipf
  in
  let o = Sweep.run ~stride:80 ~max_points:25 ~spec:true cfg in
  Alcotest.(check bool) "not overloaded" false o.Sweep.overloaded;
  Alcotest.(check (list (pair int string))) "no failures" [] o.Sweep.failures;
  Alcotest.(check bool) "contended" true (o.Sweep.contention_aborts > 0)

(* Multi-size records plus Pareto lifetimes used to open the
   forward-origin race: the overwrite of a forwarded head slot could
   reach the platter before the forward write on the backlogged
   next-generation channel, losing acked updates at a crash.  The
   longtail sweep (spec oracle + crash recovery at every pause) must
   be clean at the preset's scaled geometry. *)
let test_longtail_el_sweep_clean () =
  let cfg = preset_config ~runtime:(Time.of_sec 10) Preset.longtail in
  let o = Sweep.run ~stride:60 ~max_points:40 ~spec:true cfg in
  Alcotest.(check bool) "not overloaded" false o.Sweep.overloaded;
  Alcotest.(check (list (pair int string))) "no failures" [] o.Sweep.failures;
  Alcotest.(check bool) "audited" true (o.Sweep.points > 10)

(* At the unscaled polite-traffic geometry the same traffic must make
   the guard arm and the run degrade honestly (stalls surfacing as
   kills/overload) — never lose data silently. *)
let test_forward_guard_arms () =
  let kind =
    Experiment.Ephemeral
      (El_core.Policy.default ~generation_sizes:[| 8; 8 |])
  in
  let cfg =
    Experiment.apply_preset
      (Sweep.standard_config ~kind ~runtime:(Time.of_sec 15) ~rate:40.0
         ~seed:42 ())
      Preset.longtail
  in
  let r = Experiment.run cfg in
  let parks =
    match r.Experiment.el_stats with
    | Some s -> s.El_core.El_manager.fwd_guard_parks
    | None -> 0
  in
  Alcotest.(check bool) "guard armed" true (parks > 0);
  Alcotest.(check bool)
    "pressure surfaced honestly" true
    (r.Experiment.overloaded || r.Experiment.killed > 0)

(* The guard must never fire on the polite baseline: uniform traffic
   at the standard geometry is byte-identical to the pre-guard
   manager. *)
let test_guard_inert_on_uniform () =
  let r = Experiment.run (preset_config Preset.uniform) in
  match r.Experiment.el_stats with
  | None -> Alcotest.fail "expected EL stats"
  | Some s ->
    Alcotest.(check int) "no parks" 0 s.El_core.El_manager.fwd_guard_parks

let suite =
  [
    Alcotest.test_case "preset reruns are byte-identical" `Quick
      test_preset_runs_identical;
    Alcotest.test_case "observer on/off identity (storm)" `Quick
      test_observer_identity;
    Alcotest.test_case "serial = --jobs 2 sweep (storm)" `Quick
      test_sweep_jobs_identical;
    Alcotest.test_case "contention counters" `Quick test_contention_counters;
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "zipf/hybrid spec sweep clean (self-supersede)" `Quick
      test_zipf_hybrid_sweep_clean;
    Alcotest.test_case "longtail/el spec sweep clean (forward guard)" `Quick
      test_longtail_el_sweep_clean;
    Alcotest.test_case "forward guard arms under unscaled longtail" `Quick
      test_forward_guard_arms;
    Alcotest.test_case "forward guard inert on uniform" `Quick
      test_guard_inert_on_uniform;
  ]
