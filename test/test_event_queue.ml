module Q = El_sim.Event_queue

let test_fifo_ties () =
  let q = Q.create () in
  Q.push q ~time:5 "a";
  Q.push q ~time:5 "b";
  Q.push q ~time:5 "c";
  let order =
    List.init 3 (fun _ ->
        match Q.pop q with Some (_, x) -> x | None -> Alcotest.fail "empty")
  in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] order

let test_time_order () =
  let q = Q.create () in
  List.iter (fun t -> Q.push q ~time:t t) [ 9; 1; 5; 3; 7; 2; 8; 4; 6; 0 ];
  let rec drain acc =
    match Q.pop q with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let test_peek_and_length () =
  let q = Q.create () in
  Alcotest.(check (option int)) "empty peek" None (Q.peek_time q);
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Q.push q ~time:3 ();
  Q.push q ~time:1 ();
  Alcotest.(check (option int)) "peek min" (Some 1) (Q.peek_time q);
  Alcotest.(check int) "length" 2 (Q.length q);
  ignore (Q.pop q);
  Alcotest.(check int) "length after pop" 1 (Q.length q)

let test_interleaved () =
  (* Pops interleaved with pushes must still come out ordered by
     (time, insertion). *)
  let q = Q.create () in
  Q.push q ~time:10 `A;
  Q.push q ~time:20 `B;
  (match Q.pop q with
  | Some (10, `A) -> ()
  | _ -> Alcotest.fail "expected A at 10");
  Q.push q ~time:15 `C;
  Q.push q ~time:20 `D;
  let rest =
    List.init 3 (fun _ ->
        match Q.pop q with Some (t, _) -> t | None -> Alcotest.fail "empty")
  in
  Alcotest.(check (list int)) "times" [ 15; 20; 20 ] rest

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"event queue dequeues like a stable sort" ~count:200
    QCheck.(list (int_bound 50))
    (fun times ->
      let q = Q.create () in
      List.iteri (fun i t -> Q.push q ~time:t (t, i)) times;
      let rec drain acc =
        match Q.pop q with Some (_, x) -> drain (x :: acc) | None -> List.rev acc
      in
      let got = drain [] in
      let expected =
        List.stable_sort
          (fun (t1, i1) (t2, i2) -> if t1 <> t2 then compare t1 t2 else compare i1 i2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      got = expected)

let prop_grow =
  QCheck.Test.make ~name:"event queue grows past initial capacity" ~count:10
    QCheck.(int_range 100 2000)
    (fun n ->
      let q = Q.create () in
      for i = 0 to n - 1 do
        Q.push q ~time:(n - i) i
      done;
      Q.length q = n
      &&
      let rec drain last =
        match Q.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

(* Model-based property over interleaved push/pop sequences: at every
   point the heap must pop exactly what a stable-sorted list model
   would — time order, FIFO among equal times — not just after pushing
   everything up front. *)
type op = Push of int | Pop

let prop_interleaved_matches_model =
  let op_gen =
    QCheck.Gen.(
      frequency [ (3, map (fun t -> Push t) (int_range 0 20)); (2, return Pop) ])
  in
  let print_ops ops =
    String.concat ";"
      (List.map (function Push t -> Printf.sprintf "P%d" t | Pop -> "pop") ops)
  in
  QCheck.Test.make ~name:"interleaved push/pop matches sorted-stable model"
    ~count:300
    (QCheck.make ~print:print_ops QCheck.Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let q = Q.create () in
      let model = ref [] in
      (* insertion ids double as payloads; the model pops the minimum
         by (time, id), which is exactly stable-sort order *)
      let next_id = ref 0 in
      let model_pop () =
        match
          List.sort (fun (a : int * int) b -> compare a b) !model
        with
        | [] -> None
        | ((_, id) as hd) :: _ ->
          model := List.filter (fun (_, j) -> j <> id) !model;
          Some hd
      in
      let agree () =
        match (Q.pop q, model_pop ()) with
        | None, None -> true
        | Some (t, id), Some (t', id') -> t = t' && id = id'
        | _ -> false
      in
      let ok =
        List.for_all
          (function
            | Push t ->
              let id = !next_id in
              incr next_id;
              Q.push q ~time:t id;
              model := (t, id) :: !model;
              true
            | Pop -> agree ())
          ops
      in
      (* drain whatever remains; orders must still agree *)
      let rec drain () = if agree () then Q.is_empty q || drain () else false in
      ok && drain ())

let suite =
  [
    Alcotest.test_case "FIFO among equal times" `Quick test_fifo_ties;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "peek and length" `Quick test_peek_and_length;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_matches_sort;
    QCheck_alcotest.to_alcotest prop_grow;
    QCheck_alcotest.to_alcotest prop_interleaved_matches_model;
  ]
