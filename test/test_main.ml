let () =
  Alcotest.run "ephemeral_logging"
    [
      ("time", Test_time.suite);
      ("ids", Test_ids.suite);
      ("log-record", Test_log_record.suite);
      ("event-queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("metrics", Test_metrics.suite);
      ("block", Test_block.suite);
      ("log-channel", Test_log_channel.suite);
      ("flush-array", Test_flush_array.suite);
      ("stable-db", Test_stable_db.suite);
      ("workload", Test_workload.suite);
      ("generator", Test_generator.suite);
      ("cell", Test_cell.suite);
      ("ledger", Test_ledger.suite);
      ("el-manager", Test_el_manager.suite);
      ("fw-manager", Test_fw_manager.suite);
      ("hybrid-manager", Test_hybrid.suite);
      ("extensions", Test_extensions.suite);
      ("recovery", Test_recovery.suite);
      ("experiment", Test_experiment.suite);
      ("min-space", Test_min_space.suite);
      ("spec", Test_spec.suite);
      ("check", Test_check.suite);
      ("scenario", Test_scenario.suite);
      ("fault", Test_fault.suite);
      ("hotpath", Test_hotpath.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("alloc", Test_alloc.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
    ]
