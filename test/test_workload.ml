open El_model
module Tx = El_workload.Tx_type
module Mix = El_workload.Mix
module Pool = El_workload.Oid_pool

(* ---- transaction types ---- *)

let test_paper_types () =
  let s = Tx.short ~probability:0.95 in
  Alcotest.(check int) "short records" 2 s.Tx.num_records;
  Alcotest.(check int) "short duration" 1_000_000 (Time.to_us s.Tx.duration);
  let l = Tx.long ~probability:0.05 in
  Alcotest.(check int) "long records" 4 l.Tx.num_records;
  Alcotest.(check int) "long size" 100 l.Tx.record_size

let test_record_schedule () =
  (* Figure 3: records every (T-eps)/N, the last at T-eps. *)
  let ty =
    Tx.make ~name:"t" ~probability:1.0 ~duration:(Time.of_ms 101)
      ~num_records:4 ~record_size:10
  in
  let offsets = Tx.record_schedule ty ~epsilon:(Time.of_ms 1) in
  Alcotest.(check (list int))
    "equally spaced, last at T-eps"
    [ 25_000; 50_000; 75_000; 100_000 ]
    (List.map Time.to_us offsets);
  Alcotest.(check int) "commit at T" 101_000 (Time.to_us (Tx.commit_offset ty))

let test_schedule_validation () =
  let ty =
    Tx.make ~name:"t" ~probability:1.0 ~duration:(Time.of_ms 1) ~num_records:1
      ~record_size:10
  in
  Alcotest.check_raises "epsilon too large"
    (Invalid_argument "Tx_type.record_schedule: epsilon >= duration")
    (fun () -> ignore (Tx.record_schedule ty ~epsilon:(Time.of_ms 1)))

(* ---- mixes ---- *)

let test_mix_normalisation () =
  let a = Tx.make ~name:"a" ~probability:3.0 ~duration:(Time.of_sec 1) ~num_records:1 ~record_size:1 in
  let b = Tx.make ~name:"b" ~probability:1.0 ~duration:(Time.of_sec 1) ~num_records:1 ~record_size:1 in
  let mix = Mix.create [ a; b ] in
  Alcotest.(check (float 1e-9)) "a normalised" 0.75 (Mix.probability mix a);
  Alcotest.(check (float 1e-9)) "b normalised" 0.25 (Mix.probability mix b)

let test_mix_sampling_frequencies () =
  let mix = Mix.short_long ~long_fraction:0.2 in
  let rng = Random.State.make [| 11 |] in
  let longs = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if (Mix.sample mix rng).Tx.name = "long" then incr longs
  done;
  let freq = float_of_int !longs /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "within 2%% of 20%% (got %.3f)" freq)
    true
    (abs_float (freq -. 0.2) < 0.02)

let test_mix_expectations () =
  let mix = Mix.short_long ~long_fraction:0.05 in
  (* paper: 0.95*2 + 0.05*4 = 2.1 updates per tx => 210/s at 100 TPS *)
  Alcotest.(check (float 1e-9)) "updates per tx" 2.1
    (Mix.expected_updates_per_tx mix);
  (* bytes: 2.1*100 + 16 of tx records *)
  Alcotest.(check (float 1e-9)) "bytes per tx" 226.0
    (Mix.expected_bytes_per_tx mix ~tx_record_size:8);
  let mix40 = Mix.short_long ~long_fraction:0.4 in
  Alcotest.(check (float 1e-9)) "40% mix: 2.8 updates" 2.8
    (Mix.expected_updates_per_tx mix40)

let test_mix_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Mix.create: empty")
    (fun () -> ignore (Mix.create []));
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Mix.short_long: fraction outside [0,1]") (fun () ->
      ignore (Mix.short_long ~long_fraction:1.5))

(* ---- oid pool ---- *)

let test_pool_uniqueness () =
  let pool = Pool.create ~num_objects:50 in
  let rng = Random.State.make [| 3 |] in
  let drawn =
    List.init 50 (fun _ ->
        match Pool.acquire pool rng with
        | Some oid -> Ids.Oid.to_int oid
        | None -> Alcotest.fail "pool exhausted early")
  in
  Alcotest.(check int) "all distinct" 50
    (List.length (List.sort_uniq compare drawn));
  Alcotest.(check (option int)) "then exhausted" None
    (Option.map Ids.Oid.to_int (Pool.acquire pool rng));
  Alcotest.(check int) "in use" 50 (Pool.in_use pool)

let test_pool_release () =
  let pool = Pool.create ~num_objects:1 in
  let rng = Random.State.make [| 3 |] in
  let o = Option.get (Pool.acquire pool rng) in
  Pool.release pool o;
  Alcotest.(check int) "released" 0 (Pool.in_use pool);
  let o2 = Option.get (Pool.acquire pool rng) in
  Alcotest.(check int) "reacquirable" (Ids.Oid.to_int o) (Ids.Oid.to_int o2);
  Alcotest.check_raises "double release"
    (Invalid_argument "Oid_pool.release: oid not held") (fun () ->
      Pool.release pool (Ids.Oid.of_int 0);
      Pool.release pool (Ids.Oid.of_int 0))

let test_pool_versions () =
  let pool = Pool.create ~num_objects:10 in
  let o = Ids.Oid.of_int 4 in
  Alcotest.(check int) "v1" 1 (Pool.next_version pool o);
  Alcotest.(check int) "v2" 2 (Pool.next_version pool o);
  Alcotest.(check int) "independent" 1 (Pool.next_version pool (Ids.Oid.of_int 5))

let prop_pool_constraint =
  QCheck.Test.make ~name:"no oid is held twice concurrently" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let pool = Pool.create ~num_objects:20 in
      let rng = Random.State.make [| seed |] in
      let held = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 200 do
        if Random.State.bool rng && Hashtbl.length held < 20 then (
          match Pool.acquire pool rng with
          | Some o ->
            let k = Ids.Oid.to_int o in
            if Hashtbl.mem held k then ok := false;
            Hashtbl.replace held k ()
          | None -> ())
        else
          match Hashtbl.fold (fun k () _ -> Some k) held None with
          | Some k ->
            Hashtbl.remove held k;
            Pool.release pool (Ids.Oid.of_int k)
          | None -> ()
      done;
      !ok && Pool.in_use pool = Hashtbl.length held)

(* ---- statistical conformance of the adversarial samplers ---- *)

(* Pearson chi-square goodness of fit of Zipf draws, tail ranks pooled
   so every bin expects at least 5 counts.  The Gray construction is
   exact for the two hottest ranks and realises the remaining ranks
   through its continuous inverse, so the expectations here are that
   realized law, derived independently from (n, theta) — the test
   fails on any sampler or normaliser bug, while the exact power law
   itself is pinned by the rank-0/1 and tail-slope checks below.  The
   acceptance threshold is the 99.9th chi-square percentile via the
   Wilson-Hilferty approximation. *)
let test_zipf_chi_square () =
  let n = 50 and theta = 0.9 and draws = 50_000 in
  let fn = float_of_int n in
  let z = El_workload.Zipf.create ~n ~theta in
  let rng = Random.State.make [| 71; 23 |] in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = El_workload.Zipf.next z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* the construction's realized rank probabilities, from first
     principles: branch mass for ranks 0 and 1, plus the mass of the
     continuous-inverse region floor(n * (eta u - eta + 1)^(1/(1-theta)))
     landing on each rank *)
  let zetan = 1.0 /. El_workload.Zipf.probability z 0 in
  let zeta2 = 1.0 +. (0.5 ** theta) in
  let eta =
    (1.0 -. ((2.0 /. fn) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan))
  in
  let u2 = zeta2 /. zetan in
  (* u at which the inverse formula first yields rank >= k *)
  let bound k =
    (((float_of_int k /. fn) ** (1.0 -. theta)) -. 1.0 +. eta) /. eta
  in
  let expected r =
    let formula_mass =
      let lo = Float.max (bound r) u2 in
      let hi = Float.min (bound (r + 1)) 1.0 in
      Float.max 0.0 (hi -. lo)
    in
    let branch_mass =
      if r = 0 then 1.0 /. zetan
      else if r = 1 then u2 -. (1.0 /. zetan)
      else 0.0
    in
    float_of_int draws *. (branch_mass +. formula_mass)
  in
  (* pool from the tail until every bin's expectation reaches 5 *)
  let bins = ref [] in
  let acc_obs = ref 0 and acc_exp = ref 0.0 in
  for r = n - 1 downto 0 do
    acc_obs := !acc_obs + counts.(r);
    acc_exp := !acc_exp +. expected r;
    if !acc_exp >= 5.0 then begin
      bins := (!acc_obs, !acc_exp) :: !bins;
      acc_obs := 0;
      acc_exp := 0.0
    end
  done;
  if !acc_exp > 0.0 then
    bins :=
      (match !bins with
      | (o, e) :: rest -> (o + !acc_obs, e +. !acc_exp) :: rest
      | [] -> [ (!acc_obs, !acc_exp) ]);
  let chi2 =
    List.fold_left
      (fun acc (o, e) ->
        let d = float_of_int o -. e in
        acc +. (d *. d /. e))
      0.0 !bins
  in
  let k = float_of_int (List.length !bins - 1) in
  Alcotest.(check bool) "enough bins" true (k >= 10.0);
  let z999 = 3.09 in
  let critical =
    let u = 1.0 -. (2.0 /. (9.0 *. k)) +. (z999 *. sqrt (2.0 /. (9.0 *. k))) in
    k *. u *. u *. u
  in
  if chi2 >= critical then
    Alcotest.failf "chi-square %.1f >= %.1f (df %.0f): draws do not fit" chi2
      critical k;
  (* ranks 0 and 1 are exact in the construction: their frequencies
     must match the pure power law within sampling noise *)
  List.iter
    (fun r ->
      let p = El_workload.Zipf.probability z r in
      let f = float_of_int counts.(r) /. float_of_int draws in
      if abs_float (f -. p) /. p >= 0.1 then
        Alcotest.failf "rank %d frequency %.4f vs law %.4f" r f p)
    [ 0; 1 ];
  (* and the tail must fall like a power law: the log-log slope over
     the well-populated ranks is close to -theta *)
  let slope =
    let xs = ref [] in
    for r = 1 to 19 do
      if counts.(r) > 0 then
        xs :=
          ( log (float_of_int (r + 1)),
            log (float_of_int counts.(r) /. float_of_int draws) )
          :: !xs
    done;
    let m = float_of_int (List.length !xs) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 !xs in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 !xs in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 !xs in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 !xs in
    ((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx))
  in
  if abs_float (slope +. theta) >= 0.15 then
    Alcotest.failf "log-log slope %.3f, expected ~%.2f" slope (-.theta)

(* Index of dispersion of windowed arrival counts: variance/mean of
   counts in 1 s windows.  Deterministic arrivals are (nearly)
   noise-free, Poisson sits at 1 by definition, and the interrupted
   Poisson process must be clearly over-dispersed — that burstiness
   is the preset's entire point. *)
let dispersion process ~rate ~windows =
  let a = El_workload.Arrival.create process ~rate in
  let rng = Random.State.make [| 5; 17 |] in
  let counts = Array.make windows 0 in
  let t = ref Time.zero in
  let horizon = Time.mul_int (Time.of_sec 1) windows in
  let stop = ref false in
  while not !stop do
    let gap = El_workload.Arrival.next a rng in
    t := Time.add !t gap;
    if Time.( >= ) !t horizon then stop := true
    else begin
      let w = Time.to_us !t / 1_000_000 in
      counts.(w) <- counts.(w) + 1
    end
  done;
  let mean =
    float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int windows
  in
  let var =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. mean in
        acc +. (d *. d))
      0.0 counts
    /. float_of_int windows
  in
  var /. mean

let test_arrival_dispersion () =
  let rate = 20.0 and windows = 2_000 in
  let det = dispersion El_workload.Arrival.Deterministic ~rate ~windows in
  let poi = dispersion El_workload.Arrival.Poisson ~rate ~windows in
  let bur =
    dispersion
      (El_workload.Arrival.Burst
         {
           on_mean = Time.of_ms 400;
           off_mean = Time.of_ms 1200;
           intensity = 4.0;
         })
      ~rate ~windows
  in
  Alcotest.(check bool)
    (Printf.sprintf "deterministic underdispersed (%.3f)" det)
    true (det < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "poisson near 1 (%.3f)" poi)
    true (poi > 0.7 && poi < 1.3);
  Alcotest.(check bool)
    (Printf.sprintf "burst overdispersed (%.3f)" bur)
    true
    (bur > 1.5 && bur > 2.0 *. poi)

(* The burst process must still deliver its configured long-run rate
   (the intensity/duty-cycle algebra in the presets relies on it). *)
let test_burst_mean_rate () =
  let process =
    El_workload.Arrival.Burst
      {
        on_mean = Time.of_ms 400;
        off_mean = Time.of_ms 1200;
        intensity = 4.0;
      }
  in
  let a = El_workload.Arrival.create process ~rate:20.0 in
  let implied = El_workload.Arrival.mean_rate a in
  Alcotest.(check bool)
    (Printf.sprintf "implied rate %.2f" implied)
    true
    (abs_float (implied -. 20.0) < 1e-6);
  let rng = Random.State.make [| 9 |] in
  let t = ref Time.zero and count = ref 0 in
  while Time.( < ) !t (Time.of_sec 500) do
    t := Time.add !t (El_workload.Arrival.next a rng);
    incr count
  done;
  let measured = float_of_int !count /. 500.0 in
  Alcotest.(check bool)
    (Printf.sprintf "measured rate %.2f" measured)
    true
    (abs_float (measured -. 20.0) /. 20.0 < 0.15)

(* Pareto lifetime scaling: bounded by [1, cap], heavy enough that the
   tail actually bites (a visible fraction of draws above 2x), and
   Fixed consumes no randomness. *)
let test_lifetime_scale () =
  let life = El_workload.Lifetime.Pareto { alpha = 1.3; cap = 6.0 } in
  let rng = Random.State.make [| 31 |] in
  let n = 20_000 in
  let above2 = ref 0 in
  for _ = 1 to n do
    let s = El_workload.Lifetime.scale life rng in
    Alcotest.(check bool) "bounded" true (s >= 1.0 && s <= 6.0);
    if s > 2.0 then incr above2
  done;
  let frac = float_of_int !above2 /. float_of_int n in
  (* P(X > 2) = 2^-1.3 ~ 0.406 for an uncapped Pareto(1.3) *)
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail (%.3f above 2x)" frac)
    true
    (frac > 0.3 && frac < 0.5);
  let rng1 = Random.State.make [| 42 |] in
  let s = El_workload.Lifetime.scale El_workload.Lifetime.Fixed rng1 in
  Alcotest.(check (float 0.0)) "fixed is 1" 1.0 s;
  Alcotest.(check int) "fixed consumes no variate" (Random.State.bits rng1)
    (Random.State.bits (Random.State.make [| 42 |]))

let suite =
  [
    Alcotest.test_case "paper transaction types" `Quick test_paper_types;
    Alcotest.test_case "Figure 3 record schedule" `Quick test_record_schedule;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "mix normalisation" `Quick test_mix_normalisation;
    Alcotest.test_case "mix sampling frequencies" `Quick
      test_mix_sampling_frequencies;
    Alcotest.test_case "mix expectations (paper rates)" `Quick
      test_mix_expectations;
    Alcotest.test_case "mix validation" `Quick test_mix_validation;
    Alcotest.test_case "oid pool uniqueness & exhaustion" `Quick
      test_pool_uniqueness;
    Alcotest.test_case "oid pool release" `Quick test_pool_release;
    Alcotest.test_case "version counters" `Quick test_pool_versions;
    QCheck_alcotest.to_alcotest prop_pool_constraint;
    Alcotest.test_case "Zipf chi-square goodness of fit" `Quick
      test_zipf_chi_square;
    Alcotest.test_case "arrival index of dispersion" `Quick
      test_arrival_dispersion;
    Alcotest.test_case "burst long-run rate" `Quick test_burst_mean_rate;
    Alcotest.test_case "Pareto lifetime scaling" `Quick test_lifetime_scale;
  ]
