(* The multi-shard scale-out's tests: partitioner laws, the SPSC
   mailbox, a QCheck state-machine model of the two-phase-commit
   lifecycle against a reference, deterministic crash-point sweeps
   under the sharded composite oracle, and the Marshal identity
   pinning a 1-shard group to the solo path. *)

open El_model
module Experiment = El_harness.Experiment
module Partition = El_shard.Partition
module Two_pc = El_shard.Two_pc
module Shard_group = El_shard.Shard_group
module Spsc = El_par.Spsc
module Sweep = El_check.Sweep

(* ---- partitioner ---- *)

let test_partition_ranges () =
  List.iter
    (fun (shards, num_objects) ->
      let p = Partition.create ~shards ~num_objects () in
      (* ranges tile [0, num_objects) in order, near-equal widths *)
      let cursor = ref 0 in
      let min_w = ref max_int and max_w = ref 0 in
      for s = 0 to shards - 1 do
        let lo, hi = Partition.range p s in
        Alcotest.(check int)
          (Printf.sprintf "%d/%d: range %d starts at the cursor" shards
             num_objects s)
          !cursor lo;
        Alcotest.(check bool)
          (Printf.sprintf "%d/%d: range %d non-empty" shards num_objects s)
          true (hi > lo);
        min_w := min !min_w (hi - lo);
        max_w := max !max_w (hi - lo);
        cursor := hi
      done;
      Alcotest.(check int)
        (Printf.sprintf "%d/%d: ranges cover the data space" shards
           num_objects)
        num_objects !cursor;
      Alcotest.(check bool)
        (Printf.sprintf "%d/%d: widths within one" shards num_objects)
        true
        (!max_w - !min_w <= 1);
      (* owner agrees with the ranges on every data oid *)
      for o = 0 to num_objects - 1 do
        let s = Partition.owner p (Ids.Oid.of_int o) in
        let lo, hi = Partition.range p s in
        if not (lo <= o && o < hi) then
          Alcotest.fail
            (Printf.sprintf "%d/%d: owner/range disagree on oid %d" shards
               num_objects o)
      done)
    [ (1, 10); (2, 11); (3, 100); (4, 97); (7, 7) ]

let test_partition_ctl_region () =
  let p = Partition.create ~ctl_slots:16 ~shards:3 ~num_objects:99 () in
  Alcotest.(check int) "total = data + ctl" (99 + (3 * 16))
    (Partition.total_objects p);
  for s = 0 to 2 do
    for slot = 0 to 15 do
      let oid = Partition.ctl_oid p ~shard:s ~slot in
      Alcotest.(check bool)
        (Printf.sprintf "ctl oid (%d, %d) above the data range" s slot)
        true
        (Ids.Oid.to_int oid >= 99);
      Alcotest.(check int)
        (Printf.sprintf "ctl oid (%d, %d) routes home" s slot)
        s
        (Partition.owner p oid);
      Alcotest.(check bool)
        (Printf.sprintf "ctl oid (%d, %d) is control" s slot)
        true (Partition.is_ctl p oid)
    done
  done;
  Alcotest.(check bool) "data oid is not control" false
    (Partition.is_ctl p (Ids.Oid.of_int 98));
  (* a 1-shard partition keeps the solo oid space untouched *)
  let solo = Partition.create ~ctl_slots:16 ~shards:1 ~num_objects:99 () in
  Alcotest.(check int) "solo: no control region" 0 (Partition.ctl_slots solo);
  Alcotest.(check int) "solo: total = data" 99 (Partition.total_objects solo)

let test_partition_coordinator () =
  let p = Partition.create ~shards:4 ~num_objects:40 () in
  List.iter
    (fun gtid ->
      Alcotest.(check int)
        (Printf.sprintf "coordinator of %d" gtid)
        (gtid mod 4)
        (Partition.coordinator p ~gtid))
    [ 0; 1; 5; 42; 1234 ]

let test_partition_validation () =
  Alcotest.check_raises "shards = 0 rejected"
    (Invalid_argument "Partition.create: shards must be >= 1") (fun () ->
      ignore (Partition.create ~shards:0 ~num_objects:10 ()));
  Alcotest.check_raises "fewer objects than shards rejected"
    (Invalid_argument "Partition.create: fewer objects than shards") (fun () ->
      ignore (Partition.create ~shards:4 ~num_objects:3 ()))

(* ---- SPSC mailbox ---- *)

let test_spsc_order_and_bounds () =
  let q = Spsc.create ~capacity:5 in
  Alcotest.(check int) "capacity rounds to a power of two" 8 (Spsc.capacity q);
  Alcotest.(check bool) "fresh ring empty" true (Spsc.is_empty q);
  for i = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "push %d fits" i)
      true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "push past capacity refused" false (Spsc.try_push q 8);
  Alcotest.(check int) "length at capacity" 8 (Spsc.length q);
  for i = 0 to 7 do
    Alcotest.(check (option int))
      (Printf.sprintf "pop %d in FIFO order" i)
      (Some i) (Spsc.try_pop q)
  done;
  Alcotest.(check (option int)) "empty ring pops nothing" None (Spsc.try_pop q);
  Alcotest.(check int) "pushed counts enqueues, not occupancy" 8
    (Spsc.pushed q);
  (* wrap around: the ring keeps working after head/tail lap it *)
  for round = 0 to 4 do
    for i = 0 to 5 do
      ignore (Spsc.try_push q ((round * 10) + i))
    done;
    for i = 0 to 5 do
      Alcotest.(check (option int))
        (Printf.sprintf "round %d pop %d" round i)
        (Some ((round * 10) + i))
        (Spsc.try_pop q)
    done
  done

(* ---- 2PC lifecycle: QCheck state machine vs. a reference model ---- *)

(* The reference: phases as the mli defines them, pending acks as a
   plain list.  The generated script interleaves branch acks with an
   optional kill or abort at a random step; the implementation must
   agree with the reference at every step. *)

type script_event = Touch of int | Abort_now | Kill_now | Ack of int | Decide

let script_gen =
  let open QCheck.Gen in
  int_range 2 4 >>= fun shards ->
  int_range 1 shards >>= fun n_parts ->
  (* participants in first-touch order: a rotation keeps them distinct *)
  int_range 0 (shards - 1) >>= fun start ->
  let parts = List.init n_parts (fun i -> (start + i) mod shards) in
  let acks = List.map (fun s -> Ack s) parts in
  (* shuffle the ack order *)
  shuffle_l acks >>= fun acks ->
  (* disruption: nothing, a client abort before prepare, or a kill
     inserted at a random point of the protocol *)
  int_range 0 3 >>= fun disruption ->
  int_range 0 (List.length acks) >>= fun kill_at ->
  int_range 0 1000 >>= fun gtid ->
  let touches = List.map (fun s -> Touch s) parts in
  let script =
    match disruption with
    | 0 -> touches @ [ Abort_now ]
    | 1 ->
      (* kill at [kill_at] acks in: mid-Preparing, or mid-Deciding
         when every ack already fired *)
      let before = List.filteri (fun i _ -> i < kill_at) acks in
      touches @ before @ [ Kill_now ]
    | _ -> touches @ acks @ [ Decide ]
  in
  return (gtid, shards, parts, script)

let script_print (gtid, shards, parts, script) =
  Printf.sprintf "gtid %d, %d shards, parts [%s], script [%s]" gtid shards
    (String.concat ";" (List.map string_of_int parts))
    (String.concat ";"
       (List.map
          (function
            | Touch s -> Printf.sprintf "touch %d" s
            | Abort_now -> "abort"
            | Kill_now -> "kill"
            | Ack s -> Printf.sprintf "ack %d" s
            | Decide -> "decide")
          script))

let prop_two_pc_model =
  QCheck.Test.make ~name:"Two_pc agrees with the reference lifecycle"
    ~count:500
    (QCheck.make ~print:script_print script_gen)
    (fun (gtid, shards, parts, script) ->
      let coordinator = gtid mod shards in
      let t = Two_pc.create ~gtid ~coordinator in
      let ok = ref true in
      let check b = if not b then ok := false in
      check (Two_pc.gtid t = gtid);
      check (Two_pc.coordinator t = coordinator);
      (* reference state *)
      let touched = ref [] in
      let pending = ref [] in
      let started = ref false in
      List.iter
        (fun ev ->
          match ev with
          | Touch s ->
            let expect = if List.mem s !touched then `Already else `Begun in
            if not (List.mem s !touched) then touched := !touched @ [ s ];
            check (Two_pc.touch t ~shard:s = expect);
            check (Two_pc.participants t = !touched);
            check (Two_pc.phase t = Two_pc.Running)
          | Abort_now ->
            Two_pc.abort t;
            check (Two_pc.phase t = Two_pc.Aborted)
          | Kill_now ->
            if not !started then begin
              started := true;
              let ps = Two_pc.start_commit t in
              check (ps = !touched);
              pending := !touched
            end;
            (* mid-protocol kill: the client blocks, never a
               generator-visible death *)
            check (Two_pc.kill t = `Blocked);
            check (Two_pc.phase t = Two_pc.Blocked);
            (* idempotent once dead *)
            check (Two_pc.kill t = `Blocked)
          | Ack s ->
            if not !started then begin
              started := true;
              let ps = Two_pc.start_commit t in
              check (ps = !touched);
              pending := !touched
            end;
            pending := List.filter (fun x -> x <> s) !pending;
            let expect = if !pending = [] then `Start_decision else `Wait in
            check (Two_pc.branch_acked t ~shard:s = expect);
            check
              (Two_pc.phase t
              = (if !pending = [] then Two_pc.Deciding
                 else Two_pc.Preparing (List.length !pending)))
          | Decide ->
            Two_pc.decision_acked t;
            check (Two_pc.phase t = Two_pc.Acked))
        script;
      (* a kill while Running kills the whole transaction *)
      (match script with
      | Touch _ :: _ when not !started ->
        let t2 = Two_pc.create ~gtid ~coordinator in
        List.iter
          (fun s -> ignore (Two_pc.touch t2 ~shard:s))
          (List.sort_uniq compare parts);
        check (Two_pc.kill t2 = `Kill_generator);
        check (Two_pc.phase t2 = Two_pc.Killed)
      | _ -> ());
      !ok)

let test_two_pc_violations () =
  let t = Two_pc.create ~gtid:3 ~coordinator:1 in
  Alcotest.check_raises "start_commit with no participants"
    (Two_pc.Protocol_violation "gtid 3: commit with no participants")
    (fun () -> ignore (Two_pc.start_commit t));
  ignore (Two_pc.touch t ~shard:0);
  ignore (Two_pc.touch t ~shard:1);
  ignore (Two_pc.start_commit t);
  (try
     ignore (Two_pc.branch_acked t ~shard:3);
     Alcotest.fail "non-participant ack accepted"
   with Two_pc.Protocol_violation _ -> ());
  ignore (Two_pc.branch_acked t ~shard:0);
  (try
     ignore (Two_pc.branch_acked t ~shard:0);
     Alcotest.fail "duplicate ack accepted"
   with Two_pc.Protocol_violation _ -> ());
  (try
     Two_pc.decision_acked t;
     Alcotest.fail "decision before every branch ack accepted"
   with Two_pc.Protocol_violation _ -> ());
  (try
     Two_pc.abort t;
     Alcotest.fail "abort mid-protocol accepted"
   with Two_pc.Protocol_violation _ -> ())

let test_two_pc_resolution () =
  (* presumed abort in one table *)
  Alcotest.(check bool) "decision durable commits" true
    (Two_pc.resolve ~decision_durable:true = `Committed);
  Alcotest.(check bool) "no decision aborts" true
    (Two_pc.resolve ~decision_durable:false = `Aborted);
  (* the atomic-commit invariant *)
  Alcotest.(check bool) "all durable ok" true
    (Two_pc.atomic_ok ~decision_durable:true
       ~branches_durable:[ true; true ]);
  Alcotest.(check bool) "half-commit violates" false
    (Two_pc.atomic_ok ~decision_durable:true
       ~branches_durable:[ true; false ]);
  Alcotest.(check bool) "presumed abort is always safe" true
    (Two_pc.atomic_ok ~decision_durable:false
       ~branches_durable:[ true; false ]);
  (* decision tid namespace *)
  let d = Two_pc.decision_tid ~gtid:77 in
  Alcotest.(check bool) "decision tids far above workload tids" true
    (Ids.Tid.to_int d >= Two_pc.decision_tid_base);
  Alcotest.(check bool) "decision tid recognized" true
    (Two_pc.is_decision_tid d);
  Alcotest.(check int) "gtid roundtrips" 77 (Two_pc.gtid_of_decision d);
  Alcotest.(check bool) "workload tid not a decision" false
    (Two_pc.is_decision_tid (Ids.Tid.of_int 77));
  (* control versions are strictly monotone and positive *)
  Alcotest.(check bool) "ctl version positive at gtid 0" true
    (Shard_group.ctl_version ~gtid:0 > 0);
  Alcotest.(check bool) "ctl version monotone" true
    (Shard_group.ctl_version ~gtid:9 < Shard_group.ctl_version ~gtid:10)

(* ---- deterministic crash-point sweeps under the composite oracle ---- *)

(* Every manager kind, shards in {2, 4}: >= 50 audit pauses each, the
   per-shard spec instances and the global atomic-commit invariant
   must stay silent, and cross-shard traffic must actually flow. *)
let test_sharded_sweeps () =
  List.iter
    (fun (name, kind) ->
      List.iter
        (fun shards ->
          let cfg =
            {
              (Sweep.standard_config ~kind ~runtime:(Time.of_sec 15) ())
              with
              Experiment.shards;
            }
          in
          let o = Sweep.run ~stride:40 ~spec:true cfg in
          let l fmt =
            Printf.sprintf ("%s @ %d shards: " ^^ fmt) name shards
          in
          Alcotest.(check (list (pair int string)))
            (l "composite oracle silent") [] o.Sweep.failures;
          Alcotest.(check bool)
            (l "at least 50 crash points")
            true (o.Sweep.points >= 50);
          Alcotest.(check bool)
            (l "transactions committed")
            true (o.Sweep.committed > 0);
          Alcotest.(check bool)
            (l "cross-shard commits flowed")
            true (o.Sweep.cross_committed > 0);
          Alcotest.(check bool)
            (l "spec stepped")
            true (o.Sweep.spec_checks > 0);
          if name = "el" then begin
            Alcotest.(check bool)
              (l "crash/recover cycles ran")
              true
              (o.Sweep.recoveries >= 50);
            Alcotest.(check bool)
              (l "atomic-commit invariant exercised")
              true
              (o.Sweep.atomic_checks > 0)
          end)
        [ 2; 4 ])
    (Sweep.standard_kinds ())

(* ---- 1-shard group = solo path, byte for byte ---- *)

let test_one_shard_identity () =
  List.iter
    (fun (name, kind) ->
      let cfg =
        Sweep.standard_config ~kind ~runtime:(Time.of_sec 10) ~seed:9 ()
      in
      let solo = Experiment.run cfg in
      let grouped = Shard_group.run cfg in
      Alcotest.(check bool)
        (name ^ ": r_global Marshal byte-identical to the solo result")
        true
        (Marshal.to_string solo [] = Marshal.to_string grouped.Shard_group.r_global []);
      Alcotest.(check int)
        (name ^ ": no cross-shard traffic at one shard")
        0 grouped.Shard_group.r_cross_committed;
      Alcotest.(check int)
        (name ^ ": every commit is a fast-path single")
        grouped.Shard_group.r_global.Experiment.committed
        grouped.Shard_group.r_single_committed)
    (Sweep.standard_kinds ())

(* ---- per-shard accounting ---- *)

let test_shard_accounting () =
  let kind = List.assoc "el" (Sweep.standard_kinds ()) in
  let cfg =
    {
      (Sweep.standard_config ~kind ~runtime:(Time.of_sec 15) ~seed:3 ())
      with
      Experiment.shards = 3;
    }
  in
  let rr = Shard_group.run cfg in
  let sum =
    Array.fold_left (fun a s -> a + s.Shard_group.ss_committed) 0
      rr.Shard_group.r_shards
  in
  Alcotest.(check int) "per-shard commits sum to the global count"
    rr.Shard_group.r_global.Experiment.committed sum;
  Alcotest.(check int) "singles + cross = committed"
    rr.Shard_group.r_global.Experiment.committed
    (rr.Shard_group.r_single_committed + rr.Shard_group.r_cross_committed);
  Alcotest.(check bool) "cross-shard commits flowed" true
    (rr.Shard_group.r_cross_committed > 0);
  Alcotest.(check bool) "prepares cover every cross branch" true
    (rr.Shard_group.r_prepares >= 2 * rr.Shard_group.r_cross_committed);
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d routed traffic" s.Shard_group.ss_shard)
        true
        (s.Shard_group.ss_mailbox_ops > 0))
    rr.Shard_group.r_shards

let suite =
  [
    Alcotest.test_case "partition tiles the oid space" `Quick
      test_partition_ranges;
    Alcotest.test_case "control region routes home" `Quick
      test_partition_ctl_region;
    Alcotest.test_case "coordinator = gtid mod shards" `Quick
      test_partition_coordinator;
    Alcotest.test_case "partition validates its inputs" `Quick
      test_partition_validation;
    Alcotest.test_case "spsc order, bounds and wrap" `Quick
      test_spsc_order_and_bounds;
    QCheck_alcotest.to_alcotest prop_two_pc_model;
    Alcotest.test_case "2pc rejects illegal steps" `Quick
      test_two_pc_violations;
    Alcotest.test_case "presumed abort and the atomic invariant" `Quick
      test_two_pc_resolution;
    Alcotest.test_case "sharded sweeps: composite oracle silent (2,4)" `Slow
      test_sharded_sweeps;
    Alcotest.test_case "one shard = solo path (Marshal)" `Quick
      test_one_shard_identity;
    Alcotest.test_case "per-shard accounting balances" `Quick
      test_shard_accounting;
  ]
