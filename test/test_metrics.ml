open El_model
module G = El_metrics.Gauge
module C = El_metrics.Counter
module S = El_metrics.Running_stat
module T = El_metrics.Table

let test_gauge () =
  let g = G.create ~name:"g" () in
  Alcotest.(check int) "initial" 0 (G.value g);
  G.add g 5;
  G.add g 3;
  G.add g (-6);
  Alcotest.(check int) "current" 2 (G.value g);
  Alcotest.(check int) "peak" 8 (G.max_value g);
  G.set g 1;
  Alcotest.(check int) "set" 1 (G.value g);
  Alcotest.(check int) "peak survives set" 8 (G.max_value g);
  G.reset g;
  Alcotest.(check int) "reset" 0 (G.max_value g)

let test_gauge_negative () =
  let g = G.create () in
  G.add g 2;
  Alcotest.check_raises "cannot go negative"
    (Invalid_argument "Gauge.add(gauge): went negative") (fun () -> G.add g (-3))

let test_counter () =
  let c = C.create ~name:"c" () in
  C.incr c;
  C.add c 9;
  Alcotest.(check int) "value" 10 (C.value c);
  Alcotest.(check (float 1e-9)) "rate" 2.5
    (C.rate_per_sec c ~over:(Time.of_sec 4));
  Alcotest.check_raises "negative add" (Invalid_argument "Counter.add: negative")
    (fun () -> C.add c (-1))

let test_running_stat () =
  let s = S.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (S.mean s);
  List.iter (S.observe s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (S.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (S.mean s);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (S.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (S.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (S.max_value s)

let prop_stat_mean =
  QCheck.Test.make
    ~name:"running stat matches two-pass mean/population/sample variance"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = S.create () in
      List.iter (S.observe s) xs;
      (* naive two-pass reference *)
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let m2 =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      in
      let pop_var = m2 /. n in
      let sample_var = m2 /. (n -. 1.0) in
      let close a b = abs_float (a -. b) < 1e-6 *. (1.0 +. abs_float b) in
      close (S.mean s) mean
      && close (S.variance s) pop_var
      && close (S.sample_variance s) sample_var
      && S.sample_variance s >= S.variance s)

let test_table_render () =
  let t =
    T.create ~columns:[ ("name", T.Left); ("count", T.Right) ]
  in
  T.add_row t [ "alpha"; "1" ];
  T.add_row t [ "b"; "23456" ];
  T.add_rule t;
  T.add_row t [ "total"; "23457" ];
  let rendered = T.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check string) "header" "name   count" (List.nth lines 0);
  Alcotest.(check string) "row pads right-aligned" "alpha      1"
    (List.nth lines 2);
  Alcotest.(check string) "rule" "------------" (List.nth lines 4);
  Alcotest.(check string) "total" "total  23457" (List.nth lines 5)

let test_table_validation () =
  Alcotest.check_raises "empty columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (T.create ~columns:[]));
  let t = T.create ~columns:[ ("a", T.Left) ] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      T.add_row t [ "x"; "y" ])

let suite =
  [
    Alcotest.test_case "gauge tracks current and peak" `Quick test_gauge;
    Alcotest.test_case "gauge rejects negative totals" `Quick
      test_gauge_negative;
    Alcotest.test_case "counter and rates" `Quick test_counter;
    Alcotest.test_case "running stat" `Quick test_running_stat;
    QCheck_alcotest.to_alcotest prop_stat_mean;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table validation" `Quick test_table_validation;
  ]
