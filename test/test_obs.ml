open El_model
module Experiment = El_harness.Experiment
module Policy = El_core.Policy
module Mix = El_workload.Mix
module Histogram = El_obs.Histogram
module Ring = El_obs.Ring
module Obs = El_obs.Obs
module Export = El_obs.Export

(* ---- log-scale histogram ---- *)

let test_histogram_bucket_boundaries () =
  (* base 2, lowest 1, 4 interior buckets: [1,2) [2,4) [4,8) [8,16),
     underflow below 1, overflow from 16.  An observation exactly on a
     boundary lands in the bucket whose lower bound it equals. *)
  let h = Histogram.create ~base:2.0 ~lowest:1.0 ~buckets:4 () in
  let idx = Histogram.bucket_index h in
  Alcotest.(check int) "negative -> underflow" 0 (idx (-3.0));
  Alcotest.(check int) "0.5 -> underflow" 0 (idx 0.5);
  Alcotest.(check int) "1.0 -> first bucket" 1 (idx 1.0);
  Alcotest.(check int) "1.999 -> first bucket" 1 (idx 1.999);
  Alcotest.(check int) "2.0 -> second bucket" 2 (idx 2.0);
  Alcotest.(check int) "7.999 -> third bucket" 3 (idx 7.999);
  Alcotest.(check int) "8.0 -> fourth bucket" 4 (idx 8.0);
  Alcotest.(check int) "15.999 -> fourth bucket" 4 (idx 15.999);
  Alcotest.(check int) "16.0 -> overflow" 5 (idx 16.0);
  Alcotest.(check int) "1e9 -> overflow" 5 (idx 1e9);
  Alcotest.(check (pair (float 0.0) (float 0.0)))
    "bounds of [2,4)" (2.0, 4.0)
    (Histogram.bucket_bounds h 2);
  let lo, hi = Histogram.bucket_bounds h 0 in
  Alcotest.(check bool) "underflow bounds" true (lo = neg_infinity && hi = 1.0);
  let lo, hi = Histogram.bucket_bounds h 5 in
  Alcotest.(check bool) "overflow bounds" true (lo = 16.0 && hi = infinity)

let test_histogram_observe_and_stats () =
  let h = Histogram.create ~base:2.0 ~lowest:1.0 ~buckets:8 () in
  List.iter (Histogram.observe h) [ 1.0; 3.0; 3.5; 100.0; 0.25; nan ];
  Alcotest.(check int) "NaN ignored" 5 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 107.75 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.25 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Histogram.max_value h);
  Alcotest.(check int) "bucket [2,4) holds two" 2
    (Histogram.bucket_count h (Histogram.bucket_index h 3.0));
  (* percentile is an upper bound clamped to the observed max *)
  Alcotest.(check bool) "p50 bounds the median" true
    (Histogram.percentile h 0.5 >= 3.0);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 100.0
    (Histogram.percentile h 1.0)

let test_histogram_merge () =
  let a = Histogram.create ~base:2.0 ~lowest:1.0 ~buckets:8 () in
  let b = Histogram.create ~base:2.0 ~lowest:1.0 ~buckets:8 () in
  List.iter (Histogram.observe a) [ 1.0; 5.0 ];
  List.iter (Histogram.observe b) [ 5.5; 300.0; 0.1 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged min" 0.1 (Histogram.min_value m);
  Alcotest.(check (float 1e-9)) "merged max" 300.0 (Histogram.max_value m);
  Alcotest.(check int) "merged bucket [4,8) holds two" 2
    (Histogram.bucket_count m (Histogram.bucket_index m 5.0));
  (* originals untouched *)
  Alcotest.(check int) "a unchanged" 2 (Histogram.count a);
  let odd = Histogram.create ~base:2.0 ~lowest:1.0 ~buckets:4 () in
  Alcotest.check_raises "shape mismatch rejected"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts") (fun () ->
      ignore (Histogram.merge a odd))

(* ---- trace ring ---- *)

let test_ring_wraparound_keeps_newest () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Ring.length r);
  Alcotest.(check int) "pushed total" 10 (Ring.pushed r);
  Alcotest.(check int) "dropped = pushed - kept" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "newest retained, oldest first" [ 6; 7; 8; 9 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check (list int)) "clear empties list" [] (Ring.to_list r)

let test_obs_ring_drops_oldest_events () =
  let engine = El_sim.Engine.create () in
  let obs =
    Obs.create
      ~config:{ Obs.ring_capacity = 8; sample_period = Time.of_ms 100 }
      engine
  in
  for i = 0 to 19 do
    Obs.emit_at obs ~at:(Time.of_ms i) El_obs.Event.Harness
      (El_obs.Event.Mark (string_of_int i))
  done;
  Alcotest.(check int) "emitted" 20 (Obs.emitted obs);
  Alcotest.(check int) "recorded" 8 (Obs.recorded obs);
  Alcotest.(check int) "dropped" 12 (Obs.dropped obs);
  match Obs.events obs with
  | { El_obs.Event.kind = Mark m; at; _ } :: _ ->
    Alcotest.(check string) "oldest retained is #12" "12" m;
    Alcotest.(check int) "stamped at 12 ms" (Time.to_us (Time.of_ms 12))
      (Time.to_us at)
  | _ -> Alcotest.fail "expected a Mark event"

(* ---- Chrome trace export: valid JSON, time-ordered ---- *)

(* A deliberately strict little JSON reader — enough to audit our own
   exporter without an external dependency.  Raises [Failure] on any
   malformed input, including trailing garbage. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
        advance ();
        Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
        | '"' | '\\' | '/' -> Buffer.add_char b (peek ())
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          for _ = 1 to 4 do
            advance ()
          done;
          Buffer.add_char b '?'
        | _ -> fail "bad escape");
        advance ();
        go ()
      | '\255' -> fail "eof in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while numeric (peek ()) do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      parse_obj []
    | '[' ->
      advance ();
      parse_list []
    | '"' -> Jstr (parse_string ())
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | _ -> parse_number ()
  and parse_obj acc =
    skip_ws ();
    if peek () = '}' then (
      advance ();
      Jobj (List.rev acc))
    else (
      let k = parse_string () in
      skip_ws ();
      expect ':';
      let v = parse_value () in
      skip_ws ();
      match peek () with
      | ',' ->
        advance ();
        parse_obj ((k, v) :: acc)
      | '}' ->
        advance ();
        Jobj (List.rev ((k, v) :: acc))
      | _ -> fail "expected ',' or '}'")
  and parse_list acc =
    skip_ws ();
    if peek () = ']' then (
      advance ();
      Jlist (List.rev acc))
    else (
      let v = parse_value () in
      skip_ws ();
      match peek () with
      | ',' ->
        advance ();
        parse_list (v :: acc)
      | ']' ->
        advance ();
        Jlist (List.rev (v :: acc))
      | _ -> fail "expected ',' or ']'")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Jobj fields -> List.assoc_opt k fields
  | _ -> None

let observed_cfg =
  {
    (Experiment.default_config
       ~kind:(Experiment.Ephemeral (Policy.default ~generation_sizes:[| 18; 12 |]))
       ~mix:(Mix.short_long ~long_fraction:0.05)) with
    Experiment.runtime = Time.of_sec 20;
    observer = Some Obs.default_config;
  }

let test_chrome_trace_valid_and_ordered () =
  let live = Experiment.prepare observed_cfg in
  let (_ : Experiment.result) = live.Experiment.finish () in
  let obs = Option.get live.Experiment.obs in
  let doc = parse_json (Export.chrome_trace obs) in
  let events =
    match member "traceEvents" doc with
    | Some (Jlist l) -> l
    | _ -> Alcotest.fail "traceEvents list missing"
  in
  Alcotest.(check bool) "has events" true (List.length events > 100);
  let ph e =
    match member "ph" e with Some (Jstr p) -> p | _ -> Alcotest.fail "no ph"
  in
  let timed = List.filter (fun e -> ph e <> "M") events in
  let phases = List.sort_uniq compare (List.map ph timed) in
  Alcotest.(check (list string)) "instant and counter events" [ "C"; "i" ]
    phases;
  let ts e =
    match member "ts" e with Some (Jnum t) -> t | _ -> Alcotest.fail "no ts"
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> ts a <= ts b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "timed events in nondecreasing ts order" true
    (nondecreasing timed);
  List.iter
    (fun e ->
      (match member "pid" e with
      | Some (Jnum _) -> ()
      | _ -> Alcotest.fail "event without pid");
      match ph e with
      | "i" -> (
        match member "s" e with
        | Some (Jstr "t") -> ()
        | _ -> Alcotest.fail "instant without thread scope")
      | "C" -> (
        match Option.bind (member "args" e) (member "value") with
        | Some (Jnum _) -> ()
        | _ -> Alcotest.fail "counter without args.value")
      | _ -> ())
    timed;
  (* the summary export must be valid JSON too *)
  match member "schema" (parse_json (Export.summary_json obs)) with
  | Some (Jstr "el-obs-summary/1") -> ()
  | _ -> Alcotest.fail "summary schema marker missing"

let test_timeseries_csv_shape () =
  let live = Experiment.prepare observed_cfg in
  let (_ : Experiment.result) = live.Experiment.finish () in
  let obs = Option.get live.Experiment.obs in
  let lines =
    String.split_on_char '\n' (String.trim (Export.timeseries_csv obs))
  in
  match lines with
  | header :: rows ->
    let cols = String.split_on_char ',' header in
    Alcotest.(check string) "first column is time_s" "time_s" (List.hd cols);
    Alcotest.(check bool) "probe columns present" true
      (List.mem "flush_backlog" cols && List.mem "gen0_occupancy" cols);
    (* 20 s at 100 ms: samples at 0.0 .. 20.0 inclusive *)
    Alcotest.(check int) "one row per 100 ms" 201 (List.length rows);
    List.iter
      (fun row ->
        Alcotest.(check int) "row arity matches header" (List.length cols)
          (List.length (String.split_on_char ',' row)))
      rows
  | [] -> Alcotest.fail "empty csv"

(* ---- determinism: observability must not perturb the simulation ---- *)

let test_observer_does_not_change_result () =
  let off = Experiment.run { observed_cfg with Experiment.observer = None } in
  let on = Experiment.run observed_cfg in
  Alcotest.(check bool) "same-seed results byte-identical" true
    (Marshal.to_string off [] = Marshal.to_string on [])

let suite =
  [
    Alcotest.test_case "histogram: bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "histogram: observe/stats" `Quick
      test_histogram_observe_and_stats;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    Alcotest.test_case "ring: wraparound keeps newest" `Quick
      test_ring_wraparound_keeps_newest;
    Alcotest.test_case "obs: ring drops oldest events" `Quick
      test_obs_ring_drops_oldest_events;
    Alcotest.test_case "export: chrome trace valid & ordered" `Quick
      test_chrome_trace_valid_and_ordered;
    Alcotest.test_case "export: timeseries csv shape" `Quick
      test_timeseries_csv_shape;
    Alcotest.test_case "observer leaves result unchanged" `Quick
      test_observer_does_not_change_result;
  ]
