(* Allocation-discipline gates for the zero-copy pass:

   - arena segment laws: packed records roundtrip to boxed ones;
     ownership (release) plus borrowing (pin) gate chunk recycling;
     stale handles are poisoned; the pool actually recycles and the
     unpooled arena never does; concurrent segments don't alias;
   - the flush elevator's hierarchical bitset against a [Set] model,
     every query at every universe point;
   - pooling is invisible: the same seeded run is Marshal-identical
     with entry/chunk recycling on and off, across all three managers
     and the adversarial presets. *)

open El_model
module Arena = El_core.Arena
module Bitset = El_disk.Oid_bitset
module Experiment = El_harness.Experiment
module Sweep = El_check.Sweep
module Preset = El_workload.Workload_preset

(* ---- arena segment laws ---- *)

let record_arb =
  let open QCheck in
  let gen =
    Gen.(
      map
        (fun (k, tidn, oidn, version, size, ts) ->
          let tid = Ids.Tid.of_int (tidn + 1) in
          let timestamp = Time.of_us ts in
          match k with
          | 0 -> Log_record.begin_ ~tid ~size ~timestamp
          | 1 -> Log_record.commit ~tid ~size ~timestamp
          | 2 -> Log_record.abort ~tid ~size ~timestamp
          | _ ->
            Log_record.data ~tid ~oid:(Ids.Oid.of_int oidn)
              ~version:(version + 1) ~size ~timestamp)
        (tup6 (int_bound 3) (int_bound 1000) (int_bound 999) (int_bound 50)
           (int_range 1 64) (int_bound 100_000)))
  in
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Log_record.pp r) gen

let prop_arena_roundtrip =
  (* Sizes up to 300 records span several chunks, so the law also
     covers chunk linking. *)
  QCheck.Test.make ~name:"arena packs and unpacks records faithfully"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 300) record_arb)
    (fun records ->
      let a = Arena.create () in
      let seg = Arena.alloc a in
      List.iter (Arena.push_record seg) records;
      let ok =
        Arena.length seg = List.length records
        && Arena.to_records seg = records
        && List.for_all
             (fun (i, r) -> Arena.record_at seg i = r)
             (List.mapi (fun i r -> (i, r)) records)
      in
      Arena.release seg;
      ok)

let test_arena_recycles () =
  let a = Arena.create () in
  Alcotest.(check bool) "pooled by default" true (Arena.pooled a);
  let fill seg =
    for i = 1 to 200 do
      Arena.push seg ~tag:Arena.tag_data ~tid:i ~oid:(i mod 64) ~version:i
        ~size:8 ~ts:i
    done
  in
  let seg = Arena.alloc a in
  fill seg;
  Alcotest.(check int) "length" 200 (Arena.length seg);
  let s1 = Arena.stats a in
  Alcotest.(check bool) "fresh chunks carved" true (s1.Arena.allocs > 0);
  Arena.release seg;
  Alcotest.(check bool) "stale after release" true
    (try
       ignore (Arena.length seg);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "double release rejected" true
    (try
       Arena.release seg;
       false
     with Invalid_argument _ -> true);
  let seg2 = Arena.alloc a in
  fill seg2;
  let s2 = Arena.stats a in
  Alcotest.(check int) "same shape carves no new chunks" s1.Arena.allocs
    s2.Arena.allocs;
  Alcotest.(check bool) "served from the pool" true (s2.Arena.reuses > 0);
  Arena.release seg2

let test_arena_pin_outlives_release () =
  let a = Arena.create () in
  let seg = Arena.alloc a in
  Arena.push seg ~tag:Arena.tag_commit ~tid:7 ~oid:0 ~version:0 ~size:8 ~ts:42;
  Arena.pin seg;
  Arena.release seg;
  (* released but pinned: the sealed-block reader still sees it *)
  Alcotest.(check int) "one pin" 1 (Arena.pinned seg);
  Alcotest.(check int) "still readable past release" 7 (Arena.tid seg 0);
  Alcotest.(check int) "tag intact" Arena.tag_commit (Arena.tag seg 0);
  Arena.unpin seg;
  Alcotest.(check bool) "stale after the last unpin" true
    (try
       ignore (Arena.tid seg 0);
       false
     with Invalid_argument _ -> true)

let test_arena_unpooled_never_reuses () =
  let a = Arena.create ~pooled:false () in
  for round = 1 to 5 do
    let seg = Arena.alloc a in
    for i = 1 to 100 do
      Arena.push seg ~tag:Arena.tag_data ~tid:i ~oid:i ~version:round ~size:8
        ~ts:i
    done;
    Arena.release seg
  done;
  let s = Arena.stats a in
  Alcotest.(check int) "unpooled never reuses" 0 s.Arena.reuses;
  Alcotest.(check int) "no buffers retained" 0 s.Arena.pooled_buffers

let test_arena_segments_isolated () =
  (* Interleaved pushes into eight segments, each spanning multiple
     chunks: no cross-talk, and releasing them all feeds a second
     round entirely from the pool. *)
  let a = Arena.create () in
  let n = 8 and per = 150 in
  let round () =
    let segs = Array.init n (fun _ -> Arena.alloc a) in
    for i = 0 to (n * per) - 1 do
      let s = i mod n in
      Arena.push segs.(s) ~tag:Arena.tag_data ~tid:s ~oid:(i / n) ~version:s
        ~size:8 ~ts:i
    done;
    Array.iteri
      (fun s seg ->
        Alcotest.(check int) (Printf.sprintf "seg %d length" s) per
          (Arena.length seg);
        for j = 0 to per - 1 do
          if Arena.oid seg j <> j || Arena.tid seg j <> s then
            Alcotest.failf "seg %d slot %d cross-talk" s j
        done)
      segs;
    segs
  in
  let segs = round () in
  Alcotest.(check int) "outstanding" n (Arena.stats a).Arena.outstanding;
  Array.iter Arena.release segs;
  Alcotest.(check int) "all returned" 0 (Arena.stats a).Arena.outstanding;
  let allocs_before = (Arena.stats a).Arena.allocs in
  Array.iter Arena.release (round ());
  Alcotest.(check int) "second round carves nothing" allocs_before
    (Arena.stats a).Arena.allocs

(* ---- hierarchical bitset vs a Set model ---- *)

module ISet = Set.Make (Int)

type bop = Add of int | Remove of int

let bitset_ops_arb ~universe =
  let open QCheck in
  make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add i -> Printf.sprintf "+%d" i
             | Remove i -> Printf.sprintf "-%d" i)
           ops))
    Gen.(
      list_size (int_range 0 200)
        (map2
           (fun add i -> if add then Add i else Remove i)
           bool
           (int_bound (universe - 1))))

let prop_bitset_model =
  let universe = 200 in
  QCheck.Test.make ~name:"hierarchical bitset == Set model" ~count:300
    (bitset_ops_arb ~universe)
    (fun ops ->
      let b = Bitset.create universe in
      let model =
        List.fold_left
          (fun m op ->
            match op with
            | Add i ->
              Bitset.add b i;
              ISet.add i m
            | Remove i ->
              Bitset.remove b i;
              ISet.remove i m)
          ISet.empty ops
      in
      let elems = ref [] in
      Bitset.iter b (fun i -> elems := i :: !elems);
      List.rev !elems = ISet.elements model
      && Bitset.cardinal b = ISet.cardinal model
      && Bitset.is_empty b = ISet.is_empty model
      && Bitset.min_elt b = ISet.min_elt_opt model
      && Bitset.max_elt b = ISet.max_elt_opt model
      && List.for_all
           (fun i ->
             Bitset.mem b i = ISet.mem i model
             && Bitset.next_geq b i
                = ISet.find_first_opt (fun x -> x >= i) model
             && Bitset.prev_lt b i
                = ISet.find_last_opt (fun x -> x < i) model)
           (List.init universe Fun.id))

(* ---- pooling is invisible ---- *)

let test_pooling_identity () =
  List.iter
    (fun (preset_name, preset) ->
      List.iter
        (fun (kind_name, kind) ->
          List.iter
            (fun seed ->
              let cfg =
                Sweep.standard_config ~kind ~runtime:(Time.of_sec 10)
                  ~rate:40.0 ~seed ~preset ()
              in
              let run pooling =
                Marshal.to_string
                  (Experiment.run { cfg with Experiment.pooling })
                  []
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s seed %d: pooled == unpooled"
                   preset_name kind_name seed)
                true
                (run true = run false))
            [ 1; 2; 3 ])
        (Sweep.standard_kinds ()))
    [ ("contention", Preset.contention); ("longtail", Preset.longtail) ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_arena_roundtrip;
    Alcotest.test_case "arena recycles through the pool" `Quick
      test_arena_recycles;
    Alcotest.test_case "pin keeps a released segment readable" `Quick
      test_arena_pin_outlives_release;
    Alcotest.test_case "unpooled arena never reuses" `Quick
      test_arena_unpooled_never_reuses;
    Alcotest.test_case "segments don't alias; pool feeds round two" `Quick
      test_arena_segments_isolated;
    QCheck_alcotest.to_alcotest prop_bitset_model;
    Alcotest.test_case "pooled == unpooled (3 seeds x 3 kinds x 2 presets)"
      `Slow test_pooling_identity;
  ]
