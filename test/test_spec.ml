(* The durable-log spec's own tests: the transition laws as unit
   cases, and the contract-level properties — invariant preservation,
   crash-step monotonicity, recovery idempotence — as QCheck
   properties over random step sequences. *)

open El_model
module Spec = El_spec.Durable_log

let tid n = Ids.Tid.of_int n
let oid n = Ids.Oid.of_int n

let ok label s step =
  match Spec.step s step with
  | Ok s' -> s'
  | Error msg -> Alcotest.failf "%s: rejected — %s" label msg

let rejected label s step =
  match Spec.step s step with
  | Ok _ -> Alcotest.failf "%s: accepted an illegal step" label
  | Error _ -> ()

(* The canonical legal lifecycle, used as a fixture by several
   tests: one transaction begun, appended, log-extended, acked,
   flushed, superblock-advanced. *)
let acked_state () =
  let s = ok "begin" Spec.init (Spec.Begin (tid 1)) in
  let s = ok "append" s (Spec.Append (tid 1, oid 0, 3)) in
  let s = ok "extension" s (Spec.Log_extension (tid 1)) in
  ok "ack" s (Spec.Commit_ack (tid 1))

let test_happy_path () =
  let s = acked_state () in
  Alcotest.(check (option int)) "acked" (Some 3) (Spec.acked_version s (oid 0));
  let s = ok "flush" s (Spec.Flush_complete (oid 0, 3)) in
  let s = ok "superblock" s (Spec.Superblock_advance (oid 0, 3)) in
  Alcotest.(check (option int))
    "flushed" (Some 3)
    (Spec.flushed_version s (oid 0));
  Alcotest.(check (option int)) "floor" (Some 3) (Spec.floor_version s (oid 0));
  (match Spec.check s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant after happy path: %s" m);
  Alcotest.(check (list (pair int int)))
    "persistent"
    [ (0, 3) ]
    (List.map (fun (o, v) -> (Ids.Oid.to_int o, v)) (Spec.persistent s))

let test_transition_laws () =
  let s1 = ok "begin" Spec.init (Spec.Begin (tid 1)) in
  rejected "duplicate begin" s1 (Spec.Begin (tid 1));
  rejected "append by unknown tx" Spec.init (Spec.Append (tid 9, oid 0, 1));
  rejected "append v0" s1 (Spec.Append (tid 1, oid 0, 0));
  rejected "ack without extension" s1 (Spec.Commit_ack (tid 1));
  rejected "extension of unknown tx" Spec.init (Spec.Log_extension (tid 9));
  let ext = ok "extension" s1 (Spec.Log_extension (tid 1)) in
  rejected "append after extension" ext (Spec.Append (tid 1, oid 0, 1));
  rejected "abort after extension" ext (Spec.Abort (tid 1));
  rejected "kill after extension" ext (Spec.Kill (tid 1));
  rejected "double extension" ext (Spec.Log_extension (tid 1));
  let acked = ok "ack" ext (Spec.Commit_ack (tid 1)) in
  rejected "double ack" acked (Spec.Commit_ack (tid 1));
  let s = acked_state () in
  rejected "flush of never-acked oid" s (Spec.Flush_complete (oid 5, 1));
  rejected "flush ahead of acked" s (Spec.Flush_complete (oid 0, 4));
  rejected "superblock without flush" s (Spec.Superblock_advance (oid 0, 3));
  let s = ok "flush" s (Spec.Flush_complete (oid 0, 3)) in
  rejected "flush regression" s (Spec.Flush_complete (oid 0, 2));
  rejected "superblock ahead of flush" s (Spec.Superblock_advance (oid 0, 4))

let test_abort_and_kill_discard () =
  let s = ok "begin" Spec.init (Spec.Begin (tid 1)) in
  let s = ok "append" s (Spec.Append (tid 1, oid 0, 2)) in
  let s = ok "abort" s (Spec.Abort (tid 1)) in
  Alcotest.(check (option int)) "nothing acked" None
    (Spec.acked_version s (oid 0));
  Alcotest.(check bool)
    "aborted write must not survive" false
    (Spec.may_survive s (oid 0) 2);
  let s = ok "begin2" s (Spec.Begin (tid 2)) in
  let s = ok "append2" s (Spec.Append (tid 2, oid 1, 7)) in
  let s = ok "kill" s (Spec.Kill (tid 2)) in
  Alcotest.(check bool)
    "killed write must not survive" false
    (Spec.may_survive s (oid 1) 7)

let test_may_survive_torn_prefix () =
  (* A log-extended-but-unacked transaction's write may survive (its
     COMMIT record can persist inside a torn prefix); a running one's
     may not. *)
  let s = acked_state () in
  let s = ok "begin2" s (Spec.Begin (tid 2)) in
  let s = ok "append2" s (Spec.Append (tid 2, oid 0, 5)) in
  Alcotest.(check bool)
    "running write may not survive" false
    (Spec.may_survive s (oid 0) 5);
  let s = ok "extension2" s (Spec.Log_extension (tid 2)) in
  Alcotest.(check bool)
    "log-extended write may survive" true
    (Spec.may_survive s (oid 0) 5);
  Alcotest.(check bool) "acked version may survive" true
    (Spec.may_survive s (oid 0) 3);
  Alcotest.(check bool)
    "never-written version may not survive" false
    (Spec.may_survive s (oid 0) 4);
  (* After the crash wipes the transaction table, only the ack
     remains. *)
  let c = Spec.crash s in
  Alcotest.(check bool)
    "crash narrows survival to the ack" false
    (Spec.may_survive c (oid 0) 5);
  Alcotest.(check bool) "ack survives the crash" true
    (Spec.may_survive c (oid 0) 3)

(* Random step sequences over a small universe: 5 transactions,
   3 objects, versions 1-6.  Illegal steps are skipped (the state is
   unchanged by construction), so a replayed prefix is always a
   reachable state. *)
let step_of (c, a, b) =
  let t = tid (a mod 5) and o = oid (a mod 3) and v = (b mod 6) + 1 in
  match c mod 9 with
  | 0 -> Spec.Begin t
  | 1 -> Spec.Append (t, o, v)
  | 2 -> Spec.Log_extension t
  | 3 -> Spec.Commit_ack t
  | 4 -> Spec.Abort t
  | 5 -> Spec.Kill t
  | 6 -> Spec.Flush_complete (o, v)
  | 7 -> Spec.Superblock_advance (o, v)
  | _ -> Spec.Crash

let replay codes =
  List.fold_left
    (fun s code ->
      match Spec.step s (step_of code) with Ok s' -> s' | Error _ -> s)
    Spec.init codes

let steps_arb =
  QCheck.(list_of_size (Gen.int_range 0 120) (triple small_nat small_nat small_nat))

let prop_invariant_preserved =
  QCheck.Test.make ~name:"invariant holds in every reachable state" ~count:500
    steps_arb (fun codes ->
      match Spec.check (replay codes) with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_reportf "invariant broken: %s" m)

let prop_crash_monotone =
  QCheck.Test.make
    ~name:"crash-step monotonicity: persistent state never gains records"
    ~count:500 steps_arb (fun codes ->
      let s = replay codes in
      let c = Spec.crash s in
      Spec.persistent c = Spec.persistent s
      && Spec.num_txs c = 0
      && (* whatever may survive a crash of the crashed state is
            exactly the acked state *)
      List.for_all
        (fun (o, v) -> Spec.may_survive c o v)
        (Spec.persistent c))

let prop_recovery_idempotent =
  QCheck.Test.make ~name:"recovery idempotence: crash of a crash is a no-op"
    ~count:500 steps_arb (fun codes ->
      let s = replay codes in
      let once = Spec.crash s in
      Spec.equal (Spec.crash once) once
      &&
      match Spec.step s Spec.Crash with
      | Ok via_step -> Spec.equal via_step once
      | Error _ -> false)

let prop_acked_monotone =
  QCheck.Test.make
    ~name:"acked versions never regress under any accepted step" ~count:500
    steps_arb (fun codes ->
      let oids = List.init 3 oid in
      let ok = ref true in
      let _final =
        List.fold_left
          (fun s code ->
            match Spec.step s (step_of code) with
            | Error _ -> s
            | Ok s' ->
              List.iter
                (fun o ->
                  match (Spec.acked_version s o, Spec.acked_version s' o) with
                  | Some before, Some after when after < before -> ok := false
                  | Some _, None -> ok := false
                  | _ -> ())
                oids;
              s')
          Spec.init codes
      in
      !ok)

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "transition laws" `Quick test_transition_laws;
    Alcotest.test_case "abort and kill discard writes" `Quick
      test_abort_and_kill_discard;
    Alcotest.test_case "may_survive models torn-prefix commits" `Quick
      test_may_survive_torn_prefix;
    QCheck_alcotest.to_alcotest prop_invariant_preserved;
    QCheck_alcotest.to_alcotest prop_crash_monotone;
    QCheck_alcotest.to_alcotest prop_recovery_idempotent;
    QCheck_alcotest.to_alcotest prop_acked_monotone;
  ]
