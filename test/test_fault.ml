(* The fault model's own tests: plan validation, the injector's
   determinism contract (per-device streams, fixed draws, pins),
   retry/remap counters and spare exhaustion, the byte-identity of
   empty and armed-but-inert plans, the timing-neutral retry law, the
   exact-suffix semantics of torn writes, the torn-write recovery
   battery over every manager kind, and degraded load shedding. *)

open El_model
module FP = El_fault.Fault_plan
module Injector = El_fault.Injector
module Experiment = El_harness.Experiment
module Sweep = El_check.Sweep
module Recovery = El_recovery.Recovery
module Policy = El_core.Policy

let kind_of name = List.assoc name (Sweep.standard_kinds ())

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: invalid plan accepted" name
  | exception Invalid_argument _ -> ()

let test_plan_validation () =
  expect_invalid "rate above 1" (fun () ->
      FP.make
        ~log_spec:{ FP.clean_spec with FP.transient_rate = 1.5 }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "negative rate" (fun () ->
      FP.make
        ~log_spec:{ FP.clean_spec with FP.sticky_rate = -0.1 }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "zero burst" (fun () ->
      FP.make
        ~log_spec:{ FP.clean_spec with FP.transient_burst = 0 }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "negative pin" (fun () ->
      FP.make
        ~log_spec:{ FP.clean_spec with FP.pinned_torn = [ -3 ] }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "backwards window" (fun () ->
      FP.make
        ~log_spec:
          {
            FP.clean_spec with
            FP.latency =
              [
                {
                  FP.w_from = Time.of_sec 5;
                  w_until = Time.of_sec 1;
                  w_factor = 2.0;
                };
              ];
          }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "non-positive factor" (fun () ->
      FP.make
        ~log_spec:
          {
            FP.clean_spec with
            FP.latency =
              [
                {
                  FP.w_from = Time.zero;
                  w_until = Time.of_sec 1;
                  w_factor = 0.0;
                };
              ];
          }
        ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "negative spares" (fun () ->
      FP.make ~spares:(-1) ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "negative shed backlog" (fun () ->
      FP.make ~degraded:{ FP.shed_backlog = -1 } ~log_gens:1 ~flush_drives:0 ());
  expect_invalid "duplicate device" (fun () ->
      FP.validate
        {
          FP.empty with
          FP.specs =
            [ (FP.Log_gen 0, FP.clean_spec); (FP.Log_gen 0, FP.clean_spec) ];
        });
  (* the empty plan arms nothing; a plan of clean specs arms an inert
     injector *)
  Alcotest.(check bool) "empty is empty" true (FP.is_empty FP.empty);
  Alcotest.(check bool) "no injector for the empty plan" true
    (Injector.create FP.empty = None);
  Alcotest.(check bool) "inert plan still arms" true
    (Injector.create (FP.make ~log_gens:1 ~flush_drives:1 ()) <> None)

let storm_spec =
  {
    FP.clean_spec with
    FP.transient_rate = 0.3;
    transient_burst = 4;
    sticky_rate = 0.05;
    torn_rate = 0.4;
  }

let test_injector_determinism () =
  let plan =
    FP.make ~seed:9 ~spares:10_000 ~log_spec:storm_spec ~flush_spec:storm_spec
      ~log_gens:2 ~flush_drives:2 ()
  in
  let draw inj =
    let ds = Injector.log_gen inj 0 in
    List.init 300 (fun i -> Injector.next_op ds ~now:(Time.of_ms (i * 7)))
  in
  let a = draw (Option.get (Injector.create plan)) in
  let b = draw (Option.get (Injector.create plan)) in
  Alcotest.(check bool) "same plan, same stream" true (a = b);
  (* interleaving draws on other devices must not shift gen0's stream *)
  let inj = Option.get (Injector.create plan) in
  let g0 = Injector.log_gen inj 0 in
  let g1 = Injector.log_gen inj 1 in
  let d0 = Injector.flush_drive inj 0 in
  let c =
    List.init 300 (fun i ->
        ignore (Injector.next_op g1 ~now:(Time.of_ms i));
        ignore (Injector.next_op d0 ~now:(Time.of_ms i));
        Injector.next_op g0 ~now:(Time.of_ms (i * 7)))
  in
  Alcotest.(check bool) "device streams are independent" true (a = c);
  (* pins never shift the stream: the torn draws of a pinned plan
     match the unpinned plan's op for op *)
  let pinned =
    FP.make ~seed:9 ~spares:10_000
      ~log_spec:{ storm_spec with FP.pinned_transient = [ 10 ] }
      ~flush_spec:storm_spec ~log_gens:2 ~flush_drives:2 ()
  in
  let p = draw (Option.get (Injector.create pinned)) in
  Alcotest.(check bool) "pins do not shift the draws" true
    (List.map (fun r -> r.Injector.r_torn) a
    = List.map (fun r -> r.Injector.r_torn) p);
  Alcotest.(check bool) "pinned op retries" true
    ((List.nth p 10).Injector.r_retries > 0)

let test_sticky_pins_and_spares () =
  let spec = { FP.clean_spec with FP.pinned_sticky = [ 2; 5 ] } in
  let plan = FP.make ~seed:1 ~spares:8 ~log_spec:spec ~log_gens:1 ~flush_drives:0 () in
  let inj = Option.get (Injector.create plan) in
  let ds = Injector.log_gen inj 0 in
  let rs = List.init 8 (fun _ -> Injector.next_op ds ~now:Time.zero) in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d remapped iff pinned" i)
        (i = 2 || i = 5) r.Injector.r_remapped)
    rs;
  Alcotest.(check int) "device remaps" 2 (Injector.device_remaps ds);
  Alcotest.(check int) "injector remaps" 2 (Injector.remaps inj);
  Alcotest.(check int) "ops counted" 8 (Injector.device_ops ds);
  (* spare exhaustion is fatal, at the same op every time *)
  let tight =
    FP.make ~seed:1 ~spares:1
      ~log_spec:{ FP.clean_spec with FP.pinned_sticky = [ 0; 1 ] }
      ~log_gens:1 ~flush_drives:0 ()
  in
  let attempt () =
    let ds = Injector.log_gen (Option.get (Injector.create tight)) 0 in
    ignore (Injector.next_op ds ~now:Time.zero);
    match Injector.next_op ds ~now:Time.zero with
    | _ -> Alcotest.fail "expected Io_fatal once the spare is gone"
    | exception Injector.Io_fatal { op; _ } -> op
  in
  Alcotest.(check int) "fatal at op 1" 1 (attempt ());
  Alcotest.(check int) "fatal replays at op 1" 1 (attempt ())

(* Satellite regression: the empty plan and an armed-but-inert plan
   must both reproduce the fault-free paper-figure results to the
   byte, for every manager kind and for a scarce-log variant. *)
let test_empty_plan_byte_identity () =
  let configs =
    List.map
      (fun (name, kind) ->
        (name, Sweep.standard_config ~kind ~runtime:(Time.of_sec 8) ~seed:42 ()))
      (Sweep.standard_kinds ())
    @ [
        ( "el-scarce",
          {
            (Sweep.standard_config
               ~kind:
                 (Experiment.Ephemeral
                    (Policy.default ~generation_sizes:[| 20; 11 |]))
               ~runtime:(Time.of_sec 10) ~seed:7 ())
            with
            Experiment.flush_transfer = Time.of_ms 45;
          } );
      ]
  in
  List.iter
    (fun (name, cfg) ->
      let base = Marshal.to_string (Experiment.run cfg) [] in
      let armed =
        {
          cfg with
          Experiment.fault =
            FP.make ~seed:cfg.Experiment.seed ~log_gens:2 ~flush_drives:2 ();
        }
      in
      Alcotest.(check bool)
        (name ^ ": armed-but-inert plan is byte-identical")
        true
        (Marshal.to_string (Experiment.run armed) [] = base))
    configs

(* The retry/backoff law: under the default timing-neutral policy
   (zero penalty), a transient-fault plan with enough spares produces
   results byte-identical to the fault-free run — absorbing retries
   and remapping never perturbs the simulation. *)
let prop_retry_neutrality =
  QCheck.Test.make
    ~name:"timing-neutral retries leave the run byte-identical" ~count:6
    QCheck.(triple (int_bound 9_999) (oneofl [ 0.05; 0.3; 0.8 ]) (int_range 1 6))
    (fun (seed, rate, burst) ->
      let cfg =
        Sweep.standard_config ~kind:(kind_of "el") ~runtime:(Time.of_sec 6)
          ~seed ()
      in
      let base = Marshal.to_string (Experiment.run cfg) [] in
      let spec =
        {
          FP.clean_spec with
          FP.transient_rate = rate;
          transient_burst = burst;
        }
      in
      let faulted =
        {
          cfg with
          Experiment.fault =
            FP.make ~seed ~spares:1_000_000 ~log_spec:spec ~flush_spec:spec
              ~log_gens:2 ~flush_drives:2 ();
        }
      in
      let live = Experiment.prepare faulted in
      let r = live.Experiment.finish () in
      let inj = Option.get live.Experiment.fault in
      Marshal.to_string r [] = base
      && (rate < 0.3 || Injector.retries inj > 0))

(* ... and when the spares run out, the run dies deterministically:
   the same seed raises Io_fatal at the same op of the same device,
   or completes byte-identically, every time. *)
let prop_fatal_deterministic =
  QCheck.Test.make
    ~name:"spare exhaustion is deterministic per seed" ~count:6
    QCheck.(int_bound 9_999)
    (fun seed ->
      let cfg =
        Sweep.standard_config ~kind:(kind_of "el") ~runtime:(Time.of_sec 6)
          ~seed ()
      in
      let spec = { FP.clean_spec with FP.sticky_rate = 0.02 } in
      let faulted =
        {
          cfg with
          Experiment.fault =
            FP.make ~seed ~spares:0 ~log_spec:spec ~flush_spec:spec
              ~log_gens:2 ~flush_drives:2 ();
        }
      in
      let attempt () =
        match Experiment.run faulted with
        | r -> Ok (Marshal.to_string r [])
        | exception Injector.Io_fatal { device; op; reason } ->
          Error (device, op, reason)
      in
      attempt () = attempt ())

(* Torn recovery is exactly suffix removal: recovering an image whose
   block has a corrupted tail equals recovering the image with that
   tail cut off, and the discard counters report the tail's size. *)
let test_torn_exact_suffix () =
  let cfg =
    Sweep.standard_config ~kind:(kind_of "el") ~runtime:(Time.of_sec 20)
      ~seed:42 ()
  in
  let live = Experiment.prepare cfg in
  El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec 15);
  let image =
    Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
  in
  let rec pick = function
    | [] -> None
    | b :: rest -> if List.length b >= 2 then Some b else pick rest
  in
  match pick image.Recovery.blocks with
  | None -> Alcotest.fail "no multi-record block in a 15 s image"
  | Some b ->
    let n = List.length b in
    let k = n / 2 in
    let torn_block =
      List.mapi
        (fun i (s : Recovery.sealed) ->
          if i < k then s else Recovery.corrupt_seal s.Recovery.payload)
        b
    in
    let torn =
      {
        image with
        Recovery.blocks =
          List.map
            (fun bl -> if bl == b then torn_block else bl)
            image.Recovery.blocks;
      }
    in
    let truncated =
      {
        image with
        Recovery.blocks =
          List.map
            (fun bl ->
              if bl == b then List.filteri (fun i _ -> i < k) bl else bl)
            image.Recovery.blocks;
      }
    in
    let rt = Recovery.recover torn in
    let rs = Recovery.recover truncated in
    Alcotest.(check bool) "same recovered database" true
      (El_disk.Stable_db.equal rt.Recovery.recovered rs.Recovery.recovered);
    let tids (r : Recovery.result) =
      List.sort Ids.Tid.compare r.Recovery.committed_tids
    in
    Alcotest.(check bool) "same committed set" true (tids rt = tids rs);
    Alcotest.(check int) "same scan size" rs.Recovery.records_scanned
      rt.Recovery.records_scanned;
    Alcotest.(check int) "one torn block" 1 rt.Recovery.torn_blocks;
    Alcotest.(check int) "exact suffix discarded" (n - k)
      rt.Recovery.torn_records;
    Alcotest.(check int) "truncated image is not torn" 0
      rs.Recovery.torn_blocks

(* The torn-write battery: 3 seeds x every manager kind under a torn
   storm on the log channels; the sweep crash-recovers and audits at
   every pause, so a single mis-discarded record would surface.  The
   EL sweeps must actually exercise torn tails. *)
let test_torn_battery () =
  let torn_spec = { FP.clean_spec with FP.torn_rate = 0.8 } in
  let el_torn = ref 0 in
  List.iter
    (fun (name, kind) ->
      List.iter
        (fun seed ->
          let cfg =
            {
              (Sweep.standard_config ~kind ~runtime:(Time.of_sec 12) ~seed ())
              with
              Experiment.fault =
                FP.make ~seed ~log_spec:torn_spec ~log_gens:2 ~flush_drives:2
                  ();
            }
          in
          let o = Sweep.run ~stride:60 cfg in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d: no audit failures" name seed)
            ""
            (String.concat "; " (List.map snd o.Sweep.failures));
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: ran to completion" name seed)
            false
            (o.Sweep.overloaded || o.Sweep.faulted);
          if name = "el" then el_torn := !el_torn + o.Sweep.torn_blocks)
        [ 1; 2; 3 ])
    (Sweep.standard_kinds ());
  Alcotest.(check bool) "torn tails actually exercised" true (!el_torn > 0)

(* The spec-vs-torn battery: the same torn storm, but every run is
   additionally replayed against the durable-log state machine.  Torn
   prefixes are exactly where the spec's may_survive clause earns its
   keep — a COMMIT record can persist inside a torn prefix without its
   ack ever firing, and the recovered image must agree with the spec's
   durable promises anyway. *)
let test_spec_torn_battery () =
  let torn_spec = { FP.clean_spec with FP.torn_rate = 0.8 } in
  let spec_checks = ref 0 in
  List.iter
    (fun (name, kind) ->
      List.iter
        (fun seed ->
          let cfg =
            {
              (Sweep.standard_config ~kind ~runtime:(Time.of_sec 12) ~seed ())
              with
              Experiment.fault =
                FP.make ~seed ~log_spec:torn_spec ~log_gens:2 ~flush_drives:2
                  ();
            }
          in
          let o = Sweep.run ~stride:60 ~spec:true cfg in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d: no spec or audit failures" name seed)
            ""
            (String.concat "; " (List.map snd o.Sweep.failures));
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: ran to completion" name seed)
            false
            (o.Sweep.overloaded || o.Sweep.faulted);
          spec_checks := !spec_checks + o.Sweep.spec_checks)
        [ 1; 2; 3 ])
    (Sweep.standard_kinds ());
  Alcotest.(check bool) "spec checks actually performed" true (!spec_checks > 0)

(* Degraded mode: a flush-drive latency storm builds backlog past the
   threshold and arriving transactions are shed; without the plan the
   same run sheds nothing. *)
let test_degraded_shedding () =
  let cfg =
    Sweep.standard_config ~kind:(kind_of "el") ~runtime:(Time.of_sec 12)
      ~seed:5 ()
  in
  let base = Experiment.run cfg in
  Alcotest.(check int) "fault-free run kills nothing" 0 base.Experiment.killed;
  let storm =
    {
      FP.clean_spec with
      FP.latency =
        [
          { FP.w_from = Time.of_sec 2; w_until = Time.of_sec 10; w_factor = 8.0 };
        ];
    }
  in
  let degraded =
    {
      cfg with
      Experiment.fault =
        FP.make ~seed:5
          ~degraded:{ FP.shed_backlog = 6 }
          ~flush_spec:storm ~log_gens:2 ~flush_drives:2 ();
    }
  in
  let live = Experiment.prepare degraded in
  let r = live.Experiment.finish () in
  let sheds = Injector.sheds (Option.get live.Experiment.fault) in
  Alcotest.(check bool) "storm sheds load" true (sheds > 0);
  Alcotest.(check bool) "sheds are counted as kills" true
    (r.Experiment.killed >= sheds)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "injector streams are deterministic and independent"
      `Quick test_injector_determinism;
    Alcotest.test_case "sticky pins, remap counters, spare exhaustion" `Quick
      test_sticky_pins_and_spares;
    Alcotest.test_case "empty and inert plans are byte-identical" `Quick
      test_empty_plan_byte_identity;
    QCheck_alcotest.to_alcotest prop_retry_neutrality;
    QCheck_alcotest.to_alcotest prop_fatal_deterministic;
    Alcotest.test_case "torn recovery is exact suffix removal" `Quick
      test_torn_exact_suffix;
    Alcotest.test_case "torn-write battery: 3 seeds x all kinds" `Slow
      test_torn_battery;
    Alcotest.test_case "spec-vs-torn battery: 3 seeds x all kinds" `Slow
      test_spec_torn_battery;
    Alcotest.test_case "degraded mode sheds under a latency storm" `Quick
      test_degraded_shedding;
  ]
