(* The parallel sweep runner's tests: Pool.map laws (submission-order
   results, exception propagation after the batch drains, jobs = 1 =
   List.map), and the differential harness proving serial ≡ parallel
   for whole experiments, min-space searches and crash-point sweeps —
   parallelism must never change a result, mask a violation or
   reorder a finding. *)

open El_model
module Pool = El_par.Pool
module Experiment = El_harness.Experiment
module Min_space = El_harness.Min_space
module Paper = El_harness.Paper
module Policy = El_core.Policy
module Sweep = El_check.Sweep
module J = El_obs.Jsonx

(* One shared 4-worker pool for the whole suite: creating it lazily
   keeps `alcotest test par -q`-style filtered runs domain-free, and
   reusing it across tests also exercises batch-after-batch reuse. *)
let pool4 = lazy (Pool.create ~jobs:4)
let pool () = Lazy.force pool4
let () = at_exit (fun () -> if Lazy.is_val pool4 then Pool.shutdown (pool ()))

(* ---- Pool.map laws ---- *)

(* Deterministic busy-work whose duration varies per job, so workers
   finish out of submission order and the order-restoring collection
   actually gets exercised. *)
let burn cost =
  let acc = ref 0 in
  for i = 1 to cost do
    acc := ((!acc * 31) + i) land 0xffff
  done;
  !acc

let prop_map_is_list_map =
  QCheck.Test.make
    ~name:"Pool.map = List.map: submission order at jobs 4, oracle at jobs 1"
    ~count:25
    QCheck.(pair (int_range 0 200) (int_range 0 1000))
    (fun (n, salt) ->
      (* shuffled artificial costs: neighbours differ wildly *)
      let items = List.init n (fun i -> (i, salt * (i + 7) mod 997 * 50)) in
      let f (i, cost) = (i, burn cost) in
      let oracle = List.map f items in
      Pool.map (pool ()) f items = oracle
      && Pool.with_pool ~jobs:1 (fun p -> Pool.map p f items) = oracle)

exception Boom of int

let test_map_exception_after_drain () =
  let p = pool () in
  let ran = Array.make 50 false in
  (try
     ignore
       (Pool.map p
          (fun i ->
            if i = 17 then raise (Boom i);
            ran.(i) <- true;
            i)
          (List.init 50 Fun.id));
     Alcotest.fail "expected Boom 17 to propagate"
   with Boom 17 -> ());
  (* the batch drained before the re-raise: every other job ran *)
  Alcotest.(check int) "all 49 non-raising jobs completed" 49
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 ran);
  (* and the pool is still usable afterwards *)
  Alcotest.(check (list int))
    "pool survives a raising batch" [ 0; 1; 2; 3 ]
    (Pool.map p Fun.id [ 0; 1; 2; 3 ])

let test_map_reduce_order () =
  (* a non-commutative reduction: order-sensitive, so it proves the
     fold sees pool results in submission order *)
  let items = List.init 40 string_of_int in
  let serial = String.concat "," items in
  Alcotest.(check string) "map_reduce folds in submission order" serial
    (Pool.map_reduce (pool ())
       ~map:(fun s ->
         ignore (burn (String.length s * 997));
         s)
       ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
       ~init:"" items)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* ---- differential determinism: experiments ---- *)

(* The el-bench/1-style fragment a bench section would emit for one
   run; compared byte-for-byte between serial and parallel replays. *)
let result_json (r : Experiment.result) =
  J.to_string
    (J.Obj
       [
         ("committed", J.Int r.Experiment.committed);
         ("killed", J.Int r.Experiment.killed);
         ("log_writes_total", J.Int r.Experiment.log_writes_total);
         ("log_write_rate", J.Float r.Experiment.log_write_rate);
         ("peak_memory_bytes", J.Int r.Experiment.peak_memory_bytes);
         ("updates_per_sec", J.Float r.Experiment.updates_per_sec);
         ("commit_latency_mean", J.Float r.Experiment.commit_latency_mean);
         ("feasible", J.Bool r.Experiment.feasible);
       ])

let test_experiments_serial_equals_parallel () =
  let configs =
    List.concat_map
      (fun (_, kind) ->
        List.map
          (fun seed ->
            Sweep.standard_config ~kind ~runtime:(Time.of_sec 6) ~seed ())
          [ 1; 42; 1234 ])
      (Sweep.standard_kinds ())
  in
  let serial = List.map Experiment.run configs in
  let parallel = Pool.map (pool ()) Experiment.run configs in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d: Marshal byte-identical" i)
        true
        (Marshal.to_string a [] = Marshal.to_string b []);
      Alcotest.(check string)
        (Printf.sprintf "run %d: el-bench JSON fragment identical" i)
        (result_json a) (result_json b))
    (List.combine serial parallel)

(* ---- crash-sweep equivalence ---- *)

let check_same_outcome name (a : Sweep.outcome) (b : Sweep.outcome) =
  let l fmt = Printf.sprintf ("%s: " ^^ fmt) name in
  Alcotest.(check (list (pair int string)))
    (l "same (event-index, violation) set")
    a.Sweep.failures b.Sweep.failures;
  Alcotest.(check int) (l "same events") a.Sweep.events b.Sweep.events;
  Alcotest.(check int) (l "same pauses") a.Sweep.points b.Sweep.points;
  Alcotest.(check int) (l "same recoveries") a.Sweep.recoveries b.Sweep.recoveries;
  Alcotest.(check int) (l "same committed") a.Sweep.committed b.Sweep.committed;
  Alcotest.(check int) (l "same killed") a.Sweep.killed b.Sweep.killed;
  Alcotest.(check bool) (l "same overload") a.Sweep.overloaded b.Sweep.overloaded;
  Alcotest.(check int)
    (l "same max scan")
    a.Sweep.max_records_scanned b.Sweep.max_records_scanned

let test_sweep_serial_equals_parallel () =
  List.iter
    (fun (name, kind) ->
      let cfg =
        Sweep.standard_config ~kind ~runtime:(Time.of_sec 10) ~seed:7 ()
      in
      let serial = Sweep.run ~stride:50 cfg in
      let parallel = Sweep.run ~pool:(pool ()) ~stride:50 cfg in
      check_same_outcome name serial parallel;
      Alcotest.(check bool)
        (name ^ ": sweep saw pauses")
        true
        (serial.Sweep.points > 10))
    (Sweep.standard_kinds ())

(* A sweep that ends in disaster: a starved two-block-over-gap EL
   chain with recirculation off overloads under load.  The parallel
   sweep must report the exact same failure at the exact same event —
   parallelism can never mask a violation. *)
let test_sweep_failure_not_masked () =
  let policy =
    {
      (Policy.default ~generation_sizes:[| 3; 3 |]) with
      Policy.recirculate = false;
    }
  in
  let cfg =
    Sweep.standard_config
      ~kind:(Experiment.Ephemeral policy)
      ~runtime:(Time.of_sec 10) ~rate:80.0 ~seed:11 ()
  in
  let serial = Sweep.run ~stride:50 cfg in
  let parallel = Sweep.run ~pool:(pool ()) ~stride:50 cfg in
  check_same_outcome "starved el" serial parallel;
  Alcotest.(check bool)
    "the config actually misbehaves (overload or kills)" true
    (serial.Sweep.overloaded || serial.Sweep.killed > 0
    || serial.Sweep.failures <> [])

(* ---- min-space: bracket mode ≡ binary search ---- *)

(* Pure search-logic equivalence on synthetic monotone probes: for
   every threshold the bracket mode must land exactly where the
   binary search does, with the same probe result. *)
let fake_probe_cfg =
  lazy
    {
      (Experiment.default_config ~kind:(Experiment.Firewall 8)
         ~mix:(El_workload.Mix.short_long ~long_fraction:0.05)) with
      Experiment.runtime = Time.of_ms 1;
    }

let fake_result ~feasible =
  let r = Experiment.run (Lazy.force fake_probe_cfg) in
  { r with Experiment.feasible }

let prop_bracket_equals_binary =
  QCheck.Test.make ~name:"bracket search = binary search (synthetic probes)"
    ~count:40
    QCheck.(pair (int_range 4 80) (int_range 0 90))
    (fun (lo, extra) ->
      let hi = lo + extra in
      let threshold = lo + (extra * 3 / 4) in
      let probe n = fake_result ~feasible:(n >= threshold) in
      let serial = Min_space.min_feasible ~lo ~hi probe in
      let bracket = Min_space.min_feasible ~pool:(pool ()) ~lo ~hi probe in
      match (serial, bracket) with
      | Some (a, _), Some (b, _) -> a = b && a = threshold
      | None, None -> true
      | _ -> false)

(* The regression the satellite pins: on the Figure 4 mix endpoints
   (5% and 40% long transactions, shortened runs), the speculative
   bracket returns the same minimum block count as the serial binary
   search — for the EL last-generation search and the FW baseline. *)
let test_bracket_matches_binary_on_fig4_endpoints () =
  (* A recirculating chain with a small fixed first generation stays
     feasible across the whole mix range (4+10 at 5%% long, 4+39 at
     40%%), so both endpoints exercise a real boundary search. *)
  let make_policy sizes = Policy.default ~generation_sizes:sizes in
  List.iter
    (fun long_pct ->
      let cfg =
        Min_space.runtime_scale
          (Paper.base_config ~kind:(Experiment.Firewall 512) ~long_pct ())
          (Time.of_sec 30)
      in
      (match
         ( Min_space.min_el_last_gen cfg ~make_policy ~leading:[| 4 |] ~hi:256,
           Min_space.min_el_last_gen ~pool:(pool ()) cfg ~make_policy
             ~leading:[| 4 |] ~hi:256 )
       with
      | Some (serial_g1, serial_r), Some (bracket_g1, bracket_r) ->
        Alcotest.(check int)
          (Printf.sprintf "%d%% mix: same EL last-gen minimum" long_pct)
          serial_g1 bracket_g1;
        Alcotest.(check bool)
          (Printf.sprintf "%d%% mix: same probe result at the minimum" long_pct)
          true
          (Marshal.to_string serial_r [] = Marshal.to_string bracket_r [])
      | None, None ->
        Alcotest.fail
          (Printf.sprintf "%d%% mix: no feasible last generation" long_pct)
      | _ ->
        Alcotest.fail
          (Printf.sprintf "%d%% mix: serial and bracket disagree on feasibility"
             long_pct));
      let serial_fw, _ = Min_space.min_fw cfg in
      let bracket_fw, _ = Min_space.min_fw ~pool:(pool ()) cfg in
      Alcotest.(check int)
        (Printf.sprintf "%d%% mix: same FW minimum" long_pct)
        serial_fw bracket_fw)
    [ 5; 40 ]

(* ---- sharded sweep equivalence ---- *)

(* The sharded composite oracle under the pool: a jobs-4 sweep at
   shards in {2, 4} must produce the whole outcome — including the
   cross-shard counters and atomic-commit checks — byte-identical to
   the serial sweep's. *)
let test_sharded_sweep_serial_equals_parallel () =
  let kind = List.assoc "el" (Sweep.standard_kinds ()) in
  List.iter
    (fun shards ->
      let cfg =
        {
          (Sweep.standard_config ~kind ~runtime:(Time.of_sec 12) ~seed:7 ())
          with
          Experiment.shards;
        }
      in
      let serial = Sweep.run ~stride:50 ~spec:true cfg in
      let parallel = Sweep.run ~pool:(pool ()) ~stride:50 ~spec:true cfg in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards: outcome Marshal byte-identical" shards)
        true
        (Marshal.to_string serial [] = Marshal.to_string parallel []);
      Alcotest.(check bool)
        (Printf.sprintf "%d shards: sweep saw pauses" shards)
        true
        (serial.Sweep.points > 10);
      Alcotest.(check bool)
        (Printf.sprintf "%d shards: atomic checks ran" shards)
        true
        (serial.Sweep.atomic_checks > 0))
    [ 2; 4 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_is_list_map;
    Alcotest.test_case "exception propagates after the batch drains" `Quick
      test_map_exception_after_drain;
    Alcotest.test_case "map_reduce folds in submission order" `Quick
      test_map_reduce_order;
    Alcotest.test_case "create rejects jobs = 0" `Quick
      test_create_rejects_zero_jobs;
    Alcotest.test_case
      "3 seeds x {EL,FW,Hybrid}: serial = parallel (Marshal + JSON)" `Quick
      test_experiments_serial_equals_parallel;
    Alcotest.test_case "crash sweep: --jobs 4 = serial on all kinds" `Quick
      test_sweep_serial_equals_parallel;
    Alcotest.test_case "crash sweep: parallelism cannot mask a failure" `Quick
      test_sweep_failure_not_masked;
    Alcotest.test_case "sharded sweep: --jobs 4 = serial at 2 and 4 shards"
      `Quick test_sharded_sweep_serial_equals_parallel;
    QCheck_alcotest.to_alcotest prop_bracket_equals_binary;
    Alcotest.test_case "bracket = binary search on Fig. 4 endpoints (30s runs)"
      `Slow test_bracket_matches_binary_on_fig4_endpoints;
  ]
