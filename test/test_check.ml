(* The model-checking subsystem's own tests: the crash-point sweep
   over every manager kind, determinism of the sweep itself, the
   differential oracle under randomised workloads, and a negative test
   proving the recovery auditor actually catches corruption. *)

open El_model
module Engine = El_sim.Engine
module Experiment = El_harness.Experiment
module Recovery = El_recovery.Recovery
module Sweep = El_check.Sweep
module Auditor = El_check.Auditor
module Reference = El_check.Reference

let pp_failures fs =
  String.concat "; "
    (List.map (fun (at, msg) -> Printf.sprintf "[event %d] %s" at msg) fs)

let check_clean ?(min_points = 100) (o : Sweep.outcome) =
  let label fmt = Printf.sprintf ("%s seed %d: " ^^ fmt) o.Sweep.kind o.Sweep.seed in
  Alcotest.(check string)
    (label "no audit failures")
    "" (pp_failures o.Sweep.failures);
  Alcotest.(check bool) (label "not overloaded") false o.Sweep.overloaded;
  Alcotest.(check bool)
    (label "at least %d pause points (got %d)" min_points o.Sweep.points)
    true
    (o.Sweep.points >= min_points);
  Alcotest.(check bool)
    (label "made progress (%d committed)" o.Sweep.committed)
    true (o.Sweep.committed > 0)

(* The acceptance bar: >= 3 seeds x >= 100 crash points per manager
   kind, zero audit failures.  Stride 25 over a 20 s / 40 TPS run
   dispatches well over 3000 events, so every kind clears 100 pauses. *)
let sweep_kind name () =
  let kind = List.assoc name (Sweep.standard_kinds ()) in
  List.iter
    (fun seed ->
      let cfg = Sweep.standard_config ~kind ~seed () in
      let o = Sweep.run ~stride:25 cfg in
      check_clean o;
      if name = "el" then
        Alcotest.(check bool)
          (Printf.sprintf "el seed %d: recovered at every pause" seed)
          true
          (o.Sweep.recoveries >= 100 && o.Sweep.max_records_scanned > 0))
    [ 1; 42; 1234 ]

let test_sweep_el () = sweep_kind "el" ()
let test_sweep_fw () = sweep_kind "fw" ()
let test_sweep_hybrid () = sweep_kind "hybrid" ()

let test_sweep_deterministic () =
  let kind = List.assoc "el" (Sweep.standard_kinds ()) in
  let once () = Sweep.run ~stride:50 (Sweep.standard_config ~kind ~seed:7 ()) in
  let a = once () and b = once () in
  Alcotest.(check (list (pair int string))) "same failures" a.Sweep.failures
    b.Sweep.failures;
  Alcotest.(check int) "same events" a.Sweep.events b.Sweep.events;
  Alcotest.(check int) "same pauses" a.Sweep.points b.Sweep.points;
  Alcotest.(check int) "same commits" a.Sweep.committed b.Sweep.committed;
  Alcotest.(check int) "same max scan" a.Sweep.max_records_scanned
    b.Sweep.max_records_scanned

(* Aborts and kills exercise the disposal cascades; recirculation off
   plus a tight log forces kills.  The auditor must stay silent. *)
let test_sweep_aborts_and_kills () =
  let policy =
    {
      (El_core.Policy.default ~generation_sizes:[| 6; 6 |]) with
      El_core.Policy.recirculate = false;
    }
  in
  let cfg =
    Sweep.standard_config
      ~kind:(Experiment.Ephemeral policy)
      ~seed:3 ~abort_fraction:0.2 ()
  in
  let o = Sweep.run ~stride:40 cfg in
  check_clean ~min_points:50 o

(* The DESIGN §11 regression: a 45 ms flush transfer under 40 TPS
   saturates the two database drives (44 flushes/s of capacity against
   ~88 committed writes/s), so records reach generation heads with
   their flushes still in flight and the Force_flush policy forces one
   at every head.  Sweeping crash points through such a run crashes
   mid-forced-flush over and over; every recovered image must still
   hold every acked commit, and the spec oracle replays the whole run.
   Before forced flushes pinned their records until completion this
   exact configuration lost acked data — the reason the old tests kept
   flush_transfer at 20 ms. *)
let scarce_45ms_config ?(eager = false) ~seed () =
  let policy =
    {
      (El_core.Policy.default ~generation_sizes:[| 20; 11 |]) with
      El_core.Policy.unflushed = El_core.Policy.Force_flush;
      unsafe_eager_dispose = eager;
    }
  in
  {
    (Sweep.standard_config
       ~kind:(Experiment.Ephemeral policy)
       ~runtime:(Time.of_sec 10) ~seed ())
    with
    Experiment.flush_transfer = Time.of_ms 45;
  }

let test_sweep_mid_forced_flush () =
  let cfg = scarce_45ms_config ~seed:7 () in
  let r = Experiment.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "forced flushes exercised (%d)" r.Experiment.forced_flushes)
    true
    (r.Experiment.forced_flushes > 0);
  let o = Sweep.run ~stride:25 ~spec:true cfg in
  check_clean ~min_points:50 o;
  Alcotest.(check bool) "recovered at every pause" true
    (o.Sweep.recoveries >= 50);
  Alcotest.(check bool)
    (Printf.sprintf "spec checks performed (%d)" o.Sweep.spec_checks)
    true
    (o.Sweep.spec_checks > o.Sweep.points)

(* The acceptance sweep: all three manager kinds at flush_transfer =
   45 ms, each against the spec oracle.  The arrival rate is scaled to
   16 TPS so the halved flush capacity stays sufficient (the managers
   must be feasible, not saturated, for FW and hybrid to finish
   clean). *)
let test_sweep_45ms_all_kinds () =
  List.iter
    (fun (name, kind) ->
      let cfg =
        {
          (Sweep.standard_config ~kind ~rate:16.0 ~seed:42 ()) with
          Experiment.flush_transfer = Time.of_ms 45;
        }
      in
      let o = Sweep.run ~stride:25 ~spec:true cfg in
      check_clean ~min_points:50 o;
      Alcotest.(check bool)
        (Printf.sprintf "%s: spec checks performed" name)
        true
        (o.Sweep.spec_checks > 0))
    (Sweep.standard_kinds ())

(* Negative: re-introduce the early dispose (the pre-fix behaviour,
   kept behind Policy.unsafe_eager_dispose) and the same sweep must
   diverge from the spec — a crash landing inside a forced flush's
   transfer window finds the record gone from the log and not yet in
   the stable database.  This pins that the spec oracle actually has
   teeth: the hazard cannot be silently re-introduced. *)
let test_eager_dispose_caught_by_spec () =
  let cfg = scarce_45ms_config ~eager:true ~seed:7 () in
  let o = Sweep.run ~stride:25 ~spec:true cfg in
  Alcotest.(check bool) "divergences found" true (o.Sweep.failures <> []);
  let is_spec (_, msg) = Astring_like.contains msg "spec:" in
  Alcotest.(check bool)
    "at least one divergence is a spec-oracle finding" true
    (List.exists is_spec o.Sweep.failures)

(* Differential oracle under randomised run parameters: seeds, abort
   fractions, arrival burstiness, and both flushing manager kinds. *)
let prop_sweep_random =
  QCheck.Test.make ~name:"random sweeps stay clean (differential oracle)"
    ~count:8
    QCheck.(
      quad (int_range 0 9_999)
        (oneofl [ 0.0; 0.1; 0.3 ])
        bool
        (oneofl [ "el"; "hybrid"; "fw" ]))
    (fun (seed, abort_fraction, poisson, kind_name) ->
      let kind = List.assoc kind_name (Sweep.standard_kinds ()) in
      let arrival_process =
        if poisson then El_workload.Generator.Poisson
        else El_workload.Generator.Deterministic
      in
      let cfg =
        Sweep.standard_config ~kind ~runtime:(Time.of_sec 8) ~seed
          ~abort_fraction ~arrival_process ()
      in
      let o = Sweep.run ~stride:200 cfg in
      if o.Sweep.failures <> [] then
        QCheck.Test.fail_reportf "%s seed %d: %s" kind_name seed
          (pp_failures o.Sweep.failures);
      not o.Sweep.overloaded)

(* Negative test: the recovery auditor must catch a semantically
   corrupted image.  We take a genuine crash image, bump the version
   of one durably committed data record and RE-SEAL it — the checksum
   validates, the content lies — and expect the audit to fail: the
   recovered database now holds a version nobody committed.  This
   pins down that the differential audit catches what the CRC layer
   cannot. *)
let test_corrupted_image_caught () =
  let kind = List.assoc "el" (Sweep.standard_kinds ()) in
  let cfg = Sweep.standard_config ~kind ~seed:42 () in
  let live = Experiment.prepare cfg in
  Engine.run live.Experiment.engine ~until:(Time.of_sec 15);
  let image =
    Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
  in
  let sane = Recovery.recover image in
  Alcotest.(check bool) "pristine image audits ok" true
    (Recovery.audit image sane).Recovery.ok;
  let payloads =
    List.concat_map
      (List.map (fun (s : Recovery.sealed) -> s.Recovery.payload))
      image.Recovery.blocks
  in
  (* Find a durable data record carrying the newest committed version
     of its object, written by a transaction whose COMMIT record is
     itself still in the scan (a record whose commit evidence has been
     overwritten is ignored by redo, so corrupting it proves nothing).
     That is the corruption target. *)
  let scanned_commits = Hashtbl.create 256 in
  List.iter
    (fun (r : Log_record.t) ->
      match r.Log_record.kind with
      | Log_record.Commit ->
        Hashtbl.replace scanned_commits (Ids.Tid.to_int r.Log_record.tid) ()
      | _ -> ())
    payloads;
  let is_target (r : Log_record.t) =
    match r.Log_record.kind with
    | Log_record.Data { oid; version } ->
      Hashtbl.mem scanned_commits (Ids.Tid.to_int r.Log_record.tid)
      && List.exists
           (fun (o, v) -> Ids.Oid.equal o oid && v = version)
           image.Recovery.reference
    | _ -> false
  in
  (match List.find_opt is_target payloads with
  | None -> Alcotest.fail "no committed data record in a 15 s image"
  | Some victim ->
    let corrupt (s : Recovery.sealed) =
      if s.Recovery.payload == victim then
        match victim.Log_record.kind with
        | Log_record.Data { oid; version } ->
          Recovery.seal
            {
              victim with
              Log_record.kind =
                Log_record.Data { oid; version = version + 1000 };
            }
        | _ -> assert false
      else s
    in
    let corrupted =
      {
        image with
        Recovery.blocks = List.map (List.map corrupt) image.Recovery.blocks;
      }
    in
    let r = Recovery.recover corrupted in
    let audit = Recovery.audit corrupted r in
    Alcotest.(check bool) "corruption detected" false audit.Recovery.ok;
    Alcotest.(check bool) "spurious version reported" true
      (audit.Recovery.spurious <> []))

(* Torn-checksum negative: invalidate the stamps on every durable copy
   of a committed-but-unflushed version.  Prefix validation must
   discard those records (and everything behind them in their blocks),
   recovery counts the discarded tails, and the audit reports the
   version missing — durability violations cannot hide behind the
   checksum layer.  The flush array is starved so such a version
   exists: once a version is flushed, the stable database alone can
   serve it and the log copies are expendable.  The 30 ms transfer
   does the starving (2 drives cannot keep up with 40 TPS); the
   generations are sized so the pinned backlog stays in the log —
   before forced flushes pinned their records, this config silently
   lost acked data, which is why the transfer used to be capped at
   20 ms. *)
let test_torn_checksum_caught () =
  let kind =
    Experiment.Ephemeral (El_core.Policy.default ~generation_sizes:[| 12; 24 |])
  in
  let cfg =
    {
      (Sweep.standard_config ~kind ~seed:11 ()) with
      Experiment.flush_transfer = Time.of_ms 30;
    }
  in
  let live = Experiment.prepare cfg in
  Engine.run live.Experiment.engine ~until:(Time.of_sec 15);
  let image =
    Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
  in
  Alcotest.(check bool) "pristine image audits ok" true
    (Recovery.audit image (Recovery.recover image)).Recovery.ok;
  let payloads =
    List.concat_map
      (List.map (fun (s : Recovery.sealed) -> s.Recovery.payload))
      image.Recovery.blocks
  in
  let has_copy (oid, v) (r : Log_record.t) =
    match r.Log_record.kind with
    | Log_record.Data { oid = o; version = w } -> Ids.Oid.equal o oid && w = v
    | _ -> false
  in
  let target =
    List.find_opt
      (fun (oid, v) ->
        El_disk.Stable_db.version image.Recovery.stable oid <> Some v
        && List.exists (has_copy (oid, v)) payloads)
      image.Recovery.reference
  in
  match target with
  | None -> Alcotest.fail "no unflushed committed version in a 15 s image"
  | Some (oid, version) ->
    let hits = ref 0 in
    let corrupt (s : Recovery.sealed) =
      match s.Recovery.payload.Log_record.kind with
      | Log_record.Data { oid = o; version = v }
        when Ids.Oid.equal o oid && v = version ->
        incr hits;
        Recovery.corrupt_seal s.Recovery.payload
      | _ -> s
    in
    let corrupted =
      {
        image with
        Recovery.blocks = List.map (List.map corrupt) image.Recovery.blocks;
      }
    in
    Alcotest.(check bool) "found a durable copy to corrupt" true (!hits > 0);
    let r = Recovery.recover corrupted in
    Alcotest.(check bool) "discarded tails counted" true
      (r.Recovery.torn_blocks > 0 && r.Recovery.torn_records > 0);
    let audit = Recovery.audit corrupted r in
    Alcotest.(check bool) "lost durability detected" false audit.Recovery.ok;
    Alcotest.(check bool) "version reported missing" true
      (audit.Recovery.missing <> [])

(* The auditor also runs standalone against a healthy mid-flight
   manager of each kind. *)
let test_auditor_standalone () =
  List.iter
    (fun (_, kind) ->
      let cfg = Sweep.standard_config ~kind ~seed:5 () in
      let live = Experiment.prepare cfg in
      Engine.run live.Experiment.engine ~until:(Time.of_sec 10);
      Auditor.audit_live live)
    (Sweep.standard_kinds ())

let suite =
  [
    Alcotest.test_case "crash sweep: EL, 3 seeds x 100+ points" `Slow
      test_sweep_el;
    Alcotest.test_case "crash sweep: FW, 3 seeds x 100+ points" `Slow
      test_sweep_fw;
    Alcotest.test_case "crash sweep: hybrid, 3 seeds x 100+ points" `Slow
      test_sweep_hybrid;
    Alcotest.test_case "sweep is deterministic" `Quick test_sweep_deterministic;
    Alcotest.test_case "sweep with aborts and kills" `Quick
      test_sweep_aborts_and_kills;
    Alcotest.test_case "crash mid-forced-flush at 45 ms stays durable" `Quick
      test_sweep_mid_forced_flush;
    Alcotest.test_case "45 ms sweep: all kinds pass the spec oracle" `Slow
      test_sweep_45ms_all_kinds;
    Alcotest.test_case "eager dispose diverges from the spec" `Quick
      test_eager_dispose_caught_by_spec;
    QCheck_alcotest.to_alcotest prop_sweep_random;
    Alcotest.test_case "corrupted image is caught" `Quick
      test_corrupted_image_caught;
    Alcotest.test_case "torn checksums are caught" `Quick
      test_torn_checksum_caught;
    Alcotest.test_case "auditor runs standalone on all kinds" `Quick
      test_auditor_standalone;
  ]
