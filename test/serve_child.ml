(* Child process for the serve crash tests: speaks the el-sim serve
   line protocol over stdin/stdout against the image given in argv.
   A separate executable because the test runner spawns domains
   (lib/par), after which Unix.fork is unavailable — the tests
   create_process this instead. *)

let () =
  let image = Sys.argv.(1) in
  let flag name =
    Array.exists (fun a -> a = name)
      (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
  in
  let fresh = flag "--fresh" in
  let group_fsync = flag "--group-fsync" in
  let t =
    El_serve.Serve.start
      {
        (El_serve.Serve.default_config ~image) with
        El_serve.Serve.fresh;
        num_objects = 1_000;
        group_fsync;
      }
  in
  El_serve.Serve.serve_channel t stdin stdout;
  El_serve.Serve.close t
