open El_model
module Experiment = El_harness.Experiment
module Min_space = El_harness.Min_space
module Policy = El_core.Policy
module Mix = El_workload.Mix

(* A synthetic result for exercising the search logic without
   simulations. *)
let fake_result ~feasible =
  let probe_cfg =
    Experiment.default_config ~kind:(Experiment.Firewall 8)
      ~mix:(Mix.short_long ~long_fraction:0.05)
  in
  let cfg = { probe_cfg with Experiment.runtime = Time.of_ms 1 } in
  let r = Experiment.run cfg in
  (* runtime 1 ms: nothing happened; doctor the feasibility flag *)
  { r with Experiment.feasible }

let test_binary_search_logic () =
  let calls = ref [] in
  let threshold = 37 in
  let probe n =
    calls := n :: !calls;
    fake_result ~feasible:(n >= threshold)
  in
  (match Min_space.min_feasible ~lo:4 ~hi:128 probe with
  | Some (n, r) ->
    Alcotest.(check int) "finds the threshold" threshold n;
    Alcotest.(check bool) "result is the feasible one" true r.Experiment.feasible
  | None -> Alcotest.fail "expected a result");
  Alcotest.(check bool) "logarithmic probe count" true (List.length !calls <= 9)

let test_search_all_infeasible () =
  let probe _ = fake_result ~feasible:false in
  Alcotest.(check bool) "None when hi infeasible" true
    (Min_space.min_feasible ~lo:4 ~hi:64 probe = None)

let test_search_all_feasible () =
  match Min_space.min_feasible ~lo:4 ~hi:64 (fun _ -> fake_result ~feasible:true) with
  | Some (n, _) -> Alcotest.(check int) "lo returned" 4 n
  | None -> Alcotest.fail "expected lo"

let test_bracket_mode_logic () =
  (* Speculative bracket mode (jobs > 1) must land on the same
     boundary as the serial binary search; an odd job count exercises
     uneven candidate spacing. *)
  El_par.Pool.with_pool ~jobs:3 (fun pool ->
      let threshold = 37 in
      let probe n = fake_result ~feasible:(n >= threshold) in
      (match Min_space.min_feasible ~pool ~lo:4 ~hi:128 probe with
      | Some (n, r) ->
        Alcotest.(check int) "bracket finds the threshold" threshold n;
        Alcotest.(check bool) "result is the feasible one" true
          r.Experiment.feasible
      | None -> Alcotest.fail "expected a result");
      (match Min_space.min_feasible ~pool ~lo:4 ~hi:64 (fun _ ->
                 fake_result ~feasible:true)
       with
      | Some (n, _) -> Alcotest.(check int) "all-feasible returns lo" 4 n
      | None -> Alcotest.fail "expected lo");
      Alcotest.(check bool) "all-infeasible returns None" true
        (Min_space.min_feasible ~pool ~lo:4 ~hi:64 (fun _ ->
             fake_result ~feasible:false)
        = None))

let test_empty_range () =
  Alcotest.check_raises "lo>hi"
    (Invalid_argument "Min_space.min_feasible: empty range") (fun () ->
      ignore
        (Min_space.min_feasible ~lo:5 ~hi:4 (fun _ ->
             fake_result ~feasible:true)))

(* Real (short) searches: 30 s runs with a fast mix so the suite stays
   quick while exercising the full pipeline. *)

let quick_cfg () =
  {
    (Experiment.default_config ~kind:(Experiment.Firewall 64)
       ~mix:(Mix.short_long ~long_fraction:0.05)) with
    Experiment.runtime = Time.of_sec 30;
  }

let test_min_fw_end_to_end () =
  let blocks, result = Min_space.min_fw (quick_cfg ()) in
  Alcotest.(check bool)
    (Printf.sprintf "FW minimum near 123 (got %d)" blocks)
    true
    (blocks >= 110 && blocks <= 135);
  Alcotest.(check bool) "result feasible" true result.Experiment.feasible;
  (* One block less must be infeasible: minimality. *)
  let r =
    Experiment.run
      { (quick_cfg ()) with Experiment.kind = Experiment.Firewall (blocks - 1) }
  in
  Alcotest.(check bool) "one less kills" true (not r.Experiment.feasible)

let test_min_el_last_gen_end_to_end () =
  let make_policy sizes =
    { (Policy.default ~generation_sizes:sizes) with Policy.recirculate = false }
  in
  match
    Min_space.min_el_last_gen (quick_cfg ()) ~make_policy ~leading:[| 18 |]
      ~hi:64
  with
  | Some (g1, result) ->
    Alcotest.(check bool)
      (Printf.sprintf "gen1 minimum near 16 (got %d)" g1)
      true (g1 >= 10 && g1 <= 22);
    Alcotest.(check bool) "feasible" true result.Experiment.feasible
  | None -> Alcotest.fail "expected a feasible last-generation size"

let suite =
  [
    Alcotest.test_case "binary search finds the boundary" `Quick
      test_binary_search_logic;
    Alcotest.test_case "all-infeasible returns None" `Quick
      test_search_all_infeasible;
    Alcotest.test_case "all-feasible returns lo" `Quick test_search_all_feasible;
    Alcotest.test_case "empty range rejected" `Quick test_empty_range;
    Alcotest.test_case "bracket mode matches binary search" `Quick
      test_bracket_mode_logic;
    Alcotest.test_case "FW minimum-space search (30s runs)" `Slow
      test_min_fw_end_to_end;
    Alcotest.test_case "EL last-generation search (30s runs)" `Slow
      test_min_el_last_gen_end_to_end;
  ]
