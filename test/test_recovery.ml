open El_model
module Experiment = El_harness.Experiment
module Policy = El_core.Policy
module Recovery = El_recovery.Recovery
module Mix = El_workload.Mix
module Tx = El_workload.Tx_type

let el_config ?(sizes = [| 8; 8 |]) ?(recirculate = true) ?(runtime = 30)
    ?(seed = 42) ?(abort_fraction = 0.0) ?(rate = 40.0) () =
  let mix =
    Mix.create
      [
        Tx.make ~name:"s" ~probability:0.9 ~duration:(Time.of_ms 400)
          ~num_records:2 ~record_size:100;
        Tx.make ~name:"l" ~probability:0.1 ~duration:(Time.of_sec 4)
          ~num_records:4 ~record_size:100;
      ]
  in
  let policy =
    { (Policy.default ~generation_sizes:sizes) with Policy.recirculate }
  in
  {
    (Experiment.default_config ~kind:(Experiment.Ephemeral policy) ~mix) with
    Experiment.runtime = Time.of_sec runtime;
    num_objects = 10_000;
    flush_drives = 2;
    flush_transfer = Time.of_ms 8;
    seed;
    arrival_rate = rate;
    abort_fraction;
  }

let crash_and_audit cfg ~crash_at =
  let _result, recovery, audit = Experiment.run_with_crash cfg ~crash_at in
  (recovery, audit)

let test_audit_ok_midrun () =
  let recovery, audit = crash_and_audit (el_config ()) ~crash_at:(Time.of_sec 20) in
  Alcotest.(check bool) "atomic and durable" true audit.Recovery.ok;
  Alcotest.(check bool) "scanned something" true
    (recovery.Recovery.records_scanned > 0)

let test_audit_ok_early () =
  (* Crash before the first group commit has even sealed: nothing is
     durable, recovery must produce exactly the (empty) reference. *)
  let recovery, audit =
    crash_and_audit (el_config ()) ~crash_at:(Time.of_ms 20)
  in
  Alcotest.(check bool) "ok" true audit.Recovery.ok;
  Alcotest.(check int) "no committed txs" 0
    (List.length recovery.Recovery.committed_tids)

let test_audit_ok_with_aborts () =
  let cfg = el_config ~abort_fraction:0.3 ~seed:7 () in
  let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec 20) in
  Alcotest.(check bool) "aborted txs never recovered" true audit.Recovery.ok

let test_audit_ok_no_recirc () =
  (* Recirculation off with a tight log: long transactions get killed;
     killed transactions must not resurface in recovery. *)
  let cfg = el_config ~sizes:[| 4; 4 |] ~recirculate:false ~seed:3 () in
  let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec 20) in
  Alcotest.(check bool) "kills stay dead" true audit.Recovery.ok

let test_recovered_equals_reference_db () =
  let cfg = el_config () in
  let _result, recovery, audit =
    Experiment.run_with_crash cfg ~crash_at:(Time.of_sec 15)
  in
  Alcotest.(check bool) "audit ok" true audit.Recovery.ok;
  (* cross-check through the db interface too *)
  List.iter
    (fun (_oid, v) -> Alcotest.(check bool) "versions positive" true (v > 0))
    (El_disk.Stable_db.snapshot recovery.Recovery.recovered)

let test_redo_idempotent () =
  let cfg = el_config () in
  let live = Experiment.prepare cfg in
  El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec 20);
  let image =
    Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
  in
  let r1 = Recovery.recover image in
  let r2 = Recovery.recover image in
  Alcotest.(check bool) "recovery is deterministic" true
    (El_disk.Stable_db.equal r1.Recovery.recovered r2.Recovery.recovered);
  (* replaying the recovered log onto the recovered state changes
     nothing (idempotence of version-checked redo) *)
  let again = { image with Recovery.stable = r1.Recovery.recovered } in
  let r3 = Recovery.recover again in
  Alcotest.(check bool) "idempotent" true
    (El_disk.Stable_db.equal r1.Recovery.recovered r3.Recovery.recovered)

let test_stale_copies_do_not_regress () =
  (* Recirculation leaves old copies in freed slots; recovery must let
     the newest committed version win regardless of scan order. *)
  let cfg = el_config ~sizes:[| 4; 4 |] ~seed:11 () in
  let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec 25) in
  Alcotest.(check bool) "version ordering beats physical order" true
    audit.Recovery.ok

let prop_crash_anytime =
  QCheck.Test.make ~name:"recovery audit holds at random crash points"
    ~count:12
    QCheck.(pair (int_range 1 28) (int_bound 1000))
    (fun (crash_s, seed) ->
      let cfg = el_config ~seed () in
      let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec crash_s) in
      audit.Recovery.ok)

let prop_crash_tight_log =
  QCheck.Test.make
    ~name:"recovery audit holds under heavy recirculation (tight log)"
    ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let cfg = el_config ~sizes:[| 4; 4 |] ~seed ~rate:30.0 () in
      let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec 22) in
      audit.Recovery.ok)

let test_audit_ok_poisson () =
  (* Bursty arrivals stress group commit and recirculation timing; the
     atomicity/durability audit must be insensitive to them. *)
  let cfg =
    {
      (el_config ~seed:21 ()) with
      Experiment.arrival_process = El_workload.Generator.Poisson;
    }
  in
  let _, audit = crash_and_audit cfg ~crash_at:(Time.of_sec 18) in
  Alcotest.(check bool) "audit ok under bursts" true audit.Recovery.ok

let test_audit_with_invariants () =
  (* Crash, audit, and additionally deep-check the live structures at
     the crash instant: recovery correctness and in-memory consistency
     are independent claims. *)
  let cfg = el_config ~sizes:[| 5; 5 |] ~seed:13 () in
  let live = Experiment.prepare cfg in
  El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec 17);
  let manager = Option.get live.Experiment.el in
  El_core.El_manager.check_invariants manager;
  let image = Recovery.crash live.Experiment.engine manager in
  let result = Recovery.recover image in
  let audit = Recovery.audit image result in
  Alcotest.(check bool) "audit ok at a tight 10-block log" true
    audit.Recovery.ok

let test_fw_rejected () =
  let cfg =
    Experiment.default_config ~kind:(Experiment.Firewall 100)
      ~mix:(Mix.short_long ~long_fraction:0.05)
  in
  Alcotest.check_raises "FW has no recovery"
    (Invalid_argument "Experiment.run_with_crash: FW has no recovery model")
    (fun () -> ignore (Experiment.run_with_crash cfg ~crash_at:(Time.of_sec 1)))

(* Recovery must be a pure function of the crash image: running it
   twice gives identical results, and the physical order of the
   scanned blocks (which recirculation shuffles arbitrarily) must not
   matter. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let prop_recover_idempotent_order_insensitive =
  QCheck.Test.make
    ~name:"recover is idempotent and insensitive to record order" ~count:10
    QCheck.(pair (int_range 0 9_999) (int_range 5 25))
    (fun (seed, crash_s) ->
      let cfg = el_config ~seed () in
      let live = Experiment.prepare cfg in
      El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec crash_s);
      let image =
        Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
      in
      let sorted_tids (r : Recovery.result) =
        List.sort Ids.Tid.compare r.Recovery.committed_tids
      in
      let r1 = Recovery.recover image in
      let r2 = Recovery.recover image in
      let rng = Random.State.make [| seed; crash_s |] in
      let r3 =
        Recovery.recover
          { image with Recovery.blocks = shuffle rng image.Recovery.blocks }
      in
      El_disk.Stable_db.equal r1.Recovery.recovered r2.Recovery.recovered
      && El_disk.Stable_db.equal r1.Recovery.recovered r3.Recovery.recovered
      && sorted_tids r1 = sorted_tids r2
      && sorted_tids r1 = sorted_tids r3
      && r1.Recovery.records_scanned = r3.Recovery.records_scanned)

(* Negative case for the checksum machinery: an image whose every
   stamp is corrupted recovers nothing, counts every non-empty block
   as a torn tail, and fails the audit — the durably committed state
   is missing from the recovered database.  The flush array is starved
   so that committed state provably lags the stable version: a fully
   caught-up stable database would survive the loss of the log.  The
   30 ms transfer makes the starvation real (2 drives cannot keep up
   with 40 TPS); the generations are sized so the pinned backlog stays
   in the log — before forced flushes pinned their records, this
   config silently lost acked data, which is why the transfer used to
   be capped at 20 ms. *)
let test_corrupted_checksums_caught () =
  let cfg =
    {
      (el_config ~sizes:[| 12; 24 |] ()) with
      Experiment.flush_transfer = Time.of_ms 30;
    }
  in
  let live = Experiment.prepare cfg in
  El_sim.Engine.run live.Experiment.engine ~until:(Time.of_sec 15);
  let image =
    Recovery.crash live.Experiment.engine (Option.get live.Experiment.el)
  in
  Alcotest.(check bool) "pristine image audits ok" true
    (Recovery.audit image (Recovery.recover image)).Recovery.ok;
  Alcotest.(check bool) "unflushed committed state exists at 15 s" true
    (List.exists
       (fun (oid, v) ->
         El_disk.Stable_db.version image.Recovery.stable oid <> Some v)
       image.Recovery.reference);
  let corrupted =
    {
      image with
      Recovery.blocks =
        List.map
          (List.map (fun (s : Recovery.sealed) ->
               Recovery.corrupt_seal s.Recovery.payload))
          image.Recovery.blocks;
    }
  in
  let r = Recovery.recover corrupted in
  Alcotest.(check int) "nothing survives the scan" 0 r.Recovery.records_scanned;
  Alcotest.(check bool) "torn blocks counted" true (r.Recovery.torn_blocks > 0);
  let audit = Recovery.audit corrupted r in
  Alcotest.(check bool) "audit fails" false audit.Recovery.ok;
  Alcotest.(check bool) "committed versions reported missing" true
    (audit.Recovery.missing <> [])

let suite =
  [
    Alcotest.test_case "audit ok mid-run" `Quick test_audit_ok_midrun;
    Alcotest.test_case "audit ok before first commit" `Quick
      test_audit_ok_early;
    Alcotest.test_case "audit ok with aborts" `Quick test_audit_ok_with_aborts;
    Alcotest.test_case "audit ok with kills (no recirculation)" `Quick
      test_audit_ok_no_recirc;
    Alcotest.test_case "recovered db sanity" `Quick
      test_recovered_equals_reference_db;
    Alcotest.test_case "redo is deterministic and idempotent" `Quick
      test_redo_idempotent;
    Alcotest.test_case "stale recirculated copies never regress state" `Quick
      test_stale_copies_do_not_regress;
    QCheck_alcotest.to_alcotest prop_crash_anytime;
    QCheck_alcotest.to_alcotest prop_crash_tight_log;
    Alcotest.test_case "audit ok under Poisson bursts" `Quick
      test_audit_ok_poisson;
    Alcotest.test_case "audit + deep invariants on a tight log" `Quick
      test_audit_with_invariants;
    Alcotest.test_case "firewall configs are rejected" `Quick test_fw_rejected;
    QCheck_alcotest.to_alcotest prop_recover_idempotent_order_insensitive;
    Alcotest.test_case "corrupted checksums are caught" `Quick
      test_corrupted_checksums_caught;
  ]
