(* The durable-log server: an [ok committed] line on the wire promises
   the COMMIT record is on the platter.  The crash test enforces the
   promise the hard way — SIGKILL the server process mid-stream and
   require a fresh scan of its image to recover every acked
   transaction. *)

open El_model
module Serve = El_serve.Serve
module Recovery = El_recovery.Recovery

let with_temp_dir f =
  let dir = Filename.temp_file "el_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let num_objects = 1_000

let config ~image ~fresh =
  { (Serve.default_config ~image) with Serve.fresh; num_objects }

(* Spawn a server child speaking the line protocol over two pipes.
   A real process (serve_child.exe, via posix_spawn) rather than a
   fork: the test runner has live domains by the time this suite
   runs, and it also gives SIGKILL a genuinely independent victim. *)
let child_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "serve_child.exe"

let with_server ?(group_fsync = false) ~image ~fresh f =
  let c2s_r, c2s_w = Unix.pipe ~cloexec:false () in
  let s2c_r, s2c_w = Unix.pipe ~cloexec:false () in
  let args =
    Array.concat
      [
        [| child_exe; image |];
        (if fresh then [| "--fresh" |] else [||]);
        (if group_fsync then [| "--group-fsync" |] else [||]);
      ]
  in
  let pid = Unix.create_process child_exe args c2s_r s2c_w Unix.stderr in
  Unix.close c2s_r;
  Unix.close s2c_w;
  let oc = Unix.out_channel_of_descr c2s_w in
  let ic = Unix.in_channel_of_descr s2c_r in
  Fun.protect
    ~finally:(fun () ->
      (try close_out oc with Sys_error _ -> ());
      (try close_in ic with Sys_error _ -> ());
      (* reap, whatever state the test left the child in *)
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () -> f pid ic oc)

let command oc ic line =
  output_string oc (line ^ "\n");
  flush oc;
  input_line ic

let recovered_tids image =
  let b = El_store.Backend.file ~path:image in
  Fun.protect
    ~finally:(fun () -> El_store.Backend.close b)
    (fun () ->
      let r = Recovery.recover_store ~num_objects b in
      List.sort compare
        (List.map Ids.Tid.to_int r.Recovery.committed_tids))

let test_clean_session () =
  with_temp_dir (fun dir ->
      let image = Filename.concat dir "disk.img" in
      with_server ~image ~fresh:true (fun pid ic oc ->
          Alcotest.(check string) "begin" "ok begun 1" (command oc ic "BEGIN 1");
          Alcotest.(check string)
            "write" "ok written 1 10 1"
            (command oc ic "WRITE 1 10 1");
          Alcotest.(check string)
            "commit" "ok committed 1" (command oc ic "COMMIT 1");
          Alcotest.(check string) "begin 2" "ok begun 2"
            (command oc ic "begin 2");
          Alcotest.(check string) "abort" "ok aborted 2"
            (command oc ic "ABORT 2");
          let frob = command oc ic "FROB 1" in
          Alcotest.(check bool)
            "unknown verb answers err" true
            (String.length frob >= 3 && String.sub frob 0 3 = "err");
          let stat = command oc ic "STAT" in
          Alcotest.(check bool)
            "stat after err: session survived" true
            (String.length stat >= 4 && String.sub stat 0 4 = "stat");
          Alcotest.(check string) "fresh image recovered nothing"
            "recovered 0" (command oc ic "RECOVERED");
          Alcotest.(check string) "quit" "bye" (command oc ic "QUIT");
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool)
            "clean exit" true
            (status = Unix.WEXITED 0));
      Alcotest.(check (list int))
        "scan finds the committed, not the aborted" [ 1 ]
        (recovered_tids image))

let test_sigkill_recovers_acked () =
  with_temp_dir (fun dir ->
      let image = Filename.concat dir "disk.img" in
      let total = 40 in
      let kill_after = 25 in
      let acked =
        with_server ~image ~fresh:true (fun pid ic oc ->
            let acked = ref [] in
            (try
               for tid = 1 to total do
                 ignore (command oc ic (Printf.sprintf "BEGIN %d" tid));
                 ignore
                   (command oc ic
                      (Printf.sprintf "WRITE %d %d %d" tid (tid mod num_objects)
                         tid));
                 let r = command oc ic (Printf.sprintf "COMMIT %d" tid) in
                 if r = Printf.sprintf "ok committed %d" tid then
                   acked := tid :: !acked;
                 if List.length !acked >= kill_after then raise Exit
               done
             with Exit -> ());
            Unix.kill pid Sys.sigkill;
            let _, status = Unix.waitpid [] pid in
            Alcotest.(check bool)
              "killed, not exited" true
              (status = Unix.WSIGNALED Sys.sigkill);
            List.rev !acked)
      in
      Alcotest.(check int) "enough acks before the kill" kill_after
        (List.length acked);
      let recovered = recovered_tids image in
      List.iter
        (fun tid ->
          Alcotest.(check bool)
            (Printf.sprintf "acked tid %d recovered after SIGKILL" tid)
            true (List.mem tid recovered))
        acked)

let stat_field stat key =
  let prefix = key ^ "=" in
  match
    List.find_opt
      (String.starts_with ~prefix)
      (String.split_on_char ' ' stat)
  with
  | Some tok ->
    String.sub tok (String.length prefix)
      (String.length tok - String.length prefix)
  | None -> Alcotest.failf "STAT field %s missing in %S" key stat

(* Same traffic against one server; returns its final STAT line after
   SIGKILLing it (so the on-disk image is exactly what was durable). *)
let run_traffic ~group_fsync ~image ~txs ~writes_per_tx =
  with_server ~group_fsync ~image ~fresh:true (fun pid ic oc ->
      for tid = 1 to txs do
        ignore (command oc ic (Printf.sprintf "BEGIN %d" tid));
        for w = 1 to writes_per_tx do
          let oid = ((tid * writes_per_tx) + w) mod num_objects in
          ignore (command oc ic (Printf.sprintf "WRITE %d %d %d" tid oid tid))
        done;
        Alcotest.(check string) "ack"
          (Printf.sprintf "ok committed %d" tid)
          (command oc ic (Printf.sprintf "COMMIT %d" tid))
      done;
      let stat = command oc ic "STAT" in
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      stat)

(* Group fsync batches barriers but must not weaken the ack contract:
   an [ok committed] line still survives SIGKILL, and STAT reports the
   batching so callers (and the CI leg) can see the reduction. *)
let test_group_fsync_batches_and_survives () =
  with_temp_dir (fun dir ->
      let txs = 12 and writes_per_tx = 4 in
      let image_g = Filename.concat dir "grouped.img" in
      let image_i = Filename.concat dir "immediate.img" in
      let stat_g =
        run_traffic ~group_fsync:true ~image:image_g ~txs ~writes_per_tx
      in
      let stat_i =
        run_traffic ~group_fsync:false ~image:image_i ~txs ~writes_per_tx
      in
      Alcotest.(check string) "grouped STAT flags it" "on"
        (stat_field stat_g "group_fsync");
      Alcotest.(check string) "immediate STAT flags it" "off"
        (stat_field stat_i "group_fsync");
      let barriers s = int_of_string (stat_field s "barriers") in
      Alcotest.(check bool)
        (Printf.sprintf "grouped barriers (%d) < immediate (%d)"
           (barriers stat_g) (barriers stat_i))
        true
        (barriers stat_g < barriers stat_i);
      let fpc = float_of_string (stat_field stat_g "fsyncs_per_commit") in
      Alcotest.(check bool) "fsyncs_per_commit parses and is sane" true
        (fpc >= 0. && fpc < 100.);
      let expected = List.init txs (fun i -> i + 1) in
      Alcotest.(check (list int)) "grouped: every acked commit recovered"
        expected (recovered_tids image_g);
      Alcotest.(check (list int)) "immediate: every acked commit recovered"
        expected (recovered_tids image_i))

(* Restarting on the same image must see earlier epochs' commits and
   add its own without shadowing them. *)
let test_restart_accumulates () =
  with_temp_dir (fun dir ->
      let image = Filename.concat dir "disk.img" in
      with_server ~image ~fresh:true (fun _pid ic oc ->
          ignore (command oc ic "BEGIN 1");
          ignore (command oc ic "WRITE 1 1 1");
          Alcotest.(check string) "first epoch commit" "ok committed 1"
            (command oc ic "COMMIT 1");
          ignore (command oc ic "QUIT"));
      with_server ~image ~fresh:false (fun _pid ic oc ->
          Alcotest.(check string) "sees epoch 0" "recovered 1 1"
            (command oc ic "RECOVERED");
          Alcotest.(check string) "epoch 0's write readable" "ok read 1 1"
            (command oc ic "READ 1");
          ignore (command oc ic "BEGIN 2");
          ignore (command oc ic "WRITE 2 2 1");
          Alcotest.(check string) "second epoch commit" "ok committed 2"
            (command oc ic "COMMIT 2");
          ignore (command oc ic "QUIT"));
      Alcotest.(check (list int))
        "both epochs recovered" [ 1; 2 ] (recovered_tids image))

(* In-process protocol coverage that needs no fork. *)
let test_exec_protocol () =
  with_temp_dir (fun dir ->
      let image = Filename.concat dir "disk.img" in
      let t = Serve.start (config ~image ~fresh:true) in
      Fun.protect
        ~finally:(fun () -> Serve.close t)
        (fun () ->
          let reply line = fst (Serve.exec t line) in
          Alcotest.(check bool) "blank line is silent" true
            (Serve.exec t "   " = (None, true));
          Alcotest.(check (option string))
            "bad tid" (Some "err bad integer \"x\"") (reply "BEGIN x");
          Alcotest.(check (option string))
            "oid bounds checked"
            (Some (Printf.sprintf "err oid %d out of range" num_objects))
            (ignore (reply "BEGIN 3");
             reply (Printf.sprintf "WRITE 3 %d 1" num_objects));
          Alcotest.(check (option string))
            "commit acks" (Some "ok committed 3")
            (ignore (reply "WRITE 3 5 1");
             reply "COMMIT 3");
          Alcotest.(check bool) "ack recorded" true
            (Serve.tid_of_ack t (Ids.Tid.of_int 3));
          Alcotest.(check (option string))
            "READ of a never-written oid" (Some "ok read 7 0") (reply "READ 7");
          Alcotest.(check (option string))
            "READ bounds checked"
            (Some (Printf.sprintf "err oid %d out of range" num_objects))
            (reply (Printf.sprintf "READ %d" num_objects));
          Alcotest.(check bool) "quit stops" true
            (Serve.exec t "QUIT" = (Some "bye", false))))

let suite =
  [
    Alcotest.test_case "clean session, scan agrees" `Quick test_clean_session;
    Alcotest.test_case "SIGKILL loses no acked commit" `Quick
      test_sigkill_recovers_acked;
    Alcotest.test_case "group fsync batches, SIGKILL-safe" `Quick
      test_group_fsync_batches_and_survives;
    Alcotest.test_case "restart accumulates epochs" `Quick
      test_restart_accumulates;
    Alcotest.test_case "protocol errors are survivable" `Quick
      test_exec_protocol;
  ]
