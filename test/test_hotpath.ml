(* The hot-path refactor's correctness gates:

   - differential: the Indexed elevator picker services requests in
     exactly the order of the Reference linear scan, under both
     disciplines, for adversarial backlogs (staggered arrivals,
     duplicate oids superseding in place, forced upgrades,
     wrap-around);
   - the documented tie-break (forced first, then discipline key,
     equal keys to the earlier arrival) is pinned by construction;
   - the ledger's incremental oldest-active list and live-cell
     counter agree with from-scratch recomputation;
   - a whole simulation is bit-identical under either picker. *)

open El_model
module Engine = El_sim.Engine
module F = El_disk.Flush_array
module Ledger = El_core.Ledger
module Cell = El_core.Cell
module Experiment = El_harness.Experiment
module Policy = El_core.Policy

(* ---- differential: Indexed vs Reference ---- *)

(* One scripted run: requests arrive at scheduled instants while the
   drives drain, so picks happen at many backlog depths.  Returns the
   completion order plus the bookkeeping counters. *)
let run_script ~impl ~scheduling ~objects ~drives script =
  let e = Engine.create () in
  let f =
    F.create e ~drives ~transfer_time:(Time.of_ms 1) ~num_objects:objects
      ~scheduling ~implementation:impl ()
  in
  let order = ref [] in
  F.set_on_flush f (fun o ~version ->
      order := (Ids.Oid.to_int o, version) :: !order);
  List.iter
    (fun (at_ms, oid, version, forced) ->
      Engine.schedule_at e (Time.of_ms at_ms) (fun () ->
          if forced then F.request_forced f (Ids.Oid.of_int oid) ~version
          else F.request f (Ids.Oid.of_int oid) ~version))
    script;
  Engine.run_all e;
  F.check_invariants f;
  ( List.rev !order,
    F.flushes_completed f,
    F.forced_flushes f,
    F.superseded f )

let script_arb ~objects =
  (* Oids cluster near the partition edges so wrap-around picks are
     common, versions repeat so supersedes collide, and a third of the
     requests are forced. *)
  let open QCheck in
  let oid_gen =
    Gen.oneof
      [
        Gen.int_bound (objects - 1);
        Gen.int_bound 3;
        Gen.map (fun d -> objects - 1 - d) (Gen.int_bound 3);
      ]
  in
  list_of_size
    Gen.(int_range 0 60)
    (make
       ~print:(fun (t, o, v, f) -> Printf.sprintf "(%d,%d,%d,%b)" t o v f)
       Gen.(
         map
           (fun (t, o, v, f) -> (t, o, v, f))
           (tup4 (int_bound 40) oid_gen (int_range 1 3) (map (fun n -> n = 0) (int_bound 2)))))

let differential_prop scheduling name =
  QCheck.Test.make ~name ~count:300 (script_arb ~objects:64) (fun script ->
      let reference =
        run_script ~impl:F.Reference ~scheduling ~objects:64 ~drives:2 script
      in
      let indexed =
        run_script ~impl:F.Indexed ~scheduling ~objects:64 ~drives:2 script
      in
      reference = indexed)

let prop_nearest =
  differential_prop F.Nearest "indexed elevator == reference scan (Nearest)"

let prop_fifo =
  differential_prop F.Fifo "indexed elevator == reference scan (Fifo)"

(* ---- the documented tie-break, pinned ---- *)

let completion_order script =
  let order, _, _, _ =
    run_script ~impl:F.Indexed ~scheduling:F.Nearest ~objects:1000 ~drives:1
      (List.map (fun oid -> (0, oid, 1, false)) script)
  in
  List.map fst order

let test_tie_break () =
  (* After servicing oid 0 the drive sits at 0; oids 900 and 100 are
     both at wrapped distance 100, so the earlier arrival wins. *)
  Alcotest.(check (list int))
    "tie goes to earlier arrival" [ 0; 900; 100 ]
    (completion_order [ 0; 900; 100 ]);
  Alcotest.(check (list int))
    "swapped arrivals swap the pick" [ 0; 100; 900 ]
    (completion_order [ 0; 100; 900 ]);
  (* Reference agrees on the pinned order. *)
  let ref_order, _, _, _ =
    run_script ~impl:F.Reference ~scheduling:F.Nearest ~objects:1000 ~drives:1
      (List.map (fun oid -> (0, oid, 1, false)) [ 0; 900; 100 ])
  in
  Alcotest.(check (list int))
    "reference pins the same order" [ 0; 900; 100 ]
    (List.map fst ref_order)

let test_forced_first () =
  (* A forced request beats a nearer unforced one; among forced the
     discipline key still rules. *)
  let order, _, forced, _ =
    run_script ~impl:F.Indexed ~scheduling:F.Nearest ~objects:1000 ~drives:1
      [ (0, 0, 1, false); (0, 10, 1, false); (0, 500, 1, true) ]
  in
  Alcotest.(check (list int))
    "forced overtakes nearer pending" [ 0; 500; 10 ]
    (List.map fst order);
  Alcotest.(check int) "one forced flush" 1 forced

let test_forced_upgrade () =
  (* Re-requesting a pending oid as forced promotes it in place:
     superseded count rises and it is served before nearer work. *)
  let order, completed, forced, superseded =
    run_script ~impl:F.Indexed ~scheduling:F.Nearest ~objects:1000 ~drives:1
      [ (0, 0, 1, false); (0, 600, 1, false); (0, 10, 1, false); (1, 600, 2, true) ]
  in
  Alcotest.(check (list (pair int int)))
    "upgrade wins with new version"
    [ (0, 1); (600, 2); (10, 1) ]
    order;
  Alcotest.(check int) "three completions" 3 completed;
  Alcotest.(check int) "upgrade counted forced" 1 forced;
  Alcotest.(check int) "upgrade superseded in place" 1 superseded

(* ---- ledger incremental indexes ---- *)

let ts n = Time.of_ms n
let tid n = Ids.Tid.of_int n
let oid n = Ids.Oid.of_int n

let make_ledger () =
  let removed = ref 0 in
  let l = Ledger.create ~remove_cell:(fun _ -> incr removed) () in
  (l, removed)

let begin_at l n ~at =
  ignore
    (Ledger.begin_tx l ~tid:(tid n) ~expected_duration:(Time.of_sec 1)
       ~timestamp:(ts at) ~size:8)

let test_ledger_oldest_incremental () =
  let l, _ = make_ledger () in
  (* out-of-order begin timestamps: the sorted insert must cope *)
  begin_at l 1 ~at:50;
  begin_at l 2 ~at:10;
  begin_at l 3 ~at:30;
  Ledger.check_invariants l;
  (match Ledger.oldest_active l with
  | Some e -> Alcotest.(check int) "oldest is tid 2" 2 (Ids.Tid.to_int e.Cell.e_tid)
  | None -> Alcotest.fail "expected an oldest");
  Ledger.kill l ~tid:(tid 2);
  Ledger.check_invariants l;
  (match Ledger.oldest_active l with
  | Some e -> Alcotest.(check int) "then tid 3" 3 (Ids.Tid.to_int e.Cell.e_tid)
  | None -> Alcotest.fail "expected an oldest");
  ignore (Ledger.request_commit l ~tid:(tid 3) ~timestamp:(ts 60) ~size:8);
  Ledger.check_invariants l;
  (match Ledger.oldest_active l with
  | Some e ->
    Alcotest.(check int) "commit-pending drops out" 1 (Ids.Tid.to_int e.Cell.e_tid)
  | None -> Alcotest.fail "expected an oldest");
  ignore (Ledger.commit_durable l ~tid:(tid 3));
  ignore (Ledger.request_commit l ~tid:(tid 1) ~timestamp:(ts 70) ~size:8);
  ignore (Ledger.commit_durable l ~tid:(tid 1));
  Ledger.check_invariants l;
  match Ledger.oldest_active l with
  | None -> ()
  | Some _ -> Alcotest.fail "no active transactions remain"

let test_ledger_live_counter () =
  let l, _ = make_ledger () in
  Alcotest.(check int) "empty" 0 (Ledger.live_cells l);
  begin_at l 1 ~at:1;
  Alcotest.(check int) "begin record" 1 (Ledger.live_cells l);
  ignore
    (Ledger.write_data l ~tid:(tid 1) ~oid:(oid 7) ~version:1 ~size:40
       ~timestamp:(ts 2));
  Alcotest.(check int) "plus data record" 2 (Ledger.live_cells l);
  (* rewriting the same oid supersedes the first copy in place *)
  ignore
    (Ledger.write_data l ~tid:(tid 1) ~oid:(oid 7) ~version:2 ~size:40
       ~timestamp:(ts 3));
  Alcotest.(check int) "supersede is net zero" 2 (Ledger.live_cells l);
  ignore (Ledger.request_commit l ~tid:(tid 1) ~timestamp:(ts 4) ~size:8);
  Alcotest.(check int) "commit supersedes begin" 2 (Ledger.live_cells l);
  (match Ledger.commit_durable l ~tid:(tid 1) with
  | [ (o, v) ] ->
    Alcotest.(check bool) "flush handoff" true
      (Ids.Oid.equal o (oid 7) && v = 2);
    ignore (Ledger.flush_complete l ~oid:o ~version:v)
  | _ -> Alcotest.fail "expected one flush");
  Ledger.check_invariants l;
  Alcotest.(check int) "all retired" 0 (Ledger.live_cells l)

let prop_ledger_random =
  (* A random op soup; check_invariants cross-checks the incremental
     oldest-active list and live counter against recomputation after
     every batch. *)
  QCheck.Test.make ~name:"ledger indexes survive random lifecycles" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40) (pair (int_bound 9) (int_bound 5)))
    (fun ops ->
      let l, _ = make_ledger () in
      let clock = ref 0 in
      List.iteri
        (fun i (txn, op) ->
          incr clock;
          let tidn = tid txn in
          let state = Ledger.tx_state l tidn in
          match op with
          | 0 | 1 when state = None ->
            ignore
              (Ledger.begin_tx l ~tid:tidn ~expected_duration:(Time.of_sec 1)
                 ~timestamp:(ts !clock) ~size:8)
          | 2 when state = Some `Active ->
            ignore
              (Ledger.write_data l ~tid:tidn ~oid:(oid (i mod 7)) ~version:i
                 ~size:30 ~timestamp:(ts !clock))
          | 3 when state = Some `Active ->
            ignore
              (Ledger.request_commit l ~tid:tidn ~timestamp:(ts !clock) ~size:8)
          | 4 when state = Some `Commit_pending ->
            List.iter
              (fun (o, v) -> ignore (Ledger.flush_complete l ~oid:o ~version:v))
              (Ledger.commit_durable l ~tid:tidn)
          | 5 when state = Some `Active -> Ledger.kill l ~tid:tidn
          | _ -> ())
        ops;
      Ledger.check_invariants l;
      Ledger.live_cells l >= 0)

(* ---- whole-simulation identity: Reference vs Indexed ---- *)

let test_experiment_identity () =
  let base =
    {
      (Experiment.default_config
         ~kind:(Experiment.Ephemeral (Policy.default ~generation_sizes:[| 20; 12 |]))
         ~mix:(El_workload.Mix.short_long ~long_fraction:0.2)) with
      Experiment.runtime = Time.of_sec 30;
      Experiment.flush_transfer = Time.of_ms 45;
    }
  in
  let run impl =
    Marshal.to_string
      (Experiment.run { base with Experiment.flush_impl = impl })
      []
  in
  Alcotest.(check bool) "bit-identical results" true
    (run F.Reference = run F.Indexed)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_nearest;
    QCheck_alcotest.to_alcotest prop_fifo;
    Alcotest.test_case "nearest tie-break pinned" `Quick test_tie_break;
    Alcotest.test_case "forced served first" `Quick test_forced_first;
    Alcotest.test_case "forced upgrade in place" `Quick test_forced_upgrade;
    Alcotest.test_case "ledger oldest-active index" `Quick
      test_ledger_oldest_incremental;
    Alcotest.test_case "ledger live-cell counter" `Quick test_ledger_live_counter;
    QCheck_alcotest.to_alcotest prop_ledger_random;
    Alcotest.test_case "experiment identity (Reference vs Indexed)" `Quick
      test_experiment_identity;
  ]
