open El_model
module Engine = El_sim.Engine
module Experiment = El_harness.Experiment

type config = {
  image : string;
  fresh : bool;
  kind : Experiment.manager_kind;
  num_objects : int;
  group_fsync : bool;
      (* one fsync per COMMIT (before its ack) instead of one per
         appended segment; acked durability is unchanged *)
}

let default_config ~image =
  {
    image;
    fresh = false;
    kind =
      Experiment.Ephemeral
        (El_core.Policy.default ~generation_sizes:[| 32; 32 |]);
    num_objects = 100_000;
    group_fsync = false;
  }

(* The same quad every manager exposes, erased to closures so the
   protocol loop is manager-agnostic (mirrors Experiment's sink). *)
type sink = {
  s_begin : tid:Ids.Tid.t -> unit;
  s_write : tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit;
  s_commit : tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit;
  s_abort : tid:Ids.Tid.t -> unit;
  s_drain : unit -> unit;
}

type t = {
  engine : Engine.t;
  store : El_store.Log_store.t;
  sink : sink;
  killed : (int, unit) Hashtbl.t;
  acked : (int, unit) Hashtbl.t;
  recovered : El_recovery.Recovery.result;
  num_objects : int;
  mutable commits : int;  (* COMMIT commands acked, for the stat line *)
}

(* Interactive transactions have no meaningful a-priori duration;
   a short guess steers EL's generation choice toward the young
   generation, which is where short transactions belong. *)
let expected_duration = Time.of_ms 50

let start cfg =
  let backend = El_store.Backend.file ~path:cfg.image in
  (* Manual, not Grouped: serve's explicit sync before each commit ack
     is the only barrier needed; scheduled per-wave syncs would barrier
     at every completion instant of the settle for no durability
     benefit. *)
  let sync_mode =
    if cfg.group_fsync then El_store.Log_store.Manual
    else El_store.Log_store.Immediate
  in
  let store =
    if cfg.fresh then El_store.Log_store.create ~sync_mode backend
    else El_store.Log_store.attach ~sync_mode backend
  in
  (* Attach already truncated any torn tail, so this scan replays
     exactly the durable prefix a crashed predecessor left behind. *)
  let recovered =
    El_recovery.Recovery.recover_store ~num_objects:cfg.num_objects backend
  in
  let engine = Engine.create ~seed:0 () in
  let killed = Hashtbl.create 64 in
  let on_kill tid = Hashtbl.replace killed (Ids.Tid.to_int tid) () in
  let sink =
    match cfg.kind with
    | Experiment.Ephemeral policy ->
      let flush =
        El_disk.Flush_array.create engine ~drives:10
          ~transfer_time:(Time.of_ms 1) ~num_objects:cfg.num_objects ~store ()
      in
      let stable = El_disk.Stable_db.create ~num_objects:cfg.num_objects in
      let m =
        El_core.El_manager.create engine ~policy ~flush ~stable ~store ()
      in
      El_core.El_manager.set_on_kill m on_kill;
      {
        s_begin =
          (fun ~tid ->
            El_core.El_manager.begin_tx m ~tid ~expected_duration);
        s_write =
          (fun ~tid ~oid ~version ~size ->
            El_core.El_manager.write_data m ~tid ~oid ~version ~size);
        s_commit =
          (fun ~tid ~on_ack ->
            El_core.El_manager.request_commit m ~tid ~on_ack);
        s_abort = (fun ~tid -> El_core.El_manager.request_abort m ~tid);
        s_drain = (fun () -> El_core.El_manager.drain m);
      }
    | Experiment.Firewall size_blocks ->
      let m = El_core.Fw_manager.create engine ~size_blocks ~store () in
      El_core.Fw_manager.set_on_kill m on_kill;
      {
        s_begin =
          (fun ~tid ->
            El_core.Fw_manager.begin_tx m ~tid ~expected_duration);
        s_write =
          (fun ~tid ~oid ~version ~size ->
            El_core.Fw_manager.write_data m ~tid ~oid ~version ~size);
        s_commit =
          (fun ~tid ~on_ack ->
            El_core.Fw_manager.request_commit m ~tid ~on_ack);
        s_abort = (fun ~tid -> El_core.Fw_manager.request_abort m ~tid);
        s_drain = (fun () -> El_core.Fw_manager.drain m);
      }
    | Experiment.Hybrid queue_sizes ->
      let flush =
        El_disk.Flush_array.create engine ~drives:10
          ~transfer_time:(Time.of_ms 1) ~num_objects:cfg.num_objects ~store ()
      in
      let stable = El_disk.Stable_db.create ~num_objects:cfg.num_objects in
      let m =
        El_core.Hybrid_manager.create engine ~queue_sizes ~flush ~stable
          ~store ()
      in
      El_core.Hybrid_manager.set_on_kill m on_kill;
      {
        s_begin =
          (fun ~tid ->
            El_core.Hybrid_manager.begin_tx m ~tid ~expected_duration);
        s_write =
          (fun ~tid ~oid ~version ~size ->
            El_core.Hybrid_manager.write_data m ~tid ~oid ~version ~size);
        s_commit =
          (fun ~tid ~on_ack ->
            El_core.Hybrid_manager.request_commit m ~tid ~on_ack);
        s_abort = (fun ~tid -> El_core.Hybrid_manager.request_abort m ~tid);
        s_drain = (fun () -> El_core.Hybrid_manager.drain m);
      }
  in
  {
    engine;
    store;
    sink;
    killed;
    acked = Hashtbl.create 64;
    recovered;
    num_objects = cfg.num_objects;
    commits = 0;
  }

let recovered t = t.recovered
let tid_of_ack t tid = Hashtbl.mem t.acked (Ids.Tid.to_int tid)
let close t = El_store.Backend.close (El_store.Log_store.backend t.store)

let ok fmt = Printf.ksprintf (fun s -> "ok " ^ s) fmt
let err fmt = Printf.ksprintf (fun s -> "err " ^ s) fmt

let exec t line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let settle () = Engine.run_all t.engine in
  let with_int s k =
    match int_of_string_opt s with
    | Some n when n >= 0 -> k n
    | Some _ | None -> err "bad integer %S" s
  in
  (* A misused command (double begin, unknown tid, log overload…)
     raises out of the manager; the session survives it and the
     client learns why. *)
  let guarded f = try f () with
    | Invalid_argument m | Failure m -> err "%s" m
    | El_core.El_manager.Log_overloaded m -> err "log overloaded: %s" m
  in
  match words with
  | [] -> (None, true)
  | verb :: args -> (
    match (String.uppercase_ascii verb, args) with
    | "BEGIN", [ tid ] ->
      let r =
        guarded (fun () ->
            with_int tid (fun n ->
                t.sink.s_begin ~tid:(Ids.Tid.of_int n);
                settle ();
                ok "begun %d" n))
      in
      (Some r, true)
    | "WRITE", ([ _; _; _ ] | [ _; _; _; _ ]) ->
      let tid, oid, version, size =
        match args with
        | [ a; b; c ] -> (a, b, c, "100")
        | [ a; b; c; d ] -> (a, b, c, d)
        | _ -> assert false
      in
      let r =
        guarded (fun () ->
            with_int tid (fun tn ->
                with_int oid (fun on ->
                    with_int version (fun vn ->
                        with_int size (fun sn ->
                            if on >= t.num_objects then
                              err "oid %d out of range" on
                            else begin
                              t.sink.s_write ~tid:(Ids.Tid.of_int tn)
                                ~oid:(Ids.Oid.of_int on) ~version:vn ~size:sn;
                              settle ();
                              ok "written %d %d %d" tn on vn
                            end)))))
      in
      (Some r, true)
    | "COMMIT", [ tid ] ->
      let r =
        guarded (fun () ->
            with_int tid (fun n ->
                let acked_at = ref None in
                t.sink.s_commit ~tid:(Ids.Tid.of_int n)
                  ~on_ack:(fun at -> acked_at := Some at);
                (* Force partial buffers out and run every consequence:
                   by the time drain+settle return, the COMMIT record's
                   block has been appended — and fsynced, either per
                   segment (Immediate) or by the single group barrier
                   below — so the ack below is an ack of durable
                   state. *)
                t.sink.s_drain ();
                settle ();
                El_store.Log_store.sync t.store;
                match !acked_at with
                | Some _ ->
                  t.commits <- t.commits + 1;
                  Hashtbl.replace t.acked n ();
                  ok "committed %d" n
                | None ->
                  if Hashtbl.mem t.killed n then err "killed %d" n
                  else err "commit of %d did not ack" n))
      in
      (Some r, true)
    | "ABORT", [ tid ] ->
      let r =
        guarded (fun () ->
            with_int tid (fun n ->
                t.sink.s_abort ~tid:(Ids.Tid.of_int n);
                settle ();
                ok "aborted %d" n))
      in
      (Some r, true)
    | "READ", [ oid ] ->
      (* The durable version of the object as of startup recovery: the
         stable database plus surviving log redo.  A commit that was
         acked, flushed and recirculated out of the log no longer
         appears in RECOVERED's tid list, but its version must. *)
      let r =
        with_int oid (fun on ->
            if on >= t.num_objects then err "oid %d out of range" on
            else
              let v =
                match
                  El_disk.Stable_db.version
                    t.recovered.El_recovery.Recovery.recovered
                    (Ids.Oid.of_int on)
                with
                | Some v -> v
                | None -> 0
              in
              ok "read %d %d" on v)
      in
      (Some r, true)
    | "RECOVERED", [] ->
      let tids =
        List.map Ids.Tid.to_int t.recovered.El_recovery.Recovery.committed_tids
        |> List.sort compare
      in
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "recovered %d" (List.length tids));
      List.iter (fun n -> Buffer.add_string b (Printf.sprintf " %d" n)) tids;
      (Some (Buffer.contents b), true)
    | "STAT", [] ->
      let backend = El_store.Log_store.backend t.store in
      let c = El_store.Backend.counters backend in
      let fsyncs_per_commit =
        float_of_int c.El_store.Backend.barriers
        /. float_of_int (max 1 t.commits)
      in
      ( Some
          (Printf.sprintf
             "stat backend=%s pwrites=%d barriers=%d bytes=%d recovered=%d \
              commits=%d fsyncs_per_commit=%.2f group_fsync=%s"
             (El_store.Backend.name backend)
             c.El_store.Backend.pwrites c.El_store.Backend.barriers
             c.El_store.Backend.bytes_written
             (List.length t.recovered.El_recovery.Recovery.committed_tids)
             t.commits fsyncs_per_commit
             (match El_store.Log_store.sync_mode t.store with
             | El_store.Log_store.Grouped | El_store.Log_store.Manual -> "on"
             | El_store.Log_store.Immediate -> "off")),
        true )
    | "QUIT", [] -> (Some "bye", false)
    | verb, _ -> (Some (err "unknown or malformed command %S" verb), true))

let serve_channel t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let response, continue = exec t line in
      (match response with
      | None -> ()
      | Some r ->
        output_string oc r;
        output_char oc '\n';
        flush oc);
      if continue then loop ()
  in
  loop ()

let serve_socket t ~socket_path =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket_path);
  Unix.listen sock 8;
  let rec accept_loop () =
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try serve_channel t ic oc with Sys_error _ -> ());
    (* One descriptor under both channels: closing the out channel
       flushes and closes the fd; the in channel must not be closed
       again. *)
    (try close_out oc with Sys_error _ -> ());
    accept_loop ()
  in
  accept_loop ()
