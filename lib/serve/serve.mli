(** [el-sim serve]: a durable-log service over a real disk image.

    The server wires one log manager (EL by default) to a
    {!El_store.Backend.file} image and accepts transactions over a
    line protocol — from stdin or a Unix-domain socket.  Each command
    steps the simulation engine until every consequence has settled,
    so a response is only written after the store has absorbed (and
    fsynced) everything the command caused.  In particular
    [ok committed <tid>] is an ack {e at the durability point}: the
    COMMIT record is on the platter before the line is on the wire,
    which is what the crash-kill tests exploit — a SIGKILLed server
    must recover every transaction it acked from [disk.img] alone.

    {2 Protocol}

    One command per line, case-insensitive verbs, integer arguments:

    - [BEGIN <tid>] → [ok begun <tid>]
    - [WRITE <tid> <oid> <version> [<size>]] →
      [ok written <tid> <oid> <version>]  (size defaults to 100 bytes)
    - [COMMIT <tid>] → [ok committed <tid>], or [err killed <tid>] if
      the manager killed the transaction for log space
    - [ABORT <tid>] → [ok aborted <tid>]
    - [READ <oid>] → [ok read <oid> <version>] — the durable version
      of the object as recovered at startup (0 if never written).
      A commit flushed to the stable database and recirculated out of
      the log is absent from [RECOVERED]'s tid list but present here —
      this is the right probe for "was my acked write kept?"
    - [RECOVERED] → [recovered <n> <tid>...] — the committed
      transactions still in the log at startup, ascending (a flushed
      commit's effects live on in the stable state; see [READ])
    - [STAT] → [stat backend=<name> pwrites=<n> barriers=<n>
      bytes=<n> recovered=<n> commits=<n> fsyncs_per_commit=<f>
      group_fsync=<on|off>]
    - [QUIT] → [bye], then the connection (or the stdio server)
      closes

    Anything else answers [err <reason>]; a malformed argument or a
    protocol misuse (e.g. beginning a tid twice) answers [err] without
    disturbing the server. *)

open El_model

type config = {
  image : string;  (** path to the disk image *)
  fresh : bool;
      (** [true] truncates the image; [false] (default) attaches to
          whatever committed state it holds and recovers it *)
  kind : El_harness.Experiment.manager_kind;
  num_objects : int;
  group_fsync : bool;
      (** [true] batches the store's barriers: segments appended while
          a COMMIT settles share one fsync, issued before the commit
          ack.  The ack-durability contract is unchanged — only
          unacked work can be lost to a crash.  [false] (default)
          fsyncs every appended segment. *)
}

val default_config : image:string -> config
(** EL with two 32-block generations, 100_000 objects, attach,
    per-segment fsync. *)

type t

val start : config -> t
(** Opens (or creates) the image, recovers its committed state, and
    wires a fresh manager to it on a new store epoch — prior epochs'
    blocks stay durable and are never shadowed by the new run.
    Raises [Unix.Unix_error] if the image path is unusable. *)

val recovered : t -> El_recovery.Recovery.result
(** The committed state found in the image when {!start} attached. *)

val exec : t -> string -> string option * bool
(** One protocol step: parse a command line, run it to quiescence,
    return the response ([None] for a blank line) and whether the
    session should continue ([false] after [QUIT]).  Exposed for
    in-process tests; the servers below are thin loops over it. *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serves one session: reads commands until EOF or [QUIT], writing
    and flushing one response line per command. *)

val serve_socket : t -> socket_path:string -> unit
(** Binds a Unix-domain socket (unlinking any stale file first) and
    serves clients sequentially, forever — the caller terminates the
    process.  Each accepted connection is one {!serve_channel}
    session; [QUIT] ends the connection, not the server. *)

val close : t -> unit
(** Closes the image's file descriptor.  The store needs no shutdown
    protocol beyond this — every acked write is already durable. *)

val tid_of_ack : t -> Ids.Tid.t -> bool
(** Whether this server acked a commit of [tid] in this session (not
    counting recovered history).  For tests. *)
