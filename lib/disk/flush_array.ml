open El_model

type request = {
  mutable oid : int;
  mutable version : int;
  mutable forced : bool;
  mutable seq : int;  (* arrival order, for FIFO scheduling and tie-breaks *)
}
(* Every field is mutable so retired request records can be recycled
   through a free list: the completion path reads what it needs into
   locals before the record goes back to the pool, so the steady-state
   request flow allocates nothing. *)

module Int_map = Map.Make (Int)

(* One priority class (forced or unforced) of a drive's pending set.
   The elevator index is a hierarchical bitset over the drive's oid
   range — insert and delete are allocation-free word stores, which is
   what keeps index maintenance cheaper than the linear scan even when
   the backlog is deep and picks are rare (the scarce-flush regime
   that used to invert the Indexed/Reference ranking).  The by-seq
   balanced map is maintained only under [Fifo] scheduling, the one
   discipline that picks by arrival order. *)
type index = {
  bits : Oid_bitset.t;  (* pending oids, drive-relative *)
  mutable by_seq : request Int_map.t;  (* [Fifo] scheduling only *)
}

type drive = {
  lo : int;
  span : int;  (* number of oids owned: [lo, lo + span) *)
  mutable position : int;  (* oid last written; starts at lo *)
  mutable has_history : bool;  (* false until the first flush *)
  pending_tbl : (int, request) Hashtbl.t;  (* every pending request, by oid *)
  normal : index;  (* unforced requests (Indexed implementation only) *)
  urgent : index;  (* forced requests (Indexed implementation only) *)
  mutable busy : bool;
}

type scheduling = Nearest | Fifo

type implementation = Indexed | Reference

type t = {
  engine : El_sim.Engine.t;
  transfer_time : Time.t;
  num_objects : int;
  drives : drive array;
  scheduling : scheduling;
  implementation : implementation;
  mutable on_flush : (Ids.Oid.t -> version:int -> unit) option;
  mutable observers : (Ids.Oid.t -> version:int -> unit) list;
  mutable next_seq : int;
  mutable spare : request list;  (* retired request records, for reuse *)
  mutable pending_count : int;
  mutable peak_backlog : int;
  mutable completed : int;
  mutable forced_count : int;
  mutable superseded : int;
  mutable picks : int;
  distances : El_metrics.Running_stat.t;
  obs : El_obs.Obs.t option;
  fault : El_fault.Injector.device_state option array;
  store : El_store.Log_store.t option;
}

let empty_index span = { bits = Oid_bitset.create span; by_seq = Int_map.empty }

let create engine ~drives ~transfer_time ~num_objects
    ?(scheduling = Nearest) ?(implementation = Indexed) ?obs ?fault ?store () =
  if drives <= 0 then invalid_arg "Flush_array.create: no drives";
  if num_objects <= 0 || num_objects mod drives <> 0 then
    invalid_arg "Flush_array.create: num_objects must be a positive multiple of drives";
  if Time.(transfer_time <= Time.zero) then
    invalid_arg "Flush_array.create: non-positive transfer time";
  let span = num_objects / drives in
  let make_drive i =
    {
      lo = i * span;
      span;
      position = i * span;
      has_history = false;
      pending_tbl = Hashtbl.create 64;
      normal = empty_index span;
      urgent = empty_index span;
      busy = false;
    }
  in
  {
    engine;
    transfer_time;
    num_objects;
    drives = Array.init drives make_drive;
    scheduling;
    implementation;
    on_flush = None;
    observers = [];
    next_seq = 0;
    spare = [];
    pending_count = 0;
    peak_backlog = 0;
    completed = 0;
    forced_count = 0;
    superseded = 0;
    picks = 0;
    distances = El_metrics.Running_stat.create ~name:"flush oid distance" ();
    obs;
    fault =
      Array.init drives (fun i ->
          Option.map (fun inj -> El_fault.Injector.flush_drive inj i) fault);
    store;
  }

let set_on_flush t f = t.on_flush <- Some f

(* Observers ride along the owner's [on_flush] hook (called after it,
   in registration order): passive instruments — the spec oracle's
   flush-completion feed — that must see every completion without
   displacing the manager's own completion path. *)
let add_flush_observer t f = t.observers <- t.observers @ [ f ]

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Disk kind

let drive_index t d = d.lo / t.drives.(0).span

let drive_of t oid =
  let o = Ids.Oid.to_int oid in
  if o < 0 || o >= t.num_objects then
    invalid_arg "Flush_array: oid out of range";
  t.drives.(o / t.drives.(0).span)

(* ---- index maintenance (Indexed implementation) ---- *)

let class_of d r = if r.forced then d.urgent else d.normal

let index_add t d idx r =
  Oid_bitset.add idx.bits (r.oid - d.lo);
  match t.scheduling with
  | Fifo -> idx.by_seq <- Int_map.add r.seq r idx.by_seq
  | Nearest -> ()

let index_remove t d idx r =
  Oid_bitset.remove idx.bits (r.oid - d.lo);
  match t.scheduling with
  | Fifo -> idx.by_seq <- Int_map.remove r.seq idx.by_seq
  | Nearest -> ()

(* ---- picking the next request ----

   Both implementations follow the same normalized order:
   1. forced requests before unforced ones;
   2. within a class, the scheduling discipline's key — wrapped oid
      distance from the drive position under [Nearest], arrival [seq]
      under [Fifo];
   3. equal keys (two oids exactly equidistant on opposite sides of
      the position) resolve to the *earlier arrival* (smaller [seq]).
   The explicit seq tie-break replaces the hash-table iteration order
   the linear scan historically relied on, so both implementations are
   deterministic and agree request-for-request. *)

(* The retained linear scan: O(B) per pick over the whole backlog.
   Kept as the differential-testing baseline and as the benchmark
   reference the elevator index is measured against. *)
let pick_next_reference t d =
  let dist oid =
    Ids.Oid.distance ~wrap:d.span (Ids.Oid.of_int oid)
      (Ids.Oid.of_int d.position)
  in
  let best = ref None in
  let consider r =
    match !best with
    | None -> best := Some r
    | Some b ->
      let better =
        if r.forced <> b.forced then r.forced
        else
          match t.scheduling with
          | Fifo -> r.seq < b.seq
          | Nearest ->
            let dr = dist r.oid and db = dist b.oid in
            dr < db || (dr = db && r.seq < b.seq)
      in
      if better then best := Some r
  in
  Hashtbl.iter (fun _ r -> consider r) d.pending_tbl;
  !best

(* The elevator pick: the nearest pending oid on a circle is either
   the circular successor or the circular predecessor of the drive
   position, each one bitset walk (a word per summary level). *)
let pick_nearest_indexed d idx =
  let pos = d.position - d.lo in
  let succ =
    match Oid_bitset.next_geq idx.bits pos with
    | Some _ as s -> s
    | None -> Oid_bitset.min_elt idx.bits  (* wrap *)
  in
  let pred =
    match Oid_bitset.prev_lt idx.bits pos with
    | Some _ as p -> p
    | None -> Oid_bitset.max_elt idx.bits  (* wrap *)
  in
  let req o = Hashtbl.find d.pending_tbl (o + d.lo) in
  match (succ, pred) with
  | None, None -> None
  | Some o, None | None, Some o -> Some (req o)
  | Some s, Some p ->
    if s = p then Some (req s)
    else
      let dist o =
        Ids.Oid.distance ~wrap:d.span
          (Ids.Oid.of_int (o + d.lo))
          (Ids.Oid.of_int d.position)
      in
      let ds = dist s and dp = dist p in
      if ds < dp then Some (req s)
      else if dp < ds then Some (req p)
      else
        (* equidistant on opposite sides: earlier arrival wins *)
        let rs = req s and rp = req p in
        if rs.seq < rp.seq then Some rs else Some rp

let pick_next_indexed t d =
  let idx =
    if not (Oid_bitset.is_empty d.urgent.bits) then d.urgent else d.normal
  in
  match t.scheduling with
  | Fifo -> (
    match Int_map.min_binding_opt idx.by_seq with
    | Some (_, r) -> Some r
    | None -> None)
  | Nearest -> pick_nearest_indexed d idx

let pick_next t d =
  t.picks <- t.picks + 1;
  (match t.obs with
  | None -> ()
  | Some o -> El_metrics.Counter.incr (El_obs.Obs.counter o "flush.picks"));
  match t.implementation with
  | Reference -> pick_next_reference t d
  | Indexed -> pick_next_indexed t d

let count t name n =
  match t.obs with
  | None -> ()
  | Some o -> El_metrics.Counter.add (El_obs.Obs.counter o name) n

(* Resolve the transfer against the drive's fault state when a plan is
   armed.  Nominal resolutions reuse the exact [transfer_time] value so
   armed-but-inert plans stay byte-identical.  Torn verdicts on flush
   transfers are deliberately ignored: the stable version only changes
   via [on_flush] at completion, so a transfer interrupted by a crash
   leaves the old (consistent) object image in place — there is no
   partially-applied state to tear. *)
let transfer_service t d =
  match t.fault.(drive_index t d) with
  | None -> t.transfer_time
  | Some ds ->
    let r =
      El_fault.Injector.next_op ds ~now:(El_sim.Engine.now t.engine)
    in
    let dev = El_fault.Fault_plan.device_name (El_fault.Injector.device ds) in
    if r.El_fault.Injector.r_retries > 0 then begin
      emit t
        (El_obs.Event.Io_retry
           { device = dev; attempts = r.El_fault.Injector.r_retries });
      count t "fault.io_retries" r.El_fault.Injector.r_retries
    end;
    if r.El_fault.Injector.r_remapped then begin
      emit t (El_obs.Event.Io_remap { device = dev });
      count t "fault.io_remaps" 1
    end;
    if El_fault.Injector.nominal r then t.transfer_time
    else
      Time.add
        (Time.of_sec_f
           (Time.to_sec_f t.transfer_time *. r.El_fault.Injector.r_latency))
        r.El_fault.Injector.r_penalty

let rec dispatch t d =
  match pick_next t d with
  | None -> d.busy <- false
  | Some r ->
    d.busy <- true;
    (* A dispatched request's fields are frozen — a later write to the
       same oid enqueues a fresh record — so copy them out and recycle
       the record now rather than holding it across the transfer. *)
    let oid = r.oid and version = r.version and forced = r.forced in
    Hashtbl.remove d.pending_tbl oid;
    (match t.implementation with
    | Indexed -> index_remove t d (class_of d r) r
    | Reference -> ());
    t.spare <- r :: t.spare;
    emit t (El_obs.Event.Flush_start { drive = drive_index t d; oid });
    El_sim.Engine.schedule_after t.engine (transfer_service t d) (fun () ->
        let distance =
          if d.has_history then
            Ids.Oid.distance ~wrap:d.span (Ids.Oid.of_int oid)
              (Ids.Oid.of_int d.position)
          else 0
        in
        if d.has_history then begin
          El_metrics.Running_stat.observe t.distances (float_of_int distance);
          match t.obs with
          | None -> ()
          | Some o ->
            El_obs.Histogram.observe
              (El_obs.Obs.histogram ~lowest:1.0 ~buckets:24 o
                 "flush.oid_distance")
              (float_of_int distance)
        end;
        emit t
          (El_obs.Event.Flush_done { drive = drive_index t d; oid; distance });
        d.position <- oid;
        d.has_history <- true;
        t.pending_count <- t.pending_count - 1;
        t.completed <- t.completed + 1;
        if forced then t.forced_count <- t.forced_count + 1;
        (* Persist the stable install before [on_flush] runs: the hook
           applies the version to the stable DB and lets the log record
           become garbage, which is only sound once the install itself
           is durable on the backend. *)
        (match t.store with
        | Some store ->
          El_store.Log_store.append_stable store ~oid:(Ids.Oid.of_int oid)
            ~version;
          El_store.Log_store.request_group_sync store ~schedule:(fun k ->
              El_sim.Engine.schedule_after t.engine Time.zero k)
        | None -> ());
        (match t.on_flush with
        | Some f -> f (Ids.Oid.of_int oid) ~version
        | None -> ());
        List.iter (fun f -> f (Ids.Oid.of_int oid) ~version) t.observers;
        dispatch t d)

let enqueue t oid ~version ~forced =
  let d = drive_of t oid in
  let o = Ids.Oid.to_int oid in
  emit t (El_obs.Event.Flush_request { oid = o; forced });
  (match Hashtbl.find_opt d.pending_tbl o with
  | Some r ->
    (* Supersede in place: keep the single pending slot, newest version.
       A forced supersede promotes the request into the urgent class. *)
    r.version <- version;
    if forced && not r.forced then begin
      (match t.implementation with
      | Indexed ->
        index_remove t d d.normal r;
        r.forced <- true;
        index_add t d d.urgent r
      | Reference -> r.forced <- true)
    end;
    t.superseded <- t.superseded + 1
  | None ->
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let r =
      match t.spare with
      | r :: rest ->
        t.spare <- rest;
        r.oid <- o;
        r.version <- version;
        r.forced <- forced;
        r.seq <- seq;
        r
      | [] -> { oid = o; version; forced; seq }
    in
    Hashtbl.replace d.pending_tbl o r;
    (match t.implementation with
    | Indexed -> index_add t d (class_of d r) r
    | Reference -> ());
    t.pending_count <- t.pending_count + 1;
    if t.pending_count > t.peak_backlog then t.peak_backlog <- t.pending_count);
  if not d.busy then dispatch t d

let request t oid ~version = enqueue t oid ~version ~forced:false
let request_forced t oid ~version = enqueue t oid ~version ~forced:true

let is_pending t oid =
  let d = drive_of t oid in
  Hashtbl.mem d.pending_tbl (Ids.Oid.to_int oid)

let pending t = t.pending_count
let peak_backlog t = t.peak_backlog
let flushes_completed t = t.completed
let forced_flushes t = t.forced_count
let superseded t = t.superseded
let picks t = t.picks
let mean_distance t = El_metrics.Running_stat.mean t.distances
let distance_stat t = t.distances

let max_rate_per_sec t =
  float_of_int (Array.length t.drives) /. Time.to_sec_f t.transfer_time

let drain_time t =
  let now = El_sim.Engine.now t.engine in
  let worst = ref now in
  Array.iter
    (fun d ->
      let backlog = Hashtbl.length d.pending_tbl + if d.busy then 1 else 0 in
      let finish = Time.add now (Time.mul_int t.transfer_time backlog) in
      if Time.(finish > !worst) then worst := finish)
    t.drives;
  !worst

let check_invariants t =
  Array.iter
    (fun d ->
      match t.implementation with
      | Reference -> ()
      | Indexed ->
        let n = ref 0 in
        let audit idx ~forced =
          Oid_bitset.iter idx.bits (fun o ->
              incr n;
              let oid = o + d.lo in
              match Hashtbl.find_opt d.pending_tbl oid with
              | Some r ->
                assert (r.oid = oid);
                assert (r.forced = forced);
                (match t.scheduling with
                | Fifo ->
                  assert (
                    match Int_map.find_opt r.seq idx.by_seq with
                    | Some r' -> r' == r
                    | None -> false)
                | Nearest -> ())
              | None -> assert false);
          match t.scheduling with
          | Fifo -> assert (Oid_bitset.cardinal idx.bits = Int_map.cardinal idx.by_seq)
          | Nearest -> assert (Int_map.is_empty idx.by_seq)
        in
        audit d.normal ~forced:false;
        audit d.urgent ~forced:true;
        assert (!n = Hashtbl.length d.pending_tbl))
    t.drives
