open El_model

type request = {
  oid : int;
  mutable version : int;
  mutable forced : bool;
  seq : int;  (* arrival order, for FIFO scheduling *)
}

type drive = {
  lo : int;
  span : int;  (* number of oids owned: [lo, lo + span) *)
  mutable position : int;  (* oid last written; starts at lo *)
  mutable has_history : bool;  (* false until the first flush *)
  pending_tbl : (int, request) Hashtbl.t;
  mutable busy : bool;
}

type scheduling = Nearest | Fifo

type t = {
  engine : El_sim.Engine.t;
  transfer_time : Time.t;
  num_objects : int;
  drives : drive array;
  scheduling : scheduling;
  mutable on_flush : (Ids.Oid.t -> version:int -> unit) option;
  mutable next_seq : int;
  mutable pending_count : int;
  mutable peak_backlog : int;
  mutable completed : int;
  mutable forced_count : int;
  mutable superseded : int;
  distances : El_metrics.Running_stat.t;
  obs : El_obs.Obs.t option;
}

let create engine ~drives ~transfer_time ~num_objects
    ?(scheduling = Nearest) ?obs () =
  if drives <= 0 then invalid_arg "Flush_array.create: no drives";
  if num_objects <= 0 || num_objects mod drives <> 0 then
    invalid_arg "Flush_array.create: num_objects must be a positive multiple of drives";
  if Time.(transfer_time <= Time.zero) then
    invalid_arg "Flush_array.create: non-positive transfer time";
  let span = num_objects / drives in
  let make_drive i =
    {
      lo = i * span;
      span;
      position = i * span;
      has_history = false;
      pending_tbl = Hashtbl.create 64;
      busy = false;
    }
  in
  {
    engine;
    transfer_time;
    num_objects;
    drives = Array.init drives make_drive;
    scheduling;
    on_flush = None;
    next_seq = 0;
    pending_count = 0;
    peak_backlog = 0;
    completed = 0;
    forced_count = 0;
    superseded = 0;
    distances = El_metrics.Running_stat.create ~name:"flush oid distance" ();
    obs;
  }

let set_on_flush t f = t.on_flush <- Some f

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Disk kind

let drive_index t d = d.lo / t.drives.(0).span

let drive_of t oid =
  let o = Ids.Oid.to_int oid in
  if o < 0 || o >= t.num_objects then
    invalid_arg "Flush_array: oid out of range";
  t.drives.(o / t.drives.(0).span)

(* Pick the pending request closest to the drive's current position
   (wrapped within its partition) — or the oldest one under FIFO
   scheduling, the ablation baseline.  Forced requests always win;
   their order is irrelevant since any forced order is "random" I/O. *)
let pick_next t d =
  let best = ref None in
  let consider r =
    match !best with
    | None -> best := Some r
    | Some b ->
      let better =
        if r.forced <> b.forced then r.forced
        else
          match t.scheduling with
          | Fifo -> r.seq < b.seq
          | Nearest ->
            let dist x =
              Ids.Oid.distance ~wrap:d.span (Ids.Oid.of_int x)
                (Ids.Oid.of_int d.position)
            in
            dist r.oid < dist b.oid
      in
      if better then best := Some r
  in
  Hashtbl.iter (fun _ r -> consider r) d.pending_tbl;
  !best

let rec dispatch t d =
  match pick_next t d with
  | None -> d.busy <- false
  | Some r ->
    d.busy <- true;
    Hashtbl.remove d.pending_tbl r.oid;
    emit t (El_obs.Event.Flush_start { drive = drive_index t d; oid = r.oid });
    El_sim.Engine.schedule_after t.engine t.transfer_time (fun () ->
        let distance =
          if d.has_history then
            Ids.Oid.distance ~wrap:d.span (Ids.Oid.of_int r.oid)
              (Ids.Oid.of_int d.position)
          else 0
        in
        if d.has_history then begin
          El_metrics.Running_stat.observe t.distances (float_of_int distance);
          match t.obs with
          | None -> ()
          | Some o ->
            El_obs.Histogram.observe
              (El_obs.Obs.histogram ~lowest:1.0 ~buckets:24 o
                 "flush.oid_distance")
              (float_of_int distance)
        end;
        emit t
          (El_obs.Event.Flush_done
             { drive = drive_index t d; oid = r.oid; distance });
        d.position <- r.oid;
        d.has_history <- true;
        t.pending_count <- t.pending_count - 1;
        t.completed <- t.completed + 1;
        if r.forced then t.forced_count <- t.forced_count + 1;
        (match t.on_flush with
        | Some f -> f (Ids.Oid.of_int r.oid) ~version:r.version
        | None -> ());
        dispatch t d)

let enqueue t oid ~version ~forced =
  let d = drive_of t oid in
  let o = Ids.Oid.to_int oid in
  emit t (El_obs.Event.Flush_request { oid = o; forced });
  (match Hashtbl.find_opt d.pending_tbl o with
  | Some r ->
    (* Supersede in place: keep the single pending slot, newest version. *)
    r.version <- version;
    r.forced <- r.forced || forced;
    t.superseded <- t.superseded + 1
  | None ->
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace d.pending_tbl o { oid = o; version; forced; seq };
    t.pending_count <- t.pending_count + 1;
    if t.pending_count > t.peak_backlog then t.peak_backlog <- t.pending_count);
  if not d.busy then dispatch t d

let request t oid ~version = enqueue t oid ~version ~forced:false
let request_forced t oid ~version = enqueue t oid ~version ~forced:true

let is_pending t oid =
  let d = drive_of t oid in
  Hashtbl.mem d.pending_tbl (Ids.Oid.to_int oid)

let pending t = t.pending_count
let peak_backlog t = t.peak_backlog
let flushes_completed t = t.completed
let forced_flushes t = t.forced_count
let superseded t = t.superseded
let mean_distance t = El_metrics.Running_stat.mean t.distances
let distance_stat t = t.distances

let max_rate_per_sec t =
  float_of_int (Array.length t.drives) /. Time.to_sec_f t.transfer_time

let drain_time t =
  let now = El_sim.Engine.now t.engine in
  let worst = ref now in
  Array.iter
    (fun d ->
      let backlog = Hashtbl.length d.pending_tbl + if d.busy then 1 else 0 in
      let finish = Time.add now (Time.mul_int t.transfer_time backlog) in
      if Time.(finish > !worst) then worst := finish)
    t.drives;
  !worst
