(** Hierarchical bitset over a dense integer universe [[0, n)].

    The flush elevator's per-drive pending index: insert and delete
    are a constant two or three word stores — no allocation, ever —
    and circular successor/predecessor queries walk at most one word
    per summary level (four levels cover sixteen million oids).  This
    is what lets the indexed elevator stay cheaper than the linear
    scan even in regimes that enqueue millions of requests but rarely
    pick (the scarce-flush backlog). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [[0, n)].  Raises
    [Invalid_argument] when [n <= 0]. *)

val universe : t -> int
val mem : t -> int -> bool

val add : t -> int -> unit
(** Idempotent. *)

val remove : t -> int -> unit
(** Idempotent. *)

val is_empty : t -> bool

val min_elt : t -> int option
val max_elt : t -> int option

val next_geq : t -> int -> int option
(** [next_geq t i] is the smallest member [>= i], if any.  [i] may lie
    outside the universe (clamped). *)

val prev_lt : t -> int -> int option
(** [prev_lt t i] is the largest member [< i], if any. *)

val cardinal : t -> int
(** O(words); audit/test use. *)

val iter : t -> (int -> unit) -> unit
(** Ascending order; audit/test use. *)
