(* Hierarchical bitset over a dense integer universe [0, n).

   The flush elevator needs four operations on each drive's pending
   set: insert, delete, circular successor and circular predecessor of
   the head position.  Balanced maps give all four in O(log B) of the
   backlog B — but the scarce-flush regime does millions of inserts
   and deletes against a backlog it rarely picks from, and the
   rebalancing allocation on *every* index update is what made the
   indexed elevator slower than the linear scan it replaced.

   A bitset makes insert and delete two or three array stores with no
   allocation at all, ever.  Each level packs 63 members per word
   (OCaml's native int); level k+1 holds one summary bit per level-k
   word, so the whole structure for a million-oid drive is ~16 KB of
   flat int arrays and successor/predecessor walk at most
   [levels] ≤ 4 words up and down. *)

let word_bits = 63

type t = {
  n : int;
  levels : int array array;
      (* [levels.(0)] is the member bit array; bit [i land 62..0] of
         word [i / 63].  For k > 0, bit b of [levels.(k).(w)] is set
         iff word [w * 63 + b] of level k-1 is non-zero. *)
}

let create n =
  if n <= 0 then invalid_arg "Oid_bitset.create: empty universe";
  let rec build acc m =
    let words = (m + word_bits - 1) / word_bits in
    let acc = Array.make words 0 :: acc in
    if words = 1 then acc else build acc words
  in
  { n; levels = Array.of_list (List.rev (build [] n)) }

let universe t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Oid_bitset: index out of range"

let mem t i =
  check t i;
  Array.unsafe_get t.levels.(0) (i / word_bits) land (1 lsl (i mod word_bits))
  <> 0

let add t i =
  check t i;
  let nlevels = Array.length t.levels in
  let rec go lvl i =
    let w = i / word_bits and b = i mod word_bits in
    let a = Array.unsafe_get t.levels lvl in
    let old = Array.unsafe_get a w in
    Array.unsafe_set a w (old lor (1 lsl b));
    (* a word that was already non-empty is already summarized *)
    if old = 0 && lvl + 1 < nlevels then go (lvl + 1) w
  in
  go 0 i

let remove t i =
  check t i;
  let nlevels = Array.length t.levels in
  let rec go lvl i =
    let w = i / word_bits and b = i mod word_bits in
    let a = Array.unsafe_get t.levels lvl in
    let now = Array.unsafe_get a w land lnot (1 lsl b) in
    Array.unsafe_set a w now;
    if now = 0 && lvl + 1 < nlevels then go (lvl + 1) w
  in
  go 0 i

let is_empty t =
  let top = t.levels.(Array.length t.levels - 1) in
  Array.unsafe_get top 0 = 0

(* number of trailing zeros; [x] must be non-zero *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* position of the highest set bit; [x] must be non-zero *)
let msb x =
  let n = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x lsr 16 <> 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x lsr 8 <> 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x lsr 4 <> 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x lsr 2 <> 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x lsr 1 <> 0 then incr n;
  !n

(* lowest member reachable from the known-non-empty word [w] at
   level [lvl] *)
let rec descend_min t lvl w =
  let i = (w * word_bits) + ntz (Array.unsafe_get t.levels.(lvl) w) in
  if lvl = 0 then i else descend_min t (lvl - 1) i

let rec descend_max t lvl w =
  let i = (w * word_bits) + msb (Array.unsafe_get t.levels.(lvl) w) in
  if lvl = 0 then i else descend_max t (lvl - 1) i

let min_elt t =
  if is_empty t then None else Some (descend_min t (Array.length t.levels - 1) 0)

let max_elt t =
  if is_empty t then None else Some (descend_max t (Array.length t.levels - 1) 0)

(* smallest member >= i, scanning the level-[lvl] word containing [i]
   rightward, then ascending to find the next non-empty subtree *)
let next_geq t i =
  if i >= t.n then None
  else begin
    let i = if i < 0 then 0 else i in
    let nlevels = Array.length t.levels in
    let rec up lvl i =
      if lvl >= nlevels then None
      else
        let w = i / word_bits and b = i mod word_bits in
        let a = t.levels.(lvl) in
        if w >= Array.length a then None
        else
          let masked = Array.unsafe_get a w land (-1 lsl b) in
          if masked <> 0 then begin
            let j = (w * word_bits) + ntz masked in
            Some (if lvl = 0 then j else descend_min t (lvl - 1) j)
          end
          else up (lvl + 1) (w + 1)
    in
    up 0 i
  end

(* largest member < i *)
let prev_lt t i =
  if i <= 0 then None
  else begin
    let i = if i > t.n then t.n - 1 else i - 1 in
    let nlevels = Array.length t.levels in
    let rec up lvl i =
      if lvl >= nlevels || i < 0 then None
      else
        let w = i / word_bits and b = i mod word_bits in
        let word = Array.unsafe_get t.levels.(lvl) w in
        let masked =
          if b = word_bits - 1 then word else word land ((1 lsl (b + 1)) - 1)
        in
        if masked <> 0 then begin
          let j = (w * word_bits) + msb masked in
          Some (if lvl = 0 then j else descend_max t (lvl - 1) j)
        end
        else up (lvl + 1) (w - 1)
    in
    up 0 i
  end

let cardinal t =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let x = ref w in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr count
      done)
    t.levels.(0);
  !count

let iter t f =
  let a = t.levels.(0) in
  for w = 0 to Array.length a - 1 do
    let x = ref (Array.unsafe_get a w) in
    while !x <> 0 do
      let b = ntz !x in
      f ((w * word_bits) + b);
      x := !x land (!x - 1)
    done
  done
