(** The sequential write path of one log generation.

    A channel models the disk that stores a generation's circular
    array of blocks: writes are issued one at a time, each taking a
    fixed τ_Disk_Write (15 ms in the paper), and complete in FIFO
    order.  The log manager fills a buffer, calls {!write}, and is
    called back on completion — the moment at which the block's
    records become durable and group-committed transactions can be
    acknowledged.

    The channel also accounts for the buffer pool: the paper provides
    four buffers per generation, so at most four writes should ever be
    outstanding.  The channel does not block when the pool is
    exceeded (arrivals are open-loop, §3); instead it records the
    overflow so experiments can detect an under-provisioned pool. *)

open El_model

type t

val create :
  El_sim.Engine.t ->
  write_time:Time.t ->
  buffer_pool:int ->
  ?obs:El_obs.Obs.t ->
  ?label:int ->
  ?fault:El_fault.Injector.device_state ->
  ?store:El_store.Log_store.t ->
  unit ->
  t
(** Raises [Invalid_argument] if [buffer_pool] is non-positive.  With
    [obs], every block write emits [Log_write_start]/[Log_write_done]
    trace events tagged with [label] (the owning generation's index;
    [-1] when unnamed).  With [fault], each write consults the fault
    injector when it starts service: transient errors stretch the
    service time by the retry penalty, latency windows scale it,
    remaps burn spares (fatal when exhausted), and torn-write verdicts
    are held for {!in_service_torn}.  A nominal resolution reuses the
    exact [write_time], so an armed-but-inert plan is byte-identical
    to none.  With [store], every completed write with a payload is
    appended to the durable log (pwrite + barrier) {e before} its
    completion callback runs, so acks fired from [on_complete] imply
    on-device durability; store-backed channels must carry a
    non-negative [label] (it becomes the segment's generation). *)

val write :
  ?payload:(unit -> int * Log_record.t list) ->
  t ->
  on_complete:(unit -> unit) ->
  unit
(** Enqueues one block write.  [on_complete] fires τ after the write
    reaches the head of the channel's queue.  [payload], forced at
    completion (and at {!crash_persist}), yields the block's slot and
    records for store persistence; payload-less writes (checkpoints)
    model bandwidth only and persist nothing. *)

val writes_started : t -> int
val writes_completed : t -> int

val in_flight : t -> int
(** Writes issued but not yet completed (queued + in service). *)

val peak_in_flight : t -> int

val pool_overflows : t -> int
(** Number of writes issued while the buffer pool was already fully
    occupied — should be 0 in every paper configuration. *)

val in_service_torn : t -> float option
(** The pre-drawn torn-write verdict of the write currently in
    service: [Some f] means a crash right now persists only the
    fraction [f] of that block.  [None] when idle or the write is not
    torn.  Reading this never advances the fault stream, so crash
    capture cannot perturb replay. *)

val quiesce_time : t -> Time.t
(** The simulated time at which all currently queued writes will have
    completed (= now when idle).  Used at end of run to drain. *)

val crash_persist : t -> unit
(** Appends the crash image of the in-service write to the store, if
    any: a torn in-service write persists its valid prefix (with the
    destroyed tail as corrupt entries) under a fresh sequence number;
    a non-torn or absent in-service write persists nothing, leaving
    the slot's previous segment newest.  No-op without a store. *)
