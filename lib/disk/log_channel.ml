open El_model

type payload = unit -> int * Log_record.t list

type t = {
  engine : El_sim.Engine.t;
  write_time : Time.t;
  buffer_pool : int;
  queue : (payload option * (unit -> unit)) Queue.t;
  mutable busy : bool;
  mutable started : int;
  mutable completed : int;
  mutable peak : int;
  mutable overflows : int;
  mutable busy_until : Time.t;
  obs : El_obs.Obs.t option;
  label : int;  (* generation index in trace events; -1 when unnamed *)
  fault : El_fault.Injector.device_state option;
  mutable current_torn : float option;
  store : El_store.Log_store.t option;
  mutable in_service : payload option;
}

let create engine ~write_time ~buffer_pool ?obs ?(label = -1) ?fault ?store () =
  if buffer_pool <= 0 then invalid_arg "Log_channel.create: empty pool";
  if store <> None && label < 0 then
    invalid_arg "Log_channel.create: a store-backed channel needs a label";
  {
    engine;
    write_time;
    buffer_pool;
    queue = Queue.create ();
    busy = false;
    started = 0;
    completed = 0;
    peak = 0;
    overflows = 0;
    busy_until = Time.zero;
    obs;
    label;
    fault;
    current_torn = None;
    store;
    in_service = None;
  }

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Channel kind

let count t name n =
  match t.obs with
  | None -> ()
  | Some o -> El_metrics.Counter.add (El_obs.Obs.counter o name) n

let in_flight t = t.started - t.completed

(* Resolve the op against the fault plan when one is armed.  The
   nominal path must return the channel's [write_time] value itself —
   not a recomputed equivalent — so that an armed-but-inert plan stays
   byte-identical to no plan at all. *)
let service_time t =
  match t.fault with
  | None -> t.write_time
  | Some ds ->
    let r =
      El_fault.Injector.next_op ds ~now:(El_sim.Engine.now t.engine)
    in
    t.current_torn <- r.El_fault.Injector.r_torn;
    let dev = El_fault.Fault_plan.device_name (El_fault.Injector.device ds) in
    if r.El_fault.Injector.r_retries > 0 then begin
      emit t
        (El_obs.Event.Io_retry
           { device = dev; attempts = r.El_fault.Injector.r_retries });
      count t "fault.io_retries" r.El_fault.Injector.r_retries
    end;
    if r.El_fault.Injector.r_remapped then begin
      emit t (El_obs.Event.Io_remap { device = dev });
      count t "fault.io_remaps" 1
    end;
    if El_fault.Injector.nominal r then t.write_time
    else
      Time.add
        (Time.of_sec_f
           (Time.to_sec_f t.write_time *. r.El_fault.Injector.r_latency))
        r.El_fault.Injector.r_penalty

(* Persist a completed block write before anything observes the
   completion: the store append (pwrite + barrier) must precede
   [on_complete] so that a commit acknowledged by a completion hook is
   already durable on the backend. *)
let persist_completed t payload =
  match (t.store, payload) with
  | Some store, Some p ->
    let slot, records = p () in
    El_store.Log_store.append_block store ~gen:t.label ~slot records;
    (* one barrier per settle wave under Grouped sync: every block
       completion that lands at this simulated instant appends first,
       and the zero-delay event — queued behind them all — barriers
       once (a no-op under Immediate or Manual) *)
    El_store.Log_store.request_group_sync store ~schedule:(fun k ->
        El_sim.Engine.schedule_after t.engine Time.zero k)
  | _ -> ()

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some (payload, on_complete) ->
    t.busy <- true;
    t.in_service <- payload;
    let service = service_time t in
    t.busy_until <- Time.add (El_sim.Engine.now t.engine) service;
    emit t (El_obs.Event.Log_write_start { gen = t.label });
    El_sim.Engine.schedule_after t.engine service (fun () ->
        t.completed <- t.completed + 1;
        t.current_torn <- None;
        t.in_service <- None;
        persist_completed t payload;
        emit t (El_obs.Event.Log_write_done { gen = t.label });
        on_complete ();
        start_next t)

let write ?payload t ~on_complete =
  if in_flight t >= t.buffer_pool then t.overflows <- t.overflows + 1;
  t.started <- t.started + 1;
  if in_flight t > t.peak then t.peak <- in_flight t;
  Queue.add (payload, on_complete) t.queue;
  if not t.busy then start_next t

let writes_started t = t.started
let writes_completed t = t.completed
let peak_in_flight t = t.peak
let pool_overflows t = t.overflows

let in_service_torn t = if t.busy then t.current_torn else None

(* Persist the crash image of the write currently in service.  A torn
   in-service write destroys the slot's old content and leaves a valid
   prefix of the new block, so it appends a newer segment with the
   destroyed tail written as corrupt entries.  A non-torn in-service
   write persists nothing: it has not completed, so the slot's previous
   segment stays newest.  Queued writes were never started and leave no
   trace either — exactly the simulator's [durable_blocks] view. *)
let crash_persist t =
  match (t.store, t.in_service, if t.busy then t.current_torn else None) with
  | Some store, Some p, Some f ->
    let slot, records = p () in
    let count = List.length records in
    let keep = El_store.Log_store.torn_keep ~count f in
    El_store.Log_store.append_block store ~gen:t.label ~slot
      ~torn_suffix:(count - keep) records
  | _ -> ()

let quiesce_time t =
  if not t.busy then El_sim.Engine.now t.engine
  else
    (* One write in service finishing at [busy_until], the rest queued
       behind it. *)
    Time.add t.busy_until (Time.mul_int t.write_time (Queue.length t.queue))
