open El_model

type t = {
  engine : El_sim.Engine.t;
  write_time : Time.t;
  buffer_pool : int;
  queue : (unit -> unit) Queue.t;
  mutable busy : bool;
  mutable started : int;
  mutable completed : int;
  mutable peak : int;
  mutable overflows : int;
  mutable busy_until : Time.t;
  obs : El_obs.Obs.t option;
  label : int;  (* generation index in trace events; -1 when unnamed *)
}

let create engine ~write_time ~buffer_pool ?obs ?(label = -1) () =
  if buffer_pool <= 0 then invalid_arg "Log_channel.create: empty pool";
  {
    engine;
    write_time;
    buffer_pool;
    queue = Queue.create ();
    busy = false;
    started = 0;
    completed = 0;
    peak = 0;
    overflows = 0;
    busy_until = Time.zero;
    obs;
    label;
  }

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Channel kind

let in_flight t = t.started - t.completed

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some on_complete ->
    t.busy <- true;
    t.busy_until <- Time.add (El_sim.Engine.now t.engine) t.write_time;
    emit t (El_obs.Event.Log_write_start { gen = t.label });
    El_sim.Engine.schedule_after t.engine t.write_time (fun () ->
        t.completed <- t.completed + 1;
        emit t (El_obs.Event.Log_write_done { gen = t.label });
        on_complete ();
        start_next t)

let write t ~on_complete =
  if in_flight t >= t.buffer_pool then t.overflows <- t.overflows + 1;
  t.started <- t.started + 1;
  if in_flight t > t.peak then t.peak <- in_flight t;
  Queue.add on_complete t.queue;
  if not t.busy then start_next t

let writes_started t = t.started
let writes_completed t = t.completed
let peak_in_flight t = t.peak
let pool_overflows t = t.overflows

let quiesce_time t =
  if not t.busy then El_sim.Engine.now t.engine
  else
    (* One write in service finishing at [busy_until], the rest queued
       behind it. *)
    Time.add t.busy_until (Time.mul_int t.write_time (Queue.length t.queue))
