(** The stable (disk) version of the database.

    The paper keeps a stable database version elsewhere on disk; the
    log only needs to retain enough information to bring it forward to
    the most recent committed state.  For the algorithms all that
    matters is, per object, the version number last flushed, so that
    is what we store.  Recovery (and its property tests) replay the
    surviving log on top of this map and compare with the reference
    committed state. *)

open El_model

type t

val create : num_objects:int -> t

val of_pairs : num_objects:int -> (Ids.Oid.t * int) list -> t
(** A stable DB rebuilt from persisted install facts — the highest
    version wins per oid, as in {!apply}.  Used when reconstructing a
    crash image from a store scan. *)

val apply : t -> Ids.Oid.t -> version:int -> unit
(** Records that [version] of [oid] is now durable in the stable
    version.  Versions are monotone per object: applying an older
    version than the one present is ignored (idempotent redo). *)

val version : t -> Ids.Oid.t -> int option
(** Last flushed version, or [None] if never written. *)

val objects_written : t -> int

val snapshot : t -> (Ids.Oid.t * int) list
(** All (oid, version) pairs, in unspecified order. *)

val copy : t -> t
(** An independent copy — used to capture the stable state at a
    simulated crash point. *)

val equal : t -> t -> bool
