open El_model

type t = { num_objects : int; versions : int Ids.Oid.Table.t }

let create ~num_objects =
  if num_objects <= 0 then invalid_arg "Stable_db.create: no objects";
  { num_objects; versions = Ids.Oid.Table.create 1024 }

let apply t oid ~version =
  if Ids.Oid.to_int oid >= t.num_objects then
    invalid_arg "Stable_db.apply: oid out of range";
  match Ids.Oid.Table.find_opt t.versions oid with
  | Some v when v >= version -> ()
  | Some _ | None -> Ids.Oid.Table.replace t.versions oid version

let of_pairs ~num_objects pairs =
  let t = create ~num_objects in
  List.iter (fun (oid, version) -> apply t oid ~version) pairs;
  t

let version t oid = Ids.Oid.Table.find_opt t.versions oid
let objects_written t = Ids.Oid.Table.length t.versions

let snapshot t =
  Ids.Oid.Table.fold (fun oid v acc -> (oid, v) :: acc) t.versions []

let copy t =
  { num_objects = t.num_objects; versions = Ids.Oid.Table.copy t.versions }

let equal a b =
  Ids.Oid.Table.length a.versions = Ids.Oid.Table.length b.versions
  && Ids.Oid.Table.fold
       (fun oid v acc ->
         acc && match Ids.Oid.Table.find_opt b.versions oid with
           | Some w -> v = w
           | None -> false)
       a.versions true
