(** The array of disk drives holding the stable database version, to
    which committed updates are flushed (§3).

    Objects are range-partitioned evenly over [drives] drives; each
    drive serves at most one request at a time, each taking a fixed
    [transfer_time].  A drive picks its next request to minimise the
    wrapped oid distance from the object it last wrote — the paper's
    access-time proxy — and the mean of those distances is the
    flush-locality statistic reported in §4 (≈250k/4 of a 10⁶-object
    partition when requests are sparse, dropping as a backlog builds
    and the negative-feedback effect improves locality).

    Requests are keyed by oid: re-requesting an oid that is still
    pending replaces the pending version (a newer committed update
    supersedes the older one before it was flushed). *)

open El_model

type t

(** Drive scheduling discipline: the paper's shortest-wrapped-distance
    policy, or plain FIFO as an ablation baseline (no locality
    feedback). *)
type scheduling = Nearest | Fifo

(** How the next request is found.  [Indexed] (the default) keeps each
    drive's backlog in balanced maps — by oid for the elevator pick,
    by arrival seq for FIFO — so every pick is O(log B).  [Reference]
    is the retained linear rescan of the whole backlog (O(B) per
    pick), kept as the differential-testing baseline and as the
    benchmark reference.  Both follow the same normalized order:
    forced first, then the discipline's key, ties to the earlier
    arrival — so they agree request-for-request. *)
type implementation = Indexed | Reference

val create :
  El_sim.Engine.t ->
  drives:int ->
  transfer_time:Time.t ->
  num_objects:int ->
  ?scheduling:scheduling ->
  ?implementation:implementation ->
  ?obs:El_obs.Obs.t ->
  ?fault:El_fault.Injector.t ->
  ?store:El_store.Log_store.t ->
  unit ->
  t
(** Raises [Invalid_argument] unless [drives > 0],
    [num_objects mod drives = 0] (the paper ignores the ragged case)
    and [transfer_time > Time.zero].  [scheduling] defaults to
    [Nearest], [implementation] to [Indexed].  With [obs], the
    request/start/done lifecycle of every flush is traced, seek
    distances feed the ["flush.oid_distance"] histogram and every
    scheduling decision bumps the ["flush.picks"] counter.  With
    [fault], each drive [i] resolves every transfer against the plan's
    [Flush_drive i] schedule: retries and latency windows stretch the
    transfer, remaps burn spares.  Torn verdicts are inert here — the
    stable version only changes at transfer completion, so an
    interrupted transfer leaves the old consistent image.  With
    [store], each completed transfer appends a durable stable-install
    fact ({!El_store.Log_store.append_stable}) {e before} the
    {!set_on_flush} hook lets the log record become garbage. *)

val set_on_flush : t -> (Ids.Oid.t -> version:int -> unit) -> unit
(** Installs the completion callback (the log manager's "record is now
    garbage" transition).  Must be called before the first request. *)

val add_flush_observer : t -> (Ids.Oid.t -> version:int -> unit) -> unit
(** Registers a passive completion observer, called after the owner's
    {!set_on_flush} callback, in registration order.  Observers are
    instrumentation — the spec oracle's flush-completion feed — and
    must not mutate the manager.  Like {!set_on_flush}, register
    before the first request. *)

val request : t -> Ids.Oid.t -> version:int -> unit
(** Asks for [oid]'s committed update to be written to the stable
    version.  If a request for the same oid is already pending it is
    superseded in place (only the newest committed version needs to
    reach disk).  Raises [Invalid_argument] if the oid is out of
    range. *)

val request_forced : t -> Ids.Oid.t -> version:int -> unit
(** A forced flush: served before locality-scheduled requests.  Models
    the naive policy in which a committed update reaching the head of
    a generation must be written out immediately, causing random I/O
    (§2.2).  Counted separately in {!forced_flushes}. *)

val is_pending : t -> Ids.Oid.t -> bool

val pending : t -> int
(** Requests accepted but not yet completed (the flush backlog). *)

val peak_backlog : t -> int
val flushes_completed : t -> int
val forced_flushes : t -> int
val superseded : t -> int
(** Requests replaced in place before being serviced. *)

val picks : t -> int
(** Scheduling decisions taken (one per dispatch attempt, including
    the one that finds the backlog empty).  Each pick costs O(log B)
    under [Indexed] and O(B) under [Reference]. *)

val mean_distance : t -> float
(** Mean wrapped oid distance between successively flushed objects on
    the same drive (§4's locality metric). *)

val distance_stat : t -> El_metrics.Running_stat.t

val max_rate_per_sec : t -> float
(** The array's aggregate service capacity, drives / transfer_time. *)

val drain_time : t -> Time.t
(** Simulated time by which the current backlog will have been fully
    served, assuming no further arrivals. *)

val check_invariants : t -> unit
(** Cross-checks the elevator indexes against the pending table: every
    pending request appears in exactly one class index, under both the
    by-oid and by-seq keys.  A no-op under [Reference]. *)
