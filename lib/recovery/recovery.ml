open El_model

type sealed = { payload : Log_record.t; stamp : int }

(* A stand-in for a per-record CRC over the serialized bytes: an
   explicit integer mix of every field, so that any corruption the
   tests (or the torn-write model) introduce changes the stamp.  The
   simulation never serializes records, so the mix is over the logical
   fields directly. *)
let checksum (r : Log_record.t) =
  let kind_tag, oid, version =
    match r.Log_record.kind with
    | Log_record.Begin -> (1, 0, 0)
    | Log_record.Commit -> (2, 0, 0)
    | Log_record.Abort -> (3, 0, 0)
    | Log_record.Data { oid; version } -> (4, Ids.Oid.to_int oid, version)
  in
  let mix acc x = (acc * 0x01000193) lxor (x land max_int) in
  List.fold_left mix 0x811c9dc5
    [
      Ids.Tid.to_int r.Log_record.tid;
      kind_tag;
      oid;
      version;
      r.Log_record.size;
      Time.to_us r.Log_record.timestamp;
    ]

let seal payload = { payload; stamp = checksum payload }
let corrupt_seal payload = { payload; stamp = lnot (checksum payload) }
let seal_valid s = s.stamp = checksum s.payload

type image = {
  blocks : sealed list list;
  stable : El_disk.Stable_db.t;
  reference : (Ids.Oid.t * int) list;
  crash_time : Time.t;
}

let crash engine manager =
  let module M = El_core.El_manager in
  let durable = M.durable_blocks manager in
  let blocks =
    List.map
      (fun (db : M.durable_block) ->
        match db.M.db_torn_prefix with
        | None -> List.map seal db.M.db_records
        | Some k ->
          (* The torn write persisted the first [k] records intact;
             the suffix hit the platter garbled, so its checksums
             cannot validate. *)
          List.mapi
            (fun i r -> if i < k then seal r else corrupt_seal r)
            db.M.db_records)
      durable
  in
  let reference =
    let acked = M.committed_reference manager in
    (* The manager's reference tracks ACKED commits, but the
       durability point is the platter: a COMMIT record that persisted
       inside a torn prefix commits its transaction even though the
       block never completed and the ack never fired.  (The channel is
       FIFO, so every data record such a transaction logged is in an
       earlier — completed — block or earlier in the same prefix:
       recovering it whole is always possible.)  Fold those
       transactions' durable writes into the ground truth. *)
    let torn_committed = Hashtbl.create 4 in
    List.iter
      (fun (db : M.durable_block) ->
        match db.M.db_torn_prefix with
        | None -> ()
        | Some k ->
          List.iteri
            (fun i (r : Log_record.t) ->
              if i < k then
                match r.Log_record.kind with
                | Log_record.Commit ->
                  Hashtbl.replace torn_committed
                    (Ids.Tid.to_int r.Log_record.tid)
                    ()
                | Log_record.Begin | Log_record.Abort | Log_record.Data _ ->
                  ())
            db.M.db_records)
      durable;
    if Hashtbl.length torn_committed = 0 then acked
    else begin
      let best = Ids.Oid.Table.create 64 in
      List.iter
        (fun (db : M.durable_block) ->
          let persisted =
            match db.M.db_torn_prefix with
            | Some k -> k
            | None -> List.length db.M.db_records
          in
          List.iteri
            (fun i (r : Log_record.t) ->
              if i < persisted then
                match r.Log_record.kind with
                | Log_record.Data { oid; version }
                  when Hashtbl.mem torn_committed
                         (Ids.Tid.to_int r.Log_record.tid) -> (
                  match Ids.Oid.Table.find_opt best oid with
                  | Some v when v >= version -> ()
                  | Some _ | None -> Ids.Oid.Table.replace best oid version)
                | _ -> ())
            db.M.db_records)
        durable;
      let seen = Ids.Oid.Table.create 64 in
      let merged =
        List.map
          (fun (oid, v) ->
            Ids.Oid.Table.replace seen oid ();
            match Ids.Oid.Table.find_opt best oid with
            | Some w when w > v -> (oid, w)
            | Some _ | None -> (oid, v))
          acked
      in
      Ids.Oid.Table.fold
        (fun oid w acc ->
          if Ids.Oid.Table.mem seen oid then acc else (oid, w) :: acc)
        best merged
    end
  in
  {
    blocks;
    stable = El_disk.Stable_db.copy (M.stable manager);
    reference;
    crash_time = El_sim.Engine.now engine;
  }

type result = {
  recovered : El_disk.Stable_db.t;
  committed_tids : Ids.Tid.t list;
  records_scanned : int;
  redo_applied : int;
  redo_skipped : int;
  torn_blocks : int;
  torn_records : int;
}

(* A block is valid up to its first failing checksum: writes are
   sequential within a block, so a torn write garbles a suffix, and
   anything past the first bad stamp is untrustworthy even if a later
   stamp happens to validate. *)
let valid_prefix sealed_block =
  let rec take acc n = function
    | s :: rest when seal_valid s -> take (s.payload :: acc) n rest
    | rest -> (List.rev acc, List.length rest + n)
  in
  take [] 0 sealed_block

let recover ?obs image =
  let torn_blocks = ref 0 in
  let torn_records = ref 0 in
  let records =
    List.concat_map
      (fun block ->
        let kept, discarded = valid_prefix block in
        if discarded > 0 then begin
          incr torn_blocks;
          torn_records := !torn_records + discarded
        end;
        kept)
      image.blocks
  in
  (* Pass 1 within the single scan: the committed transaction set is
     known once every record has been seen, so we fold the scan into a
     table first and then redo — still one read of the log. *)
  let committed = Ids.Tid.Table.create 1024 in
  let scanned = ref 0 in
  List.iter
    (fun (r : Log_record.t) ->
      incr scanned;
      match r.kind with
      | Log_record.Commit -> Ids.Tid.Table.replace committed r.tid ()
      | Log_record.Begin | Log_record.Abort | Log_record.Data _ -> ())
    records;
  let recovered = El_disk.Stable_db.copy image.stable in
  let applied = ref 0 in
  let skipped = ref 0 in
  List.iter
    (fun (r : Log_record.t) ->
      match r.kind with
      | Log_record.Data { oid; version } when Ids.Tid.Table.mem committed r.tid
        ->
        let newer =
          match El_disk.Stable_db.version recovered oid with
          | Some v -> version > v
          | None -> true
        in
        if newer then begin
          El_disk.Stable_db.apply recovered oid ~version;
          incr applied
        end
        else incr skipped
      | Log_record.Data _ | Log_record.Begin | Log_record.Commit
      | Log_record.Abort ->
        incr skipped)
    records;
  (match obs with
  | None -> ()
  | Some o ->
    (* Recovery happens conceptually at the crash instant; stamping
       the scan there keeps the trace timeline consistent even when
       the image is replayed later (or never) in wall-run order. *)
    El_obs.Obs.emit_at o ~at:image.crash_time El_obs.Event.Recovery
      (El_obs.Event.Recovery_scan
         { records = !scanned; applied = !applied; skipped = !skipped });
    if !torn_blocks > 0 then
      El_obs.Obs.emit_at o ~at:image.crash_time El_obs.Event.Recovery
        (El_obs.Event.Torn_discard
           { blocks = !torn_blocks; records = !torn_records }));
  {
    recovered;
    committed_tids =
      Ids.Tid.Table.fold (fun tid () acc -> tid :: acc) committed [];
    records_scanned = !scanned;
    redo_applied = !applied;
    redo_skipped = !skipped;
    torn_blocks = !torn_blocks;
    torn_records = !torn_records;
  }

(* ---- recovery from a store image ---- *)

(* A discarded store entry decoded to nothing — the scan already
   established its checksum failed, so any corrupt seal stands in for
   it; recovery only counts it as torn. *)
let discarded_placeholder =
  Log_record.abort ~tid:(Ids.Tid.of_int 0) ~size:1 ~timestamp:Time.zero

let image_of_scan ~num_objects ?(reference = [])
    (s : El_store.Log_store.scan) =
  let blocks =
    List.map
      (fun (b : El_store.Log_store.block) ->
        List.map seal b.El_store.Log_store.sb_records
        @ List.init b.El_store.Log_store.sb_discarded (fun _ ->
              corrupt_seal discarded_placeholder))
      s.El_store.Log_store.s_blocks
  in
  {
    blocks;
    stable =
      El_disk.Stable_db.of_pairs ~num_objects s.El_store.Log_store.s_stable;
    reference;
    crash_time = Time.zero;
  }

let recover_store ?obs ?upto ~num_objects backend =
  let s = El_store.Log_store.scan ?upto backend in
  recover ?obs (image_of_scan ~num_objects s)

type audit = {
  ok : bool;
  missing : (Ids.Oid.t * int) list;
  spurious : (Ids.Oid.t * int) list;
}

let audit image result =
  let reference = Ids.Oid.Table.create 1024 in
  List.iter
    (fun (oid, v) -> Ids.Oid.Table.replace reference oid v)
    image.reference;
  let missing =
    List.filter
      (fun (oid, v) ->
        match El_disk.Stable_db.version result.recovered oid with
        | Some w -> w <> v
        | None -> true)
      image.reference
  in
  let spurious =
    List.filter
      (fun (oid, v) ->
        match Ids.Oid.Table.find_opt reference oid with
        | Some w -> w <> v
        | None -> true)
      (El_disk.Stable_db.snapshot result.recovered)
  in
  { ok = missing = [] && spurious = []; missing; spurious }

let pp_audit ppf a =
  if a.ok then Format.pp_print_string ppf "recovery audit: OK"
  else
    Format.fprintf ppf
      "recovery audit: FAILED (%d committed updates missing, %d spurious)"
      (List.length a.missing) (List.length a.spurious)
