open El_model

type image = {
  records : Log_record.t list;
  stable : El_disk.Stable_db.t;
  reference : (Ids.Oid.t * int) list;
  crash_time : Time.t;
}

let crash engine manager =
  {
    records = El_core.El_manager.durable_records manager;
    stable = El_disk.Stable_db.copy (El_core.El_manager.stable manager);
    reference = El_core.El_manager.committed_reference manager;
    crash_time = El_sim.Engine.now engine;
  }

type result = {
  recovered : El_disk.Stable_db.t;
  committed_tids : Ids.Tid.t list;
  records_scanned : int;
  redo_applied : int;
  redo_skipped : int;
}

let recover ?obs image =
  (* Pass 1 within the single scan: the committed transaction set is
     known once every record has been seen, so we fold the scan into a
     table first and then redo — still one read of the log. *)
  let committed = Ids.Tid.Table.create 1024 in
  let scanned = ref 0 in
  List.iter
    (fun (r : Log_record.t) ->
      incr scanned;
      match r.kind with
      | Log_record.Commit -> Ids.Tid.Table.replace committed r.tid ()
      | Log_record.Begin | Log_record.Abort | Log_record.Data _ -> ())
    image.records;
  let recovered = El_disk.Stable_db.copy image.stable in
  let applied = ref 0 in
  let skipped = ref 0 in
  List.iter
    (fun (r : Log_record.t) ->
      match r.kind with
      | Log_record.Data { oid; version } when Ids.Tid.Table.mem committed r.tid
        ->
        let newer =
          match El_disk.Stable_db.version recovered oid with
          | Some v -> version > v
          | None -> true
        in
        if newer then begin
          El_disk.Stable_db.apply recovered oid ~version;
          incr applied
        end
        else incr skipped
      | Log_record.Data _ | Log_record.Begin | Log_record.Commit
      | Log_record.Abort ->
        incr skipped)
    image.records;
  (match obs with
  | None -> ()
  | Some o ->
    (* Recovery happens conceptually at the crash instant; stamping
       the scan there keeps the trace timeline consistent even when
       the image is replayed later (or never) in wall-run order. *)
    El_obs.Obs.emit_at o ~at:image.crash_time El_obs.Event.Recovery
      (El_obs.Event.Recovery_scan
         { records = !scanned; applied = !applied; skipped = !skipped }));
  {
    recovered;
    committed_tids =
      Ids.Tid.Table.fold (fun tid () acc -> tid :: acc) committed [];
    records_scanned = !scanned;
    redo_applied = !applied;
    redo_skipped = !skipped;
  }

type audit = {
  ok : bool;
  missing : (Ids.Oid.t * int) list;
  spurious : (Ids.Oid.t * int) list;
}

let audit image result =
  let reference = Ids.Oid.Table.create 1024 in
  List.iter
    (fun (oid, v) -> Ids.Oid.Table.replace reference oid v)
    image.reference;
  let missing =
    List.filter
      (fun (oid, v) ->
        match El_disk.Stable_db.version result.recovered oid with
        | Some w -> w <> v
        | None -> true)
      image.reference
  in
  let spurious =
    List.filter
      (fun (oid, v) ->
        match Ids.Oid.Table.find_opt reference oid with
        | Some w -> w <> v
        | None -> true)
      (El_disk.Stable_db.snapshot result.recovered)
  in
  { ok = missing = [] && spurious = []; missing; spurious }

let pp_audit ppf a =
  if a.ok then Format.pp_print_string ppf "recovery audit: OK"
  else
    Format.fprintf ppf
      "recovery audit: FAILED (%d committed updates missing, %d spurious)"
      (List.length a.missing) (List.length a.spurious)
