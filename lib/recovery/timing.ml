open El_model

type cost_model = {
  positioning : Time.t;
  per_block : Time.t;
  per_record : Time.t;
}

let default =
  { positioning = Time.of_ms 15; per_block = Time.of_ms 1; per_record = Time.of_us 20 }

let single_pass ?(model = default) ~regions ~blocks ~records () =
  if regions < 0 || blocks < 0 || records < 0 then
    invalid_arg "Timing.single_pass: negative inputs";
  Time.add
    (Time.add
       (Time.mul_int model.positioning regions)
       (Time.mul_int model.per_block blocks))
    (Time.mul_int model.per_record records)

let estimate ?(model = default) (image : Recovery.image)
    (result : Recovery.result) =
  (* records per 2000-byte block is what the image actually held *)
  let blocks =
    (* conservative: assume the mean record was 100 bytes when the
       image does not say; derive from actual sizes instead *)
    let bytes =
      List.fold_left
        (fun acc block ->
          List.fold_left
            (fun acc (s : Recovery.sealed) ->
              acc + s.Recovery.payload.Log_record.size)
            acc block)
        0 image.Recovery.blocks
    in
    (bytes + Params.block_payload - 1) / Params.block_payload
  in
  single_pass ~model ~regions:2 ~blocks
    ~records:result.Recovery.records_scanned ()

let fw_two_pass ?(model = default) ~blocks ~records () =
  single_pass ~model ~regions:2 ~blocks:(2 * blocks) ~records:(2 * records) ()

let pp ppf t = Format.fprintf ppf "%.1f ms" (Time.to_sec_f t *. 1000.0)
