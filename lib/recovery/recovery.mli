(** Single-pass recovery for an ephemeral log.

    The paper argues (§4, and its companion report [9]) that because
    EL keeps the log tiny, the whole log can be read into memory and
    recovery performed in a single pass, instead of the traditional
    two-pass undo/redo.  This module implements that pass and the
    machinery the tests use to validate it:

    - a {!crash} captures what would survive a failure at an instant:
      every durable log block (including stale copies in freed slots —
      a real scan cannot tell them apart) and the stable database
      version as of the completed flushes.  Records are captured
      {e sealed} — stamped with a per-record checksum standing in for
      the CRC a real log would store — and a block whose write was
      torn by the crash carries valid stamps only on the prefix that
      reached the platter;
    - {!recover} replays the image: each block is trusted up to its
      first failing checksum (writes are sequential within a block, so
      everything past the first bad stamp is garbage), torn tails are
      discarded and counted; then a transaction is committed iff a
      COMMIT record of it survives, and for every object the newest
      committed version wins (version numbers order updates even when
      recirculation has shuffled physical order, standing in for the
      paper's timestamps); redo is idempotent on the stable version;
    - {!audit} compares the recovered database with the reference
      committed state captured alongside the crash image.

    Recovery time is proportional to the records scanned, which is why
    the paper equates less disk space with faster recovery; {!stats}
    reports the scan size so benchmarks can quantify that claim. *)

open El_model

type sealed = { payload : Log_record.t; stamp : int }
(** One on-disk record with its checksum stamp as a crash would read
    them.  [stamp = checksum payload] iff the record persisted
    intact. *)

val checksum : Log_record.t -> int
(** Deterministic mix of every logical field — the simulation's stand-
    in for a CRC over the serialized bytes. *)

val seal : Log_record.t -> sealed
(** A validly stamped record. *)

val corrupt_seal : Log_record.t -> sealed
(** A record whose stamp cannot validate — what a torn or corrupted
    sector reads back as.  Exposed for negative tests. *)

val seal_valid : sealed -> bool

type image = {
  blocks : sealed list list;
      (** every durable block's sealed records, in on-disk order
          within each block; block order is immaterial *)
  stable : El_disk.Stable_db.t;  (** stable version at the crash point *)
  reference : (Ids.Oid.t * int) list;
      (** ground truth: newest durably-committed version per object *)
  crash_time : Time.t;
}

val crash : El_sim.Engine.t -> El_core.El_manager.t -> image
(** Captures the crash image of an EL-managed log, now.  A block write
    in service with a torn fault verdict persists only its prefix:
    the suffix is captured with corrupt seals, replacing whatever the
    slot durably held before.

    The [reference] is the manager's acked committed state, adjusted
    for the durability point: a transaction whose COMMIT record
    persisted inside a torn prefix is committed even though its ack
    never fired, so its durable writes are folded in (channel FIFO
    order guarantees they all persisted). *)

type result = {
  recovered : El_disk.Stable_db.t;  (** the database after redo *)
  committed_tids : Ids.Tid.t list;
  records_scanned : int;  (** checksum-valid records scanned *)
  redo_applied : int;  (** data records whose version won *)
  redo_skipped : int;  (** stale copies, uncommitted or aborted records *)
  torn_blocks : int;  (** blocks with a discarded (invalid) tail *)
  torn_records : int;  (** records discarded from torn tails *)
}

val recover : ?obs:El_obs.Obs.t -> image -> result
(** The single pass: validate checksums (each block trusted up to its
    first failing stamp), scan, determine the committed transaction
    set, redo newest committed versions onto a copy of the stable
    version.  With [obs], emits a [Recovery_scan] trace event — plus a
    [Torn_discard] event when any tail was dropped — stamped at the
    image's crash time. *)

val image_of_scan :
  num_objects:int ->
  ?reference:(Ids.Oid.t * int) list ->
  El_store.Log_store.scan ->
  image
(** Lifts a durable-store scan into a crash image: each surviving
    block's valid records are sealed, its discarded (bad-checksum)
    entries become corrupt seals so the torn counters match a
    simulated crash of the same state, and the stable version is
    rebuilt from the persisted install facts.  [reference] defaults to
    empty — a real restart has no ground truth; pass one to {!audit}
    against in-simulation expectations.  [crash_time] is {!Time.zero}:
    a scanned image carries no clock. *)

val recover_store :
  ?obs:El_obs.Obs.t ->
  ?upto:int ->
  num_objects:int ->
  El_store.Backend.t ->
  result
(** Scans the backend and runs {!recover} on the resulting image — the
    real-restart path.  [upto] bounds the scan at a crash mark
    ({!El_core.El_manager.persist_crash_mark}), replaying the image as
    it stood at that instant. *)

type audit = {
  ok : bool;
  missing : (Ids.Oid.t * int) list;
      (** committed versions absent or stale in the recovered state *)
  spurious : (Ids.Oid.t * int) list;
      (** recovered versions that were never durably committed *)
}

val audit : image -> result -> audit
(** Compares against the image's reference.  [ok] is atomicity and
    durability in one bit: every durably-committed update recovered,
    nothing else. *)

val pp_audit : Format.formatter -> audit -> unit
