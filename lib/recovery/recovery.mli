(** Single-pass recovery for an ephemeral log.

    The paper argues (§4, and its companion report [9]) that because
    EL keeps the log tiny, the whole log can be read into memory and
    recovery performed in a single pass, instead of the traditional
    two-pass undo/redo.  This module implements that pass and the
    machinery the tests use to validate it:

    - a {!crash} captures what would survive a failure at an instant:
      every durable log block (including stale copies in freed slots —
      a real scan cannot tell them apart) and the stable database
      version as of the completed flushes;
    - {!recover} replays the image: a transaction is committed iff a
      COMMIT record of it is durable; for every object the newest
      committed version wins (version numbers order updates even when
      recirculation has shuffled physical order, standing in for the
      paper's timestamps); redo is idempotent on the stable version;
    - {!audit} compares the recovered database with the reference
      committed state captured alongside the crash image.

    Recovery time is proportional to the records scanned, which is why
    the paper equates less disk space with faster recovery; {!stats}
    reports the scan size so benchmarks can quantify that claim. *)

open El_model

type image = {
  records : Log_record.t list;  (** every durable record, any order *)
  stable : El_disk.Stable_db.t;  (** stable version at the crash point *)
  reference : (Ids.Oid.t * int) list;
      (** ground truth: newest durably-committed version per object *)
  crash_time : Time.t;
}

val crash : El_sim.Engine.t -> El_core.El_manager.t -> image
(** Captures the crash image of an EL-managed log, now. *)

type result = {
  recovered : El_disk.Stable_db.t;  (** the database after redo *)
  committed_tids : Ids.Tid.t list;
  records_scanned : int;
  redo_applied : int;  (** data records whose version won *)
  redo_skipped : int;  (** stale copies, uncommitted or aborted records *)
}

val recover : ?obs:El_obs.Obs.t -> image -> result
(** The single pass: scan, determine the committed transaction set,
    redo newest committed versions onto a copy of the stable
    version.  With [obs], emits a [Recovery_scan] trace event stamped
    at the image's crash time. *)

type audit = {
  ok : bool;
  missing : (Ids.Oid.t * int) list;
      (** committed versions absent or stale in the recovered state *)
  spurious : (Ids.Oid.t * int) list;
      (** recovered versions that were never durably committed *)
}

val audit : image -> result -> audit
(** Compares against the image's reference.  [ok] is atomicity and
    durability in one bit: every durably-committed update recovered,
    nothing else. *)

val pp_audit : Format.formatter -> audit -> unit
