open El_model

type t = {
  name : string;
  description : string;
  mix : Mix.t;
  arrival : Arrival.process;
  draw : Draw.t;
  lifetime : Lifetime.t;
  max_retries : int;
  retry_backoff : Time.t;
  space_factor : float;
      (* log-space appetite relative to the paper's standard mix:
         sweeps that use the standard manager geometries scale them by
         this factor, the paper's own discipline of sizing the log to
         the offered load (multi-size mixes carry ~2x the bytes per
         transaction and Pareto tails stretch residency further) *)
}

(* The paper's two-type shape, scaled to the check-sized runs the
   conformance matrix sweeps (short 400 ms, long 4 s) — the same
   proportions as [El_check.Sweep.standard_mix], so the [uniform]
   preset swept at 40 TPS is exactly the polite traffic PRs 1–7 were
   proven on. *)
let standard_mix () =
  Mix.create
    [
      Tx_type.make ~name:"short" ~probability:0.9 ~duration:(Time.of_ms 400)
        ~num_records:2 ~record_size:100;
      Tx_type.make ~name:"long" ~probability:0.1 ~duration:(Time.of_sec 4)
        ~num_records:4 ~record_size:100;
    ]

(* Record sizes spanning 25x, still averaging near the paper's 100 B
   so the standard generation sizing stays in reach. *)
let multi_size_mix () =
  Mix.create
    [
      Tx_type.make ~name:"tiny" ~probability:0.4 ~duration:(Time.of_ms 300)
        ~num_records:2 ~record_size:32;
      Tx_type.make ~name:"mid" ~probability:0.4 ~duration:(Time.of_ms 600)
        ~num_records:2 ~record_size:100;
      Tx_type.make ~name:"fat" ~probability:0.15 ~duration:(Time.of_sec 2)
        ~num_records:3 ~record_size:400;
      Tx_type.make ~name:"bulk" ~probability:0.05 ~duration:(Time.of_sec 3)
        ~num_records:4 ~record_size:800;
    ]

let uniform =
  {
    name = "uniform";
    description =
      "the paper's polite traffic: deterministic arrivals, uniform oid \
       drawing, fixed lifetimes";
    mix = standard_mix ();
    arrival = Arrival.Deterministic;
    draw = Draw.Uniform;
    lifetime = Lifetime.Fixed;
    max_retries = 0;
    retry_backoff = Time.of_ms 20;
    space_factor = 1.0;
  }

let zipf =
  {
    name = "zipf";
    description =
      "hot-key skew: Zipfian(0.9) oid drawing with contention aborts and \
       seeded-backoff retries";
    mix = standard_mix ();
    arrival = Arrival.Deterministic;
    draw = Draw.Zipfian { theta = 0.9 };
    lifetime = Lifetime.Fixed;
    max_retries = 4;
    retry_backoff = Time.of_ms 20;
    space_factor = 1.0;
  }

let burst =
  {
    name = "burst";
    description =
      "bursty arrivals: ON/OFF-modulated Poisson (400 ms bursts at 4x \
       intensity, 1.2 s gaps), uniform drawing";
    mix = standard_mix ();
    arrival =
      Arrival.Burst
        {
          on_mean = Time.of_ms 400;
          off_mean = Time.of_ms 1200;
          intensity = 4.0;
        };
    draw = Draw.Uniform;
    lifetime = Lifetime.Fixed;
    max_retries = 0;
    retry_backoff = Time.of_ms 20;
    space_factor = 1.0;
  }

let contention =
  {
    name = "contention";
    description =
      "hot-key pile-up: Zipfian(0.99) drawing, long write-set holds, deep \
       retry budget — aborts and retries are the point";
    mix =
      Mix.create
        [
          Tx_type.make ~name:"short" ~probability:0.8
            ~duration:(Time.of_ms 600) ~num_records:3 ~record_size:100;
          Tx_type.make ~name:"long" ~probability:0.2 ~duration:(Time.of_sec 4)
            ~num_records:5 ~record_size:100;
        ];
    arrival = Arrival.Deterministic;
    draw = Draw.Zipfian { theta = 0.99 };
    lifetime = Lifetime.Fixed;
    max_retries = 8;
    retry_backoff = Time.of_ms 10;
    space_factor = 1.0;
  }

let longtail =
  {
    name = "longtail";
    description =
      "long-tail lifetimes (Pareto 1.3, capped 6x) over a multi-record-size \
       mix: stragglers pin log space while fat records burn it";
    mix = multi_size_mix ();
    arrival = Arrival.Poisson;
    draw = Draw.Uniform;
    lifetime = Lifetime.Pareto { alpha = 1.3; cap = 6.0 };
    max_retries = 0;
    retry_backoff = Time.of_ms 20;
    space_factor = 2.5;
  }

let storm =
  {
    name = "storm";
    description =
      "everything at once: bursts, Zipfian(0.9) contention with retries, \
       Pareto lifetimes, multi-size records";
    mix = multi_size_mix ();
    arrival =
      Arrival.Burst
        {
          on_mean = Time.of_ms 500;
          off_mean = Time.of_ms 1000;
          intensity = 3.0;
        };
    draw = Draw.Zipfian { theta = 0.9 };
    lifetime = Lifetime.Pareto { alpha = 1.5; cap = 4.0 };
    max_retries = 5;
    retry_backoff = Time.of_ms 15;
    space_factor = 3.0;
  }

let all = [ uniform; zipf; burst; contention; longtail; storm ]
let names = List.map (fun p -> p.name) all
let find name = List.find_opt (fun p -> p.name = name) all

let adversarial p = p.name <> "uniform"

let pp ppf p = Format.fprintf ppf "%s" p.name
