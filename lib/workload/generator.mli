(** The transaction workload driver (§3, Figure 3), grown into the
    adversarial-scenario engine.

    Transactions are initiated according to the arrival process
    (deterministic, Poisson or bursty ON/OFF — see {!Arrival}).  Each
    transaction draws its type from the mix, optionally stretches its
    lifetime by a long-tail {!Lifetime} draw, writes a BEGIN record
    immediately, its N data records at equal intervals of (T−ε)/N,
    and requests commit at T by writing a COMMIT record; it then
    waits for the log manager's group-commit acknowledgement.

    Oids are drawn under the no-two-active-writers constraint.  With
    the {!Draw.Uniform} policy the pool hides collisions by rejection
    sampling (the paper's model).  With {!Draw.Zipfian} the skewed
    distribution picks a specific object: a draw landing on another
    active writer's object {e aborts} the drawing transaction and,
    within [max_retries], relaunches it as a fresh transaction after
    a seeded exponential backoff — real contention, with per-run
    abort/retry accounting ({!contention_aborts}, {!retries}) and
    per-event hooks for the observability layer.

    The generator is connected to a log manager through the {!sink}
    record, and the manager reports kills back through {!kill}. *)

open El_model

(** The face a log manager presents to the workload. *)
type sink = {
  begin_tx : tid:Ids.Tid.t -> expected_duration:Time.t -> unit;
      (** a BEGIN tx record enters the log; [expected_duration] is the
          lifetime hint available to the §6 placement extension *)
  write_data :
    tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit;
      (** a data record enters the log *)
  request_commit : tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit;
      (** a COMMIT record enters the log; [on_ack] fires when it is
          durable (time t₄ of Figure 3) *)
  request_abort : tid:Ids.Tid.t -> unit;
      (** an ABORT record enters the log; all the transaction's
          records become garbage *)
}

type t

(** How transaction initiations are spaced — re-exported from
    {!Arrival} so existing [Deterministic]/[Poisson] call sites keep
    compiling.  The paper uses the deterministic pattern; [Poisson]
    and [Burst] serve the burstiness scenarios. *)
type arrival_process = Arrival.process =
  | Deterministic  (** every 1/rate seconds exactly *)
  | Poisson  (** exponential inter-arrival times with mean 1/rate *)
  | Burst of { on_mean : Time.t; off_mean : Time.t; intensity : float }
      (** ON/OFF-modulated Poisson bursts; see {!Arrival.process} *)

val create :
  El_sim.Engine.t ->
  sink:sink ->
  mix:Mix.t ->
  arrival_rate:float ->
  runtime:Time.t ->
  ?arrival_process:arrival_process ->
  ?epsilon:Time.t ->
  ?abort_fraction:float ->
  ?draw:Draw.t ->
  ?lifetime:Lifetime.t ->
  ?max_retries:int ->
  ?retry_backoff:Time.t ->
  ?on_contention:(tid:Ids.Tid.t -> oid:Ids.Oid.t -> attempt:int -> unit) ->
  ?on_retry:(tid:Ids.Tid.t -> attempt:int -> unit) ->
  num_objects:int ->
  unit ->
  t
(** Schedules the whole arrival process on the engine.  [arrival_rate]
    is transactions per second (100 in the paper); [runtime] bounds
    initiation times (retries whose backoff lands past it are
    dropped); [arrival_process] defaults to [Deterministic];
    [abort_fraction] (default 0) makes that fraction of transactions
    abort at the end of their lifetime instead of committing, for
    fault-injection tests; [draw] (default [Uniform]) selects the oid
    distribution; [lifetime] (default [Fixed]) the long-tail
    stretching; [max_retries] (default 0) bounds contention retries
    per original arrival; [retry_backoff] (default 20 ms) is the base
    of the exponential backoff, doubled per attempt plus seeded
    jitter.  [on_contention] fires at each contention abort and
    [on_retry] at each relaunch — observability hooks, never control
    flow. *)

val kill : t -> Ids.Tid.t -> unit
(** Called by the log manager when it kills a transaction (FW log
    full; EL record reaching the last head with recirculation off; or
    unrecirculatable record).  Cancels the transaction's remaining
    activity and releases its oids.  Idempotent; raises
    [Invalid_argument] for an unknown tid. *)

val oid_pool : t -> Oid_pool.t

(** Outcome counters, final and in-flight.  Conservation law, checked
    by a property test at every instant:
    [started = committed + aborted + killed + active + awaiting_ack]. *)

val started : t -> int
val committed : t -> int
(** Transactions whose commit has been acknowledged durable. *)

val aborted : t -> int
(** Includes contention aborts and [abort_fraction] aborts. *)

val killed : t -> int
val active : t -> int
(** Transactions begun, not yet terminated (commit requested counts as
    terminated, per the paper's footnote 1 definition of active). *)

val awaiting_ack : t -> int
val data_records_written : t -> int

val contention_aborts : t -> int
(** Transactions aborted because a skewed draw hit an active writer. *)

val retries : t -> int
(** Contention retries actually launched (each also counts in
    [started]). *)

val commit_latency : t -> El_metrics.Running_stat.t
(** Time from commit request (t₃) to acknowledgement (t₄), in
    simulated seconds. *)
