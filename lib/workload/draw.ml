open El_model

type t =
  | Uniform
  | Zipfian of { theta : float }

let name = function Uniform -> "uniform" | Zipfian _ -> "zipfian"

type drawer =
  | D_uniform
  | D_zipf of Zipf.t

let make t ~num_objects =
  match t with
  | Uniform -> D_uniform
  | Zipfian { theta } -> D_zipf (Zipf.create ~n:num_objects ~theta)

let candidate drawer rng =
  match drawer with
  | D_uniform -> None
  | D_zipf z -> Some (Ids.Oid.of_int (Zipf.next z rng))
