(** Object-identifier drawing under the paper's constraint (§3): an
    oid may be chosen for an update only if no transaction that is
    still active has already chosen it.

    The database has NUM_OBJECTS = 10⁷ objects while only a few
    hundred are in use at any instant, so rejection sampling from the
    engine's RNG terminates essentially immediately; the pool also
    tracks the per-object version counters used by recovery. *)

open El_model

type t

val create : num_objects:int -> t

val acquire : t -> Random.State.t -> Ids.Oid.t option
(** Draws a fresh oid not currently held by any active transaction
    and marks it held.  [None] only if every object is held (possible
    in stress tests with tiny databases). *)

val is_held : t -> Ids.Oid.t -> bool
(** Whether an active transaction currently holds the oid. *)

val claim : t -> Ids.Oid.t -> bool
(** Attempts to mark a {e specific} oid held — the skewed-draw path,
    where the drawing distribution (not the pool) picks the object.
    Returns [false], changing nothing, if an active writer already
    holds it; that collision is the contention signal the generator
    turns into an abort + retry.  Raises [Invalid_argument] for an
    oid outside the database. *)

val release : t -> Ids.Oid.t -> unit
(** Returns an oid to the free pool — when its transaction requests
    termination (commits) or is aborted/killed.  Raises
    [Invalid_argument] if the oid was not held. *)

val next_version : t -> Ids.Oid.t -> int
(** Increments and returns the object's version counter; each data
    record carries the version it installs. *)

val in_use : t -> int
val num_objects : t -> int
