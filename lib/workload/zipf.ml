(* Zipfian rank generator after Gray et al., "Quickly Generating
   Billion-Record Synthetic Databases" (SIGMOD 1994) — the same
   rejection-free construction YCSB uses.  The harmonic normaliser
   zeta(n, theta) is computed once at creation; every draw is then a
   single uniform variate and a handful of float operations, so the
   drawer adds O(1) work to the generator's hot path. *)

type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
  half_pow_theta : float;
}

let zeta ~n ~theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: empty domain";
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta outside (0, 1)";
  let zetan = zeta ~n ~theta in
  let zeta2 = zeta ~n:2 ~theta in
  let fn = float_of_int n in
  {
    n;
    theta;
    zetan;
    alpha = 1.0 /. (1.0 -. theta);
    eta =
      (1.0 -. ((2.0 /. fn) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan));
    half_pow_theta = 0.5 ** theta;
  }

let next t rng =
  let u = Random.State.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. t.half_pow_theta then 1
  else
    let rank =
      int_of_float
        (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
    in
    (* float rounding can graze the upper edge *)
    if rank >= t.n then t.n - 1 else rank

let n t = t.n
let theta t = t.theta

(* Exact rank-frequency law, for the goodness-of-fit tests: the
   probability of rank [r] (0-based) is r+1 ^ -theta / zeta(n). *)
let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank";
  (float_of_int (rank + 1) ** -.t.theta) /. t.zetan
