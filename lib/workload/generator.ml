open El_model

type sink = {
  begin_tx : tid:Ids.Tid.t -> expected_duration:Time.t -> unit;
  write_data :
    tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit;
  request_commit : tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit;
  request_abort : tid:Ids.Tid.t -> unit;
}

type tx_state = Running | Commit_wait | Done | Aborted | Killed

type tx = {
  tid : Ids.Tid.t;
  ty : Tx_type.t;  (** duration already scaled by the lifetime draw *)
  attempt : int;  (** 0 for a fresh arrival, k for its k-th retry *)
  mutable state : tx_state;
  mutable held_oids : Ids.Oid.t list;
  mutable commit_requested_at : Time.t;
}

type t = {
  engine : El_sim.Engine.t;
  sink : sink;
  pool : Oid_pool.t;
  drawer : Draw.drawer;
  lifetime : Lifetime.t;
  epsilon : Time.t;
  abort_fraction : float;
  max_retries : int;
  retry_backoff : Time.t;
  runtime : Time.t;
  on_contention : tid:Ids.Tid.t -> oid:Ids.Oid.t -> attempt:int -> unit;
  on_retry : tid:Ids.Tid.t -> attempt:int -> unit;
  txs : tx Ids.Tid.Table.t;
  mutable next_tid : int;
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable killed : int;
  mutable active : int;
  mutable awaiting_ack : int;
  mutable data_records : int;
  mutable contention_aborts : int;
  mutable retries : int;
  latency : El_metrics.Running_stat.t;
}

let release_oids t tx =
  List.iter (fun oid -> Oid_pool.release t.pool oid) tx.held_oids;
  tx.held_oids <- []

let finish t tx =
  (* End of lifetime: release the write set (the transaction is no
     longer active once it requests termination), then commit or, for
     fault-injection runs, abort. *)
  release_oids t tx;
  let wants_abort =
    t.abort_fraction > 0.0
    && Random.State.float (El_sim.Engine.rng t.engine) 1.0 < t.abort_fraction
  in
  if wants_abort then begin
    tx.state <- Aborted;
    t.active <- t.active - 1;
    t.aborted <- t.aborted + 1;
    t.sink.request_abort ~tid:tx.tid
  end
  else begin
    tx.state <- Commit_wait;
    t.active <- t.active - 1;
    t.awaiting_ack <- t.awaiting_ack + 1;
    tx.commit_requested_at <- El_sim.Engine.now t.engine;
    t.sink.request_commit ~tid:tx.tid ~on_ack:(fun ack_time ->
        if tx.state = Commit_wait then begin
          tx.state <- Done;
          t.awaiting_ack <- t.awaiting_ack - 1;
          t.committed <- t.committed + 1;
          El_metrics.Running_stat.observe t.latency
            (Time.to_sec_f (Time.sub ack_time tx.commit_requested_at))
        end)
  end

(* Launches one transaction of the given (already lifetime-scaled)
   type and schedules its whole record timeline; shared by fresh
   arrivals and contention retries. *)
let rec launch t ty ~attempt =
  let tid = Ids.Tid.of_int t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let tx =
    {
      tid;
      ty;
      attempt;
      state = Running;
      held_oids = [];
      commit_requested_at = Time.zero;
    }
  in
  Ids.Tid.Table.replace t.txs tid tx;
  t.started <- t.started + 1;
  t.active <- t.active + 1;
  t.sink.begin_tx ~tid ~expected_duration:ty.Tx_type.duration;
  List.iter
    (fun offset ->
      El_sim.Engine.schedule_after t.engine offset (fun () ->
          if tx.state = Running then write_one_data_record t tx))
    (Tx_type.record_schedule ty ~epsilon:t.epsilon);
  El_sim.Engine.schedule_after t.engine (Tx_type.commit_offset ty) (fun () ->
      if tx.state = Running then finish t tx);
  tid

and write_one_data_record t tx =
  match Draw.candidate t.drawer (El_sim.Engine.rng t.engine) with
  | None -> (
    (* Uniform: the pool picks any free object; collisions are hidden
       by rejection sampling (the paper's §3 model). *)
    match Oid_pool.acquire t.pool (El_sim.Engine.rng t.engine) with
    | None -> ()  (* database fully held: drop the update (stress tests only) *)
    | Some oid -> write_record t tx oid)
  | Some oid ->
    (* Skewed draw: the distribution picked a specific object.  Our
       own write set may be re-updated freely; another active writer's
       object is a contention collision. *)
    if List.exists (fun o -> Ids.Oid.compare o oid = 0) tx.held_oids then begin
      let version = Oid_pool.next_version t.pool oid in
      t.data_records <- t.data_records + 1;
      t.sink.write_data ~tid:tx.tid ~oid ~version
        ~size:tx.ty.Tx_type.record_size
    end
    else if Oid_pool.claim t.pool oid then write_record t tx oid
    else contended t tx oid

and write_record t tx oid =
  tx.held_oids <- oid :: tx.held_oids;
  let version = Oid_pool.next_version t.pool oid in
  t.data_records <- t.data_records + 1;
  t.sink.write_data ~tid:tx.tid ~oid ~version ~size:tx.ty.Tx_type.record_size

(* A draw landed on another active writer's object: abort this
   transaction (its records become garbage, exactly like a
   fault-injection abort) and, within the retry budget, relaunch it
   as a fresh transaction after a seeded exponential backoff. *)
and contended t tx oid =
  t.contention_aborts <- t.contention_aborts + 1;
  t.on_contention ~tid:tx.tid ~oid ~attempt:tx.attempt;
  tx.state <- Aborted;
  release_oids t tx;
  t.active <- t.active - 1;
  t.aborted <- t.aborted + 1;
  t.sink.request_abort ~tid:tx.tid;
  if tx.attempt < t.max_retries then begin
    let base = Time.mul_int t.retry_backoff (1 lsl Stdlib.min tx.attempt 10) in
    let jitter =
      Arrival.exponential (El_sim.Engine.rng t.engine)
        ~mean:(Time.div_int base 2)
    in
    let backoff = Time.add base jitter in
    (* Retries never start past the end of arrivals: a backoff landing
       beyond the runtime is dropped, so the settled state of a sweep
       is not chasing stragglers born after the run ended. *)
    if Time.(Time.add (El_sim.Engine.now t.engine) backoff < t.runtime) then begin
      t.retries <- t.retries + 1;
      let attempt = tx.attempt + 1 in
      El_sim.Engine.schedule_after t.engine backoff (fun () ->
          let tid = launch t tx.ty ~attempt in
          t.on_retry ~tid ~attempt)
    end
  end

let scaled_type t ty =
  let s = Lifetime.scale t.lifetime (El_sim.Engine.rng t.engine) in
  if s = 1.0 then ty
  else
    {
      ty with
      Tx_type.duration =
        Time.of_sec_f (Time.to_sec_f ty.Tx_type.duration *. s);
    }

let start_tx t mix =
  let ty = scaled_type t (Mix.sample mix (El_sim.Engine.rng t.engine)) in
  ignore (launch t ty ~attempt:0)

type arrival_process = Arrival.process =
  | Deterministic
  | Poisson
  | Burst of { on_mean : Time.t; off_mean : Time.t; intensity : float }

let create engine ~sink ~mix ~arrival_rate ~runtime
    ?(arrival_process = Deterministic) ?(epsilon = Params.epsilon)
    ?(abort_fraction = 0.0) ?(draw = Draw.Uniform) ?(lifetime = Lifetime.Fixed)
    ?(max_retries = 0) ?(retry_backoff = Time.of_ms 20)
    ?(on_contention = fun ~tid:_ ~oid:_ ~attempt:_ -> ())
    ?(on_retry = fun ~tid:_ ~attempt:_ -> ()) ~num_objects () =
  if arrival_rate <= 0.0 then invalid_arg "Generator.create: zero rate";
  if abort_fraction < 0.0 || abort_fraction > 1.0 then
    invalid_arg "Generator.create: abort fraction outside [0,1]";
  if max_retries < 0 then invalid_arg "Generator.create: negative retries";
  if Time.(retry_backoff <= Time.zero) then
    invalid_arg "Generator.create: non-positive backoff";
  Lifetime.validate lifetime;
  let t =
    {
      engine;
      sink;
      pool = Oid_pool.create ~num_objects;
      drawer = Draw.make draw ~num_objects;
      lifetime;
      epsilon;
      abort_fraction;
      max_retries;
      retry_backoff;
      runtime;
      on_contention;
      on_retry;
      txs = Ids.Tid.Table.create 4096;
      next_tid = 0;
      started = 0;
      committed = 0;
      aborted = 0;
      killed = 0;
      active = 0;
      awaiting_ack = 0;
      data_records = 0;
      contention_aborts = 0;
      retries = 0;
      latency = El_metrics.Running_stat.create ~name:"commit latency (s)" ();
    }
  in
  let sampler = Arrival.create arrival_process ~rate:arrival_rate in
  let rec arrival at =
    if Time.(at < runtime) then
      El_sim.Engine.schedule_at engine at (fun () ->
          start_tx t mix;
          arrival (Time.add at (Arrival.next sampler (El_sim.Engine.rng engine))))
  in
  arrival Time.zero;
  t

let kill t tid =
  match Ids.Tid.Table.find_opt t.txs tid with
  | None -> invalid_arg "Generator.kill: unknown tid"
  | Some tx -> (
    match tx.state with
    | Killed -> ()
    | Running ->
      tx.state <- Killed;
      release_oids t tx;
      t.active <- t.active - 1;
      t.killed <- t.killed + 1
    | Commit_wait | Done | Aborted ->
      invalid_arg "Generator.kill: transaction is no longer active")

let oid_pool t = t.pool
let started t = t.started
let committed t = t.committed
let aborted t = t.aborted
let killed t = t.killed
let active t = t.active
let awaiting_ack t = t.awaiting_ack
let data_records_written t = t.data_records
let contention_aborts t = t.contention_aborts
let retries t = t.retries
let commit_latency t = t.latency
