(** Transaction inter-arrival sampling.

    The paper initiates transactions at regular intervals
    ([Deterministic]) and names probabilistic arrival models as future
    work; [Poisson] gives exponential gaps with mean [1/rate], and
    [Burst] is an interrupted Poisson process — exponential ON windows
    during which arrivals come [intensity] times faster than [rate],
    separated by exponential OFF windows of silence.  Burst arrivals
    are over-dispersed relative to Poisson (index of dispersion of
    windowed counts well above 1), which is exactly what the
    dispersion test in [test/test_workload.ml] pins down.

    The sampler is deterministic given the process, the rate and the
    RNG: each [next] consumes a fixed draw sequence, so seeded runs
    reproduce bit for bit at any job count. *)

open El_model

type process =
  | Deterministic  (** every 1/rate seconds exactly *)
  | Poisson  (** exponential inter-arrival times with mean 1/rate *)
  | Burst of { on_mean : Time.t; off_mean : Time.t; intensity : float }
      (** ON/OFF-modulated Poisson: ON windows of mean [on_mean] with
          arrivals at [rate * intensity], OFF windows of mean
          [off_mean] with none.  Long-run mean rate is
          [rate * intensity * on / (on + off)]. *)

val process_name : process -> string

type t

val create : process -> rate:float -> t
(** Raises [Invalid_argument] on a non-positive rate, burst phase or
    intensity. *)

val next : t -> Random.State.t -> Time.t
(** The gap to the next arrival.  Always at least one microsecond. *)

val mean_rate : t -> float
(** Long-run arrivals per second implied by the process — [rate] for
    deterministic/Poisson, duty-cycle-scaled for bursts. *)

val exponential : Random.State.t -> mean:Time.t -> Time.t
(** An exponential variate with the given mean, clamped to at least
    one microsecond — shared by the backoff jitter in {!Generator}. *)
