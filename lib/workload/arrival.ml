open El_model

type process =
  | Deterministic
  | Poisson
  | Burst of { on_mean : Time.t; off_mean : Time.t; intensity : float }

let process_name = function
  | Deterministic -> "deterministic"
  | Poisson -> "poisson"
  | Burst _ -> "burst"

(* Exponential variate by inversion; clamped away from zero so two
   arrivals never collapse onto the same microsecond en masse.  The
   formula is shared with the historical Poisson path in [Generator],
   so seeded Poisson runs are byte-identical to pre-burst builds. *)
let exponential_us rng ~mean_us =
  let u = Random.State.float rng 1.0 in
  let x = -.mean_us *. log (1.0 -. u) in
  max 1 (int_of_float x)

let exponential rng ~mean =
  Time.of_us (exponential_us rng ~mean_us:(float_of_int (Time.to_us mean)))

type t = {
  process : process;
  rate : float;
  mutable on_remaining : Time.t;
      (** Burst only: time left in the current ON window.  The sampler
          starts inside an ON window of mean length, so the very first
          arrivals of a seeded run are burst traffic, not silence. *)
}

let create process ~rate =
  if rate <= 0.0 then invalid_arg "Arrival.create: zero rate";
  (match process with
  | Deterministic | Poisson -> ()
  | Burst { on_mean; off_mean; intensity } ->
    if Time.(on_mean <= Time.zero) || Time.(off_mean <= Time.zero) then
      invalid_arg "Arrival.create: non-positive burst phase";
    if intensity <= 0.0 then invalid_arg "Arrival.create: zero intensity");
  let on_remaining =
    match process with
    | Burst { on_mean; _ } -> on_mean
    | Deterministic | Poisson -> Time.zero
  in
  { process; rate; on_remaining }

let next t rng =
  match t.process with
  | Deterministic -> Time.of_sec_f (1.0 /. t.rate)
  | Poisson -> Time.of_us (exponential_us rng ~mean_us:(1_000_000.0 /. t.rate))
  | Burst { on_mean; off_mean; intensity } ->
    (* An interrupted Poisson process: arrivals at [rate * intensity]
       during exponential ON windows, silence during exponential OFF
       windows.  The ON rate is memoryless, so a candidate gap that
       overshoots the window is simply redrawn after the OFF period —
       no spliced residuals, one uniform variate per draw. *)
    let burst_mean_us = 1_000_000.0 /. (t.rate *. intensity) in
    let rec go elapsed =
      let gap = Time.of_us (exponential_us rng ~mean_us:burst_mean_us) in
      if Time.(gap <= t.on_remaining) then begin
        t.on_remaining <- Time.sub t.on_remaining gap;
        Time.add elapsed gap
      end
      else begin
        let elapsed = Time.add elapsed t.on_remaining in
        let off = exponential rng ~mean:off_mean in
        t.on_remaining <- exponential rng ~mean:on_mean;
        go (Time.add elapsed off)
      end
    in
    go Time.zero

let mean_rate = function
  | { process = Deterministic | Poisson; rate; _ } -> rate
  | { process = Burst { on_mean; off_mean; intensity }; rate; _ } ->
    let on = Time.to_sec_f on_mean and off = Time.to_sec_f off_mean in
    rate *. intensity *. (on /. (on +. off))
