(** Zipfian rank drawing (Gray et al., SIGMOD 1994; the YCSB
    construction).  Rank 0 is the hottest; the probability of rank [r]
    is proportional to [(r+1)^-theta].  Creation is O(n) (the harmonic
    normaliser is precomputed); each draw is O(1) and consumes exactly
    one uniform variate from the supplied RNG, so seeded runs are
    reproducible bit for bit. *)

type t

val create : n:int -> theta:float -> t
(** Raises [Invalid_argument] unless [n > 0] and [theta] lies in the
    open interval (0, 1) — the range the Gray approximation covers. *)

val next : t -> Random.State.t -> int
(** A rank in [0, n). *)

val n : t -> int
val theta : t -> float

val probability : t -> int -> float
(** Exact target probability of a rank under the pure power law.  The
    Gray construction realises it exactly for ranks 0 and 1 and
    through a continuous-inverse approximation beyond; the statistical
    tests in [test/test_workload.ml] chi-square draws against the
    realized law and pin the hottest ranks and the log-log tail slope
    against this exact one. *)
