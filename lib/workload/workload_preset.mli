(** Named adversarial workload scenarios.

    A preset bundles every workload-level knob — the transaction mix,
    the arrival process, the oid-drawing policy, the lifetime
    distribution and the contention retry budget — under a stable
    name, so the CLI ([--scenario]), the conformance matrix
    ([el-sim conform]), the bench [workloads] section and the tests
    all mean exactly the same traffic when they say ["storm"].

    The six presets cover the adversity axes of ROADMAP item 4:

    - [uniform]   — the paper's polite baseline
    - [zipf]      — hot-key skew with moderate contention
    - [burst]     — ON/OFF arrival bursts at 4x intensity
    - [contention]— a deliberate hot-key pile-up (deep retry budget)
    - [longtail]  — Pareto lifetimes over a 25x record-size spread
    - [storm]     — all of the above at once

    Every preset is deterministic under a seed: same seed + same
    preset ⇒ Marshal-byte-identical results (pinned in
    [test/test_scenario.ml]). *)

open El_model

type t = {
  name : string;
  description : string;
  mix : Mix.t;
  arrival : Arrival.process;
  draw : Draw.t;
  lifetime : Lifetime.t;
  max_retries : int;
  retry_backoff : Time.t;
  space_factor : float;
      (** log-space appetite relative to the paper's standard mix
          (1.0).  Sweeps that run the standard manager geometries
          ([El_check.Sweep.standard_config], the conformance matrix)
          scale generation sizes by this factor — the paper's own
          discipline of sizing the log to the offered load.  The
          multi-size presets need it: fat records roughly double the
          bytes per transaction and Pareto tails stretch log
          residency, so at the polite-traffic geometry the managers
          would honestly stall into kills and overload instead of
          sweeping cleanly. *)
}

val uniform : t
val zipf : t
val burst : t
val contention : t
val longtail : t
val storm : t

val all : t list
(** In presentation order: uniform, zipf, burst, contention, longtail,
    storm. *)

val names : string list
val find : string -> t option

val adversarial : t -> bool
(** Every preset except [uniform]. *)

val pp : Format.formatter -> t -> unit
