type t =
  | Fixed
  | Pareto of { alpha : float; cap : float }

let name = function Fixed -> "fixed" | Pareto _ -> "pareto"

let validate = function
  | Fixed -> ()
  | Pareto { alpha; cap } ->
    if alpha <= 0.0 then invalid_arg "Lifetime.Pareto: non-positive alpha";
    if cap < 1.0 then invalid_arg "Lifetime.Pareto: cap below 1"

(* Pareto with scale x_m = 1 by inversion: (1-u)^(-1/alpha), so the
   multiplier is always >= 1 (lifetimes only stretch, never shrink —
   the record schedule's epsilon < duration precondition is
   preserved) and capped so a single straggler cannot outlive the
   whole run. *)
let scale t rng =
  match t with
  | Fixed -> 1.0
  | Pareto { alpha; cap } ->
    let u = Random.State.float rng 1.0 in
    Float.min cap ((1.0 -. u) ** (-1.0 /. alpha))
