(** Per-transaction lifetime stretching.

    [Fixed] keeps every transaction at its type's nominal duration
    (the paper's model).  [Pareto] multiplies each transaction's
    nominal duration by an independent Pareto(alpha) variate capped at
    [cap] — a long-tail lifetime distribution in which most
    transactions run near their nominal length while a heavy tail
    holds its write set (and its log records) far longer, the traffic
    that stresses generation sizing and forced flushing. *)

type t =
  | Fixed
  | Pareto of { alpha : float; cap : float }
      (** tail exponent (smaller = heavier tail) and the maximum
          multiplier *)

val name : t -> string

val validate : t -> unit
(** Raises [Invalid_argument] on a non-positive alpha or a cap below
    1. *)

val scale : t -> Random.State.t -> float
(** The duration multiplier for one transaction: 1 for [Fixed],
    otherwise in [1, cap].  Consumes exactly one uniform variate for
    [Pareto] and none for [Fixed]. *)
