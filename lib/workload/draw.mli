(** The oid-drawing policy of a workload.

    [Uniform] is the paper's §3 model: an update picks any object not
    already held by an active writer, uniformly — with 10⁷ objects and
    a few hundred in use, collisions are a non-event and the pool's
    rejection sampling hides them entirely.

    [Zipfian] draws ranks from {!Zipf} (rank 0 = the hottest object),
    which makes collisions with active writers a first-class outcome:
    the generator turns a draw that lands on a held oid into an abort
    of the drawing transaction plus a seeded-backoff retry, the
    contention model the adversarial presets are built on. *)

open El_model

type t =
  | Uniform
  | Zipfian of { theta : float }  (** skew exponent, in (0, 1) *)

val name : t -> string

type drawer
(** Per-run drawer state ({!Zipf} normaliser for the Zipfian case). *)

val make : t -> num_objects:int -> drawer

val candidate : drawer -> Random.State.t -> Ids.Oid.t option
(** [None] for [Uniform] (the caller should fall back to
    {!Oid_pool.acquire}'s collision-free rejection sampling); for
    [Zipfian], the drawn oid — which may well be held by an active
    writer, and that is the point. *)
