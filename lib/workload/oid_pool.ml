open El_model

type t = {
  num_objects : int;
  held : unit Ids.Oid.Table.t;
  versions : int Ids.Oid.Table.t;
}

let create ~num_objects =
  if num_objects <= 0 then invalid_arg "Oid_pool.create: no objects";
  {
    num_objects;
    held = Ids.Oid.Table.create 512;
    versions = Ids.Oid.Table.create 512;
  }

let acquire t rng =
  if Ids.Oid.Table.length t.held >= t.num_objects then None
  else begin
    (* Rejection sampling: the held set is minuscule next to the
       database, so this loop runs once almost always.  A linear
       fallback guarantees termination when the database is nearly
       saturated (tiny stress-test databases). *)
    let attempts = ref 0 in
    let found = ref None in
    while !found = None && !attempts < 64 do
      incr attempts;
      let oid = Ids.Oid.of_int (Random.State.int rng t.num_objects) in
      if not (Ids.Oid.Table.mem t.held oid) then found := Some oid
    done;
    let oid =
      match !found with
      | Some oid -> oid
      | None ->
        let start = Random.State.int rng t.num_objects in
        let rec scan i remaining =
          if remaining = 0 then assert false
          else
            let oid = Ids.Oid.of_int i in
            if not (Ids.Oid.Table.mem t.held oid) then oid
            else scan ((i + 1) mod t.num_objects) (remaining - 1)
        in
        scan start t.num_objects
    in
    Ids.Oid.Table.replace t.held oid ();
    Some oid
  end

let is_held t oid = Ids.Oid.Table.mem t.held oid

let claim t oid =
  if Ids.Oid.to_int oid < 0 || Ids.Oid.to_int oid >= t.num_objects then
    invalid_arg "Oid_pool.claim: oid outside the database";
  if Ids.Oid.Table.mem t.held oid then false
  else begin
    Ids.Oid.Table.replace t.held oid ();
    true
  end

let release t oid =
  if not (Ids.Oid.Table.mem t.held oid) then
    invalid_arg "Oid_pool.release: oid not held";
  Ids.Oid.Table.remove t.held oid

let next_version t oid =
  let v = match Ids.Oid.Table.find_opt t.versions oid with
    | Some v -> v + 1
    | None -> 1
  in
  Ids.Oid.Table.replace t.versions oid v;
  v

let in_use t = Ids.Oid.Table.length t.held
let num_objects t = t.num_objects
