open El_model

exception Protocol_violation of string

type phase =
  | Running
  | Preparing of int
  | Deciding
  | Acked
  | Aborted
  | Killed
  | Blocked

type t = {
  gtid : int;
  coordinator : int;
  mutable touched : int list;  (* reverse first-touch order *)
  mutable acked : int list;  (* branches whose local commit is durable *)
  mutable phase : phase;
}

let fail t fmt =
  Printf.ksprintf (fun m ->
      raise (Protocol_violation (Printf.sprintf "gtid %d: %s" t.gtid m)))
    fmt

let create ~gtid ~coordinator =
  if gtid < 0 then invalid_arg "Two_pc.create: negative gtid";
  { gtid; coordinator; touched = []; acked = []; phase = Running }

let gtid t = t.gtid
let coordinator t = t.coordinator
let phase t = t.phase
let participants t = List.rev t.touched

let touch t ~shard =
  (match t.phase with
  | Running -> ()
  | _ -> fail t "write after commit was requested");
  if List.mem shard t.touched then `Already
  else begin
    t.touched <- shard :: t.touched;
    `Begun
  end

let start_commit t =
  (match t.phase with
  | Running -> ()
  | _ -> fail t "commit requested twice");
  let ps = participants t in
  if ps = [] then fail t "commit with no participants";
  t.phase <- Preparing (List.length ps);
  ps

let branch_acked t ~shard =
  match t.phase with
  | Preparing pending ->
    if not (List.mem shard t.touched) then
      fail t "branch ack from non-participant shard %d" shard;
    if List.mem shard t.acked then
      fail t "duplicate branch ack from shard %d" shard;
    t.acked <- shard :: t.acked;
    if pending = 1 then begin
      t.phase <- Deciding;
      `Start_decision
    end
    else begin
      t.phase <- Preparing (pending - 1);
      `Wait
    end
  | _ -> fail t "branch ack from shard %d outside the prepare phase" shard

let decision_acked t =
  match t.phase with
  | Deciding -> t.phase <- Acked
  | _ -> fail t "decision ack outside the decide phase"

let abort t =
  match t.phase with
  | Running -> t.phase <- Aborted
  | _ -> fail t "abort after commit was requested"

let kill t =
  match t.phase with
  | Running ->
    t.phase <- Killed;
    `Kill_generator
  | Preparing _ | Deciding ->
    t.phase <- Blocked;
    `Blocked
  | Killed | Blocked -> `Blocked
  | Acked | Aborted -> fail t "kill of a settled transaction"

let decision_tid_base = 0x4000_0000

let decision_tid ~gtid =
  if gtid < 0 || gtid >= decision_tid_base then
    invalid_arg "Two_pc.decision_tid: gtid out of range";
  Ids.Tid.of_int (gtid + decision_tid_base)

let is_decision_tid tid = Ids.Tid.to_int tid >= decision_tid_base
let gtid_of_decision tid = Ids.Tid.to_int tid - decision_tid_base

let resolve ~decision_durable =
  if decision_durable then `Committed else `Aborted

let atomic_ok ~decision_durable ~branches_durable =
  (not decision_durable) || List.for_all Fun.id branches_durable
