open El_model
module Engine = El_sim.Engine
module Generator = El_workload.Generator
module Recovery = El_recovery.Recovery
module Experiment = El_harness.Experiment
module Spsc = El_par.Spsc
module IntSet = Set.Make (Int)

(* Operations travelling generator → shard through the SPSC mailbox.
   The ack closures ride along: under the deterministic engine the
   consumer runs inside the producing call, so the closures fire in
   exactly the order a direct call would produce. *)
type op =
  | Begin of Ids.Tid.t * Time.t
  | Write of Ids.Tid.t * Ids.Oid.t * int * int  (* oid, version, size *)
  | Commit of Ids.Tid.t * (Time.t -> unit)
  | Abort of Ids.Tid.t

(* One shard's 2PC control region as a slot pool.  Slots hold the
   PREPARE marker / decision record oids of in-flight cross-shard
   transactions; a slot returns to the pool when its record's
   transaction settles, so no two live transactions ever write the
   same control oid (the ledger's one-active-writer-per-object rule
   extends to the control region). *)
type slot_pool = { busy : bool array; mutable cursor : int; mutable free : int }

let make_slot_pool n = { busy = Array.make n false; cursor = 0; free = n }

let alloc_slot sp =
  if sp.free = 0 then
    failwith
      "Shard_group: control region exhausted — raise ctl_slots above the \
       cross-shard transaction concurrency";
  let n = Array.length sp.busy in
  let rec find i =
    let s = (sp.cursor + i) mod n in
    if sp.busy.(s) then find (i + 1) else s
  in
  let s = find 0 in
  sp.busy.(s) <- true;
  sp.cursor <- (s + 1) mod n;
  sp.free <- sp.free - 1;
  s

let free_slot sp s =
  if sp.busy.(s) then begin
    sp.busy.(s) <- false;
    sp.free <- sp.free + 1
  end

(* One global transaction's routing state around its pure {!Two_pc}
   machine. *)
type gtx = {
  pc : Two_pc.t;
  duration : Time.t;
  mutable client_ack : (Time.t -> unit) option;
  mutable marker_slots : (int * int) list;  (* (shard, slot) to free *)
  mutable decision_slot : int option;
  mutable dead_shards : int list;  (* branches the manager killed *)
  (* the control oids this transaction wrote, retained after the slots
     are freed: the oracle reads durability evidence from the
     recovered database at these oids (versions are gtids, monotone
     under slot reuse), which outlives the ephemeral log records *)
  mutable marker_oids : (int * Ids.Oid.t) list;  (* (shard, ctl oid) *)
  mutable decision_oid : Ids.Oid.t option;
}

type gtx_view = {
  v_gtid : int;
  v_coordinator : int;
  v_participants : int list;
  v_phase : Two_pc.phase;
  v_marker_oids : (int * Ids.Oid.t) list;
  v_decision_oid : Ids.Oid.t option;
}

type t = {
  cfg : Experiment.config;
  sg_engine : Engine.t;
  part : Partition.t;
  sg_instances : Experiment.instance array;
  sg_inj : El_fault.Injector.t option;
  sinks : Generator.sink array;  (* oracle-wrapped shard sinks *)
  mailboxes : op Spsc.t array;
  slot_pools : slot_pool array;
  registry : (int, gtx) Hashtbl.t;  (* gtid -> live gtx *)
  retain_cross : bool;
  mutable cross_log : gtx list;  (* newest first; ≥ 2 participants only *)
  mutable gen : Generator.t option;
  mutable singles : int;
  mutable cross : int;
  mutable blocked_n : int;
  mutable prepares : int;
  shard_commits : int array;
  branch_ack_n : int array;
  decision_n : int array;
}

let marker_size = 16
let decision_duration = Time.of_ms 1

(* Control records carry the gtid as their version, shifted by one:
   versions must be positive (the durable-log spec checks it) and
   gtids start at 0.  Still strictly monotone per reused slot. *)
let ctl_version ~gtid = gtid + 1

let engine t = t.sg_engine
let partition t = t.part
let instances t = t.sg_instances
let config t = t.cfg
let injector t = t.sg_inj
let generator t = Option.get t.gen

let view g =
  {
    v_gtid = Two_pc.gtid g.pc;
    v_coordinator = Two_pc.coordinator g.pc;
    v_participants = Two_pc.participants g.pc;
    v_phase = Two_pc.phase g.pc;
    v_marker_oids = g.marker_oids;
    v_decision_oid = g.decision_oid;
  }

let cross_views t = List.rev_map view t.cross_log
let live_views t =
  Hashtbl.fold (fun _ g acc -> view g :: acc) t.registry []
  |> List.sort (fun a b -> compare a.v_gtid b.v_gtid)

let single_committed t =
  if t.cfg.Experiment.shards = 1 then Generator.committed (generator t)
  else t.singles

let cross_committed t = t.cross
let blocked t = t.blocked_n
let prepares_written t = t.prepares

let shard_committed t =
  if t.cfg.Experiment.shards = 1 then [| Generator.committed (generator t) |]
  else Array.copy t.shard_commits

let mailbox_ops t = Array.map Spsc.pushed t.mailboxes
let branch_acks t = Array.copy t.branch_ack_n

(* --- The router ------------------------------------------------- *)

let post t p op =
  if not (Spsc.try_push t.mailboxes.(p) op) then
    failwith "Shard_group: shard mailbox overflow"

let drain t p =
  let sink = t.sinks.(p) in
  let box = t.mailboxes.(p) in
  let rec loop () =
    match Spsc.try_pop box with
    | None -> ()
    | Some op ->
      (match op with
      | Begin (tid, d) -> sink.Generator.begin_tx ~tid ~expected_duration:d
      | Write (tid, oid, version, size) ->
        sink.Generator.write_data ~tid ~oid ~version ~size
      | Commit (tid, on_ack) -> sink.Generator.request_commit ~tid ~on_ack
      | Abort tid -> sink.Generator.request_abort ~tid);
      loop ()
  in
  loop ()

let settle t g =
  Hashtbl.remove t.registry (Two_pc.gtid g.pc)

(* Single-shard fast path: the branch's local commit IS the global
   commit — prepare and decision collapse onto one durable record (the
   transfer-of-coordination optimisation), so recovery treats it as a
   plain local transaction. *)
let single_ack t g p at =
  (match Two_pc.branch_acked g.pc ~shard:p with
  | `Start_decision -> Two_pc.decision_acked g.pc
  | `Wait -> assert false);
  t.singles <- t.singles + 1;
  t.shard_commits.(p) <- t.shard_commits.(p) + 1;
  settle t g;
  (Option.get g.client_ack) at

let decision_ack t g c at =
  match Two_pc.phase g.pc with
  | Two_pc.Blocked -> ()  (* killed mid-decide; presumed abort resolves *)
  | _ ->
    Two_pc.decision_acked g.pc;
    t.cross <- t.cross + 1;
    t.shard_commits.(c) <- t.shard_commits.(c) + 1;
    t.decision_n.(c) <- t.decision_n.(c) + 1;
    (match g.decision_slot with
    | Some s ->
      free_slot t.slot_pools.(c) s;
      g.decision_slot <- None
    | None -> ());
    settle t g;
    (Option.get g.client_ack) at

(* All branches durable: run the decision transaction on the
   coordinator.  Every post is re-checked against the phase — the
   coordinator's manager may kill the decision transaction while it is
   still active (an eviction reaching the last head), which blocks the
   protocol. *)
let start_decision t g =
  let c = Two_pc.coordinator g.pc in
  let gtid = Two_pc.gtid g.pc in
  let dtid = Two_pc.decision_tid ~gtid in
  let slot = alloc_slot t.slot_pools.(c) in
  g.decision_slot <- Some slot;
  let doid = Partition.ctl_oid t.part ~shard:c ~slot in
  g.decision_oid <- Some doid;
  post t c (Begin (dtid, decision_duration));
  drain t c;
  if Two_pc.phase g.pc = Two_pc.Deciding then begin
    post t c (Write (dtid, doid, ctl_version ~gtid, marker_size));
    drain t c;
    if Two_pc.phase g.pc = Two_pc.Deciding then begin
      post t c (Commit (dtid, decision_ack t g c));
      drain t c
    end
  end

let branch_ack t g p at =
  ignore at;
  t.branch_ack_n.(p) <- t.branch_ack_n.(p) + 1;
  (* the branch is durably committed: its marker record has settled and
     the slot can carry another transaction's marker *)
  (match List.assoc_opt p g.marker_slots with
  | Some s ->
    free_slot t.slot_pools.(p) s;
    g.marker_slots <- List.remove_assoc p g.marker_slots
  | None -> ());
  match Two_pc.phase g.pc with
  | Two_pc.Blocked -> ()  (* protocol already died; nothing to drive *)
  | _ -> (
    match Two_pc.branch_acked g.pc ~shard:p with
    | `Wait -> ()
    | `Start_decision -> start_decision t g)

let route_begin t ~tid ~expected_duration =
  let gtid = Ids.Tid.to_int tid in
  let g =
    {
      pc =
        Two_pc.create ~gtid ~coordinator:(Partition.coordinator t.part ~gtid);
      duration = expected_duration;
      client_ack = None;
      marker_slots = [];
      decision_slot = None;
      dead_shards = [];
      marker_oids = [];
      decision_oid = None;
    }
  in
  Hashtbl.replace t.registry gtid g
(* No shard sees anything yet: branches open lazily at first touch, so
   a transaction costs exactly the shards it writes. *)

let route_write t ~tid ~oid ~version ~size =
  match Hashtbl.find_opt t.registry (Ids.Tid.to_int tid) with
  | None -> ()  (* killed earlier in this same dispatch; events raced *)
  | Some g ->
    let p = Partition.owner t.part oid in
    (match Two_pc.touch g.pc ~shard:p with
    | `Begun ->
      post t p (Begin (tid, g.duration));
      drain t p
    | `Already -> ());
    (* the begin may have been shed (degraded mode kills at admission):
       the transaction is then already dead *)
    if Two_pc.phase g.pc = Two_pc.Running then begin
      post t p (Write (tid, oid, version, size));
      drain t p
    end

let route_abort t ~tid =
  match Hashtbl.find_opt t.registry (Ids.Tid.to_int tid) with
  | None -> ()
  | Some g ->
    let ps = Two_pc.participants g.pc in
    Two_pc.abort g.pc;
    List.iter
      (fun p ->
        if not (List.mem p g.dead_shards) then begin
          post t p (Abort tid);
          drain t p
        end)
      ps;
    settle t g

let route_commit t ~tid ~on_ack =
  let gtid = Ids.Tid.to_int tid in
  match Hashtbl.find_opt t.registry gtid with
  | None -> ()
  | Some g ->
    (* A write-free transaction still needs a durable commit record to
       acknowledge: open its branch on the coordinator. *)
    if Two_pc.participants g.pc = [] then begin
      let c = Two_pc.coordinator g.pc in
      ignore (Two_pc.touch g.pc ~shard:c);
      post t c (Begin (tid, g.duration));
      drain t c
    end;
    if Two_pc.phase g.pc = Two_pc.Running then begin
      g.client_ack <- Some on_ack;
      match Two_pc.start_commit g.pc with
      | [ p ] ->
        post t p (Commit (tid, single_ack t g p));
        drain t p
      | ps ->
        if t.retain_cross then t.cross_log <- g :: t.cross_log;
        List.iter
          (fun p ->
            match Two_pc.phase g.pc with
            | Two_pc.Preparing _ ->
              (* PREPARE marker: a control-region record carrying the
                 gtid, durable with the branch's own commit *)
              let slot = alloc_slot t.slot_pools.(p) in
              g.marker_slots <- (p, slot) :: g.marker_slots;
              let moid = Partition.ctl_oid t.part ~shard:p ~slot in
              g.marker_oids <- (p, moid) :: g.marker_oids;
              t.prepares <- t.prepares + 1;
              post t p (Write (tid, moid, ctl_version ~gtid, marker_size));
              drain t p;
              (match Two_pc.phase g.pc with
              | Two_pc.Preparing _ ->
                post t p (Commit (tid, branch_ack t g p));
                drain t p
              | Two_pc.Blocked -> ()  (* this branch died mid-marker *)
              | _ -> assert false)
            | Two_pc.Blocked ->
              (* the protocol died while fanning out; this branch was
                 never asked to prepare, so abort it outright *)
              if not (List.mem p g.dead_shards) then begin
                post t p (Abort tid);
                drain t p
              end
            | _ -> assert false)
          ps
    end

(* Manager-initiated kills, per shard.  Decision transactions belong to
   the router, not the generator; a Running transaction dies whole
   (siblings aborted, generator told); a mid-protocol kill blocks the
   transaction — 2PC's classic failure mode, resolved by presumed
   abort at recovery. *)
let on_manager_kill t i tid =
  if Two_pc.is_decision_tid tid then begin
    match Hashtbl.find_opt t.registry (Two_pc.gtid_of_decision tid) with
    | None -> ()
    | Some g ->
      (match Two_pc.kill g.pc with
      | `Blocked -> t.blocked_n <- t.blocked_n + 1
      | `Kill_generator -> assert false (* decision txs are never Running *));
      g.dead_shards <- i :: g.dead_shards;
      (* the slot is deliberately leaked, not freed: the decision was
         never durable, and slot reuse must stay proof of durable
         settlement (the oracle's monotone-version evidence) *)
      g.decision_slot <- None;
      settle t g
  end
  else
    match Hashtbl.find_opt t.registry (Ids.Tid.to_int tid) with
    | None -> Generator.kill (generator t) tid
    | Some g -> (
      let prior = Two_pc.phase g.pc in
      match Two_pc.kill g.pc with
      | `Kill_generator ->
        g.dead_shards <- i :: g.dead_shards;
        let ps = Two_pc.participants g.pc in
        List.iter
          (fun p ->
            if p <> i then begin
              post t p (Abort tid);
              drain t p
            end)
          ps;
        settle t g;
        Generator.kill (generator t) tid
      | `Blocked -> (
        match prior with
        | Two_pc.Preparing _ | Two_pc.Deciding ->
          t.blocked_n <- t.blocked_n + 1;
          g.dead_shards <- i :: g.dead_shards;
          settle t g
        | _ -> () (* repeated kill of an already-dead transaction *)))

(* --- Construction ------------------------------------------------ *)

let prepare ?(wrap_shard_sink = fun _ sink -> sink)
    ?(on_shard_kill = fun _ _ -> ()) ?(retain_cross = false) ?ctl_slots
    (cfg : Experiment.config) =
  if cfg.Experiment.shards < 1 then
    invalid_arg "Shard_group.prepare: shards must be >= 1";
  if cfg.Experiment.observer <> None then
    invalid_arg "Shard_group.prepare: the observer rides the solo path only";
  let n = cfg.Experiment.shards in
  (* Construction order matches Experiment.prepare exactly — engine,
     injector, instance, generator, kill hook — so a 1-shard group is
     the solo run, byte for byte. *)
  let sg_engine = Engine.create ~seed:cfg.Experiment.seed () in
  let inj = El_fault.Injector.create cfg.Experiment.fault in
  let part =
    Partition.create ?ctl_slots ~shards:n
      ~num_objects:cfg.Experiment.num_objects ()
  in
  (* Each plant's flush array spans data + control oids, padded up to
     a multiple of the drive count (Flush_array requires it; the
     padding oids are simply never written). *)
  let plant_objects =
    let total = Partition.total_objects part in
    let d = max 1 cfg.Experiment.flush_drives in
    (total + d - 1) / d * d
  in
  let sg_instances =
    Array.init n (fun _ ->
        Experiment.build_instance sg_engine cfg ?inj ~num_objects:plant_objects
          ())
  in
  let sinks =
    Array.mapi
      (fun i inst -> wrap_shard_sink i inst.Experiment.i_sink)
      sg_instances
  in
  let t =
    {
      cfg;
      sg_engine;
      part;
      sg_instances;
      sg_inj = inj;
      sinks;
      mailboxes = Array.init n (fun _ -> Spsc.create ~capacity:1024);
      slot_pools =
        Array.init n (fun _ -> make_slot_pool (Partition.ctl_slots part));
      registry = Hashtbl.create 1024;
      retain_cross;
      cross_log = [];
      gen = None;
      singles = 0;
      cross = 0;
      blocked_n = 0;
      prepares = 0;
      shard_commits = Array.make n 0;
      branch_ack_n = Array.make n 0;
      decision_n = Array.make n 0;
    }
  in
  let sink =
    if n = 1 then sinks.(0)  (* no router at all: the solo fast path *)
    else
      {
        Generator.begin_tx =
          (fun ~tid ~expected_duration -> route_begin t ~tid ~expected_duration);
        write_data =
          (fun ~tid ~oid ~version ~size ->
            route_write t ~tid ~oid ~version ~size);
        request_commit = (fun ~tid ~on_ack -> route_commit t ~tid ~on_ack);
        request_abort = (fun ~tid -> route_abort t ~tid);
      }
  in
  let generator =
    Generator.create sg_engine ~sink ~mix:cfg.Experiment.mix
      ~arrival_rate:cfg.Experiment.arrival_rate
      ~runtime:cfg.Experiment.runtime
      ~arrival_process:cfg.Experiment.arrival_process
      ~abort_fraction:cfg.Experiment.abort_fraction ~draw:cfg.Experiment.draw
      ~lifetime:cfg.Experiment.lifetime
      ~max_retries:cfg.Experiment.max_retries
      ~retry_backoff:cfg.Experiment.retry_backoff
      ~num_objects:cfg.Experiment.num_objects ()
  in
  t.gen <- Some generator;
  Array.iteri
    (fun i inst ->
      inst.Experiment.i_set_on_kill (fun tid ->
          on_shard_kill i tid;
          on_manager_kill t i tid))
    sg_instances;
  t

(* --- Driving and collecting ------------------------------------- *)

let drain_managers t =
  Array.iter
    (fun inst ->
      (match inst.Experiment.i_el with
      | Some m -> El_core.El_manager.drain m
      | None -> ());
      (match inst.Experiment.i_fw with
      | Some m -> El_core.Fw_manager.drain m
      | None -> ());
      match inst.Experiment.i_hybrid with
      | Some m -> El_core.Hybrid_manager.drain m
      | None -> ())
    t.sg_instances

type shard_stat = {
  ss_shard : int;
  ss_lo : int;
  ss_hi : int;
  ss_committed : int;
  ss_branch_acks : int;
  ss_decisions : int;
  ss_mailbox_ops : int;
  ss_result : Experiment.result;
}

type run_result = {
  r_global : Experiment.result;
  r_shards : shard_stat array;
  r_single_committed : int;
  r_cross_committed : int;
  r_prepares : int;
  r_blocked : int;
}

(* Plant counters sum; workload-global counters (identical in every
   element — they read the one shared generator) come from shard 0;
   backlog peaks don't add, they max. *)
let merge_results (cfg : Experiment.config) (rs : Experiment.result array) =
  let sum f = Array.fold_left (fun a r -> a + f r) 0 rs in
  let maxi f = Array.fold_left (fun a r -> max a (f r)) 0 rs in
  let r0 = rs.(0) in
  let per_gen = Array.make (Array.length r0.Experiment.log_writes_per_gen) 0 in
  Array.iter
    (fun (r : Experiment.result) ->
      Array.iteri
        (fun i v -> per_gen.(i) <- per_gen.(i) + v)
        r.Experiment.log_writes_per_gen)
    rs;
  let log_writes_total = sum (fun r -> r.Experiment.log_writes_total) in
  let flushes = sum (fun r -> r.Experiment.flushes_completed) in
  let mean_distance =
    if flushes = 0 then 0.0
    else
      Array.fold_left
        (fun a (r : Experiment.result) ->
          a
          +. (r.Experiment.flush_mean_distance
             *. float_of_int r.Experiment.flushes_completed))
        0.0 rs
      /. float_of_int flushes
  in
  let evictions = sum (fun r -> r.Experiment.evictions) in
  {
    r0 with
    Experiment.total_blocks = sum (fun r -> r.Experiment.total_blocks);
    log_writes_per_gen = per_gen;
    log_writes_total;
    log_write_rate =
      float_of_int log_writes_total /. Time.to_sec_f cfg.Experiment.runtime;
    peak_memory_bytes = sum (fun r -> r.Experiment.peak_memory_bytes);
    evictions;
    feasible =
      (not r0.Experiment.overloaded)
      && r0.Experiment.killed = 0 && evictions = 0;
    flushes_completed = flushes;
    forced_flushes = sum (fun r -> r.Experiment.forced_flushes);
    flush_mean_distance = mean_distance;
    flush_backlog_peak = maxi (fun r -> r.Experiment.flush_backlog_peak);
    forwarded_records = sum (fun r -> r.Experiment.forwarded_records);
    recirculated_records = sum (fun r -> r.Experiment.recirculated_records);
    el_stats = None;
    fw_stats = None;
    hybrid_stats = None;
    store_pwrites = sum (fun r -> r.Experiment.store_pwrites);
    store_barriers = sum (fun r -> r.Experiment.store_barriers);
    store_bytes_written = sum (fun r -> r.Experiment.store_bytes_written);
    store_group_syncs = sum (fun r -> r.Experiment.store_group_syncs);
  }

let collect t ~overloaded =
  let gen = generator t in
  let rs =
    Array.map
      (Experiment.collect_instance t.cfg ~generator:gen ~overloaded)
      t.sg_instances
  in
  let global =
    if Array.length rs = 1 then rs.(0) else merge_results t.cfg rs
  in
  let commits = shard_committed t in
  let ops = mailbox_ops t in
  let shards =
    Array.mapi
      (fun i r ->
        let lo, hi = Partition.range t.part i in
        {
          ss_shard = i;
          ss_lo = lo;
          ss_hi = hi;
          ss_committed = commits.(i);
          ss_branch_acks = t.branch_ack_n.(i);
          ss_decisions = t.decision_n.(i);
          ss_mailbox_ops = ops.(i);
          ss_result = r;
        })
      rs
  in
  {
    r_global = global;
    r_shards = shards;
    r_single_committed = single_committed t;
    r_cross_committed = t.cross;
    r_prepares = t.prepares;
    r_blocked = t.blocked_n;
  }

let finish t =
  let overloaded =
    try
      Engine.run t.sg_engine ~until:t.cfg.Experiment.runtime;
      false
    with El_core.El_manager.Log_overloaded _ -> true
  in
  Array.iter
    (fun inst ->
      match inst.Experiment.i_store with
      | Some s -> El_store.Log_store.sync s
      | None -> ())
    t.sg_instances;
  collect t ~overloaded

let dispose t = Array.iter Experiment.dispose_instance t.sg_instances

let run cfg =
  let t = prepare cfg in
  Fun.protect ~finally:(fun () -> dispose t) (fun () -> finish t)

let run_global cfg = (run cfg).r_global

(* --- Crash capture and sharded recovery -------------------------- *)

let crash_images t =
  Array.map
    (fun inst ->
      match inst.Experiment.i_el with
      | Some m -> Recovery.crash t.sg_engine m
      | None ->
        invalid_arg "Shard_group.crash_images: EL shards only (no FW model)")
    t.sg_instances

let recover_shards ?pool images =
  let recover_one img = Recovery.recover img in
  let results =
    match pool with
    | None -> List.map recover_one (Array.to_list images)
    | Some p -> El_par.Pool.map p recover_one (Array.to_list images)
  in
  Array.of_list results

let resolve_in_doubt t ~committed_tids =
  let sets =
    Array.map
      (fun tids ->
        List.fold_left
          (fun s tid -> IntSet.add (Ids.Tid.to_int tid) s)
          IntSet.empty tids)
      committed_tids
  in
  List.map
    (fun v ->
      let decision_durable =
        IntSet.mem
          (Ids.Tid.to_int (Two_pc.decision_tid ~gtid:v.v_gtid))
          sets.(v.v_coordinator)
      in
      (v, Two_pc.resolve ~decision_durable))
    (cross_views t)
