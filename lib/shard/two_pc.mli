(** The cross-shard commit protocol: two-phase commit with presumed
    abort, as a pure per-transaction state machine.

    A transaction that touched more than one shard commits in two
    phases.  {b Prepare}: the router writes a PREPARE marker record
    into every participant's log (a control-region write carrying the
    gtid) and requests the branch's local commit — a participant's
    durable COMMIT record {e is} its prepare vote, exactly the
    standard piggy-backed 2PC optimisation.  {b Decide}: once every
    branch acknowledgement has fired, a {e decision transaction}
    (tid = {!decision_tid}) runs on the coordinator shard, writing a
    decision record into the coordinator's own log; its
    acknowledgement is the global commit point, and only then does the
    client's acknowledgement fire.

    In-doubt resolution at recovery is presumed abort: a cross-shard
    transaction is committed if and only if its decision transaction
    is in the coordinator's recovered committed set — the coordinator
    is derivable from the gtid alone ({!Partition.coordinator}), so no
    routing state needs to survive the crash.  Because the decision is
    only written after every branch is durable, [decision durable ⟹
    all branches durable]: no crash point can half-commit
    (machine-checked by the sharded sweep oracle via {!atomic_ok}).

    This module holds no references to managers or engines — the
    router drives it with callbacks, and the QCheck state-machine test
    drives it with random interleavings. *)

exception Protocol_violation of string

type phase =
  | Running  (** branches still being written *)
  | Preparing of int  (** branch commits requested; [n] acks pending *)
  | Deciding  (** all branches durable; decision tx in flight *)
  | Acked  (** decision durable; client acknowledged *)
  | Aborted  (** client abort before any commit was requested *)
  | Killed  (** a branch was killed while [Running]; generator told *)
  | Blocked
      (** the protocol died mid-flight (e.g. the decision transaction
          was killed): branches may be durable, the client is never
          acknowledged, recovery resolves by presumed abort *)

type t

val create : gtid:int -> coordinator:int -> t
val gtid : t -> int
val coordinator : t -> int
val phase : t -> phase

val participants : t -> int list
(** Touched shards, in first-touch order. *)

val touch : t -> shard:int -> [ `Begun | `Already ]
(** Registers a shard on first write.  [`Begun] means the branch must
    be opened on that shard.  Raises {!Protocol_violation} unless
    [Running]. *)

val start_commit : t -> int list
(** [Running] → [Preparing]: returns the participants whose branches
    must now prepare (write marker + request local commit).  Raises
    {!Protocol_violation} unless [Running] with ≥ 1 participant. *)

val branch_acked : t -> shard:int -> [ `Wait | `Start_decision ]
(** One branch's local commit became durable.  The last one moves
    [Preparing] → [Deciding] and returns [`Start_decision].  Raises
    {!Protocol_violation} for a non-participant, a duplicate ack, or
    a wrong phase. *)

val decision_acked : t -> unit
(** [Deciding] → [Acked]: the decision record is durable — the global
    commit point; the caller now fires the client acknowledgement.
    Raises {!Protocol_violation} in any other phase. *)

val abort : t -> unit
(** Client abort ([Running] → [Aborted]).  Raises otherwise. *)

val kill : t -> [ `Kill_generator | `Blocked ]
(** A branch (or the decision transaction) was killed by its manager.
    While [Running] the whole transaction dies with it —
    [`Kill_generator] tells the router to abort sibling branches and
    notify the generator.  Mid-protocol ([Preparing]/[Deciding]) the
    client blocks instead, 2PC's classic failure mode: [`Blocked],
    resolved by presumed abort at recovery.  Idempotent once dead. *)

(** {2 Recovery-side resolution} *)

val decision_tid_base : int
(** Decision tids live at [gtid + decision_tid_base], far above any
    workload tid (the generator allocates densely from 0). *)

val decision_tid : gtid:int -> El_model.Ids.Tid.t
val is_decision_tid : El_model.Ids.Tid.t -> bool
val gtid_of_decision : El_model.Ids.Tid.t -> int

val resolve : decision_durable:bool -> [ `Committed | `Aborted ]
(** Presumed abort: committed iff the coordinator's decision record
    survived. *)

val atomic_ok : decision_durable:bool -> branches_durable:bool list -> bool
(** The invariant no crash point may violate: a durable decision
    implies every branch is durable. *)
