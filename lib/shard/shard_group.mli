(** N manager plants behind one workload: the multi-shard scale-out.

    A shard group partitions the oid space ({!Partition}) across N
    {!El_harness.Experiment.instance} plants — each with its own
    manager, flush array, stable database and (optionally) durable
    store — on one shared simulation engine, and interposes a router
    between the workload generator and the plants.  Routed operations
    travel through per-shard {!El_par.Spsc} mailboxes: the generator
    is the single producer, the shard the single consumer.  Under the
    deterministic engine each mailbox is drained to empty inside the
    producing call, so event order is exactly that of a direct call;
    the rings are the hand-off seam a wall-clock multi-domain driver
    uses, and {!recover_shards} already fans per-shard recovery out
    across {!El_par.Pool} domains.

    A transaction whose writes all landed on one shard commits
    locally — no coordination at all (the adaptive fast path).  A
    transaction that touched several shards commits by two-phase
    commit ({!Two_pc}): PREPARE marker + local commit per participant,
    then a decision transaction on the coordinator shard; the client
    acknowledgement fires only when the decision record is durable.

    With [shards = 1] the router vanishes: the generator talks to the
    single plant's sink directly, and because plants are built by
    {!El_harness.Experiment.build_instance} — the same function the
    solo path uses, called in the same order — a 1-shard group is
    byte-identical to {!El_harness.Experiment.run} on the same config
    (pinned by a Marshal-identity test). *)

open El_model
module Experiment = El_harness.Experiment

type t

val prepare :
  ?wrap_shard_sink:(int -> El_workload.Generator.sink -> El_workload.Generator.sink) ->
  ?on_shard_kill:(int -> Ids.Tid.t -> unit) ->
  ?retain_cross:bool ->
  ?ctl_slots:int ->
  Experiment.config ->
  t
(** Builds the group for [cfg.shards] shards.  [wrap_shard_sink i]
    interposes an oracle on shard [i]'s sink (all routed traffic —
    branch begins, data writes, 2PC markers, decision transactions —
    flows through it); [on_shard_kill i tid] fires for every kill
    shard [i]'s manager issues, before the router reacts.
    [retain_cross] (default false) keeps every cross-shard
    transaction's state for {!cross_views} — the sweep oracle needs
    it; long benches don't.  [ctl_slots] sizes each shard's 2PC
    control region (default 4096 live cross-shard transactions per
    shard).  Raises [Invalid_argument] if the config carries an
    observer (unsupported on the sharded path) or [shards < 1]. *)

val engine : t -> El_sim.Engine.t
val generator : t -> El_workload.Generator.t
val partition : t -> Partition.t
val instances : t -> Experiment.instance array
val config : t -> Experiment.config

val injector : t -> El_fault.Injector.t option
(** The shared fault injector, when the config's plan is non-empty —
    one stream across all shards, consumed in deterministic order. *)

val drain_managers : t -> unit
(** [El_manager.drain]-equivalent on every shard's manager — the
    sweep's settle step. *)

(** {2 2PC registry views — the composite oracle's raw material} *)

type gtx_view = {
  v_gtid : int;
  v_coordinator : int;
  v_participants : int list;
  v_phase : Two_pc.phase;
  v_marker_oids : (int * Ids.Oid.t) list;
      (** the (shard, control oid) of every PREPARE marker written,
          retained after the slots are freed.  Durability evidence
          that outlives the ephemeral log: the marker's version is the
          gtid, slots are reused only after their transaction settles
          durably and versions are monotone per oid, so a recovered
          version [>= v_gtid] at the oid proves the branch's commit
          was durable even after its log records were discarded. *)
  v_decision_oid : Ids.Oid.t option;
      (** the decision record's control oid on the coordinator, same
          monotone-version evidence rules as {!v_marker_oids}. *)
}

val ctl_version : gtid:int -> int
(** The version a control record (PREPARE marker, decision record)
    carries: the gtid shifted to stay positive.  Strictly monotone in
    the gtid, so reused slots keep per-oid version monotonicity. *)

val cross_views : t -> gtx_view list
(** Every transaction that entered two-phase commit (≥ 2 participants),
    oldest first — both settled and in-flight.  Empty unless
    [retain_cross] was set. *)

val live_views : t -> gtx_view list
(** Transactions currently in the registry (not yet settled),
    regardless of [retain_cross]. *)

(** {2 Counters} *)

val single_committed : t -> int
(** Acknowledged transactions that took the single-shard fast path. *)

val cross_committed : t -> int
(** Acknowledged cross-shard (2PC) transactions. *)

val blocked : t -> int
(** Cross-shard transactions whose protocol died mid-flight (killed
    branch or decision): never acknowledged, resolved by presumed
    abort at recovery. *)

val prepares_written : t -> int
(** PREPARE marker records written into participant logs. *)

val shard_committed : t -> int array
(** Per shard: transactions whose commit completed there — fast-path
    singles on their shard, cross-shard transactions on their
    coordinator.  Sums to the generator's committed count. *)

val mailbox_ops : t -> int array
(** Per shard: operations routed through its SPSC mailbox. *)

val branch_acks : t -> int array
(** Per shard: 2PC branch commits acknowledged durable there.  A
    shard's differential model therefore sees
    [shard_committed.(i) + branch_acks.(i)] acknowledged commits in
    total — fast-path singles and coordinated decisions land in the
    first term, prepared branches in the second. *)

(** {2 Running} *)

type shard_stat = {
  ss_shard : int;
  ss_lo : int;
  ss_hi : int;  (** owned data oid range [[lo, hi)] *)
  ss_committed : int;  (** see {!shard_committed} *)
  ss_branch_acks : int;
  ss_decisions : int;  (** decision transactions coordinated here *)
  ss_mailbox_ops : int;
  ss_result : Experiment.result;  (** this plant's own counters *)
}

type run_result = {
  r_global : Experiment.result;
      (** workload-global counters plus plant counters summed across
          shards; at [shards = 1] exactly the solo result *)
  r_shards : shard_stat array;
  r_single_committed : int;
  r_cross_committed : int;
  r_prepares : int;
  r_blocked : int;
}

val collect : t -> overloaded:bool -> run_result
(** Collects without running — for steppers (the sweep) that drove
    the engine themselves. *)

val finish : t -> run_result
(** Runs the engine to the config's runtime, syncs every store and
    collects.  Overload on any shard stops the whole run, as solo. *)

val dispose : t -> unit
(** Closes and removes every shard's store image. *)

val run : Experiment.config -> run_result
(** [prepare] + [finish] + [dispose]. *)

val run_global : Experiment.config -> Experiment.result
(** Just the aggregate — the drop-in the min-space search probes with
    when [shards > 1]. *)

(** {2 Crash capture and sharded recovery} *)

val crash_images : t -> El_recovery.Recovery.image array
(** One crash image per shard, captured at the same engine instant
    (no events run between captures — the engine is halted while this
    executes).  EL managers only, like {!El_recovery.Recovery.crash};
    raises [Invalid_argument] on FW or hybrid shards. *)

val recover_shards :
  ?pool:El_par.Pool.t ->
  El_recovery.Recovery.image array ->
  El_recovery.Recovery.result array
(** Recovers every shard's image — across the pool's domains when one
    is given (one shard per domain), serially otherwise.  Recovery is
    embarrassingly parallel across shards; results are in shard
    order either way. *)

val resolve_in_doubt :
  t ->
  committed_tids:Ids.Tid.t list array ->
  (gtx_view * [ `Committed | `Aborted ]) list
(** Presumed-abort resolution of every retained cross-shard
    transaction against the per-shard recovered committed sets: a
    transaction is committed iff its decision tid is in its
    coordinator's set ({!Two_pc.resolve}). *)
