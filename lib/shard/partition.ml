open El_model

type t = {
  shards : int;
  num_objects : int;
  ctl_slots : int;
  wide : int;  (* shards [0, rem) own width+1 oids, the rest width *)
  width : int;
}

let create ?(ctl_slots = 4096) ~shards ~num_objects () =
  if shards < 1 then invalid_arg "Partition.create: shards must be >= 1";
  if num_objects < shards then
    invalid_arg "Partition.create: fewer objects than shards";
  if ctl_slots < 0 then invalid_arg "Partition.create: negative ctl_slots";
  let ctl_slots = if shards = 1 then 0 else ctl_slots in
  {
    shards;
    num_objects;
    ctl_slots;
    wide = num_objects mod shards;
    width = num_objects / shards;
  }

let shards t = t.shards
let num_objects t = t.num_objects
let ctl_slots t = t.ctl_slots
let total_objects t = t.num_objects + (t.shards * t.ctl_slots)

let range t s =
  if s < 0 || s >= t.shards then invalid_arg "Partition.range: no such shard";
  let lo =
    if s <= t.wide then s * (t.width + 1)
    else (t.wide * (t.width + 1)) + ((s - t.wide) * t.width)
  in
  let hi = lo + t.width + if s < t.wide then 1 else 0 in
  (lo, hi)

let owner t oid =
  let o = Ids.Oid.to_int oid in
  if o < t.num_objects then begin
    let first = t.wide * (t.width + 1) in
    if o < first then o / (t.width + 1) else t.wide + ((o - first) / t.width)
  end
  else begin
    let c = o - t.num_objects in
    if t.ctl_slots = 0 || c >= t.shards * t.ctl_slots then
      invalid_arg "Partition.owner: oid past the control region";
    c / t.ctl_slots
  end

let ctl_oid t ~shard ~slot =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Partition.ctl_oid: no such shard";
  if slot < 0 || slot >= t.ctl_slots then
    invalid_arg "Partition.ctl_oid: no such slot";
  Ids.Oid.of_int (t.num_objects + (shard * t.ctl_slots) + slot)

let is_ctl t oid = Ids.Oid.to_int oid >= t.num_objects

let coordinator t ~gtid =
  if gtid < 0 then invalid_arg "Partition.coordinator: negative gtid";
  gtid mod t.shards
