(** The oid-range partitioner: which shard owns which object.

    The data oid space [[0, num_objects)] is split into [shards]
    contiguous ranges of near-equal width (the first [num_objects mod
    shards] ranges are one wider), so a transaction's write set maps
    to the set of shards whose ranges it touches.

    Above the data range lives the {e control region}: [ctl_slots]
    oids per shard, used by the two-phase-commit machinery for
    PREPARE marker and decision records.  Control oids route to their
    owning shard like any other oid, but the workload generator never
    draws them — its pool stops at [num_objects] — so data traffic
    and 2PC traffic can never collide.  A 1-shard partition has an
    empty control region, keeping the solo oid space bit-for-bit
    unchanged. *)

open El_model

type t

val create : ?ctl_slots:int -> shards:int -> num_objects:int -> unit -> t
(** [ctl_slots] (default 4096, forced to 0 when [shards = 1]) is the
    width of each shard's control region.  Raises [Invalid_argument]
    when [shards < 1] or [num_objects < shards]. *)

val shards : t -> int
val num_objects : t -> int
(** The data range — the generator's draw space. *)

val ctl_slots : t -> int

val total_objects : t -> int
(** [num_objects + shards * ctl_slots] — the sizing every per-shard
    stable database and flush array uses, so control oids flush like
    data. *)

val owner : t -> Ids.Oid.t -> int
(** The shard owning an oid, data or control.  Raises
    [Invalid_argument] past [total_objects]. *)

val range : t -> int -> int * int
(** [range t s] is shard [s]'s data range as [[lo, hi)]. *)

val ctl_oid : t -> shard:int -> slot:int -> Ids.Oid.t
(** The control oid at [slot] of [shard]'s control region. *)

val is_ctl : t -> Ids.Oid.t -> bool

val coordinator : t -> gtid:int -> int
(** The coordinator shard of a global transaction: [gtid mod shards].
    Derivable from the tid alone, so recovery can find the decision
    record without any surviving routing state. *)
