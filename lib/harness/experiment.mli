(** One complete simulation run: engine + disks + log manager +
    workload generator, wired together and measured.

    This reproduces the simulator of §3: the caller chooses the log
    manager (EL with a policy, or the FW baseline), the transaction
    mix, the arrival rate, the flush array (drives × transfer time)
    and the runtime; {!run} executes the simulation and returns every
    statistic the paper's evaluation reports. *)

open El_model

type manager_kind =
  | Ephemeral of El_core.Policy.t
  | Firewall of int  (** log size in blocks *)
  | Hybrid of int array  (** §6 EL–FW hybrid, queue sizes in blocks *)

(** Where the log's durable bytes live. *)
type backend =
  | Sim  (** no store: durability is simulated, as in the original model *)
  | Mem_store
      (** an {!El_store.Backend.mem} image — real serialization and
          scan, no syscalls; fsync barriers are counted no-ops *)
  | File_store of string
      (** a real [disk.img] under the given directory (a fresh
          [Filename.temp_file] per prepared run), written with
          pwrite + fsync *)

type config = {
  kind : manager_kind;
  mix : El_workload.Mix.t;
  arrival_rate : float;  (** transactions per second (paper: 100) *)
  arrival_process : El_workload.Generator.arrival_process;
      (** [Deterministic] (paper), [Poisson], or ON/OFF [Burst] *)
  draw : El_workload.Draw.t;
      (** oid-drawing policy: [Uniform] (paper) or [Zipfian] hot-key
          skew.  Zipfian draws can collide with an active writer, in
          which case the drawing transaction aborts and retries under
          the budget below. *)
  lifetime : El_workload.Lifetime.t;
      (** per-transaction duration scaling: [Fixed] (paper) or
          [Pareto] long tails *)
  max_retries : int;
      (** contention retry budget per logical transaction (0: a
          contended draw just aborts) *)
  retry_backoff : Time.t;
      (** base of the seeded exponential backoff between contention
          retries *)
  runtime : Time.t;  (** simulated span (paper: 500 s) *)
  flush_drives : int;  (** paper: 10 *)
  flush_transfer : Time.t;  (** paper: 25 ms (45 ms in the scarce test) *)
  flush_scheduling : El_disk.Flush_array.scheduling;
      (** [Nearest] (paper) or [Fifo] (ablation) *)
  flush_impl : El_disk.Flush_array.implementation;
      (** [Indexed] (default, O(log B) picks) or [Reference] (the
          retained linear scan, for differential testing and as the
          benchmark baseline) *)
  num_objects : int;  (** paper: 10^7 *)
  seed : int;
  abort_fraction : float;  (** 0 in the paper; >0 for fault injection *)
  observer : El_obs.Obs.config option;
      (** [Some cfg] turns on the observability layer (trace ring,
          metric registry, time-series sampler).  [None] — the default
          — leaves every hook a no-op, and either way the simulation's
          {!result} is identical: observers never schedule events or
          draw randomness. *)
  fault : El_fault.Fault_plan.t;
      (** Disk fault schedule ({!El_fault.Fault_plan.empty} by
          default).  The empty plan creates no injector at all, and an
          armed-but-inert plan (all rates zero, no windows, no
          degraded mode) resolves every op nominally — both produce
          results byte-identical to a fault-free run (pinned by a
          regression test).  A plan with [degraded = Some _] arms the
          load-shedding wrapper: once the flush backlog passes the
          threshold, arriving transactions are admitted and
          immediately shed (killed + aborted), counted in
          [result.killed] and in {!El_fault.Injector.sheds}.  A run
          that exhausts a device's spare sectors raises
          {!El_fault.Injector.Io_fatal} out of {!live.finish}. *)
  backend : backend;
      (** [Sim] by default.  With [Mem_store] or [File_store], every
          sealed log block and stable install is also serialized into
          an {!El_store.Log_store} image before completion hooks fire,
          so {!El_recovery.Recovery.recover_store} can replay it. *)
  pooling : bool;
      (** [true] (default) recycles ledger LOT/LTT entries and hybrid
          arena segments through free lists, so steady-state
          transaction churn allocates nothing.  [false] allocates
          fresh structures each time, for A/B allocation profiling.
          Results are byte-identical either way (pinned by a
          regression test). *)
  group_fsync : bool;
      (** [true] puts the store (when [backend] is not [Sim]) in
          {!El_store.Log_store.Grouped} sync mode: segments appended
          while the engine settles share one barrier instead of one
          each.  [false] (default) fsyncs every segment. *)
  shards : int;
      (** number of oid-range partitions, each with its own manager
          plant (1 — the default — is the solo path).  {!prepare}
          itself only accepts 1; configs with [shards > 1] run through
          [El_shard.Shard_group], which shares this record so every
          sweep and CLI surface carries one config type. *)
}

val default_config : kind:manager_kind -> mix:El_workload.Mix.t -> config
(** The paper's standard setup: 100 TPS, 500 s, 10 drives × 25 ms,
    10^7 objects, seed 42, no aborts, no faults, uniform drawing,
    fixed lifetimes, no contention retries. *)

val apply_preset : config -> El_workload.Workload_preset.t -> config
(** Overwrites the traffic half of the config — mix, arrival process,
    draw, lifetime, retry budget and backoff — with the preset's,
    leaving the plant (kind, rate, runtime, drives, sizing, seed,
    observer, fault plan, backend) untouched. *)

type result = {
  total_blocks : int;  (** configured log size, all generations *)
  log_writes_per_gen : int array;
  log_writes_total : int;
  log_write_rate : float;  (** block writes per second, log only *)
  peak_memory_bytes : int;
  started : int;
  committed : int;
  aborted : int;
  killed : int;
  contention_aborts : int;
      (** aborts caused by a skewed draw hitting an active writer
          (also counted in [aborted]) *)
  contention_retries : int;
      (** relaunches scheduled after contention aborts (each retry is
          a fresh [started] transaction) *)
  evictions : int;
  overloaded : bool;  (** the run aborted with [Log_overloaded] *)
  feasible : bool;  (** no kills, no evictions, no overload *)
  updates_per_sec : float;
  flushes_completed : int;
  forced_flushes : int;
  flush_mean_distance : float;
  flush_backlog_peak : int;
  commit_latency_mean : float;  (** seconds, t₃→t₄ *)
  forwarded_records : int;
  recirculated_records : int;
  el_stats : El_core.El_manager.stats option;
  fw_stats : El_core.Fw_manager.stats option;
  hybrid_stats : El_core.Hybrid_manager.stats option;
  backend_name : string;  (** ["sim"], ["mem"] or ["file"] *)
  store_pwrites : int;  (** store write syscalls (0 under [Sim]) *)
  store_barriers : int;  (** fsync barriers issued (counted no-ops on mem) *)
  store_bytes_written : int;
  store_group_syncs : int;
      (** grouped-barrier waves actually issued (0 under [Sim] or
          [Immediate] sync) *)
}

val run : config -> result

(** A live, partially-wired simulation — for tests and examples that
    want to crash it mid-flight or inspect internals. *)
type live = {
  engine : El_sim.Engine.t;
  generator : El_workload.Generator.t;
  flush : El_disk.Flush_array.t;
  stable : El_disk.Stable_db.t;
  el : El_core.El_manager.t option;  (** when [kind] is [Ephemeral] *)
  fw : El_core.Fw_manager.t option;
  hybrid : El_core.Hybrid_manager.t option;
  obs : El_obs.Obs.t option;
      (** present iff the config's [observer] was set; hand it to
          {!El_obs.Export} after {!live.finish} *)
  fault : El_fault.Injector.t option;
      (** present iff the config's [fault] plan was non-empty; read
          its retry/remap/shed counters after {!live.finish} *)
  store : El_store.Log_store.t option;
      (** present iff the config's [backend] is not [Sim]; scan it
          (before {!dispose}) to recover the durable image *)
  finish : unit -> result;
      (** runs the simulation to [runtime] (from wherever the engine
          is now) and collects the result *)
}

val dispose : live -> unit
(** Closes the live run's store backend and deletes its image file, if
    any.  Callers of {!prepare} with a non-[Sim] backend must call
    this when done; {!run} and the crash runners do it themselves.
    Idempotent for [Sim] runs (a no-op). *)

val prepare :
  ?wrap_sink:(El_workload.Generator.sink -> El_workload.Generator.sink) ->
  ?on_kill:(El_model.Ids.Tid.t -> unit) ->
  config ->
  live
(** [wrap_sink] interposes an observer between the workload generator
    and the log manager (used by the {!El_check} differential oracle
    to shadow every logging call); it must forward each call to the
    sink it was given.  [on_kill] is invoked — before the generator is
    told — whenever the manager kills a transaction.  Both default to
    doing nothing. *)

val run_with_crash :
  config -> crash_at:Time.t -> result * El_recovery.Recovery.result * El_recovery.Recovery.audit
(** Runs an EL simulation, captures a crash image at [crash_at],
    recovers from it and audits the outcome; then lets the simulation
    finish for the run statistics.  Raises [Invalid_argument] for a FW
    config (the paper's FW baseline has no recovery model) or if
    [crash_at] exceeds the runtime; raises [Failure] when the run
    overloads and stops before [crash_at] is reached (an adversarial
    scenario on an undersized log), since no crash image exists. *)

val run_with_crash_store :
  config ->
  crash_at:Time.t ->
  result
  * El_recovery.Recovery.result
  * El_recovery.Recovery.audit
  * El_recovery.Recovery.result option
(** Like {!run_with_crash}, but when the config has a store backend it
    also freezes the durable image at the crash instant
    ({!El_core.El_manager.persist_crash_mark}) and, after the run,
    replays it with {!El_recovery.Recovery.recover_store} — the fourth
    element, [None] under [Sim].  The store replay and the simulated
    recovery describe the same crash, so their recovered states must
    agree (pinned by the backend-equivalence tests). *)

(** {2 Plant instances — the sharding seam}

    One log-manager plant: store, stable database, flush array,
    manager and workload-facing sink.  {!prepare} builds exactly one;
    [El_shard.Shard_group] builds one per shard on a shared engine.
    Both go through {!build_instance}, so a 1-shard group is the solo
    plant by construction. *)
type instance = {
  i_stable : El_disk.Stable_db.t;
  i_flush : El_disk.Flush_array.t;
  i_el : El_core.El_manager.t option;
  i_fw : El_core.Fw_manager.t option;
  i_hybrid : El_core.Hybrid_manager.t option;
  i_store : El_store.Log_store.t option;
  i_sink : El_workload.Generator.sink;
      (** the plant's workload face, already wrapped in the degraded
          load-shedding layer when the fault plan arms one *)
  i_set_on_kill : (El_model.Ids.Tid.t -> unit) -> unit;
      (** installs the kill callback on the plant's manager and its
          shedding wrapper *)
}

val build_instance :
  El_sim.Engine.t ->
  config ->
  ?obs:El_obs.Obs.t ->
  ?inj:El_fault.Injector.t ->
  num_objects:int ->
  unit ->
  instance
(** Builds one plant on [engine].  [num_objects] sizes the stable
    database and flush array — the sharded path passes the global oid
    range plus its 2PC control region, the solo path passes
    [cfg.num_objects].  Creates its own store image per the config's
    [backend] (one per instance, so shards never share a disk). *)

val dispose_instance : instance -> unit
(** Closes the instance's store backend and removes its image file,
    if any. *)

val collect_instance :
  config ->
  generator:El_workload.Generator.t ->
  overloaded:bool ->
  instance ->
  result
(** Collects a {!result} from one plant plus the (possibly shared)
    generator — the workload counters are the generator's globals, the
    plant counters are this instance's own. *)
