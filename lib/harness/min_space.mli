(** Minimum-disk-space search.

    The paper obtained its space figures by re-running simulations with
    less and less disk space "until we observed transactions being
    killed" (§4); the reported figure is the smallest configuration
    that kills nobody.  This module automates that procedure: a
    configuration is {e feasible} when the run finishes with no kills,
    no forced evictions and no overload, and feasibility is monotone
    in the log size (more space never hurts), so the boundary can be
    searched.

    Two search modes share every entry point, selected by the
    optional [pool]:

    - {e binary search} (no [pool], or [Pool.jobs pool = 1]): the
      classic halving loop, one probe at a time — the historical
      serial path, unchanged.
    - {e speculative bracket} ([Pool.jobs pool > 1]): each round
      probes up to [jobs] evenly spaced candidates of the current
      bracket concurrently on the pool, then narrows the bracket as
      if the probes had been answered in ascending order.  Because
      feasibility is monotone and probes are deterministic, the mode
      returns {e exactly} the same minimum (and the same probe result
      for it) as the serial binary search — pinned by a regression
      test on the Figure 4 endpoints in [test/test_par.ml]. *)

open El_model

val min_feasible :
  ?pool:El_par.Pool.t ->
  lo:int ->
  hi:int ->
  (int -> Experiment.result) ->
  (int * Experiment.result) option
(** [min_feasible ~lo ~hi probe] is the smallest [n] in [lo, hi]
    whose probe is feasible, with that probe's result; [None] if even
    [hi] is infeasible.  Assumes monotone feasibility.  With a
    [?pool] of more than one job, probes several candidates per round
    (speculative bracket mode) — same answer, fewer rounds. *)

val min_fw :
  ?pool:El_par.Pool.t ->
  ?run:(Experiment.config -> Experiment.result) ->
  Experiment.config ->
  int * Experiment.result
(** Minimum single-log size for the firewall scheme under the given
    workload (the [kind] field of the config is ignored).  Uses a
    generous sizing run to bracket the search, then {!min_feasible}
    (bracket mode when [pool] has jobs).  [run] (default
    {!Experiment.run}) executes each probe — the sharded CLI injects
    [El_shard.Shard_group.run_global] here, since this library cannot
    depend on the shard layer.  Raises [Failure] if no size up to
    16384 blocks suffices. *)

val min_el_last_gen :
  ?pool:El_par.Pool.t ->
  ?run:(Experiment.config -> Experiment.result) ->
  Experiment.config ->
  make_policy:(int array -> El_core.Policy.t) ->
  leading:int array ->
  hi:int ->
  (int * Experiment.result) option
(** [min_el_last_gen cfg ~make_policy ~leading ~hi] finds the smallest
    last-generation size such that [make_policy (leading @ [n])] is
    feasible, searching n in [gap+1, hi] (bracket mode when [pool]
    has jobs). *)

val min_el_two_gen :
  ?pool:El_par.Pool.t ->
  ?run:(Experiment.config -> Experiment.result) ->
  Experiment.config ->
  make_policy:(int array -> El_core.Policy.t) ->
  g0_candidates:int list ->
  hi:int ->
  (int array * Experiment.result) option
(** Minimises total blocks over two-generation configurations,
    trying each first-generation size in [g0_candidates] and
    searching the second.  With a [?pool], the candidates' searches
    fan out across the pool; outcomes are folded in candidate order,
    so the winner (including the larger-first-generation tie-break)
    is independent of the job count.  Returns the best [sizes] found
    and its run result. *)

val runtime_scale : Experiment.config -> Time.t -> Experiment.config
(** Shortens (or lengthens) a config's runtime — used by tests and
    quick modes; exposed here so callers scale consistently. *)
