(** The paper's experiments (§4), one function per figure or in-text
    result.

    Common setup, from the paper: two transaction types (1 s / 2×100 B
    and 10 s / 4×100 B), 100 TPS deterministic arrivals, 500 s of
    simulated time, two EL generations, 10 database drives at 25 ms
    per flush (except the scarce-bandwidth test at 45 ms).

    Every function returns plain data; rendering lives in the bench
    executable.  [speed] trades fidelity for wall-clock time: [`Full]
    is the paper's 500 s runs with fine sweeps, [`Quick] shortens the
    runs for tests and interactive use (shapes still hold).

    Every sweep takes an optional [pool] ({!El_par.Pool}): the
    independent simulations behind a figure — one per mix point, per
    speculative probe, per candidate generation split — then fan out
    across its workers.  Results are collected in submission order
    and the searches stay bracket-equivalent to their serial
    counterparts, so the returned data is identical at any job count;
    the default is the serial pool. *)

open El_model

type speed = [ `Full | `Quick ]

val runtime_of : speed -> Time.t

(** One x-axis point of Figures 4, 5 and 6 (they share their runs). *)
type mix_row = {
  long_pct : int;  (** percentage of 10 s transactions *)
  fw_blocks : int;  (** Fig. 4, FW series *)
  el_blocks : int;  (** Fig. 4, EL series (recirculation off) *)
  el_sizes : int array;  (** the (g0, g1) split behind [el_blocks] *)
  fw_bandwidth : float;  (** Fig. 5, block writes/s *)
  el_bandwidth : float;
  fw_memory : int;  (** Fig. 6, bytes *)
  el_memory : int;
  updates_per_sec : float;  (** §4: 210 rising to 280 *)
}

val figs_4_5_6 :
  ?pool:El_par.Pool.t -> ?speed:speed -> ?mixes:int list -> unit -> mix_row list
(** Default mixes: 5, 10, 20, 30, 40 — the paper's x-axis range.
    With a [pool], each mix point runs as one pool job. *)

(** One point of Figure 7's trade-off sweep. *)
type fig7_row = {
  g1 : int;  (** last-generation size, blocks *)
  total_blocks : int;
  bw_last : float;  (** writes/s to the last generation *)
  bw_total : float;  (** both generations *)
  feasible : bool;
}

type fig7_result = {
  g0 : int;  (** first generation, fixed at its Fig. 4 optimum *)
  no_recirc_sizes : int array;  (** the Fig. 4 starting point *)
  rows : fig7_row list;  (** descending g1, recirculation on *)
}

val fig7 : ?pool:El_par.Pool.t -> ?speed:speed -> unit -> fig7_result
(** With a [pool], the descending last-generation sweep probes the
    next [jobs] sizes speculatively each round (same rows). *)

(** The §4 in-text headline: EL-with-recirculation minimum vs FW. *)
type headline = {
  fw_blocks : int;
  fw_bandwidth : float;
  el_blocks : int;
  el_sizes : int array;
  el_bandwidth : float;
  space_ratio : float;  (** paper: 4.4 *)
  bandwidth_increase_pct : float;  (** paper: 12 % *)
}

val headline :
  ?pool:El_par.Pool.t -> ?speed:speed -> ?fig7_result:fig7_result -> unit ->
  headline
(** Reuses a precomputed Figure-7 sweep when given, since the headline
    is its smallest feasible point. *)

(** The scarce-flush-bandwidth stress test (10 drives × 45 ms = 222
    flushes/s against 210 updates/s). *)
type scarce = {
  el_sizes : int array;  (** paper: 20 + 11 *)
  total_blocks : int;  (** paper: 31 *)
  bandwidth : float;  (** paper: 13.96 writes/s *)
  mean_flush_distance : float;  (** paper: ≈109,000 *)
  baseline_mean_flush_distance : float;  (** 25 ms case, paper: ≈235,000 *)
  flush_backlog_peak : int;
}

val scarce_flush : ?pool:El_par.Pool.t -> ?speed:speed -> unit -> scarce

(** Beyond the published figures: minimum disk space as the number of
    generations varies (§6: "the optimal number of generations and
    their sizes depends on the application"). *)
type gens_row = {
  generations : int;
  sizes : int array;  (** best sizes found *)
  total : int;
  bandwidth : float;
}

val generation_count_sweep :
  ?pool:El_par.Pool.t -> ?speed:speed -> ?long_pct:int -> unit -> gens_row list
(** Sweeps 1, 2 and 3 generations (recirculation on) at the given mix
    (default the paper's 5 %). *)

val paper_mix : long_fraction:float -> El_workload.Mix.t
val base_config :
  ?speed:speed -> kind:Experiment.manager_kind -> long_pct:int -> unit ->
  Experiment.config
