open El_model
module Engine = El_sim.Engine
module Generator = El_workload.Generator
module Flush_array = El_disk.Flush_array
module Stable_db = El_disk.Stable_db
module El_manager = El_core.El_manager
module Fw_manager = El_core.Fw_manager
module Hybrid_manager = El_core.Hybrid_manager

type manager_kind =
  | Ephemeral of El_core.Policy.t
  | Firewall of int
  | Hybrid of int array

type backend = Sim | Mem_store | File_store of string

type config = {
  kind : manager_kind;
  mix : El_workload.Mix.t;
  arrival_rate : float;
  arrival_process : Generator.arrival_process;
  draw : El_workload.Draw.t;
  lifetime : El_workload.Lifetime.t;
  max_retries : int;
  retry_backoff : Time.t;
  runtime : Time.t;
  flush_drives : int;
  flush_transfer : Time.t;
  flush_scheduling : Flush_array.scheduling;
  flush_impl : Flush_array.implementation;
  num_objects : int;
  seed : int;
  abort_fraction : float;
  observer : El_obs.Obs.config option;
  fault : El_fault.Fault_plan.t;
  backend : backend;
  pooling : bool;
      (* recycle ledger entries / arena segments instead of
         allocating; behaviour-identical, off for A/B profiling *)
  group_fsync : bool;  (* batch store barriers per settle wave *)
  shards : int;
      (* oid-range partitions, one manager plant each; 1 = the solo
         path.  [prepare] itself only accepts 1 — sharded runs go
         through El_shard.Shard_group, which carries this config *)
}

let default_config ~kind ~mix =
  {
    kind;
    mix;
    arrival_rate = 100.0;
    arrival_process = Generator.Deterministic;
    draw = El_workload.Draw.Uniform;
    lifetime = El_workload.Lifetime.Fixed;
    max_retries = 0;
    retry_backoff = Time.of_ms 20;
    runtime = Time.of_sec 500;
    flush_drives = 10;
    flush_transfer = Time.of_ms 25;
    flush_scheduling = Flush_array.Nearest;
    flush_impl = Flush_array.Indexed;
    num_objects = Params.num_objects;
    seed = 42;
    abort_fraction = 0.0;
    observer = None;
    fault = El_fault.Fault_plan.empty;
    backend = Sim;
    pooling = true;
    group_fsync = false;
    shards = 1;
  }

(* A preset replaces the whole traffic description but not the plant
   (drives, log sizing, runtime, seed, backend) — the rate stays the
   caller's so sweeps can push any scenario toward its own knee. *)
let apply_preset cfg (p : El_workload.Workload_preset.t) =
  {
    cfg with
    mix = p.El_workload.Workload_preset.mix;
    arrival_process = p.El_workload.Workload_preset.arrival;
    draw = p.El_workload.Workload_preset.draw;
    lifetime = p.El_workload.Workload_preset.lifetime;
    max_retries = p.El_workload.Workload_preset.max_retries;
    retry_backoff = p.El_workload.Workload_preset.retry_backoff;
  }

type result = {
  total_blocks : int;
  log_writes_per_gen : int array;
  log_writes_total : int;
  log_write_rate : float;
  peak_memory_bytes : int;
  started : int;
  committed : int;
  aborted : int;
  killed : int;
  contention_aborts : int;
  contention_retries : int;
  evictions : int;
  overloaded : bool;
  feasible : bool;
  updates_per_sec : float;
  flushes_completed : int;
  forced_flushes : int;
  flush_mean_distance : float;
  flush_backlog_peak : int;
  commit_latency_mean : float;
  forwarded_records : int;
  recirculated_records : int;
  el_stats : El_manager.stats option;
  fw_stats : Fw_manager.stats option;
  hybrid_stats : Hybrid_manager.stats option;
  backend_name : string;
  store_pwrites : int;
  store_barriers : int;
  store_bytes_written : int;
  store_group_syncs : int;
}

type live = {
  engine : Engine.t;
  generator : Generator.t;
  flush : Flush_array.t;
  stable : Stable_db.t;
  el : El_manager.t option;
  fw : Fw_manager.t option;
  hybrid : Hybrid_manager.t option;
  obs : El_obs.Obs.t option;
  fault : El_fault.Injector.t option;
  store : El_store.Log_store.t option;
  finish : unit -> result;
}

(* One log-manager plant — everything downstream of the workload sink.
   The solo path builds exactly one; the sharded path
   ({!El_shard.Shard_group}) builds one per shard on a shared engine,
   which is why the construction lives in its own function: both paths
   must create the same components in the same order for the
   shards = 1 byte-identity contract to hold by construction. *)
type instance = {
  i_stable : Stable_db.t;
  i_flush : Flush_array.t;
  i_el : El_manager.t option;
  i_fw : Fw_manager.t option;
  i_hybrid : Hybrid_manager.t option;
  i_store : El_store.Log_store.t option;
  i_sink : Generator.sink;
  i_set_on_kill : (Ids.Tid.t -> unit) -> unit;
}

let dispose_store = function
  | None -> ()
  | Some s ->
    let b = El_store.Log_store.backend s in
    let path = El_store.Backend.path b in
    El_store.Backend.close b;
    (match path with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ())

let dispose_instance i = dispose_store i.i_store
let dispose live = dispose_store live.store

let collect_instance cfg ~generator ~overloaded (inst : instance) =
  let el_stats = Option.map El_manager.stats inst.i_el in
  let fw_stats = Option.map Fw_manager.stats inst.i_fw in
  let hybrid_stats = Option.map Hybrid_manager.stats inst.i_hybrid in
  let total_blocks, per_gen, mem_peak, evictions, forwarded, recirculated =
    match (el_stats, fw_stats, hybrid_stats) with
    | Some s, None, None ->
      ( Array.fold_left ( + ) 0 s.El_manager.generation_sizes,
        s.El_manager.log_writes_per_gen,
        s.El_manager.peak_memory_bytes,
        s.El_manager.evictions,
        s.El_manager.forwarded_records,
        s.El_manager.recirculated_records )
    | None, Some s, None ->
      ( s.Fw_manager.size_blocks,
        [| s.Fw_manager.log_writes |],
        s.Fw_manager.peak_memory_bytes,
        0,
        0,
        0 )
    | None, None, Some s ->
      ( Array.fold_left ( + ) 0 s.Hybrid_manager.queue_sizes,
        s.Hybrid_manager.log_writes_per_queue,
        s.Hybrid_manager.peak_memory_bytes,
        0,
        s.Hybrid_manager.regenerated_records,
        0 )
    | _ -> assert false
  in
  let log_writes_total = Array.fold_left ( + ) 0 per_gen in
  let seconds = Time.to_sec_f cfg.runtime in
  let killed = Generator.killed generator in
  {
    total_blocks;
    log_writes_per_gen = per_gen;
    log_writes_total;
    log_write_rate = float_of_int log_writes_total /. seconds;
    peak_memory_bytes = mem_peak;
    started = Generator.started generator;
    committed = Generator.committed generator;
    aborted = Generator.aborted generator;
    killed;
    contention_aborts = Generator.contention_aborts generator;
    contention_retries = Generator.retries generator;
    evictions;
    overloaded;
    feasible = (not overloaded) && killed = 0 && evictions = 0;
    updates_per_sec =
      float_of_int (Generator.data_records_written generator) /. seconds;
    flushes_completed = Flush_array.flushes_completed inst.i_flush;
    forced_flushes = Flush_array.forced_flushes inst.i_flush;
    flush_mean_distance = Flush_array.mean_distance inst.i_flush;
    flush_backlog_peak = Flush_array.peak_backlog inst.i_flush;
    commit_latency_mean =
      El_metrics.Running_stat.mean (Generator.commit_latency generator);
    forwarded_records = forwarded;
    recirculated_records = recirculated;
    el_stats;
    fw_stats;
    hybrid_stats;
    backend_name =
      (match inst.i_store with
      | None -> "sim"
      | Some s -> El_store.Backend.name (El_store.Log_store.backend s));
    store_pwrites =
      (match inst.i_store with
      | None -> 0
      | Some s ->
        (El_store.Backend.counters (El_store.Log_store.backend s))
          .El_store.Backend.pwrites);
    store_barriers =
      (match inst.i_store with
      | None -> 0
      | Some s ->
        (El_store.Backend.counters (El_store.Log_store.backend s))
          .El_store.Backend.barriers);
    store_bytes_written =
      (match inst.i_store with
      | None -> 0
      | Some s ->
        (El_store.Backend.counters (El_store.Log_store.backend s))
          .El_store.Backend.bytes_written);
    store_group_syncs =
      (match inst.i_store with
      | None -> 0
      | Some s -> El_store.Log_store.group_syncs s);
  }

let build_instance engine (cfg : config) ?obs ?inj ~num_objects () =
  (* The durable store, when one is configured.  [Log_store.create]
     truncates, so every prepared run starts from a blank image; the
     file variant gets a unique image inside the caller's directory so
     parallel sweep slices never clobber one another. *)
  let store =
    let sync_mode =
      if cfg.group_fsync then El_store.Log_store.Grouped
      else El_store.Log_store.Immediate
    in
    match cfg.backend with
    | Sim -> None
    | Mem_store ->
      Some (El_store.Log_store.create ~sync_mode (El_store.Backend.mem ()))
    | File_store dir ->
      let path = Filename.temp_file ~temp_dir:dir "el_store" ".img" in
      Some (El_store.Log_store.create ~sync_mode (El_store.Backend.file ~path))
  in
  (match (obs, store) with
  | Some o, Some s ->
    let pwrites = El_obs.Obs.counter o "store.pwrites" in
    let bytes = El_obs.Obs.counter o "store.bytes" in
    let barriers = El_obs.Obs.counter o "store.barriers" in
    El_store.Backend.set_tap
      (El_store.Log_store.backend s)
      (Some
         (function
           | El_store.Backend.Pwrite n ->
             El_metrics.Counter.add pwrites 1;
             El_metrics.Counter.add bytes n
           | El_store.Backend.Pread _ -> ()
           | El_store.Backend.Barrier -> El_metrics.Counter.add barriers 1))
  | _ -> ());
  let stable = Stable_db.create ~num_objects in
  let flush =
    Flush_array.create engine ~drives:cfg.flush_drives
      ~transfer_time:cfg.flush_transfer ~num_objects
      ~scheduling:cfg.flush_scheduling ~implementation:cfg.flush_impl ?obs
      ?fault:inj ?store ()
  in
  let el, fw, hybrid, sink =
    match cfg.kind with
    | Ephemeral policy ->
      let m =
        El_manager.create engine ~policy ~flush ~stable ~pooled:cfg.pooling
          ?obs ?fault:inj ?store ()
      in
      let sink =
        {
          Generator.begin_tx =
            (fun ~tid ~expected_duration ->
              El_manager.begin_tx m ~tid ~expected_duration);
          write_data =
            (fun ~tid ~oid ~version ~size ->
              El_manager.write_data m ~tid ~oid ~version ~size);
          request_commit =
            (fun ~tid ~on_ack -> El_manager.request_commit m ~tid ~on_ack);
          request_abort = (fun ~tid -> El_manager.request_abort m ~tid);
        }
      in
      (Some m, None, None, sink)
    | Firewall size_blocks ->
      let m =
        Fw_manager.create engine ~size_blocks ?obs ?fault:inj ?store ()
      in
      let sink =
        {
          Generator.begin_tx =
            (fun ~tid ~expected_duration ->
              Fw_manager.begin_tx m ~tid ~expected_duration);
          write_data =
            (fun ~tid ~oid ~version ~size ->
              Fw_manager.write_data m ~tid ~oid ~version ~size);
          request_commit =
            (fun ~tid ~on_ack -> Fw_manager.request_commit m ~tid ~on_ack);
          request_abort = (fun ~tid -> Fw_manager.request_abort m ~tid);
        }
      in
      (None, Some m, None, sink)
    | Hybrid queue_sizes ->
      let m =
        Hybrid_manager.create engine ~queue_sizes ~flush ~stable
          ~pooled:cfg.pooling ?obs ?fault:inj ?store ()
      in
      let sink =
        {
          Generator.begin_tx =
            (fun ~tid ~expected_duration ->
              Hybrid_manager.begin_tx m ~tid ~expected_duration);
          write_data =
            (fun ~tid ~oid ~version ~size ->
              Hybrid_manager.write_data m ~tid ~oid ~version ~size);
          request_commit =
            (fun ~tid ~on_ack -> Hybrid_manager.request_commit m ~tid ~on_ack);
          request_abort = (fun ~tid -> Hybrid_manager.request_abort m ~tid);
        }
      in
      (None, None, Some m, sink)
  in
  (* Degraded mode: under a fault storm the flush backlog grows
     without bound; past [shed_backlog] newly arriving transactions
     are shed — admitted, then immediately killed and aborted — so
     the system degrades instead of diverging (§5's stress shedding).
     The wrapper sits inside [wrap_sink] so external oracles see the
     begin and, through the composite kill, the shed itself. *)
  let shed_kill = ref (fun (_ : Ids.Tid.t) -> ()) in
  let sink =
    match inj with
    | Some i -> (
      match (El_fault.Injector.plan i).El_fault.Fault_plan.degraded with
      | None -> sink
      | Some d ->
        let inner = sink in
        {
          inner with
          Generator.begin_tx =
            (fun ~tid ~expected_duration ->
              inner.Generator.begin_tx ~tid ~expected_duration;
              let backlog = Flush_array.pending flush in
              if backlog >= d.El_fault.Fault_plan.shed_backlog then begin
                El_fault.Injector.count_shed i;
                (match obs with
                | None -> ()
                | Some o ->
                  El_obs.Obs.emit o El_obs.Event.Harness
                    (El_obs.Event.Shed
                       { tid = Ids.Tid.to_int tid; backlog }));
                !shed_kill tid;
                inner.Generator.request_abort ~tid
              end);
        })
    | None -> sink
  in
  let set_on_kill f =
    shed_kill := f;
    (match el with Some m -> El_manager.set_on_kill m f | None -> ());
    (match fw with Some m -> Fw_manager.set_on_kill m f | None -> ());
    match hybrid with Some m -> Hybrid_manager.set_on_kill m f | None -> ()
  in
  {
    i_stable = stable;
    i_flush = flush;
    i_el = el;
    i_fw = fw;
    i_hybrid = hybrid;
    i_store = store;
    i_sink = sink;
    i_set_on_kill = set_on_kill;
  }

let prepare ?(wrap_sink = fun sink -> sink) ?(on_kill = fun _ -> ()) cfg =
  if cfg.shards <> 1 then
    invalid_arg
      "Experiment.prepare: shards > 1 runs go through El_shard.Shard_group";
  let engine = Engine.create ~seed:cfg.seed () in
  let obs =
    Option.map (fun c -> El_obs.Obs.create ~config:c engine) cfg.observer
  in
  (* [None] for the empty plan: every component then takes its
     fault-free path, so a default config is byte-identical to a build
     without fault injection. *)
  let inj = El_fault.Injector.create cfg.fault in
  let inst =
    build_instance engine cfg ?obs ?inj ~num_objects:cfg.num_objects ()
  in
  let stable = inst.i_stable in
  let flush = inst.i_flush in
  let el = inst.i_el in
  let fw = inst.i_fw in
  let hybrid = inst.i_hybrid in
  let store = inst.i_store in
  let sink = wrap_sink inst.i_sink in
  (* Contention hooks feed the trace ring only — observability, never
     control flow, so on/off observer identity holds under skew too. *)
  let on_contention ~tid ~oid ~attempt =
    match obs with
    | None -> ()
    | Some o ->
      El_obs.Obs.emit o El_obs.Event.Harness
        (El_obs.Event.Contention
           { tid = Ids.Tid.to_int tid; oid = Ids.Oid.to_int oid; attempt })
  in
  let on_retry ~tid ~attempt =
    match obs with
    | None -> ()
    | Some o ->
      El_obs.Obs.emit o El_obs.Event.Harness
        (El_obs.Event.Retry { tid = Ids.Tid.to_int tid; attempt })
  in
  let generator =
    Generator.create engine ~sink ~mix:cfg.mix ~arrival_rate:cfg.arrival_rate
      ~runtime:cfg.runtime ~arrival_process:cfg.arrival_process
      ~abort_fraction:cfg.abort_fraction ~draw:cfg.draw ~lifetime:cfg.lifetime
      ~max_retries:cfg.max_retries ~retry_backoff:cfg.retry_backoff
      ~on_contention ~on_retry ~num_objects:cfg.num_objects ()
  in
  let kill tid =
    on_kill tid;
    Generator.kill generator tid
  in
  inst.i_set_on_kill kill;
  (* Time-series probes: the backlog/occupancy/memory curves of §4.
     All read-only, sampled at dispatch boundaries by the installed
     observer, so the simulation itself is untouched. *)
  (match obs with
  | None -> ()
  | Some o ->
    El_obs.Obs.add_probe o ~name:"flush_backlog" (fun () ->
        float_of_int (Flush_array.pending flush));
    El_obs.Obs.add_probe o ~name:"active_tx" (fun () ->
        float_of_int (Generator.active generator));
    El_obs.Obs.add_probe o ~name:"awaiting_ack" (fun () ->
        float_of_int (Generator.awaiting_ack generator));
    (match el with
    | Some m ->
      Array.iteri
        (fun i _ ->
          El_obs.Obs.add_probe o
            ~name:(Printf.sprintf "gen%d_occupancy" i)
            (fun () -> float_of_int (El_manager.occupied_blocks m).(i)))
        (El_manager.occupied_blocks m);
      El_obs.Obs.add_probe o ~name:"live_memory_bytes" (fun () ->
          float_of_int
            (El_core.Ledger.memory_bytes (El_manager.ledger m)))
    | None -> ());
    (match fw with
    | Some m ->
      El_obs.Obs.add_probe o ~name:"fw_occupancy" (fun () ->
          float_of_int (Fw_manager.audit_view m).Fw_manager.ra_occupied);
      El_obs.Obs.add_probe o ~name:"live_memory_bytes" (fun () ->
          float_of_int (Fw_manager.stats m).Fw_manager.current_memory_bytes)
    | None -> ());
    (match hybrid with
    | Some m ->
      Array.iteri
        (fun i _ ->
          El_obs.Obs.add_probe o
            ~name:(Printf.sprintf "queue%d_occupancy" i)
            (fun () ->
              (Hybrid_manager.audit_view m).(i).Hybrid_manager.qa_occupied
              |> float_of_int))
        (Hybrid_manager.audit_view m);
      El_obs.Obs.add_probe o ~name:"live_memory_bytes" (fun () ->
          float_of_int
            (Hybrid_manager.stats m).Hybrid_manager.current_memory_bytes)
    | None -> ());
    El_obs.Obs.install o);
  let rec live =
    {
      engine;
      generator;
      flush;
      stable;
      el;
      fw;
      hybrid;
      obs;
      fault = inj;
      store;
      finish = (fun () -> finish ());
    }
  and finish () =
    let overloaded =
      try
        Engine.run engine ~until:cfg.runtime;
        false
      with El_manager.Log_overloaded _ -> true
    in
    (* Under Grouped sync a tail of appended-but-unsynced segments can
       remain; one final barrier makes the end-of-run image durable
       (no-op when clean or Immediate). *)
    (match live.store with
    | Some s -> El_store.Log_store.sync s
    | None -> ());
    (match obs with Some o -> El_obs.Obs.finish o | None -> ());
    collect_instance cfg ~generator ~overloaded inst
  in
  live

let run cfg =
  let live = prepare cfg in
  Fun.protect ~finally:(fun () -> dispose live) live.finish

let run_with_crash_store cfg ~crash_at =
  (match cfg.kind with
  | Firewall _ | Hybrid _ ->
    invalid_arg "Experiment.run_with_crash: FW has no recovery model"
  | Ephemeral _ -> ());
  if Time.(crash_at > cfg.runtime) then
    invalid_arg "Experiment.run_with_crash: crash after end of run";
  let live = prepare cfg in
  Fun.protect
    ~finally:(fun () -> dispose live)
    (fun () ->
      let manager = Option.get live.el in
      let holder = ref None in
      Engine.schedule_at live.engine crash_at (fun () ->
          (* Capture the in-memory image first, then freeze the store:
             both read the same channel state, so they describe the
             same crash instant. *)
          let image = El_recovery.Recovery.crash live.engine manager in
          let mark = El_manager.persist_crash_mark manager in
          holder := Some (image, mark));
      let result = live.finish () in
      match !holder with
      | None ->
        (* The engine stopped before the crash instant — only an
           overload can end a run early, so the crash point was never
           reached.  An adversarial scenario on an undersized log is
           the usual way here. *)
        failwith
          (Printf.sprintf
             "Experiment.run_with_crash: the run %s before the crash \
              instant; crash earlier or enlarge the log"
             (if result.overloaded then "overloaded and stopped"
              else "ended"))
      | Some (image, mark) ->
        let recovery = El_recovery.Recovery.recover ?obs:live.obs image in
        let audit = El_recovery.Recovery.audit image recovery in
        let store_recovery =
          match (live.store, mark) with
          | Some s, Some m ->
            Some
              (El_recovery.Recovery.recover_store ~upto:m
                 ~num_objects:cfg.num_objects
                 (El_store.Log_store.backend s))
          | _ -> None
        in
        (result, recovery, audit, store_recovery))

let run_with_crash cfg ~crash_at =
  let result, recovery, audit, _ = run_with_crash_store cfg ~crash_at in
  (result, recovery, audit)
