open El_model
module Policy = El_core.Policy
module Pool = El_par.Pool

type speed = [ `Full | `Quick ]

let runtime_of = function
  | `Full -> Time.of_sec 500
  | `Quick -> Time.of_sec 120

let paper_mix ~long_fraction = El_workload.Mix.short_long ~long_fraction

let base_config ?(speed = `Full) ~kind ~long_pct () =
  let mix = paper_mix ~long_fraction:(float_of_int long_pct /. 100.0) in
  let cfg = Experiment.default_config ~kind ~mix in
  { cfg with Experiment.runtime = runtime_of speed }

let no_recirc sizes = { (Policy.default ~generation_sizes:sizes) with Policy.recirculate = false }
let with_recirc sizes = Policy.default ~generation_sizes:sizes

(* Candidate first-generation sizes for the two-generation optimum:
   a coarse sweep refined around the best point. *)
let optimize_two_gen ?pool cfg ~make_policy ~coarse ~hi =
  match
    Min_space.min_el_two_gen ?pool cfg ~make_policy ~g0_candidates:coarse ~hi
  with
  | None -> None
  | Some (sizes, result) ->
    let g0 = sizes.(0) in
    let refine = List.filter (fun c -> c > 0 && not (List.mem c coarse)) [ g0 - 1; g0 + 1 ] in
    (match
       Min_space.min_el_two_gen ?pool cfg ~make_policy ~g0_candidates:refine ~hi
     with
    | Some (sizes', result')
      when Array.fold_left ( + ) 0 sizes' < Array.fold_left ( + ) 0 sizes ->
      Some (sizes', result')
    | Some _ | None -> Some (sizes, result))

type mix_row = {
  long_pct : int;
  fw_blocks : int;
  el_blocks : int;
  el_sizes : int array;
  fw_bandwidth : float;
  el_bandwidth : float;
  fw_memory : int;
  el_memory : int;
  updates_per_sec : float;
}

let coarse_candidates = function
  | `Full -> [ 6; 8; 10; 12; 14; 16; 18; 20; 22; 24; 26; 30 ]
  | `Quick -> [ 8; 12; 16; 20; 24 ]

let figs_4_5_6 ?(pool = Pool.serial) ?(speed = `Full)
    ?(mixes = [ 5; 10; 20; 30; 40 ]) () =
  (* One pool job per mix point; the searches inside a point stay
     serial (nesting would degrade to serial anyway).  Pool.map keeps
     submission order, so the rows come back in [mixes] order at any
     job count. *)
  Pool.map pool
    (fun long_pct ->
      let cfg kind = base_config ~speed ~kind ~long_pct () in
      let fw_cfg = cfg (Experiment.Firewall 512) in
      let fw_blocks, fw_result = Min_space.min_fw fw_cfg in
      let el_cfg = cfg (Experiment.Firewall 512) (* kind replaced by probes *) in
      let el =
        optimize_two_gen el_cfg ~make_policy:no_recirc
          ~coarse:(coarse_candidates speed) ~hi:256
      in
      let el_sizes, el_result =
        match el with
        | Some (sizes, result) -> (sizes, result)
        | None -> failwith "figs_4_5_6: no feasible EL configuration found"
      in
      {
        long_pct;
        fw_blocks;
        el_blocks = Array.fold_left ( + ) 0 el_sizes;
        el_sizes;
        fw_bandwidth = fw_result.Experiment.log_write_rate;
        el_bandwidth = el_result.Experiment.log_write_rate;
        fw_memory = fw_result.Experiment.peak_memory_bytes;
        el_memory = el_result.Experiment.peak_memory_bytes;
        updates_per_sec = el_result.Experiment.updates_per_sec;
      })
    mixes

type fig7_row = {
  g1 : int;
  total_blocks : int;
  bw_last : float;
  bw_total : float;
  feasible : bool;
}

type fig7_result = {
  g0 : int;
  no_recirc_sizes : int array;
  rows : fig7_row list;
}

let fig7 ?(pool = Pool.serial) ?(speed = `Full) () =
  let cfg = base_config ~speed ~kind:(Experiment.Firewall 512) ~long_pct:5 () in
  let no_recirc_sizes =
    match
      optimize_two_gen ~pool cfg ~make_policy:no_recirc
        ~coarse:(coarse_candidates speed) ~hi:256
    with
    | Some (sizes, _) -> sizes
    | None -> failwith "fig7: no feasible starting configuration"
  in
  let g0 = no_recirc_sizes.(0) in
  let start_g1 = no_recirc_sizes.(1) in
  let floor = Params.head_tail_gap + 1 in
  let row_of g1 (r : Experiment.result) =
    let seconds = Time.to_sec_f cfg.Experiment.runtime in
    {
      g1;
      total_blocks = g0 + g1;
      bw_last = float_of_int r.Experiment.log_writes_per_gen.(1) /. seconds;
      bw_total = r.Experiment.log_write_rate;
      feasible = r.Experiment.feasible;
    }
  in
  let run_at g1 =
    Experiment.run
      { cfg with Experiment.kind = Experiment.Ephemeral (with_recirc [| g0; g1 |]) }
  in
  (* Recirculation on; shrink the last generation until transactions
     are killed, recording the bandwidth at each size.  With a pool,
     each round speculatively probes the next [jobs] sizes at once and
     keeps rows up to (and including) the first infeasible one — the
     same rows the one-at-a-time descent produces. *)
  let rec sweep g1 acc =
    if g1 < floor then List.rev acc
    else begin
      let k = min (Pool.jobs pool) (g1 - floor + 1) in
      let results =
        Pool.map pool (fun g1 -> row_of g1 (run_at g1)) (List.init k (fun i -> g1 - i))
      in
      let rec consume acc = function
        | [] -> sweep (g1 - k) acc
        | row :: _ when not row.feasible -> List.rev (row :: acc)
        | row :: rest -> consume (row :: acc) rest
      in
      consume acc results
    end
  in
  { g0; no_recirc_sizes; rows = sweep start_g1 [] }

type headline = {
  fw_blocks : int;
  fw_bandwidth : float;
  el_blocks : int;
  el_sizes : int array;
  el_bandwidth : float;
  space_ratio : float;
  bandwidth_increase_pct : float;
}

let headline ?(pool = Pool.serial) ?(speed = `Full) ?fig7_result () =
  let cfg = base_config ~speed ~kind:(Experiment.Firewall 512) ~long_pct:5 () in
  let fw_blocks, fw_result = Min_space.min_fw ~pool cfg in
  let fig7_result =
    match fig7_result with Some r -> r | None -> fig7 ~pool ~speed ()
  in
  let best =
    List.fold_left
      (fun best row -> if row.feasible then Some row else best)
      None fig7_result.rows
  in
  match best with
  | None -> failwith "headline: recirculation sweep found nothing feasible"
  | Some row ->
    let fw_bw = fw_result.Experiment.log_write_rate in
    {
      fw_blocks;
      fw_bandwidth = fw_bw;
      el_blocks = row.total_blocks;
      el_sizes = [| fig7_result.g0; row.g1 |];
      el_bandwidth = row.bw_total;
      space_ratio = float_of_int fw_blocks /. float_of_int row.total_blocks;
      bandwidth_increase_pct = (row.bw_total -. fw_bw) /. fw_bw *. 100.0;
    }

type gens_row = {
  generations : int;
  sizes : int array;
  total : int;
  bandwidth : float;
}

let generation_count_sweep ?(pool = Pool.serial) ?(speed = `Full)
    ?(long_pct = 5) () =
  let cfg = base_config ~speed ~kind:(Experiment.Firewall 512) ~long_pct () in
  let rows = ref [] in
  let record sizes (result : Experiment.result) =
    rows :=
      {
        generations = Array.length sizes;
        sizes;
        total = Array.fold_left ( + ) 0 sizes;
        bandwidth = result.Experiment.log_write_rate;
      }
      :: !rows
  in
  (* One generation: a single recirculating ring. *)
  (match
     Min_space.min_feasible ~pool ~lo:(Params.head_tail_gap + 1) ~hi:512
       (fun n ->
         Experiment.run
           { cfg with Experiment.kind = Experiment.Ephemeral (with_recirc [| n |]) })
   with
  | Some (n, result) -> record [| n |] result
  | None -> ());
  (* Two generations: the paper's configuration. *)
  (match
     optimize_two_gen ~pool cfg ~make_policy:with_recirc
       ~coarse:(coarse_candidates speed) ~hi:256
   with
  | Some (sizes, result) -> record sizes result
  | None -> ());
  (* Three generations: fix the front of the chain near the two-
     generation optimum and search the middle and last coarsely.  The
     (g0, g1) leading pairs are independent searches, so they fan out
     across the pool; the fold visits outcomes in the serial nested
     iteration order, keeping the winner job-count-independent. *)
  let g0_candidates = match speed with `Full -> [ 12; 16; 20 ] | `Quick -> [ 16 ] in
  let g1_candidates = [ 3; 4; 6; 8 ] in
  let leading_pairs =
    List.concat_map
      (fun g0 -> List.map (fun g1 -> (g0, g1)) g1_candidates)
      g0_candidates
  in
  let best3 = ref None in
  List.iter
    (fun ((g0, g1), outcome) ->
      match outcome with
      | Some (g2, result) ->
        let sizes = [| g0; g1; g2 |] in
        let total = Array.fold_left ( + ) 0 sizes in
        (match !best3 with
        | Some (_, best_total, _) when best_total <= total -> ()
        | Some _ | None -> best3 := Some (sizes, total, result))
      | None -> ())
    (Pool.map pool
       (fun (g0, g1) ->
         ( (g0, g1),
           Min_space.min_el_last_gen cfg ~make_policy:with_recirc
             ~leading:[| g0; g1 |] ~hi:128 ))
       leading_pairs);
  (match !best3 with
  | Some (sizes, _, result) -> record sizes result
  | None -> ());
  List.rev !rows

type scarce = {
  el_sizes : int array;
  total_blocks : int;
  bandwidth : float;
  mean_flush_distance : float;
  baseline_mean_flush_distance : float;
  flush_backlog_peak : int;
}

let scarce_flush ?(pool = Pool.serial) ?(speed = `Full) () =
  let base = base_config ~speed ~kind:(Experiment.Firewall 512) ~long_pct:5 () in
  let scarce_cfg = { base with Experiment.flush_transfer = Time.of_ms 45 } in
  (* Follow the paper's procedure: keep the first generation at its
     no-recirculation optimum for this flush rate and shrink only the
     last generation (as in Figure 7).  An unconstrained minimisation
     would instead find a much smaller but furiously recirculating
     configuration -- a different point of the trade-off than the
     paper's 20+11. *)
  let g0 =
    match
      optimize_two_gen ~pool scarce_cfg ~make_policy:no_recirc
        ~coarse:(coarse_candidates speed) ~hi:256
    with
    | Some (sizes, _) -> sizes.(0)
    | None -> failwith "scarce_flush: no feasible starting configuration"
  in
  let sizes =
    match
      Min_space.min_el_last_gen ~pool scarce_cfg ~make_policy:with_recirc
        ~leading:[| g0 |] ~hi:256
    with
    | Some (g1, _) -> [| g0; g1 |]
    | None -> failwith "scarce_flush: no feasible configuration"
  in
  let run_at cfg sizes =
    Experiment.run
      { cfg with Experiment.kind = Experiment.Ephemeral (with_recirc sizes) }
  in
  let r = run_at scarce_cfg sizes in
  let baseline = run_at base sizes in
  {
    el_sizes = sizes;
    total_blocks = Array.fold_left ( + ) 0 sizes;
    bandwidth = r.Experiment.log_write_rate;
    mean_flush_distance = r.Experiment.flush_mean_distance;
    baseline_mean_flush_distance = baseline.Experiment.flush_mean_distance;
    flush_backlog_peak = r.Experiment.flush_backlog_peak;
  }
