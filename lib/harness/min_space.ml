open El_model
module Pool = El_par.Pool

let min_feasible ?(pool = Pool.serial) ~lo ~hi probe =
  if lo > hi then invalid_arg "Min_space.min_feasible: empty range";
  let result_at_hi = probe hi in
  if not result_at_hi.Experiment.feasible then None
  else begin
    let jobs = Pool.jobs pool in
    if jobs = 1 then begin
      (* Plain binary search — the historical serial path, kept
         verbatim so [jobs = 1] runs are byte-identical to a world
         without pools.
         Invariant: [best] is feasible at [best_n]; everything below
         [lo'] is known infeasible. *)
      let rec refine lo' best_n best =
        if lo' >= best_n then Some (best_n, best)
        else begin
          let mid = (lo' + best_n) / 2 in
          let r = probe mid in
          if r.Experiment.feasible then refine lo' mid r
          else refine (mid + 1) best_n best
        end
      in
      refine lo hi result_at_hi
    end
    else begin
      (* Speculative bracket mode: each round probes up to [jobs]
         evenly spaced candidates of the open bracket [lo', best_n)
         concurrently, then narrows the bracket as if the probes had
         been answered one by one in ascending order.  Feasibility is
         monotone in the log size, so the smallest feasible candidate
         bounds the bracket above and every infeasible candidate below
         it raises the floor — the search converges to exactly the
         binary search's minimum (with [jobs = 1] the candidate set
         degenerates to the binary-search midpoint). *)
      let rec refine lo' best_n best =
        if lo' >= best_n then Some (best_n, best)
        else begin
          let width = best_n - lo' in
          let k = min jobs width in
          let candidates =
            List.sort_uniq compare
              (List.init k (fun i -> lo' + (width * (i + 1) / (k + 1))))
          in
          let results = Pool.map pool (fun n -> (n, probe n)) candidates in
          let rec scan lo' = function
            | [] -> refine lo' best_n best
            | (n, r) :: _ when r.Experiment.feasible -> refine lo' n r
            | (n, _) :: rest -> scan (n + 1) rest
          in
          scan lo' results
        end
      in
      refine lo hi result_at_hi
    end
  end

let probe_fw ~run cfg n =
  run { cfg with Experiment.kind = Experiment.Firewall n }

let min_fw ?pool ?(run = Experiment.run) cfg =
  let probe_fw = probe_fw ~run in
  (* A generous run's peak occupancy brackets the answer: the log can
     never need fewer blocks than it ever simultaneously occupied. *)
  let rec bracket size =
    if size > 16384 then failwith "Min_space.min_fw: workload needs >16384 blocks"
    else begin
      let r = probe_fw cfg size in
      if not r.Experiment.feasible then bracket (size * 4)
      else
        let peak =
          match r.Experiment.fw_stats with
          | Some s -> s.El_core.Fw_manager.peak_occupancy
          | None -> assert false
        in
        (* The paper's k-block gap must stay free on top of the peak. *)
        (peak, min 16384 (peak + 8))
    end
  in
  let peak, hi = bracket 512 in
  match min_feasible ?pool ~lo:(max 4 (peak - 2)) ~hi (probe_fw cfg) with
  | Some best -> best
  | None -> failwith "Min_space.min_fw: bracketing failed"

let probe_el ~run cfg ~make_policy sizes =
  run { cfg with Experiment.kind = Experiment.Ephemeral (make_policy sizes) }

let min_el_last_gen ?pool ?(run = Experiment.run) cfg ~make_policy ~leading ~hi
    =
  let probe n = probe_el ~run cfg ~make_policy (Array.append leading [| n |]) in
  let lo = Params.head_tail_gap + 1 in
  min_feasible ?pool ~lo ~hi probe

let min_el_two_gen ?(pool = Pool.serial) ?(run = Experiment.run) cfg
    ~make_policy ~g0_candidates ~hi =
  let best = ref None in
  let consider sizes result =
    let total = Array.fold_left ( + ) 0 sizes in
    let better =
      match !best with
      | None -> true
      | Some (best_sizes, best_total, _) ->
        (* Tie-break toward a larger first generation: it absorbs more
           records before they are forwarded, so at equal total space
           it costs less bandwidth (and matches the paper's choice of
           18+16 over 16+18). *)
        total < best_total
        || (total = best_total && sizes.(0) > (best_sizes : int array).(0))
    in
    if better then best := Some (sizes, total, result)
  in
  (* One last-generation search per candidate first-generation size;
     the searches are independent, so they fan out across the pool
     (each one running its own serial binary search).  The fold below
     visits the outcomes in candidate order, so the tie-break — and
     therefore the winner — is identical at any job count. *)
  let searched =
    Pool.map pool
      (fun g0 ->
        (g0, min_el_last_gen ~run cfg ~make_policy ~leading:[| g0 |] ~hi))
      g0_candidates
  in
  List.iter
    (fun (g0, outcome) ->
      match outcome with
      | Some (g1, result) -> consider [| g0; g1 |] result
      | None -> ())
    searched;
  match !best with
  | Some (sizes, _, result) -> Some (sizes, result)
  | None -> None

let runtime_scale cfg runtime = { cfg with Experiment.runtime = runtime }
