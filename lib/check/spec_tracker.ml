(* Drives the pure durable-log state machine (lib/spec) from a live
   run and checks the implementation against it — the differential
   side of the spec oracle.

   The tracker mirrors [Reference]: it interposes on the workload
   sink, so every begin/write/commit/abort becomes a spec step, the
   manager's kills arrive through [kill], and flush completions
   arrive through [observe_flush] (registered on the flush array).
   Illegal steps are collected as violations rather than raised — a
   sink callback runs deep inside the event loop.  The explicit
   checks ([check_invariant] at every pause, [check_crash] against
   each recovered image, [check_settled] at the end) raise
   [Auditor.Audit_failure] like every other auditor. *)

open El_model
module Generator = El_workload.Generator
module Stable_db = El_disk.Stable_db
module Spec = El_spec.Durable_log

type t = {
  mutable spec : Spec.t;
  mutable violations : string list;  (** newest first *)
  mutable checks : int;
}

let create () = { spec = Spec.init; violations = []; checks = 0 }

let violation t fmt =
  Format.kasprintf (fun s -> t.violations <- s :: t.violations) fmt

(* One transition of the model.  A rejected step means the
   implementation performed an action the durable-log contract
   forbids (or the trace plumbing lost an event); the model state is
   left unchanged so later steps keep producing useful messages
   instead of cascading. *)
let apply t step =
  match Spec.step t.spec step with
  | Ok spec -> t.spec <- spec
  | Error msg -> violation t "spec: illegal step — %s" msg

let wrap t (sink : Generator.sink) =
  {
    Generator.begin_tx =
      (fun ~tid ~expected_duration ->
        apply t (Spec.Begin tid);
        sink.Generator.begin_tx ~tid ~expected_duration);
    write_data =
      (fun ~tid ~oid ~version ~size ->
        apply t (Spec.Append (tid, oid, version));
        sink.Generator.write_data ~tid ~oid ~version ~size);
    request_commit =
      (fun ~tid ~on_ack ->
        (* The commit request puts the COMMIT record into the log
           channel — the spec's log extension.  The ack callback is
           the group commit firing. *)
        apply t (Spec.Log_extension tid);
        let on_ack time =
          apply t (Spec.Commit_ack tid);
          on_ack time
        in
        sink.Generator.request_commit ~tid ~on_ack);
    request_abort =
      (fun ~tid ->
        apply t (Spec.Abort tid);
        sink.Generator.request_abort ~tid);
  }

let kill t tid = apply t (Spec.Kill tid)

(* A completed database-drive transfer both lands the version on disk
   and makes the stable database serve it ([Stable_db.apply] runs in
   the same completion), so the flush-complete and superblock-advance
   steps coincide in this implementation. *)
let observe_flush t oid ~version =
  apply t (Spec.Flush_complete (oid, version));
  apply t (Spec.Superblock_advance (oid, version))

let violations t = List.rev t.violations
let checks t = t.checks

let fail fmt = Format.kasprintf (fun s -> raise (Auditor.Audit_failure s)) fmt

let check_invariant t =
  t.checks <- t.checks + 1;
  match Spec.check t.spec with
  | Ok () -> ()
  | Error msg -> fail "spec: %s" msg

(* The contract at a crash point, checked against the recovered
   database: every acked version is served at least as new (and any
   excess is explainable by a log-extended transaction whose COMMIT
   may have persisted — e.g. inside a torn prefix), and nothing that
   was never acked nor log-extended survives.  The live spec state is
   used as-is: [may_survive] needs the in-flight transactions the
   crash would have wiped. *)
let check_crash t recovered =
  t.checks <- t.checks + 1;
  (match Spec.check t.spec with
  | Ok () -> ()
  | Error msg -> fail "spec: %s" msg);
  List.iter
    (fun (oid, v) ->
      match Stable_db.version recovered oid with
      | None -> fail "spec: acked %a v%d lost by recovery" Ids.Oid.pp oid v
      | Some r when r = v -> ()
      | Some r when r > v ->
        if not (Spec.may_survive t.spec oid r) then
          fail
            "spec: recovery advanced %a to v%d, which no log-extended \
             transaction wrote (acked v%d)"
            Ids.Oid.pp oid r v
      | Some r ->
        fail "spec: acked %a v%d regressed to v%d after recovery" Ids.Oid.pp
          oid v r)
    (Spec.persistent t.spec);
  List.iter
    (fun (oid, r) ->
      if
        Spec.acked_version t.spec oid = None
        && not (Spec.may_survive t.spec oid r)
      then
        fail "spec: recovery holds %a v%d that was never acked nor log-extended"
          Ids.Oid.pp oid r)
    (Stable_db.snapshot recovered)

(* After the run settles (all buffers written, flushes drained) every
   acked version must have completed its flush — "ack implies
   recoverable" with nothing left in flight. *)
let check_settled t =
  t.checks <- t.checks + 1;
  List.iter
    (fun (oid, v) ->
      match Spec.flushed_version t.spec oid with
      | Some f when f = v -> ()
      | Some f ->
        fail "spec: settled run flushed %a at v%d, acked v%d" Ids.Oid.pp oid f
          v
      | None ->
        fail "spec: settled run never flushed acked %a v%d" Ids.Oid.pp oid v)
    (Spec.persistent t.spec)
