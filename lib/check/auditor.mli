(** The invariant auditor: deep consistency checks that may be run at
    any event boundary of a simulation, over any of the three log
    managers.

    The auditor proves, from read-only snapshots ({!El_core.El_manager.audit_view}
    and friends) plus the managers' own structural checks, that the
    bookkeeping every algorithm in the paper depends on actually
    holds mid-run:

    - {b ledger/LOT/LTT consistency} — delegated to
      {!El_core.Ledger.check_invariants} through the managers;
    - {b every non-garbage record has a live cell} — the number of
      cells reachable from the LOT/LTT equals the total membership of
      the generations' cell lists, so no cell is orphaned on either
      side;
    - {b generation FIFO ordering} — under the paper's base ([Youngest])
      placement, the cells of every non-last generation appear in
      non-decreasing ring order from head to tail (recirculation
      staging legitimately breaks this in the last generation, and
      lifetime-hint placement interleaves direct entries with
      forwarded ones, so both are exempt);
    - {b block-space accounting} — [tail = head + occupied (mod size)],
      occupancy within bounds and equal to the metrics gauge, every
      cell's slot inside the occupied region;
    - {b stable-version monotonicity} — the stable database never runs
      ahead of the durably committed reference state.

    All checks raise {!Audit_failure} with a descriptive message; an
    [Assert_failure] escaping a manager's own [check_invariants] is
    converted into one. *)

exception Audit_failure of string

val audit_el : El_core.El_manager.t -> unit
val audit_fw : El_core.Fw_manager.t -> unit
val audit_hybrid : El_core.Hybrid_manager.t -> unit

val audit_live : El_harness.Experiment.live -> unit
(** Dispatches to the audit for whichever manager the experiment
    runs. *)
