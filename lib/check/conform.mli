(** The workload-matrix conformance harness behind [el-sim conform].

    One {e cell} is a (workload preset × log-manager kind) pair; the
    harness runs every cell through three batteries and collects every
    divergence instead of stopping at the first:

    + the audited crash-point sweep ({!Sweep.run} with the
      {!Reference} differential oracle, the {!Spec_tracker}
      durable-log state machine and a crash/recover/audit cycle at
      every EL pause);
    + the same traffic under a torn-write fault plan (0.2 per log
      write), so every crash image carries checksum-failing tails
      recovery must discard without dropping a committed update;
    + the durable-store legs: mem- vs file-backed replays of the run
      must recover identical states and identical results modulo the
      backend name, and (EL only) a mid-run crash under torn faults
      must replay the frozen store image to the same state as the
      simulated crash image.

    Everything is seeded and deterministic: a cell's outcome is a pure
    function of (preset, kind, seed, stride), and a multi-job pool
    fans the sweeps out with identical findings. *)

open El_model

type cell = {
  preset : string;
  kind : string;  (** ["el"], ["fw"] or ["hybrid"] *)
  events : int;  (** dispatched by the base sweep *)
  points : int;  (** audit pauses taken by the base sweep *)
  recoveries : int;  (** crash/recover cycles, base + torn sweeps *)
  committed : int;
  killed : int;
  contention_aborts : int;
      (** skewed-draw collisions; non-zero is the point of the
          contention-bearing presets *)
  contention_retries : int;
  spec_checks : int;  (** explicit durable-log spec checks performed *)
  torn_blocks : int;  (** torn tails discarded across the torn sweep *)
  torn_records : int;
  store_checked : bool;  (** the store battery ran for this cell *)
  failures : string list;  (** every divergence, prefixed by battery *)
}

type report = { cells : cell list; failure_count : int }

val ok : report -> bool

val run :
  ?pool:El_par.Pool.t ->
  ?shards:int ->
  ?presets:El_workload.Workload_preset.t list ->
  ?kinds:(string * El_harness.Experiment.manager_kind) list ->
  ?runtime:Time.t ->
  ?rate:float ->
  ?seed:int ->
  ?stride:int ->
  ?max_points:int ->
  ?min_points:int ->
  ?store_dir:string ->
  ?store_runtime:Time.t ->
  unit ->
  report
(** Runs the full matrix.  Defaults: all six presets, the three
    {!Sweep.standard_kinds}, 20 s runs at 40 TPS, seed 42, stride 100,
    uncapped audit points, no minimum-point requirement, store images
    in the current directory, 6 s store-leg runs.  [min_points] makes
    a cell whose base or torn sweep paused fewer than that many times
    a failure — the CI quick leg requires 50.  The store legs truncate
    the runtime to [store_runtime] (file-backend fsyncs are real) and
    run with the observer off.  [shards] (default 1) runs every cell
    through the sharded composite oracle instead; the store battery is
    solo-only and is skipped (with [store_checked = false]) when
    [shards > 1]. *)
