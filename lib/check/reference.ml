open El_model
module Generator = El_workload.Generator
module El_manager = El_core.El_manager
module Stable_db = El_disk.Stable_db

type state = Active | Commit_pending | Committed | Aborted | Killed

type tx = {
  mutable state : state;
  mutable writes : (Ids.Oid.t * int) list;  (** one entry per oid, newest wins *)
}

type t = {
  txs : tx Ids.Tid.Table.t;  (** every transaction ever begun *)
  committed : int Ids.Oid.Table.t;  (** newest committed version per oid *)
  mutable committed_count : int;
  mutable violations : string list;  (** newest first *)
}

let create () =
  {
    txs = Ids.Tid.Table.create 1024;
    committed = Ids.Oid.Table.create 1024;
    committed_count = 0;
    violations = [];
  }

let violation t fmt =
  Format.kasprintf (fun s -> t.violations <- s :: t.violations) fmt

let find t tid = Ids.Tid.Table.find_opt t.txs tid

let state_name = function
  | Active -> "active"
  | Commit_pending -> "commit-pending"
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Killed -> "killed"

let commit_write t (oid, version) =
  match Ids.Oid.Table.find_opt t.committed oid with
  | Some v when v >= version -> ()
  | Some _ | None -> Ids.Oid.Table.replace t.committed oid version

let wrap t (sink : Generator.sink) =
  {
    Generator.begin_tx =
      (fun ~tid ~expected_duration ->
        (match find t tid with
        | Some _ -> violation t "begin of already-seen %a" Ids.Tid.pp tid
        | None ->
          Ids.Tid.Table.replace t.txs tid { state = Active; writes = [] });
        sink.Generator.begin_tx ~tid ~expected_duration);
    write_data =
      (fun ~tid ~oid ~version ~size ->
        (match find t tid with
        | Some tx when tx.state = Active ->
          tx.writes <- (oid, version) :: List.remove_assoc oid tx.writes
        | Some tx ->
          violation t "write by %s transaction %a" (state_name tx.state)
            Ids.Tid.pp tid
        | None -> violation t "write by unknown transaction %a" Ids.Tid.pp tid);
        sink.Generator.write_data ~tid ~oid ~version ~size);
    request_commit =
      (fun ~tid ~on_ack ->
        (match find t tid with
        | Some tx when tx.state = Active -> tx.state <- Commit_pending
        | Some tx ->
          violation t "commit request by %s transaction %a"
            (state_name tx.state) Ids.Tid.pp tid
        | None ->
          violation t "commit request by unknown transaction %a" Ids.Tid.pp tid);
        let on_ack time =
          (match find t tid with
          | Some tx when tx.state = Commit_pending ->
            tx.state <- Committed;
            t.committed_count <- t.committed_count + 1;
            List.iter (commit_write t) tx.writes
          | Some tx ->
            violation t "commit ack for %s transaction %a"
              (state_name tx.state) Ids.Tid.pp tid
          | None ->
            violation t "commit ack for unknown transaction %a" Ids.Tid.pp tid);
          on_ack time
        in
        sink.Generator.request_commit ~tid ~on_ack);
    request_abort =
      (fun ~tid ->
        (match find t tid with
        | Some tx when tx.state = Active -> tx.state <- Aborted
        | Some tx ->
          violation t "abort request by %s transaction %a"
            (state_name tx.state) Ids.Tid.pp tid
        | None ->
          violation t "abort request by unknown transaction %a" Ids.Tid.pp tid);
        sink.Generator.request_abort ~tid);
  }

let kill t tid =
  match find t tid with
  | Some tx when tx.state = Active -> tx.state <- Killed
  | Some tx ->
    violation t "kill of %s transaction %a" (state_name tx.state) Ids.Tid.pp tid
  | None -> violation t "kill of unknown transaction %a" Ids.Tid.pp tid

let committed_count t = t.committed_count

let committed_versions t =
  Ids.Oid.Table.fold (fun oid v acc -> (oid, v) :: acc) t.committed []

let violations t = List.rev t.violations

let fail fmt = Format.kasprintf (fun s -> raise (Auditor.Audit_failure s)) fmt

let sorted_versions l =
  List.sort (fun (a, _) (b, _) -> Ids.Oid.compare a b) l

let check_el t m =
  let acked = El_manager.acked_commits m in
  if acked <> t.committed_count then
    fail "oracle: manager acknowledged %d commits, model holds %d" acked
      t.committed_count;
  let model = sorted_versions (committed_versions t) in
  let manager = sorted_versions (El_manager.committed_reference m) in
  let rec compare_versions = function
    | [], [] -> ()
    | (oid, vm) :: _, [] ->
      fail "oracle: model commits %a v%d, absent from manager reference"
        Ids.Oid.pp oid vm
    | [], (oid, vr) :: _ ->
      fail "oracle: manager reference holds %a v%d the model never committed"
        Ids.Oid.pp oid vr
    | (om, vm) :: restm, (or_, vr) :: restr ->
      let c = Ids.Oid.compare om or_ in
      if c < 0 then
        fail "oracle: model commits %a v%d, absent from manager reference"
          Ids.Oid.pp om vm
      else if c > 0 then
        fail "oracle: manager reference holds %a v%d the model never committed"
          Ids.Oid.pp or_ vr
      else if vm <> vr then
        fail "oracle: %a committed at v%d in the model, v%d in the manager"
          Ids.Oid.pp om vm vr
      else compare_versions (restm, restr)
  in
  compare_versions (model, manager)

let check_settled_stable t stable =
  List.iter
    (fun (oid, version) ->
      match Stable_db.version stable oid with
      | None ->
        fail "oracle: committed %a v%d never reached the stable version"
          Ids.Oid.pp oid version
      | Some v when v <> version ->
        fail "oracle: stable holds %a v%d, model committed v%d" Ids.Oid.pp oid
          v version
      | Some _ -> ())
    (committed_versions t);
  List.iter
    (fun (oid, v) ->
      if not (Ids.Oid.Table.mem t.committed oid) then
        fail "oracle: stable holds %a v%d but no transaction committed it"
          Ids.Oid.pp oid v)
    (Stable_db.snapshot stable)
