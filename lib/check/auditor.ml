open El_model
module El_manager = El_core.El_manager
module Fw_manager = El_core.Fw_manager
module Hybrid_manager = El_core.Hybrid_manager
module Ledger = El_core.Ledger
module Cell = El_core.Cell
module Policy = El_core.Policy
module Stable_db = El_disk.Stable_db
module Experiment = El_harness.Experiment

exception Audit_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Audit_failure s)) fmt

(* The managers' own deep checks use assertions; surface them as audit
   failures so a sweep can report them instead of dying. *)
let structural context f =
  try f ()
  with Assert_failure (file, line, _) ->
    fail "%s: structural invariant violated (%s:%d)" context file line

let slot_occupied ~head ~size ~occupied slot =
  occupied = size || (slot - head + size) mod size < occupied

let audit_el m =
  structural "el" (fun () -> El_manager.check_invariants m);
  let placement = (El_manager.policy m).Policy.placement in
  let list_cells = ref 0 in
  Array.iter
    (fun (v : El_manager.gen_audit) ->
      let g = v.El_manager.ga_index in
      let size = v.El_manager.ga_size in
      let head = v.El_manager.ga_head in
      let occupied = v.El_manager.ga_occupied in
      if occupied < 0 || occupied > size then
        fail "el gen %d: occupied %d outside [0, %d]" g occupied size;
      if v.El_manager.ga_tail <> (head + occupied) mod size then
        fail "el gen %d: tail %d <> head %d + occupied %d (mod %d)" g
          v.El_manager.ga_tail head occupied size;
      if v.El_manager.ga_occupancy_gauge <> occupied then
        fail "el gen %d: occupancy gauge %d <> occupied %d" g
          v.El_manager.ga_occupancy_gauge occupied;
      if v.El_manager.ga_staged > 0 && not v.El_manager.ga_last then
        fail "el gen %d: %d staged cells outside the last generation" g
          v.El_manager.ga_staged;
      list_cells := !list_cells + List.length v.El_manager.ga_cells;
      let ring_pos slot = (slot - head + size) mod size in
      let last_pos = ref (-1) in
      List.iter
        (fun (c : Cell.t) ->
          if Cell.is_garbage c.Cell.tracked then
            fail "el gen %d: garbage record still listed" g;
          if c.Cell.gen <> g then
            fail "el gen %d: listed cell claims generation %d" g c.Cell.gen;
          if c.Cell.slot = Cell.unplaced_slot then
            fail "el gen %d: unplaced cell visible at an event boundary" g
          else if c.Cell.slot = Cell.staged_slot then (
            if not v.El_manager.ga_last then
              fail "el gen %d: staged cell outside the last generation" g)
          else begin
            if c.Cell.slot < 0 || c.Cell.slot >= size then
              fail "el gen %d: cell slot %d outside [0, %d)" g c.Cell.slot size;
            if not (slot_occupied ~head ~size ~occupied c.Cell.slot) then
              fail "el gen %d: cell in unoccupied slot %d (head %d, occ %d)" g
                c.Cell.slot head occupied;
            (* FIFO ordering: head-to-tail cell order follows ring slot
               order.  Only provable for non-last generations under the
               base placement — staging (last gen) and lifetime hints
               interleave entry points. *)
            if (not v.El_manager.ga_last) && placement = Policy.Youngest then begin
              let p = ring_pos c.Cell.slot in
              if p < !last_pos then
                fail
                  "el gen %d: FIFO order violated — slot %d (ring %d) listed \
                   after ring position %d"
                  g c.Cell.slot p !last_pos;
              last_pos := p
            end
          end)
        v.El_manager.ga_cells)
    (El_manager.audit_view m);
  let ledger_cells = Ledger.live_cells (El_manager.ledger m) in
  if ledger_cells <> !list_cells then
    fail "el: ledger reaches %d live cells but generation lists hold %d"
      ledger_cells !list_cells;
  (* The stable version may lag the durably committed state but never
     lead it, and never hold an object that was never committed. *)
  let reference = Ids.Oid.Table.create 256 in
  List.iter
    (fun (oid, version) -> Ids.Oid.Table.replace reference oid version)
    (El_manager.committed_reference m);
  List.iter
    (fun (oid, stable_version) ->
      match Ids.Oid.Table.find_opt reference oid with
      | None ->
        fail "el: stable holds %a v%d but no commit of it is durable"
          Ids.Oid.pp oid stable_version
      | Some committed ->
        if stable_version > committed then
          fail "el: stable holds %a v%d ahead of durably committed v%d"
            Ids.Oid.pp oid stable_version committed)
    (Stable_db.snapshot (El_manager.stable m))

let audit_fw m =
  structural "fw" (fun () -> Fw_manager.check_invariants m);
  let v = Fw_manager.audit_view m in
  if v.Fw_manager.ra_occupied < 0 || v.Fw_manager.ra_occupied > v.Fw_manager.ra_size
  then
    fail "fw: occupied %d outside [0, %d]" v.Fw_manager.ra_occupied
      v.Fw_manager.ra_size;
  if
    v.Fw_manager.ra_tail
    <> (v.Fw_manager.ra_head + v.Fw_manager.ra_occupied) mod v.Fw_manager.ra_size
  then
    fail "fw: tail %d <> head %d + occupied %d (mod %d)" v.Fw_manager.ra_tail
      v.Fw_manager.ra_head v.Fw_manager.ra_occupied v.Fw_manager.ra_size;
  if v.Fw_manager.ra_live_records > 0 && v.Fw_manager.ra_occupied = 0 then
    fail "fw: %d live records in an empty ring" v.Fw_manager.ra_live_records

let audit_hybrid m =
  structural "hybrid" (fun () -> Hybrid_manager.check_invariants m);
  Array.iter
    (fun (v : Hybrid_manager.queue_audit) ->
      let q = v.Hybrid_manager.qa_index in
      if v.Hybrid_manager.qa_occupied < 0
         || v.Hybrid_manager.qa_occupied > v.Hybrid_manager.qa_size
      then
        fail "hybrid queue %d: occupied %d outside [0, %d]" q
          v.Hybrid_manager.qa_occupied v.Hybrid_manager.qa_size;
      if
        v.Hybrid_manager.qa_tail
        <> (v.Hybrid_manager.qa_head + v.Hybrid_manager.qa_occupied)
           mod v.Hybrid_manager.qa_size
      then
        fail "hybrid queue %d: tail %d <> head %d + occupied %d (mod %d)" q
          v.Hybrid_manager.qa_tail v.Hybrid_manager.qa_head
          v.Hybrid_manager.qa_occupied v.Hybrid_manager.qa_size;
      if v.Hybrid_manager.qa_anchored > 0 && v.Hybrid_manager.qa_occupied = 0
      then
        fail "hybrid queue %d: %d anchors in an empty queue" q
          v.Hybrid_manager.qa_anchored)
    (Hybrid_manager.audit_view m)

let audit_live (live : Experiment.live) =
  match (live.Experiment.el, live.Experiment.fw, live.Experiment.hybrid) with
  | Some m, _, _ -> audit_el m
  | None, Some m, _ -> audit_fw m
  | None, None, Some m -> audit_hybrid m
  | None, None, None -> fail "experiment wired to no manager"
