(** The deterministic crash-point sweeper.

    A sweep replays a seeded {!El_harness.Experiment.config} and
    pauses at every [stride]-th dispatched event (via
    {!El_sim.Engine.run_steps}, so pause points are event boundaries
    and bit-for-bit reproducible).  At each pause it

    - runs the {!Auditor} over the live manager;
    - for an EL manager (optionally), captures a {!El_recovery.Recovery.crash}
      image, recovers from it and audits the recovered database
      against the reference committed state — i.e. simulates a crash
      at that exact event without disturbing the run;

    then lets the run settle (generator finished, manager drained,
    engine run dry) and performs the final {!Reference} differential
    checks.  Failures are collected, not raised, so one sweep reports
    every divergence it finds.

    With a multi-job {!El_par.Pool}, the crash points fan out across
    the pool: each worker replays the same seeded run — deterministic
    and fully self-owned, so every replay sees bit-identical states —
    and audits every [jobs]-th pause; one worker also performs the
    settled-state checks.  The merged outcome (including the exact
    (event-index, violation) failure list and its order) is identical
    to the serial sweep's, so parallelism can never mask, invent or
    reorder a divergence — pinned by an equivalence test in
    [test/test_par.ml]. *)

open El_model

type outcome = {
  kind : string;  (** ["el"], ["fw"] or ["hybrid"] *)
  seed : int;
  shards : int;  (** 1: the solo path; > 1: the sharded composite *)
  events : int;  (** events dispatched over the whole run *)
  points : int;  (** audit pauses taken *)
  recoveries : int;  (** crash/recover/audit cycles (EL only) *)
  failures : (int * string) list;
      (** (events dispatched at detection, message), oldest first *)
  overloaded : bool;  (** the run died with [Log_overloaded] *)
  faulted : bool;
      (** the run died with {!El_fault.Injector.Io_fatal} — a device
          ran out of spare sectors (deterministic per plan + seed) *)
  committed : int;  (** transactions committed by the generator *)
  killed : int;  (** includes transactions shed by degraded mode *)
  contention_aborts : int;
      (** aborts from a skewed draw hitting an active writer (0 under
          uniform drawing) *)
  contention_retries : int;  (** backoff relaunches after those aborts *)
  max_records_scanned : int;  (** largest recovery scan seen *)
  torn_blocks : int;
      (** torn tails discarded, summed over every crash image audited *)
  torn_records : int;
  io_retries : int;  (** transient failures absorbed over the run *)
  io_remaps : int;  (** spare-sector remaps over the run *)
  sheds : int;  (** transactions shed by degraded mode *)
  spec_checks : int;
      (** explicit {!Spec_tracker} checks performed (invariant at each
          pause, recovered-image check at each crash point, settled
          check); 0 unless [spec] was set *)
  cross_committed : int;
      (** cross-shard (2PC) transactions acknowledged; 0 when
          [shards = 1] *)
  blocked_cross : int;
      (** cross-shard transactions whose protocol died mid-flight and
          blocked (never acknowledged, presumed abort at recovery) *)
  atomic_checks : int;
      (** cross-shard transactions checked against the global
          atomic-commit invariant, summed over every crash point *)
}

val run :
  ?pool:El_par.Pool.t ->
  ?stride:int ->
  ?max_points:int ->
  ?recover:bool ->
  ?oracle:bool ->
  ?spec:bool ->
  El_harness.Experiment.config ->
  outcome
(** [stride] (default 100) is the number of events between pauses;
    [max_points] caps the number of pauses (default: no cap);
    [recover] (default true) enables the per-pause crash/recovery
    cycle on EL runs; [oracle] (default true) enables the differential
    model and its settled-state checks; [spec] (default false) also
    replays the run against the {!El_spec.Durable_log} state machine
    via {!Spec_tracker} — every sink event, kill and flush completion
    must be a legal step, the [persistent ⊆ ephemeral] invariant must
    hold at every pause, each recovered crash image must agree with
    the spec's durable promises, and the settled state must have
    flushed every ack; [pool] (default serial) fans the audit pauses
    out across its workers with an outcome identical to the serial
    sweep's.  Raises [Invalid_argument] if [stride <= 0].

    With [shards > 1] in the config, the run goes through
    [El_shard.Shard_group] and the oracle becomes composite: one
    {!Reference} model and one {!Spec_tracker} per shard (each shard's
    sink traffic — branches, 2PC markers, decision transactions — is
    shadowed independently), per-shard crash/recover/audit at every
    owned pause, plus the global atomic-commit invariant over the
    jointly recovered committed sets: no crash point may recover a
    cross-shard transaction with a durable decision and a missing
    branch, and no acknowledged transaction may lack its durable
    decision record.  The settled checks add router conservation
    (generator acks = singles + cross) and per-shard ack
    accounting. *)

val kind_name : El_harness.Experiment.manager_kind -> string

val scale_kind :
  float -> El_harness.Experiment.manager_kind -> El_harness.Experiment.manager_kind
(** [scale_kind f kind] multiplies the manager's log budget (generation
    sizes, FW blocks) by [f], rounding up; [f <= 1.0] returns the kind
    unchanged.  Used to size the standard geometries for a preset's
    {!El_workload.Workload_preset.space_factor}. *)

val standard_config :
  kind:El_harness.Experiment.manager_kind ->
  ?runtime:Time.t ->
  ?rate:float ->
  ?seed:int ->
  ?abort_fraction:float ->
  ?arrival_process:El_workload.Generator.arrival_process ->
  ?backend:El_harness.Experiment.backend ->
  ?preset:El_workload.Workload_preset.t ->
  unit ->
  El_harness.Experiment.config
(** A check-sized configuration (small log, short transactions, a
    modest flush array) shared by the test suite and the [check] CLI
    subcommand, so both sweep the same state space.  Defaults: 20 s
    runtime, 40 TPS, seed 42, no aborts, deterministic arrivals,
    [Sim] backend.  [preset], when given, replaces the traffic half
    (mix, arrivals, draw, lifetime, retry budget) via
    {!El_harness.Experiment.apply_preset} — note it overrides
    [arrival_process] too — and scales [kind] by the preset's
    [space_factor] (see {!scale_kind}). *)

val standard_kinds : unit -> (string * El_harness.Experiment.manager_kind) list
(** The three managers swept by default: an EL chain, the FW baseline
    and the §6 hybrid, each sized to stay feasible under
    {!standard_config}'s load. *)
