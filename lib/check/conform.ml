open El_model
module Experiment = El_harness.Experiment
module Generator = El_workload.Generator
module Preset = El_workload.Workload_preset
module Recovery = El_recovery.Recovery
module FP = El_fault.Fault_plan

type cell = {
  preset : string;
  kind : string;
  events : int;
  points : int;
  recoveries : int;
  committed : int;
  killed : int;
  contention_aborts : int;
  contention_retries : int;
  spec_checks : int;
  torn_blocks : int;
  torn_records : int;
  store_checked : bool;
  failures : string list;
}

type report = { cells : cell list; failure_count : int }

let ok report = report.failure_count = 0

(* The torn battery reuses the fault CLI's storm shape: torn writes on
   the log channels only — latency faults on a log channel can defer a
   survivor's forward write past its origin slot's reuse, a real
   hazard documented in DESIGN.md Sec. 10, so the conformance matrix
   keeps timing nominal and attacks the crash images instead. *)
let torn_plan ~seed =
  FP.make ~seed
    ~log_spec:{ FP.clean_spec with FP.torn_rate = 0.2 }
    ~log_gens:2 ~flush_drives:2 ()

(* Store-backend results compared modulo the fields that name the
   backend; the counters themselves must agree (mem counts its
   barriers even though they are no-ops). *)
let neutral_result (r : Experiment.result) =
  { r with Experiment.backend_name = "" }

let recovered_view (r : Recovery.result) =
  ( List.sort compare (El_disk.Stable_db.snapshot r.Recovery.recovered),
    List.sort compare r.Recovery.committed_tids,
    r.Recovery.records_scanned,
    r.Recovery.torn_blocks,
    r.Recovery.torn_records )

let run_and_recover (cfg : Experiment.config) =
  let live = Experiment.prepare cfg in
  Fun.protect
    ~finally:(fun () -> Experiment.dispose live)
    (fun () ->
      let result = live.Experiment.finish () in
      let store = Option.get live.Experiment.store in
      let r =
        Recovery.recover_store ~num_objects:cfg.Experiment.num_objects
          (El_store.Log_store.backend store)
      in
      (result, recovered_view r))

(* Battery 3: the durable-store legs.  (a) the mem- and file-backed
   replays of the same seeded run must recover identical states and
   produce identical results modulo the backend name; (b) EL only, a
   mid-run crash under torn faults: the frozen store image must replay
   to the same recovered state as the simulated crash image. *)
let store_battery ~fail ~store_dir ~store_runtime (cfg : Experiment.config) =
  let cfg =
    { cfg with Experiment.runtime = store_runtime; observer = None }
  in
  let rm, sm = run_and_recover { cfg with Experiment.backend = Mem_store } in
  let rf, sf =
    run_and_recover { cfg with Experiment.backend = File_store store_dir }
  in
  if Marshal.to_string sm [] <> Marshal.to_string sf [] then
    fail "mem/file store replays recovered different states";
  if
    Marshal.to_string (neutral_result rm) []
    <> Marshal.to_string (neutral_result rf) []
  then fail "mem/file runs diverged beyond the backend name";
  match cfg.Experiment.kind with
  | Experiment.Firewall _ | Experiment.Hybrid _ -> ()
  | Experiment.Ephemeral _ ->
    let cfg =
      {
        cfg with
        Experiment.backend = Mem_store;
        fault = torn_plan ~seed:cfg.Experiment.seed;
      }
    in
    let crash_at = Time.div_int (Time.mul_int store_runtime 3) 4 in
    let _result, sim, audit, store =
      Experiment.run_with_crash_store cfg ~crash_at
    in
    if not audit.Recovery.ok then
      fail
        (Format.asprintf "crash recovery diverged under torn faults: %a"
           Recovery.pp_audit audit);
    (match store with
    | None -> fail "store recovery missing from crash run"
    | Some st ->
      if
        Marshal.to_string (recovered_view sim) []
        <> Marshal.to_string (recovered_view st) []
      then fail "store replay disagrees with the simulated crash image")

let sweep_failures ~fail ~min_points (o : Sweep.outcome) =
  if o.Sweep.overloaded then fail "log overloaded"
  else if o.Sweep.faulted then fail "io fatal"
  else if o.Sweep.points < min_points then
    fail
      (Printf.sprintf "only %d audit points (need %d)" o.Sweep.points
         min_points);
  List.iter
    (fun (at, msg) -> fail (Printf.sprintf "[event %d] %s" at msg))
    o.Sweep.failures

let run_cell ?pool ~shards ~runtime ~rate ~seed ~stride ~max_points ~min_points
    ~store_dir ~store_runtime (p : Preset.t) (kind_name, kind) =
  let failures = ref [] in
  let fail ~battery msg =
    failures := Printf.sprintf "%s: %s" battery msg :: !failures
  in
  (* Battery 1: the audited crash-point sweep — Auditor at every
     pause, crash/recover/audit at every EL pause, the Reference
     differential model and the machine-checked durable-log spec over
     the whole run.  With [shards > 1] the sweep runs the sharded
     composite oracle instead (per-shard models plus the global
     atomic-commit invariant over every crash point). *)
  let cfg = Sweep.standard_config ~kind ~runtime ~rate ~seed ~preset:p () in
  let cfg = { cfg with Experiment.shards } in
  let base =
    Sweep.run ?pool ~stride ~max_points ~recover:true ~oracle:true ~spec:true
      cfg
  in
  sweep_failures ~fail:(fail ~battery:"sweep") ~min_points base;
  (* Battery 2: the same traffic under torn log writes — every crash
     image now has checksum-failing tails that recovery must discard
     without losing a committed update. *)
  let torn =
    Sweep.run ?pool ~stride ~max_points ~recover:true ~oracle:true
      { cfg with Experiment.fault = torn_plan ~seed }
  in
  sweep_failures ~fail:(fail ~battery:"torn") ~min_points torn;
  (* The store battery replays through the solo harness, which has no
     sharded path — skipped (and flagged) when shards > 1. *)
  if shards = 1 then
    store_battery
      ~fail:(fail ~battery:"store")
      ~store_dir ~store_runtime cfg;
  {
    preset = p.Preset.name;
    kind = kind_name;
    events = base.Sweep.events;
    points = base.Sweep.points;
    recoveries = base.Sweep.recoveries + torn.Sweep.recoveries;
    committed = base.Sweep.committed;
    killed = base.Sweep.killed;
    contention_aborts = base.Sweep.contention_aborts;
    contention_retries = base.Sweep.contention_retries;
    spec_checks = base.Sweep.spec_checks;
    torn_blocks = torn.Sweep.torn_blocks;
    torn_records = torn.Sweep.torn_records;
    store_checked = shards = 1;
    failures = List.rev !failures;
  }

let run ?pool ?(shards = 1) ?(presets = Preset.all)
    ?(kinds = Sweep.standard_kinds ()) ?(runtime = Time.of_sec 20)
    ?(rate = 40.0) ?(seed = 42) ?(stride = 100) ?(max_points = max_int)
    ?(min_points = 0) ?(store_dir = ".") ?(store_runtime = Time.of_sec 6) () =
  let cells =
    List.concat_map
      (fun p ->
        List.map
          (run_cell ?pool ~shards ~runtime ~rate ~seed ~stride ~max_points
             ~min_points ~store_dir ~store_runtime p)
          kinds)
      presets
  in
  {
    cells;
    failure_count =
      List.fold_left (fun a c -> a + List.length c.failures) 0 cells;
  }
