(** The spec oracle: drives the {!El_spec.Durable_log} state machine
    from a live run and checks the implementation against it.

    Like {!Reference}, the tracker interposes on the workload sink —
    every begin/write/commit-request/ack/abort becomes a spec step —
    and the manager's kills arrive through {!kill}.  Flush completions
    arrive through {!observe_flush}, registered on the run's
    {!El_disk.Flush_array} with [add_flush_observer].  An illegal step
    (one the durable-log contract forbids) is recorded as a violation,
    not raised; the explicit checks raise {!Auditor.Audit_failure}
    with a ["spec:"]-prefixed message. *)

open El_model

type t

val create : unit -> t

val wrap : t -> El_workload.Generator.sink -> El_workload.Generator.sink
(** Interposes the tracker between generator and manager: every call
    is stepped through the spec, then forwarded. *)

val kill : t -> Ids.Tid.t -> unit
(** The manager killed a transaction (a [Kill] step). *)

val observe_flush : t -> Ids.Oid.t -> version:int -> unit
(** A database-drive flush completed.  In this implementation the
    stable database serves the version from the same completion, so
    this steps both [Flush_complete] and [Superblock_advance]. *)

val check_invariant : t -> unit
(** The [persistent ⊆ ephemeral] invariant, checked at a pause
    point.  Raises {!Auditor.Audit_failure} on violation. *)

val check_crash : t -> El_disk.Stable_db.t -> unit
(** Checks a recovered database against the spec at the crash point:
    every acked version is served at least as new, any newer version
    is one {!El_spec.Durable_log.may_survive} allows (a log-extended
    transaction's write — e.g. a COMMIT persisted inside a torn
    prefix), and nothing never-acked-nor-log-extended survives.
    "Zero lost acked commits", machine-checked.  Raises
    {!Auditor.Audit_failure} on divergence. *)

val check_settled : t -> unit
(** After the run settles every acked version must have completed its
    flush.  Raises {!Auditor.Audit_failure} otherwise. *)

val violations : t -> string list
(** Illegal steps recorded while tracing, oldest first. *)

val checks : t -> int
(** Explicit spec checks performed (invariant, crash, settled). *)
