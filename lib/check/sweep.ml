open El_model
module Engine = El_sim.Engine
module Experiment = El_harness.Experiment
module Generator = El_workload.Generator
module Mix = El_workload.Mix
module Tx_type = El_workload.Tx_type
module Policy = El_core.Policy
module El_manager = El_core.El_manager
module Fw_manager = El_core.Fw_manager
module Hybrid_manager = El_core.Hybrid_manager
module Recovery = El_recovery.Recovery
module Preset = El_workload.Workload_preset

type outcome = {
  kind : string;
  seed : int;
  shards : int;
  events : int;
  points : int;
  recoveries : int;
  failures : (int * string) list;
  overloaded : bool;
  faulted : bool;
  committed : int;
  killed : int;
  contention_aborts : int;
  contention_retries : int;
  max_records_scanned : int;
  torn_blocks : int;
  torn_records : int;
  io_retries : int;
  io_remaps : int;
  sheds : int;
  spec_checks : int;
  cross_committed : int;
  blocked_cross : int;
  atomic_checks : int;
}

let kind_name = function
  | Experiment.Ephemeral _ -> "el"
  | Experiment.Firewall _ -> "fw"
  | Experiment.Hybrid _ -> "hybrid"

(* One slice of a (possibly partitioned) sweep.  Slice [s] of [slices]
   replays the full seeded run — the simulation is deterministic and
   owns all its state, so every slice sees bit-identical states at
   every pause — but audits only the pauses whose global index is
   ≡ s (mod slices), and only slice 0 performs the settled-state
   checks.  With [slices = 1] this is exactly the historical serial
   sweep.  Failures carry the global pause index they were detected
   at ([max_int] for post-settle checks) so slices merge back into
   the serial reporting order. *)
type slice_outcome = {
  s_events : int;
  s_pauses : int;  (** global pause count — identical across slices *)
  s_recoveries : int;  (** crash/recover cycles performed by this slice *)
  s_failures : (int * int * string) list;
      (** (pause tag, events dispatched, message), oldest first *)
  s_overloaded : bool;
  s_faulted : bool;
  s_committed : int;
  s_killed : int;
  s_contention_aborts : int;  (** generator totals — identical across slices *)
  s_contention_retries : int;
  s_max_scanned : int;
  s_torn_blocks : int;  (** summed over this slice's recoveries *)
  s_torn_records : int;
  s_io_retries : int;  (** injector totals — identical across slices *)
  s_io_remaps : int;
  s_sheds : int;
  s_spec_checks : int;
  s_cross_committed : int;  (** 2PC commits acknowledged — 0 when solo *)
  s_blocked_cross : int;
  s_atomic_checks : int;  (** cross-shard transactions atomicity-checked *)
}

let run_slice ~slice ~slices ~stride ~max_points ~recover ~oracle ~spec
    (cfg : Experiment.config) =
  let reference = Reference.create () in
  let tracker = if spec then Some (Spec_tracker.create ()) else None in
  let wrap_sink sink =
    let sink = if oracle then Reference.wrap reference sink else sink in
    match tracker with Some t -> Spec_tracker.wrap t sink | None -> sink
  in
  let on_kill tid =
    if oracle then Reference.kill reference tid;
    match tracker with Some t -> Spec_tracker.kill t tid | None -> ()
  in
  let live = Experiment.prepare ~wrap_sink ~on_kill cfg in
  (match tracker with
  | Some t ->
    El_disk.Flush_array.add_flush_observer live.Experiment.flush
      (Spec_tracker.observe_flush t)
  | None -> ());
  let engine = live.Experiment.engine in
  let failures = ref [] in
  let pauses = ref 0 in
  let recoveries = ref 0 in
  let max_scanned = ref 0 in
  let torn_blocks = ref 0 in
  let torn_records = ref 0 in
  let record_failure ~tag msg =
    failures := (tag, Engine.events_dispatched engine, msg) :: !failures
  in
  let guarded ~tag f =
    try f () with Auditor.Audit_failure m -> record_failure ~tag m
  in
  let audit_point () =
    let tag = !pauses in
    incr pauses;
    if tag mod slices = slice then begin
      guarded ~tag (fun () -> Auditor.audit_live live);
      (match tracker with
      | Some t -> guarded ~tag (fun () -> Spec_tracker.check_invariant t)
      | None -> ());
      match live.Experiment.el with
      | Some m when recover ->
        incr recoveries;
        let image = Recovery.crash engine m in
        let r = Recovery.recover image in
        if r.Recovery.records_scanned > !max_scanned then
          max_scanned := r.Recovery.records_scanned;
        torn_blocks := !torn_blocks + r.Recovery.torn_blocks;
        torn_records := !torn_records + r.Recovery.torn_records;
        let a = Recovery.audit image r in
        if not a.Recovery.ok then
          record_failure ~tag
            (Format.asprintf "crash recovery diverged: %a" Recovery.pp_audit a);
        (match tracker with
        | Some t ->
          guarded ~tag (fun () ->
              Spec_tracker.check_crash t r.Recovery.recovered)
        | None -> ())
      | _ -> ()
    end
  in
  let final = max_int in
  let status =
    try
      let continue = ref true in
      while !continue && !pauses < max_points do
        let n = Engine.run_steps engine ~until:cfg.Experiment.runtime
            ~max_steps:stride
        in
        audit_point ();
        if n < stride then continue := false
      done;
      (* Settle: finish the run, write out every partial buffer and let
         pending writes, acks and flushes complete. *)
      Engine.run engine ~until:cfg.Experiment.runtime;
      (match live.Experiment.el with Some m -> El_manager.drain m | None -> ());
      (match live.Experiment.fw with Some m -> Fw_manager.drain m | None -> ());
      (match live.Experiment.hybrid with
      | Some m -> Hybrid_manager.drain m
      | None -> ());
      Engine.run_all engine;
      `Ok
    with
    | El_manager.Log_overloaded msg ->
      (* every slice hits the same overload at the same event; report
         it once *)
      if slice = 0 then
        record_failure ~tag:final (Printf.sprintf "log overloaded: %s" msg);
      `Overloaded
    | El_fault.Injector.Io_fatal { device; op; reason } ->
      (* fault streams are per-device and untouched by pauses, so
         every slice dies at the same op of the same device *)
      if slice = 0 then
        record_failure ~tag:final
          (Printf.sprintf "io fatal on %s op %d: %s"
             (El_fault.Fault_plan.device_name device)
             op reason);
      `Faulted
  in
  let overloaded = status = `Overloaded in
  if status = `Ok && slice = 0 then begin
    let guarded f = guarded ~tag:final f in
    let record_failure msg = record_failure ~tag:final msg in
    guarded (fun () -> Auditor.audit_live live);
    if oracle then begin
      List.iter record_failure (Reference.violations reference);
      let gen_committed = Generator.committed live.Experiment.generator in
      let model_committed = Reference.committed_count reference in
      if gen_committed <> model_committed then
        record_failure
          (Printf.sprintf
             "generator committed %d transactions, the model saw %d acks"
             gen_committed model_committed);
      (match live.Experiment.el with
      | Some m ->
        guarded (fun () -> Reference.check_el reference m);
        guarded (fun () ->
            Reference.check_settled_stable reference (El_manager.stable m))
      | None -> ());
      (match live.Experiment.hybrid with
      | Some _ ->
        guarded (fun () ->
            Reference.check_settled_stable reference live.Experiment.stable)
      | None -> ())
    end;
    match tracker with
    | Some t ->
      List.iter record_failure (Spec_tracker.violations t);
      (* FW is exempt from the settled flush check for the same reason
         Reference skips its stable check: the baseline retires records
         by log-space reuse, not by a full drain to the database. *)
      if
        Option.is_some live.Experiment.el
        || Option.is_some live.Experiment.hybrid
      then
        guarded (fun () -> Spec_tracker.check_settled t)
    | None -> ()
  end;
  let outcome =
  {
    s_events = Engine.events_dispatched engine;
    s_pauses = !pauses;
    s_recoveries = !recoveries;
    s_failures = List.rev !failures;
    s_overloaded = overloaded;
    s_faulted = status = `Faulted;
    s_committed = Generator.committed live.Experiment.generator;
    s_killed = Generator.killed live.Experiment.generator;
    s_contention_aborts =
      Generator.contention_aborts live.Experiment.generator;
    s_contention_retries = Generator.retries live.Experiment.generator;
    s_max_scanned = !max_scanned;
    s_torn_blocks = !torn_blocks;
    s_torn_records = !torn_records;
    s_io_retries =
      (match live.Experiment.fault with
      | Some i -> El_fault.Injector.retries i
      | None -> 0);
    s_io_remaps =
      (match live.Experiment.fault with
      | Some i -> El_fault.Injector.remaps i
      | None -> 0);
    s_sheds =
      (match live.Experiment.fault with
      | Some i -> El_fault.Injector.sheds i
      | None -> 0);
    s_spec_checks =
      (match tracker with Some t -> Spec_tracker.checks t | None -> 0);
    s_cross_committed = 0;
    s_blocked_cross = 0;
    s_atomic_checks = 0;
  }
  in
  Experiment.dispose live;
  outcome

(* The sharded slice: same pause/settle skeleton as {!run_slice}, but
   over an [El_shard.Shard_group] — one Reference model and one spec
   tracker per shard, per-shard crash/recover/audit at every owned
   pause, and on top of them the {e composite oracle}: the global
   atomic-commit invariant over the recovered per-shard committed
   sets.  No crash point may recover a cross-shard transaction as
   committed on one shard (decision durable) while a participant
   branch is missing — and no acknowledged transaction may lack its
   durable decision. *)
let run_slice_sharded ~slice ~slices ~stride ~max_points ~recover ~oracle ~spec
    (cfg : Experiment.config) =
  let module Shard_group = El_shard.Shard_group in
  let module Two_pc = El_shard.Two_pc in
  let module IntSet = Set.Make (Int) in
  let n = cfg.Experiment.shards in
  let refs = Array.init n (fun _ -> Reference.create ()) in
  let trackers =
    if spec then Some (Array.init n (fun _ -> Spec_tracker.create ()))
    else None
  in
  let wrap_shard_sink i sink =
    let sink = if oracle then Reference.wrap refs.(i) sink else sink in
    match trackers with
    | Some ts -> Spec_tracker.wrap ts.(i) sink
    | None -> sink
  in
  let on_shard_kill i tid =
    if oracle then Reference.kill refs.(i) tid;
    match trackers with Some ts -> Spec_tracker.kill ts.(i) tid | None -> ()
  in
  let sg =
    Shard_group.prepare ~wrap_shard_sink ~on_shard_kill ~retain_cross:true cfg
  in
  let instances = Shard_group.instances sg in
  (match trackers with
  | Some ts ->
    Array.iteri
      (fun i inst ->
        El_disk.Flush_array.add_flush_observer inst.Experiment.i_flush
          (Spec_tracker.observe_flush ts.(i)))
      instances
  | None -> ());
  let engine = Shard_group.engine sg in
  let generator = Shard_group.generator sg in
  let failures = ref [] in
  let pauses = ref 0 in
  let recoveries = ref 0 in
  let max_scanned = ref 0 in
  let torn_blocks = ref 0 in
  let torn_records = ref 0 in
  let atomic_checks = ref 0 in
  let record_failure ~tag msg =
    failures := (tag, Engine.events_dispatched engine, msg) :: !failures
  in
  let guarded ~tag f =
    try f () with Auditor.Audit_failure m -> record_failure ~tag m
  in
  let is_el =
    match cfg.Experiment.kind with Experiment.Ephemeral _ -> true | _ -> false
  in
  (* Crash every shard at the same engine instant, recover each, and
     check that the per-shard committed sets jointly satisfy atomic
     commit for every transaction that ever entered 2PC. *)
  let atomic_commit_check ~tag ~audit_shards () =
    incr recoveries;
    let images = Shard_group.crash_images sg in
    let results = Array.map (fun img -> Recovery.recover img) images in
    Array.iteri
      (fun i (r : Recovery.result) ->
        if r.Recovery.records_scanned > !max_scanned then
          max_scanned := r.Recovery.records_scanned;
        torn_blocks := !torn_blocks + r.Recovery.torn_blocks;
        torn_records := !torn_records + r.Recovery.torn_records;
        if audit_shards then begin
          let a = Recovery.audit images.(i) r in
          if not a.Recovery.ok then
            record_failure ~tag
              (Format.asprintf "shard %d crash recovery diverged: %a" i
                 Recovery.pp_audit a);
          match trackers with
          | Some ts ->
            guarded ~tag (fun () ->
                Spec_tracker.check_crash ts.(i) r.Recovery.recovered)
          | None -> ()
        end)
      results;
    let sets =
      Array.map
        (fun (r : Recovery.result) ->
          List.fold_left
            (fun s tid -> IntSet.add (Ids.Tid.to_int tid) s)
            IntSet.empty r.Recovery.committed_tids)
        results
    in
    (* Durable evidence comes in two forms.  The committed-tid sets
       only cover transactions whose records are still in the log —
       ephemeral logging discards them once flushed — so the lasting
       evidence is the recovered database's version at the
       transaction's control oids: versions there are gtids, slots are
       reused only after durable settlement, and versions are monotone
       per oid, so [recovered version >= gtid] proves the record was
       durable no matter how long ago the log let go of it. *)
    let ctl_durable shard oid gtid =
      match
        El_disk.Stable_db.version results.(shard).Recovery.recovered oid
      with
      | Some v -> v >= Shard_group.ctl_version ~gtid
      | None -> false
    in
    List.iter
      (fun (v : Shard_group.gtx_view) ->
        incr atomic_checks;
        let gtid = v.Shard_group.v_gtid in
        let decided =
          IntSet.mem
            (Ids.Tid.to_int (Two_pc.decision_tid ~gtid))
            sets.(v.Shard_group.v_coordinator)
          ||
          match v.Shard_group.v_decision_oid with
          | Some oid -> ctl_durable v.Shard_group.v_coordinator oid gtid
          | None -> false
        in
        let branches_durable =
          List.map
            (fun p ->
              IntSet.mem gtid sets.(p)
              ||
              match List.assoc_opt p v.Shard_group.v_marker_oids with
              | Some oid -> ctl_durable p oid gtid
              | None -> false)
            v.Shard_group.v_participants
        in
        if not (Two_pc.atomic_ok ~decision_durable:decided ~branches_durable)
        then
          record_failure ~tag
            (Printf.sprintf
               "atomic commit violated: gtid %d decided on coordinator %d \
                but branches durable only on [%s] of [%s]"
               v.Shard_group.v_gtid v.Shard_group.v_coordinator
               (String.concat ","
                  (List.filteri
                     (fun i _ -> List.nth branches_durable i)
                     v.Shard_group.v_participants
                  |> List.map string_of_int))
               (String.concat ","
                  (List.map string_of_int v.Shard_group.v_participants)));
        if v.Shard_group.v_phase = Two_pc.Acked && not decided then
          record_failure ~tag
            (Printf.sprintf
               "durability violated: gtid %d was acknowledged but its \
                decision record did not survive the crash"
               v.Shard_group.v_gtid))
      (Shard_group.cross_views sg)
  in
  let audit_point () =
    let tag = !pauses in
    incr pauses;
    if tag mod slices = slice then begin
      Array.iteri
        (fun i inst ->
          guarded ~tag (fun () ->
              match
                ( inst.Experiment.i_el,
                  inst.Experiment.i_fw,
                  inst.Experiment.i_hybrid )
              with
              | Some m, _, _ -> Auditor.audit_el m
              | _, Some m, _ -> Auditor.audit_fw m
              | _, _, Some m -> Auditor.audit_hybrid m
              | _ -> ());
          match trackers with
          | Some ts -> guarded ~tag (fun () -> Spec_tracker.check_invariant ts.(i))
          | None -> ())
        instances;
      if recover && is_el then atomic_commit_check ~tag ~audit_shards:true ()
    end
  in
  let final = max_int in
  let status =
    try
      let continue = ref true in
      while !continue && !pauses < max_points do
        let n =
          Engine.run_steps engine ~until:cfg.Experiment.runtime
            ~max_steps:stride
        in
        audit_point ();
        if n < stride then continue := false
      done;
      Engine.run engine ~until:cfg.Experiment.runtime;
      Shard_group.drain_managers sg;
      Engine.run_all engine;
      `Ok
    with
    | El_manager.Log_overloaded msg ->
      if slice = 0 then
        record_failure ~tag:final (Printf.sprintf "log overloaded: %s" msg);
      `Overloaded
    | El_fault.Injector.Io_fatal { device; op; reason } ->
      if slice = 0 then
        record_failure ~tag:final
          (Printf.sprintf "io fatal on %s op %d: %s"
             (El_fault.Fault_plan.device_name device)
             op reason);
      `Faulted
  in
  let overloaded = status = `Overloaded in
  if status = `Ok && slice = 0 then begin
    let guarded f = guarded ~tag:final f in
    let record_failure msg = record_failure ~tag:final msg in
    Array.iteri
      (fun i inst ->
        guarded (fun () ->
            match
              ( inst.Experiment.i_el,
                inst.Experiment.i_fw,
                inst.Experiment.i_hybrid )
            with
            | Some m, _, _ -> Auditor.audit_el m
            | _, Some m, _ -> Auditor.audit_fw m
            | _, _, Some m -> Auditor.audit_hybrid m
            | _ -> ());
        ignore i)
      instances;
    if oracle then begin
      Array.iteri
        (fun i r ->
          List.iter
            (fun m -> record_failure (Printf.sprintf "shard %d: %s" i m))
            (Reference.violations r))
        refs;
      (* Router conservation: every generator ack is a fast-path single
         or an acknowledged 2PC transaction — nothing else may ack. *)
      let gen_committed = Generator.committed generator in
      let singles = Shard_group.single_committed sg in
      let cross = Shard_group.cross_committed sg in
      if gen_committed <> singles + cross then
        record_failure
          (Printf.sprintf
             "generator committed %d transactions but the router saw %d \
              singles + %d cross-shard"
             gen_committed singles cross);
      (* Per-shard ack accounting: each shard's model counts its
         singles and decisions (shard_committed) plus its prepared
         branches. *)
      let commits = Shard_group.shard_committed sg in
      let acks = Shard_group.branch_acks sg in
      Array.iteri
        (fun i r ->
          let expect = commits.(i) + acks.(i) in
          let got = Reference.committed_count r in
          if got <> expect then
            record_failure
              (Printf.sprintf
                 "shard %d model saw %d acks, router accounted %d (%d \
                  commits + %d branch acks)"
                 i got expect commits.(i) acks.(i)))
        refs;
      Array.iteri
        (fun i inst ->
          match (inst.Experiment.i_el, inst.Experiment.i_hybrid) with
          | Some m, _ ->
            guarded (fun () -> Reference.check_el refs.(i) m);
            guarded (fun () ->
                Reference.check_settled_stable refs.(i) (El_manager.stable m))
          | None, Some _ ->
            guarded (fun () ->
                Reference.check_settled_stable refs.(i)
                  inst.Experiment.i_stable)
          | None, None -> ())
        instances
    end;
    (match trackers with
    | Some ts ->
      Array.iteri
        (fun i t ->
          List.iter
            (fun m -> record_failure (Printf.sprintf "shard %d: %s" i m))
            (Spec_tracker.violations t);
          let inst = instances.(i) in
          if
            Option.is_some inst.Experiment.i_el
            || Option.is_some inst.Experiment.i_hybrid
          then guarded (fun () -> Spec_tracker.check_settled t))
        ts
    | None -> ());
    (* One last composite check over the settled state: the in-doubt
       resolution of every cross-shard transaction must still satisfy
       atomic commit after all buffers drained. *)
    if recover && is_el then
      atomic_commit_check ~tag:final ~audit_shards:false ()
  end;
  let outcome =
    {
      s_events = Engine.events_dispatched engine;
      s_pauses = !pauses;
      s_recoveries = !recoveries;
      s_failures = List.rev !failures;
      s_overloaded = overloaded;
      s_faulted = status = `Faulted;
      s_committed = Generator.committed generator;
      s_killed = Generator.killed generator;
      s_contention_aborts = Generator.contention_aborts generator;
      s_contention_retries = Generator.retries generator;
      s_max_scanned = !max_scanned;
      s_torn_blocks = !torn_blocks;
      s_torn_records = !torn_records;
      s_io_retries =
        (match Shard_group.injector sg with
        | Some i -> El_fault.Injector.retries i
        | None -> 0);
      s_io_remaps =
        (match Shard_group.injector sg with
        | Some i -> El_fault.Injector.remaps i
        | None -> 0);
      s_sheds =
        (match Shard_group.injector sg with
        | Some i -> El_fault.Injector.sheds i
        | None -> 0);
      s_spec_checks =
        (match trackers with
        | Some ts ->
          Array.fold_left (fun a t -> a + Spec_tracker.checks t) 0 ts
        | None -> 0);
      s_cross_committed = Shard_group.cross_committed sg;
      s_blocked_cross = Shard_group.blocked sg;
      s_atomic_checks = !atomic_checks;
    }
  in
  Shard_group.dispose sg;
  outcome

let run ?(pool = El_par.Pool.serial) ?(stride = 100) ?(max_points = max_int)
    ?(recover = true) ?(oracle = true) ?(spec = false)
    (cfg : Experiment.config) =
  if stride <= 0 then invalid_arg "Sweep.run: stride must be positive";
  let slices = El_par.Pool.jobs pool in
  let slice_runner =
    if cfg.Experiment.shards = 1 then run_slice else run_slice_sharded
  in
  let parts =
    El_par.Pool.map pool
      (fun slice ->
        slice_runner ~slice ~slices ~stride ~max_points ~recover ~oracle ~spec
          cfg)
      (List.init slices Fun.id)
  in
  let p0 = List.hd parts in
  (* Each pause is owned by exactly one slice and the settled-state
     tag only appears in slice 0, so a stable sort on the tag alone
     reproduces the serial reporting order exactly. *)
  let failures =
    List.concat_map (fun p -> p.s_failures) parts
    |> List.stable_sort (fun (a, _, _) (b, _, _) -> compare (a : int) b)
    |> List.map (fun (_, at, msg) -> (at, msg))
  in
  {
    kind = kind_name cfg.Experiment.kind;
    seed = cfg.Experiment.seed;
    shards = cfg.Experiment.shards;
    events = p0.s_events;
    points = p0.s_pauses;
    recoveries = List.fold_left (fun a p -> a + p.s_recoveries) 0 parts;
    failures;
    overloaded = p0.s_overloaded;
    faulted = p0.s_faulted;
    committed = p0.s_committed;
    killed = p0.s_killed;
    contention_aborts = p0.s_contention_aborts;
    contention_retries = p0.s_contention_retries;
    max_records_scanned =
      List.fold_left (fun a p -> max a p.s_max_scanned) 0 parts;
    (* pauses partition across slices, so summing reproduces the
       serial totals *)
    torn_blocks = List.fold_left (fun a p -> a + p.s_torn_blocks) 0 parts;
    torn_records = List.fold_left (fun a p -> a + p.s_torn_records) 0 parts;
    (* injector totals, identical in every slice's replay *)
    io_retries = p0.s_io_retries;
    io_remaps = p0.s_io_remaps;
    sheds = p0.s_sheds;
    spec_checks = List.fold_left (fun a p -> a + p.s_spec_checks) 0 parts;
    (* router totals, identical in every slice's replay *)
    cross_committed = p0.s_cross_committed;
    blocked_cross = p0.s_blocked_cross;
    (* atomic checks partition with the pauses, like recoveries *)
    atomic_checks = List.fold_left (fun a p -> a + p.s_atomic_checks) 0 parts;
  }

let standard_mix () =
  Mix.create
    [
      Tx_type.make ~name:"short" ~probability:0.9 ~duration:(Time.of_ms 400)
        ~num_records:2 ~record_size:100;
      Tx_type.make ~name:"long" ~probability:0.1 ~duration:(Time.of_sec 4)
        ~num_records:4 ~record_size:100;
    ]

(* Size a manager geometry for a preset's space appetite (the paper
   sizes the log to the offered load; see
   [Workload_preset.space_factor]). *)
let scale_kind factor kind =
  if factor <= 1.0 then kind
  else
    let scale n = int_of_float (ceil (float_of_int n *. factor)) in
    match kind with
    | Experiment.Ephemeral p ->
      Experiment.Ephemeral
        {
          p with
          Policy.generation_sizes =
            Array.map scale p.Policy.generation_sizes;
        }
    | Experiment.Firewall n -> Experiment.Firewall (scale n)
    | Experiment.Hybrid sizes -> Experiment.Hybrid (Array.map scale sizes)

let standard_config ~kind ?(runtime = Time.of_sec 20) ?(rate = 40.0)
    ?(seed = 42) ?(abort_fraction = 0.0)
    ?(arrival_process = Generator.Deterministic)
    ?(backend = Experiment.Sim) ?preset () =
  let cfg =
    {
      (Experiment.default_config ~kind ~mix:(standard_mix ())) with
      Experiment.runtime;
      arrival_rate = rate;
      arrival_process;
      num_objects = 10_000;
      flush_drives = 2;
      flush_transfer = Time.of_ms 8;
      seed;
      abort_fraction;
      backend;
    }
  in
  match preset with
  | None -> cfg
  | Some p ->
    Experiment.apply_preset
      { cfg with Experiment.kind = scale_kind p.Preset.space_factor cfg.Experiment.kind }
      p

let standard_kinds () =
  [
    ("el", Experiment.Ephemeral (Policy.default ~generation_sizes:[| 8; 8 |]));
    ("fw", Experiment.Firewall 120);
    ("hybrid", Experiment.Hybrid [| 12; 12 |]);
  ]
