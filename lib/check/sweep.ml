open El_model
module Engine = El_sim.Engine
module Experiment = El_harness.Experiment
module Generator = El_workload.Generator
module Mix = El_workload.Mix
module Tx_type = El_workload.Tx_type
module Policy = El_core.Policy
module El_manager = El_core.El_manager
module Fw_manager = El_core.Fw_manager
module Hybrid_manager = El_core.Hybrid_manager
module Recovery = El_recovery.Recovery

type outcome = {
  kind : string;
  seed : int;
  events : int;
  points : int;
  recoveries : int;
  failures : (int * string) list;
  overloaded : bool;
  committed : int;
  killed : int;
  max_records_scanned : int;
}

let kind_name = function
  | Experiment.Ephemeral _ -> "el"
  | Experiment.Firewall _ -> "fw"
  | Experiment.Hybrid _ -> "hybrid"

let run ?(stride = 100) ?(max_points = max_int) ?(recover = true)
    ?(oracle = true) (cfg : Experiment.config) =
  if stride <= 0 then invalid_arg "Sweep.run: stride must be positive";
  let reference = Reference.create () in
  let live =
    if oracle then
      Experiment.prepare
        ~wrap_sink:(Reference.wrap reference)
        ~on_kill:(Reference.kill reference) cfg
    else Experiment.prepare cfg
  in
  let engine = live.Experiment.engine in
  let failures = ref [] in
  let points = ref 0 in
  let recoveries = ref 0 in
  let max_scanned = ref 0 in
  let record_failure msg =
    failures := (Engine.events_dispatched engine, msg) :: !failures
  in
  let guarded f = try f () with Auditor.Audit_failure m -> record_failure m in
  let audit_point () =
    incr points;
    guarded (fun () -> Auditor.audit_live live);
    match live.Experiment.el with
    | Some m when recover ->
      incr recoveries;
      let image = Recovery.crash engine m in
      let r = Recovery.recover image in
      if r.Recovery.records_scanned > !max_scanned then
        max_scanned := r.Recovery.records_scanned;
      let a = Recovery.audit image r in
      if not a.Recovery.ok then
        record_failure
          (Format.asprintf "crash recovery diverged: %a" Recovery.pp_audit a)
    | _ -> ()
  in
  let overloaded =
    try
      let continue = ref true in
      while !continue && !points < max_points do
        let n = Engine.run_steps engine ~until:cfg.Experiment.runtime
            ~max_steps:stride
        in
        audit_point ();
        if n < stride then continue := false
      done;
      (* Settle: finish the run, write out every partial buffer and let
         pending writes, acks and flushes complete. *)
      Engine.run engine ~until:cfg.Experiment.runtime;
      (match live.Experiment.el with Some m -> El_manager.drain m | None -> ());
      (match live.Experiment.fw with Some m -> Fw_manager.drain m | None -> ());
      (match live.Experiment.hybrid with
      | Some m -> Hybrid_manager.drain m
      | None -> ());
      Engine.run_all engine;
      false
    with El_manager.Log_overloaded msg ->
      record_failure (Printf.sprintf "log overloaded: %s" msg);
      true
  in
  if not overloaded then begin
    guarded (fun () -> Auditor.audit_live live);
    if oracle then begin
      List.iter record_failure (Reference.violations reference);
      let gen_committed = Generator.committed live.Experiment.generator in
      let model_committed = Reference.committed_count reference in
      if gen_committed <> model_committed then
        record_failure
          (Printf.sprintf
             "generator committed %d transactions, the model saw %d acks"
             gen_committed model_committed);
      (match live.Experiment.el with
      | Some m ->
        guarded (fun () -> Reference.check_el reference m);
        guarded (fun () ->
            Reference.check_settled_stable reference (El_manager.stable m))
      | None -> ());
      match live.Experiment.hybrid with
      | Some _ ->
        guarded (fun () ->
            Reference.check_settled_stable reference live.Experiment.stable)
      | None -> ()
    end
  end;
  {
    kind = kind_name cfg.Experiment.kind;
    seed = cfg.Experiment.seed;
    events = Engine.events_dispatched engine;
    points = !points;
    recoveries = !recoveries;
    failures = List.rev !failures;
    overloaded;
    committed = Generator.committed live.Experiment.generator;
    killed = Generator.killed live.Experiment.generator;
    max_records_scanned = !max_scanned;
  }

let standard_mix () =
  Mix.create
    [
      Tx_type.make ~name:"short" ~probability:0.9 ~duration:(Time.of_ms 400)
        ~num_records:2 ~record_size:100;
      Tx_type.make ~name:"long" ~probability:0.1 ~duration:(Time.of_sec 4)
        ~num_records:4 ~record_size:100;
    ]

let standard_config ~kind ?(runtime = Time.of_sec 20) ?(rate = 40.0)
    ?(seed = 42) ?(abort_fraction = 0.0)
    ?(arrival_process = Generator.Deterministic) () =
  {
    (Experiment.default_config ~kind ~mix:(standard_mix ())) with
    Experiment.runtime;
    arrival_rate = rate;
    arrival_process;
    num_objects = 10_000;
    flush_drives = 2;
    flush_transfer = Time.of_ms 8;
    seed;
    abort_fraction;
  }

let standard_kinds () =
  [
    ("el", Experiment.Ephemeral (Policy.default ~generation_sizes:[| 8; 8 |]));
    ("fw", Experiment.Firewall 120);
    ("hybrid", Experiment.Hybrid [| 12; 12 |]);
  ]
