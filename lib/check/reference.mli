(** The differential oracle: an in-memory reference model of a
    transactional log, interposed between the workload generator and a
    real manager.

    The model shadows every call crossing the
    {!El_workload.Generator.sink} boundary (via
    {!El_harness.Experiment.prepare}'s [wrap_sink]) and every kill
    (via [on_kill]).  It maintains the simplest possible semantics —
    a transaction is committed exactly when its commit is
    acknowledged, and the committed database state is, per object, the
    newest version written by a committed transaction — and records
    any protocol violation it observes (acknowledgement of a killed or
    unknown transaction, a write by a terminated one, ...).

    Once the run has settled (generator finished, manager drained,
    engine run dry), the real manager must agree with the model
    exactly; {!check_el} and {!check_settled_stable} enforce that,
    raising {!Auditor.Audit_failure} on divergence. *)

open El_model

type t

val create : unit -> t

val wrap : t -> El_workload.Generator.sink -> El_workload.Generator.sink
(** Observer sink: records each call in the model, then forwards it to
    the wrapped sink.  Pass as [Experiment.prepare ~wrap_sink:(wrap t)]. *)

val kill : t -> Ids.Tid.t -> unit
(** Kill notification.  Pass as [Experiment.prepare ~on_kill:(kill t)]. *)

val committed_count : t -> int
(** Transactions whose commit acknowledgement has fired. *)

val committed_versions : t -> (Ids.Oid.t * int) list
(** Newest committed version per object, in unspecified order. *)

val violations : t -> string list
(** Protocol violations observed so far, oldest first; empty against a
    correct manager. *)

val check_el : t -> El_core.El_manager.t -> unit
(** Settled-state comparison: the manager's durably-committed
    reference state and acknowledged-commit count must equal the
    model's.  Raises {!Auditor.Audit_failure} on divergence. *)

val check_settled_stable : t -> El_disk.Stable_db.t -> unit
(** Settled-state comparison: the stable database must hold exactly
    the model's newest committed version of every committed object and
    nothing else — i.e. every acknowledged commit was flushed, no
    uncommitted write leaked.  Only valid once all pending flushes
    have completed (manager drained, engine run dry).  Raises
    {!Auditor.Audit_failure} on divergence. *)
