(** Seeded, deterministic disk-fault schedules.

    A plan describes how each device of the simulated disk stack — one
    log channel per generation/queue, one flush drive per database
    disk — misbehaves.  It is pure data: all randomness is derived
    from [seed] by the {!Injector}, on a stream independent of the
    simulation engine's RNG, so attaching a plan never perturbs the
    simulated workload, and the same plan replays the same faults
    op-for-op.  The {!empty} plan injects nothing and is the default
    everywhere; an empty plan leaves every code path byte-identical to
    a build without fault injection (pinned by a regression test).

    Four fault flavours, all per-device and per-I/O-operation:

    - {b transient} errors: the op fails [1..transient_burst] times
      before succeeding, with probability [transient_rate] (or forced
      at the 0-based op indexes in [pinned_transient]).  The device's
      retry policy absorbs up to [retry.budget] failures at
      [retry.penalty] extra service time each; beyond the budget the
      sector is declared bad and remapped, consuming a spare.
    - {b sticky} media errors: the target sector is permanently bad;
      the op succeeds only by remapping onto a spare.  Out of spares,
      the device fails fatally ({!Injector.Io_fatal}).
    - {b torn writes}: with probability [torn_rate] a write is marked
      interruptible — if the machine crashes while it is in service,
      only a prefix of the block reaches the platter.  Torn verdicts
      are drawn when the write starts, so a crash image is a pure
      function of the plan and the op index.
    - {b latency} windows: while simulated time lies in
      [[w_from, w_until)], service times are multiplied by [w_factor]
      (factors of overlapping windows compound).  Latency faults are
      the only flavour that changes timing under the default retry
      policy — they model §5-style fault storms and drive the
      degraded (load-shedding) mode. *)

open El_model

type device = Log_gen of int | Flush_drive of int

val device_name : device -> string
(** ["gen0"], ["drive3"], ... — used in trace events and messages. *)

val pp_device : Format.formatter -> device -> unit

type window = { w_from : Time.t; w_until : Time.t; w_factor : float }

type spec = {
  transient_rate : float;  (** P(an op suffers transient failures) *)
  transient_burst : int;  (** failures per affected op: 1..burst *)
  pinned_transient : int list;  (** op indexes forced transient *)
  sticky_rate : float;  (** P(an op hits a bad sector) *)
  pinned_sticky : int list;
  torn_rate : float;  (** P(a write is interruptible at crash) *)
  pinned_torn : int list;
  latency : window list;  (** service-time multipliers over sim time *)
}

val clean_spec : spec
(** All rates zero, no pins, no windows.  A plan built from clean
    specs is {e armed but inert}: the injector runs, draws and
    resolves every op, yet resolves every one to the nominal service
    time — results are byte-identical to the {!empty} plan's. *)

type retry = { budget : int; penalty : Time.t }
(** Bounded-retry policy for transient errors.  [penalty] is the
    deterministic extra service time charged per absorbed retry; the
    default {!default_retry} is [{budget = 3; penalty = zero}], which
    makes the transient path timing-neutral — a faulted run either
    completes byte-identical to the fault-free run or dies
    deterministically ({!Injector.Io_fatal}), the law pinned by the
    retry/backoff QCheck test. *)

val default_retry : retry

type degraded = { shed_backlog : int }
(** Load shedding under fault storms: when the flush backlog exceeds
    [shed_backlog], newly arriving transactions are shed (killed at
    begin) instead of admitted — the way §5's stress test sheds load
    when flush bandwidth turns scarce. *)

type t = {
  seed : int;  (** root of every per-device fault stream *)
  specs : (device * spec) list;
  retry : retry;
  spares : int;  (** remap capacity per device; fatal when exhausted *)
  degraded : degraded option;
}

val empty : t
(** No specs, no degraded mode: nothing is injected anywhere. *)

val is_empty : t -> bool

val spec_for : t -> device -> spec option

val validate : t -> unit
(** Raises [Invalid_argument] on rates outside [0, 1], burst < 1,
    negative pins/budget/penalty/spares, ill-ordered latency windows
    or duplicate device specs. *)

val make :
  ?seed:int ->
  ?retry:retry ->
  ?spares:int ->
  ?degraded:degraded ->
  ?log_spec:spec ->
  ?flush_spec:spec ->
  log_gens:int ->
  flush_drives:int ->
  unit ->
  t
(** Uniform plan: [log_spec] (default {!clean_spec}) on log channels
    [0..log_gens-1], [flush_spec] on drives [0..flush_drives-1].
    Defaults: seed 0, {!default_retry}, 1024 spares, no degraded
    mode.  Validates; specifying more log devices than a manager has
    channels is harmless (extra specs are never consulted). *)
