(** The runtime half of the fault model: turns a {!Fault_plan} into
    per-operation verdicts for the disk stack.

    Each device (log channel, flush drive) gets a {!device_state}
    holding its own RNG stream — seeded from the plan seed and the
    device identity, never from the simulation engine — plus its op
    counter and remap usage.  A device calls {!next_op} exactly once
    per I/O operation, when the operation starts service; the returned
    {!resolution} says how many transient failures the retry policy
    absorbed, whether the op was remapped onto a spare, the service
    time scaling, and the pre-drawn torn-write verdict.

    Determinism contract: resolutions are a pure function of (plan,
    device, op index, sim time for latency windows).  Draws are fixed
    at four per op, so pinned faults never shift the stream, and
    reading a verdict never consumes engine randomness — which is why
    crash capture (which only {e reads} the in-service verdict) can
    happen at any event boundary without perturbing replay. *)

open El_model

exception
  Io_fatal of { device : Fault_plan.device; op : int; reason : string }
(** A device ran out of spare sectors while needing a remap — the run
    cannot continue.  Deterministic: the same plan and seed raise at
    the same op of the same device every time. *)

type resolution = {
  r_op : int;  (** 0-based op index on this device *)
  r_retries : int;  (** transient failures absorbed by the retry policy *)
  r_remapped : bool;  (** sticky (or budget-exhausted) op moved to a spare *)
  r_latency : float;  (** service-time multiplier; 1.0 = nominal *)
  r_penalty : Time.t;  (** extra service time: retries x retry penalty *)
  r_torn : float option;
      (** [Some f]: if the machine crashes while this write is in
          service, only the fraction [f] of the block persists *)
}

type t
type device_state

val create : Fault_plan.t -> t option
(** [None] iff the plan {!Fault_plan.is_empty} — callers thread the
    option through so an absent injector costs nothing and leaves
    every code path untouched.  Validates the plan. *)

val plan : t -> Fault_plan.t

val log_gen : t -> int -> device_state
(** The (memoized) state of log channel [i]. *)

val flush_drive : t -> int -> device_state
(** The (memoized) state of flush drive [i]. *)

val device : device_state -> Fault_plan.device

val next_op : device_state -> now:Time.t -> resolution
(** Draw and resolve the device's next operation.  Raises {!Io_fatal}
    when a needed remap finds no spare left. *)

val nominal : resolution -> bool
(** No retries, no remap, factor 1.0, zero penalty — the caller may
    (and, for byte-identity, must) use the exact unscaled service
    time. *)

val retries : t -> int
(** Total transient failures absorbed across all devices. *)

val remaps : t -> int
(** Total forced remaps across all devices. *)

val sheds : t -> int
(** Transactions shed by degraded mode (counted by the harness via
    {!count_shed}). *)

val count_shed : t -> unit

val device_ops : device_state -> int
val device_remaps : device_state -> int
