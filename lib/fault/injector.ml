open El_model

exception
  Io_fatal of { device : Fault_plan.device; op : int; reason : string }

type resolution = {
  r_op : int;
  r_retries : int;
  r_remapped : bool;
  r_latency : float;
  r_penalty : Time.t;
  r_torn : float option;
}

type t = {
  plan : Fault_plan.t;
  states : (Fault_plan.device, device_state) Hashtbl.t;
  mutable retries : int;
  mutable remaps : int;
  mutable sheds : int;
}

and device_state = {
  ds_device : Fault_plan.device;
  ds_spec : Fault_plan.spec;
  ds_rng : Random.State.t;
  ds_inj : t;
  mutable ds_ops : int;
  mutable ds_remaps : int;
}

let create plan =
  if Fault_plan.is_empty plan then None
  else begin
    Fault_plan.validate plan;
    Some
      {
        plan;
        states = Hashtbl.create 8;
        retries = 0;
        remaps = 0;
        sheds = 0;
      }
  end

let plan t = t.plan

(* Each device draws from its own stream, derived from the plan seed
   and the device identity alone — never from the engine RNG — so
   faults replay identically whatever the workload does, and an armed
   plan cannot perturb the simulation's own random choices. *)
let state t dev =
  match Hashtbl.find_opt t.states dev with
  | Some s -> s
  | None ->
    let spec =
      Option.value (Fault_plan.spec_for t.plan dev)
        ~default:Fault_plan.clean_spec
    in
    let tag, i =
      match dev with
      | Fault_plan.Log_gen i -> (0x10f6, i)
      | Fault_plan.Flush_drive i -> (0xf1d5, i)
    in
    let s =
      {
        ds_device = dev;
        ds_spec = spec;
        ds_rng = Random.State.make [| t.plan.Fault_plan.seed; tag; i |];
        ds_inj = t;
        ds_ops = 0;
        ds_remaps = 0;
      }
    in
    Hashtbl.replace t.states dev s;
    s

let log_gen t i = state t (Fault_plan.Log_gen i)
let flush_drive t i = state t (Fault_plan.Flush_drive i)
let device ds = ds.ds_device

let next_op ds ~now =
  let op = ds.ds_ops in
  ds.ds_ops <- op + 1;
  let spec = ds.ds_spec in
  (* Four draws per op, unconditionally, so pinned faults and rate
     changes never shift the rest of the device's stream. *)
  let u_transient = Random.State.float ds.ds_rng 1.0 in
  let u_burst = Random.State.float ds.ds_rng 1.0 in
  let u_sticky = Random.State.float ds.ds_rng 1.0 in
  let u_torn = Random.State.float ds.ds_rng 1.0 in
  let transients =
    if List.mem op spec.Fault_plan.pinned_transient then 1
    else if u_transient < spec.Fault_plan.transient_rate then
      let burst = spec.Fault_plan.transient_burst in
      1 + Stdlib.min (burst - 1) (int_of_float (u_burst *. float_of_int burst))
    else 0
  in
  let sticky =
    List.mem op spec.Fault_plan.pinned_sticky
    || u_sticky < spec.Fault_plan.sticky_rate
  in
  let torn =
    if List.mem op spec.Fault_plan.pinned_torn then Some u_torn
    else if u_torn < spec.Fault_plan.torn_rate then
      (* u_torn is uniform on [0, torn_rate) here, so the rescaled
         value is a uniform tear fraction — one draw serves as both
         the occurrence test and the fraction. *)
      Some (u_torn /. spec.Fault_plan.torn_rate)
    else None
  in
  let factor =
    List.fold_left
      (fun acc (w : Fault_plan.window) ->
        if Time.(now >= w.Fault_plan.w_from) && Time.(now < w.Fault_plan.w_until)
        then acc *. w.Fault_plan.w_factor
        else acc)
      1.0 spec.Fault_plan.latency
  in
  let retry = ds.ds_inj.plan.Fault_plan.retry in
  let retries = Stdlib.min transients retry.Fault_plan.budget in
  let remapped = sticky || transients > retry.Fault_plan.budget in
  if remapped then begin
    if ds.ds_remaps >= ds.ds_inj.plan.Fault_plan.spares then
      raise
        (Io_fatal
           {
             device = ds.ds_device;
             op;
             reason =
               (if sticky then "sticky media error and no spare sectors left"
                else
                  Printf.sprintf
                    "%d transient failures exceeded the retry budget of %d \
                     and no spare sectors left"
                    transients retry.Fault_plan.budget);
           });
    ds.ds_remaps <- ds.ds_remaps + 1;
    ds.ds_inj.remaps <- ds.ds_inj.remaps + 1
  end;
  if retries > 0 then ds.ds_inj.retries <- ds.ds_inj.retries + retries;
  {
    r_op = op;
    r_retries = retries;
    r_remapped = remapped;
    r_latency = factor;
    r_penalty =
      (if retries = 0 then Time.zero
       else Time.mul_int retry.Fault_plan.penalty retries);
    r_torn = torn;
  }

let nominal r =
  r.r_retries = 0 && (not r.r_remapped) && r.r_latency = 1.0
  && Time.equal r.r_penalty Time.zero

let retries t = t.retries
let remaps t = t.remaps
let sheds t = t.sheds
let count_shed t = t.sheds <- t.sheds + 1
let device_ops ds = ds.ds_ops
let device_remaps ds = ds.ds_remaps
