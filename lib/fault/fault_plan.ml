open El_model

type device = Log_gen of int | Flush_drive of int

let device_name = function
  | Log_gen i -> Printf.sprintf "gen%d" i
  | Flush_drive i -> Printf.sprintf "drive%d" i

let pp_device ppf d = Format.pp_print_string ppf (device_name d)

type window = { w_from : Time.t; w_until : Time.t; w_factor : float }

type spec = {
  transient_rate : float;
  transient_burst : int;
  pinned_transient : int list;
  sticky_rate : float;
  pinned_sticky : int list;
  torn_rate : float;
  pinned_torn : int list;
  latency : window list;
}

let clean_spec =
  {
    transient_rate = 0.0;
    transient_burst = 1;
    pinned_transient = [];
    sticky_rate = 0.0;
    pinned_sticky = [];
    torn_rate = 0.0;
    pinned_torn = [];
    latency = [];
  }

type retry = { budget : int; penalty : Time.t }

let default_retry = { budget = 3; penalty = Time.zero }

type degraded = { shed_backlog : int }

type t = {
  seed : int;
  specs : (device * spec) list;
  retry : retry;
  spares : int;
  degraded : degraded option;
}

let empty =
  { seed = 0; specs = []; retry = default_retry; spares = 0; degraded = None }

let is_empty t = t.specs = [] && t.degraded = None

let spec_for t device = List.assoc_opt device t.specs

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault_plan: %s %g outside [0, 1]" name r)

let check_pins name pins =
  List.iter
    (fun op ->
      if op < 0 then
        invalid_arg (Printf.sprintf "Fault_plan: negative pinned %s op" name);
      ignore op)
    pins

let validate_spec s =
  check_rate "transient_rate" s.transient_rate;
  check_rate "sticky_rate" s.sticky_rate;
  check_rate "torn_rate" s.torn_rate;
  if s.transient_burst < 1 then
    invalid_arg "Fault_plan: transient_burst must be at least 1";
  check_pins "transient" s.pinned_transient;
  check_pins "sticky" s.pinned_sticky;
  check_pins "torn" s.pinned_torn;
  List.iter
    (fun w ->
      if w.w_factor <= 0.0 then
        invalid_arg "Fault_plan: latency factor must be positive";
      if Time.(w.w_until < w.w_from) then
        invalid_arg "Fault_plan: latency window ends before it starts")
    s.latency

let validate t =
  if t.retry.budget < 0 then invalid_arg "Fault_plan: negative retry budget";
  if Time.(t.retry.penalty < Time.zero) then
    invalid_arg "Fault_plan: negative retry penalty";
  if t.spares < 0 then invalid_arg "Fault_plan: negative spare capacity";
  (match t.degraded with
  | Some d when d.shed_backlog < 0 ->
    invalid_arg "Fault_plan: negative shed backlog"
  | Some _ | None -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (dev, spec) ->
      if Hashtbl.mem seen dev then
        invalid_arg
          (Printf.sprintf "Fault_plan: duplicate spec for %s" (device_name dev));
      Hashtbl.replace seen dev ();
      validate_spec spec)
    t.specs

let make ?(seed = 0) ?(retry = default_retry) ?(spares = 1024) ?degraded
    ?(log_spec = clean_spec) ?(flush_spec = clean_spec) ~log_gens ~flush_drives
    () =
  if log_gens < 0 || flush_drives < 0 then
    invalid_arg "Fault_plan.make: negative device count";
  let specs =
    List.init log_gens (fun i -> (Log_gen i, log_spec))
    @ List.init flush_drives (fun i -> (Flush_drive i, flush_spec))
  in
  let t = { seed; specs; retry; spares; degraded } in
  validate t;
  t
