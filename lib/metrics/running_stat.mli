(** Streaming mean/variance (Welford's algorithm).

    Used for quantities the paper reports as averages over a run:
    the mean oid distance between successively flushed objects (the
    flush-locality metric of §4) and commit acknowledgement latency. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val observe : t -> float -> unit

val count : t -> int
val mean : t -> float
(** 0 when no samples have been observed. *)

val variance : t -> float
(** {b Population} variance (Welford's [m2 / n]); 0 with fewer than
    two samples.  This treats the observations as the whole population
    — the right reading for simulator metrics, where every commit
    latency and flush distance of the run is observed, not sampled.
    For an unbiased estimate of the variance of a larger population
    from which the observations are a sample, use
    {!sample_variance}. *)

val sample_variance : t -> float
(** {b Sample} (Bessel-corrected) variance, [m2 / (n - 1)]; 0 with
    fewer than two samples.  Always at least {!variance}, converging
    to it as the number of observations grows. *)

val stddev : t -> float
(** [sqrt (variance t)] — the population standard deviation. *)

val sample_stddev : t -> float
(** [sqrt (sample_variance t)]. *)

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
