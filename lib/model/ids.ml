module Oid = struct
  type t = int

  let of_int n =
    if n < 0 then invalid_arg "Oid.of_int: negative";
    n

  external to_int : t -> int = "%identity"

  let equal = Int.equal
  let compare = Int.compare
  let hash t = t
  let pp ppf t = Format.fprintf ppf "o%d" t

  let distance ~wrap a b =
    if wrap <= 0 then invalid_arg "Oid.distance: non-positive wrap";
    let d = abs (a - b) mod wrap in
    min d (wrap - d)

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

module Tid = struct
  type t = int

  let of_int n =
    if n < 0 then invalid_arg "Tid.of_int: negative";
    n

  external to_int : t -> int = "%identity"

  let equal = Int.equal
  let compare = Int.compare
  let hash t = t
  let pp ppf t = Format.fprintf ppf "t%d" t

  module Table = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end
