(** Simulated time.

    All simulated clocks in the library use integer microseconds so
    that event ordering is exact and runs are reproducible bit for bit.
    A value of type {!t} is either an absolute instant (microseconds
    since the start of the simulation) or a duration; the two are not
    distinguished by the type, mirroring the paper's usage where every
    quantity is an offset from simulation start. *)

type t
(** An instant or duration in integer microseconds. *)

val zero : t

val of_us : int -> t
(** [of_us n] is [n] microseconds.  [n] must be non-negative. *)

val of_ms : int -> t
(** [of_ms n] is [n] milliseconds. *)

val of_sec : int -> t
(** [of_sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] rounds [s] seconds to the nearest microsecond. *)

external to_us : t -> int = "%identity"
(** Zero-cost on purpose: the append hot path stamps every record. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in (floating-point) seconds. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].  Raises [Invalid_argument] if the result
    would be negative: simulated clocks never run backwards. *)

val mul_int : t -> int -> t

val div_int : t -> int -> t
(** [div_int t n] is [t / n] rounded toward zero, used to split a
    transaction lifetime into equal record-writing intervals. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a human-friendly rendering, e.g. ["1.500s"] or ["250us"]. *)
