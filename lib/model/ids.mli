(** Identifiers for the two entity kinds the log tracks.

    Object identifiers ({!Oid}) name items of data in the database —
    the paper's broad notion of "object" (a tuple, record or OO
    object).  Transaction identifiers ({!Tid}) name transactions.
    Both are dense non-negative integers; keeping them as distinct
    module types prevents accidental mixing. *)

module Oid : sig
  type t

  val of_int : int -> t
  (** Raises [Invalid_argument] on a negative argument. *)

  external to_int : t -> int = "%identity"
  (** Zero-cost on purpose: the simulation hot paths unwrap ids once
      per record and a cross-module call would dominate them. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  val distance : wrap:int -> t -> t -> int
  (** [distance ~wrap a b] is the circular distance between two oids
      whose shared drive owns a range of [wrap] consecutive oids — the
      paper's locality measure for flush scheduling.  The result is in
      [0, wrap/2]. *)

  module Table : Hashtbl.S with type key = t
end

module Tid : sig
  type t

  val of_int : int -> t
  external to_int : t -> int = "%identity"
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Table : Hashtbl.S with type key = t
end
