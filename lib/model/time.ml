type t = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Time.of_us: negative";
  n

let of_ms n = of_us (n * 1_000)
let of_sec n = of_us (n * 1_000_000)

let of_sec_f s =
  if s < 0.0 then invalid_arg "Time.of_sec_f: negative";
  int_of_float (Float.round (s *. 1_000_000.0))

external to_us : t -> int = "%identity"
let to_sec_f t = float_of_int t /. 1_000_000.0

let add a b = a + b

let sub a b =
  if a < b then invalid_arg "Time.sub: negative result";
  a - b

let mul_int t n =
  if n < 0 then invalid_arg "Time.mul_int: negative factor";
  t * n

let div_int t n =
  if n <= 0 then invalid_arg "Time.div_int: non-positive divisor";
  t / n

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let pp ppf t =
  if t >= 1_000_000 && t mod 1_000 = 0 then
    Format.fprintf ppf "%.3fs" (to_sec_f t)
  else if t >= 1_000 && t mod 1_000 = 0 then
    Format.fprintf ppf "%dms" (t / 1_000)
  else if t >= 1_000_000 then Format.fprintf ppf "%.6fs" (to_sec_f t)
  else Format.fprintf ppf "%dus" t
