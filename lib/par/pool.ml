(* The one deliberate consumer of the alert-guarded Domain_pool: the
   [jobs = 1] constructors below never reach it, so a serial build (or
   a 4.14 port stubbing domain_pool.ml) loses nothing. *)
[@@@alert "-domains"]

type t = Serial | Domains of { dp : Domain_pool.t; jobs : int }

let serial = Serial

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if jobs = 1 then Serial
  else Domains { dp = Domain_pool.create ~domains:jobs; jobs }

let jobs = function Serial -> 1 | Domains d -> d.jobs

let map t f xs =
  match t with
  | Serial -> List.map f xs
  | Domains _ when Domain_pool.am_worker () ->
    (* nested: run on the calling worker rather than deadlock *)
    List.map f xs
  | Domains d ->
    let thunks = Array.of_list (List.map (fun x () -> f x) xs) in
    Array.to_list (Domain_pool.run_batch d.dp thunks)

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)

let shutdown = function Serial -> () | Domains d -> Domain_pool.shutdown d.dp

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
