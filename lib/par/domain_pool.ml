type task = Task of (unit -> unit) | Stop

type t = {
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable domains : unit Domain.t array;
  mutable stopped : bool;
}

let worker_flag = Domain.DLS.new_key (fun () -> false)
let am_worker () = Domain.DLS.get worker_flag

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.lock
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.lock;
  match task with
  | Stop -> ()
  | Task f ->
    f ();
    worker_loop t

let create ~domains:n =
  if n < 1 then invalid_arg "Domain_pool.create: need at least one domain";
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      domains = [||];
      stopped = false;
    }
  in
  t.domains <-
    Array.init n (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_flag true;
            worker_loop t));
  t

let submit t f =
  Mutex.lock t.lock;
  Queue.push (Task f) t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let run_batch t fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    (* The batch lock orders every slot write before the caller's
       reads: workers fill their slot and decrement [pending] under
       it, and the caller only proceeds after waiting on the same
       lock, so no data race and no torn reads. *)
    let batch_lock = Mutex.create () in
    let all_done = Condition.create () in
    let pending = ref n in
    Array.iteri
      (fun i f ->
        submit t (fun () ->
            let r =
              match f () with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock batch_lock;
            slots.(i) <- Some r;
            decr pending;
            if !pending = 0 then Condition.signal all_done;
            Mutex.unlock batch_lock))
      fs;
    Mutex.lock batch_lock;
    while !pending > 0 do
      Condition.wait all_done batch_lock
    done;
    Mutex.unlock batch_lock;
    (* Submission order: the first raising job wins, and only after
       the whole batch has drained. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      slots
  end

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.lock;
    Array.iter (fun _ -> Queue.push Stop t.queue) t.domains;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains
  end
