(* Lamport's bounded SPSC queue on Atomic counters.  [head] is only
   written by the consumer, [tail] only by the producer; each side
   reads the other's counter through the Atomic, which on OCaml 5
   gives the acquire/release ordering the published-slot protocol
   needs.  Slots hold ['a option] so a popped cell can be released
   for the GC immediately. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to pop; consumer-owned *)
  tail : int Atomic.t;  (* next slot to push; producer-owned *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = next_pow2 capacity in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else n

let is_empty t = length t = 0

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- Some x;
    (* publish: the slot write above must be visible before the new
       tail — Atomic.set is a release store *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end

let pushed t = Atomic.get t.tail
