(** Deterministic fixed-size work pools.

    [map pool f xs] behaves exactly like [List.map f xs] — results
    come back in submission order, and the first raising job's
    exception is re-raised (after the whole batch has drained) — but
    when the pool was created with [jobs > 1] the jobs run on a fixed
    set of OCaml 5 domains.  With [jobs = 1], the default everywhere,
    no domain is ever spawned ({!Domain_pool} is never touched) and
    execution is the plain serial code path, byte-identical to a world
    without this module.

    Jobs must not share mutable state.  Every simulation in this code
    base owns its engine, its RNG state and its managers outright
    (there are no module-level refs or tables anywhere in [lib/]), so
    running independent {!El_harness.Experiment.run}s on separate
    domains is safe; see DESIGN.md §9.

    Nested use — calling {!map} from inside a pool job — degrades to
    serial execution on the calling worker instead of deadlocking on
    the pool's own queue. *)

type t

val serial : t
(** The no-op pool: [jobs serial = 1] and {!map} is [List.map].
    Needs no {!shutdown}. *)

val create : jobs:int -> t
(** [create ~jobs] is a pool of [jobs] workers.  [jobs = 1] returns a
    domain-free pool equivalent to {!serial}; [jobs > 1] spawns that
    many domains, which live until {!shutdown}.  Raises
    [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Worker count the pool was created with (1 for {!serial}). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], on the pool's
    workers when [jobs t > 1], and returns the results in submission
    (= list) order regardless of completion order.  If one or more
    jobs raise, the whole batch still drains and then the exception of
    the first raising job (in submission order) is re-raised with its
    backtrace.  For deterministic [f] the result is independent of
    [jobs] — the property the differential tests in [test/test_par.ml]
    pin down. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce t ~map ~reduce ~init xs] is
    [List.fold_left reduce init (Pool.map t map xs)]: the mapping runs
    on the pool, the reduction folds serially in submission order, so
    the outcome is independent of [jobs] even for non-commutative
    [reduce]. *)

val shutdown : t -> unit
(** Joins the pool's domains.  Idempotent; a no-op on {!serial} and
    [jobs = 1] pools.  The pool must not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a pool, applies [f] to it and shuts
    the pool down when [f] returns or raises. *)
