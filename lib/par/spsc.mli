(** Bounded single-producer / single-consumer ring buffer.

    The shard mailboxes of {!El_shard.Shard_group}: the workload
    router (the single producer) pushes routed sink operations into a
    shard's ring and the shard (the single consumer) drains them.  In
    the deterministic simulation producer and consumer run on the same
    domain — the ring is drained to empty inside the producing call —
    so the structure is exercised on the hot path while the event
    order stays exactly that of a direct call.  Under wall-clock
    multi-domain driving the same ring carries the hand-off between
    domains: one writer, one reader, no locks.

    The implementation uses [Atomic] head/tail counters with
    monotonically published slots, the classic Lamport queue.  Safety
    holds only for a single producer domain and a single consumer
    domain; neither side ever blocks — both operations are total and
    return immediately. *)

type 'a t

val create : capacity:int -> 'a t
(** A ring holding at most [capacity] elements.  The capacity is
    rounded up to the next power of two.  Raises [Invalid_argument]
    if [capacity < 1]. *)

val capacity : 'a t -> int
(** The rounded-up capacity actually allocated. *)

val try_push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] when the ring is full.
    Must only ever be called from one domain at a time. *)

val try_pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element, or [None] when the
    ring is empty.  Must only ever be called from one domain at a
    time. *)

val length : 'a t -> int
(** Elements currently queued.  Exact when called from either
    endpoint's domain; a snapshot otherwise. *)

val is_empty : 'a t -> bool

val pushed : 'a t -> int
(** Total elements ever enqueued — the traffic counter the shard
    statistics report. *)
