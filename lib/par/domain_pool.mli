(** Fixed-size OCaml 5 domain pool — the {e only} module in the code
    base that touches [Domain].

    Every entry point that spawns or assumes domains carries the
    [domains] alert, so ordinary code goes through {!Pool} instead:
    its [jobs = 1] path never reaches this module, which keeps serial
    builds (and a hypothetical 4.14 port, by stubbing this one file)
    entirely domain-free.

    Workers execute submitted thunks in FIFO submission order but may
    complete them in any order; {!run_batch} restores submission order
    when collecting. *)

type t

val create : domains:int -> t
[@@alert domains "spawns OCaml 5 domains — use Pool unless you mean it"]
(** [create ~domains:n] spawns [n] worker domains that live until
    {!shutdown}.  Raises [Invalid_argument] if [n < 1]. *)

val run_batch : t -> (unit -> 'a) array -> 'a array
[@@alert domains "runs on OCaml 5 domains — use Pool unless you mean it"]
(** Runs every thunk on the pool and blocks until the whole batch has
    drained; results are returned in submission order.  If any thunk
    raised, the exception of the {e first} raising thunk (in
    submission order) is re-raised with its backtrace — after the
    batch has drained, so no job of the batch is still running. *)

val shutdown : t -> unit
[@@alert domains "joins OCaml 5 domains — use Pool unless you mean it"]
(** Tells every worker to stop once the queue is empty and joins it.
    Idempotent.  The pool must not be used afterwards. *)

val am_worker : unit -> bool
(** True when called from inside a pool worker domain.  {!Pool} uses
    this to degrade nested parallelism to serial execution on the
    calling worker instead of deadlocking on its own queue. *)
