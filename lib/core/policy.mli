(** Configuration of an ephemeral-logging manager. *)

(** What to do with a committed-but-unflushed update whose record
    reaches a generation head (§2.2 discusses both options). *)
type unflushed_policy =
  | Keep_in_log
      (** forward/recirculate the record until the flush completes —
          the paper's preferred variant and the default *)
  | Force_flush
      (** flush immediately, accepting random I/O on the database
          drives — the naive variant, kept as an ablation *)

(** Where a transaction's records enter the log. *)
type placement =
  | Youngest
      (** always the tail of generation 0 — the paper's base scheme *)
  | Lifetime_hint
      (** §6 extension: records of a transaction whose expected
          lifetime exceeds a generation's estimated retention period
          enter a later generation directly, saving forward
          bandwidth *)

type t = {
  generation_sizes : int array;  (** blocks per generation, youngest first *)
  recirculate : bool;  (** recirculation in the last generation *)
  unflushed : unflushed_policy;
  placement : placement;
  block_payload : int;
  head_tail_gap : int;  (** the paper's k (2): blocks kept free *)
  buffers_per_generation : int;
  forward_backfill : bool;
      (** fill forwarding buffers from subsequent head blocks (§2.2's
          "work backward from the head"); disabling it writes one
          forwarding block per processed head block — the naive
          variant, kept as an ablation *)
  group_commit_timeout : El_model.Time.t option;
      (** upper bound on how long a record may sit in a partially
          filled buffer before it is written anyway.  The paper's
          simulator has none (buffers are written when as full as
          possible); low-rate applications want one *)
  unsafe_eager_dispose : bool;
      (** dispose a committed update's log record the moment its forced
          flush is {e requested} instead of pinning it until the flush
          {e completes} — the pre-fix DESIGN §11 behaviour, which loses
          acked data when a crash lands inside the transfer window.
          Kept (default [false]) purely as an ablation so the negative
          durability tests can reproduce the hazard against the spec
          oracle *)
}

val default : generation_sizes:int array -> t
(** Paper parameters: recirculation on, [Keep_in_log], [Youngest]
    placement, 2000-byte payloads, k = 2, 4 buffers.  Raises
    [Invalid_argument] if [generation_sizes] is empty or any size is
    smaller than [head_tail_gap + 1] (a generation needs at least one
    writable block beyond the gap). *)

val validate : t -> unit
(** Raises [Invalid_argument] when inconsistent, with a message naming
    the offending field. *)

val num_generations : t -> int
val total_blocks : t -> int
