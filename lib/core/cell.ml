open El_model

type tracked = { record : Log_record.t; mutable cell : t option }

and t = {
  tracked : tracked;
  mutable gen : int;
  mutable slot : int;
  mutable prev : t;
  mutable next : t;
  mutable linked : bool;
  mutable owner : owner;
}

and owner = Tx_of of ltt_entry | Data_of of lot_entry * Ids.Tid.t

and lot_entry = {
  (* key fields are mutable so retired entries can be recycled through
     the ledger's free list; [l_free] guards against touching an entry
     after it went back to the pool *)
  mutable l_oid : Ids.Oid.t;
  mutable committed : t option;
  mutable committed_version : int;
  mutable flush_forced : bool;
  mutable uncommitted : (Ids.Tid.t * t) list;
  mutable l_free : bool;
}

and ltt_entry = {
  mutable e_tid : Ids.Tid.t;
  mutable expected_duration : Time.t;
  mutable begun_at : Time.t;
  mutable tx_cell : t option;
  mutable write_set : unit Ids.Oid.Table.t;
  mutable tx_state : [ `Active | `Commit_pending | `Committed ];
  (* intrusive links of the ledger's begun_at-ordered active list;
     self-describing so unlinking is O(1) and idempotent *)
  mutable act_prev : ltt_entry option;
  mutable act_next : ltt_entry option;
  mutable act_linked : bool;
  mutable e_free : bool;  (* on the ledger's free list *)
}

let staged_slot = -1
let unplaced_slot = -2

let track record = { record; cell = None }

let attach tracked ~gen ~slot ~owner =
  if tracked.cell <> None then invalid_arg "Cell.attach: already has a cell";
  let rec cell =
    { tracked; gen; slot; prev = cell; next = cell; linked = false; owner }
  in
  tracked.cell <- Some cell;
  cell

let is_garbage tracked = tracked.cell = None
let detached c = not c.linked

module Cell_list = struct
  type cell = t
  type nonrec t = { mutable head : cell option; mutable length : int }

  let create () = { head = None; length = 0 }
  let head t = t.head
  let length t = t.length
  let is_empty t = t.length = 0

  let insert_tail t c =
    if c.linked then invalid_arg "Cell_list.insert_tail: cell linked";
    (match t.head with
    | None -> t.head <- Some c  (* already self-linked *)
    | Some h ->
      let tail = h.prev in
      tail.next <- c;
      c.prev <- tail;
      c.next <- h;
      h.prev <- c);
    c.linked <- true;
    t.length <- t.length + 1

  let remove t c =
    if not c.linked then invalid_arg "Cell_list.remove: cell not linked";
    (match t.head with
    | None -> invalid_arg "Cell_list.remove: empty list"
    | Some h ->
      if h == c then
        if c.next == c then t.head <- None else t.head <- Some c.next);
    c.prev.next <- c.next;
    c.next.prev <- c.prev;
    c.prev <- c;
    c.next <- c;
    c.linked <- false;
    t.length <- t.length - 1

  let to_list t =
    match t.head with
    | None -> []
    | Some h ->
      let rec walk c acc =
        if c == h then List.rev acc else walk c.next (c :: acc)
      in
      h :: walk h.next []

  let check_invariants t =
    match t.head with
    | None -> assert (t.length = 0)
    | Some h ->
      let count = ref 0 in
      let c = ref h in
      let continue = ref true in
      while !continue do
        incr count;
        assert (!count <= t.length);
        assert ((!c).next.prev == !c);
        assert ((!c).prev.next == !c);
        c := (!c).next;
        if !c == h then continue := false
      done;
      assert (!count = t.length)
end
