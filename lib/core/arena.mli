(** Pooled, packed record storage for the append hot path.

    A {!seg} holds a sequence of log records packed six unboxed
    64-bit words per record into fixed-size [bytes] chunks — no
    per-record heap blocks, nothing for the GC to scan or copy in the
    retained set, and no reallocation on growth (a full segment links
    a fresh chunk; records never move, so an index into a segment
    stays valid for the segment's whole life).  Chunks are carved
    from large slabs and, with [pooled:true] (the default), recycled
    through a free list, so a steady-state workload stops allocating
    entirely.  [pooled:false] reproduces the seed's
    allocate-every-time behaviour and exists for the pooled-vs-seed
    identity tests.

    Ownership and aliasing are guarded.  The owner {!release}s the
    segment; a reader that must outlive the owner — a sealed log
    block holding (segment, index) spans until its disk write
    completes — takes a {!pin}.  Chunks are recycled only once the
    segment is both released and unpinned, and from that moment every
    operation on a stale handle raises [Invalid_argument]. *)

open El_model

type t
type seg

val stride : int
(** Words per packed record. *)

val tag_begin : int
val tag_commit : int
val tag_abort : int
val tag_data : int

val create : ?pooled:bool -> unit -> t
val pooled : t -> bool

val alloc : t -> seg

val release : seg -> unit
(** The owner is done appending and reading; chunks recycle once the
    last pin drops.  Raises [Invalid_argument] on double release. *)

val pin : seg -> unit
(** Keep the records readable past {!release} — a sealed block does
    this for every span it references until its write completes. *)

val unpin : seg -> unit
(** Drop one pin; the last unpin of a released segment recycles its
    chunks. *)

val live : seg -> bool
val pinned : seg -> int
val length : seg -> int
val clear : seg -> unit

val push :
  seg -> tag:int -> tid:int -> oid:int -> version:int -> size:int -> ts:int ->
  unit

val push_record : seg -> Log_record.t -> unit

val tag : seg -> int -> int
val tid : seg -> int -> int
val oid : seg -> int -> int
val version : seg -> int -> int
val size : seg -> int -> int
val timestamp : seg -> int -> int
val is_data : seg -> int -> bool

val flushed : seg -> int -> bool
val set_flushed : seg -> int -> unit

val record_at : seg -> int -> Log_record.t
(** Materialize one packed record as a boxed {!Log_record.t} — the
    store-serialization path only; the simulation hot paths never
    box. *)

val to_records : seg -> Log_record.t list

type stats = {
  allocs : int;  (** fresh chunks carved from slabs *)
  reuses : int;  (** chunk acquisitions served from the free list *)
  releases : int;
  outstanding : int;  (** live segments *)
  pooled_buffers : int;  (** chunks waiting on the free list *)
}

val stats : t -> stats
