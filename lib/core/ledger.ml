open El_model

type t = {
  lot : Cell.lot_entry Ids.Oid.Table.t;
  ltt : Cell.ltt_entry Ids.Tid.Table.t;
  remove_cell : Cell.t -> unit;
  bytes_per_tx : int;
  bytes_per_object : int;
  memory : El_metrics.Gauge.t;
  mutable unflushed : int;
}

let create ~remove_cell ?(bytes_per_tx = Params.el_bytes_per_tx)
    ?(bytes_per_object = Params.el_bytes_per_object) () =
  {
    lot = Ids.Oid.Table.create 1024;
    ltt = Ids.Tid.Table.create 1024;
    remove_cell;
    bytes_per_tx;
    bytes_per_object;
    memory = El_metrics.Gauge.create ~name:"LOT+LTT bytes" ();
    unflushed = 0;
  }

let find_tx t tid = Ids.Tid.Table.find_opt t.ltt tid

let is_active t tid =
  match find_tx t tid with
  | Some e -> e.Cell.tx_state = `Active
  | None -> false

let require_tx t tid =
  match find_tx t tid with
  | Some e -> e
  | None -> invalid_arg "Ledger: unknown transaction"

let lot_size t = Ids.Oid.Table.length t.lot
let ltt_size t = Ids.Tid.Table.length t.ltt

(* ---- memory accounting ---- *)

let mem_add_tx t = El_metrics.Gauge.add t.memory t.bytes_per_tx
let mem_del_tx t = El_metrics.Gauge.add t.memory (-t.bytes_per_tx)
let mem_add_obj t = El_metrics.Gauge.add t.memory t.bytes_per_object
let mem_del_obj t = El_metrics.Gauge.add t.memory (-t.bytes_per_object)

let memory_bytes t = El_metrics.Gauge.value t.memory
let peak_memory_bytes t = El_metrics.Gauge.max_value t.memory
let unflushed_objects t = t.unflushed

(* ---- disposal cascade ---- *)

let lot_entry_cleanup t (entry : Cell.lot_entry) =
  if entry.committed = None && entry.uncommitted = [] then begin
    Ids.Oid.Table.remove t.lot entry.l_oid;
    mem_del_obj t
  end

let dispose_tx_cell t (e : Cell.ltt_entry) =
  (match e.tx_cell with
  | Some c ->
    t.remove_cell c;
    c.Cell.tracked.Cell.cell <- None;
    e.tx_cell <- None
  | None -> ());
  Ids.Tid.Table.remove t.ltt e.e_tid;
  mem_del_tx t

(* Dispose a data cell: detach from list and LOT entry, remove the oid
   from the writer's write set, and — per §2.3 — retire a committed
   writer whose write set has drained. *)
let rec dispose_data_cell t cell (entry : Cell.lot_entry) tid =
  t.remove_cell cell;
  cell.Cell.tracked.Cell.cell <- None;
  (match entry.committed with
  | Some c when c == cell ->
    entry.committed <- None;
    t.unflushed <- t.unflushed - 1
  | Some _ | None ->
    entry.uncommitted <-
      List.filter (fun (_, c) -> not (c == cell)) entry.uncommitted);
  lot_entry_cleanup t entry;
  match find_tx t tid with
  | None -> ()  (* writer already fully retired *)
  | Some e ->
    Ids.Oid.Table.remove e.write_set entry.l_oid;
    if e.tx_state = `Committed && Ids.Oid.Table.length e.write_set = 0 then
      dispose_tx_cell t e

and dispose t (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e ->
    (* Disposing a tx record cell by force: only sound when the entry
       is being retired wholesale; callers use abort/kill for that.
       Here it means "evict": drop the anchor and the entry. *)
    (match e.tx_cell with
    | Some c when c == cell -> dispose_tx_cell t e
    | Some _ | None -> ())
  | Cell.Data_of (entry, tid) -> dispose_data_cell t cell entry tid

(* ---- transaction lifecycle ---- *)

let begin_tx t ~tid ~expected_duration ~timestamp ~size =
  if Ids.Tid.Table.mem t.ltt tid then
    invalid_arg "Ledger.begin_tx: duplicate tid";
  let record = Log_record.begin_ ~tid ~size ~timestamp in
  let tracked = Cell.track record in
  let entry =
    {
      Cell.e_tid = tid;
      expected_duration;
      begun_at = timestamp;
      tx_cell = None;
      write_set = Ids.Oid.Table.create 8;
      tx_state = `Active;
    }
  in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot ~owner:(Cell.Tx_of entry)
  in
  entry.tx_cell <- Some cell;
  Ids.Tid.Table.replace t.ltt tid entry;
  mem_add_tx t;
  cell

let find_lot t oid =
  match Ids.Oid.Table.find_opt t.lot oid with
  | Some e -> e
  | None ->
    let e =
      { Cell.l_oid = oid; committed = None; committed_version = 0; uncommitted = [] }
    in
    Ids.Oid.Table.replace t.lot oid e;
    mem_add_obj t;
    e

let write_data t ~tid ~oid ~version ~size ~timestamp =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.write_data: transaction not active";
  let entry = find_lot t oid in
  (* An earlier uncommitted update by the same transaction is
     superseded immediately (REDO logging keeps only newest values). *)
  let previous =
    List.find_opt (fun (i, _) -> Ids.Tid.equal i tid) entry.uncommitted
  in
  (match previous with
  | Some (_, old_cell) -> dispose_data_cell t old_cell entry tid
  | None -> ());
  (* Disposing the old update may have retired the whole LOT entry;
     re-resolve so the new cell lands in a live entry. *)
  let entry = find_lot t oid in
  let record = Log_record.data ~tid ~oid ~version ~size ~timestamp in
  let tracked = Cell.track record in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot
      ~owner:(Cell.Data_of (entry, tid))
  in
  entry.uncommitted <- (tid, cell) :: entry.uncommitted;
  Ids.Oid.Table.replace e.write_set oid ();
  cell

let supersede_tx_record t (e : Cell.ltt_entry) cell =
  (match e.Cell.tx_cell with
  | Some old ->
    t.remove_cell old;
    old.Cell.tracked.Cell.cell <- None
  | None -> ());
  e.tx_cell <- Some cell

let request_commit t ~tid ~timestamp ~size =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.request_commit: transaction not active";
  e.tx_state <- `Commit_pending;
  let record = Log_record.commit ~tid ~size ~timestamp in
  let tracked = Cell.track record in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot ~owner:(Cell.Tx_of e)
  in
  supersede_tx_record t e cell;
  cell

let commit_durable t ~tid =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Commit_pending then
    invalid_arg "Ledger.commit_durable: no commit in flight";
  e.tx_state <- `Committed;
  let to_flush = ref [] in
  let oids = Ids.Oid.Table.fold (fun oid () acc -> oid :: acc) e.write_set [] in
  List.iter
    (fun oid ->
      match Ids.Oid.Table.find_opt t.lot oid with
      | None -> assert false  (* write set implies a LOT entry *)
      | Some entry ->
        (match
           List.find_opt (fun (i, _) -> Ids.Tid.equal i tid) entry.uncommitted
         with
        | None -> assert false
        | Some (_, cell) ->
          (* The earlier committed update, if any, is now garbage. *)
          (match entry.committed with
          | Some old ->
            let old_tid =
              match old.Cell.owner with
              | Cell.Data_of (_, writer) -> writer
              | Cell.Tx_of _ -> assert false
            in
            dispose_data_cell t old entry old_tid
          | None -> ());
          entry.uncommitted <-
            List.filter (fun (i, _) -> not (Ids.Tid.equal i tid)) entry.uncommitted;
          entry.committed <- Some cell;
          t.unflushed <- t.unflushed + 1;
          (match cell.Cell.tracked.Cell.record.Log_record.kind with
          | Log_record.Data { version; _ } ->
            entry.committed_version <- version;
            to_flush := (oid, version) :: !to_flush
          | Log_record.Begin | Log_record.Commit | Log_record.Abort ->
            assert false)))
    oids;
  if Ids.Oid.Table.length e.write_set = 0 then dispose_tx_cell t e;
  !to_flush

let drop_all_records t (e : Cell.ltt_entry) =
  let oids = Ids.Oid.Table.fold (fun oid () acc -> oid :: acc) e.write_set [] in
  List.iter
    (fun oid ->
      match Ids.Oid.Table.find_opt t.lot oid with
      | None -> ()
      | Some entry -> (
        match
          List.find_opt (fun (i, _) -> Ids.Tid.equal i e.e_tid) entry.uncommitted
        with
        | Some (_, cell) -> dispose_data_cell t cell entry e.e_tid
        | None -> ()))
    oids;
  (* dispose_data_cell already pruned the write set; whatever remains
     (nothing, normally) is cleared before the entry goes away. *)
  Ids.Oid.Table.reset e.write_set;
  dispose_tx_cell t e

let request_abort t ~tid ~timestamp ~size =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.request_abort: transaction not active";
  drop_all_records t e;
  Cell.track (Log_record.abort ~tid ~size ~timestamp)

let kill t ~tid =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.kill: only active transactions can be killed";
  drop_all_records t e

let committed_cell t oid =
  match Ids.Oid.Table.find_opt t.lot oid with
  | None -> None
  | Some entry -> (
    match entry.Cell.committed with
    | Some cell -> Some (cell, entry.committed_version)
    | None -> None)

let tx_state t tid =
  match find_tx t tid with
  | Some e -> Some e.Cell.tx_state
  | None -> None

let flush_complete t ~oid ~version =
  match Ids.Oid.Table.find_opt t.lot oid with
  | None -> false
  | Some entry -> (
    match entry.committed with
    | Some cell when entry.committed_version = version ->
      let tid =
        match cell.Cell.owner with
        | Cell.Data_of (_, writer) -> writer
        | Cell.Tx_of _ -> assert false
      in
      dispose_data_cell t cell entry tid;
      true
    | Some _ | None -> false)

type survivor_class =
  | Keep_active
  | Committed_data of Ids.Oid.t * int
  | Committed_tx of Ids.Tid.t

let classify _t (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e -> (
    match e.Cell.tx_state with
    | `Active | `Commit_pending -> Keep_active
    | `Committed -> Committed_tx e.e_tid)
  | Cell.Data_of (entry, _) -> (
    match entry.committed with
    | Some c when c == cell -> Committed_data (entry.l_oid, entry.committed_version)
    | Some _ | None -> Keep_active)

let writer_tid (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e -> e.Cell.e_tid
  | Cell.Data_of (_, tid) -> tid

let oldest_active t =
  Ids.Tid.Table.fold
    (fun _ (e : Cell.ltt_entry) best ->
      if e.tx_state <> `Active then best
      else
        match best with
        | None -> Some e
        | Some b -> if Time.(e.begun_at < b.Cell.begun_at) then Some e else best)
    t.ltt None

let iter_lot t f = Ids.Oid.Table.iter (fun _ e -> f e) t.lot

let live_cells t =
  let n = ref 0 in
  Ids.Oid.Table.iter
    (fun _ (entry : Cell.lot_entry) ->
      (match entry.committed with Some _ -> incr n | None -> ());
      n := !n + List.length entry.uncommitted)
    t.lot;
  Ids.Tid.Table.iter
    (fun _ (e : Cell.ltt_entry) ->
      match e.tx_cell with Some _ -> incr n | None -> ())
    t.ltt;
  !n

let check_invariants t =
  let unflushed = ref 0 in
  Ids.Oid.Table.iter
    (fun oid (entry : Cell.lot_entry) ->
      assert (Ids.Oid.equal oid entry.l_oid);
      assert (entry.committed <> None || entry.uncommitted <> []);
      (match entry.committed with
      | Some c ->
        incr unflushed;
        assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false)
      | None -> ());
      List.iter
        (fun (tid, c) ->
          assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false);
          match find_tx t tid with
          | Some e ->
            assert (e.Cell.tx_state <> `Committed);
            assert (Ids.Oid.Table.mem e.write_set oid)
          | None -> assert false)
        entry.uncommitted)
    t.lot;
  assert (!unflushed = t.unflushed);
  Ids.Tid.Table.iter
    (fun tid (e : Cell.ltt_entry) ->
      assert (Ids.Tid.equal tid e.e_tid);
      (match e.tx_cell with
      | Some c -> assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false)
      | None -> assert false (* live entries always anchor a tx record *));
      if e.tx_state = `Committed then
        assert (Ids.Oid.Table.length e.write_set > 0))
    t.ltt;
  let expected_mem =
    (t.bytes_per_tx * ltt_size t) + (t.bytes_per_object * lot_size t)
  in
  assert (memory_bytes t = expected_mem)
