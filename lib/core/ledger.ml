open El_model

type t = {
  lot : Cell.lot_entry Ids.Oid.Table.t;
  ltt : Cell.ltt_entry Ids.Tid.Table.t;
  remove_cell : Cell.t -> unit;
  bytes_per_tx : int;
  bytes_per_object : int;
  memory : El_metrics.Gauge.t;
  mutable unflushed : int;
  mutable live : int;  (* non-garbage cells reachable from the tables *)
  (* Active transactions as an intrusive doubly-linked list, kept
     begun_at-ordered so the firewall victim — the oldest active
     transaction — is always the head, making [oldest_active] O(1)
     instead of a full LTT fold.  Engine begin timestamps are monotone
     clock readings, so insertion is an O(1) tail append in practice;
     a sorted-position walk from the tail keeps direct out-of-order
     API use correct. *)
  mutable act_head : Cell.ltt_entry option;
  mutable act_tail : Cell.ltt_entry option;
  (* Retired table entries are recycled through free lists so the
     steady-state transaction churn allocates nothing: each LTT entry
     keeps its write-set hash table (reset, not rebuilt) and each LOT
     entry its record.  The [l_free]/[e_free] flags guard against an
     entry being pushed twice or touched while pooled. *)
  pooled : bool;
  mutable lot_spare : Cell.lot_entry list;
  mutable ltt_spare : Cell.ltt_entry list;
}

let create ~remove_cell ?(bytes_per_tx = Params.el_bytes_per_tx)
    ?(bytes_per_object = Params.el_bytes_per_object) ?(pooled = true) () =
  {
    lot = Ids.Oid.Table.create 1024;
    ltt = Ids.Tid.Table.create 1024;
    remove_cell;
    bytes_per_tx;
    bytes_per_object;
    memory = El_metrics.Gauge.create ~name:"LOT+LTT bytes" ();
    unflushed = 0;
    live = 0;
    act_head = None;
    act_tail = None;
    pooled;
    lot_spare = [];
    ltt_spare = [];
  }

(* ---- the active list ---- *)

let active_append t (e : Cell.ltt_entry) =
  assert (not e.act_linked);
  e.act_linked <- true;
  (* Walk back from the tail to the last entry begun no later than
     [e]; ties keep the earlier insertion ahead.  Monotone engine
     timestamps make this walk zero steps. *)
  let rec find_pred = function
    | None -> None
    | Some (p : Cell.ltt_entry) ->
      if Time.(p.begun_at <= e.begun_at) then Some p else find_pred p.act_prev
  in
  match find_pred t.act_tail with
  | None ->
    e.act_prev <- None;
    e.act_next <- t.act_head;
    (match t.act_head with
    | Some h -> h.Cell.act_prev <- Some e
    | None -> t.act_tail <- Some e);
    t.act_head <- Some e
  | Some p ->
    e.act_prev <- Some p;
    e.act_next <- p.act_next;
    (match p.act_next with
    | Some n -> n.Cell.act_prev <- Some e
    | None -> t.act_tail <- Some e);
    p.act_next <- Some e

(* Idempotent: entries leave the list when they stop being [`Active]
   (commit request, abort, kill) and again when they are disposed. *)
let active_unlink t (e : Cell.ltt_entry) =
  if e.act_linked then begin
    (match e.act_prev with
    | Some p -> p.Cell.act_next <- e.act_next
    | None -> t.act_head <- e.act_next);
    (match e.act_next with
    | Some n -> n.Cell.act_prev <- e.act_prev
    | None -> t.act_tail <- e.act_prev);
    e.act_prev <- None;
    e.act_next <- None;
    e.act_linked <- false
  end

let find_tx t tid = Ids.Tid.Table.find_opt t.ltt tid

let is_active t tid =
  match find_tx t tid with
  | Some e -> e.Cell.tx_state = `Active
  | None -> false

let require_tx t tid =
  match find_tx t tid with
  | Some e -> e
  | None -> invalid_arg "Ledger: unknown transaction"

let lot_size t = Ids.Oid.Table.length t.lot
let ltt_size t = Ids.Tid.Table.length t.ltt

(* ---- memory accounting ---- *)

let mem_add_tx t = El_metrics.Gauge.add t.memory t.bytes_per_tx
let mem_del_tx t = El_metrics.Gauge.add t.memory (-t.bytes_per_tx)
let mem_add_obj t = El_metrics.Gauge.add t.memory t.bytes_per_object
let mem_del_obj t = El_metrics.Gauge.add t.memory (-t.bytes_per_object)

let memory_bytes t = El_metrics.Gauge.value t.memory
let peak_memory_bytes t = El_metrics.Gauge.max_value t.memory
let unflushed_objects t = t.unflushed

(* ---- disposal cascade ---- *)

let lot_entry_cleanup t (entry : Cell.lot_entry) =
  if entry.committed = None && entry.uncommitted = [] then begin
    Ids.Oid.Table.remove t.lot entry.l_oid;
    mem_del_obj t;
    if t.pooled then begin
      assert (not entry.l_free);
      entry.l_free <- true;
      entry.flush_forced <- false;
      t.lot_spare <- entry :: t.lot_spare
    end
  end

let dispose_tx_cell t (e : Cell.ltt_entry) =
  (match e.tx_cell with
  | Some c ->
    t.remove_cell c;
    c.Cell.tracked.Cell.cell <- None;
    e.tx_cell <- None;
    t.live <- t.live - 1
  | None -> ());
  active_unlink t e;
  Ids.Tid.Table.remove t.ltt e.e_tid;
  mem_del_tx t;
  if t.pooled then begin
    assert (not e.e_free);
    e.e_free <- true;
    (* Keep the write-set table (reset preserves its bucket array), so
       a recycled entry's first writes re-populate without resizing. *)
    Ids.Oid.Table.reset e.write_set;
    t.ltt_spare <- e :: t.ltt_spare
  end

(* Dispose a data cell: detach from list and LOT entry, remove the oid
   from the writer's write set, and — per §2.3 — retire a committed
   writer whose write set has drained. *)
let rec dispose_data_cell t cell (entry : Cell.lot_entry) tid =
  (* Capture before the cleanup below may recycle the entry. *)
  let oid = entry.l_oid in
  t.remove_cell cell;
  cell.Cell.tracked.Cell.cell <- None;
  t.live <- t.live - 1;
  (match entry.committed with
  | Some c when c == cell ->
    entry.committed <- None;
    entry.flush_forced <- false;
    t.unflushed <- t.unflushed - 1
  | Some _ | None ->
    entry.uncommitted <-
      List.filter (fun (_, c) -> not (c == cell)) entry.uncommitted);
  lot_entry_cleanup t entry;
  match find_tx t tid with
  | None -> ()  (* writer already fully retired *)
  | Some e ->
    Ids.Oid.Table.remove e.write_set oid;
    if e.tx_state = `Committed && Ids.Oid.Table.length e.write_set = 0 then
      dispose_tx_cell t e

and dispose t (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e ->
    (* Disposing a tx record cell by force: only sound when the entry
       is being retired wholesale; callers use abort/kill for that.
       Here it means "evict": drop the anchor and the entry. *)
    (match e.tx_cell with
    | Some c when c == cell -> dispose_tx_cell t e
    | Some _ | None -> ())
  | Cell.Data_of (entry, tid) -> dispose_data_cell t cell entry tid

(* ---- transaction lifecycle ---- *)

let begin_tx t ~tid ~expected_duration ~timestamp ~size =
  if Ids.Tid.Table.mem t.ltt tid then
    invalid_arg "Ledger.begin_tx: duplicate tid";
  let record = Log_record.begin_ ~tid ~size ~timestamp in
  let tracked = Cell.track record in
  let entry =
    match t.ltt_spare with
    | e :: rest ->
      t.ltt_spare <- rest;
      assert (e.Cell.e_free);
      e.Cell.e_tid <- tid;
      e.expected_duration <- expected_duration;
      e.begun_at <- timestamp;
      e.tx_cell <- None;
      (* write_set was reset at recycle time *)
      e.tx_state <- `Active;
      e.act_prev <- None;
      e.act_next <- None;
      e.act_linked <- false;
      e.e_free <- false;
      e
    | [] ->
      {
        Cell.e_tid = tid;
        expected_duration;
        begun_at = timestamp;
        tx_cell = None;
        write_set = Ids.Oid.Table.create 8;
        tx_state = `Active;
        act_prev = None;
        act_next = None;
        act_linked = false;
        e_free = false;
      }
  in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot ~owner:(Cell.Tx_of entry)
  in
  entry.tx_cell <- Some cell;
  Ids.Tid.Table.replace t.ltt tid entry;
  active_append t entry;
  t.live <- t.live + 1;
  mem_add_tx t;
  cell

let find_lot t oid =
  match Ids.Oid.Table.find_opt t.lot oid with
  | Some e -> e
  | None ->
    let e =
      match t.lot_spare with
      | e :: rest ->
        t.lot_spare <- rest;
        assert (e.Cell.l_free);
        e.Cell.l_oid <- oid;
        e.committed <- None;
        e.committed_version <- 0;
        e.flush_forced <- false;
        e.uncommitted <- [];
        e.l_free <- false;
        e
      | [] ->
        {
          Cell.l_oid = oid;
          committed = None;
          committed_version = 0;
          flush_forced = false;
          uncommitted = [];
          l_free = false;
        }
    in
    Ids.Oid.Table.replace t.lot oid e;
    mem_add_obj t;
    e

let write_data t ~tid ~oid ~version ~size ~timestamp =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.write_data: transaction not active";
  let entry = find_lot t oid in
  (* An earlier uncommitted update by the same transaction is
     superseded immediately (REDO logging keeps only newest values). *)
  let previous =
    List.find_opt (fun (i, _) -> Ids.Tid.equal i tid) entry.uncommitted
  in
  (match previous with
  | Some (_, old_cell) -> dispose_data_cell t old_cell entry tid
  | None -> ());
  (* Disposing the old update may have retired the whole LOT entry;
     re-resolve so the new cell lands in a live entry. *)
  let entry = find_lot t oid in
  let record = Log_record.data ~tid ~oid ~version ~size ~timestamp in
  let tracked = Cell.track record in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot
      ~owner:(Cell.Data_of (entry, tid))
  in
  entry.uncommitted <- (tid, cell) :: entry.uncommitted;
  Ids.Oid.Table.replace e.write_set oid ();
  t.live <- t.live + 1;
  cell

let supersede_tx_record t (e : Cell.ltt_entry) cell =
  (match e.Cell.tx_cell with
  | Some old ->
    t.remove_cell old;
    old.Cell.tracked.Cell.cell <- None;
    t.live <- t.live - 1
  | None -> ());
  e.tx_cell <- Some cell;
  t.live <- t.live + 1

let request_commit t ~tid ~timestamp ~size =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.request_commit: transaction not active";
  e.tx_state <- `Commit_pending;
  active_unlink t e;
  let record = Log_record.commit ~tid ~size ~timestamp in
  let tracked = Cell.track record in
  let cell =
    Cell.attach tracked ~gen:0 ~slot:Cell.unplaced_slot ~owner:(Cell.Tx_of e)
  in
  supersede_tx_record t e cell;
  cell

let commit_durable t ~tid =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Commit_pending then
    invalid_arg "Ledger.commit_durable: no commit in flight";
  e.tx_state <- `Committed;
  let to_flush = ref [] in
  let oids = Ids.Oid.Table.fold (fun oid () acc -> oid :: acc) e.write_set [] in
  List.iter
    (fun oid ->
      match Ids.Oid.Table.find_opt t.lot oid with
      | None -> assert false  (* write set implies a LOT entry *)
      | Some entry ->
        (match
           List.find_opt (fun (i, _) -> Ids.Tid.equal i tid) entry.uncommitted
         with
        | None -> assert false
        | Some (_, cell) ->
          (* The earlier committed update, if any, is now garbage. *)
          (match entry.committed with
          | Some old ->
            let old_tid =
              match old.Cell.owner with
              | Cell.Data_of (_, writer) -> writer
              | Cell.Tx_of _ -> assert false
            in
            dispose_data_cell t old entry old_tid
          | None -> ());
          entry.uncommitted <-
            List.filter (fun (i, _) -> not (Ids.Tid.equal i tid)) entry.uncommitted;
          entry.committed <- Some cell;
          t.unflushed <- t.unflushed + 1;
          (match cell.Cell.tracked.Cell.record.Log_record.kind with
          | Log_record.Data { version; _ } ->
            entry.committed_version <- version;
            to_flush := (oid, version) :: !to_flush
          | Log_record.Begin | Log_record.Commit | Log_record.Abort ->
            assert false)))
    oids;
  if Ids.Oid.Table.length e.write_set = 0 then dispose_tx_cell t e;
  !to_flush

let drop_all_records t (e : Cell.ltt_entry) =
  let oids = Ids.Oid.Table.fold (fun oid () acc -> oid :: acc) e.write_set [] in
  List.iter
    (fun oid ->
      match Ids.Oid.Table.find_opt t.lot oid with
      | None -> ()
      | Some entry -> (
        match
          List.find_opt (fun (i, _) -> Ids.Tid.equal i e.e_tid) entry.uncommitted
        with
        | Some (_, cell) -> dispose_data_cell t cell entry e.e_tid
        | None -> ()))
    oids;
  (* dispose_data_cell already pruned the write set; whatever remains
     (nothing, normally) is cleared before the entry goes away. *)
  Ids.Oid.Table.reset e.write_set;
  dispose_tx_cell t e

let request_abort t ~tid ~timestamp ~size =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.request_abort: transaction not active";
  drop_all_records t e;
  Cell.track (Log_record.abort ~tid ~size ~timestamp)

let kill t ~tid =
  let e = require_tx t tid in
  if e.Cell.tx_state <> `Active then
    invalid_arg "Ledger.kill: only active transactions can be killed";
  drop_all_records t e

let committed_cell t oid =
  match Ids.Oid.Table.find_opt t.lot oid with
  | None -> None
  | Some entry -> (
    match entry.Cell.committed with
    | Some cell -> Some (cell, entry.committed_version)
    | None -> None)

let tx_state t tid =
  match find_tx t tid with
  | Some e -> Some e.Cell.tx_state
  | None -> None

let flush_complete t ~oid ~version =
  match Ids.Oid.Table.find_opt t.lot oid with
  | None -> false
  | Some entry -> (
    match entry.committed with
    | Some cell when entry.committed_version = version ->
      let tid =
        match cell.Cell.owner with
        | Cell.Data_of (_, writer) -> writer
        | Cell.Tx_of _ -> assert false
      in
      dispose_data_cell t cell entry tid;
      true
    | Some _ | None -> false)

type survivor_class =
  | Keep_active
  | Committed_data of Ids.Oid.t * int
  | Committed_tx of Ids.Tid.t
  | Flush_pinned

let classify _t (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e -> (
    match e.Cell.tx_state with
    | `Active | `Commit_pending -> Keep_active
    | `Committed -> Committed_tx e.e_tid)
  | Cell.Data_of (entry, _) -> (
    match entry.committed with
    | Some c when c == cell ->
      if entry.flush_forced then Flush_pinned
      else Committed_data (entry.l_oid, entry.committed_version)
    | Some _ | None -> Keep_active)

(* Pin the committed update: a forced flush has been requested, so the
   record must remain durable in the log until the completion path
   ([flush_complete]) disposes it.  Disposing it earlier — the pre-fix
   behaviour — left the acked version durable nowhere while the
   transfer was in flight. *)
let pin_flush _t (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Data_of (entry, _) -> (
    match entry.Cell.committed with
    | Some c when c == cell -> entry.Cell.flush_forced <- true
    | Some _ | None -> invalid_arg "Ledger.pin_flush: not the committed update")
  | Cell.Tx_of _ -> invalid_arg "Ledger.pin_flush: tx record"

let writer_tid (cell : Cell.t) =
  match cell.Cell.owner with
  | Cell.Tx_of e -> e.Cell.e_tid
  | Cell.Data_of (_, tid) -> tid

(* O(1): the head of the begun_at-ordered active list.  Replaces a
   full LTT fold that made every firewall victim search O(|LTT|). *)
let oldest_active t = t.act_head

let iter_lot t f = Ids.Oid.Table.iter (fun _ e -> f e) t.lot

(* O(1): counter maintained at every cell attach/dispose.  The from-
   scratch recomputation survives below as the cross-check used by
   [check_invariants]. *)
let live_cells t = t.live

let recount_live_cells t =
  let n = ref 0 in
  Ids.Oid.Table.iter
    (fun _ (entry : Cell.lot_entry) ->
      (match entry.committed with Some _ -> incr n | None -> ());
      n := !n + List.length entry.uncommitted)
    t.lot;
  Ids.Tid.Table.iter
    (fun _ (e : Cell.ltt_entry) ->
      match e.tx_cell with Some _ -> incr n | None -> ())
    t.ltt;
  !n

let refold_oldest_active t =
  Ids.Tid.Table.fold
    (fun _ (e : Cell.ltt_entry) best ->
      if e.tx_state <> `Active then best
      else
        match best with
        | None -> Some e
        | Some b -> if Time.(e.begun_at < b.Cell.begun_at) then Some e else best)
    t.ltt None

let check_invariants t =
  let unflushed = ref 0 in
  Ids.Oid.Table.iter
    (fun oid (entry : Cell.lot_entry) ->
      assert (Ids.Oid.equal oid entry.l_oid);
      assert (not entry.l_free);
      assert (entry.committed <> None || entry.uncommitted <> []);
      (* a pin without a committed update would never be cleared *)
      assert ((not entry.flush_forced) || entry.committed <> None);
      (match entry.committed with
      | Some c ->
        incr unflushed;
        assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false)
      | None -> ());
      List.iter
        (fun (tid, c) ->
          assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false);
          match find_tx t tid with
          | Some e ->
            assert (e.Cell.tx_state <> `Committed);
            assert (Ids.Oid.Table.mem e.write_set oid)
          | None -> assert false)
        entry.uncommitted)
    t.lot;
  assert (!unflushed = t.unflushed);
  Ids.Tid.Table.iter
    (fun tid (e : Cell.ltt_entry) ->
      assert (Ids.Tid.equal tid e.e_tid);
      assert (not e.e_free);
      (match e.tx_cell with
      | Some c -> assert (match c.Cell.tracked.Cell.cell with Some c' -> c' == c | None -> false)
      | None -> assert false (* live entries always anchor a tx record *));
      if e.tx_state = `Committed then
        assert (Ids.Oid.Table.length e.write_set > 0))
    t.ltt;
  let expected_mem =
    (t.bytes_per_tx * ltt_size t) + (t.bytes_per_object * lot_size t)
  in
  assert (memory_bytes t = expected_mem);
  (* Incremental indexes agree with from-scratch recomputation. *)
  assert (t.live = recount_live_cells t);
  let actives = ref 0 in
  Ids.Tid.Table.iter
    (fun _ (e : Cell.ltt_entry) ->
      assert (e.act_linked = (e.tx_state = `Active));
      if e.tx_state = `Active then incr actives)
    t.ltt;
  let walked = ref 0 in
  let prev_at = ref None in
  let cursor = ref t.act_head in
  let prev_entry = ref None in
  while !cursor <> None do
    (match !cursor with
    | None -> ()
    | Some e ->
      incr walked;
      assert (!walked <= !actives);
      assert (e.Cell.act_linked && e.tx_state = `Active);
      assert (
        match find_tx t e.e_tid with Some e' -> e' == e | None -> false);
      (match !prev_at with
      | Some at -> assert (not Time.(e.begun_at < at))
      | None -> ());
      assert (
        match (e.act_prev, !prev_entry) with
        | None, None -> true
        | Some p, Some p' -> p == p'
        | _ -> false);
      prev_at := Some e.begun_at;
      prev_entry := Some e;
      cursor := e.act_next)
  done;
  assert (!walked = !actives);
  assert (
    match (t.act_tail, !prev_entry) with
    | None, None -> true
    | Some tl, Some tl' -> tl == tl'
    | _ -> false);
  (* Pooled entries really are retired: flagged, and (for LTT) with a
     drained write set. *)
  List.iter (fun (e : Cell.lot_entry) -> assert e.l_free) t.lot_spare;
  List.iter
    (fun (e : Cell.ltt_entry) ->
      assert e.e_free;
      assert (Ids.Oid.Table.length e.write_set = 0))
    t.ltt_spare;
  match (t.act_head, refold_oldest_active t) with
  | None, None -> ()
  | Some h, Some o ->
    (* Begin times tie only within one engine instant; either entry is
       then a legitimate oldest. *)
    assert (Time.equal h.Cell.begun_at o.Cell.begun_at)
  | _ -> assert false
