(** Cells and tracked records (§2.1–§2.3).

    A {e cell} exists in main memory for every non-garbage record in
    the log and points to the record's disk location (generation and
    block slot; block-granular, as §2.2 prescribes).  The cells of a
    generation form a circular doubly-linked list ordered from the
    record nearest the generation's head to the record nearest its
    tail; the paper's [h_i] pointer is {!Cell_list.head}.

    A {e tracked record} pairs a log record with its (optional) cell:
    the cell is [None] exactly when the record is garbage.  The
    transition from non-garbage to garbage is one-way — a disposed
    cell is never re-attached — which {!dispose} enforces.

    The [owner] field ties a cell back to the LOT or LTT entry that
    holds it, so that disposal can cascade through the tables in O(1)
    without searching (see {!Ledger}). *)

open El_model

type tracked = {
  record : Log_record.t;
  mutable cell : t option;  (** [None] once the record is garbage *)
}

and t = {
  tracked : tracked;
  mutable gen : int;  (** generation index of the record's newest copy *)
  mutable slot : int;
      (** block slot within the generation; {!staged_slot} while the
          record sits in the last generation's recirculation buffer *)
  mutable prev : t;  (** circular links; self-linked when detached *)
  mutable next : t;
  mutable linked : bool;
      (** list membership; distinguishes a detached cell from the sole
          member of a singleton list (both are self-linked) *)
  mutable owner : owner;
}

and owner =
  | Tx_of of ltt_entry  (** the entry's current tx log record *)
  | Data_of of lot_entry * Ids.Tid.t
      (** a data record for the entry's object, written by the tid *)

and lot_entry = {
  mutable l_oid : Ids.Oid.t;
      (** mutable (like every key field below) so {!Ledger} can recycle
          retired entries through a free list *)
  mutable committed : t option;
      (** cell for the most recently committed, still unflushed update *)
  mutable committed_version : int;
  mutable flush_forced : bool;
      (** a forced flush of the committed update is in flight; the
          record is pinned — carried, never evicted — until the flush
          completes and the disposal cascade clears this flag *)
  mutable uncommitted : (Ids.Tid.t * t) list;
      (** cells for uncommitted updates, newest first *)
  mutable l_free : bool;
      (** the entry sits on the ledger's free list; guards double-free *)
}

and ltt_entry = {
  mutable e_tid : Ids.Tid.t;
  mutable expected_duration : Time.t;  (** lifetime hint from the scheduler *)
  mutable begun_at : Time.t;
  mutable tx_cell : t option;  (** cell of the most recent tx record *)
  mutable write_set : unit Ids.Oid.Table.t;
      (** oids with a non-garbage data record written by this tx *)
  mutable tx_state : [ `Active | `Commit_pending | `Committed ];
  mutable act_prev : ltt_entry option;
      (** intrusive links of {!Ledger}'s begun_at-ordered active list *)
  mutable act_next : ltt_entry option;
  mutable act_linked : bool;
  mutable e_free : bool;
      (** the entry sits on the ledger's free list; guards double-free *)
}

val staged_slot : int
(** Sentinel slot (-1) for cells whose record is staged in RAM for
    recirculation and has not yet been assigned a tail block. *)

val unplaced_slot : int
(** Sentinel slot (-2) for a freshly attached cell whose record has
    not yet been appended to a log buffer — such a cell belongs to no
    generation list, and disposing it must not try to unlink it.  The
    window is tiny (within one logging call) but real: appending may
    trigger head advances that kill the very transaction doing the
    appending. *)

val track : Log_record.t -> tracked
(** A fresh tracked record, initially garbage (no cell). *)

val attach : tracked -> gen:int -> slot:int -> owner:owner -> t
(** Creates the record's cell, detached from any list.  Raises
    [Invalid_argument] if the record already has a cell. *)

val is_garbage : tracked -> bool

val detached : t -> bool
(** Whether the cell is outside any list (self-linked). *)

(** The circular doubly-linked list of one generation's cells,
    ordered head-most first. *)
module Cell_list : sig
  type cell := t
  type t

  val create : unit -> t

  val head : t -> cell option
  (** The paper's [h_i]: cell of the non-garbage record nearest the
      generation's head, or [None] when the generation holds no
      non-garbage record. *)

  val length : t -> int
  val is_empty : t -> bool

  val insert_tail : t -> cell -> unit
  (** Appends at the tail side (records entering at the generation's
      tail are the youngest).  Raises [Invalid_argument] if the cell
      is already linked into a list. *)

  val remove : t -> cell -> unit
  (** Unlinks the cell, updating the head pointer if needed.  Raises
      [Invalid_argument] if the cell is not in this list (detected via
      the detached flag; membership of the right list is the caller's
      invariant, checked in debug assertions). *)

  val to_list : t -> cell list
  (** Head-to-tail order; O(n), for tests and recovery audits. *)

  val check_invariants : t -> unit
  (** Raises [Assert_failure] if the circular structure is corrupt.
      Used by the property-based tests. *)
end
