open El_model

(* Packed record storage: each record is [stride] 64-bit words packed
   into fixed-size [bytes] chunks, so a transaction's remembered
   records (and the spans a sealed block references) live in flat
   buffers the GC treats as opaque — where the boxed representation
   paid ~26 words of list-and-record heap per append and made every
   major collection walk the whole retained set.

   Word layout per record:
     w0  tag (2 bits) lor flags (bit 2: flushed)
     w1  tid
     w2  oid      (-1 for tx records)
     w3  version
     w4  size
     w5  timestamp (µs)

   The storage geometry is deliberate, three times over.  Fixed-size
   chunks mean growth never copies: a segment that outgrows its last
   chunk links a fresh one instead of doubling-and-blitting a
   contiguous buffer, so a 20k-record transaction costs exactly its
   own bytes — and a record's address never changes, which is what
   lets sealed blocks hold (segment, index) spans instead of copies.
   Chunks are carved from large slabs, because creating many small
   major-heap blocks individually makes the pacing of each
   [caml_alloc_shr] dominate the seal path (measured ~30× slower than
   carving).  And [bytes] (never [int array]) keeps both slabs and
   chunks opaque to the collector: nothing to scan, nothing to
   zero-fill.

   Retired chunks go on the arena's free list — one size class for
   every segment — and are handed to the next push that needs one, so
   a steady-state workload reaches a fixed point with no allocation
   at all.  [pooled:false] disables reuse — every chunk is carved
   fresh — which is exactly the seed's allocate-per-transaction
   behaviour, kept as the identity-test baseline.

   Lifetime: the owner (a transaction, or a block's local segment)
   [release]s the segment; readers that outlive the owner — sealed
   blocks waiting on their disk write — hold [pin]s.  Chunks return
   to the pool only once the segment is released *and* unpinned, so a
   block's payload thunk can materialize records after the writing
   transaction retired.  After recycling, every access through a
   stale handle raises [Invalid_argument]. *)

external get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

type t = {
  pooled : bool;
  mutable slab : bytes;
  mutable slab_used : int;  (* bytes carved off [slab] *)
  mutable free : (bytes * int) list;  (* recycled chunks: buffer, offset *)
  mutable free_bufs : int;
  mutable allocs : int;
  mutable reuses : int;
  mutable releases : int;
  mutable outstanding : int;
}

type seg = {
  owner : t;
  mutable bufs : bytes array;  (* chunk k lives at [offs.(k)] in [bufs.(k)] *)
  mutable offs : int array;
  mutable nchunks : int;
  mutable count : int;  (* records stored *)
  mutable live : bool;  (* not yet released by its owner *)
  mutable pins : int;  (* sealed blocks still reading the records *)
  mutable freed : bool;  (* chunks recycled; every access now raises *)
}

let stride = 6
let byte_stride = 8 * stride
let chunk_shift = 6
let chunk_records = 1 lsl chunk_shift
let chunk_mask = chunk_records - 1
let chunk_bytes = chunk_records * byte_stride
let slab_bytes = 256 * chunk_bytes
let tag_begin = 0
let tag_commit = 1
let tag_abort = 2
let tag_data = 3
let flag_flushed = 4

let create ?(pooled = true) () =
  {
    pooled;
    slab = Bytes.empty;
    slab_used = 0;
    free = [];
    free_bufs = 0;
    allocs = 0;
    reuses = 0;
    releases = 0;
    outstanding = 0;
  }

let alloc t =
  t.outstanding <- t.outstanding + 1;
  {
    owner = t;
    bufs = [||];
    offs = [||];
    nchunks = 0;
    count = 0;
    live = true;
    pins = 0;
    freed = false;
  }

let free_chunks seg =
  let t = seg.owner in
  if t.pooled then
    for k = 0 to seg.nchunks - 1 do
      t.free <-
        (Array.unsafe_get seg.bufs k, Array.unsafe_get seg.offs k) :: t.free;
      t.free_bufs <- t.free_bufs + 1
    done;
  seg.nchunks <- 0;
  seg.count <- 0;
  (* sever the segment from the recycled chunks so a stale handle can
     never alias the next owner's records *)
  seg.bufs <- [||];
  seg.offs <- [||];
  seg.freed <- true

let release seg =
  if not seg.live then invalid_arg "Arena.release: segment already released";
  seg.live <- false;
  let t = seg.owner in
  t.outstanding <- t.outstanding - 1;
  t.releases <- t.releases + 1;
  if seg.pins = 0 then free_chunks seg

let pin seg =
  if seg.freed then invalid_arg "Arena.pin: segment already recycled";
  seg.pins <- seg.pins + 1

let unpin seg =
  if seg.pins <= 0 then invalid_arg "Arena.unpin: segment not pinned";
  seg.pins <- seg.pins - 1;
  if seg.pins = 0 && not seg.live then free_chunks seg

let live seg = seg.live
let pinned seg = seg.pins

let check seg =
  if seg.freed then invalid_arg "Arena: segment used after release"

let length seg =
  check seg;
  seg.count

let add_chunk seg =
  let t = seg.owner in
  let n = seg.nchunks in
  if n = Array.length seg.bufs then begin
    let cap = if n = 0 then 4 else n * 2 in
    let bufs = Array.make cap Bytes.empty in
    let offs = Array.make cap 0 in
    Array.blit seg.bufs 0 bufs 0 n;
    Array.blit seg.offs 0 offs 0 n;
    seg.bufs <- bufs;
    seg.offs <- offs
  end;
  (match t.free with
  | (b, o) :: rest when t.pooled ->
    t.free <- rest;
    t.free_bufs <- t.free_bufs - 1;
    t.reuses <- t.reuses + 1;
    seg.bufs.(n) <- b;
    seg.offs.(n) <- o
  | _ ->
    t.allocs <- t.allocs + 1;
    if t.slab_used + chunk_bytes > Bytes.length t.slab then begin
      t.slab <- Bytes.create slab_bytes;
      t.slab_used <- 0
    end;
    seg.bufs.(n) <- t.slab;
    seg.offs.(n) <- t.slab_used;
    t.slab_used <- t.slab_used + chunk_bytes);
  seg.nchunks <- n + 1

let push seg ~tag ~tid ~oid ~version ~size ~ts =
  if not seg.live then invalid_arg "Arena: segment used after release";
  let i = seg.count in
  if i lsr chunk_shift >= seg.nchunks then add_chunk seg;
  let ci = i lsr chunk_shift in
  let buf = Array.unsafe_get seg.bufs ci in
  let off =
    Array.unsafe_get seg.offs ci + ((i land chunk_mask) * byte_stride)
  in
  set64 buf off (Int64.of_int tag);
  set64 buf (off + 8) (Int64.of_int tid);
  set64 buf (off + 16) (Int64.of_int oid);
  set64 buf (off + 24) (Int64.of_int version);
  set64 buf (off + 32) (Int64.of_int size);
  set64 buf (off + 40) (Int64.of_int ts);
  seg.count <- i + 1

let word seg i k =
  let ci = i lsr chunk_shift in
  Int64.to_int
    (get64
       (Array.unsafe_get seg.bufs ci)
       (Array.unsafe_get seg.offs ci
       + ((i land chunk_mask) * byte_stride)
       + (k * 8)))

let bounds seg i =
  check seg;
  if i < 0 || i >= seg.count then invalid_arg "Arena: index out of range"

let tag seg i =
  bounds seg i;
  word seg i 0 land 3

let tid seg i =
  bounds seg i;
  word seg i 1

let oid seg i =
  bounds seg i;
  word seg i 2

let version seg i =
  bounds seg i;
  word seg i 3

let size seg i =
  bounds seg i;
  word seg i 4

let timestamp seg i =
  bounds seg i;
  word seg i 5

let is_data seg i = tag seg i = tag_data

let flushed seg i =
  bounds seg i;
  word seg i 0 land flag_flushed <> 0

let set_flushed seg i =
  bounds seg i;
  let ci = i lsr chunk_shift in
  let off =
    Array.unsafe_get seg.offs ci + ((i land chunk_mask) * byte_stride)
  in
  let buf = Array.unsafe_get seg.bufs ci in
  set64 buf off (Int64.of_int (Int64.to_int (get64 buf off) lor flag_flushed))

let clear seg =
  if not seg.live then invalid_arg "Arena: segment used after release";
  seg.count <- 0

let record_at seg i =
  let tid = Ids.Tid.of_int (tid seg i) in
  let ts = Time.of_us (timestamp seg i) in
  let size = size seg i in
  match tag seg i with
  | 0 -> Log_record.begin_ ~tid ~size ~timestamp:ts
  | 1 -> Log_record.commit ~tid ~size ~timestamp:ts
  | 2 -> Log_record.abort ~tid ~size ~timestamp:ts
  | _ ->
    Log_record.data ~tid
      ~oid:(Ids.Oid.of_int (oid seg i))
      ~version:(version seg i) ~size ~timestamp:ts

let push_record seg (r : Log_record.t) =
  let tag, roid, version =
    match r.Log_record.kind with
    | Log_record.Begin -> (tag_begin, -1, 0)
    | Log_record.Commit -> (tag_commit, -1, 0)
    | Log_record.Abort -> (tag_abort, -1, 0)
    | Log_record.Data { oid; version } -> (tag_data, Ids.Oid.to_int oid, version)
  in
  push seg ~tag ~tid:(Ids.Tid.to_int r.Log_record.tid) ~oid:roid ~version
    ~size:r.Log_record.size
    ~ts:(Time.to_us r.Log_record.timestamp)

let to_records seg =
  check seg;
  let n = seg.count in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (record_at seg i :: acc)
  in
  build (n - 1) []

type stats = {
  allocs : int;  (** fresh chunks carved from slabs *)
  reuses : int;  (** chunk acquisitions served from the free list *)
  releases : int;
  outstanding : int;  (** live segments *)
  pooled_buffers : int;  (** chunks waiting on the free list *)
}

let stats (t : t) =
  {
    allocs = t.allocs;
    reuses = t.reuses;
    releases = t.releases;
    outstanding = t.outstanding;
    pooled_buffers = t.free_bufs;
  }

let pooled t = t.pooled
