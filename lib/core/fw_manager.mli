(** The traditional firewall (FW) logging baseline (§1, §4).

    A single log; disk space behind the {e firewall} — the oldest log
    record of the oldest active transaction — cannot be reclaimed.
    Following the paper's evaluation setup, no checkpointing facility
    is modelled (this favours FW, as the paper notes): a transaction's
    records stop mattering the moment it terminates, so the head may
    advance over any block containing no active transaction's records.
    When the log fills and the head is blocked at the firewall, the
    oldest active transaction is killed, System R style.

    Main-memory accounting is the paper's: 22 bytes per transaction in
    the system (each needs a pointer to its oldest log record).

    The interface mirrors {!El_manager} so the harness can drive both
    with the same workload generator. *)

open El_model

type t

(** Periodic checkpointing, which the paper deliberately does not
    model ("this omission favors FW").  With a checkpoint facility, a
    committed transaction's records remain REDO-relevant until the
    first checkpoint after its commit, and each checkpoint itself
    costs log writes — this variant quantifies both. *)
type checkpointing = {
  interval : Time.t;  (** time between checkpoints *)
  cost_blocks : int;  (** block writes charged per checkpoint *)
}

val create :
  El_sim.Engine.t ->
  size_blocks:int ->
  ?block_payload:int ->
  ?head_tail_gap:int ->
  ?buffers:int ->
  ?write_time:Time.t ->
  ?tx_record_size:int ->
  ?bytes_per_tx:int ->
  ?checkpointing:checkpointing ->
  ?obs:El_obs.Obs.t ->
  ?fault:El_fault.Injector.t ->
  ?store:El_store.Log_store.t ->
  unit ->
  t
(** Raises [Invalid_argument] if [size_blocks < head_tail_gap + 2].
    Without [checkpointing] this is the paper's idealised FW: records
    stop mattering the moment their transaction terminates.  With
    [store], every sealed block is appended to the durable log before
    its completion hooks fire; checkpoint writes carry no payload
    (they model bandwidth only) and persist nothing. *)

val set_on_kill : t -> (Ids.Tid.t -> unit) -> unit

val begin_tx : t -> tid:Ids.Tid.t -> expected_duration:Time.t -> unit
val write_data :
  t -> tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit
val request_commit : t -> tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit
val request_abort : t -> tid:Ids.Tid.t -> unit
val drain : t -> unit

type stats = {
  size_blocks : int;
  log_writes : int;
  kills : int;
  peak_occupancy : int;
      (** high-water mark of blocks between firewall and tail —
          FW's minimum disk-space requirement *)
  peak_memory_bytes : int;
  current_memory_bytes : int;
  live_transactions : int;
  buffer_pool_overflows : int;
  checkpoints : int;
  checkpoint_writes : int;  (** included in [log_writes] *)
}

val stats : t -> stats

(** Read-only snapshot of the ring for the external invariant auditor. *)
type ring_audit = {
  ra_size : int;
  ra_head : int;
  ra_tail : int;
  ra_occupied : int;
  ra_live_records : int;  (** records still pinning log space *)
}

val audit_view : t -> ring_audit

val check_invariants : t -> unit
(** Deep structural audit, for tests: ring accounting ([tail = head +
    occupied], occupancy within size), live-record counts non-negative
    and confined to occupied slots, every transaction's record slots
    inside the occupied region, per-slot pins equal to the sum of
    transaction record lists plus records awaiting a checkpoint, and
    the memory gauge equal to 22 bytes per live transaction.  Raises
    [Assert_failure] on violation. *)
