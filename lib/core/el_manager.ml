open El_model
module Block = El_disk.Block
module Log_channel = El_disk.Log_channel
module Flush_array = El_disk.Flush_array
module Stable_db = El_disk.Stable_db

exception Log_overloaded of string

let overload fmt = Printf.ksprintf (fun s -> raise (Log_overloaded s)) fmt

type slot_state = Free | Filling | Sealed | Durable

(* A buffer destined for a known block slot of its generation.  Hooks
   fire when the disk write completes (group commit acks). *)
type buffer = {
  b_slot : int;
  b_block : Cell.tracked Block.t;
  mutable b_hooks : (Time.t -> unit) list;
  b_seq : int;  (* distinguishes successive current buffers for timeouts *)
}

type gen = {
  g_index : int;
  g_size : int;
  g_last : bool;
  g_blocks : Cell.tracked Block.t option array;  (* logical content by slot *)
  g_durable : Cell.tracked Block.t option array;  (* what a crash would read *)
  g_state : slot_state array;
  mutable g_head : int;  (* oldest occupied slot *)
  mutable g_tail : int;  (* next slot to assign *)
  mutable g_occupied : int;
  g_cells : Cell.Cell_list.t;
  g_channel : Log_channel.t;
  g_occupancy : El_metrics.Gauge.t;
  mutable g_current : buffer option;  (* incoming records being grouped *)
  mutable g_buffer_seq : int;
  mutable g_stage : Cell.tracked Block.t;  (* recirculation staging (last gen) *)
  mutable g_stage_origins : int list;  (* slots whose survivors are staged *)
  g_inflight : (int * Cell.tracked Block.t) Queue.t;
      (* writes issued but not completed, FIFO; the head is the write
         in service.  Tracked here, not via [g_blocks], because a slot
         can be reassigned while an older write for it is still
         queued. *)
  g_fwd_guard : int array;
      (* per slot: in-flight forward writes in the next generation
         that carried this slot's survivors away.  While non-zero the
         slot's durable image is those records' only platter copy, so
         an overwrite of the slot must not reach the platter. *)
  g_parked : buffer Queue.t;
      (* sealed writes held back because their slot is forward-guarded
         (or queued behind one that is): releasing them in FIFO order
         once the guard clears preserves the data-before-commit write
         ordering on the channel. *)
}

type t = {
  engine : El_sim.Engine.t;
  policy : Policy.t;
  ledger : Ledger.t;
  flush : Flush_array.t;
  stable : Stable_db.t;
  tx_record_size : int;
  gens : gen array;
  placements : int Ids.Tid.Table.t;  (* lifetime-hint target generation *)
  committed_ref : int Ids.Oid.Table.t;
  store : El_store.Log_store.t option;
  mutable on_kill : (Ids.Tid.t -> unit) option;
  mutable forwarded : int;
  mutable recirculated : int;
  mutable stage_writes : int;
  mutable kills : int;
  mutable evictions : int;
  mutable forced_head_flushes : int;
  mutable nondurable_head_reads : int;
  mutable fwd_guard_parks : int;
  mutable acked : int;
  obs : El_obs.Obs.t option;
}

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Manager kind

let free_slots g = g.g_size - g.g_occupied

let make_gen engine policy ~write_time ?obs ?fault ?store i =
  let size = policy.Policy.generation_sizes.(i) in
  {
    g_index = i;
    g_size = size;
    g_last = i = Policy.num_generations policy - 1;
    g_blocks = Array.make size None;
    g_durable = Array.make size None;
    g_state = Array.make size Free;
    g_head = 0;
    g_tail = 0;
    g_occupied = 0;
    g_cells = Cell.Cell_list.create ();
    g_channel =
      Log_channel.create engine ~write_time
        ~buffer_pool:policy.Policy.buffers_per_generation ?obs ~label:i
        ?fault:
          (Option.map (fun inj -> El_fault.Injector.log_gen inj i) fault)
        ?store ();
    g_occupancy =
      El_metrics.Gauge.create ~name:(Printf.sprintf "gen%d occupancy" i) ();
    g_current = None;
    g_buffer_seq = 0;
    g_stage = Block.create ~capacity:policy.Policy.block_payload;
    g_stage_origins = [];
    g_inflight = Queue.create ();
    g_fwd_guard = Array.make size 0;
    g_parked = Queue.create ();
  }

let create engine ~policy ~flush ~stable ?(write_time = Params.tau_disk_write)
    ?(tx_record_size = Params.tx_record_size) ?pooled ?obs ?fault ?store () =
  Policy.validate policy;
  let gens =
    Array.init (Policy.num_generations policy)
      (make_gen engine policy ~write_time ?obs ?fault ?store)
  in
  let remove_cell (c : Cell.t) =
    (* A cell whose record is not yet in any buffer belongs to no
       list (its transaction was killed mid-append). *)
    if c.Cell.slot <> Cell.unplaced_slot then
      Cell.Cell_list.remove gens.(c.Cell.gen).g_cells c
  in
  let t =
    {
      engine;
      policy;
      ledger = Ledger.create ~remove_cell ?pooled ();
      flush;
      stable;
      tx_record_size;
      gens;
      placements = Ids.Tid.Table.create 256;
      committed_ref = Ids.Oid.Table.create 1024;
      store;
      on_kill = None;
      forwarded = 0;
      recirculated = 0;
      stage_writes = 0;
      kills = 0;
      evictions = 0;
      forced_head_flushes = 0;
      nondurable_head_reads = 0;
      fwd_guard_parks = 0;
      acked = 0;
      obs;
    }
  in
  Flush_array.set_on_flush flush (fun oid ~version ->
      Stable_db.apply stable oid ~version;
      ignore (Ledger.flush_complete t.ledger ~oid ~version));
  t

let set_on_kill t f = t.on_kill <- Some f

(* ---- record / transaction victim handling ---- *)

let kill_tx t tid =
  Ledger.kill t.ledger ~tid;
  t.kills <- t.kills + 1;
  emit t (El_obs.Event.Kill { tid = Ids.Tid.to_int tid });
  Ids.Tid.Table.remove t.placements tid;
  match t.on_kill with Some f -> f tid | None -> ()

(* Force a committed update out of the log with a forced (random-I/O)
   flush request.  The record stays pinned in the log — carried like
   any survivor — until the flush completes and the disposal cascade
   ([Ledger.flush_complete] via the flush array's completion hook)
   retires it: disposing it at request time would leave the acked
   version durable nowhere for the whole transfer window (the DESIGN
   §11 hole).  The unsafe-eager ablation keeps the pre-fix
   dispose-first behaviour for the negative durability tests. *)
let force_flush_data t cell oid version =
  if t.policy.Policy.unsafe_eager_dispose then Ledger.dispose t.ledger cell
  else Ledger.pin_flush t.ledger cell;
  Flush_array.request_forced t.flush oid ~version

let force_flush_tx t tid =
  match Ledger.find_tx t.ledger tid with
  | None -> ()
  | Some e ->
    let oids =
      Ids.Oid.Table.fold (fun oid () acc -> oid :: acc) e.Cell.write_set []
    in
    List.iter
      (fun oid ->
        match Ledger.committed_cell t.ledger oid with
        | Some (cell, version) -> (
          match Ledger.classify t.ledger cell with
          | Ledger.Flush_pinned -> ()  (* forced flush already in flight *)
          | _ -> force_flush_data t cell oid version)
        | None -> ())
      oids
(* draining the write set retires the LTT entry and its tx record *)

(* A surviving record that cannot be carried along: an active writer is
   killed (the paper's kill-on-no-space rule); a commit-pending one can
   be neither kept nor killed.  [context] only flavours the overload
   message. *)
let kill_or_overload t (cell : Cell.t) ~context =
  let tid = Ledger.writer_tid cell in
  match Ledger.tx_state t.ledger tid with
  | Some `Active -> kill_tx t tid
  | Some `Commit_pending ->
    overload
      "%s: record of commit-pending transaction %d cannot be kept nor killed"
      context (Ids.Tid.to_int tid)
  | Some `Committed | None -> assert false

(* Stat and event bookkeeping for a forced flush.  Under the safe
   discipline the record survives in the log whatever the context, so
   every forced flush counts as a head flush; only the unsafe-eager
   ablation's pressure paths really evict. *)
let note_forced t ~count_as ~target ~committed_tx =
  match count_as with
  | `Eviction when t.policy.Policy.unsafe_eager_dispose ->
    t.evictions <- t.evictions + 1;
    emit t (El_obs.Event.Evict { target; committed_tx })
  | `Eviction | `Head_flush ->
    t.forced_head_flushes <- t.forced_head_flushes + 1

(* ---- slot and buffer mechanics ---- *)

let set_occupancy g =
  El_metrics.Gauge.set g.g_occupancy g.g_occupied

let free_slot g s =
  assert (s = g.g_head);
  assert (g.g_occupied > 0);
  g.g_head <- (s + 1) mod g.g_size;
  g.g_occupied <- g.g_occupied - 1;
  g.g_state.(s) <- Free;
  set_occupancy g

let block_records block =
  List.map (fun (tr : Cell.tracked) -> tr.Cell.record) (Block.items block)

(* Hand a sealed buffer to the generation's channel. *)
let channel_issue t g (buf : buffer) =
  Queue.add (buf.b_slot, buf.b_block) g.g_inflight;
  Log_channel.write
    ~payload:(fun () -> (buf.b_slot, block_records buf.b_block))
    g.g_channel
    ~on_complete:(fun () ->
      (let s, _ = Queue.pop g.g_inflight in
       assert (s = buf.b_slot));
      g.g_state.(buf.b_slot) <-
        (if g.g_state.(buf.b_slot) = Sealed then Durable
         else g.g_state.(buf.b_slot));
      g.g_durable.(buf.b_slot) <- Some buf.b_block;
      let now = El_sim.Engine.now t.engine in
      List.iter (fun hook -> hook now) (List.rev buf.b_hooks);
      buf.b_hooks <- [])

(* Release writes parked behind a forward guard, in seal order, up to
   the first slot still guarded. *)
let rec drain_parked t g =
  match Queue.peek_opt g.g_parked with
  | Some buf when g.g_fwd_guard.(buf.b_slot) = 0 ->
    ignore (Queue.pop g.g_parked);
    channel_issue t g buf;
    drain_parked t g
  | Some _ | None -> ()

(* Issue a sealed buffer to the generation's channel.

   Durability guard for forwarding (the cross-channel analogue of the
   recirculation guard in [assign_slot]): while a forward write in the
   next generation is still in flight, the origin slot's durable image
   is its records' only platter copy, so a reissued write for that
   slot must not start — on a backlogged next-generation channel the
   overwrite would win the race and a crash would lose acked updates.
   The write is parked, and every later seal queues behind it so the
   channel still completes writes in seal order (group commit relies
   on data records reaching the platter before their commit record). *)
let issue_write t g (buf : buffer) =
  g.g_state.(buf.b_slot) <- Sealed;
  if
    g.g_fwd_guard.(buf.b_slot) > 0 || not (Queue.is_empty g.g_parked)
  then begin
    t.fwd_guard_parks <- t.fwd_guard_parks + 1;
    Queue.add buf g.g_parked
  end
  else channel_issue t g buf

let rec assign_slot t g =
  (* Durability guard for recirculation: the slot about to be reused
     may hold the only durable copies of records currently staged in
     RAM; write the stage out first (§2.2: existing copies must not be
     overwritten before the recirculated block reaches the tail). *)
  if g.g_last && List.mem g.g_tail g.g_stage_origins then write_stage t g;
  if free_slots g = 0 then
    overload "generation %d: no free block to assign" g.g_index;
  let s = g.g_tail in
  g.g_tail <- (s + 1) mod g.g_size;
  g.g_occupied <- g.g_occupied + 1;
  set_occupancy g;
  s

(* Write the recirculation staging buffer at the last generation's
   tail.  When the generation is completely full, active writers die
   (the paper's kill-on-no-space rule) but committed records cannot be
   dropped — an acked update must stay durable until its flush
   completes — so they are force-flushed and re-staged, their origin
   slots still guarded.  If nothing was killable the generation is
   genuinely wedged on in-flight commits and the run overloads. *)
and write_stage t g =
  if not (Block.is_empty g.g_stage) then begin
    let content = g.g_stage in
    let origins = g.g_stage_origins in
    g.g_stage <- Block.create ~capacity:t.policy.Policy.block_payload;
    g.g_stage_origins <- [];
    if free_slots g = 0 then begin
      let killed = ref false in
      Block.iter
        (fun (tr : Cell.tracked) ->
          match tr.Cell.cell with
          | None -> ()
          | Some cell -> (
            match Ledger.classify t.ledger cell with
            | Ledger.Keep_active ->
              kill_or_overload t cell ~context:"recirculation";
              killed := true
            | Ledger.Committed_data (oid, version) ->
              force_flush_data t cell oid version;
              note_forced t ~count_as:`Eviction ~target:(Ids.Oid.to_int oid)
                ~committed_tx:false
            | Ledger.Committed_tx tid ->
              force_flush_tx t tid;
              note_forced t ~count_as:`Eviction ~target:(Ids.Tid.to_int tid)
                ~committed_tx:true
            | Ledger.Flush_pinned -> ()))
        content;
      (* Whatever is still live after the kill/dispose pass (pinned
         updates and their commit evidence — nothing, under the eager
         ablation) goes back on the stage. *)
      let restaged = ref 0 in
      Block.iter
        (fun (tr : Cell.tracked) ->
          match tr.Cell.cell with
          | None -> ()
          | Some _ ->
            Block.add g.g_stage ~size:tr.Cell.record.Log_record.size tr;
            incr restaged)
        content;
      if !restaged > 0 then begin
        g.g_stage_origins <- origins;
        if not !killed then
          overload
            "generation %d: stage full of acked records awaiting their \
             flushes; nothing can be killed"
            g.g_index
      end
    end
    else begin
      let s = assign_slot t g in
      let live = ref 0 in
      Block.iter
        (fun (tr : Cell.tracked) ->
          match tr.Cell.cell with
          | None -> ()
          | Some cell ->
            assert (cell.Cell.slot = Cell.staged_slot);
            cell.Cell.slot <- s;
            incr live)
        content;
      if !live = 0 then begin
        (* Everything staged died in the meantime; return the slot by
           rolling the tail back (nothing was written yet). *)
        g.g_tail <- s;
        g.g_occupied <- g.g_occupied - 1;
        set_occupancy g
      end
      else begin
        g.g_blocks.(s) <- Some content;
        t.stage_writes <- t.stage_writes + 1;
        emit t (El_obs.Event.Stage_write { gen = g.g_index; records = !live });
        issue_write t g { b_slot = s; b_block = content; b_hooks = []; b_seq = -1 }
      end
    end
  end

(* Move one surviving cell of head slot [origin] into the last
   generation's staging buffer (to be rewritten at the tail); shared by
   recirculation and by the no-recirculation head path that must keep
   pinned committed records alive until their flushes land. *)
let stage_survivor t g ~origin (cell : Cell.t) =
  let tr = cell.Cell.tracked in
  let size = tr.Cell.record.Log_record.size in
  if not (Block.fits g.g_stage ~size) then write_stage t g;
  (* writing the stage can kill transactions; re-check liveness *)
  match tr.Cell.cell with
  | None -> ()
  | Some cell ->
    Block.add g.g_stage ~size tr;
    Cell.Cell_list.remove g.g_cells cell;
    cell.Cell.slot <- Cell.staged_slot;
    Cell.Cell_list.insert_tail g.g_cells cell;
    if not (List.mem origin g.g_stage_origins) then
      g.g_stage_origins <- origin :: g.g_stage_origins;
    t.recirculated <- t.recirculated + 1

(* ---- head advance: discard, forward, recirculate ---- *)

let survivors_of g s =
  match g.g_blocks.(s) with
  | None -> []
  | Some block ->
    List.filter
      (fun (tr : Cell.tracked) ->
        match tr.Cell.cell with
        | Some c -> c.Cell.gen = g.g_index && c.Cell.slot = s
        | None -> false)
      (Block.items block)

let current_slot g =
  match g.g_current with Some b -> Some b.b_slot | None -> None

let rec seal_current t g =
  match g.g_current with
  | None -> ()
  | Some buf ->
    g.g_current <- None;
    emit t (El_obs.Event.Seal { gen = g.g_index; slot = buf.b_slot });
    issue_write t g buf

(* Move survivors from the head of [g] into a block written at the
   tail of the next generation, backfilling from subsequent head
   blocks to fill the outgoing buffer as full as possible (§2.2). *)
and forward t g s survivors =
  let next = t.gens.(g.g_index + 1) in
  if survivors = [] then free_slot g s
  else begin
    ensure_space t next ~extra:1;
    let s' = assign_slot t next in
    let buf = Block.create ~capacity:t.policy.Policy.block_payload in
    let moved = ref 0 in
    let origins = ref [] in
    (* Walk the generation's cell list from its head: the mandatory
       survivors of slot [s] come first, then backfill from younger
       blocks until the outgoing buffer is full. *)
    let stop = ref false in
    while not !stop do
      match Cell.Cell_list.head g.g_cells with
      | None -> stop := true
      | Some c ->
        let size = c.Cell.tracked.Cell.record.Log_record.size in
        let mandatory = c.Cell.slot = s in
        let in_open_buffer = Some c.Cell.slot = current_slot g in
        let durable =
          c.Cell.slot >= 0 && g.g_state.(c.Cell.slot) = Durable
        in
        if
          (not mandatory)
          && ((not t.policy.Policy.forward_backfill)
             || in_open_buffer || not durable)
        then stop := true
        else if not (Block.fits buf ~size) then begin
          if mandatory then
            (* impossible: one block's survivors cannot exceed a block *)
            assert false;
          stop := true
        end
        else begin
          if mandatory && g.g_state.(s) <> Durable then
            t.nondurable_head_reads <- t.nondurable_head_reads + 1;
          (* Under the forced-flush policy a committed update is
             flushed at the head instead of waiting for a scheduled
             flush — but its record is pinned and carried until the
             flush completes (a pinned record passing another head is
             not re-requested). *)
          (match Ledger.classify t.ledger c with
          | Ledger.Committed_data (oid, version)
            when t.policy.Policy.unflushed = Policy.Force_flush ->
            force_flush_data t c oid version;
            t.forced_head_flushes <- t.forced_head_flushes + 1
          | Ledger.Keep_active | Ledger.Committed_tx _ | Ledger.Committed_data _
          | Ledger.Flush_pinned ->
            ());
          match c.Cell.tracked.Cell.cell with
          | None -> ()  (* the eager ablation disposed it at request *)
          | Some _ ->
            if
              c.Cell.slot >= 0 && not (List.mem c.Cell.slot !origins)
            then origins := c.Cell.slot :: !origins;
            Cell.Cell_list.remove g.g_cells c;
            c.Cell.gen <- next.g_index;
            c.Cell.slot <- s';
            Cell.Cell_list.insert_tail next.g_cells c;
            Block.add buf ~size c.Cell.tracked;
            incr moved
        end
    done;
    if !moved = 0 then begin
      (* every candidate was flushed away: give the slot back *)
      next.g_tail <- s';
      next.g_occupied <- next.g_occupied - 1;
      set_occupancy next
    end
    else begin
      t.forwarded <- t.forwarded + !moved;
      emit t
        (El_obs.Event.Forward
           { from_gen = g.g_index; to_gen = next.g_index; records = !moved });
      next.g_blocks.(s') <- Some buf;
      (* Arm the origin guard: until this write is on the platter, no
         reissued write for an origin slot may start (see
         [issue_write]); the completion hook releases any parked
         writes in order. *)
      let guarded = !origins in
      List.iter
        (fun o -> g.g_fwd_guard.(o) <- g.g_fwd_guard.(o) + 1)
        guarded;
      let release _now =
        List.iter
          (fun o -> g.g_fwd_guard.(o) <- g.g_fwd_guard.(o) - 1)
          guarded;
        drain_parked t g
      in
      issue_write t next
        { b_slot = s'; b_block = buf; b_hooks = [ release ]; b_seq = -1 }
    end;
    free_slot g s
  end

(* Recirculate the survivors of the last generation's head block
   through the staging buffer (§2.2: records are removed one block at
   a time and written back at the tail). *)
and recirculate t g s survivors =
  let before = t.recirculated in
  List.iter
    (fun (tr : Cell.tracked) ->
      match tr.Cell.cell with
      | None -> ()
      | Some cell ->
        (match Ledger.classify t.ledger cell with
        | Ledger.Committed_data (oid, version)
          when t.policy.Policy.unflushed = Policy.Force_flush ->
          force_flush_data t cell oid version;
          t.forced_head_flushes <- t.forced_head_flushes + 1
        | Ledger.Keep_active | Ledger.Committed_tx _ | Ledger.Committed_data _
        | Ledger.Flush_pinned ->
          ());
        (* A pinned record recirculates like any survivor until its
           flush completes; the eager ablation just disposed it. *)
        (match tr.Cell.cell with
        | None -> ()
        | Some cell -> stage_survivor t g ~origin:s cell))
    survivors;
  if t.recirculated > before then
    emit t
      (El_obs.Event.Recirculate
         { gen = g.g_index; records = t.recirculated - before });
  free_slot g s

and advance_head t g =
  if g.g_occupied = 0 then
    overload "generation %d: empty but more space demanded" g.g_index;
  let s = g.g_head in
  (* If the head caught up with the buffer still being filled, the
     generation is far too small; seal it so it can be processed. *)
  if Some s = current_slot g then seal_current t g;
  if g.g_state.(s) <> Durable then
    t.nondurable_head_reads <- t.nondurable_head_reads + 1;
  let survivors = survivors_of g s in
  emit t
    (El_obs.Event.Head_advance
       { gen = g.g_index; slot = s; survivors = List.length survivors });
  if survivors = [] then free_slot g s
  else if not g.g_last then forward t g s survivors
  else if t.policy.Policy.recirculate then recirculate t g s survivors
  else begin
    (* Recirculation off: nothing can be kept past the last head.
       Active writers die (kill-on-no-space) and committed updates are
       forced out — but an acked update must stay durable until its
       flush completes, so such records (and the commit evidence
       anchoring them) ride the staging buffer instead of being
       dropped; the completion path retires them. *)
    List.iter
      (fun (tr : Cell.tracked) ->
        match tr.Cell.cell with
        | None -> ()
        | Some cell ->
          (match Ledger.classify t.ledger cell with
          | Ledger.Keep_active ->
            kill_or_overload t cell ~context:"last-generation head"
          | Ledger.Committed_data (oid, version) ->
            force_flush_data t cell oid version;
            note_forced t ~count_as:`Head_flush ~target:(Ids.Oid.to_int oid)
              ~committed_tx:false
          | Ledger.Committed_tx tid ->
            force_flush_tx t tid;
            note_forced t ~count_as:`Head_flush ~target:(Ids.Tid.to_int tid)
              ~committed_tx:true
          | Ledger.Flush_pinned -> ());
          (match tr.Cell.cell with
          | None -> ()  (* killed, or eager-disposed *)
          | Some cell -> stage_survivor t g ~origin:s cell))
      survivors;
    free_slot g s
  end

(* Make room for [extra] assignments beyond the paper's k-block gap.
   Each head advance frees one slot; in the last generation staging
   writes may take slots back, so progress is forced by evicting or
   killing once a full sweep has not created room. *)
and ensure_space t g ~extra =
  let target = t.policy.Policy.head_tail_gap + extra in
  if target > g.g_size then
    overload "generation %d: %d blocks cannot provide %d free" g.g_index
      g.g_size target;
  let budget = ref ((2 * g.g_size) + 4) in
  while free_slots g < target do
    advance_head t g;
    decr budget;
    if !budget <= 0 && free_slots g < target then begin
      relieve_pressure t g;
      budget := (2 * g.g_size) + 4
    end
  done

and relieve_pressure t g =
  (* Find a victim, scanning from the head: kill an active transaction
     (the paper's rule).  Committed records are no longer evictable —
     disposing an acked update before its flush lands is the DESIGN
     §11 durability hole — so a generation wedged on in-flight commits
     overloads instead of silently dropping durability.  The
     unsafe-eager ablation keeps the pre-fix eviction for the negative
     durability tests. *)
  let cells = Cell.Cell_list.to_list g.g_cells in
  let is_active c =
    Ledger.tx_state t.ledger (Ledger.writer_tid c) = Some `Active
  in
  match List.find_opt is_active cells with
  | Some c -> kill_tx t (Ledger.writer_tid c)
  | None when t.policy.Policy.unsafe_eager_dispose -> (
    let evictable c =
      match Ledger.classify t.ledger c with
      | Ledger.Committed_data _ | Ledger.Committed_tx _ -> true
      | Ledger.Keep_active | Ledger.Flush_pinned -> false
    in
    match List.find_opt evictable cells with
    | Some c -> (
      match Ledger.classify t.ledger c with
      | Ledger.Committed_data (oid, version) ->
        force_flush_data t c oid version;
        note_forced t ~count_as:`Eviction ~target:(Ids.Oid.to_int oid)
          ~committed_tx:false
      | Ledger.Committed_tx tid ->
        force_flush_tx t tid;
        note_forced t ~count_as:`Eviction ~target:(Ids.Tid.to_int tid)
          ~committed_tx:true
      | Ledger.Keep_active | Ledger.Flush_pinned -> assert false)
    | None ->
      overload
        "generation %d: full of records of in-flight commits; nothing can be \
         killed or evicted"
        g.g_index)
  | None ->
    overload
      "generation %d: nothing can be killed, and acked records cannot be \
       evicted before their flushes complete"
      g.g_index

(* ---- incoming records (tail of a chosen generation) ---- *)

let schedule_group_timeout t g buf =
  match t.policy.Policy.group_commit_timeout with
  | None -> ()
  | Some delay ->
    El_sim.Engine.schedule_after t.engine delay (fun () ->
        match g.g_current with
        | Some b when b.b_seq = buf.b_seq -> seal_current t g
        | Some _ | None -> ())

let current_buffer t g ~size =
  (match g.g_current with
  | Some buf when not (Block.fits buf.b_block ~size) -> seal_current t g
  | Some _ | None -> ());
  match g.g_current with
  | Some buf -> buf
  | None ->
    ensure_space t g ~extra:1;
    let s = assign_slot t g in
    let block = Block.create ~capacity:t.policy.Policy.block_payload in
    g.g_buffer_seq <- g.g_buffer_seq + 1;
    let buf = { b_slot = s; b_block = block; b_hooks = []; b_seq = g.g_buffer_seq } in
    g.g_blocks.(s) <- Some block;
    g.g_state.(s) <- Filling;
    g.g_current <- Some buf;
    schedule_group_timeout t g buf;
    buf

let append_incoming t ~gen_index (tracked : Cell.tracked) ~hook =
  let g = t.gens.(gen_index) in
  let size = tracked.Cell.record.Log_record.size in
  if size > t.policy.Policy.block_payload then
    overload "record of %d bytes exceeds the block payload" size;
  let buf = current_buffer t g ~size in
  Block.add buf.b_block ~size tracked;
  emit t
    (El_obs.Event.Append
       {
         gen = gen_index;
         slot = buf.b_slot;
         tid = Ids.Tid.to_int tracked.Cell.record.Log_record.tid;
         size;
       });
  (match tracked.Cell.cell with
  | Some cell ->
    cell.Cell.gen <- gen_index;
    cell.Cell.slot <- buf.b_slot;
    Cell.Cell_list.insert_tail g.g_cells cell
  | None -> ());
  match hook with
  | Some h -> buf.b_hooks <- h :: buf.b_hooks
  | None -> ()

(* ---- lifetime-hint placement (§6 extension) ---- *)

let placement_gen t ~expected_duration =
  match t.policy.Policy.placement with
  | Policy.Youngest -> 0
  | Policy.Lifetime_hint ->
    let elapsed = Time.to_sec_f (El_sim.Engine.now t.engine) in
    if elapsed < 5.0 then 0
    else begin
      let n = Array.length t.gens in
      let wanted = Time.to_sec_f expected_duration *. 1.2 in
      let rec pick i =
        if i >= n then n - 1
        else
          let g = t.gens.(i) in
          let rate =
            float_of_int (Log_channel.writes_started g.g_channel) /. elapsed
          in
          let retention =
            if rate <= 0.0 then infinity else float_of_int g.g_size /. rate
          in
          if retention >= wanted then i else pick (i + 1)
      in
      pick 0
    end

let gen_of_tid t tid =
  match Ids.Tid.Table.find_opt t.placements tid with
  | Some g -> g
  | None -> 0

(* ---- the logging interface ---- *)

let begin_tx t ~tid ~expected_duration =
  let timestamp = El_sim.Engine.now t.engine in
  let cell =
    Ledger.begin_tx t.ledger ~tid ~expected_duration ~timestamp
      ~size:t.tx_record_size
  in
  let gen_index = placement_gen t ~expected_duration in
  if gen_index > 0 then Ids.Tid.Table.replace t.placements tid gen_index;
  append_incoming t ~gen_index cell.Cell.tracked ~hook:None

let write_data t ~tid ~oid ~version ~size =
  let timestamp = El_sim.Engine.now t.engine in
  let cell = Ledger.write_data t.ledger ~tid ~oid ~version ~size ~timestamp in
  append_incoming t ~gen_index:(gen_of_tid t tid) cell.Cell.tracked ~hook:None

let request_commit t ~tid ~on_ack =
  let timestamp = El_sim.Engine.now t.engine in
  let cell =
    Ledger.request_commit t.ledger ~tid ~timestamp ~size:t.tx_record_size
  in
  let hook ack_time =
    let to_flush = Ledger.commit_durable t.ledger ~tid in
    List.iter
      (fun (oid, version) ->
        (match Ids.Oid.Table.find_opt t.committed_ref oid with
        | Some v when v >= version -> ()
        | Some _ | None -> Ids.Oid.Table.replace t.committed_ref oid version);
        Flush_array.request t.flush oid ~version)
      to_flush;
    t.acked <- t.acked + 1;
    (match t.obs with
    | None -> ()
    | Some o ->
      let latency = Time.sub ack_time timestamp in
      El_obs.Obs.emit o El_obs.Event.Manager
        (El_obs.Event.Commit_ack { tid = Ids.Tid.to_int tid; latency });
      El_obs.Histogram.observe
        (El_obs.Obs.histogram ~lowest:1000.0 ~buckets:24 o "commit.latency_us")
        (float_of_int (Time.to_us latency)));
    Ids.Tid.Table.remove t.placements tid;
    on_ack ack_time
  in
  append_incoming t ~gen_index:(gen_of_tid t tid) cell.Cell.tracked
    ~hook:(Some hook)

let request_abort t ~tid =
  let timestamp = El_sim.Engine.now t.engine in
  let gen_index = gen_of_tid t tid in
  let tracked =
    Ledger.request_abort t.ledger ~tid ~timestamp ~size:t.tx_record_size
  in
  Ids.Tid.Table.remove t.placements tid;
  emit t (El_obs.Event.Abort { tid = Ids.Tid.to_int tid });
  append_incoming t ~gen_index tracked ~hook:None

let drain t =
  (* Staged recirculation records need no write here: their durable
     copies still sit in their origin blocks. *)
  Array.iter (fun g -> seal_current t g) t.gens

(* ---- introspection ---- *)

type stats = {
  generation_sizes : int array;
  log_writes_per_gen : int array;
  total_log_writes : int;
  forwarded_records : int;
  recirculated_records : int;
  stage_writes : int;
  kills : int;
  evictions : int;
  forced_head_flushes : int;
  nondurable_head_reads : int;
  fwd_guard_parks : int;
  peak_occupancy_per_gen : int array;
  peak_memory_bytes : int;
  current_memory_bytes : int;
  lot_entries : int;
  ltt_entries : int;
  buffer_pool_overflows : int;
}

let stats t =
  let per_gen =
    Array.map (fun g -> Log_channel.writes_started g.g_channel) t.gens
  in
  {
    generation_sizes = Array.copy t.policy.Policy.generation_sizes;
    log_writes_per_gen = per_gen;
    total_log_writes = Array.fold_left ( + ) 0 per_gen;
    forwarded_records = t.forwarded;
    recirculated_records = t.recirculated;
    stage_writes = t.stage_writes;
    kills = t.kills;
    evictions = t.evictions;
    forced_head_flushes = t.forced_head_flushes;
    nondurable_head_reads = t.nondurable_head_reads;
    fwd_guard_parks = t.fwd_guard_parks;
    peak_occupancy_per_gen =
      Array.map (fun g -> El_metrics.Gauge.max_value g.g_occupancy) t.gens;
    peak_memory_bytes = Ledger.peak_memory_bytes t.ledger;
    current_memory_bytes = Ledger.memory_bytes t.ledger;
    lot_entries = Ledger.lot_size t.ledger;
    ltt_entries = Ledger.ltt_size t.ledger;
    buffer_pool_overflows =
      Array.fold_left
        (fun acc g -> acc + Log_channel.pool_overflows g.g_channel)
        0 t.gens;
  }

let ledger t = t.ledger
let policy t = t.policy
let occupied_blocks t = Array.map (fun g -> g.g_occupied) t.gens

let check_invariants t =
  Ledger.check_invariants t.ledger;
  Array.iter
    (fun g ->
      Cell.Cell_list.check_invariants g.g_cells;
      assert (g.g_occupied >= 0 && g.g_occupied <= g.g_size);
      assert (g.g_head >= 0 && g.g_head < g.g_size);
      assert (g.g_tail >= 0 && g.g_tail < g.g_size);
      List.iter
        (fun (c : Cell.t) ->
          assert (c.Cell.gen = g.g_index);
          assert (not (Cell.is_garbage c.Cell.tracked));
          if c.Cell.slot = Cell.staged_slot then
            (* staged records only exist in the last generation *)
            assert g.g_last
          else begin
            assert (c.Cell.slot >= 0 && c.Cell.slot < g.g_size);
            (* the record's block really holds it *)
            match g.g_blocks.(c.Cell.slot) with
            | Some block ->
              assert
                (List.exists
                   (fun (tr : Cell.tracked) -> tr == c.Cell.tracked)
                   (El_disk.Block.items block))
            | None -> assert false
          end)
        (Cell.Cell_list.to_list g.g_cells))
    t.gens

type gen_audit = {
  ga_index : int;
  ga_size : int;
  ga_head : int;
  ga_tail : int;
  ga_occupied : int;
  ga_last : bool;
  ga_occupancy_gauge : int;
  ga_cells : Cell.t list;
  ga_staged : int;
}

let audit_view t =
  Array.map
    (fun g ->
      let cells = Cell.Cell_list.to_list g.g_cells in
      {
        ga_index = g.g_index;
        ga_size = g.g_size;
        ga_head = g.g_head;
        ga_tail = g.g_tail;
        ga_occupied = g.g_occupied;
        ga_last = g.g_last;
        ga_occupancy_gauge = El_metrics.Gauge.value g.g_occupancy;
        ga_cells = cells;
        ga_staged =
          List.length
            (List.filter (fun (c : Cell.t) -> c.Cell.slot = Cell.staged_slot)
               cells);
      })
    t.gens

let durable_records t =
  let acc = ref [] in
  Array.iter
    (fun g ->
      Array.iter
        (function
          | None -> ()
          | Some block ->
            Block.iter
              (fun (tr : Cell.tracked) -> acc := tr.Cell.record :: !acc)
              block)
        g.g_durable)
    t.gens;
  !acc

type durable_block = {
  db_gen : int;
  db_slot : int;
  db_records : Log_record.t list;
  db_torn_prefix : int option;
}

let durable_blocks t =
  let acc = ref [] in
  Array.iter
    (fun g ->
      (* A torn verdict only materializes for the write actually in
         service at the crash: the channel is sequential, so that is
         the head of the in-flight queue.  Its slot's previous durable
         content is partially overwritten — the crash image holds the
         new block's prefix, with the suffix (at least the final
         record) destroyed. *)
      let torn =
        match Log_channel.in_service_torn g.g_channel with
        | None -> None
        | Some f -> (
          match Queue.peek_opt g.g_inflight with
          | None -> None
          | Some (slot, block) -> Some (slot, block, f))
      in
      let torn_slot =
        match torn with Some (s, _, _) -> Some s | None -> None
      in
      Array.iteri
        (fun s durable ->
          if Some s <> torn_slot then
            match durable with
            | None -> ()
            | Some block ->
              acc :=
                {
                  db_gen = g.g_index;
                  db_slot = s;
                  db_records = block_records block;
                  db_torn_prefix = None;
                }
                :: !acc)
        g.g_durable;
      match torn with
      | None -> ()
      | Some (s, block, f) ->
        let records = block_records block in
        let n = List.length records in
        let k = El_store.Log_store.torn_keep ~count:n f in
        acc :=
          {
            db_gen = g.g_index;
            db_slot = s;
            db_records = records;
            db_torn_prefix = Some k;
          }
          :: !acc)
    t.gens;
  !acc

let committed_reference t =
  Ids.Oid.Table.fold (fun oid v acc -> (oid, v) :: acc) t.committed_ref []

let acked_commits t = t.acked
let stable t = t.stable

(* Freeze the store at the crash instant: persist each channel's torn
   in-service write, then mark the position.  A later scan bounded by
   the mark replays exactly the image a crash now would leave — the
   write currently in service will still complete in simulation and
   append a full segment, but under a sequence number at or above the
   mark, so bounded scans never see it. *)
let persist_crash_mark t =
  match t.store with
  | None -> None
  | Some store ->
    Array.iter (fun g -> Log_channel.crash_persist g.g_channel) t.gens;
    Some (El_store.Log_store.position store)
