(** The ephemeral-logging log manager (§2).

    Manages the log as a chain of fixed-size generations, each a
    circular array of disk blocks.  New records enter the tail of
    generation 0 (or, with the lifetime-hint placement extension, a
    later generation) through block buffers written with group commit.
    When a generation needs room, its head advances: garbage records
    are discarded; survivors are forwarded to the next generation's
    tail — backfilling the outgoing buffer from subsequent head blocks,
    as §2.2 prescribes — or recirculated within the last generation via
    an in-memory staging buffer.  Committed updates are flushed
    continuously to the stable database version through the
    {!El_disk.Flush_array}; a flushed update's record becomes garbage.

    Transactions are killed only when a record cannot be kept: with
    recirculation off, when a still-active transaction's record
    reaches the head of the last generation; with recirculation on,
    when the last generation has no room to recirculate.  Kills are
    reported through the callback installed with {!set_on_kill}.

    If the configuration is so small that not even killing and
    evicting can make room (e.g. every surviving record belongs to a
    commit that is in flight), {!Log_overloaded} is raised; the
    minimum-space search treats this as an infeasible configuration. *)

open El_model

exception Log_overloaded of string

type t

val create :
  El_sim.Engine.t ->
  policy:Policy.t ->
  flush:El_disk.Flush_array.t ->
  stable:El_disk.Stable_db.t ->
  ?write_time:Time.t ->
  ?tx_record_size:int ->
  ?pooled:bool ->
  ?obs:El_obs.Obs.t ->
  ?fault:El_fault.Injector.t ->
  ?store:El_store.Log_store.t ->
  unit ->
  t
(** Builds the generations and takes ownership of the flush array's
    completion callback.  [write_time] defaults to the paper's 15 ms
    τ_Disk_Write; [tx_record_size] to 8 bytes.  [pooled] (default
    [true]) recycles the ledger's retired LOT/LTT entries through free
    lists — behaviour-identical, allocation-free in steady state.  With [obs], every
    append, seal, head advance, forward, recirculation, stage write,
    kill, eviction, commit ack and abort is traced, commit latencies
    feed the ["commit.latency_us"] histogram, and the per-generation
    log channels trace their block writes.  With [fault], generation
    [i]'s channel resolves every block write against the plan's
    [Log_gen i] schedule (see {!El_disk.Log_channel.create}).  With
    [store], every completed block write is appended to the durable
    log before its completion hooks (so group-commit acks imply
    on-backend durability); pass the same store to the flush array so
    stable installs are persisted too. *)

val set_on_kill : t -> (Ids.Tid.t -> unit) -> unit

(** {2 The logging interface (wired to a workload generator)} *)

val begin_tx : t -> tid:Ids.Tid.t -> expected_duration:Time.t -> unit
val write_data :
  t -> tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit

val request_commit : t -> tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit
(** Appends the COMMIT record; [on_ack] fires when its block write
    completes (group commit, Figure 3's t₄), after the commit has been
    applied to the LOT/LTT and the transaction's updates handed to the
    flusher. *)

val request_abort : t -> tid:Ids.Tid.t -> unit

val drain : t -> unit
(** Seals and writes every partially-filled buffer (end of run), so
    that pending group commits can acknowledge once the engine runs
    the remaining events. *)

(** {2 Introspection} *)

type stats = {
  generation_sizes : int array;
  log_writes_per_gen : int array;  (** completed block writes, per generation *)
  total_log_writes : int;
  forwarded_records : int;
  recirculated_records : int;
  stage_writes : int;  (** recirculation blocks written at the last tail *)
  kills : int;
  evictions : int;  (** committed records force-flushed to make room *)
  forced_head_flushes : int;
      (** committed updates flushed because their record reached a
          head (non-zero under the [Force_flush] policy, or with
          recirculation off) *)
  nondurable_head_reads : int;
      (** head blocks processed before their write completed — only
          possible in pathologically small configurations *)
  fwd_guard_parks : int;
      (** log writes held back because their slot was the origin of a
          forward write still in flight in the next generation: the
          origin's durable image is those survivors' only platter
          copy, so the overwrite must wait for the forward write to
          complete (visible under deep next-generation backlog) *)
  peak_occupancy_per_gen : int array;  (** blocks, including the gap *)
  peak_memory_bytes : int;  (** LOT+LTT high-water mark, §4 accounting *)
  current_memory_bytes : int;
  lot_entries : int;
  ltt_entries : int;
  buffer_pool_overflows : int;
}

val stats : t -> stats
val ledger : t -> Ledger.t
val policy : t -> Policy.t

val check_invariants : t -> unit
(** Deep structural audit, for tests: circular cell lists intact;
    every live cell within its generation's bounds (or staged in the
    last generation's recirculation buffer); occupancy within size;
    LOT/LTT cross-consistency (see {!Ledger.check_invariants}).
    Raises [Assert_failure] on violation. *)

val occupied_blocks : t -> int array
(** Current occupancy per generation. *)

(** A read-only snapshot of one generation's ring state, exposed for
    the external invariant auditor ({!El_check.Auditor}): slot
    accounting, occupancy gauge, and the cell list in head-to-tail
    order.  Mutating the listed cells is the auditor's responsibility
    to avoid. *)
type gen_audit = {
  ga_index : int;
  ga_size : int;
  ga_head : int;  (** oldest occupied slot *)
  ga_tail : int;  (** next slot to assign *)
  ga_occupied : int;
  ga_last : bool;
  ga_occupancy_gauge : int;  (** current value of the occupancy gauge *)
  ga_cells : Cell.t list;  (** head-to-tail cell list *)
  ga_staged : int;  (** cells staged for recirculation (last gen only) *)
}

val audit_view : t -> gen_audit array

(** {2 Recovery support} *)

val durable_records : t -> Log_record.t list
(** Every record in every block whose disk write has completed, across
    all generations — including stale copies in freed-but-not-yet
    -overwritten slots, exactly what a post-crash scan would read. *)

(** One on-disk block as a crash would find it.  [db_torn_prefix =
    Some k] marks the block whose write was in service with a torn
    verdict at the crash: only its first [k] records persisted intact
    ([k < length db_records]; the suffix — at least the final record —
    is destroyed, replacing whatever the slot durably held before). *)
type durable_block = {
  db_gen : int;
  db_slot : int;
  db_records : Log_record.t list;
  db_torn_prefix : int option;
}

val durable_blocks : t -> durable_block list
(** The block-granular view of {!durable_records}, for checksummed
    recovery: completed blocks verbatim, plus — per generation — the
    write in service at the crash when (and only when) its fault
    verdict was torn.  Reading this never draws fault randomness. *)

val committed_reference : t -> (Ids.Oid.t * int) list
(** Ground truth for recovery tests: for every object, the newest
    version installed by a transaction whose COMMIT record is durable. *)

val acked_commits : t -> int
val stable : t -> El_disk.Stable_db.t

val persist_crash_mark : t -> int option
(** Freezes the attached store at the crash instant: persists each
    generation channel's torn in-service write (valid prefix + corrupt
    tail, superseding the slot's old segment) and returns the store
    position.  A {!El_store.Log_store.scan} bounded by [~upto:mark]
    then reads exactly the image an in-simulation crash at this moment
    would leave on the backend.  [None] when no store is attached. *)
