(** The logged object table (LOT) and logged transaction table (LTT)
    of §2.3, with the disposal cascade that keeps them consistent.

    The LOT has an entry for every object with at least one
    non-garbage data record in the log; the LTT has an entry for every
    transaction in progress and for every committed transaction that
    still has non-garbage data records.  Both are hash tables with
    chaining, as the paper prescribes.

    The ledger performs the paper's bookkeeping rules:
    - a new tx record supersedes the previous one (one tx cell per
      transaction);
    - on commit, the transaction's updates supersede any earlier
      committed updates of the same objects, which become garbage;
    - when a data record becomes garbage its oid leaves the writer's
      LTT entry, and a committed LTT entry with an empty write set is
      itself disposed together with its tx record;
    - aborts (and kills) make all of a transaction's records garbage
      at once.

    The ledger does not know about generations or disk blocks; the
    caller supplies [remove_cell], invoked whenever a cell is disposed
    so the log manager can unlink it from its generation's cell list.

    Main-memory accounting follows §4: [bytes_per_tx] per LTT entry
    plus [bytes_per_object] per LOT entry, tracked as a high-water
    gauge. *)

open El_model

type t

val create :
  remove_cell:(Cell.t -> unit) ->
  ?bytes_per_tx:int ->
  ?bytes_per_object:int ->
  ?pooled:bool ->
  unit ->
  t
(** Defaults: the paper's 40 bytes per transaction and per object.
    [pooled] (default [true]) recycles retired LOT/LTT entries through
    free lists, so steady-state transaction churn allocates no new
    table entries; [false] allocates fresh records, for A/B allocation
    profiling.  Behaviour is identical either way. *)

val begin_tx :
  t ->
  tid:Ids.Tid.t ->
  expected_duration:Time.t ->
  timestamp:Time.t ->
  size:int ->
  Cell.t
(** Creates the LTT entry and the BEGIN record's tracked cell (caller
    assigns its location and list membership).  Raises
    [Invalid_argument] if the tid already has an entry. *)

val write_data :
  t ->
  tid:Ids.Tid.t ->
  oid:Ids.Oid.t ->
  version:int ->
  size:int ->
  timestamp:Time.t ->
  Cell.t
(** Creates (if needed) the oid's LOT entry, the data record and its
    cell, registers the cell as an uncommitted update and adds the oid
    to the transaction's write set.  An earlier uncommitted update of
    the same object by the same transaction becomes garbage.  Raises
    [Invalid_argument] if the tid is unknown or not active. *)

val request_commit :
  t -> tid:Ids.Tid.t -> timestamp:Time.t -> size:int -> Cell.t
(** Creates the COMMIT record's cell and supersedes the previous tx
    record (which becomes garbage).  The entry moves to
    [`Commit_pending]: the commit only takes effect at
    {!commit_durable}, once the record is safely on disk.  A
    commit-pending transaction can no longer be killed, but its
    records must still be kept. *)

val commit_durable : t -> tid:Ids.Tid.t -> (Ids.Oid.t * int) list
(** Called when the COMMIT record's block write completes.  Marks the
    entry [`Committed]; for every object in the write set, the update
    becomes the most recently committed one (any earlier committed
    update becomes garbage) and is returned as [(oid, version)] for
    the caller to schedule flushing.  If the write set is empty the
    whole entry is disposed immediately. *)

val request_abort : t -> tid:Ids.Tid.t -> timestamp:Time.t -> size:int -> Cell.tracked
(** All the transaction's records become garbage and its entry is
    removed; the returned tracked ABORT record is born garbage and is
    appended to the log purely as history. *)

val kill : t -> tid:Ids.Tid.t -> unit
(** Same cleanup as an abort, without writing any record (the paper's
    transaction kill). *)

val flush_complete : t -> oid:Ids.Oid.t -> version:int -> bool
(** The stable version now holds [version] of [oid].  If that is
    still the most recently committed version, its record becomes
    garbage (possibly cascading into LTT disposal) and the result is
    [true]; a stale completion (superseded meanwhile) returns
    [false]. *)

(** How the log manager should treat a surviving (non-garbage) record
    found at a generation head. *)
type survivor_class =
  | Keep_active  (** record of a still-active transaction *)
  | Committed_data of Ids.Oid.t * int
      (** most recently committed, unflushed update (oid, version) *)
  | Committed_tx of Ids.Tid.t
      (** tx record of a committed transaction with a non-empty write
          set (still anchoring unflushed updates) *)
  | Flush_pinned
      (** committed update with a forced flush already in flight: the
          record must be carried (never re-requested, never evicted)
          until the completion path disposes it *)

val classify : t -> Cell.t -> survivor_class

val pin_flush : t -> Cell.t -> unit
(** Marks the committed update as having a forced flush in flight.
    Until {!flush_complete} (or supersession by a newer commit)
    disposes the record, {!classify} reports it as {!Flush_pinned} and
    the log manager must keep carrying it: its log copy is the only
    durable home of an acked version while the transfer is in flight.
    Raises [Invalid_argument] if the cell is not a most recently
    committed update. *)

val dispose : t -> Cell.t -> unit
(** Forces a record to garbage, with full cascade.  Used by eviction
    policies (forced flushes) — normal transitions happen through the
    functions above. *)

val writer_tid : Cell.t -> Ids.Tid.t

val find_tx : t -> Ids.Tid.t -> Cell.ltt_entry option
val is_active : t -> Ids.Tid.t -> bool
val tx_state :
  t -> Ids.Tid.t -> [ `Active | `Commit_pending | `Committed ] option

(** [committed_cell t oid] is the most recently committed, unflushed
    update of an object, with its version — used by forced-flush
    eviction. *)
val committed_cell : t -> Ids.Oid.t -> (Cell.t * int) option
val oldest_active : t -> Cell.ltt_entry option
(** The active transaction with the earliest begin time — the firewall
    victim when a log fills. *)

val lot_size : t -> int
val ltt_size : t -> int
val memory_bytes : t -> int
val peak_memory_bytes : t -> int
val unflushed_objects : t -> int
(** LOT entries whose committed update awaits flushing. *)

val iter_lot : t -> (Cell.lot_entry -> unit) -> unit

val live_cells : t -> int
(** Number of live (non-garbage) cells reachable from the tables: one
    per LOT committed update, one per LOT uncommitted update, one per
    LTT tx record.  The invariant auditor compares this against the
    total membership of the generations' cell lists to prove that no
    cell is orphaned on either side. *)

val check_invariants : t -> unit
(** Table/cell cross-consistency checks for the test suite. *)
