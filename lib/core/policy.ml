open El_model

type unflushed_policy = Keep_in_log | Force_flush
type placement = Youngest | Lifetime_hint

type t = {
  generation_sizes : int array;
  recirculate : bool;
  unflushed : unflushed_policy;
  placement : placement;
  block_payload : int;
  head_tail_gap : int;
  buffers_per_generation : int;
  forward_backfill : bool;
  group_commit_timeout : Time.t option;
  unsafe_eager_dispose : bool;
}

let validate t =
  if Array.length t.generation_sizes = 0 then
    invalid_arg "Policy: no generations";
  Array.iteri
    (fun i size ->
      if size < t.head_tail_gap + 1 then
        invalid_arg
          (Printf.sprintf
             "Policy: generation %d has %d blocks; needs at least gap+1 = %d"
             i size (t.head_tail_gap + 1)))
    t.generation_sizes;
  if t.block_payload <= 0 then invalid_arg "Policy: non-positive payload";
  if t.head_tail_gap < 1 then invalid_arg "Policy: gap must be >= 1";
  if t.buffers_per_generation <= 0 then invalid_arg "Policy: no buffers"

let default ~generation_sizes =
  let t =
    {
      generation_sizes;
      recirculate = true;
      unflushed = Keep_in_log;
      placement = Youngest;
      block_payload = Params.block_payload;
      head_tail_gap = Params.head_tail_gap;
      buffers_per_generation = Params.buffers_per_generation;
      forward_backfill = true;
      group_commit_timeout = None;
      unsafe_eager_dispose = false;
    }
  in
  validate t;
  t

let num_generations t = Array.length t.generation_sizes
let total_blocks t = Array.fold_left ( + ) 0 t.generation_sizes
