open El_model
module Block = El_disk.Block
module Log_channel = El_disk.Log_channel

type buffer = {
  b_slot : int;
  b_block : Log_record.t Block.t;
  mutable b_hooks : (Time.t -> unit) list;
}

type tx = {
  tid : Ids.Tid.t;
  begun_at : Time.t;
  mutable record_slots : int list;
  mutable terminated : bool;
  (* intrusive links of the begun_at-ordered active list; the head is
     the firewall transaction, i.e. the kill victim *)
  mutable a_prev : tx option;
  mutable a_next : tx option;
  mutable a_linked : bool;
}

type checkpointing = { interval : Time.t; cost_blocks : int }

type t = {
  engine : El_sim.Engine.t;
  size : int;
  block_payload : int;
  gap : int;
  tx_record_size : int;
  bytes_per_tx : int;
  live : int array;  (* per-slot count of records from active transactions *)
  mutable head : int;
  mutable tail : int;
  mutable occupied : int;
  channel : Log_channel.t;
  mutable current : buffer option;
  txs : tx Ids.Tid.Table.t;
  mutable act_head : tx option;
  mutable act_tail : tx option;
  occupancy : El_metrics.Gauge.t;
  memory : El_metrics.Gauge.t;
  mutable kills : int;
  mutable on_kill : (Ids.Tid.t -> unit) option;
  checkpointing : checkpointing option;
  mutable awaiting_checkpoint : int list;  (* slots of committed records *)
  mutable checkpoints : int;
  mutable checkpoint_writes : int;
  obs : El_obs.Obs.t option;
}

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Manager kind

let current_slot t = match t.current with Some b -> Some b.b_slot | None -> None

(* Reclaim eagerly: every block up to the firewall (the head-most slot
   still holding an active transaction's record) is free space. *)
let reclaim t =
  let continue = ref true in
  while !continue && t.occupied > 0 do
    if t.live.(t.head) > 0 || Some t.head = current_slot t then
      continue := false
    else begin
      t.head <- (t.head + 1) mod t.size;
      t.occupied <- t.occupied - 1
    end
  done;
  El_metrics.Gauge.set t.occupancy t.occupied

let take_checkpoint t =
  match t.checkpointing with
  | None -> ()
  | Some c ->
    t.checkpoints <- t.checkpoints + 1;
    emit t (El_obs.Event.Checkpoint { blocks = c.cost_blocks });
    for _ = 1 to c.cost_blocks do
      t.checkpoint_writes <- t.checkpoint_writes + 1;
      Log_channel.write t.channel ~on_complete:(fun () -> ())
    done;
    List.iter
      (fun slot -> t.live.(slot) <- t.live.(slot) - 1)
      t.awaiting_checkpoint;
    t.awaiting_checkpoint <- [];
    reclaim t

let create engine ~size_blocks ?(block_payload = Params.block_payload)
    ?(head_tail_gap = Params.head_tail_gap)
    ?(buffers = Params.buffers_per_generation)
    ?(write_time = Params.tau_disk_write)
    ?(tx_record_size = Params.tx_record_size)
    ?(bytes_per_tx = Params.fw_bytes_per_tx) ?checkpointing ?obs ?fault ?store
    () =
  if size_blocks < head_tail_gap + 2 then
    invalid_arg "Fw_manager.create: log needs at least gap+2 blocks";
  (match checkpointing with
  | Some c ->
    if Time.(c.interval <= Time.zero) || c.cost_blocks < 0 then
      invalid_arg "Fw_manager.create: bad checkpointing parameters"
  | None -> ());
  let t = {
    engine;
    size = size_blocks;
    block_payload;
    gap = head_tail_gap;
    tx_record_size;
    bytes_per_tx;
    live = Array.make size_blocks 0;
    head = 0;
    tail = 0;
    occupied = 0;
    channel =
      Log_channel.create engine ~write_time ~buffer_pool:buffers ?obs
        ~label:0
        ?fault:(Option.map (fun inj -> El_fault.Injector.log_gen inj 0) fault)
        ?store ();
    current = None;
    txs = Ids.Tid.Table.create 1024;
    act_head = None;
    act_tail = None;
    occupancy = El_metrics.Gauge.create ~name:"FW occupancy" ();
    memory = El_metrics.Gauge.create ~name:"FW memory" ();
    kills = 0;
    on_kill = None;
    checkpointing;
    awaiting_checkpoint = [];
    checkpoints = 0;
    checkpoint_writes = 0;
    obs;
  }
  in
  (* Periodic checkpoints: each one writes its cost to the log and
     releases every record committed since the previous one. *)
  (match checkpointing with
  | None -> ()
  | Some c ->
    let rec tick () =
      El_sim.Engine.schedule_after engine c.interval (fun () ->
          take_checkpoint t;
          tick ())
    in
    tick ());
  t

let set_on_kill t f = t.on_kill <- Some f
let free_slots t = t.size - t.occupied

(* Begin timestamps come from the engine clock and are monotone, so
   this is an O(1) tail append; the backwards walk only runs if a
   caller could ever begin transactions out of order. *)
let active_append t tx =
  assert (not tx.a_linked);
  tx.a_linked <- true;
  let rec find_pred = function
    | None -> None
    | Some p ->
      if Time.(p.begun_at <= tx.begun_at) then Some p else find_pred p.a_prev
  in
  match find_pred t.act_tail with
  | None ->
    tx.a_prev <- None;
    tx.a_next <- t.act_head;
    (match t.act_head with
    | Some h -> h.a_prev <- Some tx
    | None -> t.act_tail <- Some tx);
    t.act_head <- Some tx
  | Some p ->
    tx.a_prev <- Some p;
    tx.a_next <- p.a_next;
    (match p.a_next with
    | Some n -> n.a_prev <- Some tx
    | None -> t.act_tail <- Some tx);
    p.a_next <- Some tx

let active_unlink t tx =
  if tx.a_linked then begin
    (match tx.a_prev with
    | Some p -> p.a_next <- tx.a_next
    | None -> t.act_head <- tx.a_next);
    (match tx.a_next with
    | Some n -> n.a_prev <- tx.a_prev
    | None -> t.act_tail <- tx.a_prev);
    tx.a_prev <- None;
    tx.a_next <- None;
    tx.a_linked <- false
  end

let drop_tx_records t tx =
  List.iter (fun slot -> t.live.(slot) <- t.live.(slot) - 1) tx.record_slots;
  tx.record_slots <- []

let terminate ?(committed = false) t tx =
  if not tx.terminated then begin
    tx.terminated <- true;
    (match (t.checkpointing, committed) with
    | Some _, true ->
      (* REDO information must survive until the next checkpoint. *)
      t.awaiting_checkpoint <- tx.record_slots @ t.awaiting_checkpoint;
      tx.record_slots <- []
    | (Some _ | None), _ -> drop_tx_records t tx);
    active_unlink t tx;
    Ids.Tid.Table.remove t.txs tx.tid;
    El_metrics.Gauge.add t.memory (-t.bytes_per_tx);
    reclaim t
  end

let kill_oldest_active t =
  (* O(1): the head of the active list (vs the full-table fold this
     replaced — that fold ran on every forced reclamation, making log
     pressure quadratic in the transaction population). *)
  match t.act_head with
  | None ->
    (* Only reachable if the gap invariant is impossible to satisfy. *)
    invalid_arg "Fw_manager: log full with no active transaction to kill"
  | Some tx ->
    terminate t tx;
    t.kills <- t.kills + 1;
    emit t (El_obs.Event.Kill { tid = Ids.Tid.to_int tx.tid });
    (match t.on_kill with Some f -> f tx.tid | None -> ())

let seal_current t =
  match t.current with
  | None -> ()
  | Some buf ->
    t.current <- None;
    emit t (El_obs.Event.Seal { gen = 0; slot = buf.b_slot });
    Log_channel.write
      ~payload:(fun () -> (buf.b_slot, Block.items buf.b_block))
      t.channel
      ~on_complete:(fun () ->
        let now = El_sim.Engine.now t.engine in
        List.iter (fun hook -> hook now) (List.rev buf.b_hooks);
        buf.b_hooks <- [];
        (* the buffer's slot may now be reclaimable *)
        reclaim t)

let ensure_space t =
  (* Invariant: at least [gap] free blocks after assigning one. *)
  while free_slots t < t.gap + 1 do
    reclaim t;
    if free_slots t < t.gap + 1 then kill_oldest_active t
  done

let assign_slot t =
  let s = t.tail in
  t.tail <- (s + 1) mod t.size;
  t.occupied <- t.occupied + 1;
  El_metrics.Gauge.set t.occupancy t.occupied;
  s

let current_buffer t ~size =
  (match t.current with
  | Some buf when not (Block.fits buf.b_block ~size) -> seal_current t
  | Some _ | None -> ());
  match t.current with
  | Some buf -> buf
  | None ->
    ensure_space t;
    let s = assign_slot t in
    let buf =
      { b_slot = s; b_block = Block.create ~capacity:t.block_payload; b_hooks = [] }
    in
    t.current <- Some buf;
    buf

let append t ~rec_ ~tracked_live ~hook =
  let tid = rec_.Log_record.tid in
  let size = rec_.Log_record.size in
  let buf = current_buffer t ~size in
  Block.add buf.b_block ~size rec_;
  emit t
    (El_obs.Event.Append
       { gen = 0; slot = buf.b_slot; tid = Ids.Tid.to_int tid; size });
  (if tracked_live then
     match Ids.Tid.Table.find_opt t.txs tid with
     | Some tx when not tx.terminated ->
       tx.record_slots <- buf.b_slot :: tx.record_slots;
       t.live.(buf.b_slot) <- t.live.(buf.b_slot) + 1
     | Some _ | None -> ());
  match hook with
  | Some h -> buf.b_hooks <- h :: buf.b_hooks
  | None -> ()

let begin_tx t ~tid ~expected_duration:_ =
  if Ids.Tid.Table.mem t.txs tid then
    invalid_arg "Fw_manager.begin_tx: duplicate tid";
  let tx =
    {
      tid;
      begun_at = El_sim.Engine.now t.engine;
      record_slots = [];
      terminated = false;
      a_prev = None;
      a_next = None;
      a_linked = false;
    }
  in
  Ids.Tid.Table.replace t.txs tid tx;
  active_append t tx;
  El_metrics.Gauge.add t.memory t.bytes_per_tx;
  append t
    ~rec_:
      (Log_record.begin_ ~tid ~size:t.tx_record_size
         ~timestamp:(El_sim.Engine.now t.engine))
    ~tracked_live:true ~hook:None

let write_data t ~tid ~oid ~version ~size =
  match Ids.Tid.Table.find_opt t.txs tid with
  | None -> invalid_arg "Fw_manager.write_data: unknown transaction"
  | Some tx when tx.terminated ->
    invalid_arg "Fw_manager.write_data: transaction terminated"
  | Some _ ->
    append t
      ~rec_:
        (Log_record.data ~tid ~oid ~version ~size
           ~timestamp:(El_sim.Engine.now t.engine))
      ~tracked_live:true ~hook:None

let request_commit t ~tid ~on_ack =
  match Ids.Tid.Table.find_opt t.txs tid with
  | None -> invalid_arg "Fw_manager.request_commit: unknown transaction"
  | Some tx ->
    (* Termination first: it releases the transaction's log space (the
       firewall moves past it) and — crucially — removes it from the
       kill candidates before the append below goes hunting for room.
       The COMMIT record itself is written but, with no checkpointing
       modelled (as in the paper), never retained. *)
    terminate ~committed:true t tx;
    let requested = El_sim.Engine.now t.engine in
    append t
      ~rec_:
        (Log_record.commit ~tid ~size:t.tx_record_size ~timestamp:requested)
      ~tracked_live:false
      ~hook:
        (Some
           (fun ack_time ->
             (match t.obs with
             | None -> ()
             | Some o ->
               let latency = Time.sub ack_time requested in
               El_obs.Obs.emit o El_obs.Event.Manager
                 (El_obs.Event.Commit_ack { tid = Ids.Tid.to_int tid; latency });
               El_obs.Histogram.observe
                 (El_obs.Obs.histogram ~lowest:1000.0 ~buckets:24 o
                    "commit.latency_us")
                 (float_of_int (Time.to_us latency)));
             on_ack ack_time))

let request_abort t ~tid =
  match Ids.Tid.Table.find_opt t.txs tid with
  | None -> invalid_arg "Fw_manager.request_abort: unknown transaction"
  | Some tx ->
    terminate t tx;
    emit t (El_obs.Event.Abort { tid = Ids.Tid.to_int tid });
    append t
      ~rec_:
        (Log_record.abort ~tid ~size:t.tx_record_size
           ~timestamp:(El_sim.Engine.now t.engine))
      ~tracked_live:false ~hook:None

let drain t = seal_current t

type ring_audit = {
  ra_size : int;
  ra_head : int;
  ra_tail : int;
  ra_occupied : int;
  ra_live_records : int;
}

let audit_view t =
  {
    ra_size = t.size;
    ra_head = t.head;
    ra_tail = t.tail;
    ra_occupied = t.occupied;
    ra_live_records = Array.fold_left ( + ) 0 t.live;
  }

let slot_occupied t s =
  t.occupied = t.size || (s - t.head + t.size) mod t.size < t.occupied

let check_invariants t =
  assert (t.occupied >= 0 && t.occupied <= t.size);
  assert (t.head >= 0 && t.head < t.size);
  assert (t.tail >= 0 && t.tail < t.size);
  assert (t.tail = (t.head + t.occupied) mod t.size);
  Array.iteri
    (fun s n ->
      assert (n >= 0);
      if n > 0 then assert (slot_occupied t s))
    t.live;
  (* every slot still pinning live records is accounted for by an
     active transaction or by a committed one awaiting a checkpoint *)
  let pinned = ref 0 in
  Ids.Tid.Table.iter
    (fun tid tx ->
      assert (Ids.Tid.equal tid tx.tid);
      assert (not tx.terminated);
      List.iter
        (fun s ->
          assert (s >= 0 && s < t.size);
          assert (slot_occupied t s);
          incr pinned)
        tx.record_slots)
    t.txs;
  List.iter
    (fun s ->
      assert (s >= 0 && s < t.size);
      assert (slot_occupied t s);
      incr pinned)
    t.awaiting_checkpoint;
  assert (!pinned = Array.fold_left ( + ) 0 t.live);
  assert
    (El_metrics.Gauge.value t.memory
    = t.bytes_per_tx * Ids.Tid.Table.length t.txs);
  (* the active list holds exactly the table's transactions, in
     non-decreasing begun_at order *)
  let walked = ref 0 in
  let prev_at = ref None in
  let cursor = ref t.act_head in
  let last = ref None in
  while !cursor <> None do
    (match !cursor with
    | None -> ()
    | Some tx ->
      incr walked;
      assert (!walked <= Ids.Tid.Table.length t.txs);
      assert (tx.a_linked && not tx.terminated);
      assert (
        match Ids.Tid.Table.find_opt t.txs tx.tid with
        | Some tx' -> tx' == tx
        | None -> false);
      (match !prev_at with
      | Some at -> assert (not Time.(tx.begun_at < at))
      | None -> ());
      prev_at := Some tx.begun_at;
      last := Some tx;
      cursor := tx.a_next)
  done;
  assert (!walked = Ids.Tid.Table.length t.txs);
  assert (
    match (t.act_tail, !last) with
    | None, None -> true
    | Some a, Some b -> a == b
    | _ -> false)

type stats = {
  size_blocks : int;
  log_writes : int;
  kills : int;
  peak_occupancy : int;
  peak_memory_bytes : int;
  current_memory_bytes : int;
  live_transactions : int;
  buffer_pool_overflows : int;
  checkpoints : int;
  checkpoint_writes : int;
}

let stats t =
  {
    size_blocks = t.size;
    log_writes = Log_channel.writes_started t.channel;
    kills = t.kills;
    peak_occupancy = El_metrics.Gauge.max_value t.occupancy;
    peak_memory_bytes = El_metrics.Gauge.max_value t.memory;
    current_memory_bytes = El_metrics.Gauge.value t.memory;
    live_transactions = Ids.Tid.Table.length t.txs;
    buffer_pool_overflows = Log_channel.pool_overflows t.channel;
    checkpoints = t.checkpoints;
    checkpoint_writes = t.checkpoint_writes;
  }
