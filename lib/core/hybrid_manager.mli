(** The EL–FW hybrid scheme sketched in §6 of the paper.

    Like EL, the log is a chain of FIFO queues; like FW, each queue
    maintains a firewall: the oldest non-garbage record in the queue.
    The log manager retains a pointer to only the {e oldest} log
    record of each transaction, instead of a cell per record.  When a
    transaction's oldest record reaches the head of queue i, {e all}
    of its records are regenerated (rewritten from main memory) at the
    tail of queue i+1 — the manager has no pointers with which to find
    and forward them individually.  In the last queue regeneration
    recirculates into the same queue; a transaction whose records
    cannot be regenerated for lack of space is killed.

    The trade-off the paper predicts, which the benches measure: main
    memory drops drastically for transactions with many updates (one
    anchor per transaction, at FW's 22 bytes, plus 40 bytes per
    committed-but-unflushed object for flush scheduling), at the price
    of higher log bandwidth (whole transactions are rewritten, live
    records included).

    The interface mirrors {!El_manager} so the same generator drives
    all three managers. *)

open El_model

type t

val create :
  El_sim.Engine.t ->
  queue_sizes:int array ->
  flush:El_disk.Flush_array.t ->
  stable:El_disk.Stable_db.t ->
  ?block_payload:int ->
  ?head_tail_gap:int ->
  ?buffers:int ->
  ?write_time:Time.t ->
  ?tx_record_size:int ->
  ?pooled:bool ->
  ?obs:El_obs.Obs.t ->
  ?fault:El_fault.Injector.t ->
  ?store:El_store.Log_store.t ->
  unit ->
  t
(** With [store], every sealed block of every queue is appended to the
    durable log before its completion hooks fire — regenerated records
    are rewritten with their original record values, so a store scan
    sees exactly what a post-crash read of the queues would.

    [pooled] (default [true]) controls whether retired record arenas
    are recycled through the manager's {!Arena} free list; [false]
    reproduces the seed's allocate-per-transaction behaviour (the
    identity-test baseline) with bit-identical simulation results. *)

val set_on_kill : t -> (Ids.Tid.t -> unit) -> unit

val begin_tx : t -> tid:Ids.Tid.t -> expected_duration:Time.t -> unit
val write_data :
  t -> tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit
val request_commit : t -> tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit
val request_abort : t -> tid:Ids.Tid.t -> unit
val drain : t -> unit

type stats = {
  queue_sizes : int array;
  log_writes_per_queue : int array;
  total_log_writes : int;
  regenerations : int;  (** transactions moved between queues *)
  regenerated_records : int;  (** records rewritten by those moves *)
  kills : int;
  peak_memory_bytes : int;
  current_memory_bytes : int;
  live_transactions : int;
  unflushed_objects : int;
}

val stats : t -> stats

val arena_stats : t -> Arena.stats
(** Allocation-discipline counters of the packed-record arena: fresh
    buffer allocations vs free-list reuses and the live-segment
    count. *)

(** Read-only snapshot of one queue's ring for the external invariant
    auditor. *)
type queue_audit = {
  qa_index : int;
  qa_size : int;
  qa_head : int;
  qa_tail : int;
  qa_occupied : int;
  qa_anchored : int;  (** transactions anchored across the queue's slots *)
}

val audit_view : t -> queue_audit array

val check_invariants : t -> unit
(** Deep structural audit, for tests: per-queue ring accounting,
    anchor counts matching the anchored lists and confined to occupied
    slots, every live transaction anchored exactly where its anchor
    claims, committed transactions retaining exactly their unflushed
    stubs, the committed-unflushed table consistent with its writers,
    and the memory gauge matching the §6 per-transaction and
    per-object byte accounting.  Raises [Assert_failure] on
    violation. *)
