open El_model
module Block = El_disk.Block
module Log_channel = El_disk.Log_channel
module Flush_array = El_disk.Flush_array
module Stable_db = El_disk.Stable_db

(* A remembered record: enough to regenerate it from main memory and
   to route flush completions.  [s_flushed] covers data stubs only. *)
type stub = {
  s_rec : Log_record.t;
  mutable s_flushed : bool;
}

(* The (oid, version) of a data stub; [None] for tx records. *)
let stub_data s =
  match s.s_rec.Log_record.kind with
  | Log_record.Data { oid; version } -> Some (oid, version)
  | Log_record.Begin | Log_record.Commit | Log_record.Abort -> None

type tx_state = Active | Commit_pending | Committed

type tx = {
  tid : Ids.Tid.t;
  begun_at : Time.t;
  mutable state : tx_state;
  mutable stubs_rev : stub list;  (* newest first: appends are O(1) *)
  mutable stubs_memo : stub list option;  (* oldest-first view, lazily rebuilt *)
  mutable anchor : (int * int) option;  (* queue index, slot *)
  (* intrusive links of the slot's anchored list (newest first);
     meaningful only while [anchor] is [Some _] *)
  mutable anc_prev : tx option;
  mutable anc_next : tx option;
  mutable unflushed_count : int;
}

(* The oldest-first stub list.  Records accumulate by prepending to
   [stubs_rev]; the ordered view is materialised at most once per
   append burst, so a long transaction pays O(1) amortised per record
   instead of the O(n²) of appending with [@]. *)
let stubs tx =
  match tx.stubs_memo with
  | Some l -> l
  | None ->
    let l = List.rev tx.stubs_rev in
    tx.stubs_memo <- Some l;
    l

let add_stub tx s =
  tx.stubs_rev <- s :: tx.stubs_rev;
  tx.stubs_memo <- None

type buffer = {
  b_slot : int;
  b_block : Log_record.t Block.t;
  mutable b_hooks : (Time.t -> unit) list;
}

type queue = {
  q_index : int;
  q_size : int;
  q_last : bool;
  anchors : int array;  (* anchored-transaction count per slot *)
  anchored : tx option array;
      (* head (newest) of each slot's intrusive anchored list; a head
         pointer plus the links in [tx] make both anchoring and
         {!drop_anchor} O(1), where the former [tx list] array paid an
         O(anchored-per-slot) rebuild on every unanchor *)
  mutable q_head : int;
  mutable q_tail : int;
  mutable q_occupied : int;
  q_channel : Log_channel.t;
  mutable q_current : buffer option;
}

type t = {
  engine : El_sim.Engine.t;
  flush : Flush_array.t;
  stable : Stable_db.t;
  block_payload : int;
  gap : int;
  tx_record_size : int;
  queues : queue array;
  txs : tx Ids.Tid.Table.t;
  unflushed : (Ids.Tid.t * int) Ids.Oid.Table.t;
      (* committed-unflushed objects: writer and version *)
  memory : El_metrics.Gauge.t;
  mutable regenerations : int;
  mutable regenerated_records : int;
  mutable kills : int;
  mutable on_kill : (Ids.Tid.t -> unit) option;
  obs : El_obs.Obs.t option;
}

let bytes_per_tx = Params.fw_bytes_per_tx
let bytes_per_object = Params.el_bytes_per_object

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Manager kind

let drop_anchor t tx =
  match tx.anchor with
  | None -> ()
  | Some (qi, slot) ->
    let q = t.queues.(qi) in
    q.anchors.(slot) <- q.anchors.(slot) - 1;
    (match tx.anc_prev with
    | Some p -> p.anc_next <- tx.anc_next
    | None -> q.anchored.(slot) <- tx.anc_next);
    (match tx.anc_next with
    | Some n -> n.anc_prev <- tx.anc_prev
    | None -> ());
    tx.anc_prev <- None;
    tx.anc_next <- None;
    tx.anchor <- None

(* Newest-first snapshot of a slot's anchored list, safe to iterate
   while anchors move. *)
let anchored_snapshot q slot =
  let rec walk acc = function
    | None -> List.rev acc
    | Some tx -> walk (tx :: acc) tx.anc_next
  in
  walk [] q.anchored.(slot)

let retire t tx =
  drop_anchor t tx;
  Ids.Tid.Table.remove t.txs tx.tid;
  El_metrics.Gauge.add t.memory (-bytes_per_tx)

let create engine ~queue_sizes ~flush ~stable
    ?(block_payload = Params.block_payload)
    ?(head_tail_gap = Params.head_tail_gap)
    ?(buffers = Params.buffers_per_generation)
    ?(write_time = Params.tau_disk_write)
    ?(tx_record_size = Params.tx_record_size) ?obs ?fault ?store () =
  if Array.length queue_sizes = 0 then
    invalid_arg "Hybrid_manager.create: no queues";
  Array.iter
    (fun s ->
      if s < head_tail_gap + 2 then
        invalid_arg "Hybrid_manager.create: queue needs at least gap+2 blocks")
    queue_sizes;
  let n = Array.length queue_sizes in
  let make_queue i =
    {
      q_index = i;
      q_size = queue_sizes.(i);
      q_last = i = n - 1;
      anchors = Array.make queue_sizes.(i) 0;
      anchored = Array.make queue_sizes.(i) None;
      q_head = 0;
      q_tail = 0;
      q_occupied = 0;
      q_channel =
        Log_channel.create engine ~write_time ~buffer_pool:buffers ?obs
          ~label:i
          ?fault:
            (Option.map (fun inj -> El_fault.Injector.log_gen inj i) fault)
          ?store ();
      q_current = None;
    }
  in
  let t =
    {
      engine;
      flush;
      stable;
      block_payload;
      gap = head_tail_gap;
      tx_record_size;
      queues = Array.init n make_queue;
      txs = Ids.Tid.Table.create 1024;
      unflushed = Ids.Oid.Table.create 1024;
      memory = El_metrics.Gauge.create ~name:"hybrid memory" ();
      regenerations = 0;
      regenerated_records = 0;
      kills = 0;
      on_kill = None;
      obs;
    }
  in
  Flush_array.set_on_flush flush (fun oid ~version ->
      Stable_db.apply stable oid ~version;
      match Ids.Oid.Table.find_opt t.unflushed oid with
      | Some (tid, v) when v = version -> (
        Ids.Oid.Table.remove t.unflushed oid;
        El_metrics.Gauge.add t.memory (-bytes_per_object);
        match Ids.Tid.Table.find_opt t.txs tid with
        | None -> ()
        | Some tx ->
          List.iter
            (fun s ->
              match stub_data s with
              | Some (o, v) when Ids.Oid.equal o oid && v = version ->
                if not s.s_flushed then begin
                  s.s_flushed <- true;
                  tx.unflushed_count <- tx.unflushed_count - 1
                end
              | Some _ | None -> ())
            (stubs tx);
          if tx.state = Committed && tx.unflushed_count = 0 then retire t tx)
      | Some _ | None -> ());
  t

let set_on_kill t f = t.on_kill <- Some f
let free_slots q = q.q_size - q.q_occupied

let current_slot q =
  match q.q_current with Some b -> Some b.b_slot | None -> None

let seal_current t q =
  match q.q_current with
  | None -> ()
  | Some buf ->
    q.q_current <- None;
    emit t (El_obs.Event.Seal { gen = q.q_index; slot = buf.b_slot });
    Log_channel.write
      ~payload:(fun () -> (buf.b_slot, Block.items buf.b_block))
      q.q_channel
      ~on_complete:(fun () ->
        let now = El_sim.Engine.now t.engine in
        List.iter (fun h -> h now) (List.rev buf.b_hooks);
        buf.b_hooks <- [])

let anchor_at t tx q slot =
  (match tx.anchor with
  | Some _ -> drop_anchor t tx
  | None -> ());
  tx.anchor <- Some (q.q_index, slot);
  q.anchors.(slot) <- q.anchors.(slot) + 1;
  tx.anc_next <- q.anchored.(slot);
  (match q.anchored.(slot) with
  | Some h -> h.anc_prev <- Some tx
  | None -> ());
  q.anchored.(slot) <- Some tx

let retained_stubs tx =
  match tx.state with
  | Active | Commit_pending -> stubs tx
  | Committed ->
    List.filter (fun s -> stub_data s = None || not s.s_flushed) (stubs tx)

(* ---- space management with regeneration ---- *)

(* Raised (and handled internally) when a self-recirculating
   regeneration finds the last queue completely full. *)
exception Regeneration_full

let rec assign_slot _t q =
  if free_slots q = 0 then
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: no free block" q.q_index));
  let s = q.q_tail in
  q.q_tail <- (s + 1) mod q.q_size;
  q.q_occupied <- q.q_occupied + 1;
  s

(* Append one record's bytes at the tail of [q]; anchors the
   transaction there when [anchor] is set (first record of a batch).
   In [self_regen] mode — the last queue rewriting into itself — no
   head advance may be triggered (it would re-enter the advance in
   progress), so a full ring raises {!Regeneration_full} and the
   caller kills or retires the transaction instead. *)
and append ?(self_regen = false) t q ~rec_ ~anchor_tx ~hook =
  let size = rec_.Log_record.size in
  if size > t.block_payload then
    raise (El_manager.Log_overloaded "record exceeds block payload");
  (match q.q_current with
  | Some buf when not (Block.fits buf.b_block ~size) -> seal_current t q
  | Some _ | None -> ());
  (match q.q_current with
  | Some _ -> ()
  | None ->
    if self_regen then begin
      if free_slots q = 0 then raise Regeneration_full
    end
    else ensure_space t q;
    let s = assign_slot t q in
    q.q_current <- Some { b_slot = s; b_block = Block.create ~capacity:t.block_payload; b_hooks = [] });
  match q.q_current with
  | None -> assert false
  | Some buf ->
    Block.add buf.b_block ~size rec_;
    emit t
      (El_obs.Event.Append
         {
           gen = q.q_index;
           slot = buf.b_slot;
           tid =
             (match anchor_tx with
             | Some tx -> Ids.Tid.to_int tx.tid
             | None -> -1);
           size;
         });
    (* the space hunt above may have killed or retired the very
       transaction being appended for; a dead transaction must not be
       re-anchored (its anchored entry would outlive its table entry) *)
    (match anchor_tx with
    | Some tx when tx.anchor = None && Ids.Tid.Table.mem t.txs tx.tid ->
      anchor_at t tx q buf.b_slot
    | Some _ | None -> ());
    (match hook with
    | Some h -> buf.b_hooks <- h :: buf.b_hooks
    | None -> ())

(* Advance the head one block.  Every transaction anchored there is
   unhooked and its retained records are rewritten at the tail of the
   next queue (§6: the manager has no pointers to the rest, so whole
   transactions are regenerated).  The slot is freed *before* the
   rewrites so that the appends — which may need space of their own,
   re-entering this function — always operate on a consistent ring. *)
and advance_head t q =
  if q.q_occupied = 0 then
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: empty but space demanded" q.q_index));
  let s = q.q_head in
  if Some s = current_slot q then seal_current t q;
  let victims = anchored_snapshot q s in
  emit t
    (El_obs.Event.Head_advance
       { gen = q.q_index; slot = s; survivors = List.length victims });
  List.iter (fun tx -> drop_anchor t tx) victims;
  assert (q.anchors.(s) = 0);
  q.q_head <- (s + 1) mod q.q_size;
  q.q_occupied <- q.q_occupied - 1;
  let destination =
    t.queues.(min (q.q_index + 1) (Array.length t.queues - 1))
  in
  let self_regen = destination == q in
  List.iter
    (fun tx ->
      (* the transaction may have retired or been re-anchored by the
         recursive pressure of an earlier victim's rewrite *)
      if Ids.Tid.Table.mem t.txs tx.tid && tx.anchor = None then begin
        let stubs = retained_stubs tx in
        t.regenerations <- t.regenerations + 1;
        let regen_before = t.regenerated_records in
        let note_regenerated () =
          if t.regenerated_records > regen_before then
            emit t
              (El_obs.Event.Regenerate
                 {
                   queue = destination.q_index;
                   records = t.regenerated_records - regen_before;
                 })
        in
        try
          List.iter
            (fun stub ->
              (* the recursive pressure of an earlier append may have
                 killed this very transaction; its remaining records
                 are garbage and must not be rewritten *)
              if Ids.Tid.Table.mem t.txs tx.tid then begin
                t.regenerated_records <- t.regenerated_records + 1;
                append ~self_regen t destination ~rec_:stub.s_rec
                  ~anchor_tx:(Some tx) ~hook:None
              end)
            stubs;
          note_regenerated ();
          (* a committed transaction with nothing retained retires *)
          if stubs = [] then retire t tx
        with Regeneration_full -> (
          note_regenerated ();
          (* The paper's rule: a record that cannot be recirculated for
             lack of space costs its transaction its life — but only an
             active transaction can actually be killed. *)
          match tx.state with
          | Active -> kill_tx t tx
          | Committed | Commit_pending ->
            (* A committing transaction can not be killed: reneging on
               a commit the client may already have been acked for (or
               is about to be) is not an option.  Its log records are
               sacrificed to the squeeze and it lives on in main memory
               alone — unanchored but in the table — until its commit
               hook hands the updates to the flusher and the last flush
               completion retires it. *)
            ())
      end)
    victims

and ensure_space t q =
  let target = t.gap + 1 in
  let budget = ref ((2 * q.q_size) + 4) in
  while free_slots q < target do
    advance_head t q;
    decr budget;
    if !budget <= 0 && free_slots q < target then begin
      kill_someone t q;
      budget := (2 * q.q_size) + 4
    end
  done

and kill_someone t q =
  (* The last queue regenerates into itself; when that makes no
     progress, kill the oldest active anchored transaction. *)
  let oldest = ref None in
  Array.iter
    (fun head ->
      let cursor = ref head in
      while !cursor <> None do
        (match !cursor with
        | None -> ()
        | Some tx ->
          (if tx.state = Active then
             match !oldest with
             | None -> oldest := Some tx
             | Some b ->
               if Time.(tx.begun_at < b.begun_at) then oldest := Some tx);
          cursor := tx.anc_next)
      done)
    q.anchored;
  match !oldest with
  | Some tx -> kill_tx t tx
  | None ->
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: nothing killable" q.q_index))

and kill_tx t tx =
  (* all records become garbage; unflushed bookkeeping is dropped *)
  List.iter
    (fun s ->
      match Option.map fst (stub_data s) with
      | Some oid when not s.s_flushed -> (
        match Ids.Oid.Table.find_opt t.unflushed oid with
        | Some (tid, _) when Ids.Tid.equal tid tx.tid ->
          Ids.Oid.Table.remove t.unflushed oid;
          El_metrics.Gauge.add t.memory (-bytes_per_object)
        | Some _ | None -> ())
      | Some _ | None -> ())
    (stubs tx);
  retire t tx;
  t.kills <- t.kills + 1;
  emit t (El_obs.Event.Kill { tid = Ids.Tid.to_int tx.tid });
  match t.on_kill with Some f -> f tx.tid | None -> ()

(* ---- logging interface ---- *)

let require_tx t tid =
  match Ids.Tid.Table.find_opt t.txs tid with
  | Some tx -> tx
  | None -> invalid_arg "Hybrid_manager: unknown transaction"

let begin_tx t ~tid ~expected_duration:_ =
  if Ids.Tid.Table.mem t.txs tid then
    invalid_arg "Hybrid_manager.begin_tx: duplicate tid";
  let begin_rec =
    Log_record.begin_ ~tid ~size:t.tx_record_size
      ~timestamp:(El_sim.Engine.now t.engine)
  in
  let tx =
    {
      tid;
      begun_at = El_sim.Engine.now t.engine;
      state = Active;
      stubs_rev = [ { s_rec = begin_rec; s_flushed = false } ];
      stubs_memo = None;
      anchor = None;
      anc_prev = None;
      anc_next = None;
      unflushed_count = 0;
    }
  in
  Ids.Tid.Table.replace t.txs tid tx;
  El_metrics.Gauge.add t.memory bytes_per_tx;
  append t t.queues.(0) ~rec_:begin_rec ~anchor_tx:(Some tx) ~hook:None

let write_data t ~tid ~oid ~version ~size =
  let tx = require_tx t tid in
  if tx.state <> Active then
    invalid_arg "Hybrid_manager.write_data: transaction not active";
  let rec_ =
    Log_record.data ~tid ~oid ~version ~size
      ~timestamp:(El_sim.Engine.now t.engine)
  in
  add_stub tx { s_rec = rec_; s_flushed = false };
  append t t.queues.(0) ~rec_ ~anchor_tx:(Some tx) ~hook:None

let request_commit t ~tid ~on_ack =
  let tx = require_tx t tid in
  if tx.state <> Active then
    invalid_arg "Hybrid_manager.request_commit: transaction not active";
  tx.state <- Commit_pending;
  let requested = El_sim.Engine.now t.engine in
  let commit_rec =
    Log_record.commit ~tid ~size:t.tx_record_size ~timestamp:requested
  in
  add_stub tx { s_rec = commit_rec; s_flushed = false };
  let hook at =
    if Ids.Tid.Table.mem t.txs tid then begin
      tx.state <- Committed;
      (match t.obs with
      | None -> ()
      | Some o ->
        let latency = Time.sub at requested in
        El_obs.Obs.emit o El_obs.Event.Manager
          (El_obs.Event.Commit_ack { tid = Ids.Tid.to_int tid; latency });
        El_obs.Histogram.observe
          (El_obs.Obs.histogram ~lowest:1000.0 ~buckets:24 o
             "commit.latency_us")
          (float_of_int (Time.to_us latency)));
      (* hand every update to the flusher; supersede older committed
         versions of the same objects *)
      List.iter
        (fun s ->
          match stub_data s with
          | None -> ()
          | Some (oid, version) ->
            (match Ids.Oid.Table.find_opt t.unflushed oid with
            | Some (old_tid, old_version) -> (
              Ids.Oid.Table.remove t.unflushed oid;
              El_metrics.Gauge.add t.memory (-bytes_per_object);
              match Ids.Tid.Table.find_opt t.txs old_tid with
              | Some old_tx when not (Ids.Tid.equal old_tid tid) ->
                List.iter
                  (fun os ->
                    match stub_data os with
                    | Some (o, v)
                      when Ids.Oid.equal o oid && v = old_version
                           && not os.s_flushed ->
                      os.s_flushed <- true;
                      old_tx.unflushed_count <- old_tx.unflushed_count - 1
                    | Some _ | None -> ())
                  (stubs old_tx);
                if old_tx.state = Committed && old_tx.unflushed_count = 0 then
                  retire t old_tx
              | Some self ->
                (* the transaction superseded its own earlier version
                   (a re-update of a held object under skewed drawing):
                   unhook the older stub, no retirement check — the
                   newer version is re-added just below *)
                List.iter
                  (fun os ->
                    match stub_data os with
                    | Some (o, v)
                      when Ids.Oid.equal o oid && v = old_version
                           && not os.s_flushed ->
                      os.s_flushed <- true;
                      self.unflushed_count <- self.unflushed_count - 1
                    | Some _ | None -> ())
                  (stubs self)
              | None -> ())
            | None -> ());
            Ids.Oid.Table.replace t.unflushed oid (tid, version);
            El_metrics.Gauge.add t.memory bytes_per_object;
            tx.unflushed_count <- tx.unflushed_count + 1;
            Flush_array.request t.flush oid ~version)
        (stubs tx);
      if tx.unflushed_count = 0 then retire t tx;
      (* only a commit that actually took effect is acknowledged *)
      on_ack at
    end
  in
  append t t.queues.(0) ~rec_:commit_rec ~anchor_tx:(Some tx)
    ~hook:(Some hook)

let request_abort t ~tid =
  let tx = require_tx t tid in
  if tx.state <> Active then
    invalid_arg "Hybrid_manager.request_abort: transaction not active";
  (* retire first so the space hunt below cannot pick this transaction
     as a kill victim after the generator already marked it aborted *)
  retire t tx;
  emit t (El_obs.Event.Abort { tid = Ids.Tid.to_int tid });
  append t t.queues.(0)
    ~rec_:
      (Log_record.abort ~tid ~size:t.tx_record_size
         ~timestamp:(El_sim.Engine.now t.engine))
    ~anchor_tx:None ~hook:None

let drain t = Array.iter (fun q -> seal_current t q) t.queues

type queue_audit = {
  qa_index : int;
  qa_size : int;
  qa_head : int;
  qa_tail : int;
  qa_occupied : int;
  qa_anchored : int;
}

let audit_view t =
  Array.map
    (fun q ->
      {
        qa_index = q.q_index;
        qa_size = q.q_size;
        qa_head = q.q_head;
        qa_tail = q.q_tail;
        qa_occupied = q.q_occupied;
        qa_anchored = Array.fold_left ( + ) 0 q.anchors;
      })
    t.queues

let check_invariants t =
  Array.iter
    (fun q ->
      assert (q.q_occupied >= 0 && q.q_occupied <= q.q_size);
      assert (q.q_head >= 0 && q.q_head < q.q_size);
      assert (q.q_tail >= 0 && q.q_tail < q.q_size);
      assert (q.q_tail = (q.q_head + q.q_occupied) mod q.q_size);
      let slot_occupied s =
        q.q_occupied = q.q_size
        || (s - q.q_head + q.q_size) mod q.q_size < q.q_occupied
      in
      Array.iteri
        (fun s _head ->
          let txs = anchored_snapshot q s in
          assert (q.anchors.(s) = List.length txs);
          if txs <> [] then assert (slot_occupied s);
          (* head has no predecessor; links are mutually consistent *)
          (match q.anchored.(s) with
          | Some h -> assert (h.anc_prev = None)
          | None -> ());
          List.iter
            (fun tx ->
              assert (tx.anchor = Some (q.q_index, s));
              assert (Ids.Tid.Table.mem t.txs tx.tid);
              (match tx.anc_next with
              | Some n -> assert (match n.anc_prev with Some p -> p == tx | None -> false)
              | None -> ()))
            txs)
        q.anchored)
    t.queues;
  (* every live transaction is anchored exactly where it claims *)
  let unflushed_total = ref 0 in
  Ids.Tid.Table.iter
    (fun tid tx ->
      assert (Ids.Tid.equal tid tx.tid);
      (match tx.anchor with
      | None ->
        (* only a committing transaction squeezed out of the last
           queue lives unanchored: its commit record rides to
           durability and, once the hook hands its updates to the
           flusher, it waits out the flushes in memory alone (see
           advance_head); an unanchored *active* transaction would be
           a leak *)
        assert (tx.state <> Active)
      | Some (qi, slot) ->
        assert (qi >= 0 && qi < Array.length t.queues);
        let q = t.queues.(qi) in
        assert (slot >= 0 && slot < q.q_size);
        assert (List.exists (fun x -> x == tx) (anchored_snapshot q slot)));
      assert (tx.unflushed_count >= 0);
      (match tx.state with
      | Active | Commit_pending -> assert (tx.unflushed_count = 0)
      | Committed ->
        (* a committed transaction with nothing left to flush retires *)
        assert (tx.unflushed_count > 0);
        let pending =
          List.length
            (List.filter
               (fun s -> stub_data s <> None && not s.s_flushed)
               (stubs tx))
        in
        assert (tx.unflushed_count = pending));
      unflushed_total := !unflushed_total + tx.unflushed_count)
    t.txs;
  assert (!unflushed_total = Ids.Oid.Table.length t.unflushed);
  Ids.Oid.Table.iter
    (fun oid (tid, version) ->
      match Ids.Tid.Table.find_opt t.txs tid with
      | None -> assert false  (* unflushed bookkeeping outlived its writer *)
      | Some tx ->
        assert (tx.state = Committed);
        assert
          (List.exists
             (fun s ->
               (match stub_data s with
               | Some (o, v) -> Ids.Oid.equal o oid && v = version
               | None -> false)
               && not s.s_flushed)
             (stubs tx)))
    t.unflushed;
  assert
    (El_metrics.Gauge.value t.memory
    = (bytes_per_tx * Ids.Tid.Table.length t.txs)
      + (bytes_per_object * Ids.Oid.Table.length t.unflushed))

type stats = {
  queue_sizes : int array;
  log_writes_per_queue : int array;
  total_log_writes : int;
  regenerations : int;
  regenerated_records : int;
  kills : int;
  peak_memory_bytes : int;
  current_memory_bytes : int;
  live_transactions : int;
  unflushed_objects : int;
}

let stats t =
  let per_queue =
    Array.map (fun q -> Log_channel.writes_started q.q_channel) t.queues
  in
  {
    queue_sizes = Array.map (fun q -> q.q_size) t.queues;
    log_writes_per_queue = per_queue;
    total_log_writes = Array.fold_left ( + ) 0 per_queue;
    regenerations = t.regenerations;
    regenerated_records = t.regenerated_records;
    kills = t.kills;
    peak_memory_bytes = El_metrics.Gauge.max_value t.memory;
    current_memory_bytes = El_metrics.Gauge.value t.memory;
    live_transactions = Ids.Tid.Table.length t.txs;
    unflushed_objects = Ids.Oid.Table.length t.unflushed;
  }
