open El_model
module Log_channel = El_disk.Log_channel
module Flush_array = El_disk.Flush_array
module Stable_db = El_disk.Stable_db

(* Remembered records live packed in an {!Arena.seg} — six unboxed
   ints per record — instead of a boxed stub list.  A 20k-update
   transaction is then one flat buffer the GC never scans, where the
   list representation retained ~26 heap words per record and made
   every major collection walk the whole live set.  The [flushed] flag
   (data records only) rides in the packed tag word. *)

type tx_state = Active | Commit_pending | Committed

type tx = {
  tid : Ids.Tid.t;
  begun_at : Time.t;
  mutable state : tx_state;
  seg : Arena.seg;  (* every record of the transaction, oldest first *)
  mutable anchor : (int * int) option;  (* queue index, slot *)
  (* intrusive links of the slot's anchored list (newest first);
     meaningful only while [anchor] is [Some _] *)
  mutable anc_prev : tx option;
  mutable anc_next : tx option;
  mutable unflushed_count : int;
}

(* An open (or sealed, unwritten) block does not copy its records: it
   references them where they already live — the writing transactions'
   segments — as (segment, start, count) spans, pinning each
   referenced segment until the block's disk write completes.
   Consecutive appends from the same transaction extend the last span
   in place, so a burst of writes costs no span bookkeeping beyond a
   counter bump.  Records with no backing segment (abort records: the
   transaction retires before its abort is logged) go into a lazily
   allocated block-local segment. *)
type buffer = {
  mutable b_slot : int;
  mutable b_segs : Arena.seg array;  (* span sources, first [b_n] in use *)
  mutable b_start : int array;
  mutable b_count : int array;
  mutable b_n : int;
  mutable b_local : Arena.seg option;  (* backing for spanless records *)
  mutable b_used : int;  (* payload bytes consumed *)
  mutable b_hooks : (Time.t -> unit) list;
}

type queue = {
  q_index : int;
  q_size : int;
  q_last : bool;
  anchors : int array;  (* anchored-transaction count per slot *)
  anchored : tx option array;
      (* head (newest) of each slot's intrusive anchored list; a head
         pointer plus the links in [tx] make both anchoring and
         {!drop_anchor} O(1), where the former [tx list] array paid an
         O(anchored-per-slot) rebuild on every unanchor *)
  mutable q_head : int;
  mutable q_tail : int;
  mutable q_occupied : int;
  q_channel : Log_channel.t;
  mutable q_current : buffer option;
  mutable q_spare : buffer list;
      (* completed blocks' bookkeeping (span arrays and all) recycled
         for the next seal, so steady-state sealing allocates only its
         closures *)
}

type t = {
  engine : El_sim.Engine.t;
  flush : Flush_array.t;
  stable : Stable_db.t;
  block_payload : int;
  gap : int;
  tx_record_size : int;
  arena : Arena.t;
  queues : queue array;
  txs : tx Ids.Tid.Table.t;
  mutable memo : tx option;
      (* last transaction served by {!require_tx}: the generators and
         benches burst many writes per transaction, so one pointer
         saves a hashtable probe per record.  Invalidated on retire. *)
  unflushed : (Ids.Tid.t * int) Ids.Oid.Table.t;
      (* committed-unflushed objects: writer and version *)
  memory : El_metrics.Gauge.t;
  mutable regenerations : int;
  mutable regenerated_records : int;
  mutable kills : int;
  mutable locals_live : int;  (* block-local segments not yet released *)
  mutable on_kill : (Ids.Tid.t -> unit) option;
  obs : El_obs.Obs.t option;
}

let bytes_per_tx = Params.fw_bytes_per_tx
let bytes_per_object = Params.el_bytes_per_object

let emit t kind =
  match t.obs with
  | None -> ()
  | Some o -> El_obs.Obs.emit o El_obs.Event.Manager kind

(* Mark every not-yet-flushed packed data record matching
   (oid, version); returns how many were marked. *)
let mark_flushed_matching seg ~oid ~version =
  let n = ref 0 in
  let len = Arena.length seg in
  for i = 0 to len - 1 do
    if
      Arena.is_data seg i
      && Arena.oid seg i = oid
      && Arena.version seg i = version
      && not (Arena.flushed seg i)
    then begin
      Arena.set_flushed seg i;
      incr n
    end
  done;
  !n

let drop_anchor t tx =
  match tx.anchor with
  | None -> ()
  | Some (qi, slot) ->
    let q = t.queues.(qi) in
    q.anchors.(slot) <- q.anchors.(slot) - 1;
    (match tx.anc_prev with
    | Some p -> p.anc_next <- tx.anc_next
    | None -> q.anchored.(slot) <- tx.anc_next);
    (match tx.anc_next with
    | Some n -> n.anc_prev <- tx.anc_prev
    | None -> ());
    tx.anc_prev <- None;
    tx.anc_next <- None;
    tx.anchor <- None

(* Newest-first snapshot of a slot's anchored list, safe to iterate
   while anchors move. *)
let anchored_snapshot q slot =
  let rec walk acc = function
    | None -> List.rev acc
    | Some tx -> walk (tx :: acc) tx.anc_next
  in
  walk [] q.anchored.(slot)

let retire t tx =
  drop_anchor t tx;
  (match t.memo with
  | Some m when m == tx -> t.memo <- None
  | Some _ | None -> ());
  Ids.Tid.Table.remove t.txs tx.tid;
  El_metrics.Gauge.add t.memory (-bytes_per_tx);
  (* The packed records go back to the arena pool; the table removal
     above makes the transaction unreachable from every completion
     path first, so no late hook can alias the recycled buffer. *)
  Arena.release tx.seg

let create engine ~queue_sizes ~flush ~stable
    ?(block_payload = Params.block_payload)
    ?(head_tail_gap = Params.head_tail_gap)
    ?(buffers = Params.buffers_per_generation)
    ?(write_time = Params.tau_disk_write)
    ?(tx_record_size = Params.tx_record_size) ?(pooled = true) ?obs ?fault
    ?store () =
  if Array.length queue_sizes = 0 then
    invalid_arg "Hybrid_manager.create: no queues";
  if tx_record_size <= 0 then invalid_arg "Log_record: non-positive size";
  Array.iter
    (fun s ->
      if s < head_tail_gap + 2 then
        invalid_arg "Hybrid_manager.create: queue needs at least gap+2 blocks")
    queue_sizes;
  let n = Array.length queue_sizes in
  let make_queue i =
    {
      q_index = i;
      q_size = queue_sizes.(i);
      q_last = i = n - 1;
      anchors = Array.make queue_sizes.(i) 0;
      anchored = Array.make queue_sizes.(i) None;
      q_head = 0;
      q_tail = 0;
      q_occupied = 0;
      q_channel =
        Log_channel.create engine ~write_time ~buffer_pool:buffers ?obs
          ~label:i
          ?fault:
            (Option.map (fun inj -> El_fault.Injector.log_gen inj i) fault)
          ?store ();
      q_current = None;
      q_spare = [];
    }
  in
  let t =
    {
      engine;
      flush;
      stable;
      block_payload;
      gap = head_tail_gap;
      tx_record_size;
      arena = Arena.create ~pooled ();
      queues = Array.init n make_queue;
      txs = Ids.Tid.Table.create 1024;
      memo = None;
      unflushed = Ids.Oid.Table.create 1024;
      memory = El_metrics.Gauge.create ~name:"hybrid memory" ();
      regenerations = 0;
      regenerated_records = 0;
      kills = 0;
      locals_live = 0;
      on_kill = None;
      obs;
    }
  in
  Flush_array.set_on_flush flush (fun oid ~version ->
      Stable_db.apply stable oid ~version;
      match Ids.Oid.Table.find_opt t.unflushed oid with
      | Some (tid, v) when v = version -> (
        Ids.Oid.Table.remove t.unflushed oid;
        El_metrics.Gauge.add t.memory (-bytes_per_object);
        match Ids.Tid.Table.find_opt t.txs tid with
        | None -> ()
        | Some tx ->
          let marked =
            mark_flushed_matching tx.seg ~oid:(Ids.Oid.to_int oid) ~version
          in
          tx.unflushed_count <- tx.unflushed_count - marked;
          if tx.state = Committed && tx.unflushed_count = 0 then retire t tx)
      | Some _ | None -> ());
  t

let set_on_kill t f = t.on_kill <- Some f
let free_slots q = q.q_size - q.q_occupied

(* Reference one packed record in the open block: extend the last
   span when it is the next record of the same segment, otherwise
   open (and pin) a new span. *)
let span_add buf seg idx =
  let n = buf.b_n in
  if
    n > 0
    && Array.unsafe_get buf.b_segs (n - 1) == seg
    && Array.unsafe_get buf.b_start (n - 1)
       + Array.unsafe_get buf.b_count (n - 1)
       = idx
  then
    Array.unsafe_set buf.b_count (n - 1)
      (Array.unsafe_get buf.b_count (n - 1) + 1)
  else begin
    if n = Array.length buf.b_segs then begin
      let cap = if n = 0 then 4 else n * 2 in
      let segs = Array.make cap seg in
      let start = Array.make cap 0 in
      let count = Array.make cap 0 in
      Array.blit buf.b_segs 0 segs 0 n;
      Array.blit buf.b_start 0 start 0 n;
      Array.blit buf.b_count 0 count 0 n;
      buf.b_segs <- segs;
      buf.b_start <- start;
      buf.b_count <- count
    end;
    Arena.pin seg;
    buf.b_segs.(n) <- seg;
    buf.b_start.(n) <- idx;
    buf.b_count.(n) <- 1;
    buf.b_n <- n + 1
  end

(* Materialize the block's records, oldest first, reading through the
   spans.  Pins guarantee the segments are still readable even when
   their transactions have retired since sealing. *)
let buffer_records buf =
  let acc = ref [] in
  for s = buf.b_n - 1 downto 0 do
    let seg = Array.unsafe_get buf.b_segs s in
    let st = Array.unsafe_get buf.b_start s in
    for i = st + Array.unsafe_get buf.b_count s - 1 downto st do
      acc := Arena.record_at seg i :: !acc
    done
  done;
  !acc

let seal_current t q =
  match q.q_current with
  | None -> ()
  | Some buf ->
    q.q_current <- None;
    (match t.obs with
    | None -> ()
    | Some o ->
      El_obs.Obs.emit o El_obs.Event.Manager
        (El_obs.Event.Seal { gen = q.q_index; slot = buf.b_slot }));
    Log_channel.write
      (* materializes boxed records only when a store pulls them for
         serialization; a store-less run never calls the thunk *)
      ~payload:(fun () -> (buf.b_slot, buffer_records buf))
      q.q_channel
      ~on_complete:(fun () ->
        let now = El_sim.Engine.now t.engine in
        List.iter (fun h -> h now) (List.rev buf.b_hooks);
        buf.b_hooks <- [];
        for s = 0 to buf.b_n - 1 do
          Arena.unpin (Array.unsafe_get buf.b_segs s)
        done;
        buf.b_n <- 0;
        (match buf.b_local with
        | Some l ->
          Arena.release l;
          t.locals_live <- t.locals_live - 1;
          buf.b_local <- None
        | None -> ());
        q.q_spare <- buf :: q.q_spare)

let anchor_at t tx q slot =
  (match tx.anchor with
  | Some _ -> drop_anchor t tx
  | None -> ());
  tx.anchor <- Some (q.q_index, slot);
  q.anchors.(slot) <- q.anchors.(slot) + 1;
  tx.anc_next <- q.anchored.(slot);
  (match q.anchored.(slot) with
  | Some h -> h.anc_prev <- Some tx
  | None -> ());
  q.anchored.(slot) <- Some tx

(* ---- space management with regeneration ---- *)

(* Raised (and handled internally) when a self-recirculating
   regeneration finds the last queue completely full. *)
exception Regeneration_full

(* Where an appended record's bytes live.  [From_seg] spans the
   record where the transaction already packed it; [Raw_abort] is the
   one record with no backing segment — the transaction retires
   before its abort is logged — and goes into the block-local
   segment. *)
type src = From_seg of Arena.seg * int | Raw_abort of { rtid : int; ts : int }

let rec assign_slot _t q =
  if free_slots q = 0 then
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: no free block" q.q_index));
  let s = q.q_tail in
  q.q_tail <- (s + 1) mod q.q_size;
  q.q_occupied <- q.q_occupied + 1;
  s

(* Append one packed record at the tail of [q]; anchors the
   transaction there when [anchor] is set (first record of a batch).
   In [self_regen] mode — the last queue rewriting into itself — no
   head advance may be triggered (it would re-enter the advance in
   progress), so a full ring raises {!Regeneration_full} and the
   caller kills or retires the transaction instead. *)
and append ?(self_regen = false) t q ~size ~src ~anchor_tx ~hook =
  if size > t.block_payload then
    raise (El_manager.Log_overloaded "record exceeds block payload");
  (match q.q_current with
  | Some buf when size > t.block_payload - buf.b_used -> seal_current t q
  | Some _ | None -> ());
  (match q.q_current with
  | Some _ -> ()
  | None ->
    if self_regen then begin
      if free_slots q = 0 then raise Regeneration_full
    end
    else ensure_space t q;
    let s = assign_slot t q in
    q.q_current <-
      (match q.q_spare with
      | buf :: rest ->
        q.q_spare <- rest;
        buf.b_slot <- s;
        buf.b_used <- 0;
        Some buf
      | [] ->
        Some
          {
            b_slot = s;
            b_segs = [||];
            b_start = [||];
            b_count = [||];
            b_n = 0;
            b_local = None;
            b_used = 0;
            b_hooks = [];
          }));
  match q.q_current with
  | None -> assert false
  | Some buf ->
    (match src with
    | From_seg (seg, idx) -> span_add buf seg idx
    | Raw_abort { rtid; ts } ->
      let l =
        match buf.b_local with
        | Some l -> l
        | None ->
          let l = Arena.alloc t.arena in
          t.locals_live <- t.locals_live + 1;
          buf.b_local <- Some l;
          l
      in
      Arena.push l ~tag:Arena.tag_abort ~tid:rtid ~oid:(-1) ~version:0 ~size
        ~ts;
      span_add buf l (Arena.length l - 1));
    buf.b_used <- buf.b_used + size;
    (match t.obs with
    | None -> ()
    | Some o ->
      El_obs.Obs.emit o El_obs.Event.Manager
        (El_obs.Event.Append
           {
             gen = q.q_index;
             slot = buf.b_slot;
             tid =
               (match anchor_tx with
               | Some tx -> Ids.Tid.to_int tx.tid
               | None -> -1);
             size;
           }));
    (* the space hunt above may have killed or retired the very
       transaction being appended for; a dead transaction must not be
       re-anchored (its anchored entry would outlive its table entry) *)
    (match anchor_tx with
    | Some ({ anchor = None; _ } as tx) when Ids.Tid.Table.mem t.txs tx.tid ->
      anchor_at t tx q buf.b_slot
    | Some _ | None -> ());
    (match hook with
    | Some h -> buf.b_hooks <- h :: buf.b_hooks
    | None -> ())

(* Advance the head one block.  Every transaction anchored there is
   unhooked and its retained records are rewritten at the tail of the
   next queue (§6: the manager has no pointers to the rest, so whole
   transactions are regenerated).  The slot is freed *before* the
   rewrites so that the appends — which may need space of their own,
   re-entering this function — always operate on a consistent ring. *)
and advance_head t q =
  if q.q_occupied = 0 then
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: empty but space demanded" q.q_index));
  let s = q.q_head in
  (match q.q_current with
  | Some buf when buf.b_slot = s -> seal_current t q
  | Some _ | None -> ());
  let victims = anchored_snapshot q s in
  (match t.obs with
  | None -> ()
  | Some o ->
    El_obs.Obs.emit o El_obs.Event.Manager
      (El_obs.Event.Head_advance
         { gen = q.q_index; slot = s; survivors = List.length victims }));
  List.iter (fun tx -> drop_anchor t tx) victims;
  assert (q.anchors.(s) = 0);
  q.q_head <- (s + 1) mod q.q_size;
  q.q_occupied <- q.q_occupied - 1;
  let destination =
    t.queues.(min (q.q_index + 1) (Array.length t.queues - 1))
  in
  let self_regen = destination == q in
  List.iter
    (fun tx ->
      (* the transaction may have retired or been re-anchored by the
         recursive pressure of an earlier victim's rewrite *)
      if
        (match tx.anchor with None -> true | Some _ -> false)
        && Ids.Tid.Table.mem t.txs tx.tid
      then begin
        let seg = tx.seg in
        let n = Arena.length seg in
        let state = tx.state in
        (* which packed records survive: everything for a live
           transaction, the unflushed remainder for a committed one *)
        let retained i =
          match state with
          | Active | Commit_pending -> true
          | Committed ->
            (not (Arena.is_data seg i)) || not (Arena.flushed seg i)
        in
        let retained_count = ref 0 in
        for i = 0 to n - 1 do
          if retained i then incr retained_count
        done;
        t.regenerations <- t.regenerations + 1;
        let regen_before = t.regenerated_records in
        let note_regenerated () =
          if t.regenerated_records > regen_before then
            emit t
              (El_obs.Event.Regenerate
                 {
                   queue = destination.q_index;
                   records = t.regenerated_records - regen_before;
                 })
        in
        try
          for i = 0 to n - 1 do
            (* the recursive pressure of an earlier append may have
               killed this very transaction; its remaining records are
               garbage (and its segment recycled) and must not be read
               or rewritten *)
            if Ids.Tid.Table.mem t.txs tx.tid && retained i then begin
              t.regenerated_records <- t.regenerated_records + 1;
              append ~self_regen t destination ~size:(Arena.size seg i)
                ~src:(From_seg (seg, i)) ~anchor_tx:(Some tx) ~hook:None
            end
          done;
          note_regenerated ();
          (* a committed transaction with nothing retained retires *)
          if !retained_count = 0 then retire t tx
        with Regeneration_full -> (
          note_regenerated ();
          (* The paper's rule: a record that cannot be recirculated for
             lack of space costs its transaction its life — but only an
             active transaction can actually be killed. *)
          match tx.state with
          | Active -> kill_tx t tx
          | Committed | Commit_pending ->
            (* A committing transaction can not be killed: reneging on
               a commit the client may already have been acked for (or
               is about to be) is not an option.  Its log records are
               sacrificed to the squeeze and it lives on in main memory
               alone — unanchored but in the table — until its commit
               hook hands the updates to the flusher and the last flush
               completion retires it. *)
            ())
      end)
    victims

and ensure_space t q =
  let target = t.gap + 1 in
  let budget = ref ((2 * q.q_size) + 4) in
  while free_slots q < target do
    advance_head t q;
    decr budget;
    if !budget <= 0 && free_slots q < target then begin
      kill_someone t q;
      budget := (2 * q.q_size) + 4
    end
  done

and kill_someone t q =
  (* The last queue regenerates into itself; when that makes no
     progress, kill the oldest active anchored transaction. *)
  let oldest = ref None in
  Array.iter
    (fun head ->
      let cursor = ref head in
      while !cursor <> None do
        (match !cursor with
        | None -> ()
        | Some tx ->
          (if tx.state = Active then
             match !oldest with
             | None -> oldest := Some tx
             | Some b ->
               if Time.(tx.begun_at < b.begun_at) then oldest := Some tx);
          cursor := tx.anc_next)
      done)
    q.anchored;
  match !oldest with
  | Some tx -> kill_tx t tx
  | None ->
    raise
      (El_manager.Log_overloaded
         (Printf.sprintf "hybrid queue %d: nothing killable" q.q_index))

and kill_tx t tx =
  (* all records become garbage; unflushed bookkeeping is dropped *)
  let seg = tx.seg in
  let n = Arena.length seg in
  for i = 0 to n - 1 do
    if Arena.is_data seg i && not (Arena.flushed seg i) then begin
      let oid = Ids.Oid.of_int (Arena.oid seg i) in
      match Ids.Oid.Table.find_opt t.unflushed oid with
      | Some (tid, _) when Ids.Tid.equal tid tx.tid ->
        Ids.Oid.Table.remove t.unflushed oid;
        El_metrics.Gauge.add t.memory (-bytes_per_object)
      | Some _ | None -> ()
    end
  done;
  retire t tx;
  t.kills <- t.kills + 1;
  emit t (El_obs.Event.Kill { tid = Ids.Tid.to_int tx.tid });
  match t.on_kill with Some f -> f tx.tid | None -> ()

(* ---- logging interface ---- *)

let require_tx t tid =
  match t.memo with
  | Some tx when Ids.Tid.to_int tx.tid = Ids.Tid.to_int tid -> tx
  | Some _ | None -> (
    match Ids.Tid.Table.find_opt t.txs tid with
    | Some tx ->
      t.memo <- Some tx;
      tx
    | None -> invalid_arg "Hybrid_manager: unknown transaction")

let begin_tx t ~tid ~expected_duration:_ =
  if Ids.Tid.Table.mem t.txs tid then
    invalid_arg "Hybrid_manager.begin_tx: duplicate tid";
  let now = El_sim.Engine.now t.engine in
  let ts = Time.to_us now in
  let rtid = Ids.Tid.to_int tid in
  let seg = Arena.alloc t.arena in
  Arena.push seg ~tag:Arena.tag_begin ~tid:rtid ~oid:(-1) ~version:0
    ~size:t.tx_record_size ~ts;
  let tx =
    {
      tid;
      begun_at = now;
      state = Active;
      seg;
      anchor = None;
      anc_prev = None;
      anc_next = None;
      unflushed_count = 0;
    }
  in
  Ids.Tid.Table.replace t.txs tid tx;
  El_metrics.Gauge.add t.memory bytes_per_tx;
  append t t.queues.(0) ~size:t.tx_record_size ~src:(From_seg (seg, 0))
    ~anchor_tx:(Some tx) ~hook:None

let write_data t ~tid ~oid ~version ~size =
  let tx = require_tx t tid in
  (match tx.state with
  | Active -> ()
  | Commit_pending | Committed ->
    invalid_arg "Hybrid_manager.write_data: transaction not active");
  if size <= 0 then invalid_arg "Log_record: non-positive size";
  if version < 0 then invalid_arg "Log_record.data: negative version";
  let o = Ids.Oid.to_int oid in
  let rtid = Ids.Tid.to_int tid in
  let ts = Time.to_us (El_sim.Engine.now t.engine) in
  let seg = tx.seg in
  Arena.push seg ~tag:Arena.tag_data ~tid:rtid ~oid:o ~version ~size ~ts;
  let idx = Arena.length seg - 1 in
  let q = Array.unsafe_get t.queues 0 in
  (* Fast path for the common shape — room in the open block, the
     transaction already anchored, nobody observing: just extend the
     block's span over the record pushed above.  Anything else takes
     the full append (seal, space hunt, anchoring, events). *)
  match q.q_current with
  | Some buf
    when size <= t.block_payload - buf.b_used
         && (match tx.anchor with Some _ -> true | None -> false)
         && match t.obs with None -> true | Some _ -> false ->
    span_add buf seg idx;
    buf.b_used <- buf.b_used + size
  | Some _ | None ->
    append t q ~size ~src:(From_seg (seg, idx)) ~anchor_tx:(Some tx)
      ~hook:None

let request_commit t ~tid ~on_ack =
  let tx = require_tx t tid in
  if tx.state <> Active then
    invalid_arg "Hybrid_manager.request_commit: transaction not active";
  tx.state <- Commit_pending;
  let requested = El_sim.Engine.now t.engine in
  let ts = Time.to_us requested in
  let rtid = Ids.Tid.to_int tid in
  Arena.push tx.seg ~tag:Arena.tag_commit ~tid:rtid ~oid:(-1) ~version:0
    ~size:t.tx_record_size ~ts;
  let commit_idx = Arena.length tx.seg - 1 in
  let hook at =
    if Ids.Tid.Table.mem t.txs tid then begin
      tx.state <- Committed;
      (match t.obs with
      | None -> ()
      | Some o ->
        let latency = Time.sub at requested in
        El_obs.Obs.emit o El_obs.Event.Manager
          (El_obs.Event.Commit_ack { tid = Ids.Tid.to_int tid; latency });
        El_obs.Histogram.observe
          (El_obs.Obs.histogram ~lowest:1000.0 ~buckets:24 o
             "commit.latency_us")
          (float_of_int (Time.to_us latency)));
      (* hand every update to the flusher; supersede older committed
         versions of the same objects *)
      let seg = tx.seg in
      let n = Arena.length seg in
      for i = 0 to n - 1 do
        if Arena.is_data seg i then begin
          let o = Arena.oid seg i in
          let version = Arena.version seg i in
          let oid = Ids.Oid.of_int o in
          (match Ids.Oid.Table.find_opt t.unflushed oid with
          | Some (old_tid, old_version) -> (
            Ids.Oid.Table.remove t.unflushed oid;
            El_metrics.Gauge.add t.memory (-bytes_per_object);
            match Ids.Tid.Table.find_opt t.txs old_tid with
            | Some old_tx when not (Ids.Tid.equal old_tid tid) ->
              let marked =
                mark_flushed_matching old_tx.seg ~oid:o ~version:old_version
              in
              old_tx.unflushed_count <- old_tx.unflushed_count - marked;
              if old_tx.state = Committed && old_tx.unflushed_count = 0 then
                retire t old_tx
            | Some self ->
              (* the transaction superseded its own earlier version
                 (a re-update of a held object under skewed drawing):
                 unhook the older record, no retirement check — the
                 newer version is re-added just below *)
              let marked =
                mark_flushed_matching self.seg ~oid:o ~version:old_version
              in
              self.unflushed_count <- self.unflushed_count - marked
            | None -> ())
          | None -> ());
          Ids.Oid.Table.replace t.unflushed oid (tid, version);
          El_metrics.Gauge.add t.memory bytes_per_object;
          tx.unflushed_count <- tx.unflushed_count + 1;
          Flush_array.request t.flush oid ~version
        end
      done;
      if tx.unflushed_count = 0 then retire t tx;
      (* only a commit that actually took effect is acknowledged *)
      on_ack at
    end
  in
  append t t.queues.(0) ~size:t.tx_record_size
    ~src:(From_seg (tx.seg, commit_idx)) ~anchor_tx:(Some tx)
    ~hook:(Some hook)

let request_abort t ~tid =
  let tx = require_tx t tid in
  if tx.state <> Active then
    invalid_arg "Hybrid_manager.request_abort: transaction not active";
  (* retire first so the space hunt below cannot pick this transaction
     as a kill victim after the generator already marked it aborted *)
  retire t tx;
  emit t (El_obs.Event.Abort { tid = Ids.Tid.to_int tid });
  append t t.queues.(0) ~size:t.tx_record_size
    ~src:
      (Raw_abort
         {
           rtid = Ids.Tid.to_int tid;
           ts = Time.to_us (El_sim.Engine.now t.engine);
         })
    ~anchor_tx:None ~hook:None

let drain t = Array.iter (fun q -> seal_current t q) t.queues

type queue_audit = {
  qa_index : int;
  qa_size : int;
  qa_head : int;
  qa_tail : int;
  qa_occupied : int;
  qa_anchored : int;
}

let audit_view t =
  Array.map
    (fun q ->
      {
        qa_index = q.q_index;
        qa_size = q.q_size;
        qa_head = q.q_head;
        qa_tail = q.q_tail;
        qa_occupied = q.q_occupied;
        qa_anchored = Array.fold_left ( + ) 0 q.anchors;
      })
    t.queues

let check_invariants t =
  Array.iter
    (fun q ->
      assert (q.q_occupied >= 0 && q.q_occupied <= q.q_size);
      assert (q.q_head >= 0 && q.q_head < q.q_size);
      assert (q.q_tail >= 0 && q.q_tail < q.q_size);
      assert (q.q_tail = (q.q_head + q.q_occupied) mod q.q_size);
      let slot_occupied s =
        q.q_occupied = q.q_size
        || (s - q.q_head + q.q_size) mod q.q_size < q.q_occupied
      in
      Array.iteri
        (fun s _head ->
          let txs = anchored_snapshot q s in
          assert (q.anchors.(s) = List.length txs);
          if txs <> [] then assert (slot_occupied s);
          (* head has no predecessor; links are mutually consistent *)
          (match q.anchored.(s) with
          | Some h -> assert (h.anc_prev = None)
          | None -> ());
          List.iter
            (fun tx ->
              assert (tx.anchor = Some (q.q_index, s));
              assert (Ids.Tid.Table.mem t.txs tx.tid);
              (match tx.anc_next with
              | Some n -> assert (match n.anc_prev with Some p -> p == tx | None -> false)
              | None -> ()))
            txs)
        q.anchored)
    t.queues;
  (* every live transaction is anchored exactly where it claims *)
  let unflushed_total = ref 0 in
  Ids.Tid.Table.iter
    (fun tid tx ->
      assert (Ids.Tid.equal tid tx.tid);
      assert (Arena.live tx.seg);
      (match tx.anchor with
      | None ->
        (* only a committing transaction squeezed out of the last
           queue lives unanchored: its commit record rides to
           durability and, once the hook hands its updates to the
           flusher, it waits out the flushes in memory alone (see
           advance_head); an unanchored *active* transaction would be
           a leak *)
        assert (tx.state <> Active)
      | Some (qi, slot) ->
        assert (qi >= 0 && qi < Array.length t.queues);
        let q = t.queues.(qi) in
        assert (slot >= 0 && slot < q.q_size);
        assert (List.exists (fun x -> x == tx) (anchored_snapshot q slot)));
      assert (tx.unflushed_count >= 0);
      (match tx.state with
      | Active | Commit_pending -> assert (tx.unflushed_count = 0)
      | Committed ->
        (* a committed transaction with nothing left to flush retires *)
        assert (tx.unflushed_count > 0);
        let pending = ref 0 in
        let n = Arena.length tx.seg in
        for i = 0 to n - 1 do
          if Arena.is_data tx.seg i && not (Arena.flushed tx.seg i) then
            incr pending
        done;
        assert (tx.unflushed_count = !pending));
      unflushed_total := !unflushed_total + tx.unflushed_count)
    t.txs;
  assert (!unflushed_total = Ids.Oid.Table.length t.unflushed);
  Ids.Oid.Table.iter
    (fun oid (tid, version) ->
      match Ids.Tid.Table.find_opt t.txs tid with
      | None -> assert false  (* unflushed bookkeeping outlived its writer *)
      | Some tx ->
        assert (tx.state = Committed);
        let found = ref false in
        let seg = tx.seg in
        let n = Arena.length seg in
        for i = 0 to n - 1 do
          if
            Arena.is_data seg i
            && Arena.oid seg i = Ids.Oid.to_int oid
            && Arena.version seg i = version
            && not (Arena.flushed seg i)
          then found := true
        done;
        assert !found)
    t.unflushed;
  (* pooling bookkeeping: blocks reference transaction segments by
     span, so the only live segments are one per live transaction
     plus the block-local segments (abort records) whose blocks have
     not completed *)
  let live_segs = (Arena.stats t.arena).Arena.outstanding in
  assert (t.locals_live >= 0);
  assert (live_segs = Ids.Tid.Table.length t.txs + t.locals_live);
  assert
    (El_metrics.Gauge.value t.memory
    = (bytes_per_tx * Ids.Tid.Table.length t.txs)
      + (bytes_per_object * Ids.Oid.Table.length t.unflushed))

type stats = {
  queue_sizes : int array;
  log_writes_per_queue : int array;
  total_log_writes : int;
  regenerations : int;
  regenerated_records : int;
  kills : int;
  peak_memory_bytes : int;
  current_memory_bytes : int;
  live_transactions : int;
  unflushed_objects : int;
}

let stats t =
  let per_queue =
    Array.map (fun q -> Log_channel.writes_started q.q_channel) t.queues
  in
  {
    queue_sizes = Array.map (fun q -> q.q_size) t.queues;
    log_writes_per_queue = per_queue;
    total_log_writes = Array.fold_left ( + ) 0 per_queue;
    regenerations = t.regenerations;
    regenerated_records = t.regenerated_records;
    kills = t.kills;
    peak_memory_bytes = El_metrics.Gauge.max_value t.memory;
    current_memory_bytes = El_metrics.Gauge.value t.memory;
    live_transactions = Ids.Tid.Table.length t.txs;
    unflushed_objects = Ids.Oid.Table.length t.unflushed;
  }

let arena_stats t = Arena.stats t.arena
