(** A block-storage backend: the minimal device interface both the
    simulated-memory store and a real disk image satisfy (the FSCQ
    [read_disk]/[write_disk] shape).

    Three operations — positional write, positional read, and a write
    barrier — are enough for an append-only checksummed log.  The
    {!mem} backend keeps the bytes in a growable in-process buffer and
    its barrier is a no-op: process memory {e is} the platter of the
    simulation, so a completed [pwrite] is already "durable" in the
    sense the simulated clock assigns to a completed block write.  The
    {!file} backend does positional I/O on a real file descriptor and
    its barrier is [fsync], so a completed barrier survives a SIGKILL
    (and, on a real disk with write caching disabled, a power cut).

    Both backends count their operations identically, so a run's
    pwrite/barrier totals identify the I/O the store performed no
    matter which backend absorbed it. *)

type t

(** Operation tap, for observability counters. *)
type op =
  | Pwrite of int  (** bytes written *)
  | Pread of int  (** bytes read *)
  | Barrier

type counters = {
  mutable pwrites : int;
  mutable preads : int;
  mutable barriers : int;
  mutable bytes_written : int;
}

val mem : unit -> t
(** A fresh in-memory backend (name ["mem"]). *)

val file : path:string -> t
(** Opens (or creates) [path] read-write without truncating (name
    ["file"]).  Raises [Unix.Unix_error] on failure. *)

val name : t -> string
(** ["mem"] or ["file"] — the backend identity recorded in results,
    bench sections and the serve [stat] line. *)

val path : t -> string option
(** The image path, for {!file} backends. *)

val pwrite : t -> off:int -> ?pos:int -> ?len:int -> bytes -> unit
(** Writes the buffer slice [[pos, pos + len)] (default: the whole
    buffer) at byte offset [off], extending the store as needed — the
    slice form lets the segment writer hand over a prefix of its
    reused scratch buffer without copying.  Raises [Invalid_argument]
    on a negative offset, an out-of-bounds slice, or a closed
    backend. *)

val pread : t -> off:int -> len:int -> bytes
(** Reads up to [len] bytes at [off]; the result is short when the
    store ends first. *)

val barrier : t -> unit
(** Write barrier: on {!file}, [fsync]; on {!mem}, a counted no-op
    (see the module preamble for why that is the honest mapping). *)

val size : t -> int

val truncate : t -> len:int -> unit
(** Shrinks the store to [len] bytes — [len:0] resets a fresh image;
    an attach truncates away a torn tail before appending over it. *)

val close : t -> unit
(** Closes a {!file} backend's descriptor (idempotent); frees a
    {!mem} backend's buffer. *)

val counters : t -> counters

val set_tap : t -> (op -> unit) option -> unit
(** Installs (or clears) an observer called after every counted
    operation — the hook the experiment harness uses to mirror the
    counters into {!El_obs} metrics. *)

(** {2 Crash injection inside the write path}

    A write fault models a power cut in the middle of a [pwrite]: a
    byte prefix of the torn write reaches the platter and the device
    is dead from that instant on — later pwrites, barriers and
    truncates are silently lost (the process issuing them no longer
    has a disk), while reads and [size] keep working so a test can
    examine the surviving image post mortem.  Because the segment
    store issues exactly one [pwrite] per segment, tearing a pwrite
    tears a {e segment} — the valid prefix can end inside the header
    or between entries, not merely at a whole-segment boundary. *)

val set_write_fault :
  ?on_tear:(unit -> unit) -> t -> after_pwrites:int -> keep_bytes:int -> unit
(** Arms the fault: the next [after_pwrites] pwrites complete
    normally, then the following one persists only its first
    [keep_bytes] bytes (clamped to the write length) and kills the
    device.  [on_tear] fires once, after the prefix has landed — the
    test hook that captures the simulation state at the tear
    instant.  Counters record only bytes that actually landed. *)

val dead : t -> bool
(** True once an armed fault has fired. *)

val revive : t -> unit
(** Clears {!dead} — the reboot, after which the image can be
    re-attached and written again. *)
