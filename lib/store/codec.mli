(** On-image wire format for the durable log.

    A store image is a sequence of {e segments}.  Each segment is a
    52-byte header followed by [count] fixed-size 49-byte entries:

    {v
    header  := "ELSG" epoch gen slot seq count cksum      (52 bytes)
    entry   := tag tid oid version size timestamp cksum   (49 bytes)
    v}

    All integers are little-endian int64.  Both checksums are FNV-1a-64
    over the preceding bytes of their struct, so a torn tail — a
    partial header or a partially written entry — is detected at the
    first bad checksum and everything after it is discarded, mirroring
    the simulator's per-record torn-write model. *)

type entry =
  | Record of El_model.Log_record.t
  | Stable of { oid : El_model.Ids.Oid.t; version : int }
      (** A stable-DB install fact, persisted by the flush array when a
          transfer completes.  Lives in segments with [gen = -1]. *)

val entry_bytes : int
(** 49 *)

val header_bytes : int
(** 52 *)

type header = {
  h_epoch : int;  (** attach generation — bumps on every [attach] *)
  h_gen : int;  (** log generation, or [-1] for stable segments *)
  h_slot : int;
  h_seq : int;  (** global append sequence number, strictly increasing *)
  h_count : int;  (** entries following the header *)
}

val fnv1a_64 : Bytes.t -> pos:int -> len:int -> int64

val encode_entry_into : ?corrupt:bool -> Bytes.t -> pos:int -> entry -> unit
(** Encodes the entry in place at [pos] — the store's segment writer
    packs a whole segment into one reused scratch buffer this way, so
    steady-state appends allocate nothing.  [corrupt] flips a checksum
    bit — used by tests and by torn-suffix persistence to write a
    deliberately invalid entry. *)

val encode_entry : ?corrupt:bool -> entry -> Bytes.t
(** Fresh-buffer convenience over {!encode_entry_into}. *)

val decode_entry : Bytes.t -> pos:int -> entry option
(** [None] when the checksum fails or the tag is unknown; raises
    [Invalid_argument] if fewer than {!entry_bytes} bytes remain. *)

val encode_header_into : Bytes.t -> pos:int -> header -> unit

val encode_header : header -> Bytes.t

val decode_header : Bytes.t -> pos:int -> header option
(** [None] on a bad magic or checksum; raises [Invalid_argument] if
    fewer than {!header_bytes} bytes remain. *)
