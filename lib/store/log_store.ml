open El_model

type sync_mode = Immediate | Grouped | Manual

type t = {
  backend : Backend.t;
  mutable epoch : int;
  mutable seq : int;
  mutable write_off : int;
  mutable scratch : Bytes.t;  (* reused segment-encoding buffer *)
  mutable sync_mode : sync_mode;
  mutable dirty : bool;  (* bytes written since the last barrier *)
  mutable sync_scheduled : bool;  (* a group sync is already queued *)
  mutable group_syncs : int;  (* barriers issued by {!sync} *)
}

let backend t = t.backend
let epoch t = t.epoch
let position t = t.seq

let torn_keep ~count f =
  if count = 0 then 0 else min (count - 1) (int_of_float (f *. float_of_int count))

let segment_bytes count = Codec.header_bytes + (count * Codec.entry_bytes)

let sync_mode t = t.sync_mode
let dirty t = t.dirty
let group_syncs t = t.group_syncs

let sync t =
  if t.dirty then begin
    Backend.barrier t.backend;
    t.dirty <- false;
    t.group_syncs <- t.group_syncs + 1
  end

let set_sync_mode t mode =
  (* entering Immediate must not strand written-but-unsynced bytes *)
  if mode = Immediate then sync t;
  t.sync_mode <- mode

let request_group_sync t ~schedule =
  if t.sync_mode = Grouped && t.dirty && not t.sync_scheduled then begin
    t.sync_scheduled <- true;
    schedule (fun () ->
        t.sync_scheduled <- false;
        sync t)
  end

let append_segment t ~gen ~slot entries ~corrupt_from =
  let count = List.length entries in
  let len = segment_bytes count in
  if Bytes.length t.scratch < len then
    t.scratch <- Bytes.create (max len (2 * Bytes.length t.scratch));
  let header =
    {
      Codec.h_epoch = t.epoch;
      h_gen = gen;
      h_slot = slot;
      h_seq = t.seq;
      h_count = count;
    }
  in
  Codec.encode_header_into t.scratch ~pos:0 header;
  List.iteri
    (fun i e ->
      let corrupt = i >= corrupt_from in
      Codec.encode_entry_into ~corrupt t.scratch
        ~pos:(Codec.header_bytes + (i * Codec.entry_bytes))
        e)
    entries;
  Backend.pwrite t.backend ~off:t.write_off ~len t.scratch;
  (match t.sync_mode with
  | Immediate -> Backend.barrier t.backend
  | Grouped | Manual -> t.dirty <- true);
  t.seq <- t.seq + 1;
  t.write_off <- t.write_off + len

let append_block t ~gen ~slot ?torn_suffix records =
  match records with
  | [] -> ()
  | _ ->
    let entries = List.map (fun r -> Codec.Record r) records in
    let count = List.length entries in
    let corrupt_from =
      match torn_suffix with None -> count | Some n -> max 0 (count - n)
    in
    append_segment t ~gen ~slot entries ~corrupt_from

let append_stable t ~oid ~version =
  append_segment t ~gen:(-1) ~slot:0
    [ Codec.Stable { oid; version } ]
    ~corrupt_from:1

type block = {
  sb_epoch : int;
  sb_gen : int;
  sb_slot : int;
  sb_seq : int;
  sb_records : Log_record.t list;
  sb_discarded : int;
}

type scan = {
  s_blocks : block list;
  s_stable : (Ids.Oid.t * int) list;
  s_segments : int;
  s_stale_blocks : int;
  s_torn_tail : bool;
  s_end : int;
  s_max_epoch : int;
  s_max_seq : int;
}

let scan ?upto backend =
  let len = Backend.size backend in
  let img = Backend.pread backend ~off:0 ~len in
  let len = Bytes.length img in
  let included h = match upto with None -> true | Some n -> h.Codec.h_seq < n in
  (* Decode up to [avail] entries, cutting at the first bad checksum —
     the valid-prefix rule of the torn-write model. *)
  let decode_entries pos avail =
    let rec go i acc =
      if i >= avail then (List.rev acc, avail - i)
      else
        match Codec.decode_entry img ~pos:(pos + (i * Codec.entry_bytes)) with
        | None -> (List.rev acc, avail - i)
        | Some e -> go (i + 1) (e :: acc)
    in
    go 0 []
  in
  let segments = ref 0 in
  let log_segments = ref [] in
  let stable = Hashtbl.create 64 in
  let torn_tail = ref false in
  let s_end = ref 0 in
  let max_epoch = ref (-1) in
  let max_seq = ref (-1) in
  let off = ref 0 in
  let stop = ref false in
  while not !stop do
    if len - !off < Codec.header_bytes then begin
      if len - !off > 0 then torn_tail := true;
      stop := true
    end
    else
      match Codec.decode_header img ~pos:!off with
      | None ->
        torn_tail := true;
        stop := true
      | Some h ->
        let body = !off + Codec.header_bytes in
        let full = len - body >= h.Codec.h_count * Codec.entry_bytes in
        let avail =
          if full then h.Codec.h_count else (len - body) / Codec.entry_bytes
        in
        if not full then torn_tail := true;
        if included h then begin
          incr segments;
          if h.Codec.h_epoch > !max_epoch then max_epoch := h.Codec.h_epoch;
          if h.Codec.h_seq > !max_seq then max_seq := h.Codec.h_seq;
          let entries, discarded = decode_entries body avail in
          let discarded = discarded + (h.Codec.h_count - avail) in
          if h.Codec.h_gen < 0 then
            List.iter
              (function
                | Codec.Stable { oid; version } ->
                  let prev =
                    match Hashtbl.find_opt stable oid with
                    | Some v -> v
                    | None -> -1
                  in
                  if version > prev then Hashtbl.replace stable oid version
                | Codec.Record _ -> ())
              entries
          else begin
            let records =
              List.filter_map
                (function Codec.Record r -> Some r | Codec.Stable _ -> None)
                entries
            in
            log_segments :=
              {
                sb_epoch = h.Codec.h_epoch;
                sb_gen = h.Codec.h_gen;
                sb_slot = h.Codec.h_slot;
                sb_seq = h.Codec.h_seq;
                sb_records = records;
                sb_discarded = discarded;
              }
              :: !log_segments
          end
        end;
        if full then begin
          off := body + (h.Codec.h_count * Codec.entry_bytes);
          s_end := !off
        end
        else stop := true
  done;
  (* In-place slot semantics: only the newest segment per
     (epoch, gen, slot) survives; everything older is stale garbage. *)
  let newest = Hashtbl.create 64 in
  List.iter
    (fun b ->
      let key = (b.sb_epoch, b.sb_gen, b.sb_slot) in
      match Hashtbl.find_opt newest key with
      | Some prev when prev.sb_seq >= b.sb_seq -> ()
      | _ -> Hashtbl.replace newest key b)
    !log_segments;
  let blocks =
    Hashtbl.fold (fun _ b acc -> b :: acc) newest []
    |> List.sort (fun a b -> compare a.sb_seq b.sb_seq)
  in
  let stable_pairs =
    Hashtbl.fold (fun oid v acc -> (oid, v) :: acc) stable []
    |> List.sort (fun (a, _) (b, _) -> Ids.Oid.compare a b)
  in
  {
    s_blocks = blocks;
    s_stable = stable_pairs;
    s_segments = !segments;
    s_stale_blocks = List.length !log_segments - List.length blocks;
    s_torn_tail = !torn_tail;
    s_end = !s_end;
    s_max_epoch = !max_epoch;
    s_max_seq = !max_seq;
  }

let make backend ~epoch ~seq ~write_off ~sync_mode =
  {
    backend;
    epoch;
    seq;
    write_off;
    scratch = Bytes.create (segment_bytes 64);
    sync_mode;
    dirty = false;
    sync_scheduled = false;
    group_syncs = 0;
  }

let create ?(sync_mode = Immediate) backend =
  Backend.truncate backend ~len:0;
  make backend ~epoch:0 ~seq:0 ~write_off:0 ~sync_mode

let attach ?(sync_mode = Immediate) backend =
  let s = scan backend in
  if s.s_torn_tail then Backend.truncate backend ~len:s.s_end;
  make backend ~epoch:(s.s_max_epoch + 1) ~seq:(s.s_max_seq + 1)
    ~write_off:s.s_end ~sync_mode
