(** The durable log: an append-only sequence of checksummed segments
    on a {!Backend}, reconstructing the simulator's in-place slot
    semantics by sequence-number dedup at scan time.

    {2 Mapping to the simulation}

    Each completed block write in the simulator becomes one appended
    segment keyed by [(epoch, gen, slot)]; a later write to the same
    slot appends a new segment with a higher [seq] rather than
    overwriting in place.  A {!scan} keeps only the newest segment per
    key, which reproduces exactly the simulator's [durable_blocks]
    view: overwritten content disappears, queued-but-unstarted writes
    were never appended, and a torn in-service write (persisted with
    [torn_suffix] corrupt entries) supersedes the slot's previous
    content with its valid prefix.

    {2 Durability contract}

    Under the default {!Immediate} sync mode, {!append_block} and
    {!append_stable} issue one [pwrite] followed by one
    {!Backend.barrier} and return only after both; callers may
    therefore ack durability immediately after an append returns.  On
    the [file] backend that is pwrite+fsync, so the ack survives
    SIGKILL.

    Under {!Grouped} and {!Manual} the barrier is decoupled from the
    append: appends mark the store dirty and the barrier is issued by
    {!sync}.  Under {!Grouped} the simulation's channels also call
    {!request_group_sync}, which coalesces every append of a
    same-instant completion wave under a single barrier, so simulated
    acks and their barrier land at the same instant.  {!Manual} issues
    nothing on its own — only an explicit {!sync} barriers; it is the
    serve loop's mode, where drain-and-settle appends many segments
    (the sealed block plus each stable install) and one {!sync} before
    the commit ack covers them all.  The contract shifts accordingly:
    an append alone is {e not} durable, and an ack may only follow a
    completed {!sync}.  Callers that honour that rule keep exactly the
    Immediate crash guarantees while paying one fsync per settle wave
    (or per commit) instead of one per segment.

    {2 Epochs}

    Every {!attach} starts a new epoch above any found in the image, so
    a restarted process writing to [(gen 0, slot 0)] can never shadow a
    prior incarnation's durable blocks — recovery unions committed
    state across epochs. *)

open El_model

type t

(** When the backend barrier runs relative to appends. *)
type sync_mode =
  | Immediate  (** one barrier per appended segment (the default) *)
  | Grouped
      (** appends only mark the store dirty; {!sync} (or a scheduled
          {!request_group_sync}) barriers once for every append since
          the last barrier *)
  | Manual
      (** like [Grouped], but {!request_group_sync} is ignored too:
          only an explicit {!sync} ever barriers *)

val create : ?sync_mode:sync_mode -> Backend.t -> t
(** Truncates the backend and starts at epoch 0, seq 0. *)

val attach : ?sync_mode:sync_mode -> Backend.t -> t
(** Adopts an existing image: scans it, truncates any torn tail, and
    resumes appending at the next epoch and sequence number. *)

val backend : t -> Backend.t
val epoch : t -> int

val sync_mode : t -> sync_mode

val set_sync_mode : t -> sync_mode -> unit
(** Switching to [Immediate] first {!sync}s, so no written bytes are
    left without a barrier. *)

val dirty : t -> bool
(** Bytes have been appended since the last barrier ([Grouped] or
    [Manual]). *)

val sync : t -> unit
(** Barrier now, if dirty; a no-op otherwise. *)

val request_group_sync : t -> schedule:((unit -> unit) -> unit) -> unit
(** Asks for a {!sync} to run at a caller-chosen later point — the
    channels pass an end-of-settle-wave scheduler, so however many
    block writes complete at one simulated instant, the wave ends in
    exactly one barrier.  Idempotent while a sync is already queued;
    a no-op when the store is clean or the mode is not [Grouped]. *)

val group_syncs : t -> int
(** Barriers issued by {!sync} (the group-commit counter, reported by
    the serve [stat] line and the store bench). *)

val position : t -> int
(** The next sequence number to be assigned.  A scan bounded by
    [~upto:(position t)] sees exactly the segments appended so far —
    the crash-mark used for in-simulation store recovery. *)

val torn_keep : count:int -> float -> int
(** [torn_keep ~count f] is how many of [count] records survive a torn
    write with torn factor [f] — the single definition of the PR-5
    torn model shared by the simulator and the store. *)

val append_block :
  t -> gen:int -> slot:int -> ?torn_suffix:int -> Log_record.t list -> unit
(** Appends one log segment and barriers.  Empty record lists append
    nothing.  The last [torn_suffix] entries are written with corrupt
    checksums, persisting a torn in-service write's destroyed tail. *)

val append_stable : t -> oid:Ids.Oid.t -> version:int -> unit
(** Appends a stable-DB install fact (a [gen = -1] segment) and
    barriers. *)

(** The newest segment for one [(epoch, gen, slot)] key. *)
type block = {
  sb_epoch : int;
  sb_gen : int;
  sb_slot : int;
  sb_seq : int;
  sb_records : Log_record.t list;  (** valid prefix, in append order *)
  sb_discarded : int;  (** entries cut at the first bad checksum *)
}

type scan = {
  s_blocks : block list;  (** newest per key, ascending [seq] *)
  s_stable : (Ids.Oid.t * int) list;  (** max installed version per oid *)
  s_segments : int;  (** segments examined (log + stable) *)
  s_stale_blocks : int;  (** log segments superseded by a newer seq *)
  s_torn_tail : bool;  (** image ended mid-segment or mid-entry *)
  s_end : int;  (** byte offset after the last complete segment *)
  s_max_epoch : int;  (** -1 when the image is empty *)
  s_max_seq : int;  (** -1 when the image is empty *)
}

val scan : ?upto:int -> Backend.t -> scan
(** Reads the whole image.  With [~upto:n], segments with [seq >= n]
    are parsed past but excluded — replaying the image as it stood at
    {!position} [= n]. *)
