type op =
  | Pwrite of int
  | Pread of int
  | Barrier

type counters = {
  mutable pwrites : int;
  mutable preads : int;
  mutable barriers : int;
  mutable bytes_written : int;
}

type mem_state = { mutable buf : Bytes.t; mutable len : int; mutable freed : bool }
type file_state = { fd : Unix.file_descr; fpath : string; mutable closed : bool }

type impl =
  | Mem of mem_state
  | File of file_state

type write_fault = {
  mutable wf_countdown : int;  (* full pwrites left before the tear *)
  wf_keep : int;  (* bytes of the torn pwrite that reach the platter *)
  wf_hook : unit -> unit;  (* fires once, at the tear *)
}

type t = {
  impl : impl;
  counters : counters;
  mutable tap : (op -> unit) option;
  mutable fault : write_fault option;
  mutable dead : bool;
}

let fresh_counters () =
  { pwrites = 0; preads = 0; barriers = 0; bytes_written = 0 }

let mem () =
  {
    impl = Mem { buf = Bytes.create 4096; len = 0; freed = false };
    counters = fresh_counters ();
    tap = None;
    fault = None;
    dead = false;
  }

let file ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  {
    impl = File { fd; fpath = path; closed = false };
    counters = fresh_counters ();
    tap = None;
    fault = None;
    dead = false;
  }

let set_write_fault ?(on_tear = fun () -> ()) t ~after_pwrites ~keep_bytes =
  if after_pwrites < 0 then
    invalid_arg "El_store.Backend.set_write_fault: negative countdown";
  if keep_bytes < 0 then
    invalid_arg "El_store.Backend.set_write_fault: negative keep";
  t.fault <-
    Some { wf_countdown = after_pwrites; wf_keep = keep_bytes; wf_hook = on_tear }

let dead t = t.dead
let revive t = t.dead <- false

let name t = match t.impl with Mem _ -> "mem" | File _ -> "file"
let path t = match t.impl with Mem _ -> None | File f -> Some f.fpath

let counters t = t.counters
let set_tap t tap = t.tap <- tap

let record t op =
  (match op with
  | Pwrite n ->
    t.counters.pwrites <- t.counters.pwrites + 1;
    t.counters.bytes_written <- t.counters.bytes_written + n
  | Pread _ -> t.counters.preads <- t.counters.preads + 1
  | Barrier -> t.counters.barriers <- t.counters.barriers + 1);
  match t.tap with Some f -> f op | None -> ()

let check_open t =
  match t.impl with
  | Mem m -> if m.freed then invalid_arg "El_store.Backend: use after close"
  | File f -> if f.closed then invalid_arg "El_store.Backend: use after close"

let mem_ensure m capacity =
  if Bytes.length m.buf < capacity then begin
    let cap = ref (max 4096 (Bytes.length m.buf)) in
    while !cap < capacity do
      cap := !cap * 2
    done;
    let buf = Bytes.create !cap in
    Bytes.blit m.buf 0 buf 0 m.len;
    m.buf <- buf
  end

(* OCaml's Unix module has no pread/pwrite; seek-then-loop is fine here
   because a backend is only ever driven from one thread. *)
let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let rec read_all fd b pos len =
  if len = 0 then pos
  else
    let n = Unix.read fd b pos len in
    if n = 0 then pos else read_all fd b (pos + n) (len - n)

let write_bytes t ~off ~pos ~len b =
  match t.impl with
  | Mem m ->
    mem_ensure m (off + len);
    (* Zero-fill any gap between the current end and [off] so Mem and
       File (which reads back sparse holes as zeros) stay byte-equal. *)
    if off > m.len then Bytes.fill m.buf m.len (off - m.len) '\000';
    Bytes.blit b pos m.buf off len;
    if off + len > m.len then m.len <- off + len
  | File f ->
    ignore (Unix.lseek f.fd off Unix.SEEK_SET);
    write_all f.fd b pos len

let pwrite t ~off ?(pos = 0) ?len b =
  check_open t;
  if off < 0 then invalid_arg "El_store.Backend.pwrite: negative offset";
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "El_store.Backend.pwrite: slice out of bounds";
  if t.dead then ()
  else
    match t.fault with
    | Some wf when wf.wf_countdown = 0 ->
      (* The tear: a prefix of this pwrite reaches the platter and the
         device is gone — every later op is silently lost, exactly a
         power cut in the middle of the write.  The valid prefix can
         end anywhere, including inside a segment header or entry. *)
      let kept = min wf.wf_keep len in
      if kept > 0 then write_bytes t ~off ~pos ~len:kept b;
      t.fault <- None;
      t.dead <- true;
      if kept > 0 then record t (Pwrite kept);
      wf.wf_hook ()
    | fault ->
      (match fault with
      | Some wf -> wf.wf_countdown <- wf.wf_countdown - 1
      | None -> ());
      write_bytes t ~off ~pos ~len b;
      record t (Pwrite len)

let pread t ~off ~len =
  check_open t;
  if off < 0 || len < 0 then invalid_arg "El_store.Backend.pread";
  let out =
    match t.impl with
    | Mem m ->
      if off >= m.len then Bytes.create 0
      else begin
        let n = min len (m.len - off) in
        Bytes.sub m.buf off n
      end
    | File f ->
      ignore (Unix.lseek f.fd off Unix.SEEK_SET);
      let b = Bytes.create len in
      let got = read_all f.fd b 0 len in
      if got = len then b else Bytes.sub b 0 got
  in
  record t (Pread (Bytes.length out));
  out

let barrier t =
  check_open t;
  if t.dead then ()
  else begin
    (match t.impl with Mem _ -> () | File f -> Unix.fsync f.fd);
    record t Barrier
  end

let size t =
  check_open t;
  match t.impl with
  | Mem m -> m.len
  | File f -> (Unix.fstat f.fd).Unix.st_size

let truncate t ~len =
  check_open t;
  if len < 0 then invalid_arg "El_store.Backend.truncate";
  if t.dead then ()
  else
  match t.impl with
  | Mem m -> if len < m.len then m.len <- len
  | File f -> if len < (Unix.fstat f.fd).Unix.st_size then Unix.ftruncate f.fd len

let close t =
  match t.impl with
  | Mem m ->
    m.freed <- true;
    m.buf <- Bytes.create 0;
    m.len <- 0
  | File f ->
    if not f.closed then begin
      f.closed <- true;
      Unix.close f.fd
    end
