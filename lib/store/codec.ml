open El_model

type entry =
  | Record of Log_record.t
  | Stable of { oid : Ids.Oid.t; version : int }

let entry_bytes = 49
let header_bytes = 52

type header = {
  h_epoch : int;
  h_gen : int;
  h_slot : int;
  h_seq : int;
  h_count : int;
}

let magic = "ELSG"

let fnv1a_64 b ~pos ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let tag_of_entry = function
  | Stable _ -> 5
  | Record r -> (
    match r.Log_record.kind with
    | Log_record.Begin -> 1
    | Log_record.Commit -> 2
    | Log_record.Abort -> 3
    | Log_record.Data _ -> 4)

let encode_entry_into ?(corrupt = false) b ~pos e =
  if Bytes.length b - pos < entry_bytes then
    invalid_arg "El_store.Codec.encode_entry_into: short buffer";
  Bytes.set b pos (Char.chr (tag_of_entry e));
  let tid, oid, version, size, ts =
    match e with
    | Stable { oid; version } -> (0, Ids.Oid.to_int oid, version, 0, 0)
    | Record r ->
      let oid, version =
        match r.Log_record.kind with
        | Log_record.Data { oid; version } -> (Ids.Oid.to_int oid, version)
        | _ -> (0, 0)
      in
      ( Ids.Tid.to_int r.Log_record.tid,
        oid,
        version,
        r.Log_record.size,
        Time.to_us r.Log_record.timestamp )
  in
  Bytes.set_int64_le b (pos + 1) (Int64.of_int tid);
  Bytes.set_int64_le b (pos + 9) (Int64.of_int oid);
  Bytes.set_int64_le b (pos + 17) (Int64.of_int version);
  Bytes.set_int64_le b (pos + 25) (Int64.of_int size);
  Bytes.set_int64_le b (pos + 33) (Int64.of_int ts);
  let cksum = fnv1a_64 b ~pos ~len:41 in
  let cksum = if corrupt then Int64.logxor cksum 1L else cksum in
  Bytes.set_int64_le b (pos + 41) cksum

let encode_entry ?corrupt e =
  let b = Bytes.make entry_bytes '\000' in
  encode_entry_into ?corrupt b ~pos:0 e;
  b

let decode_entry b ~pos =
  if Bytes.length b - pos < entry_bytes then
    invalid_arg "El_store.Codec.decode_entry: short buffer";
  let stored = Bytes.get_int64_le b (pos + 41) in
  if not (Int64.equal stored (fnv1a_64 b ~pos ~len:41)) then None
  else begin
    let tag = Char.code (Bytes.get b pos) in
    let i off = Int64.to_int (Bytes.get_int64_le b (pos + off)) in
    let tid = Ids.Tid.of_int (i 1) in
    let version = i 17 in
    let size = i 25 in
    let timestamp = Time.of_us (i 33) in
    match tag with
    | 1 -> Some (Record (Log_record.begin_ ~tid ~size ~timestamp))
    | 2 -> Some (Record (Log_record.commit ~tid ~size ~timestamp))
    | 3 -> Some (Record (Log_record.abort ~tid ~size ~timestamp))
    | 4 ->
      let oid = Ids.Oid.of_int (i 9) in
      Some (Record (Log_record.data ~tid ~oid ~version ~size ~timestamp))
    | 5 -> Some (Stable { oid = Ids.Oid.of_int (i 9); version })
    | _ -> None
  end

let encode_header_into b ~pos h =
  if Bytes.length b - pos < header_bytes then
    invalid_arg "El_store.Codec.encode_header_into: short buffer";
  Bytes.blit_string magic 0 b pos 4;
  Bytes.set_int64_le b (pos + 4) (Int64.of_int h.h_epoch);
  Bytes.set_int64_le b (pos + 12) (Int64.of_int h.h_gen);
  Bytes.set_int64_le b (pos + 20) (Int64.of_int h.h_slot);
  Bytes.set_int64_le b (pos + 28) (Int64.of_int h.h_seq);
  Bytes.set_int64_le b (pos + 36) (Int64.of_int h.h_count);
  Bytes.set_int64_le b (pos + 44) (fnv1a_64 b ~pos ~len:44)

let encode_header h =
  let b = Bytes.make header_bytes '\000' in
  encode_header_into b ~pos:0 h;
  b

let decode_header b ~pos =
  if Bytes.length b - pos < header_bytes then
    invalid_arg "El_store.Codec.decode_header: short buffer";
  if not (String.equal (Bytes.sub_string b pos 4) magic) then None
  else if
    not
      (Int64.equal
         (Bytes.get_int64_le b (pos + 44))
         (fnv1a_64 b ~pos ~len:44))
  then None
  else
    let i off = Int64.to_int (Bytes.get_int64_le b (pos + off)) in
    Some
      {
        h_epoch = i 4;
        h_gen = i 12;
        h_slot = i 20;
        h_seq = i 28;
        h_count = i 36;
      }
