open El_model

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  rng : Random.State.t;
  mutable dispatched : int;
  mutable observers_rev : (unit -> unit) list;  (* newest first *)
  mutable observers : (unit -> unit) array;  (* FIFO cache of the above *)
  mutable observers_stale : bool;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    rng = Random.State.make [| seed |];
    dispatched = 0;
    observers_rev = [];
    observers = [||];
    observers_stale = false;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t time f =
  if Time.(time < t.clock) then
    invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time:(Time.to_us time) f

let schedule_after t delay f = schedule_at t (Time.add t.clock delay) f

(* O(1) per registration: the FIFO array is rebuilt lazily at the next
   dispatch, so a burst of n registrations costs one O(n) reversal
   rather than the O(n^2) of appending to the tail each time. *)
let on_dispatch t f =
  t.observers_rev <- f :: t.observers_rev;
  t.observers_stale <- true

let dispatch t time f =
  t.clock <- Time.of_us time;
  t.dispatched <- t.dispatched + 1;
  (* refresh before running the event so an observer registered from
     inside it (or from another observer) first fires at the *next*
     boundary — the cache in hand stays fixed for this dispatch *)
  if t.observers_stale then begin
    t.observers <- Array.of_list (List.rev t.observers_rev);
    t.observers_stale <- false
  end;
  f ();
  Array.iter (fun o -> o ()) t.observers

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    dispatch t time f;
    true

(* Dispatch at most [max_steps] events with time <= [limit] (in us);
   returns how many were dispatched. *)
let run_bounded t ~limit ~max_steps =
  let dispatched = ref 0 in
  let continue = ref true in
  while !continue && !dispatched < max_steps do
    match Event_queue.peek_time t.queue with
    | Some time when time <= limit -> (
      match Event_queue.pop t.queue with
      | Some (time, f) ->
        dispatch t time f;
        incr dispatched
      | None -> continue := false)
    | Some _ | None -> continue := false
  done;
  !dispatched

let run t ~until =
  let limit = Time.to_us until in
  ignore (run_bounded t ~limit ~max_steps:max_int);
  if Time.(t.clock < until) then t.clock <- until

let run_steps t ~until ~max_steps =
  if max_steps < 0 then invalid_arg "Engine.run_steps: negative max_steps";
  let limit = Time.to_us until in
  let n = run_bounded t ~limit ~max_steps in
  (* Fewer dispatches than asked means the horizon was exhausted: land
     the clock exactly on [until], as {!run} does. *)
  if n < max_steps && Time.(t.clock < until) then t.clock <- until;
  n

let run_all t = while step t do () done
let events_dispatched t = t.dispatched
let pending_events t = Event_queue.length t.queue
