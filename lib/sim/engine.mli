(** The event-driven simulation engine.

    An engine owns a simulated clock, an event queue and a seeded
    pseudo-random state.  Components schedule closures at absolute or
    relative simulated times; {!run} dispatches them in time order
    (FIFO among equals) while advancing the clock.  Everything is
    deterministic for a given seed, which the reproduction harness
    relies on. *)

open El_model

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose clock reads {!Time.zero}.
    The default seed is 42. *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Random.State.t
(** The engine's private random state; all stochastic choices in a
    simulation must draw from it so that runs are reproducible. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the simulated past. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_after t delay f] is
    [schedule_at t (Time.add (now t) delay) f]. *)

val run : t -> until:Time.t -> unit
(** Dispatches events in order until the queue is empty or the next
    event is strictly later than [until].  Every dispatched event has
    time at most [until], so afterwards the clock reads exactly
    [until] — it is advanced there even when the queue empties early,
    and it never moves backwards (a call with [until] in the past
    dispatches nothing and leaves the clock unchanged). *)

val run_steps : t -> until:Time.t -> max_steps:int -> int
(** [run_steps t ~until ~max_steps] dispatches at most [max_steps]
    events with time at most [until] and returns how many were
    dispatched.  A return value smaller than [max_steps] means no
    eligible event remained, in which case the clock is advanced to
    [until] exactly as {!run} would; otherwise the clock rests at the
    last dispatched event, so callers can inspect a mid-run state at a
    deterministic event boundary (the crash-sweep harness pauses
    here).  Raises [Invalid_argument] if [max_steps] is negative. *)

val run_all : t -> unit
(** Dispatches every remaining event. *)

val step : t -> bool
(** Dispatches a single event; [false] if the queue was empty. *)

val on_dispatch : t -> (unit -> unit) -> unit
(** [on_dispatch t f] registers [f] to run after every dispatched
    event, at the event boundary (the event's own effects, including
    anything it scheduled, are complete).  Observers run in
    registration order (FIFO) and must not schedule, pop or otherwise
    perturb the simulation if determinism is to be preserved — they
    are meant for invariant audits, trace recording and progress
    accounting.  Registration is O(1); an observer registered during a
    dispatch first runs at the following dispatch. *)

val events_dispatched : t -> int
(** Number of events dispatched so far (an activity measure used by
    tests and benchmarks). *)

val pending_events : t -> int
