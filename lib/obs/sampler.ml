open El_model

type probe = { name : string; read : unit -> float }

type t = {
  period : Time.t;
  mutable probes_rev : probe list;  (* newest first *)
  mutable next_due : Time.t;
  mutable rows_rev : (Time.t * float array) list;  (* newest first *)
  mutable count : int;
}

let create ~period () =
  if Time.(period <= zero) then
    invalid_arg "Sampler.create: non-positive period";
  { period; probes_rev = []; next_due = Time.zero; rows_rev = []; count = 0 }

let period t = t.period

let add_probe t ~name read =
  if List.exists (fun p -> p.name = name) t.probes_rev then
    invalid_arg (Printf.sprintf "Sampler.add_probe: duplicate probe %S" name);
  t.probes_rev <- { name; read } :: t.probes_rev

let columns t = List.rev_map (fun p -> p.name) t.probes_rev

let sample t ~at =
  let probes = List.rev t.probes_rev in
  let row = Array.of_list (List.map (fun p -> p.read ()) probes) in
  t.rows_rev <- (at, row) :: t.rows_rev;
  t.count <- t.count + 1

(* Samples are stamped at the period grid, not at [now]: the tick is
   driven from event boundaries, so [now] jumps unevenly, but the
   recorded series must stay periodic for plots and CSV export.  A
   grid point whose deadline passed between two events is recorded at
   that deadline with the state visible at the boundary — the closest
   deterministic reading the discrete-event world offers. *)
let tick t ~now =
  while Time.(now >= t.next_due) do
    sample t ~at:t.next_due;
    t.next_due <- Time.add t.next_due t.period
  done

let rows t = List.rev t.rows_rev
let length t = t.count
