open El_model
open El_sim

type config = { ring_capacity : int; sample_period : Time.t }

let default_config = { ring_capacity = 65_536; sample_period = Time.of_ms 100 }

type t = {
  engine : Engine.t;
  ring : Event.t Ring.t;
  registry : Registry.t;
  sampler : Sampler.t;
  mutable emitted : int;
  mutable installed : bool;
}

let create ?(config = default_config) engine =
  {
    engine;
    ring = Ring.create ~capacity:config.ring_capacity;
    registry = Registry.create ();
    sampler = Sampler.create ~period:config.sample_period ();
    emitted = 0;
    installed = false;
  }

let engine t = t.engine
let registry t = t.registry
let sampler t = t.sampler

let emit_at t ~at sub kind =
  t.emitted <- t.emitted + 1;
  Ring.push t.ring { Event.at; sub; kind }

let emit t sub kind = emit_at t ~at:(Engine.now t.engine) sub kind

let events t = Ring.to_list t.ring
let emitted t = t.emitted
let recorded t = Ring.length t.ring
let dropped t = Ring.dropped t.ring

let counter t name = Registry.counter t.registry name
let gauge t name = Registry.gauge t.registry name
let stat t name = Registry.stat t.registry name

let histogram ?base ?lowest ?buckets t name =
  Registry.histogram ?base ?lowest ?buckets t.registry name

let add_probe t ~name read = Sampler.add_probe t.sampler ~name read

(* The sampler observer only *reads* state, so registering it cannot
   perturb the simulation; [installed] keeps a second [install] from
   double-sampling. *)
let install t =
  if not t.installed then begin
    t.installed <- true;
    Engine.on_dispatch t.engine (fun () ->
        Sampler.tick t.sampler ~now:(Engine.now t.engine))
  end

let finish t = Sampler.tick t.sampler ~now:(Engine.now t.engine)
