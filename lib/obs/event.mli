(** The trace-event taxonomy: one typed constructor per interesting
    transition in the simulated system, stamped with the simulated
    time at which it happened and the subsystem that emitted it.

    The taxonomy mirrors the paper's dynamics: records entering log
    tails ([Append]), heads advancing and deciding each survivor's
    fate ([Head_advance], [Forward], [Recirculate], [Stage_write],
    [Regenerate]), the kill/evict pressure valves, group-commit
    acknowledgements, log-channel block writes, and the flush array's
    request/start/done lifecycle whose backlog drives §4's
    negative-feedback argument. *)

open El_model

type subsystem = Manager | Channel | Disk | Recovery | Harness

val subsystem_name : subsystem -> string
val all_subsystems : subsystem list

val subsystem_index : subsystem -> int
(** A stable small integer per subsystem — the Chrome-trace "thread"
    id under which the exporter files the event. *)

type kind =
  | Append of { gen : int; slot : int; tid : int; size : int }
      (** a record entered the tail buffer of generation/queue [gen] *)
  | Seal of { gen : int; slot : int }
      (** a partially-filled buffer was closed and sent to disk *)
  | Head_advance of { gen : int; slot : int; survivors : int }
  | Forward of { from_gen : int; to_gen : int; records : int }
  | Recirculate of { gen : int; records : int }
      (** survivors moved into the last generation's staging buffer *)
  | Stage_write of { gen : int; records : int }
      (** the staging buffer was written back at the tail *)
  | Regenerate of { queue : int; records : int }
      (** hybrid manager: a transaction's records rewritten from RAM *)
  | Kill of { tid : int }
  | Evict of { target : int; committed_tx : bool }
      (** a committed record force-flushed out of the log; [target] is
          the oid, or the tid when a whole committed transaction's
          write set was drained ([committed_tx]) *)
  | Commit_ack of { tid : int; latency : Time.t }
      (** group commit reached disk; [latency] is request-to-ack *)
  | Abort of { tid : int }
  | Checkpoint of { blocks : int }  (** FW checkpoint of [blocks] cost *)
  | Log_write_start of { gen : int }
  | Log_write_done of { gen : int }
  | Flush_request of { oid : int; forced : bool }
  | Flush_start of { drive : int; oid : int }
  | Flush_done of { drive : int; oid : int; distance : int }
      (** [distance] is the oid seek distance from the drive's previous
          position, 0 for a drive's first flush *)
  | Recovery_scan of { records : int; applied : int; skipped : int }
  | Io_retry of { device : string; attempts : int }
      (** transient I/O failures absorbed by the retry policy *)
  | Io_remap of { device : string }
      (** a bad sector forced a remap onto a spare *)
  | Torn_discard of { blocks : int; records : int }
      (** recovery discarded torn tail blocks failing their checksum *)
  | Shed of { tid : int; backlog : int }
      (** degraded mode shed an arriving transaction under fault storm *)
  | Contention of { tid : int; oid : int; attempt : int }
      (** a skewed oid draw hit another active writer: the drawing
          transaction aborted ([attempt] of its retry chain) *)
  | Retry of { tid : int; attempt : int }
      (** a contention-aborted transaction relaunched after backoff *)
  | Mark of string  (** free-form harness annotation *)

type t = { at : Time.t; sub : subsystem; kind : kind }

val name : kind -> string
(** Stable kebab-case name, used as the Chrome-trace event name and
    as the grouping key in the JSON summary. *)

val args : kind -> (string * Jsonx.t) list
(** The payload fields, as Chrome-trace [args]. *)

val pp : Format.formatter -> t -> unit
