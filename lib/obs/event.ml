open El_model

type subsystem = Manager | Channel | Disk | Recovery | Harness

let subsystem_name = function
  | Manager -> "manager"
  | Channel -> "channel"
  | Disk -> "disk"
  | Recovery -> "recovery"
  | Harness -> "harness"

let all_subsystems = [ Manager; Channel; Disk; Recovery; Harness ]

let subsystem_index = function
  | Manager -> 0
  | Channel -> 1
  | Disk -> 2
  | Recovery -> 3
  | Harness -> 4

type kind =
  | Append of { gen : int; slot : int; tid : int; size : int }
  | Seal of { gen : int; slot : int }
  | Head_advance of { gen : int; slot : int; survivors : int }
  | Forward of { from_gen : int; to_gen : int; records : int }
  | Recirculate of { gen : int; records : int }
  | Stage_write of { gen : int; records : int }
  | Regenerate of { queue : int; records : int }
  | Kill of { tid : int }
  | Evict of { target : int; committed_tx : bool }
  | Commit_ack of { tid : int; latency : Time.t }
  | Abort of { tid : int }
  | Checkpoint of { blocks : int }
  | Log_write_start of { gen : int }
  | Log_write_done of { gen : int }
  | Flush_request of { oid : int; forced : bool }
  | Flush_start of { drive : int; oid : int }
  | Flush_done of { drive : int; oid : int; distance : int }
  | Recovery_scan of { records : int; applied : int; skipped : int }
  | Io_retry of { device : string; attempts : int }
  | Io_remap of { device : string }
  | Torn_discard of { blocks : int; records : int }
  | Shed of { tid : int; backlog : int }
  | Contention of { tid : int; oid : int; attempt : int }
  | Retry of { tid : int; attempt : int }
  | Mark of string

type t = { at : Time.t; sub : subsystem; kind : kind }

let name = function
  | Append _ -> "append"
  | Seal _ -> "seal"
  | Head_advance _ -> "head-advance"
  | Forward _ -> "forward"
  | Recirculate _ -> "recirculate"
  | Stage_write _ -> "stage-write"
  | Regenerate _ -> "regenerate"
  | Kill _ -> "kill"
  | Evict _ -> "evict"
  | Commit_ack _ -> "commit-ack"
  | Abort _ -> "abort"
  | Checkpoint _ -> "checkpoint"
  | Log_write_start _ -> "log-write-start"
  | Log_write_done _ -> "log-write-done"
  | Flush_request _ -> "flush-request"
  | Flush_start _ -> "flush-start"
  | Flush_done _ -> "flush-done"
  | Recovery_scan _ -> "recovery-scan"
  | Io_retry _ -> "io-retry"
  | Io_remap _ -> "io-remap"
  | Torn_discard _ -> "torn-discard"
  | Shed _ -> "shed"
  | Contention _ -> "contention"
  | Retry _ -> "retry"
  | Mark _ -> "mark"

let args kind : (string * Jsonx.t) list =
  match kind with
  | Append { gen; slot; tid; size } ->
    [ ("gen", Jsonx.Int gen); ("slot", Int slot); ("tid", Int tid);
      ("size", Int size) ]
  | Seal { gen; slot } -> [ ("gen", Int gen); ("slot", Int slot) ]
  | Head_advance { gen; slot; survivors } ->
    [ ("gen", Int gen); ("slot", Int slot); ("survivors", Int survivors) ]
  | Forward { from_gen; to_gen; records } ->
    [ ("from", Int from_gen); ("to", Int to_gen); ("records", Int records) ]
  | Recirculate { gen; records } ->
    [ ("gen", Int gen); ("records", Int records) ]
  | Stage_write { gen; records } ->
    [ ("gen", Int gen); ("records", Int records) ]
  | Regenerate { queue; records } ->
    [ ("queue", Int queue); ("records", Int records) ]
  | Kill { tid } -> [ ("tid", Int tid) ]
  | Evict { target; committed_tx } ->
    [ ((if committed_tx then "tid" else "oid"), Int target);
      ("committed_tx", Bool committed_tx) ]
  | Commit_ack { tid; latency } ->
    [ ("tid", Int tid); ("latency_us", Int (Time.to_us latency)) ]
  | Abort { tid } -> [ ("tid", Int tid) ]
  | Checkpoint { blocks } -> [ ("blocks", Int blocks) ]
  | Log_write_start { gen } | Log_write_done { gen } -> [ ("gen", Int gen) ]
  | Flush_request { oid; forced } ->
    [ ("oid", Int oid); ("forced", Bool forced) ]
  | Flush_start { drive; oid } -> [ ("drive", Int drive); ("oid", Int oid) ]
  | Flush_done { drive; oid; distance } ->
    [ ("drive", Int drive); ("oid", Int oid); ("distance", Int distance) ]
  | Recovery_scan { records; applied; skipped } ->
    [ ("records", Int records); ("applied", Int applied);
      ("skipped", Int skipped) ]
  | Io_retry { device; attempts } ->
    [ ("device", String device); ("attempts", Int attempts) ]
  | Io_remap { device } -> [ ("device", String device) ]
  | Torn_discard { blocks; records } ->
    [ ("blocks", Int blocks); ("records", Int records) ]
  | Shed { tid; backlog } -> [ ("tid", Int tid); ("backlog", Int backlog) ]
  | Contention { tid; oid; attempt } ->
    [ ("tid", Int tid); ("oid", Int oid); ("attempt", Int attempt) ]
  | Retry { tid; attempt } -> [ ("tid", Int tid); ("attempt", Int attempt) ]
  | Mark label -> [ ("label", String label) ]

let pp ppf { at; sub; kind } =
  Format.fprintf ppf "[%a %s] %s" Time.pp at (subsystem_name sub) (name kind)
