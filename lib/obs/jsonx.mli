(** A minimal JSON document: just enough to write the observability
    exports (and the bench emitter) without an external dependency.

    Printing is deterministic: object fields appear in the order
    given, floats use a fixed format, and non-finite floats become
    [null] (JSON has no NaN/Infinity literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
