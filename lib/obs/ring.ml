type 'a t = {
  data : 'a option array;
  capacity : int;
  mutable pushed : int;  (* total ever pushed *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: non-positive capacity";
  { data = Array.make capacity None; capacity; pushed = 0 }

let push t x =
  t.data.(t.pushed mod t.capacity) <- Some x;
  t.pushed <- t.pushed + 1

let capacity t = t.capacity
let pushed t = t.pushed
let length t = min t.pushed t.capacity
let dropped t = max 0 (t.pushed - t.capacity)

let get_exn t i =
  match t.data.(i) with Some x -> x | None -> assert false

(* Oldest retained first. *)
let iter t f =
  let n = length t in
  let start = if t.pushed <= t.capacity then 0 else t.pushed mod t.capacity in
  for k = 0 to n - 1 do
    f (get_exn t ((start + k) mod t.capacity))
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.data 0 t.capacity None;
  t.pushed <- 0
