(** A bounded ring buffer that keeps the newest elements.

    Pushing beyond the capacity silently overwrites the oldest
    retained element — the trace recorder's policy: a bounded-memory
    window ending at the most recent event, with {!dropped} counting
    what fell off the back. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
val capacity : 'a t -> int

val length : 'a t -> int
(** Number of elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed. *)

val dropped : 'a t -> int
(** [pushed - length]: how many old elements were overwritten. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest retained first. *)

val to_list : 'a t -> 'a list
(** Oldest retained first. *)

val clear : 'a t -> unit
