open El_model

(* ---------- Chrome trace_event ---------- *)

let us_of_time t = Time.to_us t

let metadata_events () =
  let meta name tid args =
    Jsonx.Obj
      [
        ("name", Jsonx.String name);
        ("ph", Jsonx.String "M");
        ("pid", Jsonx.Int 0);
        ("tid", Jsonx.Int tid);
        ("args", Jsonx.Obj args);
      ]
  in
  meta "process_name" 0 [ ("name", Jsonx.String "el-sim") ]
  :: List.map
       (fun sub ->
         meta "thread_name"
           (Event.subsystem_index sub)
           [ ("name", Jsonx.String (Event.subsystem_name sub)) ])
       Event.all_subsystems

let instant_event (ev : Event.t) =
  Jsonx.Obj
    [
      ("name", Jsonx.String (Event.name ev.kind));
      ("cat", Jsonx.String (Event.subsystem_name ev.sub));
      ("ph", Jsonx.String "i");
      ("ts", Jsonx.Int (us_of_time ev.at));
      ("pid", Jsonx.Int 0);
      ("tid", Jsonx.Int (Event.subsystem_index ev.sub));
      ("s", Jsonx.String "t");
      ("args", Jsonx.Obj (Event.args ev.kind));
    ]

let counter_event ~at ~name ~value =
  Jsonx.Obj
    [
      ("name", Jsonx.String name);
      ("ph", Jsonx.String "C");
      ("ts", Jsonx.Int (us_of_time at));
      ("pid", Jsonx.Int 0);
      ("tid", Jsonx.Int 0);
      ("args", Jsonx.Obj [ ("value", Jsonx.Float value) ]);
    ]

let ts_of = function
  | Jsonx.Obj fields -> (
    match List.assoc_opt "ts" fields with Some (Jsonx.Int n) -> n | _ -> -1)
  | _ -> -1

let chrome_trace_doc obs =
  let instants = List.map instant_event (Obs.events obs) in
  let columns = Sampler.columns (Obs.sampler obs) in
  let counters =
    List.concat_map
      (fun (at, row) ->
        List.mapi (fun i name -> counter_event ~at ~name ~value:row.(i)) columns)
      (Sampler.rows (Obs.sampler obs))
  in
  (* Both streams are individually nondecreasing in ts (the engine
     clock never goes backwards); a stable sort merges them without
     reordering same-timestamp events within a stream. *)
  let timed = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b))
      (instants @ counters)
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (metadata_events () @ timed));
      ("displayTimeUnit", Jsonx.String "ms");
    ]

let chrome_trace obs = Jsonx.to_string (chrome_trace_doc obs)

(* ---------- CSV time series ---------- *)

let timeseries_csv obs =
  let sampler = Obs.sampler obs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_s";
  List.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    (Sampler.columns sampler);
  Buffer.add_char buf '\n';
  List.iter
    (fun (at, row) ->
      Buffer.add_string buf (Printf.sprintf "%.6f" (Time.to_sec_f at));
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf ",%.6g" v))
        row;
      Buffer.add_char buf '\n')
    (Sampler.rows sampler);
  Buffer.contents buf

(* ---------- JSON summary ---------- *)

let events_by_kind obs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (ev : Event.t) ->
      let name = Event.name ev.kind in
      Hashtbl.replace tbl name
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    (Obs.events obs);
  Hashtbl.fold (fun name n acc -> (name, Jsonx.Int n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metric_json = function
  | Registry.Counter c ->
    Jsonx.Obj
      [
        ("type", Jsonx.String "counter");
        ("value", Jsonx.Int (El_metrics.Counter.value c));
      ]
  | Registry.Gauge g ->
    Jsonx.Obj
      [
        ("type", Jsonx.String "gauge");
        ("value", Jsonx.Int (El_metrics.Gauge.value g));
        ("max", Jsonx.Int (El_metrics.Gauge.max_value g));
      ]
  | Registry.Stat s ->
    let module R = El_metrics.Running_stat in
    Jsonx.Obj
      [
        ("type", Jsonx.String "stat");
        ("count", Jsonx.Int (R.count s));
        ("mean", Jsonx.Float (R.mean s));
        ("stddev", Jsonx.Float (R.stddev s));
        ("min", Jsonx.Float (R.min_value s));
        ("max", Jsonx.Float (R.max_value s));
      ]
  | Registry.Histogram h ->
    Jsonx.Obj
      [
        ("type", Jsonx.String "histogram");
        ("count", Jsonx.Int (Histogram.count h));
        ("mean", Jsonx.Float (Histogram.mean h));
        ("min", Jsonx.Float (Histogram.min_value h));
        ("max", Jsonx.Float (Histogram.max_value h));
        ("p50", Jsonx.Float (Histogram.percentile h 0.5));
        ("p90", Jsonx.Float (Histogram.percentile h 0.9));
        ("p99", Jsonx.Float (Histogram.percentile h 0.99));
        ( "buckets",
          Jsonx.List
            (List.map
               (fun (lo, hi, n) ->
                 Jsonx.Obj
                   [
                     ("lo", Jsonx.Float lo);
                     ("hi", Jsonx.Float hi);
                     ("count", Jsonx.Int n);
                   ])
               (Histogram.nonzero_buckets h)) );
      ]

let series_summary obs =
  let sampler = Obs.sampler obs in
  let rows = Sampler.rows sampler in
  List.mapi
    (fun i name ->
      let values = List.map (fun (_, row) -> row.(i)) rows in
      let n = List.length values in
      let stats =
        if n = 0 then
          [ ("samples", Jsonx.Int 0) ]
        else
          let mn = List.fold_left Float.min infinity values in
          let mx = List.fold_left Float.max neg_infinity values in
          let total = List.fold_left ( +. ) 0.0 values in
          [
            ("samples", Jsonx.Int n);
            ("min", Jsonx.Float mn);
            ("max", Jsonx.Float mx);
            ("mean", Jsonx.Float (total /. float_of_int n));
            ("last", Jsonx.Float (List.nth values (n - 1)));
          ]
      in
      (name, Jsonx.Obj stats))
    (Sampler.columns sampler)

let summary ?(extra = []) obs =
  Jsonx.Obj
    ([
       ("schema", Jsonx.String "el-obs-summary/1");
       ( "trace",
         Jsonx.Obj
           [
             ("emitted", Jsonx.Int (Obs.emitted obs));
             ("recorded", Jsonx.Int (Obs.recorded obs));
             ("dropped", Jsonx.Int (Obs.dropped obs));
           ] );
       ("events_by_kind", Jsonx.Obj (events_by_kind obs));
       ( "metrics",
         Jsonx.Obj
           (List.map
              (fun (name, m) -> (name, metric_json m))
              (Registry.to_list (Obs.registry obs))) );
       ( "timeseries",
         Jsonx.Obj
           (( "period_s",
              Jsonx.Float (Time.to_sec_f (Sampler.period (Obs.sampler obs))) )
           :: series_summary obs) );
     ]
    @ extra)

let summary_json ?extra obs = Jsonx.to_string (summary ?extra obs)
