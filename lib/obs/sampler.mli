(** A periodic time-series sampler.

    Probes are closures reading the live simulation state (generation
    occupancy, flush backlog, live-cell bytes).  {!tick} is called
    from an {!El_sim.Engine.on_dispatch} observer; whenever the clock
    has crossed one or more sample deadlines, every probe is read once
    per deadline and the row is stamped at the deadline itself, so the
    series is strictly periodic even though the simulated clock jumps
    unevenly between events.  The first row lands at
    {!El_model.Time.zero}. *)

open El_model

type t

val create : period:Time.t -> unit -> t
(** Raises [Invalid_argument] if [period] is zero. *)

val period : t -> Time.t

val add_probe : t -> name:string -> (unit -> float) -> unit
(** Raises [Invalid_argument] on a duplicate probe name.  Probes added
    after sampling has begun appear only in rows sampled from then on
    — add all probes before running. *)

val tick : t -> now:Time.t -> unit
(** Record one row per crossed sample deadline ([<= now]). *)

val columns : t -> string list
(** Probe names in registration order — the CSV column order. *)

val rows : t -> (Time.t * float array) list
(** Chronological; each array is in {!columns} order. *)

val length : t -> int
