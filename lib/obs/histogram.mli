(** A log-scale histogram for long-tailed simulator quantities:
    commit latency, flush oid distance, queue depths.

    Interior bucket [i] (1-based) covers
    [lowest * base^(i-1), lowest * base^i); bucket [0] is the
    underflow bucket (everything below [lowest], including negatives)
    and bucket [num_buckets + 1] the overflow bucket.  Boundaries are
    computed by iterated multiplication, so an observation exactly on
    a boundary lands deterministically in the bucket whose lower bound
    it equals. *)

type t

val create :
  ?name:string -> ?base:float -> ?lowest:float -> ?buckets:int -> unit -> t
(** Defaults: base 2, lowest 1, 32 buckets — covering [1, 2^32) with
    one bucket per doubling.  Raises [Invalid_argument] for
    [base <= 1], [lowest <= 0] or [buckets <= 0]. *)

val name : t -> string
val observe : t -> float -> unit
(** NaN observations are ignored. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val num_buckets : t -> int
(** Interior buckets only. *)

val bucket_index : t -> float -> int
(** Index into the [num_buckets + 2] counters (0 = underflow). *)

val bucket_count : t -> int -> int

val bucket_bounds : t -> int -> float * float
(** [lo, hi) of a bucket; underflow is [(neg_infinity, lowest)],
    overflow [(top, infinity)]. *)

val merge : ?name:string -> t -> t -> t
(** A fresh histogram holding both operands' observations.  Raises
    [Invalid_argument] unless both share base, lowest and bucket
    count. *)

val percentile : t -> float -> float
(** [percentile t p] is an upper-bound estimate of the p-quantile:
    the upper boundary of the bucket in which the quantile falls,
    clamped to the observed maximum.  0 when empty. *)

val nonzero_buckets : t -> (float * float * int) list
(** [(lo, hi, count)] for every non-empty bucket, ascending — the
    export representation. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
