(** Exporters: the three file formats the [el-sim trace] subcommand
    writes from one {!Obs.t}. *)

val chrome_trace_doc : Obs.t -> Jsonx.t
val chrome_trace : Obs.t -> string
(** Chrome [trace_event] JSON, loadable in Perfetto / chrome://tracing.
    Metadata records name the process ["el-sim"] and one "thread" per
    {!Event.subsystem}; ring events become instant events (["ph":"i"])
    and sampler rows become counter tracks (["ph":"C"]).  Timed events
    are emitted in nondecreasing [ts] order. *)

val timeseries_csv : Obs.t -> string
(** Header [time_s,<probe columns>], one row per sample. *)

val summary : ?extra:(string * Jsonx.t) list -> Obs.t -> Jsonx.t
val summary_json : ?extra:(string * Jsonx.t) list -> Obs.t -> string
(** Machine-readable run summary: trace volume, event counts by kind,
    every registered metric, and per-column series statistics.
    [extra] fields are appended at the top level. *)
