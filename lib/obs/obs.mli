(** The observability hub: one value carrying the trace ring, the
    metric registry and the time-series sampler for a run.

    Instrumented components hold an [Obs.t option]; with [None] the
    hooks cost a pattern match and nothing else, so default runs pay
    essentially nothing.  With [Some obs] each hook {!emit}s a typed
    {!Event.t} stamped with the engine clock into a bounded ring, and
    {!install} registers a read-only sampler on the engine's dispatch
    hook.  Nothing here schedules events or draws randomness, so a
    run's {!El_harness.Experiment.result} is identical with
    observability on or off. *)

open El_model
open El_sim

type config = {
  ring_capacity : int;  (** trace events retained (newest win) *)
  sample_period : Time.t;  (** time-series sampling interval *)
}

type t

val default_config : config
(** 65536 events, 100 ms. *)

val create : ?config:config -> Engine.t -> t

val engine : t -> Engine.t
val registry : t -> Registry.t
val sampler : t -> Sampler.t

val emit : t -> Event.subsystem -> Event.kind -> unit
(** Record an event stamped at [Engine.now]. *)

val emit_at : t -> at:Time.t -> Event.subsystem -> Event.kind -> unit
(** Record an event with an explicit timestamp — recovery replays are
    stamped at the crash instant, not at wall-run time. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total ever emitted. *)

val recorded : t -> int
(** Currently retained ([<= ring_capacity]). *)

val dropped : t -> int
(** Emitted but overwritten. *)

val counter : t -> string -> El_metrics.Counter.t
val gauge : t -> string -> El_metrics.Gauge.t
val stat : t -> string -> El_metrics.Running_stat.t

val histogram :
  ?base:float -> ?lowest:float -> ?buckets:int -> t -> string -> Histogram.t

val add_probe : t -> name:string -> (unit -> float) -> unit
(** Register a time-series column; see {!Sampler.add_probe}. *)

val install : t -> unit
(** Hook the sampler onto the engine's dispatch boundary.  Idempotent.
    Call after all probes are registered and before running. *)

val finish : t -> unit
(** Take any sample whose deadline coincides with the final clock
    reading (the engine only ticks observers at event boundaries). *)
