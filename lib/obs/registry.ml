type metric =
  | Counter of El_metrics.Counter.t
  | Gauge of El_metrics.Gauge.t
  | Stat of El_metrics.Running_stat.t
  | Histogram of Histogram.t

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let find_or_add t name ~make ~cast =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %S already registered with another type"
           name))
  | None ->
    let v = make () in
    v

let counter t name =
  find_or_add t name
    ~make:(fun () ->
      let c = El_metrics.Counter.create ~name () in
      Hashtbl.replace t.tbl name (Counter c);
      c)
    ~cast:(function Counter c -> Some c | _ -> None)

let gauge t name =
  find_or_add t name
    ~make:(fun () ->
      let g = El_metrics.Gauge.create ~name () in
      Hashtbl.replace t.tbl name (Gauge g);
      g)
    ~cast:(function Gauge g -> Some g | _ -> None)

let stat t name =
  find_or_add t name
    ~make:(fun () ->
      let s = El_metrics.Running_stat.create ~name () in
      Hashtbl.replace t.tbl name (Stat s);
      s)
    ~cast:(function Stat s -> Some s | _ -> None)

let histogram ?base ?lowest ?buckets t name =
  find_or_add t name
    ~make:(fun () ->
      let h = Histogram.create ~name ?base ?lowest ?buckets () in
      Hashtbl.replace t.tbl name (Histogram h);
      h)
    ~cast:(function Histogram h -> Some h | _ -> None)

let length t = Hashtbl.length t.tbl

(* Sorted by name: deterministic export order regardless of
   registration interleaving. *)
let to_list t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let iter t f = List.iter (fun (name, m) -> f name m) (to_list t)
