(** A find-or-create registry of named metrics.

    Instrumentation sites ask for a metric by name; the first call
    creates it, later calls return the same instance, and exporters
    walk {!to_list} to see everything that was ever touched.  Names
    are global within one registry, so a name can belong to only one
    metric type — asking for an existing name with a different type
    raises [Invalid_argument]. *)

type metric =
  | Counter of El_metrics.Counter.t
  | Gauge of El_metrics.Gauge.t
  | Stat of El_metrics.Running_stat.t
  | Histogram of Histogram.t

type t

val create : unit -> t
val counter : t -> string -> El_metrics.Counter.t
val gauge : t -> string -> El_metrics.Gauge.t
val stat : t -> string -> El_metrics.Running_stat.t

val histogram :
  ?base:float -> ?lowest:float -> ?buckets:int -> t -> string -> Histogram.t
(** The optional shape parameters only matter on the creating call;
    later calls return the existing histogram unchanged. *)

val length : t -> int

val to_list : t -> (string * metric) list
(** Sorted by name — deterministic export order. *)

val iter : t -> (string -> metric -> unit) -> unit
(** In {!to_list} order. *)
