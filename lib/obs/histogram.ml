(* Log-scale histogram.  Interior bucket [i] (1-based in [counts])
   covers [bounds.(i-1), bounds.(i)), with bounds.(i) = lowest *
   base^i computed by iterated multiplication so that boundary
   observations land deterministically (no log/floor float fuzz).
   counts.(0) is the underflow bucket (x < lowest, including
   negatives), counts.(buckets + 1) the overflow bucket. *)

type t = {
  name : string;
  base : float;
  lowest : float;
  bounds : float array;  (* length buckets + 1; bounds.(0) = lowest *)
  counts : int array;  (* length buckets + 2 *)
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(name = "histogram") ?(base = 2.0) ?(lowest = 1.0)
    ?(buckets = 32) () =
  if base <= 1.0 then invalid_arg "Histogram.create: base must exceed 1";
  if lowest <= 0.0 then invalid_arg "Histogram.create: non-positive lowest";
  if buckets <= 0 then invalid_arg "Histogram.create: no buckets";
  let bounds = Array.make (buckets + 1) lowest in
  for i = 1 to buckets do
    bounds.(i) <- bounds.(i - 1) *. base
  done;
  {
    name;
    base;
    lowest;
    bounds;
    counts = Array.make (buckets + 2) 0;
    total = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let name t = t.name
let num_buckets t = Array.length t.bounds - 1

let bucket_index t x =
  if x < t.bounds.(0) then 0
  else begin
    (* binary search: smallest i with x < bounds.(i); overflow if none *)
    let n = Array.length t.bounds in
    if x >= t.bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      (* invariant: x >= bounds.(lo), x < bounds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if x >= t.bounds.(mid) then lo := mid else hi := mid
      done;
      !hi
    end
  end

let bucket_bounds t i =
  let n = num_buckets t in
  if i < 0 || i > n + 1 then invalid_arg "Histogram.bucket_bounds";
  if i = 0 then (neg_infinity, t.bounds.(0))
  else if i = n + 1 then (t.bounds.(n), infinity)
  else (t.bounds.(i - 1), t.bounds.(i))

let observe t x =
  if not (Float.is_nan x) then begin
    t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let min_value t = t.min_v
let max_value t = t.max_v
let bucket_count t i = t.counts.(i)

let same_shape a b =
  a.base = b.base && a.lowest = b.lowest && num_buckets a = num_buckets b

let merge ?name:n a b =
  if not (same_shape a b) then
    invalid_arg "Histogram.merge: incompatible bucket layouts";
  let m =
    create
      ~name:(match n with Some s -> s | None -> a.name)
      ~base:a.base ~lowest:a.lowest ~buckets:(num_buckets a) ()
  in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.total <- a.total + b.total;
  m.sum <- a.sum +. b.sum;
  m.min_v <- Float.min a.min_v b.min_v;
  m.max_v <- Float.max a.max_v b.max_v;
  m

(* Upper-bound estimate: the smallest bucket boundary below which at
   least [p] of the observations fall.  Clamped to the observed range
   at the extremes, so p=1 reports the true maximum. *)
let percentile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Histogram.percentile";
  if t.total = 0 then 0.0
  else begin
    let target =
      int_of_float (Float.round (p *. float_of_int t.total))
      |> Stdlib.max 1 |> Stdlib.min t.total
    in
    let rec walk i acc =
      let acc = acc + t.counts.(i) in
      if acc >= target then
        let _, hi = bucket_bounds t i in
        Float.min hi t.max_v
      else walk (i + 1) acc
    in
    walk 0 0
  end

let nonzero_buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let pp ppf t =
  Format.fprintf ppf "%s: n=%d mean=%.3f p50<=%.3g p99<=%.3g max=%.3g" t.name
    t.total (mean t) (percentile t 0.5) (percentile t 0.99) t.max_v
