(** A pure state-machine model of the durable-log contract, in the
    style of the verified-betrfs [DiskLog] state machine: explicit
    labelled steps, a transition function that rejects illegal steps,
    and a [persistent ⊆ ephemeral]-style invariant.

    The model deliberately knows nothing about generations, blocks,
    recirculation or flush scheduling — only about the contract every
    manager kind (EL, FW, hybrid) must honour:

    - an {e ack} ([Commit_ack]) promises that the transaction's writes
      survive any later crash ("ack implies recoverable");
    - a {e flush completion} moves a version into the stable database,
      and the {e superblock} (stable floor) never runs ahead of it;
    - a {e crash} erases every in-memory structure but none of the
      durable promises.

    The crash-point sweeper drives one instance of this model from the
    workload trace (the differential oracle): every sink event and
    flush completion becomes a step, every step must be legal, the
    invariant must hold at every pause, and the recovered image at a
    crash point must agree with {!persistent}/{!may_survive}. *)

open El_model

type tx_phase =
  | Running  (** begun, still appending *)
  | Log_extended
      (** commit requested: the COMMIT record has entered the log
          (the log extension), but the ack has not fired — a crash may
          or may not commit it, depending on what persisted *)
  | Acked  (** commit acknowledged: durably committed, must survive *)
  | Aborted
  | Killed

type t

type step =
  | Begin of Ids.Tid.t
  | Append of Ids.Tid.t * Ids.Oid.t * int  (** write of (oid, version) *)
  | Log_extension of Ids.Tid.t  (** commit record entered the log *)
  | Commit_ack of Ids.Tid.t  (** group commit acked the transaction *)
  | Abort of Ids.Tid.t
  | Kill of Ids.Tid.t  (** the paper's kill-on-no-space *)
  | Flush_complete of Ids.Oid.t * int
      (** a database-drive flush transferred (oid, version) *)
  | Superblock_advance of Ids.Oid.t * int
      (** the stable database now serves (oid, version) *)
  | Crash

val init : t

val step : t -> step -> (t, string) result
(** One transition.  [Error] describes why the step is illegal in the
    current state; the state is unchanged. *)

val check : t -> (unit, string) result
(** The invariant: per object, stable floor ≤ flushed ≤ acked — the
    persistent image never claims more than the ephemeral contract
    (cf. DiskLog's [SupersedesDisk]). *)

val crash : t -> t
(** Total form of the [Crash] step: wipes volatile transaction state,
    preserves every durable promise. *)

val persistent : t -> (Ids.Oid.t * int) list
(** The durable floor: every acked (oid, newest version).  All of it
    must be recoverable after any crash. *)

val may_survive : t -> Ids.Oid.t -> int -> bool
(** Whether a recovered image may legitimately hold this exact
    version: the acked version itself, or a newer version written by a
    transaction whose log extension happened (its COMMIT record may
    have persisted — e.g. inside a torn prefix — without the ack ever
    firing). *)

val phase_of : t -> Ids.Tid.t -> tx_phase option
val acked_version : t -> Ids.Oid.t -> int option
val flushed_version : t -> Ids.Oid.t -> int option
val floor_version : t -> Ids.Oid.t -> int option
val num_txs : t -> int

val equal : t -> t -> bool
(** Structural equality, for the model's own property tests
    (crash-step monotonicity, recovery idempotence). *)

val pp_step : Format.formatter -> step -> unit
