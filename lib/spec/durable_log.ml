open El_model
module Oid_map = Map.Make (Ids.Oid)
module Tid_map = Map.Make (Ids.Tid)

type tx_phase = Running | Log_extended | Acked | Aborted | Killed

type tx = { phase : tx_phase; writes : int Oid_map.t }

type t = {
  txs : tx Tid_map.t;
  acked : int Oid_map.t;
  flushed : int Oid_map.t;
  stable_floor : int Oid_map.t;
}

type step =
  | Begin of Ids.Tid.t
  | Append of Ids.Tid.t * Ids.Oid.t * int
  | Log_extension of Ids.Tid.t
  | Commit_ack of Ids.Tid.t
  | Abort of Ids.Tid.t
  | Kill of Ids.Tid.t
  | Flush_complete of Ids.Oid.t * int
  | Superblock_advance of Ids.Oid.t * int
  | Crash

let init =
  {
    txs = Tid_map.empty;
    acked = Oid_map.empty;
    flushed = Oid_map.empty;
    stable_floor = Oid_map.empty;
  }

let pp_step ppf = function
  | Begin tid -> Format.fprintf ppf "Begin %a" Ids.Tid.pp tid
  | Append (tid, oid, v) ->
    Format.fprintf ppf "Append (%a, %a, v%d)" Ids.Tid.pp tid Ids.Oid.pp oid v
  | Log_extension tid -> Format.fprintf ppf "Log_extension %a" Ids.Tid.pp tid
  | Commit_ack tid -> Format.fprintf ppf "Commit_ack %a" Ids.Tid.pp tid
  | Abort tid -> Format.fprintf ppf "Abort %a" Ids.Tid.pp tid
  | Kill tid -> Format.fprintf ppf "Kill %a" Ids.Tid.pp tid
  | Flush_complete (oid, v) ->
    Format.fprintf ppf "Flush_complete (%a, v%d)" Ids.Oid.pp oid v
  | Superblock_advance (oid, v) ->
    Format.fprintf ppf "Superblock_advance (%a, v%d)" Ids.Oid.pp oid v
  | Crash -> Format.pp_print_string ppf "Crash"

let error step fmt =
  Format.kasprintf
    (fun msg -> Error (Format.asprintf "%a: %s" pp_step step msg))
    fmt

let phase_of t tid =
  match Tid_map.find_opt tid t.txs with
  | Some tx -> Some tx.phase
  | None -> None

let acked_version t oid = Oid_map.find_opt oid t.acked
let flushed_version t oid = Oid_map.find_opt oid t.flushed
let floor_version t oid = Oid_map.find_opt oid t.stable_floor

(* The crash step: every in-memory structure (transaction table,
   buffers, ledger) vanishes; the durable contract — acked commits,
   completed flushes, the superblock floor — survives by definition.
   That the *implementation* also preserves it is exactly what the
   differential check against a recovered image establishes. *)
let crash t = { t with txs = Tid_map.empty }

let step t s =
  match s with
  | Begin tid -> (
    match Tid_map.find_opt tid t.txs with
    | Some _ -> error s "duplicate begin"
    | None ->
      Ok
        {
          t with
          txs =
            Tid_map.add tid { phase = Running; writes = Oid_map.empty } t.txs;
        })
  | Append (tid, oid, v) -> (
    if v <= 0 then error s "non-positive version"
    else
      match Tid_map.find_opt tid t.txs with
      | None -> error s "append by unknown transaction"
      | Some { phase = Running; writes } ->
        Ok
          {
            t with
            txs =
              Tid_map.add tid
                { phase = Running; writes = Oid_map.add oid v writes }
                t.txs;
          }
      | Some _ -> error s "append outside the running phase")
  | Log_extension tid -> (
    match Tid_map.find_opt tid t.txs with
    | None -> error s "log extension by unknown transaction"
    | Some ({ phase = Running; _ } as tx) ->
      Ok { t with txs = Tid_map.add tid { tx with phase = Log_extended } t.txs }
    | Some _ -> error s "log extension outside the running phase")
  | Commit_ack tid -> (
    match Tid_map.find_opt tid t.txs with
    | None -> error s "ack for unknown transaction"
    | Some ({ phase = Log_extended; writes } as tx) ->
      let acked =
        Oid_map.fold
          (fun oid v acc ->
            match Oid_map.find_opt oid acc with
            | Some w when w >= v -> acc
            | Some _ | None -> Oid_map.add oid v acc)
          writes t.acked
      in
      Ok
        { t with txs = Tid_map.add tid { tx with phase = Acked } t.txs; acked }
    | Some _ -> error s "ack without a preceding log extension")
  | Abort tid -> (
    match Tid_map.find_opt tid t.txs with
    | None -> error s "abort of unknown transaction"
    | Some ({ phase = Running; _ } as tx) ->
      Ok { t with txs = Tid_map.add tid { tx with phase = Aborted } t.txs }
    | Some _ -> error s "abort outside the running phase")
  | Kill tid -> (
    match Tid_map.find_opt tid t.txs with
    | None -> error s "kill of unknown transaction"
    | Some ({ phase = Running; _ } as tx) ->
      Ok { t with txs = Tid_map.add tid { tx with phase = Killed } t.txs }
    | Some _ -> error s "kill outside the running phase")
  | Flush_complete (oid, v) -> (
    match Oid_map.find_opt oid t.acked with
    | None -> error s "flush completion for a never-acked object"
    | Some a when v > a -> error s "flush completion ahead of acked v%d" a
    | Some _ -> (
      match Oid_map.find_opt oid t.flushed with
      | Some f when v < f -> error s "flush completion regresses from v%d" f
      | Some _ | None -> Ok { t with flushed = Oid_map.add oid v t.flushed }))
  | Superblock_advance (oid, v) -> (
    match Oid_map.find_opt oid t.flushed with
    | None -> error s "superblock advance without a completed flush"
    | Some f when v > f -> error s "superblock advance ahead of flushed v%d" f
    | Some _ -> (
      match Oid_map.find_opt oid t.stable_floor with
      | Some fl when v < fl -> error s "superblock regresses from v%d" fl
      | Some _ | None ->
        Ok { t with stable_floor = Oid_map.add oid v t.stable_floor }))
  | Crash -> Ok (crash t)

(* The [persistent ⊆ ephemeral]-style invariant (cf. verified-betrfs
   DiskLog's SupersedesDisk): what the superblock claims never exceeds
   what has been flushed, and what has been flushed never exceeds what
   was acked — the persistent image is always a prefix (version-wise)
   of the ephemeral contract. *)
let check t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let bad =
    Oid_map.fold
      (fun oid fl acc ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match Oid_map.find_opt oid t.flushed with
          | Some f when fl <= f -> acc
          | Some f ->
            err "invariant: superblock v%d of %a ahead of flushed v%d" fl
              Ids.Oid.pp oid f
          | None ->
            err "invariant: superblock v%d of %a without a flush" fl Ids.Oid.pp
              oid))
      t.stable_floor (Ok ())
  in
  match bad with
  | Error _ -> bad
  | Ok () ->
    Oid_map.fold
      (fun oid f acc ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match Oid_map.find_opt oid t.acked with
          | Some a when f <= a -> acc
          | Some a ->
            err "invariant: flushed v%d of %a ahead of acked v%d" f Ids.Oid.pp
              oid a
          | None ->
            err "invariant: flushed v%d of %a never acked" f Ids.Oid.pp oid))
      t.flushed (Ok ())

let persistent t = Oid_map.bindings t.acked

(* Whether a recovered image may legitimately hold [version] of [oid].
   The acked version itself always may (and must).  A *newer* version
   may only appear if some transaction that wrote it reached its log
   extension: its COMMIT record can be durable — e.g. inside a torn
   prefix — even though the ack never fired.  Anything else (a stale
   version, or a write of a killed/aborted/running transaction) must
   not survive. *)
let may_survive t oid version =
  (match Oid_map.find_opt oid t.acked with
  | Some a -> version = a
  | None -> false)
  || Tid_map.exists
       (fun _ tx ->
         (match tx.phase with
         | Log_extended | Acked -> true
         | Running | Aborted | Killed -> false)
         &&
         match Oid_map.find_opt oid tx.writes with
         | Some v -> v = version
         | None -> false)
       t.txs

let equal_tx a b = a.phase = b.phase && Oid_map.equal ( = ) a.writes b.writes

let equal a b =
  Tid_map.equal equal_tx a.txs b.txs
  && Oid_map.equal ( = ) a.acked b.acked
  && Oid_map.equal ( = ) a.flushed b.flushed
  && Oid_map.equal ( = ) a.stable_floor b.stable_floor

let num_txs t = Tid_map.cardinal t.txs
