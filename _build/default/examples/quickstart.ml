(* Quickstart: run an ephemeral-logging simulation with the paper's
   standard workload and print the headline statistics.

     dune exec examples/quickstart.exe

   The pieces: a Policy describes the generation chain; an
   Experiment.config wires the workload (§3 of the paper: transaction
   mix, arrival rate, flush drives, runtime); Experiment.run executes
   the event-driven simulation and returns the measurements the
   paper's evaluation reports. *)

open El_model

let () =
  (* Two generations of 18 and 16 blocks — the paper's Figure 4
     optimum for the 5% mix — with recirculation enabled. *)
  let policy = El_core.Policy.default ~generation_sizes:[| 18; 16 |] in

  (* 95% short transactions (1 s, 2 updates), 5% long (10 s, 4
     updates), arriving at 100 TPS for 60 simulated seconds. *)
  let mix = El_workload.Mix.short_long ~long_fraction:0.05 in
  let config =
    {
      (El_harness.Experiment.default_config
         ~kind:(El_harness.Experiment.Ephemeral policy) ~mix)
      with
      El_harness.Experiment.runtime = Time.of_sec 60;
    }
  in

  let r = El_harness.Experiment.run config in

  Printf.printf "ephemeral logging, 60 simulated seconds at 100 TPS\n\n";
  Printf.printf "  log size               %d blocks (generations 18+16)\n"
    r.El_harness.Experiment.total_blocks;
  Printf.printf "  log bandwidth          %.2f block writes/s (%s per gen)\n"
    r.El_harness.Experiment.log_write_rate
    (String.concat "+"
       (Array.to_list
          (Array.map string_of_int r.El_harness.Experiment.log_writes_per_gen)));
  Printf.printf "  LOT+LTT peak memory    %d bytes\n"
    r.El_harness.Experiment.peak_memory_bytes;
  Printf.printf "  transactions           %d started, %d committed, %d killed\n"
    r.El_harness.Experiment.started r.El_harness.Experiment.committed
    r.El_harness.Experiment.killed;
  Printf.printf "  updates flushed        %d (mean seek distance %.0f oids)\n"
    r.El_harness.Experiment.flushes_completed
    r.El_harness.Experiment.flush_mean_distance;
  Printf.printf "  mean commit latency    %.1f ms (group commit)\n"
    (r.El_harness.Experiment.commit_latency_mean *. 1000.0);
  Printf.printf "  records forwarded      %d, recirculated %d\n"
    r.El_harness.Experiment.forwarded_records
    r.El_harness.Experiment.recirculated_records;
  Printf.printf "\nno checkpoints were taken, and no transaction was killed: %s\n"
    (if r.El_harness.Experiment.feasible then "the log is large enough"
     else "the log is TOO SMALL")
