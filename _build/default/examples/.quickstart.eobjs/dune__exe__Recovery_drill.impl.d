examples/recovery_drill.ml: El_core El_harness El_model El_recovery El_workload List Printf Time
