examples/banking_mix.ml: El_core El_harness El_model El_workload List Printf Time
