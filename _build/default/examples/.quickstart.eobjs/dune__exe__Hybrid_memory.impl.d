examples/hybrid_memory.ml: El_core El_harness El_model El_workload Printf Time
