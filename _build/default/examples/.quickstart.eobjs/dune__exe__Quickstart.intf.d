examples/quickstart.mli:
