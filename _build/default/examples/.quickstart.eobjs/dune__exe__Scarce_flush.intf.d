examples/scarce_flush.mli:
