examples/quickstart.ml: Array El_core El_harness El_model El_workload Printf String Time
