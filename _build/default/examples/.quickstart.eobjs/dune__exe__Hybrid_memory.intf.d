examples/hybrid_memory.mli:
