examples/scarce_flush.ml: El_core El_harness El_model El_workload List Printf Time
