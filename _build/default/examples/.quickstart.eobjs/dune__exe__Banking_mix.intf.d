examples/banking_mix.mli:
