(* The EL-FW hybrid of §6: trading bandwidth for main memory.

   Plain EL keeps an in-memory cell for every non-garbage log record:
   a transaction that updates hundreds of objects pins hundreds of
   cells.  The hybrid keeps one pointer per transaction (its oldest
   record) and, when that record reaches a queue head, rewrites the
   whole transaction at the next queue's tail.  Memory collapses to
   FW's 22 bytes per transaction (plus flush bookkeeping); bandwidth
   pays for the wholesale rewrites.

     dune exec examples/hybrid_memory.exe
*)

open El_model
module Experiment = El_harness.Experiment

(* Wide transactions: each updates 10-40 objects. *)
let wide_mix =
  El_workload.Mix.create
    [
      El_workload.Tx_type.make ~name:"bulk-update" ~probability:0.8
        ~duration:(Time.of_sec 2) ~num_records:10 ~record_size:100;
      El_workload.Tx_type.make ~name:"report-build" ~probability:0.2
        ~duration:(Time.of_sec 8) ~num_records:40 ~record_size:100;
    ]

let config kind =
  {
    (Experiment.default_config ~kind ~mix:wide_mix) with
    Experiment.runtime = Time.of_sec 120;
    arrival_rate = 30.0;
    num_objects = 1_000_000;
    flush_transfer = Time.of_ms 10;
  }

let describe name (r : Experiment.result) =
  Printf.printf "  %-18s %6d B peak RAM   %7.2f log writes/s   %5d blocks   kills %d\n"
    name r.Experiment.peak_memory_bytes r.Experiment.log_write_rate
    r.Experiment.total_blocks r.Experiment.killed

let () =
  print_endline
    "wide-update workload: 30 TPS, 80% x10-update / 20% x40-update\n";
  let el =
    Experiment.run
      (config
         (Experiment.Ephemeral (El_core.Policy.default ~generation_sizes:[| 56; 48 |])))
  in
  (* The hybrid reclaims space at whole-transaction granularity, so it
     needs a somewhat roomier ring to keep every transaction alive. *)
  let hybrid = Experiment.run (config (Experiment.Hybrid [| 64; 64 |])) in
  describe "ephemeral" el;
  describe "EL-FW hybrid" hybrid;
  (match hybrid.Experiment.hybrid_stats with
  | Some s ->
    Printf.printf
      "\n  hybrid regenerated %d transactions (%d records rewritten wholesale)\n"
      s.El_core.Hybrid_manager.regenerations
      s.El_core.Hybrid_manager.regenerated_records
  | None -> ());
  Printf.printf
    "\n  memory: hybrid uses %.1fx less RAM than EL on this workload --\n\
    \  Section 6's prediction ('can drastically reduce main memory\n\
    \  consumption if each transaction updates many objects').  The costs\n\
    \  appear as wholesale rewrites and a roomier ring: squeeze the hybrid\n\
    \  into EL's disk budget and it starts killing transactions.\n"
    (float_of_int el.Experiment.peak_memory_bytes
    /. float_of_int (max 1 hybrid.Experiment.peak_memory_bytes))
