(* Banking workload: the mixed-lifetime scenario that motivates the
   paper (§1 — "transactions of widely varying lifetimes may exist
   simultaneously in a system").

   A payment system processes a stream of sub-second card payments
   while, every so often, a lengthy settlement batch reconciles
   accounts for tens of seconds.  Under traditional firewall logging,
   one settlement batch freezes log reclamation for its whole life:
   either the log is provisioned for the worst case or the batch is
   killed, System R style.  Ephemeral logging segments the log so that
   payments die in the young generation while only the settlement's
   records migrate onward — and the generation split is a space/
   bandwidth dial, which this example sweeps.

     dune exec examples/banking_mix.exe
*)

open El_model
module Experiment = El_harness.Experiment
module Min_space = El_harness.Min_space

let payments_and_settlements =
  El_workload.Mix.create
    [
      (* card payments: 300 ms, 2 updated accounts *)
      El_workload.Tx_type.make ~name:"payment" ~probability:0.97
        ~duration:(Time.of_ms 300) ~num_records:2 ~record_size:120;
      (* settlement batches: 30 s, 12 updated accounts *)
      El_workload.Tx_type.make ~name:"settlement" ~probability:0.03
        ~duration:(Time.of_sec 30) ~num_records:12 ~record_size:120;
    ]

let base kind =
  {
    (Experiment.default_config ~kind ~mix:payments_and_settlements) with
    Experiment.runtime = Time.of_sec 120;
    arrival_rate = 80.0;
  }

let () =
  print_endline "banking workload: 97% 0.3s payments, 3% 30s settlements\n";
  Printf.printf
    "searching for the minimum log of each scheme (no transaction killed)...\n%!";
  let fw_blocks, fw = Min_space.min_fw (base (Experiment.Firewall 1024)) in
  Printf.printf "\n  %-22s %6s %10s %9s\n" "scheme" "blocks" "writes/s" "RAM (B)";
  Printf.printf "  %-22s %6d %10.2f %9d\n" "firewall" fw_blocks
    fw.Experiment.log_write_rate fw.Experiment.peak_memory_bytes;
  (* EL frontier: for each young-generation size, the smallest old
     generation that kills nobody.  Bigger gen 0 absorbs more payments
     before they are forwarded: more space, less bandwidth. *)
  let make_policy sizes = El_core.Policy.default ~generation_sizes:sizes in
  List.iter
    (fun g0 ->
      match
        Min_space.min_el_last_gen (base (Experiment.Firewall 64)) ~make_policy
          ~leading:[| g0 |] ~hi:512
      with
      | Some (g1, r) ->
        Printf.printf "  %-22s %6d %10.2f %9d\n"
          (Printf.sprintf "ephemeral (%d+%d)" g0 g1)
          (g0 + g1) r.Experiment.log_write_rate r.Experiment.peak_memory_bytes
      | None ->
        Printf.printf "  ephemeral (g0=%d)      infeasible\n" g0)
    [ 6; 10; 16 ];
  Printf.printf
    "\nthe firewall must reserve enough disk for a whole 30 s settlement's\n\
     worth of payment traffic (%d blocks here); EL holds the same workload\n\
     in a tenth of the space, and the generation-0 size dials bandwidth\n\
     against space.  No checkpointing, no killed settlements.\n"
    fw_blocks
