(* Scarce flushing bandwidth: the §4 stress test and its
   negative-feedback stability argument.

   Committed updates are flushed to the stable database by an array of
   drives, each picking the pending object nearest its arm (smallest
   wrapped oid distance).  When the flush service rate barely exceeds
   the update rate, a backlog builds — and a bigger backlog gives the
   scheduler more choice, so seeks get SHORTER and the effective
   service rate rises.  The system stabilises instead of collapsing,
   with EL absorbing the in-flight updates in a few extra log blocks.

     dune exec examples/scarce_flush.exe
*)

open El_model
module Experiment = El_harness.Experiment

let run ~transfer_ms =
  let policy = El_core.Policy.default ~generation_sizes:[| 20; 16 |] in
  let mix = El_workload.Mix.short_long ~long_fraction:0.05 in
  let cfg =
    {
      (Experiment.default_config ~kind:(Experiment.Ephemeral policy) ~mix) with
      Experiment.runtime = Time.of_sec 120;
      flush_transfer = Time.of_ms transfer_ms;
    }
  in
  (transfer_ms, Experiment.run cfg)

let () =
  print_endline
    "flush pressure sweep: 10 drives, update load ~210/s, varying per-flush\n\
     transfer time (capacity = 10 drives / transfer time)\n";
  Printf.printf "%12s %12s %14s %12s %16s %10s\n" "transfer" "capacity/s"
    "flushes done" "backlog max" "mean oid seek" "log w/s";
  List.iter
    (fun transfer_ms ->
      let _, r = run ~transfer_ms in
      Printf.printf "%10d ms %12.0f %14d %12d %16.0f %10.2f\n" transfer_ms
        (10.0 /. (float_of_int transfer_ms /. 1000.0))
        r.Experiment.flushes_completed r.Experiment.flush_backlog_peak
        r.Experiment.flush_mean_distance r.Experiment.log_write_rate)
    [ 15; 25; 35; 45 ];
  print_endline
    "\nreading the table: as capacity falls toward the ~210 updates/s load\n\
     (45 ms => 222/s), the backlog grows and the mean seek distance drops\n\
     sharply -- the locality feedback of Section 4.  The paper's numbers:\n\
     235k mean distance at 25 ms vs 109k at 45 ms."
