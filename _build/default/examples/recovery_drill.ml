(* Recovery drill: crash the database mid-flight and bring it back.

   The paper's recovery story (§4): because ephemeral logging keeps
   the log tiny, the whole log fits in memory after a crash and a
   single pass restores the most recent committed state — no
   checkpoints, no two-pass undo/redo.  This example crashes a
   simulated system at several points, runs the single-pass recovery
   over exactly what was durable, and audits the result against the
   ground truth the simulator tracked.

     dune exec examples/recovery_drill.exe
*)

open El_model
module Experiment = El_harness.Experiment
module Recovery = El_recovery.Recovery

let () =
  let policy = El_core.Policy.default ~generation_sizes:[| 18; 14 |] in
  let mix = El_workload.Mix.short_long ~long_fraction:0.05 in
  let cfg =
    {
      (Experiment.default_config ~kind:(Experiment.Ephemeral policy) ~mix) with
      Experiment.runtime = Time.of_sec 90;
      (* a few aborts, to prove they never resurface *)
      abort_fraction = 0.02;
    }
  in
  print_endline "crash drill: 100 TPS, 32-block log, crashes at 15/45/75 s\n";
  Printf.printf "%10s %10s %12s %12s %10s %8s\n" "crash at" "scanned"
    "committed" "redo applied" "stale" "audit";
  List.iter
    (fun seconds ->
      let _result, recovery, audit =
        Experiment.run_with_crash cfg ~crash_at:(Time.of_sec seconds)
      in
      Printf.printf "%9ds %10d %12d %12d %10d %8s\n" seconds
        recovery.Recovery.records_scanned
        (List.length recovery.Recovery.committed_tids)
        recovery.Recovery.redo_applied recovery.Recovery.redo_skipped
        (if audit.Recovery.ok then "OK" else "FAILED"))
    [ 15; 45; 75 ];
  print_endline
    "\n'scanned' is every record durable at the crash instant, including\n\
     stale copies left behind by recirculation -- a real scan cannot tell\n\
     them apart, so recovery orders updates by version instead of by\n\
     position.  'redo applied' is the handful of committed updates that\n\
     had not yet been flushed to the stable database: the whole log is a\n\
     few dozen 2 KB blocks, which is the paper's sub-second recovery\n\
     argument.";
  (* Show that the 32-block log really is the whole recovery input. *)
  let _result, recovery, audit =
    Experiment.run_with_crash cfg ~crash_at:(Time.of_sec 60)
  in
  assert audit.Recovery.ok;
  Printf.printf
    "\nat 60 s the durable log held %d records (~%d KB): small enough to\n\
     read into RAM in one I/O burst and replay in microseconds.\n"
    recovery.Recovery.records_scanned
    (recovery.Recovery.records_scanned * 100 / 1024 * 1)
