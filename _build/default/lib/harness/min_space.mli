(** Minimum-disk-space search.

    The paper obtained its space figures by re-running simulations with
    less and less disk space "until we observed transactions being
    killed" (§4); the reported figure is the smallest configuration
    that kills nobody.  This module automates that procedure: a
    configuration is {e feasible} when the run finishes with no kills,
    no forced evictions and no overload, and feasibility is monotone
    in the log size (more space never hurts), so binary search
    applies. *)

open El_model

val min_feasible :
  probe:(int -> Experiment.result) ->
  lo:int ->
  hi:int ->
  (int * Experiment.result) option
(** [min_feasible ~probe ~lo ~hi] is the smallest [n] in [lo, hi]
    whose probe is feasible, with that probe's result; [None] if even
    [hi] is infeasible.  Assumes monotone feasibility. *)

val min_fw : Experiment.config -> int * Experiment.result
(** Minimum single-log size for the firewall scheme under the given
    workload (the [kind] field of the config is ignored).  Uses a
    generous sizing run to bracket the search.  Raises [Failure] if no
    size up to 16384 blocks suffices. *)

val min_el_last_gen :
  Experiment.config ->
  make_policy:(int array -> El_core.Policy.t) ->
  leading:int array ->
  hi:int ->
  (int * Experiment.result) option
(** [min_el_last_gen cfg ~make_policy ~leading ~hi] finds the smallest
    last-generation size such that [make_policy (leading @ [n])] is
    feasible, searching n in [gap+1, hi]. *)

val min_el_two_gen :
  Experiment.config ->
  make_policy:(int array -> El_core.Policy.t) ->
  g0_candidates:int list ->
  hi:int ->
  (int array * Experiment.result) option
(** Minimises total blocks over two-generation configurations,
    trying each first-generation size in [g0_candidates] and binary
    -searching the second.  Returns the best [sizes] found and its
    run result. *)

val runtime_scale : Experiment.config -> Time.t -> Experiment.config
(** Shortens (or lengthens) a config's runtime — used by tests and
    quick modes; exposed here so callers scale consistently. *)
