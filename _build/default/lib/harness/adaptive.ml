open El_model
module Policy = El_core.Policy

type step = {
  epoch : int;
  sizes : int array;
  feasible : bool;
  healthy : bool;
  killed : int;
  evictions : int;
  bandwidth : float;
}

type outcome = {
  final_sizes : int array;
  final_result : Experiment.result;
  trajectory : step list;
  epochs_used : int;
  converged : bool;
}

let default_policy sizes = Policy.default ~generation_sizes:sizes

let run_epoch cfg make_policy sizes =
  Experiment.run
    { cfg with Experiment.kind = Experiment.Ephemeral (make_policy sizes) }

(* One controller pass: walk the generations oldest-first (the last
   generation is where kills bite, so it is the most delicate dial)
   shrinking each unfrozen generation until it pushes back. *)
let tune cfg ?(make_policy = default_policy) ~initial ?(max_epochs = 64)
    ?(shrink_step = 2) ?bandwidth_slack () =
  if Array.length initial = 0 then invalid_arg "Adaptive.tune: no generations";
  if shrink_step <= 0 then invalid_arg "Adaptive.tune: non-positive step";
  let floor_size = Params.head_tail_gap + 1 in
  let sizes = Array.copy initial in
  let frozen = Array.make (Array.length initial) false in
  let trajectory = ref [] in
  let epoch = ref 0 in
  let best = ref None in
  let record sizes ~healthy (r : Experiment.result) =
    incr epoch;
    trajectory :=
      {
        epoch = !epoch;
        sizes = Array.copy sizes;
        feasible = r.Experiment.feasible;
        healthy;
        killed = r.Experiment.killed;
        evictions = r.Experiment.evictions;
        bandwidth = r.Experiment.log_write_rate;
      }
      :: !trajectory
  in
  let accept sizes (r : Experiment.result) =
    best := Some (Array.copy sizes, r)
  in
  (* Baseline epoch: the initial configuration must be healthy. *)
  let baseline = run_epoch cfg make_policy sizes in
  record sizes ~healthy:baseline.Experiment.feasible baseline;
  if not baseline.Experiment.feasible then
    invalid_arg "Adaptive.tune: initial configuration is already unhealthy";
  accept sizes baseline;
  let bandwidth_budget =
    Option.map
      (fun slack -> baseline.Experiment.log_write_rate *. slack)
      bandwidth_slack
  in
  let healthy (r : Experiment.result) =
    r.Experiment.feasible
    &&
    match bandwidth_budget with
    | None -> true
    | Some budget -> r.Experiment.log_write_rate <= budget
  in
  let all_frozen () = Array.for_all (fun b -> b) frozen in
  (* Shrink generations round-robin, oldest first. *)
  let order =
    List.init (Array.length sizes) (fun i -> Array.length sizes - 1 - i)
  in
  while (not (all_frozen ())) && !epoch < max_epochs do
    List.iter
      (fun g ->
        if (not frozen.(g)) && !epoch < max_epochs then begin
          if sizes.(g) <= floor_size then frozen.(g) <- true
          else begin
            let attempt = Array.copy sizes in
            attempt.(g) <- max floor_size (sizes.(g) - shrink_step);
            let r = run_epoch cfg make_policy attempt in
            let ok = healthy r in
            record attempt ~healthy:ok r;
            if ok then begin
              sizes.(g) <- attempt.(g);
              accept attempt r
            end
            else
              (* drew blood (kills, or blew the bandwidth budget):
                 restore and freeze this generation *)
              frozen.(g) <- true
          end
        end)
      order
  done;
  match !best with
  | None -> assert false  (* the baseline was feasible *)
  | Some (final_sizes, final_result) ->
    {
      final_sizes;
      final_result;
      trajectory = List.rev !trajectory;
      epochs_used = !epoch;
      converged = all_frozen ();
    }
