(** Adaptive generation sizing — the capability §6 wishes for:
    "Ideally, we would like an adaptable version of EL that
    dynamically chooses the number and sizes of generations itself",
    because the paper "cannot offer any provably correct analytical
    methods" to the DBA who must configure them.

    This controller discovers generation sizes by observation, the way
    an autonomous DBA would: starting from a deliberately generous
    configuration it repeatedly runs an epoch of the workload, shrinks
    a generation while the system stays healthy (no kills, no
    evictions, no overload), and backs off — freezing that generation
    — as soon as shrinking draws blood.  It converges to a
    near-minimal configuration without any analytical model of the
    workload, and reports the whole trajectory so the convergence can
    be inspected and benchmarked. *)

type step = {
  epoch : int;
  sizes : int array;  (** configuration tried in this epoch *)
  feasible : bool;  (** no kills, evictions or overload *)
  healthy : bool;
      (** the controller's verdict: feasible {e and} within the
          bandwidth budget *)
  killed : int;
  evictions : int;
  bandwidth : float;  (** log block writes/s at this configuration *)
}

type outcome = {
  final_sizes : int array;  (** smallest healthy configuration found *)
  final_result : Experiment.result;
  trajectory : step list;  (** in epoch order *)
  epochs_used : int;
  converged : bool;  (** every generation frozen before the budget ran out *)
}

val tune :
  Experiment.config ->
  ?make_policy:(int array -> El_core.Policy.t) ->
  initial:int array ->
  ?max_epochs:int ->
  ?shrink_step:int ->
  ?bandwidth_slack:float ->
  unit ->
  outcome
(** [tune cfg ~initial ()] runs the controller.  [cfg]'s [kind] field
    is ignored (replaced per epoch); its runtime is one epoch.
    [make_policy] defaults to the paper's policy (recirculation on);
    [max_epochs] defaults to 64; [shrink_step] (blocks removed per
    healthy epoch, per generation) defaults to 2.

    [bandwidth_slack], when given, bounds how much log bandwidth the
    controller may spend for its space savings: a configuration whose
    write rate exceeds [slack x] the initial epoch's is treated as
    unhealthy even if nothing was killed.  Without it the controller
    minimises space alone and will happily recirculate furiously --
    EL's own trade-off (Fig. 7) made into a knob.

    Raises [Invalid_argument] if [initial] is not a feasible starting
    point for the controller to shrink. *)
