lib/harness/experiment.mli: El_core El_disk El_model El_recovery El_sim El_workload Time
