lib/harness/paper.ml: Array El_core El_model El_workload Experiment List Min_space Params Time
