lib/harness/experiment.ml: Array El_core El_disk El_metrics El_model El_recovery El_sim El_workload Option Params Time
