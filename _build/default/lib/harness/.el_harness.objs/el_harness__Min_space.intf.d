lib/harness/min_space.mli: El_core El_model Experiment Time
