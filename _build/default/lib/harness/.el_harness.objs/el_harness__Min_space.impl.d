lib/harness/min_space.ml: Array El_core El_model Experiment List Params
