lib/harness/adaptive.ml: Array El_core El_model Experiment List Option Params
