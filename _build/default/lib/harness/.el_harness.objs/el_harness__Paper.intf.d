lib/harness/paper.mli: El_model El_workload Experiment Time
