lib/harness/adaptive.mli: El_core Experiment
