open El_model

let min_feasible ~probe ~lo ~hi =
  if lo > hi then invalid_arg "Min_space.min_feasible: empty range";
  let result_at_hi = probe hi in
  if not result_at_hi.Experiment.feasible then None
  else begin
    (* Invariant: [best] is feasible at [best_n]; everything below
       [lo'] is known infeasible. *)
    let rec refine lo' best_n best =
      if lo' >= best_n then Some (best_n, best)
      else begin
        let mid = (lo' + best_n) / 2 in
        let r = probe mid in
        if r.Experiment.feasible then refine lo' mid r
        else refine (mid + 1) best_n best
      end
    in
    refine lo hi result_at_hi
  end

let probe_fw cfg n =
  Experiment.run { cfg with Experiment.kind = Experiment.Firewall n }

let min_fw cfg =
  (* A generous run's peak occupancy brackets the answer: the log can
     never need fewer blocks than it ever simultaneously occupied. *)
  let rec bracket size =
    if size > 16384 then failwith "Min_space.min_fw: workload needs >16384 blocks"
    else begin
      let r = probe_fw cfg size in
      if not r.Experiment.feasible then bracket (size * 4)
      else
        let peak =
          match r.Experiment.fw_stats with
          | Some s -> s.El_core.Fw_manager.peak_occupancy
          | None -> assert false
        in
        (* The paper's k-block gap must stay free on top of the peak. *)
        (peak, min 16384 (peak + 8))
    end
  in
  let peak, hi = bracket 512 in
  match min_feasible ~probe:(probe_fw cfg) ~lo:(max 4 (peak - 2)) ~hi with
  | Some best -> best
  | None -> failwith "Min_space.min_fw: bracketing failed"

let probe_el cfg ~make_policy sizes =
  Experiment.run
    { cfg with Experiment.kind = Experiment.Ephemeral (make_policy sizes) }

let min_el_last_gen cfg ~make_policy ~leading ~hi =
  let probe n = probe_el cfg ~make_policy (Array.append leading [| n |]) in
  let lo = Params.head_tail_gap + 1 in
  min_feasible ~probe ~lo ~hi

let min_el_two_gen cfg ~make_policy ~g0_candidates ~hi =
  let best = ref None in
  let consider sizes result =
    let total = Array.fold_left ( + ) 0 sizes in
    let better =
      match !best with
      | None -> true
      | Some (best_sizes, best_total, _) ->
        (* Tie-break toward a larger first generation: it absorbs more
           records before they are forwarded, so at equal total space
           it costs less bandwidth (and matches the paper's choice of
           18+16 over 16+18). *)
        total < best_total
        || (total = best_total && sizes.(0) > (best_sizes : int array).(0))
    in
    if better then best := Some (sizes, total, result)
  in
  List.iter
    (fun g0 ->
      match min_el_last_gen cfg ~make_policy ~leading:[| g0 |] ~hi with
      | Some (g1, result) -> consider [| g0; g1 |] result
      | None -> ())
    g0_candidates;
  match !best with
  | Some (sizes, _, result) -> Some (sizes, result)
  | None -> None

let runtime_scale cfg runtime = { cfg with Experiment.runtime = runtime }
