(** The event-driven simulation engine.

    An engine owns a simulated clock, an event queue and a seeded
    pseudo-random state.  Components schedule closures at absolute or
    relative simulated times; {!run} dispatches them in time order
    (FIFO among equals) while advancing the clock.  Everything is
    deterministic for a given seed, which the reproduction harness
    relies on. *)

open El_model

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose clock reads {!Time.zero}.
    The default seed is 42. *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Random.State.t
(** The engine's private random state; all stochastic choices in a
    simulation must draw from it so that runs are reproducible. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the simulated past. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_after t delay f] is
    [schedule_at t (Time.add (now t) delay) f]. *)

val run : t -> until:Time.t -> unit
(** Dispatches events in order until the queue is empty or the next
    event is strictly later than [until]; the clock finishes at
    [until] (or at the last event, whichever is later was reached). *)

val run_all : t -> unit
(** Dispatches every remaining event. *)

val step : t -> bool
(** Dispatches a single event; [false] if the queue was empty. *)

val events_dispatched : t -> int
(** Number of events dispatched so far (an activity measure used by
    tests and benchmarks). *)

val pending_events : t -> int
