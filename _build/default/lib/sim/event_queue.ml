type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* The heap is stored in [heap.(0 .. size-1)]; unused slots may hold
   stale entries, which is harmless because only live slots are read. *)

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let new_cap = if cap = 0 then 64 else cap * 2 in
    let heap = Array.make new_cap entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.size && precedes q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && precedes q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
