lib/sim/engine.mli: El_model Random Time
