lib/sim/engine.ml: El_model Event_queue Random Time
