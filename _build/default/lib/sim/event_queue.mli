(** A stable priority queue of timestamped items.

    This is the core data structure of the event-driven simulator: a
    binary min-heap keyed by [(time, sequence)].  The sequence number
    is assigned on insertion, so two items scheduled for the same
    instant are dequeued in insertion order — this FIFO tie-breaking
    makes simulations fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time x] inserts [x] with priority [time].  Amortised
    O(log n). *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the item with the smallest time (insertion
    order breaks ties), or [None] if the queue is empty. *)

val peek_time : 'a t -> int option
(** The time of the next item without removing it. *)
