open El_model

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  rng : Random.State.t;
  mutable dispatched : int;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    clock = Time.zero;
    rng = Random.State.make [| seed |];
    dispatched = 0;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t time f =
  if Time.(time < t.clock) then
    invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time:(Time.to_us time) f

let schedule_after t delay f = schedule_at t (Time.add t.clock delay) f

let dispatch t time f =
  t.clock <- Time.of_us time;
  t.dispatched <- t.dispatched + 1;
  f ()

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    dispatch t time f;
    true

let run t ~until =
  let limit = Time.to_us until in
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= limit ->
      (match Event_queue.pop t.queue with
      | Some (time, f) ->
        dispatch t time f;
        loop ()
      | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  if Time.(t.clock < until) then t.clock <- until

let run_all t = while step t do () done
let events_dispatched t = t.dispatched
let pending_events t = Event_queue.length t.queue
