lib/core/fw_manager.ml: Array El_disk El_metrics El_model El_sim Ids List Params Time
