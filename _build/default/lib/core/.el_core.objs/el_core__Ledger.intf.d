lib/core/ledger.mli: Cell El_model Ids Time
