lib/core/policy.ml: Array El_model Params Printf Time
