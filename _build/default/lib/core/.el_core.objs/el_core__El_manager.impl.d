lib/core/el_manager.ml: Array Cell El_disk El_metrics El_model El_sim Ids Ledger List Log_record Params Policy Printf Time
