lib/core/el_manager.mli: El_disk El_model El_sim Ids Ledger Log_record Policy Time
