lib/core/hybrid_manager.mli: El_disk El_model El_sim Ids Time
