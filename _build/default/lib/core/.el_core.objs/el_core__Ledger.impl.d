lib/core/ledger.ml: Cell El_metrics El_model Ids List Log_record Params Time
