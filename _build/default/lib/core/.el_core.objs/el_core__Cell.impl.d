lib/core/cell.ml: El_model Ids List Log_record Time
