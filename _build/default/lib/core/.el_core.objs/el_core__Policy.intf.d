lib/core/policy.mli: El_model
