lib/core/fw_manager.mli: El_model El_sim Ids Time
