lib/core/hybrid_manager.ml: Array El_disk El_manager El_metrics El_model El_sim Ids List Params Printf Time
