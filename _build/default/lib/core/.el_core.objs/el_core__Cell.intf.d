lib/core/cell.mli: El_model Ids Log_record Time
