lib/recovery/recovery.ml: El_core El_disk El_model El_sim Format Ids List Log_record Time
