lib/recovery/timing.ml: El_model Format List Log_record Params Recovery Time
