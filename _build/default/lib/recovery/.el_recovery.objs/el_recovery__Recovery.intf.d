lib/recovery/recovery.mli: El_core El_disk El_model El_sim Format Ids Log_record Time
