lib/recovery/timing.mli: El_model Format Recovery Time
