(** Recovery-time estimation.

    The paper does not simulate recovery but argues (§4, §6) that
    recovery time is proportional to the amount of log information,
    that EL's 28 × 2 KB blocks "can all fit in the main memory of many
    workstations", and that "recovery in less than a second may be
    feasible".  This module turns those claims into numbers with a
    simple disk/CPU cost model:

    - one initial positioning delay per contiguous log region (a
      generation is one contiguous circular array on disk);
    - a per-block streaming transfer time;
    - a per-record CPU cost for the single redo pass.

    The defaults are deliberately conservative early-1990s values in
    the spirit of the paper's 15 ms block writes. *)

open El_model

type cost_model = {
  positioning : Time.t;  (** seek + rotation to reach a log region *)
  per_block : Time.t;  (** streaming transfer of one 2 KB block *)
  per_record : Time.t;  (** CPU to examine/redo one record *)
}

val default : cost_model
(** 15 ms positioning, 1 ms per block, 20 µs per record. *)

val single_pass :
  ?model:cost_model -> regions:int -> blocks:int -> records:int -> unit -> Time.t
(** Time to read [blocks] spread over [regions] contiguous areas and
    process [records] in one pass — EL's recovery, and this library's
    {!Recovery.recover}. *)

val estimate : ?model:cost_model -> Recovery.image -> Recovery.result -> Time.t
(** Estimate for an actual recovery: regions = 1 + generations is not
    recoverable from the image, so a single region per 2 KB-block run
    is approximated as [regions = 2] (stable log area + one wrap). *)

val fw_two_pass :
  ?model:cost_model -> blocks:int -> records:int -> unit -> Time.t
(** The traditional two-pass (undo then redo) method the paper
    contrasts with (§4): the span is read twice, records are examined
    twice. *)

val pp : Format.formatter -> Time.t -> unit
(** Pretty-print an estimate with millisecond resolution. *)
