lib/model/params.ml: Time
