lib/model/params.mli: Time
