lib/model/time.ml: Float Format Int Stdlib
