lib/model/log_record.ml: Format Ids Time
