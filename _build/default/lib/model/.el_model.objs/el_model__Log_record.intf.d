lib/model/log_record.mli: Format Ids Time
