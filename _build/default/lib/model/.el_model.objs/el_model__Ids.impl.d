lib/model/ids.ml: Format Hashtbl Int
