lib/model/ids.mli: Format Hashtbl
