(** Log records.

    The paper distinguishes two kinds of record (§2.1): {e data} log
    records, which chronicle changes to objects, and {e transaction}
    (tx) log records, which mark milestones in a transaction's life
    (BEGIN, COMMIT, ABORT).  We use physical REDO state logging, as
    the paper assumes throughout: a data record carries only the new
    value of the object, represented here by a monotonically
    increasing version number (the payload bytes themselves are
    irrelevant to the algorithms; only their size matters).

    Every record is timestamped at write time so that recovery can
    re-establish temporal order even after recirculation shuffles the
    physical order of the last generation. *)

type kind =
  | Begin
  | Commit
  | Abort
  | Data of { oid : Ids.Oid.t; version : int }

type t = {
  tid : Ids.Tid.t;  (** transaction that wrote the record *)
  kind : kind;
  timestamp : Time.t;  (** simulated time at which it entered the log *)
  size : int;  (** bytes the record occupies inside a disk block *)
}

val data : tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> timestamp:Time.t -> t
val begin_ : tid:Ids.Tid.t -> size:int -> timestamp:Time.t -> t
val commit : tid:Ids.Tid.t -> size:int -> timestamp:Time.t -> t
val abort : tid:Ids.Tid.t -> size:int -> timestamp:Time.t -> t

val is_tx_record : t -> bool
(** [true] for BEGIN/COMMIT/ABORT records, [false] for data records. *)

val oid : t -> Ids.Oid.t option
(** The updated object, for data records. *)

val pp : Format.formatter -> t -> unit
