type kind =
  | Begin
  | Commit
  | Abort
  | Data of { oid : Ids.Oid.t; version : int }

type t = {
  tid : Ids.Tid.t;
  kind : kind;
  timestamp : Time.t;
  size : int;
}

let check_size size =
  if size <= 0 then invalid_arg "Log_record: non-positive size"

let data ~tid ~oid ~version ~size ~timestamp =
  check_size size;
  if version < 0 then invalid_arg "Log_record.data: negative version";
  { tid; kind = Data { oid; version }; timestamp; size }

let begin_ ~tid ~size ~timestamp =
  check_size size;
  { tid; kind = Begin; timestamp; size }

let commit ~tid ~size ~timestamp =
  check_size size;
  { tid; kind = Commit; timestamp; size }

let abort ~tid ~size ~timestamp =
  check_size size;
  { tid; kind = Abort; timestamp; size }

let is_tx_record t =
  match t.kind with
  | Begin | Commit | Abort -> true
  | Data _ -> false

let oid t =
  match t.kind with
  | Data { oid; _ } -> Some oid
  | Begin | Commit | Abort -> None

let pp_kind ppf = function
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Abort -> Format.pp_print_string ppf "ABORT"
  | Data { oid; version } ->
    Format.fprintf ppf "DATA(%a,v%d)" Ids.Oid.pp oid version

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a %a %dB @@%a]@]" Ids.Tid.pp t.tid pp_kind t.kind
    t.size Time.pp t.timestamp
