(** Fixed simulator parameters from §3 of the paper.

    These are the values the paper holds constant across all
    experiments.  They are exposed as ordinary values (not hard-wired
    into the algorithms) so that tests can exercise other settings,
    but the defaults below reproduce the published configuration. *)

val block_payload : int
(** Usable bytes per disk block: 2000 (a 2048-byte block minus 48
    bytes of bookkeeping). *)

val block_raw : int
(** Raw size of a disk block: 2048 bytes. *)

val head_tail_gap : int
(** [k], the minimum number of blocks that must stay free between a
    generation's tail and head: 2. *)

val buffers_per_generation : int
(** Disk-block buffers provided per generation: 4. *)

val tx_record_size : int
(** Bytes for a BEGIN or COMMIT (or ABORT) tx log record: 8. *)

val epsilon : Time.t
(** Delay between a transaction's last data record and its COMMIT
    record: 1 ms. *)

val tau_disk_write : Time.t
(** Time to transfer a buffer to disk at the tail of the log: 15 ms. *)

val num_objects : int
(** Objects in the database: 10^7. *)

val fw_bytes_per_tx : int
(** Main-memory cost the paper charges the firewall method per
    transaction in the system: 22 bytes. *)

val el_bytes_per_tx : int
(** Main-memory cost of ephemeral logging per transaction: 40 bytes. *)

val el_bytes_per_object : int
(** Main-memory cost of ephemeral logging per updated-but-unflushed
    object: 40 bytes. *)
