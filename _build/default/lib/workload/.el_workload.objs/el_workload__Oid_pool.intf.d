lib/workload/oid_pool.mli: El_model Ids Random
