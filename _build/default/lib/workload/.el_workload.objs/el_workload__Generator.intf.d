lib/workload/generator.mli: El_metrics El_model El_sim Ids Mix Oid_pool Time
