lib/workload/mix.mli: Format Random Tx_type
