lib/workload/generator.ml: El_metrics El_model El_sim Ids List Mix Oid_pool Params Random Time Tx_type
