lib/workload/oid_pool.ml: El_model Ids Random
