lib/workload/tx_type.ml: El_model Format Time
