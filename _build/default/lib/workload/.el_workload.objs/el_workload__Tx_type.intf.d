lib/workload/tx_type.mli: El_model Format Time
