lib/workload/mix.ml: Format List Random Tx_type
