open El_model

type t = {
  name : string;
  probability : float;
  duration : Time.t;
  num_records : int;
  record_size : int;
}

let make ~name ~probability ~duration ~num_records ~record_size =
  if probability < 0.0 then invalid_arg "Tx_type.make: negative probability";
  if Time.(duration <= Time.zero) then
    invalid_arg "Tx_type.make: non-positive duration";
  if num_records <= 0 then invalid_arg "Tx_type.make: no records";
  if record_size <= 0 then invalid_arg "Tx_type.make: non-positive size";
  { name; probability; duration; num_records; record_size }

let short ~probability =
  make ~name:"short" ~probability ~duration:(Time.of_sec 1) ~num_records:2
    ~record_size:100

let long ~probability =
  make ~name:"long" ~probability ~duration:(Time.of_sec 10) ~num_records:4
    ~record_size:100

let record_schedule t ~epsilon =
  if Time.(epsilon >= t.duration) then
    invalid_arg "Tx_type.record_schedule: epsilon >= duration";
  (* Records at j*(T - eps)/N for j = 1..N; the last lands at T - eps. *)
  let window = Time.sub t.duration epsilon in
  let interval = Time.div_int window t.num_records in
  let rec offsets j acc =
    if j = 0 then acc
    else
      let off = if j = t.num_records then window else Time.mul_int interval j in
      offsets (j - 1) (off :: acc)
  in
  offsets t.num_records []

let commit_offset t = t.duration

let pp ppf t =
  Format.fprintf ppf "%s(p=%.2f T=%a n=%d sz=%d)" t.name t.probability
    Time.pp t.duration t.num_records t.record_size
