(** A probability mix over transaction types — the paper's "pdf"
    simulator input. *)

type t

val create : Tx_type.t list -> t
(** Normalises the types' probabilities.  Raises [Invalid_argument]
    on an empty list or if all probabilities are zero. *)

val types : t -> Tx_type.t list

val probability : t -> Tx_type.t -> float
(** Normalised probability of a member type (matched by name). *)

val sample : t -> Random.State.t -> Tx_type.t
(** Draws a type according to the normalised distribution. *)

val short_long : long_fraction:float -> t
(** The paper's standard two-type workload with the given fraction of
    10 s transactions (e.g. 0.05 for the 5 % mix).  Raises
    [Invalid_argument] unless the fraction is within [0, 1]. *)

val expected_updates_per_tx : t -> float
(** Mean number of data records per transaction — multiplied by the
    arrival rate this gives the paper's updates-per-second figures
    (210/s at 5 %, 280/s at 40 %). *)

val expected_bytes_per_tx : t -> tx_record_size:int -> float
(** Mean log payload per transaction including its BEGIN and COMMIT
    records — the basis for estimating log bandwidth. *)

val pp : Format.formatter -> t -> unit
