type t = {
  types : Tx_type.t list;
  normalised : (Tx_type.t * float) list;  (* cumulative upper bounds *)
}

let create types =
  if types = [] then invalid_arg "Mix.create: empty";
  let total = List.fold_left (fun s (ty : Tx_type.t) -> s +. ty.probability) 0.0 types in
  if total <= 0.0 then invalid_arg "Mix.create: zero total probability";
  let _, rev_cumulative =
    List.fold_left
      (fun (acc, out) (ty : Tx_type.t) ->
        let acc = acc +. (ty.probability /. total) in
        (acc, (ty, acc) :: out))
      (0.0, []) types
  in
  { types; normalised = List.rev rev_cumulative }

let types t = t.types

let probability t (ty : Tx_type.t) =
  let total =
    List.fold_left (fun s (x : Tx_type.t) -> s +. x.probability) 0.0 t.types
  in
  match List.find_opt (fun (x : Tx_type.t) -> x.name = ty.name) t.types with
  | Some x -> x.probability /. total
  | None -> invalid_arg "Mix.probability: unknown type"

let sample t rng =
  let u = Random.State.float rng 1.0 in
  let rec pick = function
    | [] -> assert false
    | [ (ty, _) ] -> ty
    | (ty, upper) :: rest -> if u < upper then ty else pick rest
  in
  pick t.normalised

let short_long ~long_fraction =
  if long_fraction < 0.0 || long_fraction > 1.0 then
    invalid_arg "Mix.short_long: fraction outside [0,1]";
  create
    [
      Tx_type.short ~probability:(1.0 -. long_fraction);
      Tx_type.long ~probability:long_fraction;
    ]

let expected gather t =
  let total =
    List.fold_left (fun s (x : Tx_type.t) -> s +. x.probability) 0.0 t.types
  in
  List.fold_left
    (fun s (x : Tx_type.t) -> s +. (x.probability /. total *. gather x))
    0.0 t.types

let expected_updates_per_tx t =
  expected (fun x -> float_of_int x.Tx_type.num_records) t

let expected_bytes_per_tx t ~tx_record_size =
  expected
    (fun x ->
      float_of_int ((x.Tx_type.num_records * x.Tx_type.record_size) + (2 * tx_record_size)))
    t

let pp ppf t =
  Format.fprintf ppf "@[<h>mix{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Tx_type.pp)
    t.types
