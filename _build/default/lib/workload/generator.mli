(** The transaction workload driver (§3, Figure 3).

    Transactions are initiated at regular intervals according to the
    arrival rate (the paper's deterministic, open-loop arrival
    pattern).  Each transaction draws its type from the mix, writes a
    BEGIN record immediately, its N data records at equal intervals of
    (T−ε)/N, and requests commit at T by writing a COMMIT record; it
    then waits for the log manager's group-commit acknowledgement.
    Oids are drawn from an {!Oid_pool} under the no-two-active-writers
    constraint and released when the transaction requests termination
    (or is aborted/killed).

    The generator is connected to a log manager through the {!sink}
    record, and the manager reports kills back through {!kill}. *)

open El_model

(** The face a log manager presents to the workload. *)
type sink = {
  begin_tx : tid:Ids.Tid.t -> expected_duration:Time.t -> unit;
      (** a BEGIN tx record enters the log; [expected_duration] is the
          lifetime hint available to the §6 placement extension *)
  write_data :
    tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit;
      (** a data record enters the log *)
  request_commit : tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit;
      (** a COMMIT record enters the log; [on_ack] fires when it is
          durable (time t₄ of Figure 3) *)
  request_abort : tid:Ids.Tid.t -> unit;
      (** an ABORT record enters the log; all the transaction's
          records become garbage *)
}

type t

(** How transaction initiations are spaced.  The paper uses the
    deterministic pattern ("transactions are initiated at regular
    intervals") and names probabilistic models as future work; the
    Poisson process is provided for studying burstiness. *)
type arrival_process =
  | Deterministic  (** every 1/rate seconds exactly *)
  | Poisson  (** exponential inter-arrival times with mean 1/rate *)

val create :
  El_sim.Engine.t ->
  sink:sink ->
  mix:Mix.t ->
  arrival_rate:float ->
  runtime:Time.t ->
  ?arrival_process:arrival_process ->
  ?epsilon:Time.t ->
  ?abort_fraction:float ->
  num_objects:int ->
  unit ->
  t
(** Schedules the whole arrival process on the engine.  [arrival_rate]
    is transactions per second (100 in the paper); [runtime] bounds
    initiation times; [arrival_process] defaults to [Deterministic];
    [abort_fraction] (default 0) makes that fraction of transactions
    abort at the end of their lifetime instead of committing, for
    fault-injection tests. *)

val kill : t -> Ids.Tid.t -> unit
(** Called by the log manager when it kills a transaction (FW log
    full; EL record reaching the last head with recirculation off; or
    unrecirculatable record).  Cancels the transaction's remaining
    activity and releases its oids.  Idempotent; raises
    [Invalid_argument] for an unknown tid. *)

val oid_pool : t -> Oid_pool.t

(** Outcome counters, final and in-flight. *)

val started : t -> int
val committed : t -> int
(** Transactions whose commit has been acknowledged durable. *)

val aborted : t -> int
val killed : t -> int
val active : t -> int
(** Transactions begun, not yet terminated (commit requested counts as
    terminated, per the paper's footnote 1 definition of active). *)

val awaiting_ack : t -> int
val data_records_written : t -> int

val commit_latency : t -> El_metrics.Running_stat.t
(** Time from commit request (t₃) to acknowledgement (t₄), in
    simulated seconds. *)
