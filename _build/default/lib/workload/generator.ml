open El_model

type sink = {
  begin_tx : tid:Ids.Tid.t -> expected_duration:Time.t -> unit;
  write_data :
    tid:Ids.Tid.t -> oid:Ids.Oid.t -> version:int -> size:int -> unit;
  request_commit : tid:Ids.Tid.t -> on_ack:(Time.t -> unit) -> unit;
  request_abort : tid:Ids.Tid.t -> unit;
}

type tx_state = Running | Commit_wait | Done | Aborted | Killed

type tx = {
  tid : Ids.Tid.t;
  ty : Tx_type.t;
  mutable state : tx_state;
  mutable held_oids : Ids.Oid.t list;
  mutable commit_requested_at : Time.t;
}

type t = {
  engine : El_sim.Engine.t;
  sink : sink;
  pool : Oid_pool.t;
  epsilon : Time.t;
  abort_fraction : float;
  txs : tx Ids.Tid.Table.t;
  mutable next_tid : int;
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable killed : int;
  mutable active : int;
  mutable awaiting_ack : int;
  mutable data_records : int;
  latency : El_metrics.Running_stat.t;
}

let release_oids t tx =
  List.iter (fun oid -> Oid_pool.release t.pool oid) tx.held_oids;
  tx.held_oids <- []

let write_one_data_record t tx =
  match Oid_pool.acquire t.pool (El_sim.Engine.rng t.engine) with
  | None -> ()  (* database fully held: drop the update (stress tests only) *)
  | Some oid ->
    tx.held_oids <- oid :: tx.held_oids;
    let version = Oid_pool.next_version t.pool oid in
    t.data_records <- t.data_records + 1;
    t.sink.write_data ~tid:tx.tid ~oid ~version ~size:tx.ty.Tx_type.record_size

let finish t tx =
  (* End of lifetime: release the write set (the transaction is no
     longer active once it requests termination), then commit or, for
     fault-injection runs, abort. *)
  release_oids t tx;
  let wants_abort =
    t.abort_fraction > 0.0
    && Random.State.float (El_sim.Engine.rng t.engine) 1.0 < t.abort_fraction
  in
  if wants_abort then begin
    tx.state <- Aborted;
    t.active <- t.active - 1;
    t.aborted <- t.aborted + 1;
    t.sink.request_abort ~tid:tx.tid
  end
  else begin
    tx.state <- Commit_wait;
    t.active <- t.active - 1;
    t.awaiting_ack <- t.awaiting_ack + 1;
    tx.commit_requested_at <- El_sim.Engine.now t.engine;
    t.sink.request_commit ~tid:tx.tid ~on_ack:(fun ack_time ->
        if tx.state = Commit_wait then begin
          tx.state <- Done;
          t.awaiting_ack <- t.awaiting_ack - 1;
          t.committed <- t.committed + 1;
          El_metrics.Running_stat.observe t.latency
            (Time.to_sec_f (Time.sub ack_time tx.commit_requested_at))
        end)
  end

let start_tx t mix =
  let tid = Ids.Tid.of_int t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let ty = Mix.sample mix (El_sim.Engine.rng t.engine) in
  let tx =
    {
      tid;
      ty;
      state = Running;
      held_oids = [];
      commit_requested_at = Time.zero;
    }
  in
  Ids.Tid.Table.replace t.txs tid tx;
  t.started <- t.started + 1;
  t.active <- t.active + 1;
  t.sink.begin_tx ~tid ~expected_duration:ty.Tx_type.duration;
  List.iter
    (fun offset ->
      El_sim.Engine.schedule_after t.engine offset (fun () ->
          if tx.state = Running then write_one_data_record t tx))
    (Tx_type.record_schedule ty ~epsilon:t.epsilon);
  El_sim.Engine.schedule_after t.engine (Tx_type.commit_offset ty) (fun () ->
      if tx.state = Running then finish t tx)

type arrival_process = Deterministic | Poisson

(* Exponential variate by inversion; clamped away from zero so two
   arrivals never collapse onto the same microsecond en masse. *)
let exponential rng ~mean_us =
  let u = Random.State.float rng 1.0 in
  let x = -.mean_us *. log (1.0 -. u) in
  max 1 (int_of_float x)

let create engine ~sink ~mix ~arrival_rate ~runtime
    ?(arrival_process = Deterministic) ?(epsilon = Params.epsilon)
    ?(abort_fraction = 0.0) ~num_objects () =
  if arrival_rate <= 0.0 then invalid_arg "Generator.create: zero rate";
  if abort_fraction < 0.0 || abort_fraction > 1.0 then
    invalid_arg "Generator.create: abort fraction outside [0,1]";
  let t =
    {
      engine;
      sink;
      pool = Oid_pool.create ~num_objects;
      epsilon;
      abort_fraction;
      txs = Ids.Tid.Table.create 4096;
      next_tid = 0;
      started = 0;
      committed = 0;
      aborted = 0;
      killed = 0;
      active = 0;
      awaiting_ack = 0;
      data_records = 0;
      latency = El_metrics.Running_stat.create ~name:"commit latency (s)" ();
    }
  in
  let mean_us = 1_000_000.0 /. arrival_rate in
  let next_interval () =
    match arrival_process with
    | Deterministic -> Time.of_sec_f (1.0 /. arrival_rate)
    | Poisson ->
      Time.of_us (exponential (El_sim.Engine.rng engine) ~mean_us)
  in
  let rec arrival at =
    if Time.(at < runtime) then
      El_sim.Engine.schedule_at engine at (fun () ->
          start_tx t mix;
          arrival (Time.add at (next_interval ())))
  in
  arrival Time.zero;
  t

let kill t tid =
  match Ids.Tid.Table.find_opt t.txs tid with
  | None -> invalid_arg "Generator.kill: unknown tid"
  | Some tx -> (
    match tx.state with
    | Killed -> ()
    | Running ->
      tx.state <- Killed;
      release_oids t tx;
      t.active <- t.active - 1;
      t.killed <- t.killed + 1
    | Commit_wait | Done | Aborted ->
      invalid_arg "Generator.kill: transaction is no longer active")

let oid_pool t = t.pool
let started t = t.started
let committed t = t.committed
let aborted t = t.aborted
let killed t = t.killed
let active t = t.active
let awaiting_ack t = t.awaiting_ack
let data_records_written t = t.data_records
let commit_latency t = t.latency
