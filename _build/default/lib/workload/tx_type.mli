(** A transaction type, as the user describes it to the simulator
    (§3): probability of occurrence, execution lifetime, number of
    data log records written, and size of each data record.

    The paper's standard workload consists of {!short} (1 s, 2 × 100 B)
    and {!long} (10 s, 4 × 100 B) transactions. *)

open El_model

type t = {
  name : string;
  probability : float;  (** relative frequency; a mix normalises these *)
  duration : Time.t;  (** lifetime T from BEGIN to COMMIT request *)
  num_records : int;  (** data log records written over the lifetime *)
  record_size : int;  (** bytes per data record *)
}

val make :
  name:string ->
  probability:float ->
  duration:Time.t ->
  num_records:int ->
  record_size:int ->
  t
(** Validates every field: probability in [0, 1] bounds are not
    required (mixes normalise) but it must be non-negative; duration
    positive; counts and sizes positive. *)

val short : probability:float -> t
(** The paper's 1 s / 2 × 100 B interactive transaction. *)

val long : probability:float -> t
(** The paper's 10 s / 4 × 100 B complex transaction. *)

val record_schedule : t -> epsilon:Time.t -> Time.t list
(** Offsets (from BEGIN) at which the type's data records are written:
    the j-th record at j·(T−ε)/N, the last at T−ε (Figure 3).  Raises
    [Invalid_argument] if [epsilon >= duration]. *)

val commit_offset : t -> Time.t
(** Offset of the COMMIT record: the lifetime T. *)

val pp : Format.formatter -> t -> unit
