open El_model

type t = { name : string; mutable count : int }

let create ?(name = "counter") () = { name; count = 0 }
let name t = t.name
let incr t = t.count <- t.count + 1

let add t n =
  if n < 0 then invalid_arg "Counter.add: negative";
  t.count <- t.count + n

let value t = t.count

let rate_per_sec t ~over =
  let seconds = Time.to_sec_f over in
  if seconds <= 0.0 then invalid_arg "Counter.rate_per_sec: zero duration";
  float_of_int t.count /. seconds

let reset t = t.count <- 0
let pp ppf t = Format.fprintf ppf "%s: %d" t.name t.count
