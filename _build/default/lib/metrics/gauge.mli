(** A gauge tracks a quantity that rises and falls over a run — the
    number of live transactions, bytes of LOT/LTT memory, occupied
    disk blocks — and remembers its high-water mark.  The paper's
    space and memory figures are all maxima of such quantities. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val set : t -> int -> unit

val add : t -> int -> unit
(** [add g d] adjusts the current value by [d] (which may be
    negative).  Raises [Invalid_argument] if the value would go
    negative — every gauge in this library counts things. *)

val value : t -> int
(** Current value. *)

val max_value : t -> int
(** High-water mark since creation (or the last {!reset}). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
