type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  if List.length cells <> width t then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align w s =
  let n = String.length s in
  if n >= w then s
  else
    let fill = String.make (w - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let trim_right s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do decr n done;
  String.sub s 0 !n

let render t =
  let rows = List.rev t.rows in
  let cell_rows =
    t.headers
    :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let widths =
    List.fold_left
      (fun acc cells ->
        List.map2 (fun w s -> max w (String.length s)) acc cells)
      (List.map (fun _ -> 0) t.headers)
      cell_rows
  in
  let line cells =
    let padded =
      List.map2
        (fun (w, align) s -> pad align w s)
        (List.combine widths t.aligns)
        cells
    in
    trim_right (String.concat "  " padded) ^ "\n"
  in
  let rule =
    let total = List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1)) in
    String.make total '-' ^ "\n"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_string buf rule;
  List.iter
    (function
      | Cells c -> Buffer.add_string buf (line c)
      | Rule -> Buffer.add_string buf rule)
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
