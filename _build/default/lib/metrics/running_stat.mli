(** Streaming mean/variance (Welford's algorithm).

    Used for quantities the paper reports as averages over a run:
    the mean oid distance between successively flushed objects (the
    flush-locality metric of §4) and commit acknowledgement latency. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val observe : t -> float -> unit

val count : t -> int
val mean : t -> float
(** 0 when no samples have been observed. *)

val variance : t -> float
(** Population variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
