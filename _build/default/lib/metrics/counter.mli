(** A monotonically increasing event counter.  Together with the run
    duration it yields the paper's rate metrics (block writes per
    second, flushes per second, updates per second). *)

open El_model

type t

val create : ?name:string -> unit -> t
val name : t -> string

val incr : t -> unit
val add : t -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val value : t -> int

val rate_per_sec : t -> over:Time.t -> float
(** [rate_per_sec c ~over] is [value c] divided by [over] in seconds.
    Raises [Invalid_argument] if [over] is zero. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
