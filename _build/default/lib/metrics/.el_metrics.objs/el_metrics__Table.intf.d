lib/metrics/table.mli:
