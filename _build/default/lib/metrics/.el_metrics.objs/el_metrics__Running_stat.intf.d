lib/metrics/running_stat.mli: Format
