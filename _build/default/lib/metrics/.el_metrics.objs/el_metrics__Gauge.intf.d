lib/metrics/gauge.mli: Format
