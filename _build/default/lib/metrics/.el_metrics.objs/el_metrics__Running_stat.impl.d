lib/metrics/running_stat.ml: Format
