lib/metrics/counter.mli: El_model Format Time
