lib/metrics/counter.ml: El_model Format Time
