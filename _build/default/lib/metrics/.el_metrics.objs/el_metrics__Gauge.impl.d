lib/metrics/gauge.ml: Format Printf
