type t = { name : string; mutable current : int; mutable peak : int }

let create ?(name = "gauge") () = { name; current = 0; peak = 0 }
let name t = t.name

let set t v =
  if v < 0 then invalid_arg "Gauge.set: negative";
  t.current <- v;
  if v > t.peak then t.peak <- v

let add t d =
  let v = t.current + d in
  if v < 0 then invalid_arg (Printf.sprintf "Gauge.add(%s): went negative" t.name);
  set t v

let value t = t.current
let max_value t = t.peak

let reset t =
  t.current <- 0;
  t.peak <- 0

let pp ppf t =
  Format.fprintf ppf "%s: cur=%d max=%d" t.name t.current t.peak
