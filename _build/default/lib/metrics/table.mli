(** Plain-text table rendering for experiment reports.

    The benchmark harness prints every figure of the paper as an
    aligned text table (series name, x value, paper value, measured
    value).  This module does the column sizing so that reports stay
    readable in [bench_output.txt]. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Raises [Invalid_argument] on an empty column list. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the
    header width. *)

val add_rule : t -> unit
(** Inserts a horizontal rule. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)
