lib/disk/flush_array.ml: Array El_metrics El_model El_sim Hashtbl Ids Time
