lib/disk/log_channel.mli: El_model El_sim Time
