lib/disk/stable_db.ml: El_model Ids
