lib/disk/block.ml: List
