lib/disk/block.mli:
