lib/disk/stable_db.mli: El_model Ids
