lib/disk/flush_array.mli: El_metrics El_model El_sim Ids Time
