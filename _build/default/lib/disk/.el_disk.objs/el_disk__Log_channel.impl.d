lib/disk/log_channel.ml: El_model El_sim Queue Time
