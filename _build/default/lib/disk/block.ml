type 'a t = {
  capacity : int;
  mutable used : int;
  mutable rev_items : 'a list;
  mutable count : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Block.create: non-positive capacity";
  { capacity; used = 0; rev_items = []; count = 0 }

let capacity t = t.capacity
let used t = t.used
let free t = t.capacity - t.used
let is_empty t = t.count = 0

let fits t ~size =
  if size <= 0 then invalid_arg "Block.fits: non-positive size";
  size <= free t

let add t ~size x =
  if not (fits t ~size) then invalid_arg "Block.add: does not fit";
  t.used <- t.used + size;
  t.rev_items <- x :: t.rev_items;
  t.count <- t.count + 1

let items t = List.rev t.rev_items
let count t = t.count
let iter f t = List.iter f (items t)

let clear t =
  t.used <- 0;
  t.rev_items <- [];
  t.count <- 0
