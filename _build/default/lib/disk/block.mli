(** A fixed-capacity disk block (or the in-memory buffer that will
    become one).

    Blocks hold typed items, each with a byte size; the log manager
    instantiates ['a] with its tracked-record type.  Following §2.2,
    records never span blocks: an item only fits if its whole size
    fits in the remaining payload space. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is the usable payload in bytes (2000 in the paper).
    Raises [Invalid_argument] if non-positive. *)

val capacity : 'a t -> int
val used : 'a t -> int
val free : 'a t -> int
val is_empty : 'a t -> bool

val fits : 'a t -> size:int -> bool
(** Whether an item of [size] bytes would fit.  Raises
    [Invalid_argument] on a non-positive size. *)

val add : 'a t -> size:int -> 'a -> unit
(** Appends an item.  Raises [Invalid_argument] if it does not fit —
    callers must check {!fits} first, as the log manager's group
    commit logic does. *)

val items : 'a t -> 'a list
(** Items in insertion order. *)

val count : 'a t -> int

val iter : ('a -> unit) -> 'a t -> unit
(** Iterates in insertion order. *)

val clear : 'a t -> unit
(** Empties the block, modelling its overwrite on disk. *)
