open El_model
module Experiment = El_harness.Experiment
module Policy = El_core.Policy
module Mix = El_workload.Mix

(* Integration tests: whole simulations with paper parameters, short
   runtimes, checked against analytically predictable figures. *)

let paper_cfg ~kind ?(runtime = 60) ?(long = 0.05) () =
  {
    (Experiment.default_config ~kind ~mix:(Mix.short_long ~long_fraction:long)) with
    Experiment.runtime = Time.of_sec runtime;
  }

let test_fw_bandwidth_matches_payload_math () =
  (* 5% mix at 100 TPS: 2.1 updates/tx ⇒ 226 B/tx ⇒ 22.6 kB/s over
     2000-byte payloads ≈ 11.3 block writes/s (the paper reports
     11.63). *)
  let r = Experiment.run (paper_cfg ~kind:(Experiment.Firewall 512) ()) in
  Alcotest.(check bool)
    (Printf.sprintf "rate in [11.0, 12.2] (got %.2f)" r.Experiment.log_write_rate)
    true
    (r.Experiment.log_write_rate >= 11.0 && r.Experiment.log_write_rate <= 12.2);
  Alcotest.(check bool) "feasible at 512 blocks" true r.Experiment.feasible;
  Alcotest.(check int) "100 TPS x 60 s" 6000 r.Experiment.started

let test_fw_peak_occupancy_near_paper () =
  let r = Experiment.run (paper_cfg ~kind:(Experiment.Firewall 512) ()) in
  match r.Experiment.fw_stats with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "peak occupancy ~121 (got %d)" s.El_core.Fw_manager.peak_occupancy)
      true
      (s.El_core.Fw_manager.peak_occupancy >= 110
      && s.El_core.Fw_manager.peak_occupancy <= 130)
  | None -> Alcotest.fail "fw stats expected"

let test_el_bandwidth_overhead_small () =
  let fw = Experiment.run (paper_cfg ~kind:(Experiment.Firewall 512) ()) in
  let policy =
    {
      (Policy.default ~generation_sizes:[| 18; 16 |]) with
      Policy.recirculate = false;
    }
  in
  let el = Experiment.run (paper_cfg ~kind:(Experiment.Ephemeral policy) ()) in
  Alcotest.(check bool) "el feasible at 18+16" true el.Experiment.feasible;
  let overhead =
    (el.Experiment.log_write_rate -. fw.Experiment.log_write_rate)
    /. fw.Experiment.log_write_rate
  in
  Alcotest.(check bool)
    (Printf.sprintf "overhead within 5%%..25%% (got %.1f%%)" (overhead *. 100.))
    true
    (overhead > 0.05 && overhead < 0.25)

let test_el_updates_per_sec () =
  let policy = Policy.default ~generation_sizes:[| 18; 16 |] in
  let r = Experiment.run (paper_cfg ~kind:(Experiment.Ephemeral policy) ()) in
  Alcotest.(check bool)
    (Printf.sprintf "~210 updates/s (got %.0f)" r.Experiment.updates_per_sec)
    true
    (abs_float (r.Experiment.updates_per_sec -. 210.0) < 8.0)

let test_el_40pct_more_updates () =
  let policy = Policy.default ~generation_sizes:[| 18; 60 |] in
  let r =
    Experiment.run (paper_cfg ~kind:(Experiment.Ephemeral policy) ~long:0.4 ())
  in
  (* Long transactions arriving near the end of the run have not
     written all their records yet, so a short run measures slightly
     under the steady-state 280/s. *)
  Alcotest.(check bool)
    (Printf.sprintf "~280 updates/s at 40%% (got %.0f)" r.Experiment.updates_per_sec)
    true
    (r.Experiment.updates_per_sec > 255.0 && r.Experiment.updates_per_sec <= 285.0)

let test_determinism_across_runs () =
  let policy = Policy.default ~generation_sizes:[| 12; 12 |] in
  let cfg = paper_cfg ~kind:(Experiment.Ephemeral policy) ~runtime:20 () in
  let a = Experiment.run cfg and b = Experiment.run cfg in
  Alcotest.(check int) "same writes" a.Experiment.log_writes_total
    b.Experiment.log_writes_total;
  Alcotest.(check int) "same commits" a.Experiment.committed
    b.Experiment.committed;
  Alcotest.(check (float 1e-12)) "same flush distance"
    a.Experiment.flush_mean_distance b.Experiment.flush_mean_distance;
  let c = Experiment.run { cfg with Experiment.seed = 99 } in
  Alcotest.(check bool) "different seed differs somewhere" true
    (c.Experiment.flush_mean_distance <> a.Experiment.flush_mean_distance)

let test_infeasible_config_reports_kills () =
  (* A 10s transaction cannot survive a tiny log without
     recirculation. *)
  let policy =
    {
      (Policy.default ~generation_sizes:[| 4; 4 |]) with
      Policy.recirculate = false;
    }
  in
  let r =
    Experiment.run (paper_cfg ~kind:(Experiment.Ephemeral policy) ~runtime:30 ())
  in
  Alcotest.(check bool) "kills observed" true (r.Experiment.killed > 0);
  Alcotest.(check bool) "marked infeasible" true (not r.Experiment.feasible)

let test_scarce_flush_increases_locality () =
  let policy = Policy.default ~generation_sizes:[| 20; 16 |] in
  let base = paper_cfg ~kind:(Experiment.Ephemeral policy) ~runtime:120 () in
  let relaxed = Experiment.run base in
  let scarce =
    Experiment.run { base with Experiment.flush_transfer = Time.of_ms 45 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "distance shrinks: %.0f -> %.0f"
       relaxed.Experiment.flush_mean_distance scarce.Experiment.flush_mean_distance)
    true
    (scarce.Experiment.flush_mean_distance
    < relaxed.Experiment.flush_mean_distance *. 0.75);
  Alcotest.(check bool) "backlog grows" true
    (scarce.Experiment.flush_backlog_peak > relaxed.Experiment.flush_backlog_peak)

let test_commit_latency_sane () =
  let policy = Policy.default ~generation_sizes:[| 18; 16 |] in
  let r = Experiment.run (paper_cfg ~kind:(Experiment.Ephemeral policy) ()) in
  (* Group commit: at ~12.9 blocks/s a buffer fills in ~78 ms; mean
     wait is roughly half of that plus the 15 ms write. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency 30..120 ms (got %.0f ms)"
       (r.Experiment.commit_latency_mean *. 1000.0))
    true
    (r.Experiment.commit_latency_mean > 0.030
    && r.Experiment.commit_latency_mean < 0.120)

let test_backfill_reduces_forward_blocks () =
  (* Without backfill every head block with survivors costs its own
     partially-filled forwarding write; backfill amortises them. *)
  let with_backfill = Policy.default ~generation_sizes:[| 18; 16 |] in
  let without = { with_backfill with Policy.forward_backfill = false } in
  let gen1_writes policy =
    let r =
      Experiment.run
        (paper_cfg ~kind:(Experiment.Ephemeral policy) ~runtime:120 ())
    in
    (r.Experiment.log_writes_per_gen.(1), r.Experiment.feasible)
  in
  let amortised, ok1 = gen1_writes with_backfill in
  let naive, ok2 = gen1_writes without in
  Alcotest.(check bool) "both feasible" true (ok1 && ok2);
  Alcotest.(check bool)
    (Printf.sprintf "fewer forwarding blocks with backfill: %d <= %d" amortised
       naive)
    true (amortised <= naive)

let test_fifo_flush_hurts_locality () =
  let policy = Policy.default ~generation_sizes:[| 20; 16 |] in
  let base =
    {
      (paper_cfg ~kind:(Experiment.Ephemeral policy) ~runtime:120 ()) with
      Experiment.flush_transfer = Time.of_ms 45;
    }
  in
  let nearest = Experiment.run base in
  let fifo =
    Experiment.run
      { base with Experiment.flush_scheduling = El_disk.Flush_array.Fifo }
  in
  Alcotest.(check bool)
    (Printf.sprintf "nearest seeks shorter: %.0f < %.0f"
       nearest.Experiment.flush_mean_distance fifo.Experiment.flush_mean_distance)
    true
    (nearest.Experiment.flush_mean_distance
    < fifo.Experiment.flush_mean_distance)

let test_lifetime_hint_reduces_forwarding () =
  let base_policy = Policy.default ~generation_sizes:[| 18; 16 |] in
  let hint_policy = { base_policy with Policy.placement = Policy.Lifetime_hint } in
  let base =
    Experiment.run
      (paper_cfg ~kind:(Experiment.Ephemeral base_policy) ~runtime:120 ())
  in
  let hinted =
    Experiment.run
      (paper_cfg ~kind:(Experiment.Ephemeral hint_policy) ~runtime:120 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "forwarding drops: %d -> %d"
       base.Experiment.forwarded_records hinted.Experiment.forwarded_records)
    true
    (hinted.Experiment.forwarded_records
    < base.Experiment.forwarded_records / 2);
  Alcotest.(check bool) "still no kills" true hinted.Experiment.feasible

let suite =
  [
    Alcotest.test_case "FW bandwidth matches payload arithmetic" `Quick
      test_fw_bandwidth_matches_payload_math;
    Alcotest.test_case "FW peak occupancy near the paper's 123" `Quick
      test_fw_peak_occupancy_near_paper;
    Alcotest.test_case "EL bandwidth overhead is small" `Quick
      test_el_bandwidth_overhead_small;
    Alcotest.test_case "210 updates/s at the 5% mix" `Quick
      test_el_updates_per_sec;
    Alcotest.test_case "280 updates/s at the 40% mix" `Quick
      test_el_40pct_more_updates;
    Alcotest.test_case "bitwise determinism per seed" `Quick
      test_determinism_across_runs;
    Alcotest.test_case "infeasible configurations kill and report" `Quick
      test_infeasible_config_reports_kills;
    Alcotest.test_case "scarce flushing improves locality" `Quick
      test_scarce_flush_increases_locality;
    Alcotest.test_case "group-commit latency in the expected band" `Quick
      test_commit_latency_sane;
    Alcotest.test_case "backfill amortises forwarding writes" `Quick
      test_backfill_reduces_forward_blocks;
    Alcotest.test_case "FIFO flushing loses locality" `Quick
      test_fifo_flush_hurts_locality;
    Alcotest.test_case "lifetime hints cut forward traffic" `Quick
      test_lifetime_hint_reduces_forwarding;
  ]
