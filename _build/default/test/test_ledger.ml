open El_model
module Cell = El_core.Cell
module Ledger = El_core.Ledger

let tid n = Ids.Tid.of_int n
let oid n = Ids.Oid.of_int n
let ts ms = Time.of_ms ms

let make () =
  let removals = ref 0 in
  let ledger =
    Ledger.create ~remove_cell:(fun _ -> incr removals) ()
  in
  (ledger, removals)

let begin_tx ledger n =
  Ledger.begin_tx ledger ~tid:(tid n) ~expected_duration:(Time.of_sec 1)
    ~timestamp:(ts n) ~size:8

let test_begin () =
  let ledger, _ = make () in
  let cell = begin_tx ledger 1 in
  Alcotest.(check int) "LTT entry" 1 (Ledger.ltt_size ledger);
  Alcotest.(check int) "no LOT entries" 0 (Ledger.lot_size ledger);
  Alcotest.(check bool) "active" true (Ledger.is_active ledger (tid 1));
  Alcotest.(check int) "memory = 40" 40 (Ledger.memory_bytes ledger);
  Alcotest.(check bool) "cell live" false (Cell.is_garbage cell.Cell.tracked);
  Alcotest.check_raises "duplicate tid"
    (Invalid_argument "Ledger.begin_tx: duplicate tid") (fun () ->
      ignore (begin_tx ledger 1));
  Ledger.check_invariants ledger

let test_write_data () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  let c =
    Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 7) ~version:1 ~size:100
      ~timestamp:(ts 2)
  in
  Alcotest.(check int) "LOT entry created" 1 (Ledger.lot_size ledger);
  Alcotest.(check int) "memory = 2x40" 80 (Ledger.memory_bytes ledger);
  Alcotest.(check bool) "uncommitted is kept" true
    (Ledger.classify ledger c = Ledger.Keep_active);
  Ledger.check_invariants ledger

let test_unknown_tx () =
  let ledger, _ = make () in
  Alcotest.check_raises "unknown" (Invalid_argument "Ledger: unknown transaction")
    (fun () ->
      ignore
        (Ledger.write_data ledger ~tid:(tid 9) ~oid:(oid 1) ~version:1 ~size:10
           ~timestamp:Time.zero))

let test_commit_cycle () =
  let ledger, _ = make () in
  let begin_cell = begin_tx ledger 1 in
  ignore
    (Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 7) ~version:1 ~size:100
       ~timestamp:(ts 2));
  let commit_cell =
    Ledger.request_commit ledger ~tid:(tid 1) ~timestamp:(ts 3) ~size:8
  in
  (* The BEGIN record is superseded: one tx cell per transaction. *)
  Alcotest.(check bool) "begin record now garbage" true
    (Cell.is_garbage begin_cell.Cell.tracked);
  Alcotest.(check bool) "not killable while commit pending" true
    (Ledger.tx_state ledger (tid 1) = Some `Commit_pending);
  let to_flush = Ledger.commit_durable ledger ~tid:(tid 1) in
  Alcotest.(check (list (pair int int)))
    "flush list"
    [ (7, 1) ]
    (List.map (fun (o, v) -> (Ids.Oid.to_int o, v)) to_flush);
  Alcotest.(check bool) "commit record classifies as committed tx" true
    (Ledger.classify ledger commit_cell = Ledger.Committed_tx (tid 1));
  Alcotest.(check int) "unflushed objects" 1 (Ledger.unflushed_objects ledger);
  (* Flushing the update retires the record, the object and then the
     whole transaction entry. *)
  Alcotest.(check bool) "flush applies" true
    (Ledger.flush_complete ledger ~oid:(oid 7) ~version:1);
  Alcotest.(check int) "LOT empty" 0 (Ledger.lot_size ledger);
  Alcotest.(check int) "LTT empty" 0 (Ledger.ltt_size ledger);
  Alcotest.(check int) "memory back to zero" 0 (Ledger.memory_bytes ledger);
  Alcotest.(check bool) "commit record gone" true
    (Cell.is_garbage commit_cell.Cell.tracked);
  Ledger.check_invariants ledger

let test_supersede_committed () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  ignore
    (Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 7) ~version:1 ~size:100
       ~timestamp:(ts 2));
  ignore (Ledger.request_commit ledger ~tid:(tid 1) ~timestamp:(ts 3) ~size:8);
  ignore (Ledger.commit_durable ledger ~tid:(tid 1));
  (* A second transaction updates the same object and commits before
     the first update was flushed: the old committed record becomes
     garbage and tx 1 retires entirely. *)
  ignore (begin_tx ledger 2);
  let c2 =
    Ledger.write_data ledger ~tid:(tid 2) ~oid:(oid 7) ~version:2 ~size:100
      ~timestamp:(ts 4)
  in
  ignore (Ledger.request_commit ledger ~tid:(tid 2) ~timestamp:(ts 5) ~size:8);
  ignore (Ledger.commit_durable ledger ~tid:(tid 2));
  Alcotest.(check int) "tx1 retired by supersede" 1 (Ledger.ltt_size ledger);
  Alcotest.(check bool) "newest is the committed one" true
    (Ledger.classify ledger c2 = Ledger.Committed_data (oid 7, 2));
  (* A stale flush completion for version 1 must be ignored. *)
  Alcotest.(check bool) "stale flush ignored" false
    (Ledger.flush_complete ledger ~oid:(oid 7) ~version:1);
  Alcotest.(check bool) "current flush applies" true
    (Ledger.flush_complete ledger ~oid:(oid 7) ~version:2);
  Alcotest.(check int) "all retired" 0 (Ledger.ltt_size ledger);
  Ledger.check_invariants ledger

let test_abort () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  let c =
    Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 3) ~version:1 ~size:50
      ~timestamp:(ts 2)
  in
  let tracked =
    Ledger.request_abort ledger ~tid:(tid 1) ~timestamp:(ts 3) ~size:8
  in
  Alcotest.(check bool) "abort record is garbage from birth" true
    (Cell.is_garbage tracked);
  Alcotest.(check bool) "data record garbage" true
    (Cell.is_garbage c.Cell.tracked);
  Alcotest.(check int) "tables empty" 0
    (Ledger.ltt_size ledger + Ledger.lot_size ledger);
  Alcotest.(check int) "memory zero" 0 (Ledger.memory_bytes ledger);
  Ledger.check_invariants ledger

let test_kill () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  ignore
    (Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 3) ~version:1 ~size:50
       ~timestamp:(ts 2));
  Ledger.kill ledger ~tid:(tid 1);
  Alcotest.(check int) "all gone" 0
    (Ledger.ltt_size ledger + Ledger.lot_size ledger);
  (* Commit-pending transactions cannot be killed. *)
  ignore (begin_tx ledger 2);
  ignore (Ledger.request_commit ledger ~tid:(tid 2) ~timestamp:(ts 3) ~size:8);
  Alcotest.check_raises "commit-pending unkillable"
    (Invalid_argument "Ledger.kill: only active transactions can be killed")
    (fun () -> Ledger.kill ledger ~tid:(tid 2));
  Ledger.check_invariants ledger

let test_empty_write_set_commit () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  ignore (Ledger.request_commit ledger ~tid:(tid 1) ~timestamp:(ts 1) ~size:8);
  let to_flush = Ledger.commit_durable ledger ~tid:(tid 1) in
  Alcotest.(check int) "nothing to flush" 0 (List.length to_flush);
  Alcotest.(check int) "read-only tx retires immediately" 0
    (Ledger.ltt_size ledger);
  Ledger.check_invariants ledger

let test_oldest_active () =
  let ledger, _ = make () in
  (match Ledger.oldest_active ledger with
  | None -> ()
  | Some _ -> Alcotest.fail "empty ledger has no oldest");
  ignore (begin_tx ledger 5);
  ignore (begin_tx ledger 3);
  (* tid 5 began at ts 5, tid 3 at ts 3: tid 3 is older *)
  (match Ledger.oldest_active ledger with
  | Some e -> Alcotest.(check int) "oldest by begin time" 3 (Ids.Tid.to_int e.Cell.e_tid)
  | None -> Alcotest.fail "expected an oldest");
  ignore (Ledger.request_commit ledger ~tid:(tid 3) ~timestamp:(ts 10) ~size:8);
  match Ledger.oldest_active ledger with
  | Some e ->
    Alcotest.(check int) "commit-pending excluded" 5 (Ids.Tid.to_int e.Cell.e_tid)
  | None -> Alcotest.fail "tid 5 still active"

let test_classify_unflushed () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  let c =
    Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 9) ~version:1 ~size:50
      ~timestamp:(ts 2)
  in
  ignore (Ledger.request_commit ledger ~tid:(tid 1) ~timestamp:(ts 3) ~size:8);
  ignore (Ledger.commit_durable ledger ~tid:(tid 1));
  Alcotest.(check bool) "committed unflushed data" true
    (Ledger.classify ledger c = Ledger.Committed_data (oid 9, 1));
  (match Ledger.committed_cell ledger (oid 9) with
  | Some (c', v) ->
    Alcotest.(check bool) "committed_cell finds it" true (c' == c);
    Alcotest.(check int) "version" 1 v
  | None -> Alcotest.fail "committed cell expected");
  (* Forced eviction path: dispose, then the entry drains. *)
  Ledger.dispose ledger c;
  Alcotest.(check int) "gone" 0 (Ledger.lot_size ledger + Ledger.ltt_size ledger);
  Ledger.check_invariants ledger

let test_garbage_is_one_way () =
  let ledger, _ = make () in
  ignore (begin_tx ledger 1);
  let c =
    Ledger.write_data ledger ~tid:(tid 1) ~oid:(oid 1) ~version:1 ~size:50
      ~timestamp:(ts 1)
  in
  Ledger.kill ledger ~tid:(tid 1);
  Alcotest.(check bool) "garbage" true (Cell.is_garbage c.Cell.tracked);
  (* No operation may resurrect the record: re-attaching is the only
     way back and it is forbidden while... the tracked is permanently
     garbage because its cell field stays None and attach on a tracked
     with history is the caller's bug.  We assert the ledger does not
     do it: a fresh write of the same object makes a new record. *)
  ignore (begin_tx ledger 2);
  let c2 =
    Ledger.write_data ledger ~tid:(tid 2) ~oid:(oid 1) ~version:2 ~size:50
      ~timestamp:(ts 2)
  in
  Alcotest.(check bool) "old tracked still garbage" true
    (Cell.is_garbage c.Cell.tracked);
  Alcotest.(check bool) "new record distinct" true (not (c == c2))

let prop_memory_accounting =
  QCheck.Test.make ~name:"memory = 40*LTT + 40*LOT under random workloads"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let ledger, _ = make () in
      let rng = Random.State.make [| seed |] in
      let next_tid = ref 0 in
      let live = ref [] in
      let ok = ref true in
      for step = 0 to 300 do
        let ts = ts step in
        (match Random.State.int rng 4 with
        | 0 ->
          let n = !next_tid in
          incr next_tid;
          ignore
            (Ledger.begin_tx ledger ~tid:(tid n)
               ~expected_duration:(Time.of_sec 1) ~timestamp:ts ~size:8);
          live := n :: !live
        | 1 -> (
          match !live with
          | n :: _ ->
            ignore
              (Ledger.write_data ledger ~tid:(tid n)
                 ~oid:(oid (Random.State.int rng 50))
                 ~version:step ~size:50 ~timestamp:ts)
          | [] -> ())
        | 2 -> (
          match !live with
          | n :: rest ->
            ignore (Ledger.request_commit ledger ~tid:(tid n) ~timestamp:ts ~size:8);
            ignore (Ledger.commit_durable ledger ~tid:(tid n));
            live := rest
          | [] -> ())
        | _ -> (
          match !live with
          | n :: rest ->
            Ledger.kill ledger ~tid:(tid n);
            live := rest
          | [] -> ()));
        if
          Ledger.memory_bytes ledger
          <> (40 * Ledger.ltt_size ledger) + (40 * Ledger.lot_size ledger)
        then ok := false
      done;
      Ledger.check_invariants ledger;
      !ok)

let suite =
  [
    Alcotest.test_case "begin_tx" `Quick test_begin;
    Alcotest.test_case "write_data" `Quick test_write_data;
    Alcotest.test_case "unknown transaction" `Quick test_unknown_tx;
    Alcotest.test_case "full commit cycle" `Quick test_commit_cycle;
    Alcotest.test_case "commit supersedes older committed update" `Quick
      test_supersede_committed;
    Alcotest.test_case "abort drops everything" `Quick test_abort;
    Alcotest.test_case "kill semantics" `Quick test_kill;
    Alcotest.test_case "read-only commit retires immediately" `Quick
      test_empty_write_set_commit;
    Alcotest.test_case "oldest active selection" `Quick test_oldest_active;
    Alcotest.test_case "classification and forced eviction" `Quick
      test_classify_unflushed;
    Alcotest.test_case "garbage transition is one-way" `Quick
      test_garbage_is_one_way;
    QCheck_alcotest.to_alcotest prop_memory_accounting;
  ]
