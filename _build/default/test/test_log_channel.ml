open El_model
module Engine = El_sim.Engine
module Ch = El_disk.Log_channel

let test_latency () =
  let e = Engine.create () in
  let ch = Ch.create e ~write_time:(Time.of_ms 15) ~buffer_pool:4 () in
  let done_at = ref Time.zero in
  Ch.write ch ~on_complete:(fun () -> done_at := Engine.now e);
  Engine.run_all e;
  Alcotest.(check int) "tau" 15_000 (Time.to_us !done_at);
  Alcotest.(check int) "completed" 1 (Ch.writes_completed ch)

let test_fifo_serialization () =
  (* Two writes issued together finish 15 ms apart: the channel is a
     single disk arm. *)
  let e = Engine.create () in
  let ch = Ch.create e ~write_time:(Time.of_ms 15) ~buffer_pool:4 () in
  let finishes = ref [] in
  for i = 1 to 3 do
    Ch.write ch ~on_complete:(fun () ->
        finishes := (i, Time.to_us (Engine.now e)) :: !finishes)
  done;
  Engine.run_all e;
  Alcotest.(check (list (pair int int)))
    "serialized FIFO"
    [ (1, 15_000); (2, 30_000); (3, 45_000) ]
    (List.rev !finishes)

let test_pool_overflow () =
  let e = Engine.create () in
  let ch = Ch.create e ~write_time:(Time.of_ms 15) ~buffer_pool:2 () in
  for _ = 1 to 5 do
    Ch.write ch ~on_complete:(fun () -> ())
  done;
  Alcotest.(check int) "overflows counted" 3 (Ch.pool_overflows ch);
  Alcotest.(check int) "peak in flight" 5 (Ch.peak_in_flight ch);
  Engine.run_all e;
  Alcotest.(check int) "drains" 5 (Ch.writes_completed ch);
  Alcotest.(check int) "none in flight" 0 (Ch.in_flight ch)

let test_quiesce_time () =
  let e = Engine.create () in
  let ch = Ch.create e ~write_time:(Time.of_ms 10) ~buffer_pool:4 () in
  Alcotest.(check int) "idle quiesce is now" 0 (Time.to_us (Ch.quiesce_time ch));
  Ch.write ch ~on_complete:(fun () -> ());
  Ch.write ch ~on_complete:(fun () -> ());
  Alcotest.(check int) "two writes pending" 20_000
    (Time.to_us (Ch.quiesce_time ch))

let test_interleaved_completion () =
  let e = Engine.create () in
  let ch = Ch.create e ~write_time:(Time.of_ms 10) ~buffer_pool:4 () in
  let log = ref [] in
  Ch.write ch ~on_complete:(fun () ->
      log := "w1" :: !log;
      (* a completion may enqueue further writes *)
      Ch.write ch ~on_complete:(fun () -> log := "w2" :: !log));
  Engine.run_all e;
  Alcotest.(check (list string)) "chained writes" [ "w1"; "w2" ] (List.rev !log);
  Alcotest.(check int) "clock" 20_000 (Time.to_us (Engine.now e))

let suite =
  [
    Alcotest.test_case "fixed write latency" `Quick test_latency;
    Alcotest.test_case "writes serialize FIFO" `Quick test_fifo_serialization;
    Alcotest.test_case "buffer pool overflow accounting" `Quick
      test_pool_overflow;
    Alcotest.test_case "quiesce time" `Quick test_quiesce_time;
    Alcotest.test_case "completion can chain writes" `Quick
      test_interleaved_completion;
  ]
