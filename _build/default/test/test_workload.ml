open El_model
module Tx = El_workload.Tx_type
module Mix = El_workload.Mix
module Pool = El_workload.Oid_pool

(* ---- transaction types ---- *)

let test_paper_types () =
  let s = Tx.short ~probability:0.95 in
  Alcotest.(check int) "short records" 2 s.Tx.num_records;
  Alcotest.(check int) "short duration" 1_000_000 (Time.to_us s.Tx.duration);
  let l = Tx.long ~probability:0.05 in
  Alcotest.(check int) "long records" 4 l.Tx.num_records;
  Alcotest.(check int) "long size" 100 l.Tx.record_size

let test_record_schedule () =
  (* Figure 3: records every (T-eps)/N, the last at T-eps. *)
  let ty =
    Tx.make ~name:"t" ~probability:1.0 ~duration:(Time.of_ms 101)
      ~num_records:4 ~record_size:10
  in
  let offsets = Tx.record_schedule ty ~epsilon:(Time.of_ms 1) in
  Alcotest.(check (list int))
    "equally spaced, last at T-eps"
    [ 25_000; 50_000; 75_000; 100_000 ]
    (List.map Time.to_us offsets);
  Alcotest.(check int) "commit at T" 101_000 (Time.to_us (Tx.commit_offset ty))

let test_schedule_validation () =
  let ty =
    Tx.make ~name:"t" ~probability:1.0 ~duration:(Time.of_ms 1) ~num_records:1
      ~record_size:10
  in
  Alcotest.check_raises "epsilon too large"
    (Invalid_argument "Tx_type.record_schedule: epsilon >= duration")
    (fun () -> ignore (Tx.record_schedule ty ~epsilon:(Time.of_ms 1)))

(* ---- mixes ---- *)

let test_mix_normalisation () =
  let a = Tx.make ~name:"a" ~probability:3.0 ~duration:(Time.of_sec 1) ~num_records:1 ~record_size:1 in
  let b = Tx.make ~name:"b" ~probability:1.0 ~duration:(Time.of_sec 1) ~num_records:1 ~record_size:1 in
  let mix = Mix.create [ a; b ] in
  Alcotest.(check (float 1e-9)) "a normalised" 0.75 (Mix.probability mix a);
  Alcotest.(check (float 1e-9)) "b normalised" 0.25 (Mix.probability mix b)

let test_mix_sampling_frequencies () =
  let mix = Mix.short_long ~long_fraction:0.2 in
  let rng = Random.State.make [| 11 |] in
  let longs = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if (Mix.sample mix rng).Tx.name = "long" then incr longs
  done;
  let freq = float_of_int !longs /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "within 2%% of 20%% (got %.3f)" freq)
    true
    (abs_float (freq -. 0.2) < 0.02)

let test_mix_expectations () =
  let mix = Mix.short_long ~long_fraction:0.05 in
  (* paper: 0.95*2 + 0.05*4 = 2.1 updates per tx => 210/s at 100 TPS *)
  Alcotest.(check (float 1e-9)) "updates per tx" 2.1
    (Mix.expected_updates_per_tx mix);
  (* bytes: 2.1*100 + 16 of tx records *)
  Alcotest.(check (float 1e-9)) "bytes per tx" 226.0
    (Mix.expected_bytes_per_tx mix ~tx_record_size:8);
  let mix40 = Mix.short_long ~long_fraction:0.4 in
  Alcotest.(check (float 1e-9)) "40% mix: 2.8 updates" 2.8
    (Mix.expected_updates_per_tx mix40)

let test_mix_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Mix.create: empty")
    (fun () -> ignore (Mix.create []));
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Mix.short_long: fraction outside [0,1]") (fun () ->
      ignore (Mix.short_long ~long_fraction:1.5))

(* ---- oid pool ---- *)

let test_pool_uniqueness () =
  let pool = Pool.create ~num_objects:50 in
  let rng = Random.State.make [| 3 |] in
  let drawn =
    List.init 50 (fun _ ->
        match Pool.acquire pool rng with
        | Some oid -> Ids.Oid.to_int oid
        | None -> Alcotest.fail "pool exhausted early")
  in
  Alcotest.(check int) "all distinct" 50
    (List.length (List.sort_uniq compare drawn));
  Alcotest.(check (option int)) "then exhausted" None
    (Option.map Ids.Oid.to_int (Pool.acquire pool rng));
  Alcotest.(check int) "in use" 50 (Pool.in_use pool)

let test_pool_release () =
  let pool = Pool.create ~num_objects:1 in
  let rng = Random.State.make [| 3 |] in
  let o = Option.get (Pool.acquire pool rng) in
  Pool.release pool o;
  Alcotest.(check int) "released" 0 (Pool.in_use pool);
  let o2 = Option.get (Pool.acquire pool rng) in
  Alcotest.(check int) "reacquirable" (Ids.Oid.to_int o) (Ids.Oid.to_int o2);
  Alcotest.check_raises "double release"
    (Invalid_argument "Oid_pool.release: oid not held") (fun () ->
      Pool.release pool (Ids.Oid.of_int 0);
      Pool.release pool (Ids.Oid.of_int 0))

let test_pool_versions () =
  let pool = Pool.create ~num_objects:10 in
  let o = Ids.Oid.of_int 4 in
  Alcotest.(check int) "v1" 1 (Pool.next_version pool o);
  Alcotest.(check int) "v2" 2 (Pool.next_version pool o);
  Alcotest.(check int) "independent" 1 (Pool.next_version pool (Ids.Oid.of_int 5))

let prop_pool_constraint =
  QCheck.Test.make ~name:"no oid is held twice concurrently" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let pool = Pool.create ~num_objects:20 in
      let rng = Random.State.make [| seed |] in
      let held = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 200 do
        if Random.State.bool rng && Hashtbl.length held < 20 then (
          match Pool.acquire pool rng with
          | Some o ->
            let k = Ids.Oid.to_int o in
            if Hashtbl.mem held k then ok := false;
            Hashtbl.replace held k ()
          | None -> ())
        else
          match Hashtbl.fold (fun k () _ -> Some k) held None with
          | Some k ->
            Hashtbl.remove held k;
            Pool.release pool (Ids.Oid.of_int k)
          | None -> ()
      done;
      !ok && Pool.in_use pool = Hashtbl.length held)

let suite =
  [
    Alcotest.test_case "paper transaction types" `Quick test_paper_types;
    Alcotest.test_case "Figure 3 record schedule" `Quick test_record_schedule;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "mix normalisation" `Quick test_mix_normalisation;
    Alcotest.test_case "mix sampling frequencies" `Quick
      test_mix_sampling_frequencies;
    Alcotest.test_case "mix expectations (paper rates)" `Quick
      test_mix_expectations;
    Alcotest.test_case "mix validation" `Quick test_mix_validation;
    Alcotest.test_case "oid pool uniqueness & exhaustion" `Quick
      test_pool_uniqueness;
    Alcotest.test_case "oid pool release" `Quick test_pool_release;
    Alcotest.test_case "version counters" `Quick test_pool_versions;
    QCheck_alcotest.to_alcotest prop_pool_constraint;
  ]
