open El_model
module Engine = El_sim.Engine
module G = El_workload.Generator
module Mix = El_workload.Mix
module Tx = El_workload.Tx_type

(* A recording sink: logs every call with its timestamp and acks
   commits after a configurable delay. *)
type event =
  | Begin of int * Time.t
  | Data of int * int * int * Time.t  (* tid, oid, version *)
  | Commit of int * Time.t
  | Abort of int * Time.t

let recording_sink engine ~ack_delay events =
  {
    G.begin_tx =
      (fun ~tid ~expected_duration:_ ->
        events := Begin (Ids.Tid.to_int tid, Engine.now engine) :: !events);
    write_data =
      (fun ~tid ~oid ~version ~size:_ ->
        events :=
          Data (Ids.Tid.to_int tid, Ids.Oid.to_int oid, version, Engine.now engine)
          :: !events);
    request_commit =
      (fun ~tid ~on_ack ->
        events := Commit (Ids.Tid.to_int tid, Engine.now engine) :: !events;
        Engine.schedule_after engine ack_delay (fun () ->
            on_ack (Engine.now engine)));
    request_abort =
      (fun ~tid ->
        events := Abort (Ids.Tid.to_int tid, Engine.now engine) :: !events);
  }

let one_type ~duration_ms ~num_records =
  Mix.create
    [
      Tx.make ~name:"only" ~probability:1.0 ~duration:(Time.of_ms duration_ms)
        ~num_records ~record_size:50;
    ]

let test_figure3_timeline () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 20) events in
  let _gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:100 ~num_records:2)
      ~arrival_rate:1.0 ~runtime:(Time.of_ms 500) ~epsilon:(Time.of_ms 10)
      ~num_objects:100 ()
  in
  Engine.run engine ~until:(Time.of_ms 150);
  let tx0 = List.rev (List.filter (function
    | Begin (0, _) | Data (0, _, _, _) | Commit (0, _) | Abort (0, _) -> true
    | _ -> false) !events)
  in
  match tx0 with
  | [ Begin (_, t0); Data (_, _, _, t1); Data (_, _, _, t2); Commit (_, t3) ] ->
    Alcotest.(check int) "begin at arrival" 0 (Time.to_us t0);
    (* (T - eps)/N = 45ms *)
    Alcotest.(check int) "first data at 45ms" 45_000 (Time.to_us t1);
    Alcotest.(check int) "last data at T-eps" 90_000 (Time.to_us t2);
    Alcotest.(check int) "commit at T" 100_000 (Time.to_us t3)
  | _ -> Alcotest.fail "unexpected event shape for transaction 0"

let test_arrival_rate () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 1) events in
  let gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:10 ~num_records:1)
      ~arrival_rate:100.0 ~runtime:(Time.of_sec 1) ~num_objects:1000 ()
  in
  Engine.run engine ~until:(Time.of_sec 2);
  Alcotest.(check int) "100 TPS for 1s" 100 (G.started gen);
  Alcotest.(check int) "all committed" 100 (G.committed gen);
  Alcotest.(check int) "no aborts" 0 (G.aborted gen);
  let begins = List.filter (function Begin _ -> true | _ -> false) !events in
  Alcotest.(check int) "one BEGIN per tx" 100 (List.length begins)

let test_commit_latency_stat () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 25) events in
  let gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:10 ~num_records:1)
      ~arrival_rate:10.0 ~runtime:(Time.of_ms 500) ~num_objects:100 ()
  in
  Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "latency is the ack delay" 0.025
    (El_metrics.Running_stat.mean (G.commit_latency gen))

let test_active_accounting () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 1) events in
  let gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:1000 ~num_records:4)
      ~arrival_rate:10.0 ~runtime:(Time.of_sec 10) ~num_objects:1000 ()
  in
  Engine.run engine ~until:(Time.of_ms 4999);
  (* 10/s arrivals, 1s lifetime: steady state holds ~10 active. *)
  Alcotest.(check int) "steady-state active" 10 (G.active gen);
  (* Oids are held from each record's write until termination, so the
     active transactions hold between 0 and 4 each. *)
  let held = El_workload.Oid_pool.in_use (G.oid_pool gen) in
  Alcotest.(check bool)
    (Printf.sprintf "held oids bounded by active writes (got %d)" held)
    true
    (held > 0 && held <= 40)

let test_kill_cancels () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 1) events in
  let gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:100 ~num_records:4)
      ~arrival_rate:1.0 ~runtime:(Time.of_ms 90) ~num_objects:100 ()
  in
  (* Kill transaction 0 after its first data record (~24.75ms). *)
  Engine.schedule_at engine (Time.of_ms 30) (fun () ->
      G.kill gen (Ids.Tid.of_int 0));
  Engine.run_all engine;
  Alcotest.(check int) "killed" 1 (G.killed gen);
  Alcotest.(check int) "not committed" 0 (G.committed gen);
  Alcotest.(check int) "oids released" 0
    (El_workload.Oid_pool.in_use (G.oid_pool gen));
  let after_kill =
    List.filter
      (function
        | Data (0, _, _, t) -> Time.(t > Time.of_ms 30)
        | Commit (0, _) -> true
        | _ -> false)
      !events
  in
  Alcotest.(check int) "no activity after kill" 0 (List.length after_kill);
  (* Killing twice is idempotent; killing an unknown tid raises. *)
  G.kill gen (Ids.Tid.of_int 0);
  Alcotest.(check int) "idempotent" 1 (G.killed gen);
  Alcotest.check_raises "unknown tid"
    (Invalid_argument "Generator.kill: unknown tid") (fun () ->
      G.kill gen (Ids.Tid.of_int 999))

let test_aborts () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 1) events in
  let gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:10 ~num_records:1)
      ~arrival_rate:100.0 ~runtime:(Time.of_sec 2) ~abort_fraction:0.3
      ~num_objects:1000 ()
  in
  Engine.run_all engine;
  Alcotest.(check int) "accounted" (G.started gen)
    (G.committed gen + G.aborted gen);
  let frac = float_of_int (G.aborted gen) /. float_of_int (G.started gen) in
  Alcotest.(check bool)
    (Printf.sprintf "abort fraction ~0.3 (got %.3f)" frac)
    true
    (abs_float (frac -. 0.3) < 0.06)

let test_versions_monotone () =
  let engine = Engine.create () in
  let events = ref [] in
  let sink = recording_sink engine ~ack_delay:(Time.of_ms 1) events in
  let _gen =
    G.create engine ~sink ~mix:(one_type ~duration_ms:10 ~num_records:2)
      ~arrival_rate:50.0 ~runtime:(Time.of_sec 5) ~num_objects:10 ()
  in
  Engine.run_all engine;
  (* With only 10 objects, versions per oid must increase strictly in
     write order. *)
  let per_oid = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (function
      | Data (_, oid, version, _) ->
        let last = Option.value ~default:0 (Hashtbl.find_opt per_oid oid) in
        if version <= last then ok := false;
        Hashtbl.replace per_oid oid version
      | Begin _ | Commit _ | Abort _ -> ())
    (List.rev !events);
  Alcotest.(check bool) "versions strictly increase per object" true !ok

let suite =
  [
    Alcotest.test_case "Figure 3 timeline" `Quick test_figure3_timeline;
    Alcotest.test_case "deterministic arrival rate" `Quick test_arrival_rate;
    Alcotest.test_case "commit latency statistic" `Quick
      test_commit_latency_stat;
    Alcotest.test_case "active-transaction accounting" `Quick
      test_active_accounting;
    Alcotest.test_case "kill cancels remaining activity" `Quick
      test_kill_cancels;
    Alcotest.test_case "abort injection" `Quick test_aborts;
    Alcotest.test_case "object versions are monotone" `Quick
      test_versions_monotone;
  ]
