open El_model

let oid n = Ids.Oid.of_int n
let tid n = Ids.Tid.of_int n

let test_constructors () =
  let ts = Time.of_ms 5 in
  let d = Log_record.data ~tid:(tid 1) ~oid:(oid 2) ~version:3 ~size:100 ~timestamp:ts in
  Alcotest.(check bool) "data is not tx" false (Log_record.is_tx_record d);
  (match Log_record.oid d with
  | Some o -> Alcotest.(check int) "oid" 2 (Ids.Oid.to_int o)
  | None -> Alcotest.fail "data record has an oid");
  let b = Log_record.begin_ ~tid:(tid 1) ~size:8 ~timestamp:ts in
  let c = Log_record.commit ~tid:(tid 1) ~size:8 ~timestamp:ts in
  let a = Log_record.abort ~tid:(tid 1) ~size:8 ~timestamp:ts in
  List.iter
    (fun r ->
      Alcotest.(check bool) "tx record" true (Log_record.is_tx_record r);
      Alcotest.(check (option int)) "tx records carry no oid" None
        (Option.map Ids.Oid.to_int (Log_record.oid r)))
    [ b; c; a ]

let test_validation () =
  let ts = Time.zero in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Log_record: non-positive size") (fun () ->
      ignore (Log_record.begin_ ~tid:(tid 0) ~size:0 ~timestamp:ts));
  Alcotest.check_raises "negative version"
    (Invalid_argument "Log_record.data: negative version") (fun () ->
      ignore
        (Log_record.data ~tid:(tid 0) ~oid:(oid 0) ~version:(-1) ~size:10
           ~timestamp:ts))

let test_pp () =
  let ts = Time.of_ms 1 in
  let r = Log_record.commit ~tid:(tid 7) ~size:8 ~timestamp:ts in
  let s = Format.asprintf "%a" Log_record.pp r in
  Alcotest.(check bool) "mentions COMMIT" true
    (Astring_like.contains s "COMMIT")

let suite =
  [
    Alcotest.test_case "constructors and kinds" `Quick test_constructors;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
