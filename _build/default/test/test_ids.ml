open El_model

let test_roundtrip () =
  Alcotest.(check int) "oid" 17 (Ids.Oid.to_int (Ids.Oid.of_int 17));
  Alcotest.(check int) "tid" 0 (Ids.Tid.to_int (Ids.Tid.of_int 0));
  Alcotest.check_raises "negative oid"
    (Invalid_argument "Oid.of_int: negative") (fun () ->
      ignore (Ids.Oid.of_int (-3)))

let test_equality () =
  Alcotest.(check bool) "oid equal" true
    (Ids.Oid.equal (Ids.Oid.of_int 4) (Ids.Oid.of_int 4));
  Alcotest.(check bool) "oid differ" false
    (Ids.Oid.equal (Ids.Oid.of_int 4) (Ids.Oid.of_int 5));
  Alcotest.(check int) "compare sign" 1
    (Ids.Tid.compare (Ids.Tid.of_int 9) (Ids.Tid.of_int 3))

let test_distance () =
  let d a b = Ids.Oid.distance ~wrap:100 (Ids.Oid.of_int a) (Ids.Oid.of_int b) in
  Alcotest.(check int) "same" 0 (d 10 10);
  Alcotest.(check int) "near" 5 (d 10 15);
  Alcotest.(check int) "wraps" 2 (d 99 1);
  Alcotest.(check int) "max is wrap/2" 50 (d 0 50);
  Alcotest.(check int) "symmetric" (d 30 80) (d 80 30)

let test_distance_prop =
  QCheck.Test.make ~name:"oid distance is a wrapped metric" ~count:500
    QCheck.(triple (int_bound 999) (int_bound 999) (int_range 1 1000))
    (fun (a, b, wrap) ->
      let a = a mod wrap and b = b mod wrap in
      let d = Ids.Oid.distance ~wrap (Ids.Oid.of_int a) (Ids.Oid.of_int b) in
      d >= 0 && d <= wrap / 2
      && d = Ids.Oid.distance ~wrap (Ids.Oid.of_int b) (Ids.Oid.of_int a)
      && (d = 0) = (a = b))

let test_tables () =
  let t = Ids.Oid.Table.create 8 in
  Ids.Oid.Table.replace t (Ids.Oid.of_int 1) "one";
  Ids.Oid.Table.replace t (Ids.Oid.of_int 1) "uno";
  Alcotest.(check (option string))
    "replace semantics" (Some "uno")
    (Ids.Oid.Table.find_opt t (Ids.Oid.of_int 1));
  Alcotest.(check int) "length" 1 (Ids.Oid.Table.length t)

let suite =
  [
    Alcotest.test_case "roundtrip and validation" `Quick test_roundtrip;
    Alcotest.test_case "equality and comparison" `Quick test_equality;
    Alcotest.test_case "wrapped distance" `Quick test_distance;
    QCheck_alcotest.to_alcotest test_distance_prop;
    Alcotest.test_case "hash tables" `Quick test_tables;
  ]
