open El_model
module Engine = El_sim.Engine
module F = El_disk.Flush_array

let oid n = Ids.Oid.of_int n

let make ?(drives = 2) ?(transfer_ms = 10) ?(objects = 1000) () =
  let e = Engine.create () in
  let f =
    F.create e ~drives ~transfer_time:(Time.of_ms transfer_ms)
      ~num_objects:objects ()
  in
  (e, f)

let test_basic_flush () =
  let e, f = make () in
  let flushed = ref [] in
  F.set_on_flush f (fun o ~version -> flushed := (Ids.Oid.to_int o, version) :: !flushed);
  F.request f (oid 3) ~version:1;
  Engine.run_all e;
  Alcotest.(check (list (pair int int))) "flushed" [ (3, 1) ] !flushed;
  Alcotest.(check int) "completed" 1 (F.flushes_completed f);
  Alcotest.(check int) "pending drained" 0 (F.pending f)

let test_partitioning () =
  (* 1000 objects over 2 drives: oids < 500 on drive 0.  Two requests
     on different drives run in parallel; two on the same drive
     serialize. *)
  let e, f = make () in
  F.set_on_flush f (fun _ ~version:_ -> ());
  F.request f (oid 10) ~version:1;
  F.request f (oid 600) ~version:1;
  Engine.run e ~until:(Time.of_ms 10);
  Alcotest.(check int) "parallel drives" 2 (F.flushes_completed f);
  F.request f (oid 20) ~version:1;
  F.request f (oid 30) ~version:1;
  Engine.run e ~until:(Time.of_ms 20);
  Alcotest.(check int) "same drive serializes" 3 (F.flushes_completed f);
  Engine.run_all e;
  Alcotest.(check int) "all done" 4 (F.flushes_completed f)

let test_nearest_scheduling () =
  let e, f = make ~drives:1 ~objects:1000 () in
  let order = ref [] in
  F.set_on_flush f (fun o ~version:_ -> order := Ids.Oid.to_int o :: !order);
  (* Drive position starts at 0.  Enqueue while the first request is
     in service; the drive then picks nearest-first. *)
  F.request f (oid 100) ~version:1;
  F.request f (oid 900) ~version:1;  (* wrapped distance from 100: 200 *)
  F.request f (oid 500) ~version:1;  (* distance from 100: 400 *)
  F.request f (oid 150) ~version:1;  (* distance from 100: 50 — nearest *)
  Engine.run_all e;
  Alcotest.(check (list int)) "shortest-seek order" [ 100; 150; 900; 500 ]
    (List.rev !order)

let test_supersede () =
  let e, f = make ~drives:1 () in
  let flushed = ref [] in
  F.set_on_flush f (fun o ~version -> flushed := (Ids.Oid.to_int o, version) :: !flushed);
  F.request f (oid 1) ~version:1;
  (* While v1 is in service, a pending request for oid 2 gets
     superseded by v2 before it is picked. *)
  F.request f (oid 2) ~version:1;
  F.request f (oid 2) ~version:2;
  Alcotest.(check int) "superseded in place" 1 (F.superseded f);
  Engine.run_all e;
  Alcotest.(check (list (pair int int)))
    "newest version flushed once"
    [ (1, 1); (2, 2) ]
    (List.rev !flushed)

let test_forced_priority () =
  let e, f = make ~drives:1 ~objects:1000 () in
  let order = ref [] in
  F.set_on_flush f (fun o ~version:_ -> order := Ids.Oid.to_int o :: !order);
  F.request f (oid 10) ~version:1;
  F.request f (oid 11) ~version:1;  (* would be nearest next *)
  F.request_forced f (oid 800) ~version:1;
  Engine.run_all e;
  Alcotest.(check (list int)) "forced wins" [ 10; 800; 11 ] (List.rev !order);
  Alcotest.(check int) "forced counted" 1 (F.forced_flushes f)

let test_locality_stat () =
  let e, f = make ~drives:1 ~objects:1000 () in
  F.set_on_flush f (fun _ ~version:_ -> ());
  F.request f (oid 100) ~version:1;
  Engine.run e ~until:(Time.of_ms 10);
  F.request f (oid 300) ~version:1;
  Engine.run_all e;
  (* One distance sample: |300-100| = 200 (the first flush has no
     predecessor). *)
  Alcotest.(check (float 1e-9)) "mean distance" 200.0 (F.mean_distance f);
  Alcotest.(check int) "one sample"
    1
    (El_metrics.Running_stat.count (F.distance_stat f))

let test_backlog_peak () =
  let e, f = make ~drives:1 () in
  F.set_on_flush f (fun _ ~version:_ -> ());
  for i = 0 to 9 do
    F.request f (oid i) ~version:1
  done;
  Alcotest.(check int) "peak backlog" 10 (F.peak_backlog f);
  Engine.run_all e;
  Alcotest.(check int) "drained" 0 (F.pending f)

let test_fifo_scheduling () =
  let e = Engine.create () in
  let f =
    F.create e ~drives:1 ~transfer_time:(Time.of_ms 10) ~num_objects:1000
      ~scheduling:F.Fifo ()
  in
  let order = ref [] in
  F.set_on_flush f (fun o ~version:_ -> order := Ids.Oid.to_int o :: !order);
  F.request f (oid 100) ~version:1;
  F.request f (oid 900) ~version:1;
  F.request f (oid 150) ~version:1;  (* nearest would pick this before 900 *)
  Engine.run_all e;
  Alcotest.(check (list int)) "arrival order, not seek order" [ 100; 900; 150 ]
    (List.rev !order)

let test_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "uneven partitioning"
    (Invalid_argument
       "Flush_array.create: num_objects must be a positive multiple of drives")
    (fun () ->
      ignore (F.create e ~drives:3 ~transfer_time:(Time.of_ms 1) ~num_objects:10 ()));
  let f = F.create e ~drives:2 ~transfer_time:(Time.of_ms 1) ~num_objects:10 () in
  Alcotest.check_raises "oid out of range"
    (Invalid_argument "Flush_array: oid out of range") (fun () ->
      F.request f (oid 10) ~version:1)

let test_max_rate () =
  let _, f = make ~drives:10 ~transfer_ms:25 ~objects:1000 () in
  Alcotest.(check (float 1e-6)) "paper's 400/s" 400.0 (F.max_rate_per_sec f)

let suite =
  [
    Alcotest.test_case "basic flush lifecycle" `Quick test_basic_flush;
    Alcotest.test_case "range partitioning" `Quick test_partitioning;
    Alcotest.test_case "nearest-oid scheduling" `Quick test_nearest_scheduling;
    Alcotest.test_case "supersede in place" `Quick test_supersede;
    Alcotest.test_case "forced requests run first" `Quick test_forced_priority;
    Alcotest.test_case "locality statistic" `Quick test_locality_stat;
    Alcotest.test_case "backlog accounting" `Quick test_backlog_peak;
    Alcotest.test_case "FIFO scheduling ablation" `Quick test_fifo_scheduling;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "aggregate service rate" `Quick test_max_rate;
  ]
